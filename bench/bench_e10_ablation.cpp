// Experiment E10 (ablation): what do Cons2FTBFS's selection rules buy?
//
// Both Cons2FTBFS (earliest-divergence selection + restricted fault
// enumeration) and the generic chain structure (Obs. 1.6, no selection rules)
// are valid dual-failure FT-BFS structures. The paper's O(n^{5/3}) analysis
// *requires* the selection rules; this ablation measures how much larger and
// more expensive the rule-free construction is in practice, and how sensitive
// Cons2FTBFS is to the tie-breaking weight seed.
#include "bench_util.h"
#include "core/cons2ftbfs.h"
#include "core/kfail_ftbfs.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  {
    Table table("E10.1: Cons2FTBFS (selection rules) vs chain structure "
                "(no rules), f=2");
    table.set_header({"family", "n", "|H| cons2", "|H| chains", "chains/cons2",
                      "SSSP cons2", "SSSP chains"});
    for (const Family& family : standard_families()) {
      for (const Vertex n : {64u, 128u, 256u}) {
        const Graph g = family.make(n, 31);
        Cons2Options copt;
        copt.classify_paths = false;
        const FtStructure h = build_cons2ftbfs(g, 0, copt);
        const KFailResult k = build_kfail_ftbfs(g, 0, 2);
        table.add_row(
            {family.name, fmt_u64(n), fmt_u64(h.edges.size()),
             fmt_u64(k.structure.edges.size()),
             fmt_double(static_cast<double>(k.structure.edges.size()) /
                            static_cast<double>(h.edges.size()),
                        3),
             fmt_u64(h.stats.dijkstra_runs),
             fmt_u64(k.structure.stats.dijkstra_runs)});
      }
    }
    table.print(std::cout);
  }

  {
    Table table("E10.2: sensitivity of |E(H)| to the tie-breaking seed W");
    table.set_header({"family", "n", "min|H|", "max|H|", "spread%"});
    for (const Family& family : standard_families()) {
      const Vertex n = 256;
      const Graph g = family.make(n, 37);
      std::uint64_t lo = ~0ull, hi = 0;
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Cons2Options opt;
        opt.weight_seed = seed;
        opt.classify_paths = false;
        const FtStructure h = build_cons2ftbfs(g, 0, opt);
        lo = std::min(lo, h.edges.size());
        hi = std::max(hi, h.edges.size());
      }
      table.add_row({family.name, fmt_u64(n), fmt_u64(lo), fmt_u64(hi),
                     fmt_double(100.0 * (hi - lo) / static_cast<double>(lo),
                                2)});
    }
    table.print(std::cout);
  }
  std::printf(
      "Reading: the rule-free chain structure is consistently larger (it\n"
      "keeps a last edge per chain without checking satisfiability in\n"
      "G_{tau-1}(v)) and costs more SSSP runs; the seed dependence of the\n"
      "rule-based structure is small — the selection rules, not the tie\n"
      "breaks, drive the size.\n");
  return 0;
}
