// Experiment E7 (§1): the price of the second fault. Single-failure FT-BFS is
// Θ(n^{3/2}) worst-case ([10]); dual-failure is Θ(n^{5/3}) (this paper). On
// benign inputs both are near-linear and the gap is a constant; on the
// adversarial families the dual/single ratio grows like n^{1/6}.
#include "bench_util.h"
#include "core/cons2ftbfs.h"
#include "core/single_ftbfs.h"
#include "lowerbound/gstar.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E7: single-failure vs dual-failure structure size");
  table.set_header({"graph", "n", "m", "|H1|", "|H2|", "H2/H1", "H1/n",
                    "H2/n"});

  auto row = [&](const std::string& name, const Graph& g, Vertex s) {
    const FtStructure h1 = build_single_ftbfs(g, s);
    Cons2Options opt;
    opt.classify_paths = false;
    const FtStructure h2 = build_cons2ftbfs(g, s, opt);
    const double n = g.num_vertices();
    table.add_row(
        {name, fmt_u64(g.num_vertices()), fmt_u64(g.num_edges()),
         fmt_u64(h1.edges.size()), fmt_u64(h2.edges.size()),
         fmt_double(static_cast<double>(h2.edges.size()) / h1.edges.size(), 3),
         fmt_double(h1.edges.size() / n, 3),
         fmt_double(h2.edges.size() / n, 3)});
  };

  for (const Vertex n : {128u, 256u, 512u, 1024u}) {
    row("sparse-ER(m=3n)", make_sparse_er(n, 3), 0);
  }
  for (const Vertex n : {128u, 256u, 512u}) {
    row("dense-ER(p=0.1)", make_dense_er(n, 3), 0);
  }
  for (const Vertex n : {128u, 256u, 512u}) {
    row("path+chords", make_chorded_path(n, 3), 0);
  }
  // The adversarial families: G*_1 maximizes H1, G*_2 maximizes H2.
  for (const Vertex n : {200u, 400u, 800u}) {
    const GStarGraph gs = build_gstar(2, n);
    row("G*_2 (worst case)", gs.graph, gs.sources[0]);
  }
  for (const Vertex n : {200u, 400u, 800u}) {
    const GStarGraph gs = build_gstar(1, n);
    row("G*_1", gs.graph, gs.sources[0]);
  }
  table.print(std::cout);
  std::printf(
      "Reading: on benign families H2/H1 is a small constant (the second\n"
      "fault is cheap); on G*_2 the dual structure is forced to keep the\n"
      "Θ(n^{5/3}) core while the single structure needs only part of it —\n"
      "the qualitative single-vs-dual gap the paper opens with.\n");
  return 0;
}
