// Micro-benchmarks (google-benchmark): throughput of the substrate operations
// the constructions are built from, end-to-end construction costs, and the
// delta-vs-full query sweep that documents where the repair-path fallback
// threshold should sit.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/cons2ftbfs.h"
#include "core/oracle.h"
#include "core/sensitivity_oracle.h"
#include "core/single_ftbfs.h"
#include "core/swap_ftbfs.h"
#include "core/verify.h"
#include "engine/query_engine.h"
#include "graph/generators.h"
#include "graph/mask.h"
#include "service/shard.h"
#include "spath/bfs.h"
#include "spath/dijkstra.h"
#include "spath/replacement.h"
#include "spath/tree_index.h"
#include "util/rng.h"

namespace {

using namespace ftbfs;

void BM_Bfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  Bfs bfs(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs.run(0).hops.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Bfs)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BfsMasked(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  Bfs bfs(g);
  GraphMask mask(g);
  mask.block_edge(0);
  mask.block_edge(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs.run(0, &mask).hops.data());
  }
}
BENCHMARK(BM_BfsMasked)->Arg(1024);

void BM_TieBrokenDijkstra(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  const WeightAssignment w(g, 1);
  Dijkstra dij(g, w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dij.run(0).dist.data());
  }
}
BENCHMARK(BM_TieBrokenDijkstra)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ReplacementPath(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  const WeightAssignment w(g, 1);
  ReplacementOracle oracle(g, w);
  const std::vector<EdgeId> faults = {0, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oracle.replacement_path(0, n - 1, faults));
  }
}
BENCHMARK(BM_ReplacementPath)->Arg(256)->Arg(1024);

void BM_SingleFtbfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_single_ftbfs(g, 0).edges.size());
  }
}
BENCHMARK(BM_SingleFtbfs)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_Cons2Ftbfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  Cons2Options opt;
  opt.classify_paths = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_cons2ftbfs(g, 0, opt).edges.size());
  }
}
BENCHMARK(BM_Cons2Ftbfs)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_Cons2FtbfsClassified(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_cons2ftbfs(g, 0).edges.size());
  }
}
BENCHMARK(BM_Cons2FtbfsClassified)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_SensitivityOracleBuild(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  for (auto _ : state) {
    const SingleFaultOracle oracle(g, 0);
    benchmark::DoNotOptimize(oracle.table_entries());
  }
}
BENCHMARK(BM_SensitivityOracleBuild)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SensitivityOracleQuery(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  const SingleFaultOracle oracle(g, 0);
  Vertex v = 1;
  EdgeId e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.distance_avoiding(v, e));
    v = (v + 97) % n;
    if (v == 0) v = 1;
    e = (e + 61) % g.num_edges();
  }
}
BENCHMARK(BM_SensitivityOracleQuery)->Arg(1024);

void BM_SwapFtbfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_swap_ftbfs(g, 0).structure.edges.size());
  }
}
BENCHMARK(BM_SwapFtbfs)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_FtBfsOracleBatch(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 2);
  const std::vector<EdgeId> faults = {1, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.all_distances(faults).data());
  }
}
BENCHMARK(BM_FtBfsOracleBatch)->Arg(1024);

// --- delta-vs-full query sweep ----------------------------------------------
//
// Two axes drive the two-tier query path's profit (docs/perf.md): how many
// faults a query carries (classification cost + number of damaged subtrees)
// and how large a fraction of the tree one cut disconnects (repair volume).
// BM_QueryFull / BM_QueryDelta sweep the first with uniformly random fault
// sets; BM_RepairVsFullBySubtree sweeps the second with a single tree-edge
// fault whose subtree is closest to the requested percentage of n — where
// the delta/full ratio crosses 1 is where DeltaOptions::max_affected_fraction
// belongs (measurements motivate the 0.5 default).

// One all-distances query per iteration over k uniformly random edge faults.
void query_sweep(benchmark::State& state, bool delta) {
  const Vertex n = 2048;
  const Graph g = random_connected(n, 3 * n, 1);
  FaultQueryEngine engine(g);
  engine.set_delta_options({.enabled = delta});
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<EdgeId> faults(k);
  for (auto _ : state) {
    for (std::size_t i = 0; i < k; ++i) {
      faults[i] = static_cast<EdgeId>(rng.next_below(g.num_edges()));
    }
    benchmark::DoNotOptimize(
        engine.all_distances(0, edge_faults(faults)).data());
  }
  const FaultQueryEngine::PathStats stats = engine.path_stats();
  state.counters["fast"] = static_cast<double>(stats.fast_path_hits);
  state.counters["repair"] = static_cast<double>(stats.repair_bfs);
  state.counters["full"] = static_cast<double>(stats.full_bfs);
}
void BM_QueryFull(benchmark::State& state) { query_sweep(state, false); }
void BM_QueryDelta(benchmark::State& state) { query_sweep(state, true); }
BENCHMARK(BM_QueryFull)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_QueryDelta)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// One all-distances query per iteration with a single tree-edge fault whose
// subtree is as close as possible to range(0) percent of the vertices; the
// paired BM_..._FullBfs runs the identical fault with the delta disabled.
EdgeId tree_edge_with_subtree_fraction(const Graph& g, double fraction) {
  Bfs bfs(g);
  const BfsResult tree = bfs.run(0);
  const TreeIndex index(g, tree, 0);
  const double want = fraction * g.num_vertices();
  EdgeId best = kInvalidEdge;
  double best_gap = 1e18;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (tree.parent_edge[v] == kInvalidEdge) continue;
    const double gap =
        std::abs(static_cast<double>(index.subtree_size(v)) - want);
    if (gap < best_gap) {
      best_gap = gap;
      best = tree.parent_edge[v];
    }
  }
  return best;
}

void repair_by_subtree(benchmark::State& state, bool delta) {
  const Vertex n = 2048;
  // Deep tree (path plus chords): subtrees of every size exist, so the
  // requested fraction is actually attainable.
  const Graph g = path_with_chords(n, n / 4, 3);
  FaultQueryEngine engine(g);
  engine.set_delta_options({.enabled = delta, .max_affected_fraction = 1.0});
  const EdgeId fault = tree_edge_with_subtree_fraction(
      g, static_cast<double>(state.range(0)) / 100.0);
  const EdgeId faults[1] = {fault};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.all_distances(0, edge_faults(faults)).data());
  }
  state.SetLabel("subtree ~" + std::to_string(state.range(0)) + "% of n");
}
void BM_RepairVsFullBySubtree(benchmark::State& state) {
  repair_by_subtree(state, true);
}
void BM_RepairVsFullBySubtree_FullBfs(benchmark::State& state) {
  repair_by_subtree(state, false);
}
BENCHMARK(BM_RepairVsFullBySubtree)
    ->Arg(1)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(75)->Arg(90);
BENCHMARK(BM_RepairVsFullBySubtree_FullBfs)
    ->Arg(1)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(75)->Arg(90);

// --- parent-carrying repair vs the full-BFS fallback -------------------------
//
// shortest_path under a single tree-edge fault whose subtree is ~range(0)%
// of n: the parent-exposing call that fell back to a full masked BFS before
// the repair BFS carried parents. The paired _FullBfs run is the pre-PR
// behavior (delta disabled ⇒ every damaged parent query is a full BFS).
void parent_query_by_subtree(benchmark::State& state, bool delta) {
  const Vertex n = 2048;
  const Graph g = path_with_chords(n, n / 4, 3);
  FaultQueryEngine engine(g);
  engine.set_delta_options({.enabled = delta, .max_affected_fraction = 1.0});
  const EdgeId fault = tree_edge_with_subtree_fraction(
      g, static_cast<double>(state.range(0)) / 100.0);
  const EdgeId faults[1] = {fault};
  Vertex target = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.shortest_path(0, target, edge_faults(faults)));
    target = 1 + (target + 97) % (n - 1);
  }
  state.SetLabel("subtree ~" + std::to_string(state.range(0)) + "% of n");
}
void BM_ParentQueryRepair(benchmark::State& state) {
  parent_query_by_subtree(state, true);
}
void BM_ParentQueryRepair_FullBfs(benchmark::State& state) {
  parent_query_by_subtree(state, false);
}
BENCHMARK(BM_ParentQueryRepair)->Arg(1)->Arg(10)->Arg(50);
BENCHMARK(BM_ParentQueryRepair_FullBfs)->Arg(1)->Arg(10)->Arg(50);

// --- delta-compressed cache lines: overlay read vs full-vector copy ----------
//
// Serving an all-distances response from a delta line costs one baseline
// copy plus an O(diff) overlay (ShardedScenarioCache::materialize); from a
// full line it costs the straight O(n) vector copy. range(0) is the diff
// size in percent of n — the overlay's extra cost stays in the noise while
// resident bytes shrink by n/diff.
void BM_CacheLineMaterialize(benchmark::State& state) {
  const Vertex n = 4096;
  std::vector<std::uint32_t> baseline(n);
  for (Vertex v = 0; v < n; ++v) baseline[v] = v % 97;
  ShardedScenarioCache::Line line;
  if (state.range(0) < 0) {
    // Sentinel: full-vector line (the escape hatch / pre-PR representation).
    ShardedScenarioCache::fill(line, baseline);
  } else {
    const std::size_t diff_size = n * state.range(0) / 100;
    std::vector<std::uint64_t> diff;
    for (std::size_t i = 0; i < diff_size; ++i) {
      const Vertex v = static_cast<Vertex>(i * (n / std::max<std::size_t>(
                                                        1, diff_size)));
      diff.push_back((static_cast<std::uint64_t>(v) << 32) | 7u);
    }
    ShardedScenarioCache::fill_delta(line, &baseline, std::move(diff));
  }
  std::vector<std::uint32_t> out(n);
  for (auto _ : state) {
    ShardedScenarioCache::materialize(line, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(state.range(0) < 0
                     ? "full-vector line"
                     : "delta line, diff=" +
                           std::to_string(state.range(0)) + "% of n");
}
BENCHMARK(BM_CacheLineMaterialize)->Arg(-1)->Arg(1)->Arg(10)->Arg(25);

void BM_VerifySampled(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  Cons2Options opt;
  opt.classify_paths = false;
  const FtStructure h = build_cons2ftbfs(g, 0, opt);
  const std::vector<Vertex> sources = {0};
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify_sampled(g, h.edges, sources, 2, 50, ++seed));
  }
  state.SetLabel("50 fault sets / iteration");
}
BENCHMARK(BM_VerifySampled)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
