// Micro-benchmarks (google-benchmark): throughput of the substrate operations
// the constructions are built from, plus end-to-end construction costs.
#include <benchmark/benchmark.h>

#include "core/cons2ftbfs.h"
#include "core/oracle.h"
#include "core/sensitivity_oracle.h"
#include "core/single_ftbfs.h"
#include "core/swap_ftbfs.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "graph/mask.h"
#include "spath/bfs.h"
#include "spath/dijkstra.h"
#include "spath/replacement.h"

namespace {

using namespace ftbfs;

void BM_Bfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  Bfs bfs(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs.run(0).hops.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Bfs)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BfsMasked(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  Bfs bfs(g);
  GraphMask mask(g);
  mask.block_edge(0);
  mask.block_edge(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs.run(0, &mask).hops.data());
  }
}
BENCHMARK(BM_BfsMasked)->Arg(1024);

void BM_TieBrokenDijkstra(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  const WeightAssignment w(g, 1);
  Dijkstra dij(g, w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dij.run(0).dist.data());
  }
}
BENCHMARK(BM_TieBrokenDijkstra)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ReplacementPath(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  const WeightAssignment w(g, 1);
  ReplacementOracle oracle(g, w);
  const std::vector<EdgeId> faults = {0, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oracle.replacement_path(0, n - 1, faults));
  }
}
BENCHMARK(BM_ReplacementPath)->Arg(256)->Arg(1024);

void BM_SingleFtbfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_single_ftbfs(g, 0).edges.size());
  }
}
BENCHMARK(BM_SingleFtbfs)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_Cons2Ftbfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  Cons2Options opt;
  opt.classify_paths = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_cons2ftbfs(g, 0, opt).edges.size());
  }
}
BENCHMARK(BM_Cons2Ftbfs)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_Cons2FtbfsClassified(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_cons2ftbfs(g, 0).edges.size());
  }
}
BENCHMARK(BM_Cons2FtbfsClassified)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_SensitivityOracleBuild(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  for (auto _ : state) {
    const SingleFaultOracle oracle(g, 0);
    benchmark::DoNotOptimize(oracle.table_entries());
  }
}
BENCHMARK(BM_SensitivityOracleBuild)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SensitivityOracleQuery(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  const SingleFaultOracle oracle(g, 0);
  Vertex v = 1;
  EdgeId e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.distance_avoiding(v, e));
    v = (v + 97) % n;
    if (v == 0) v = 1;
    e = (e + 61) % g.num_edges();
  }
}
BENCHMARK(BM_SensitivityOracleQuery)->Arg(1024);

void BM_SwapFtbfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_swap_ftbfs(g, 0).structure.edges.size());
  }
}
BENCHMARK(BM_SwapFtbfs)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_FtBfsOracleBatch(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 2);
  const std::vector<EdgeId> faults = {1, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.all_distances(faults).data());
  }
}
BENCHMARK(BM_FtBfsOracleBatch)->Arg(1024);

void BM_VerifySampled(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const Graph g = random_connected(n, 3 * n, 1);
  Cons2Options opt;
  opt.classify_paths = false;
  const FtStructure h = build_cons2ftbfs(g, 0, opt);
  const std::vector<Vertex> sources = {0};
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify_sampled(g, h.edges, sources, 2, 50, ++seed));
  }
  state.SetLabel("50 fault sets / iteration");
}
BENCHMARK(BM_VerifySampled)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
