// Experiment E15 (§1's exact-vs-approximate discussion, refs [12, 3]): the
// size/stretch trade-off. Exact single-failure FT-BFS pays Θ(n^{3/2}) worst
// case for stretch exactly 1; the O(n)-edge swap structure pays ~2(n-1) edges
// and a small measured stretch. The paper argues the exact theory underpins
// the approximate constructions — this table is that trade-off, measured.
#include "bench_util.h"
#include "core/single_ftbfs.h"
#include "core/swap_ftbfs.h"
#include "lowerbound/gstar.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E15: exact vs O(n)-edge approximate single-failure structures");
  table.set_header({"graph", "n", "exact |H|", "swap |H|", "swap/exact",
                    "max stretch", "avg stretch", "disc"});

  auto row = [&](const std::string& name, const Graph& g, Vertex s) {
    const FtStructure exact = build_single_ftbfs(g, s);
    const SwapResult swap = build_swap_ftbfs(g, s);
    const StretchReport rep =
        measure_single_fault_stretch(g, s, swap.structure);
    table.add_row(
        {name, fmt_u64(g.num_vertices()), fmt_u64(exact.edges.size()),
         fmt_u64(swap.structure.edges.size()),
         fmt_double(static_cast<double>(swap.structure.edges.size()) /
                        static_cast<double>(exact.edges.size()),
                    3),
         fmt_double(rep.max_stretch, 3), fmt_double(rep.avg_stretch, 4),
         fmt_u64(rep.disconnections)});
  };

  for (const Vertex n : {128u, 256u, 512u}) {
    row("sparse-ER(m=3n)", make_sparse_er(n, 61), 0);
  }
  for (const Vertex n : {128u, 256u}) {
    row("dense-ER(p=0.1)", make_dense_er(n, 61), 0);
  }
  for (const Vertex n : {128u, 256u}) {
    row("path+chords", make_chorded_path(n, 61), 0);
  }
  {
    const GStarGraph gs = build_gstar(1, 400);
    row("G*_1 (worst case)", gs.graph, gs.sources[0]);
  }
  table.print(std::cout);
  std::printf(
      "Reading: the swap structure stays near 2(n-1) edges with small\n"
      "average stretch, while the exact structure's size grows on the\n"
      "adversarial family — the trade-off the paper's §1 lays out when\n"
      "motivating both exact (this paper) and approximate ([12,3]) lines.\n"
      "Zero disconnections: swap edges always restore connectivity.\n");
  return 0;
}
