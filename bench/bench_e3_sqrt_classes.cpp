// Experiment E3 (Obs. 3.17, Lemma 3.18, and the per-vertex engine of Thm
// 1.1): per-vertex new-edge counts. The paper bounds, for every target v,
//   - single-fault new last edges:   |E1(π)| = O(√n),
//   - (π,π) new last edges:          |E2(π)| = O(√n),
//   - all new edges:                 |New(v)| = O(n^{2/3}).
// The table reports the measured maxima over v with their normalizations.
#include "bench_util.h"
#include "core/cons2ftbfs.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E3: per-vertex new-edge maxima vs sqrt(n) and n^{2/3}");
  table.set_header({"family", "n", "max single", "/sqrt(n)", "max (pi,pi)",
                    "/sqrt(n)", "max |New(v)|", "/n^(2/3)"});

  for (const Family& family : standard_families()) {
    std::vector<double> xs, y_single, y_new;
    for (const Vertex n : {64u, 128u, 256u, 512u, 1024u}) {
      std::uint64_t max_single = 0, max_pipi = 0, max_new = 0;
      for (int trial = 0; trial < 2; ++trial) {
        const Graph g = family.make(n, 7 + trial);
        const FtStructure h = build_cons2ftbfs(g, 0);
        max_single =
            std::max(max_single, h.stats.max_classes_per_vertex.single);
        max_pipi =
            std::max(max_pipi, h.stats.max_classes_per_vertex.a_pi_pi);
        max_new = std::max(max_new, h.stats.max_new_per_vertex);
      }
      const double sq = std::sqrt(static_cast<double>(n));
      const double tt = std::pow(static_cast<double>(n), 2.0 / 3.0);
      table.add_row({family.name, fmt_u64(n), fmt_u64(max_single),
                     fmt_double(max_single / sq, 3), fmt_u64(max_pipi),
                     fmt_double(max_pipi / sq, 3), fmt_u64(max_new),
                     fmt_double(max_new / tt, 3)});
      xs.push_back(n);
      y_single.push_back(static_cast<double>(std::max<std::uint64_t>(
          max_single, 1)));
      y_new.push_back(static_cast<double>(std::max<std::uint64_t>(max_new, 1)));
    }
    table.print(std::cout);
    print_fit(family.name + " max-single", xs, y_single, 0.5);
    print_fit(family.name + " max-new", xs, y_new, 2.0 / 3.0);
    std::printf("\n");
    table = Table("E3 (cont.)");
    table.set_header({"family", "n", "max single", "/sqrt(n)", "max (pi,pi)",
                      "/sqrt(n)", "max |New(v)|", "/n^(2/3)"});
  }
  std::printf("Reading: all normalized columns stay bounded as n grows —\n"
              "the per-vertex engine of the size analysis in action.\n");
  return 0;
}
