// Persistence benchmark (PR 8): cold build vs snapshot load, measured as
// *time to first response* — the restart metric the src/persist/ subsystem
// exists for.
//
// Cold column: what `ftbfs serve --graph g.txt` pays before it can answer its
// first request — parse the edge-list text, construct the service, build the
// structure pool and the source baseline, answer one faulted distance query.
// Warm column: what `ftbfs serve --load snap.ftb` pays — mmap + checksum +
// validate the snapshot, restore the pool, answer the same query. Both
// columns end on byte-identical response lines (checked).
//
// Three rows per run:
//   * "pool" at n = 10^5 — the bench_e8 scale-sweep serving state (one
//     all-edges entry + baselines). No construction to skip, so the cold
//     side is text parsing + baseline BFS: this row is the *floor* of the
//     snapshot win and the measured n = 10^5 load-to-first-response number.
//   * a real registry build (default single_ftbfs, budget 1) at a smaller n
//     — construction is the paper's expensive part (empirically ~n^2 at
//     m = 3n), so this is where the >= 10x gate is enforced: the recorded
//     row keeps n where one cold build is feasible, making the ratio a
//     measurement, not an extrapolation.
//   * the same real build at n = 10^5, cold side run under a timeout
//     (fork + alarm): construction does not finish at that scale — the
//     elapsed time at the kill is recorded as a measured *lower bound*, and
//     the speedup against the measured n = 10^5 load time is reported as
//     ">= bound / load". Skipped under --small (CI smoke budget).
//
// Gates (checked by CI on --small, recorded in bench/BENCH_persist.json):
//   * construction rows: load-to-first-response at least 10x faster than
//     cold build;
//   * every snapshot file under 2x the in-memory bytes it captures.
//
// Usage: bench_persist [--small] [--json] [--n N] [--real-n N] [--seed S]
//                      [--cold-timeout S]
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/registry.h"
#include "graph/io.h"
#include "persist/service_io.h"
#include "persist/snapshot.h"
#include "service/oracle_service.h"
#include "service/protocol.h"
#include "util/timer.h"

namespace {

using namespace ftbfs;
using namespace ftbfs::bench;

struct Row {
  std::string algo;
  Vertex n = 0;
  EdgeId m = 0;
  double cold_s = 0.0;
  double save_s = 0.0;
  double load_s = 0.0;  // load-to-first-response
  double speedup = 0.0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t resident_bytes = 0;
  double bytes_ratio = 0.0;
  std::uint64_t mismatches = 0;
  // The >= 10x gate is about skipping construction; the "pool" row has none
  // (its cold side is parse + baseline), so only construction rows enforce it.
  bool construction = false;
  // False when the cold build hit the timeout: cold_s and speedup are then
  // measured lower bounds, not totals.
  bool cold_completed = true;
};

std::string temp_file(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir == nullptr ? "/tmp" : dir) + "/" + name;
}

QueryRequest first_request(const Graph& g) {
  QueryRequest req;
  req.id = 1;
  req.source = 0;
  req.targets = {static_cast<Vertex>(g.num_vertices() / 3),
                 static_cast<Vertex>(g.num_vertices() / 2),
                 static_cast<Vertex>(g.num_vertices() - 1)};
  req.fault_edges = {0};  // one faulted edge: exercises the FT query path
  return req;
}

std::uint64_t file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long at = std::ftell(f);
  std::fclose(f);
  return at < 0 ? 0 : static_cast<std::uint64_t>(at);
}

// One measured row. `algo` == "pool" builds the bench_e8 all-edges serving
// state; otherwise it names a BuilderRegistry construction run at budget 1.
Row measure(const std::string& algo, Vertex n, std::uint64_t seed) {
  Row row;
  row.algo = algo;
  row.n = n;

  const Graph generated = make_sparse_er(n, seed);
  row.m = generated.num_edges();
  const std::string graph_path = temp_file("bench_persist_graph.txt");
  save_graph(graph_path, generated);

  ServiceConfig config;
  config.lazy_build = false;
  config.cache_capacity = 256;
  config.default_budget = algo == "pool" ? 2u : 1u;

  // --- cold: text file -> first response ------------------------------------
  Timer cold;
  const Graph g = load_graph(graph_path);
  OracleService built(g, config);
  if (algo == "pool") {
    std::vector<EdgeId> all(g.num_edges());
    std::iota(all.begin(), all.end(), 0u);
    built.add_structure("all", 0, config.default_budget, FaultModel::kEdge,
                        all);
  } else {
    built.build_structure(algo + "@s0f1", 0, 1, FaultModel::kEdge, algo);
  }
  const QueryRequest req = first_request(g);
  const std::string cold_answer = format_response_line(built.serve(req));
  row.cold_s = cold.seconds();

  // --- save -----------------------------------------------------------------
  const std::string snap_path = temp_file("bench_persist.ftb");
  Timer save;
  const SnapshotImage image = PersistAccess::export_service(built, true);
  save_snapshot(snap_path, image);
  row.save_s = save.seconds();
  row.snapshot_bytes = file_bytes(snap_path);
  row.resident_bytes = image_resident_bytes(image);
  row.bytes_ratio = row.resident_bytes == 0
                        ? 0.0
                        : static_cast<double>(row.snapshot_bytes) /
                              static_cast<double>(row.resident_bytes);

  // --- warm: snapshot -> first response -------------------------------------
  Timer warm;
  SnapshotImage loaded = load_snapshot(snap_path);
  Graph host = std::move(loaded.graph);
  OracleService restored(host, config);
  PersistAccess::restore_service(restored, loaded, /*warm_cache=*/false);
  const std::string warm_answer = format_response_line(restored.serve(req));
  row.load_s = warm.seconds();

  row.speedup = row.load_s == 0.0 ? 0.0 : row.cold_s / row.load_s;
  row.mismatches = cold_answer == warm_answer ? 0 : 1;
  row.construction = algo != "pool";
  std::remove(graph_path.c_str());
  std::remove(snap_path.c_str());
  return row;
}

// The full-scale construction row: runs the registry build in a forked child
// under alarm(timeout). When construction does not finish — the expected
// outcome at n = 10^5, where it runs for hours — the elapsed time at the
// SIGALRM is a measured lower bound on the cold build, reported against
// `load_s`, the measured load-to-first-response at the same n (taken from
// the pool row, whose all-edges snapshot is a superset of — so no smaller
// than — any structure snapshot at that n).
Row measure_cold_bound(const std::string& algo, Vertex n, std::uint64_t seed,
                       unsigned timeout_s, double load_s) {
  Row row;
  row.algo = algo;
  row.n = n;
  row.construction = true;
  row.load_s = load_s;

  const Graph g = make_sparse_er(n, seed);
  row.m = g.num_edges();
  Timer cold;
  const pid_t child = fork();
  if (child == 0) {
    ::alarm(timeout_s);
    OracleService service(g, ServiceConfig{.lazy_build = false});
    service.build_structure(algo + "@s0f1", 0, 1, FaultModel::kEdge, algo);
    (void)service.serve(first_request(g));
    _exit(0);
  }
  int status = 0;
  ::waitpid(child, &status, 0);
  row.cold_s = cold.seconds();
  row.cold_completed = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  row.speedup = row.load_s == 0.0 ? 0.0 : row.cold_s / row.load_s;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  bool json = false;
  Vertex pool_n = 100000;
  Vertex real_n = 20000;
  unsigned cold_timeout = 300;
  std::uint64_t seed = 17;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      pool_n = static_cast<Vertex>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--real-n") == 0 && i + 1 < argc) {
      real_n = static_cast<Vertex>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--cold-timeout") == 0 && i + 1 < argc) {
      cold_timeout = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_persist [--small] [--json] [--n N] "
                   "[--real-n N] [--cold-timeout S] [--seed S]\n");
      return 2;
    }
  }
  if (small) {
    pool_n = 5000;
    real_n = 2000;
  }

  const std::string real_algo =
      BuilderRegistry::default_builder(1, FaultModel::kEdge, 1);
  std::vector<Row> rows;
  rows.push_back(measure("pool", pool_n, seed));
  rows.push_back(measure(real_algo, real_n, seed));
  if (!small) {
    rows.push_back(measure_cold_bound(real_algo, pool_n, seed, cold_timeout,
                                      rows[0].load_s));
  }

  bool ok = true;
  for (const Row& row : rows) {
    ok = ok && row.mismatches == 0;
    if (row.construction) ok = ok && row.speedup >= 10.0;
    if (row.snapshot_bytes != 0) ok = ok && row.bytes_ratio < 2.0;
  }

  if (json) {
    std::printf("{\"bench\":\"persist\",\"family\":\"sparse-ER(m=3n)\","
                "\"rows\":[");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::printf(
          "%s{\"algo\":\"%s\",\"n\":%u,\"m\":%u,\"%s\":%.4f,"
          "\"save_s\":%.4f,\"load_first_response_s\":%.4f,\"%s\":%.1f,"
          "\"snapshot_bytes\":%" PRIu64 ",\"resident_bytes\":%" PRIu64
          ",\"bytes_ratio\":%.3f,\"cold_completed\":%s,\"construction\":%s,"
          "\"mismatches\":%" PRIu64 "}",
          i == 0 ? "" : ",", row.algo.c_str(), row.n, row.m,
          row.cold_completed ? "cold_build_s" : "cold_build_lower_bound_s",
          row.cold_s, row.save_s, row.load_s,
          row.cold_completed ? "speedup" : "speedup_lower_bound", row.speedup,
          row.snapshot_bytes, row.resident_bytes, row.bytes_ratio,
          row.cold_completed ? "true" : "false",
          row.construction ? "true" : "false", row.mismatches);
    }
    std::printf("],\"gate\":{\"min_speedup\":10.0,\"max_bytes_ratio\":2.0},"
                "\"pass\":%s}\n",
                ok ? "true" : "false");
  } else {
    std::printf("persistence: cold build vs snapshot load "
                "(time to first response)\n");
    std::printf("%-14s %8s %8s %10s %10s %10s %10s %8s %7s\n", "algo", "n",
                "m", "cold s", "save s", "load s", "speedup", "MiB", "ratio");
    for (const Row& row : rows) {
      const char* bound = row.cold_completed ? " " : ">";
      std::printf("%-14s %8u %8u %s%9.3f %10.3f %10.3f %s%8.1fx %8.2f %7.3f%s\n",
                  row.algo.c_str(), row.n, row.m, bound, row.cold_s, row.save_s,
                  row.load_s, bound, row.speedup,
                  static_cast<double>(row.snapshot_bytes) / (1024.0 * 1024.0),
                  row.bytes_ratio, row.mismatches == 0 ? "" : "  MISMATCH");
    }
    std::printf("gates: construction speedup >= 10x, snapshot < 2x resident "
                "bytes: %s\n",
                ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
