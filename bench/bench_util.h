// Shared helpers for the experiment harnesses (E1-E9). Each bench binary
// regenerates one table/figure of EXPERIMENTS.md and prints it in a stable,
// diff-friendly format via util/table.h.
#pragma once

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "util/powerfit.h"
#include "util/table.h"
#include "util/timer.h"

namespace ftbfs::bench {

// A named graph family: deterministic generator keyed by (n, seed).
struct Family {
  std::string name;
  Graph (*make)(Vertex n, std::uint64_t seed);
};

inline Graph make_sparse_er(Vertex n, std::uint64_t seed) {
  // Average degree ~6 (m ~ 3n), connected.
  return random_connected(n, 3 * n, seed);
}

inline Graph make_dense_er(Vertex n, std::uint64_t seed) {
  return erdos_renyi(n, 0.1, seed);
}

inline Graph make_chorded_path(Vertex n, std::uint64_t seed) {
  return path_with_chords(n, n / 2, seed);
}

inline const std::vector<Family>& standard_families() {
  static const std::vector<Family> families = {
      {"sparse-ER(m=3n)", &make_sparse_er},
      {"dense-ER(p=0.1)", &make_dense_er},
      {"path+chords", &make_chorded_path},
  };
  return families;
}

// Prints a fitted exponent line under a table.
inline void print_fit(const std::string& label, const std::vector<double>& x,
                      const std::vector<double>& y, double reference) {
  if (x.size() < 2) return;
  const PowerFit fit = fit_power_law(x, y);
  std::printf("fit[%s]: y ~ %.3g * n^%.3f (R^2=%.4f), paper exponent %.3f\n",
              label.c_str(), fit.coefficient, fit.exponent, fit.r_squared,
              reference);
}

}  // namespace ftbfs::bench
