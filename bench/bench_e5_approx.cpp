// Experiment E5 (Theorem 1.3): the O(log n) set-cover approximation for
// Minimum FT-MBFS against the exact worst-case-optimal constructions.
//
// The approximation's motivation: on instances whose optimum is far below the
// worst-case Θ(n^{2-1/(f+1)}), greedy should land near the optimum while the
// universal constructions may overshoot. We report greedy vs exact sizes and
// the ratio to the generic lower bound (n-1 edges are always necessary for
// connectivity alone; cycles certify tightness).
#include "bench_util.h"
#include "core/approx_ftmbfs.h"
#include "core/cons2ftbfs.h"
#include "core/single_ftbfs.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E5: greedy set-cover FT-MBFS vs exact constructions");
  table.set_header({"graph", "n", "m", "f", "greedy", "exact", "greedy/exact",
                    "greedy/(n-1)"});

  auto row = [&](const std::string& name, const Graph& g, unsigned f,
                 std::size_t exact_size) {
    const std::vector<Vertex> sources = {0};
    const ApproxResult r = build_approx_ftmbfs(g, sources, f);
    const double greedy = static_cast<double>(r.structure.edges.size());
    table.add_row({name, fmt_u64(g.num_vertices()), fmt_u64(g.num_edges()),
                   fmt_u64(f), fmt_double(greedy, 0), fmt_u64(exact_size),
                   fmt_double(greedy / static_cast<double>(exact_size), 3),
                   fmt_double(greedy / (g.num_vertices() - 1.0), 3)});
  };

  for (const Vertex n : {24u, 36u, 48u}) {
    const Graph g = erdos_renyi(n, 0.2, 3);
    row("ER(p=0.2)", g, 1, build_single_ftbfs(g, 0).edges.size());
  }
  for (const Vertex n : {16u, 24u, 32u}) {
    const Graph g = erdos_renyi(n, 0.25, 5);
    row("ER(p=0.25)", g, 2, build_cons2ftbfs(g, 0).edges.size());
  }
  {
    const Graph g = complete_graph(20);
    row("K20", g, 1, build_single_ftbfs(g, 0).edges.size());
    row("K20", g, 2, build_cons2ftbfs(g, 0).edges.size());
  }
  {
    const Graph g = cycle_graph(24);  // optimum is the whole cycle
    row("C24", g, 1, build_single_ftbfs(g, 0).edges.size());
  }
  {
    const Graph g = barbell_graph(28, 3);
    row("barbell", g, 1, build_single_ftbfs(g, 0).edges.size());
    row("barbell", g, 2, build_cons2ftbfs(g, 0).edges.size());
  }
  table.print(std::cout);
  std::printf(
      "Reading: greedy tracks the exact structures within small constants\n"
      "(well under the Θ(log n) guarantee) and reaches the optimum exactly\n"
      "on the cycle, where the optimum is the whole graph. On dense inputs\n"
      "greedy is close to the ~2(n-1)/3(n-1) connectivity floor.\n");
  return 0;
}
