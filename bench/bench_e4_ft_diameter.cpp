// Experiment E4 (Observation 1.6): on graphs with small f-FT-diameter D_f,
// the generic last-edge structure has O(D_f^f · n) edges. Dense random graphs
// and hypercubes have D_f = O(1), so their exact f-failure structures are
// near-linear — the paper's "easy case (2)".
#include "bench_util.h"
#include "core/ft_diameter.h"
#include "core/kfail_ftbfs.h"
#include "spath/bfs.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E4: generic f-failure structure vs Obs 1.6 bound D_f^f * n");
  table.set_header({"graph", "n", "m", "f", "D_f", "|E(H)|", "D^f*n",
                    "ratio", "chains"});

  auto run = [&](const std::string& name, const Graph& g, unsigned f) {
    const std::uint32_t d = ft_eccentricity(g, 0, f >= 1 ? f - 1 : 0);
    if (d == kInfHops) return;
    const KFailResult r = build_kfail_ftbfs(g, 0, f);
    const double bound = std::pow(static_cast<double>(d), f) *
                         static_cast<double>(g.num_vertices());
    table.add_row({name, fmt_u64(g.num_vertices()), fmt_u64(g.num_edges()),
                   fmt_u64(f), fmt_u64(d), fmt_u64(r.structure.edges.size()),
                   fmt_double(bound, 0),
                   fmt_double(r.structure.edges.size() / bound, 3),
                   fmt_u64(r.kstats.chains_enumerated)});
  };

  for (const Vertex n : {40u, 60u, 80u, 120u}) {
    const Graph g = erdos_renyi(n, 0.35, 5);
    run("dense-ER(p=0.35)", g, 1);
    run("dense-ER(p=0.35)", g, 2);
  }
  for (const unsigned dim : {3u, 4u, 5u}) {
    const Graph g = hypercube_graph(dim);
    run("hypercube-" + std::to_string(dim), g, 1);
    run("hypercube-" + std::to_string(dim), g, 2);
  }
  {
    const Graph g = erdos_renyi(32, 0.5, 9);
    run("dense-ER(p=0.5)", g, 3);  // three faults: the beyond-two-faults case
  }
  {
    const Graph g = complete_graph(24);
    run("K24", g, 2);
    run("K24", g, 3);
  }
  table.print(std::cout);
  std::printf("Reading: ratios stay << 1 — small-FT-diameter graphs admit\n"
              "near-linear exact structures for any constant f, exactly as\n"
              "Obs. 1.6 predicts (and f=3 already works via chain\n"
              "enumeration, the paper's suggested generalization).\n");
  return 0;
}
