// Experiment E8 (usage objective (2), §1): routing/query workload. Distances
// queried on the FT-BFS structure under injected faults must match the full
// graph exactly; the structure is a fraction of G's size and queries on it
// are proportionally cheaper. All query paths go through the engine layer:
// the sequential column runs one full-BFS query per fault set (the seed's
// query path), the batched column runs the same workload through
// FaultQueryEngine::batch — one early-exit BFS per fault set over a fixed
// target list — and the service column serves the same sweep through
// OracleService, whose scenario cache interns canonicalized fault sets. The
// workload is a *repeated-scenario sweep* (each fault set drawn from a small
// pool, ~87% duplicates) — the shape a monitoring dashboard or the failure
// simulator generates — so cached scenarios cost a lookup instead of a BFS.
//
// E8b is the concurrency sweep: 1/2/4/8 workers hammer one OracleService
// with the same repeated-scenario workload (sharded cache, lock-striped read
// path), a cold all-distinct workload (BFS-heavy — measures engine scratch-
// lease scaling), and a single-hot-key workload (every worker racing for one
// cache line — the worst-case shard contention). Flags: --small shrinks the
// matrix for CI smoke runs, --json emits a machine-readable summary instead
// of the tables (CI uploads it as BENCH_e8.json).
//
// E8c is the serve-mode scaling sweep at large n (sparse-ER, n=10^5): the
// same repeated-scenario hammer run in `ftbfs serve`'s two admission modes —
// ordered (a ticket lock sequences admissions; batch K admissions drain per
// acquisition, the `--batch` knob) and relaxed (no ordering, responses
// correlate by id) — at 1/2/4/8 workers. Every row records n, mode, and
// batch so the CI gate can key on them; the acceptance bar is relaxed
// speedup > 1 at 4 workers on >= 4 hardware threads, with ordered close
// behind (admission is the only serialized section — BFS misses and payload
// copies run in execute(), outside the ticket lock).
#include <atomic>
#include <cstring>
#include <memory>
#include <numeric>
#include <thread>

#include "bench_util.h"
#include "engine/query_engine.h"
#include "engine/registry.h"
#include "service/oracle_service.h"
#include "service/work_queue.h"
#include "util/concurrency.h"
#include "util/rng.h"

namespace {

using namespace ftbfs;
using namespace ftbfs::bench;

struct SweepRow {
  unsigned threads = 1;
  double us_repeat = 0.0;
  double speedup_repeat = 1.0;
  double hit_rate = 0.0;
  double us_cold = 0.0;
  double speedup_cold = 1.0;
  double us_hot = 0.0;
  double speedup_hot = 1.0;
  std::uint64_t mismatches = 0;
};

// Serves requests[i] for i ≡ worker (mod threads) on each of `threads`
// workers against one shared service; returns wall seconds. Distances are
// checked against `truth` outside the timer via `mismatches`.
double hammer(OracleService& service, const std::vector<QueryRequest>& requests,
              const std::vector<std::uint32_t>& truth, std::size_t cols,
              unsigned threads, std::uint64_t& mismatches) {
  std::vector<std::uint32_t> got(truth.size(), 0);
  Timer timer;
  auto run = [&](unsigned worker) {
    for (std::size_t q = worker; q < requests.size(); q += threads) {
      const QueryResponse resp = service.serve(requests[q]);
      for (std::size_t j = 0; j < cols; ++j) {
        got[q * cols + j] = resp.distances[j];
      }
    }
  };
  if (threads == 1) {
    run(0);
  } else {
    std::vector<std::thread> crew;
    crew.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) crew.emplace_back(run, w);
    for (std::thread& t : crew) t.join();
  }
  const double seconds = timer.seconds();
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (got[i] != truth[i]) ++mismatches;
  }
  return seconds;
}

// Ordered-mode hammer: workers pull dense runs of `batch` consecutive
// requests from a shared counter, sequence the admissions through a ticket
// lock (ticket = request index, one wait_for/advance_n per run — the batched
// admission path of `ftbfs serve --mode ordered --batch K`), and execute out
// of order. Returns wall seconds; distances checked outside the timer.
double hammer_ordered(OracleService& service,
                      const std::vector<QueryRequest>& requests,
                      const std::vector<std::uint32_t>& truth, std::size_t cols,
                      unsigned threads, std::size_t batch,
                      std::uint64_t& mismatches) {
  std::vector<std::uint32_t> got(truth.size(), 0);
  RequestSequencer order;
  std::atomic<std::size_t> next{0};
  Timer timer;
  auto run = [&] {
    std::vector<OracleService::Admission> admitted;
    admitted.reserve(batch);
    for (;;) {
      // fetch_add hands out consecutive runs in increasing order, so the
      // ticket sequence stays dense and the wait below cannot deadlock.
      const std::size_t first = next.fetch_add(batch);
      if (first >= requests.size()) break;
      const std::size_t count = std::min(batch, requests.size() - first);
      admitted.clear();
      order.wait_for(first);
      for (std::size_t i = 0; i < count; ++i) {
        admitted.push_back(service.admit(requests[first + i]));
      }
      order.advance_n(count);
      for (std::size_t i = 0; i < count; ++i) {
        const QueryResponse resp = service.execute(std::move(admitted[i]));
        for (std::size_t j = 0; j < cols; ++j) {
          got[(first + i) * cols + j] = resp.distances[j];
        }
      }
    }
  };
  if (threads == 1) {
    run();
  } else {
    std::vector<std::thread> crew;
    crew.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) crew.emplace_back(run);
    for (std::thread& t : crew) t.join();
  }
  const double seconds = timer.seconds();
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (got[i] != truth[i]) ++mismatches;
  }
  return seconds;
}

// Fresh single-entry service over the prebuilt structure, mirroring the E8a
// service column so the sweep measures concurrency, not configuration.
std::unique_ptr<OracleService> make_sweep_service(
    const Graph& g, const BuildResult& built, Vertex source,
    std::size_t cache_capacity,
    double cache_delta_fraction = ServiceConfig{}.cache_delta_max_fraction) {
  ServiceConfig config;
  config.lazy_build = false;
  config.cache_capacity = cache_capacity;
  config.cache_delta_max_fraction = cache_delta_fraction;
  auto service = std::make_unique<OracleService>(g, config);
  service->add_structure("cons2", source, 2, FaultModel::kEdge,
                         built.structure.edges);
  return service;  // the service is pinned to its address (mutexes inside)
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--small]\n", argv[0]);
      return 2;
    }
  }

  Table table("E8: repeated-scenario query sweep under fault injection");
  table.set_header({"family", "n", "|H|/m", "queries", "dup%", "mm", "us/q G",
                    "us/q full", "us/q dlt", "us/q batch", "us/q svc", "hit%",
                    "dlt x", "batch x", "svc x", "sf x", "pq x", "B/ln shr"});
  std::string families_json;

  const std::vector<Vertex> sizes =
      small ? std::vector<Vertex>{256u} : std::vector<Vertex>{256u, 512u, 1024u};
  const std::size_t family_limit = small ? 1 : standard_families().size();

  for (std::size_t fi = 0; fi < family_limit; ++fi) {
    const Family& family = standard_families()[fi];
    for (const Vertex n : sizes) {
      const Graph g = family.make(n, 13);
      BuildRequest req;
      req.graph = &g;
      req.sources = {0};
      req.fault_budget = 2;
      const BuildResult built =
          BuilderRegistry::instance().build("cons2ftbfs", req);

      FaultQueryEngine g_engine(g);  // ground truth from the full graph
      // The pre-PR query path (every query a full masked BFS) and the
      // two-tier delta path, over the same structure: the ratio between
      // them is the delta speedup the CI perf gate tracks.
      FaultQueryEngine h_engine(g, built.structure);
      h_engine.set_delta_options({.enabled = false});
      FaultQueryEngine d_engine(g, built.structure);

      // Workload: `queries` fault sets of 0-2 edges drawn from a pool of
      // `unique` distinct scenarios (so ~7/8 of the sweep repeats an earlier
      // scenario), each asking distances to a fixed sample of targets.
      Rng rng(99);
      const int queries = 500;
      const int unique = queries / 8;
      const std::size_t targets_per_query = 32;
      std::vector<std::vector<EdgeId>> fault_pool(unique);
      for (auto& faults : fault_pool) {
        const int k = static_cast<int>(rng.next_below(3));
        for (int i = 0; i < k; ++i) {
          faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
        }
      }
      std::vector<FaultSpec> fault_sets(queries);
      std::vector<int> pick(queries);
      int duplicates = 0;
      std::vector<bool> seen(unique, false);
      for (int q = 0; q < queries; ++q) {
        pick[q] = static_cast<int>(rng.next_below(unique));
        if (seen[pick[q]]) ++duplicates;
        seen[pick[q]] = true;
        fault_sets[q] = edge_faults(fault_pool[pick[q]]);
      }
      std::vector<Vertex> targets;
      for (std::size_t i = 0; i < targets_per_query; ++i) {
        targets.push_back(static_cast<Vertex>(rng.next_below(n)));
      }

      // All timed regions do the same work — one query per fault set, matrix
      // of target distances written out — so the ratios compare query paths,
      // not bookkeeping. Mismatch counting happens outside the timers.
      std::vector<std::uint32_t> truth(queries * targets.size());
      Timer tg;
      for (int q = 0; q < queries; ++q) {
        const auto& hops = g_engine.all_distances(0, fault_sets[q]);
        for (std::size_t j = 0; j < targets.size(); ++j) {
          truth[q * targets.size() + j] = hops[targets[j]];
        }
      }
      const double g_time = tg.seconds();

      std::vector<std::uint32_t> seq(queries * targets.size());
      Timer th;
      for (int q = 0; q < queries; ++q) {
        const auto& hops = h_engine.all_distances(0, fault_sets[q]);
        for (std::size_t j = 0; j < targets.size(); ++j) {
          seq[q * targets.size() + j] = hops[targets[j]];
        }
      }
      const double h_time = th.seconds();

      // The delta path on the same repeated-scenario workload: misses of the
      // baseline tree answer in O(|targets|), tree damage repairs subtrees.
      std::vector<std::uint32_t> dlt(queries * targets.size());
      Timer td;
      for (int q = 0; q < queries; ++q) {
        const auto& hops = d_engine.all_distances(0, fault_sets[q]);
        for (std::size_t j = 0; j < targets.size(); ++j) {
          dlt[q * targets.size() + j] = hops[targets[j]];
        }
      }
      const double d_time = td.seconds();

      // Single-fault workload (the simulator / monitoring shape): one
      // uniformly random faulted edge per query, all-distances served.
      const int sf_queries = queries;
      std::vector<EdgeId> sf_edges(sf_queries);
      for (int q = 0; q < sf_queries; ++q) {
        sf_edges[q] = static_cast<EdgeId>(rng.next_below(g.num_edges()));
      }
      std::uint64_t sf_mismatches = 0;
      Timer tsf_full;
      for (int q = 0; q < sf_queries; ++q) {
        const std::span<const EdgeId> one(&sf_edges[q], 1);
        (void)h_engine.all_distances(0, edge_faults(one));
      }
      const double sf_full_time = tsf_full.seconds();
      Timer tsf_delta;
      for (int q = 0; q < sf_queries; ++q) {
        const std::span<const EdgeId> one(&sf_edges[q], 1);
        (void)d_engine.all_distances(0, edge_faults(one));
      }
      const double sf_delta_time = tsf_delta.seconds();

      // Parent-query workload: shortest_path under a tree-edge fault — the
      // shape that fell back to a full masked BFS before the parent-carrying
      // repair. Faults are parent edges of H's own baseline tree (mapped
      // back to host ids), so every query is genuinely damaged.
      const Graph& h_graph = d_engine.structure_graph();
      Bfs h_bfs(h_graph);
      const BfsResult h_tree = h_bfs.run(0);
      std::vector<EdgeId> pq_faults;
      std::vector<Vertex> pq_targets;
      for (int q = 0; q < queries; ++q) {
        const Vertex v = static_cast<Vertex>(rng.next_below(n));
        if (h_tree.parent_edge[v] == kInvalidEdge) continue;
        pq_faults.push_back(built.structure.edges[h_tree.parent_edge[v]]);
        pq_targets.push_back(static_cast<Vertex>(rng.next_below(n)));
      }
      Timer tpq_full;
      for (std::size_t q = 0; q < pq_faults.size(); ++q) {
        const std::span<const EdgeId> one(&pq_faults[q], 1);
        (void)h_engine.shortest_path(0, pq_targets[q], edge_faults(one));
      }
      const double pq_full_time = tpq_full.seconds();
      Timer tpq_delta;
      for (std::size_t q = 0; q < pq_faults.size(); ++q) {
        const std::span<const EdgeId> one(&pq_faults[q], 1);
        (void)d_engine.shortest_path(0, pq_targets[q], edge_faults(one));
      }
      const double pq_delta_time = tpq_delta.seconds();

      // Counter snapshot here so the JSON attributes fast/repair/full to
      // exactly the three timed delta workloads above (repeated sweep,
      // single-fault, parent-query) — not to the untimed verification loops
      // below or the batch sweep.
      const FaultQueryEngine::PathStats paths = d_engine.path_stats();

      // Untimed verification. Single-fault: bit-identical distance vectors.
      for (int q = 0; q < sf_queries; ++q) {
        const std::span<const EdgeId> one(&sf_edges[q], 1);
        const auto& full_hops = h_engine.all_distances(0, edge_faults(one));
        if (full_hops != d_engine.all_distances(0, edge_faults(one))) {
          ++sf_mismatches;
        }
      }
      // Parent-query: identical reachability and hop counts (the realized
      // tie-break may differ; the length may not).
      std::uint64_t pq_mismatches = 0;
      for (std::size_t q = 0; q < pq_faults.size(); ++q) {
        const std::span<const EdgeId> one(&pq_faults[q], 1);
        const auto fp = h_engine.shortest_path(0, pq_targets[q],
                                               edge_faults(one));
        const auto dp = d_engine.shortest_path(0, pq_targets[q],
                                               edge_faults(one));
        if (fp.has_value() != dp.has_value() ||
            (fp.has_value() && fp->size() != dp->size())) {
          ++pq_mismatches;
        }
      }

      // The batched path: one call, early-exit BFS per fault set (delta
      // classification per row — the production batch path).
      Timer tb;
      const std::vector<std::uint32_t> batched =
          d_engine.batch(0, fault_sets, targets);
      const double b_time = tb.seconds();

      // The service path: typed requests against an OracleService whose pool
      // holds the same structure; repeated scenarios hit the LRU cache.
      const auto service = make_sweep_service(
          g, built, 0, static_cast<std::size_t>(unique) + 16);
      QueryRequest request;
      request.source = 0;
      request.targets = targets;
      request.kind = QueryKind::kDistance;
      std::vector<std::uint32_t> served(queries * targets.size());
      Timer ts;
      for (int q = 0; q < queries; ++q) {
        request.fault_edges = fault_pool[pick[q]];
        const QueryResponse resp = service->serve(request);
        for (std::size_t j = 0; j < targets.size(); ++j) {
          served[q * targets.size() + j] = resp.distances[j];
        }
      }
      const double s_time = ts.seconds();

      // The same sweep against a full-vector-line service (delta compression
      // off), untimed: hit/miss/eviction accounting must be representation-
      // independent, and the resident-bytes ratio is the memory headline.
      const auto full_line_service = make_sweep_service(
          g, built, 0, static_cast<std::size_t>(unique) + 16, 0.0);
      std::uint64_t cache_mismatches = 0;
      for (int q = 0; q < queries; ++q) {
        request.fault_edges = fault_pool[pick[q]];
        const QueryResponse resp = full_line_service->serve(request);
        for (std::size_t j = 0; j < targets.size(); ++j) {
          if (served[q * targets.size() + j] != resp.distances[j]) {
            ++cache_mismatches;
          }
        }
      }
      const ServiceStats delta_cache_stats = service->stats();
      const ServiceStats full_cache_stats = full_line_service->stats();
      if (delta_cache_stats.cache_hits != full_cache_stats.cache_hits ||
          delta_cache_stats.cache_misses != full_cache_stats.cache_misses ||
          delta_cache_stats.cache_evictions !=
              full_cache_stats.cache_evictions ||
          delta_cache_stats.cache_lines != full_cache_stats.cache_lines) {
        ++cache_mismatches;
      }
      const double bytes_per_line_delta =
          delta_cache_stats.cache_bytes_per_line();
      const double bytes_per_line_full =
          full_cache_stats.cache_bytes_per_line();
      // Denominator floored at one byte: a workload whose diffs are all
      // empty would otherwise report an unbounded (and gate-hostile) ratio.
      const double line_shrink =
          bytes_per_line_full / std::max(bytes_per_line_delta, 1.0);

      // Correctness cross-check, untimed: the sequential, delta, batched,
      // and service matrices against ground truth.
      std::uint64_t mismatches = sf_mismatches + pq_mismatches +
                                 cache_mismatches;
      for (std::size_t i = 0; i < truth.size(); ++i) {
        if (seq[i] != truth[i]) ++mismatches;
        if (dlt[i] != truth[i]) ++mismatches;
        if (batched[i] != truth[i]) ++mismatches;
        if (served[i] != truth[i]) ++mismatches;
      }

      const double hit_rate = delta_cache_stats.cache_hit_rate();
      const double delta_speedup = h_time / std::max(d_time, 1e-12);
      const double sf_speedup = sf_full_time / std::max(sf_delta_time, 1e-12);
      const double pq_speedup = pq_full_time / std::max(pq_delta_time, 1e-12);
      table.add_row(
          {family.name, fmt_u64(n),
           fmt_double(
               static_cast<double>(built.structure.edges.size()) / g.num_edges(),
               3),
           fmt_int(queries),
           fmt_double(100.0 * duplicates / queries, 0), fmt_u64(mismatches),
           fmt_double(1e6 * g_time / queries, 1),
           fmt_double(1e6 * h_time / queries, 1),
           fmt_double(1e6 * d_time / queries, 1),
           fmt_double(1e6 * b_time / queries, 1),
           fmt_double(1e6 * s_time / queries, 1),
           fmt_double(100.0 * hit_rate, 0),
           fmt_double(delta_speedup, 2),
           fmt_double(h_time / std::max(b_time, 1e-12), 2),
           fmt_double(h_time / std::max(s_time, 1e-12), 2),
           fmt_double(sf_speedup, 2),
           fmt_double(pq_speedup, 2),
           fmt_double(line_shrink, 1)});

      char row[1152];
      std::snprintf(row, sizeof row,
                    "%s{\"family\":\"%s\",\"n\":%u,\"queries\":%d,"
                    "\"mismatches\":%llu,\"us_per_query_full\":%.2f,"
                    "\"us_per_query_delta\":%.2f,\"delta_speedup\":%.2f,"
                    "\"single_fault_speedup\":%.2f,"
                    "\"us_per_query_path_full\":%.2f,"
                    "\"us_per_query_path_delta\":%.2f,"
                    "\"parent_query_speedup\":%.2f,"
                    "\"us_per_query_service\":%.2f,"
                    "\"cache_hit_rate\":%.3f,\"service_speedup\":%.2f,"
                    "\"cache_bytes_per_line_full\":%.1f,"
                    "\"cache_bytes_per_line_delta\":%.1f,"
                    "\"cache_line_shrink\":%.2f,"
                    "\"fast_path_hits\":%llu,\"repair_bfs\":%llu,"
                    "\"full_bfs\":%llu}",
                    families_json.empty() ? "" : ",", family.name.c_str(), n,
                    queries, static_cast<unsigned long long>(mismatches),
                    1e6 * h_time / queries, 1e6 * d_time / queries,
                    delta_speedup, sf_speedup,
                    1e6 * pq_full_time / std::max<std::size_t>(1, pq_faults.size()),
                    1e6 * pq_delta_time / std::max<std::size_t>(1, pq_faults.size()),
                    pq_speedup, 1e6 * s_time / queries,
                    hit_rate, h_time / std::max(s_time, 1e-12),
                    bytes_per_line_full, bytes_per_line_delta, line_shrink,
                    static_cast<unsigned long long>(paths.fast_path_hits),
                    static_cast<unsigned long long>(paths.repair_bfs),
                    static_cast<unsigned long long>(paths.full_bfs));
      families_json += row;
    }
  }

  // --- E8b: thread sweep over one shared service ---------------------------
  // One representative config; every thread count replays the same request
  // lists against a fresh service, so row-to-row ratios isolate concurrency.
  const Family& sweep_family = standard_families()[0];
  const Vertex sweep_n = small ? 256u : 1024u;
  const int sweep_queries = small ? 1000 : 4000;
  const Graph g = sweep_family.make(sweep_n, 13);
  BuildRequest breq;
  breq.graph = &g;
  breq.sources = {0};
  breq.fault_budget = 2;
  const BuildResult built = BuilderRegistry::instance().build("cons2ftbfs", breq);

  Rng rng(7);
  const int unique = sweep_queries / 8;
  const std::size_t cols = 32;
  std::vector<Vertex> targets;
  for (std::size_t i = 0; i < cols; ++i) {
    targets.push_back(static_cast<Vertex>(rng.next_below(sweep_n)));
  }
  std::vector<std::vector<EdgeId>> fault_pool(unique);
  for (auto& faults : fault_pool) {
    const int k = static_cast<int>(rng.next_below(3));
    for (int i = 0; i < k; ++i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
  }
  QueryRequest skeleton;
  skeleton.source = 0;
  skeleton.targets = targets;
  skeleton.kind = QueryKind::kDistance;
  // repeated: ~87% duplicates; cold: every scenario distinct; hot: one
  // scenario for the whole run (all workers racing for a single line).
  std::vector<QueryRequest> repeat_reqs(sweep_queries, skeleton);
  std::vector<QueryRequest> cold_reqs(sweep_queries, skeleton);
  std::vector<QueryRequest> hot_reqs(sweep_queries, skeleton);
  for (int q = 0; q < sweep_queries; ++q) {
    repeat_reqs[q].fault_edges =
        fault_pool[rng.next_below(static_cast<std::uint64_t>(unique))];
    cold_reqs[q].fault_edges = {
        static_cast<EdgeId>(rng.next_below(g.num_edges())),
        static_cast<EdgeId>(q % g.num_edges())};
    hot_reqs[q].fault_edges = fault_pool[0];
  }

  // Ground truth per workload, computed once on the identity engine.
  FaultQueryEngine g_engine(g);
  auto truth_for = [&](const std::vector<QueryRequest>& reqs) {
    std::vector<std::uint32_t> truth(reqs.size() * cols);
    for (std::size_t q = 0; q < reqs.size(); ++q) {
      const auto& hops =
          g_engine.all_distances(0, edge_faults(reqs[q].fault_edges));
      for (std::size_t j = 0; j < cols; ++j) {
        truth[q * cols + j] = hops[targets[j]];
      }
    }
    return truth;
  };
  const std::vector<std::uint32_t> repeat_truth = truth_for(repeat_reqs);
  const std::vector<std::uint32_t> cold_truth = truth_for(cold_reqs);
  const std::vector<std::uint32_t> hot_truth = truth_for(hot_reqs);

  std::vector<SweepRow> sweep;
  double base_repeat = 0.0, base_cold = 0.0, base_hot = 0.0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    SweepRow row;
    row.threads = threads;
    {
      const auto service = make_sweep_service(
          g, built, 0, static_cast<std::size_t>(unique) + 16);
      const double secs = hammer(*service, repeat_reqs, repeat_truth, cols,
                                 threads, row.mismatches);
      row.us_repeat = 1e6 * secs / sweep_queries;
      row.hit_rate = service->stats().cache_hit_rate();
      if (threads == 1) base_repeat = row.us_repeat;
      row.speedup_repeat = base_repeat / std::max(row.us_repeat, 1e-9);
    }
    {
      const auto service = make_sweep_service(
          g, built, 0, static_cast<std::size_t>(sweep_queries) + 16);
      const double secs = hammer(*service, cold_reqs, cold_truth, cols,
                                 threads, row.mismatches);
      row.us_cold = 1e6 * secs / sweep_queries;
      if (threads == 1) base_cold = row.us_cold;
      row.speedup_cold = base_cold / std::max(row.us_cold, 1e-9);
    }
    {
      const auto service = make_sweep_service(g, built, 0, 64);
      const double secs = hammer(*service, hot_reqs, hot_truth, cols, threads,
                                 row.mismatches);
      row.us_hot = 1e6 * secs / sweep_queries;
      if (threads == 1) base_hot = row.us_hot;
      row.speedup_hot = base_hot / std::max(row.us_hot, 1e-9);
    }
    sweep.push_back(row);
  }

  // --- E8c: serve-mode scaling sweep (large n) -----------------------------
  // Fixed at n=10^5 even under --small (the CI gate keys on the large-n
  // point); --small only trims the request count. The pool entry is the
  // whole graph (add_structure over every edge), so the sweep pays no
  // cons2ftbfs construction at this scale and every <=2-fault request routes
  // to a budget-2 entry. Truth is computed once per distinct scenario (the
  // pool is small), not per request — full verification at sampled-BFS cost.
  const Vertex scale_n = 100000;
  const int scale_queries = small ? 1000 : 3000;
  const int scale_unique = 64;
  const Graph sg = make_sparse_er(scale_n, 17);
  std::vector<EdgeId> all_edges(sg.num_edges());
  std::iota(all_edges.begin(), all_edges.end(), 0);
  auto make_scale_service = [&](std::size_t capacity) {
    ServiceConfig config;
    config.lazy_build = false;
    config.cache_capacity = capacity;
    auto service = std::make_unique<OracleService>(sg, config);
    service->add_structure("all", 0, 2, FaultModel::kEdge, all_edges);
    return service;
  };

  Rng scale_rng(23);
  std::vector<Vertex> scale_targets;
  for (std::size_t i = 0; i < cols; ++i) {
    scale_targets.push_back(static_cast<Vertex>(scale_rng.next_below(scale_n)));
  }
  std::vector<std::vector<EdgeId>> scale_pool(scale_unique);
  for (auto& faults : scale_pool) {
    const int k = static_cast<int>(scale_rng.next_below(3));
    for (int i = 0; i < k; ++i) {
      faults.push_back(static_cast<EdgeId>(scale_rng.next_below(sg.num_edges())));
    }
  }
  QueryRequest scale_skeleton;
  scale_skeleton.source = 0;
  scale_skeleton.targets = scale_targets;
  scale_skeleton.kind = QueryKind::kDistance;
  std::vector<QueryRequest> scale_reqs(scale_queries, scale_skeleton);
  std::vector<int> scale_pick(scale_queries);
  for (int q = 0; q < scale_queries; ++q) {
    scale_pick[q] = static_cast<int>(
        scale_rng.next_below(static_cast<std::uint64_t>(scale_unique)));
    scale_reqs[q].fault_edges = scale_pool[scale_pick[q]];
  }
  FaultQueryEngine sg_engine(sg);
  std::vector<std::vector<std::uint32_t>> pool_truth(scale_unique);
  for (int e = 0; e < scale_unique; ++e) {
    const auto& hops =
        sg_engine.all_distances(0, edge_faults(scale_pool[e]));
    pool_truth[e].resize(cols);
    for (std::size_t j = 0; j < cols; ++j) {
      pool_truth[e][j] = hops[scale_targets[j]];
    }
  }
  std::vector<std::uint32_t> scale_truth(scale_queries * cols);
  for (int q = 0; q < scale_queries; ++q) {
    for (std::size_t j = 0; j < cols; ++j) {
      scale_truth[q * cols + j] = pool_truth[scale_pick[q]][j];
    }
  }

  struct ScaleRow {
    unsigned threads = 1;
    const char* mode = "ordered";
    std::size_t batch = 1;  // admissions per ticket acquisition; 0 = relaxed
    double us = 0.0;
    double speedup = 1.0;  // vs the same mode+batch config at 1 thread
    double hit_rate = 0.0;
    std::uint64_t mismatches = 0;
  };
  const struct {
    const char* mode;
    std::size_t batch;
  } scale_configs[] = {{"ordered", 1}, {"ordered", 8}, {"relaxed", 0}};
  std::vector<ScaleRow> scale;
  double scale_base[3] = {0.0, 0.0, 0.0};
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    for (std::size_t c = 0; c < 3; ++c) {
      ScaleRow row;
      row.threads = threads;
      row.mode = scale_configs[c].mode;
      row.batch = scale_configs[c].batch;
      const auto service =
          make_scale_service(static_cast<std::size_t>(scale_unique) + 16);
      const double secs =
          row.batch == 0
              ? hammer(*service, scale_reqs, scale_truth, cols, threads,
                       row.mismatches)
              : hammer_ordered(*service, scale_reqs, scale_truth, cols,
                               threads, row.batch, row.mismatches);
      row.us = 1e6 * secs / scale_queries;
      row.hit_rate = service->stats().cache_hit_rate();
      if (threads == 1) scale_base[c] = row.us;
      row.speedup = scale_base[c] / std::max(row.us, 1e-9);
      scale.push_back(row);
    }
  }

  if (json) {
    std::printf("{\"bench\":\"e8_queries\",\"hardware_threads\":%u,"
                "\"families\":[%s],\"thread_sweep\":{\"family\":\"%s\","
                "\"n\":%u,\"queries\":%d,\"rows\":[",
                hardware_workers(), families_json.c_str(),
                sweep_family.name.c_str(), sweep_n, sweep_queries);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SweepRow& r = sweep[i];
      std::printf(
          "%s{\"threads\":%u,\"n\":%u,\"mode\":\"relaxed\",\"batch\":0,"
          "\"us_per_query_repeat\":%.2f,"
          "\"speedup_repeat\":%.2f,\"hit_rate\":%.3f,"
          "\"us_per_query_cold\":%.2f,\"speedup_cold\":%.2f,"
          "\"us_per_query_hot\":%.2f,\"speedup_hot\":%.2f,"
          "\"mismatches\":%llu}",
          i == 0 ? "" : ",", r.threads, sweep_n, r.us_repeat, r.speedup_repeat,
          r.hit_rate, r.us_cold, r.speedup_cold, r.us_hot, r.speedup_hot,
          static_cast<unsigned long long>(r.mismatches));
    }
    std::printf("]},\"scale_sweep\":{\"family\":\"%s\",\"n\":%u,"
                "\"queries\":%d,\"unique\":%d,\"rows\":[",
                sweep_family.name.c_str(), scale_n, scale_queries,
                scale_unique);
    for (std::size_t i = 0; i < scale.size(); ++i) {
      const ScaleRow& r = scale[i];
      std::printf(
          "%s{\"threads\":%u,\"n\":%u,\"mode\":\"%s\",\"batch\":%zu,"
          "\"us_per_query\":%.2f,\"speedup\":%.2f,\"hit_rate\":%.3f,"
          "\"mismatches\":%llu}",
          i == 0 ? "" : ",", r.threads, scale_n, r.mode, r.batch, r.us,
          r.speedup, r.hit_rate,
          static_cast<unsigned long long>(r.mismatches));
    }
    std::printf("]}}\n");
    return 0;
  }

  table.print(std::cout);
  std::printf(
      "E8 columns: 'us/q full' is the pre-delta path (one full masked BFS\n"
      "per fault set over H); 'us/q dlt' is the two-tier delta path (baseline\n"
      "fast path / repair BFS / threshold fallback; docs/perf.md); 'dlt x'\n"
      "their ratio on the repeated 0-2-fault sweep and 'sf x' on the\n"
      "single-fault workload (acceptance bar: >=2x on both). 'pq x' is the\n"
      "parent-query ratio: shortest_path under a tree-edge fault, repair\n"
      "path vs the pre-PR full-BFS fallback (bar: >=2x). 'B/ln shr' is the\n"
      "scenario-cache resident-bytes-per-line shrink of delta-compressed\n"
      "lines vs full vectors on the same sweep (bar: >=5x), with hit/miss/\n"
      "eviction counters identical in both representations.\n\n");
  Table sweep_table("E8b: service thread sweep (shared OracleService, " +
                    sweep_family.name + ", n=" + std::to_string(sweep_n) + ")");
  sweep_table.set_header({"threads", "mm", "us/q rep", "x rep", "hit%",
                          "us/q cold", "x cold", "us/q hot", "x hot"});
  for (const SweepRow& r : sweep) {
    sweep_table.add_row({fmt_u64(r.threads), fmt_u64(r.mismatches),
                         fmt_double(r.us_repeat, 1),
                         fmt_double(r.speedup_repeat, 2),
                         fmt_double(100.0 * r.hit_rate, 0),
                         fmt_double(r.us_cold, 1),
                         fmt_double(r.speedup_cold, 2),
                         fmt_double(r.us_hot, 1),
                         fmt_double(r.speedup_hot, 2)});
  }
  sweep_table.print(std::cout);
  std::printf(
      "Reading: zero mismatches — every query path answers exact distances.\n"
      "E8: the sequential column pays one full BFS per fault set; the batched\n"
      "column's early-exit BFS stops once the target sample is settled; the\n"
      "service column pays a BFS only on a scenario-cache miss, so on this\n"
      "~87%%-duplicate sweep its per-query cost approaches a table lookup\n"
      "(svc x is the service speedup over the sequential engine path — the\n"
      "acceptance bar is 2x at >=50%% duplicates).\n"
      "E8b: workers share one service. 'rep' is the repeated-scenario sweep\n"
      "(shared-lock cache hits, the acceptance workload: >1.8x at 4 workers\n"
      "on >=4 hardware threads); 'cold' is all-distinct (BFS on leased\n"
      "scratch); 'hot' hammers a single cache line (worst-case shard\n"
      "contention).\n\n");
  Table scale_table("E8c: serve-mode scaling sweep (" + sweep_family.name +
                    ", n=" + std::to_string(scale_n) + ")");
  scale_table.set_header(
      {"threads", "mode", "batch", "mm", "us/q", "x vs 1thr", "hit%"});
  for (const ScaleRow& r : scale) {
    scale_table.add_row({fmt_u64(r.threads), r.mode, fmt_u64(r.batch),
                         fmt_u64(r.mismatches), fmt_double(r.us, 1),
                         fmt_double(r.speedup, 2),
                         fmt_double(100.0 * r.hit_rate, 0)});
  }
  scale_table.print(std::cout);
  std::printf(
      "E8c: the serve --mode sweep at n=10^5. 'ordered' sequences admissions\n"
      "through a ticket lock ('batch' admissions per acquisition — the\n"
      "--batch knob); 'relaxed' skips ordering entirely (responses correlate\n"
      "by id). BFS misses and payload copies run outside the ticket lock in\n"
      "both modes, so ordered tracks relaxed closely; the acceptance bar is\n"
      "relaxed speedup > 1 at 4 workers on >= 4 hardware threads.\n");
  return 0;
}
