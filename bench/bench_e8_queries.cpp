// Experiment E8 (usage objective (2), §1): routing/query workload. Distances
// queried on the FT-BFS structure under injected faults must match the full
// graph exactly; the structure is a fraction of G's size and queries on it
// are proportionally cheaper. All query paths go through the engine layer:
// the sequential column runs one full-BFS query per fault set (the seed's
// query path), the batched column runs the same workload through
// FaultQueryEngine::batch — one early-exit BFS per fault set over a fixed
// target list — and the service column serves the same sweep through
// OracleService, whose scenario cache interns canonicalized fault sets. The
// workload is a *repeated-scenario sweep* (each fault set drawn from a small
// pool, ~87% duplicates) — the shape a monitoring dashboard or the failure
// simulator generates — so cached scenarios cost a lookup instead of a BFS.
#include "bench_util.h"
#include "engine/query_engine.h"
#include "engine/registry.h"
#include "service/oracle_service.h"
#include "util/rng.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E8: repeated-scenario query sweep under fault injection");
  table.set_header({"family", "n", "|H|/m", "queries", "dup%", "mm", "us/q G",
                    "us/q H", "us/q batch", "us/q svc", "hit%", "speedup",
                    "batch x", "svc x"});

  for (const Family& family : standard_families()) {
    for (const Vertex n : {256u, 512u, 1024u}) {
      const Graph g = family.make(n, 13);
      BuildRequest req;
      req.graph = &g;
      req.sources = {0};
      req.fault_budget = 2;
      const BuildResult built =
          BuilderRegistry::instance().build("cons2ftbfs", req);

      FaultQueryEngine g_engine(g);  // ground truth from the full graph
      FaultQueryEngine h_engine(g, built.structure);

      // Workload: `queries` fault sets of 0-2 edges drawn from a pool of
      // `unique` distinct scenarios (so ~7/8 of the sweep repeats an earlier
      // scenario), each asking distances to a fixed sample of targets.
      Rng rng(99);
      const int queries = 500;
      const int unique = queries / 8;
      const std::size_t targets_per_query = 32;
      std::vector<std::vector<EdgeId>> fault_pool(unique);
      for (auto& faults : fault_pool) {
        const int k = static_cast<int>(rng.next_below(3));
        for (int i = 0; i < k; ++i) {
          faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
        }
      }
      std::vector<FaultSpec> fault_sets(queries);
      std::vector<int> pick(queries);
      int duplicates = 0;
      std::vector<bool> seen(unique, false);
      for (int q = 0; q < queries; ++q) {
        pick[q] = static_cast<int>(rng.next_below(unique));
        if (seen[pick[q]]) ++duplicates;
        seen[pick[q]] = true;
        fault_sets[q] = edge_faults(fault_pool[pick[q]]);
      }
      std::vector<Vertex> targets;
      for (std::size_t i = 0; i < targets_per_query; ++i) {
        targets.push_back(static_cast<Vertex>(rng.next_below(n)));
      }

      // All timed regions do the same work — one query per fault set, matrix
      // of target distances written out — so the ratios compare query paths,
      // not bookkeeping. Mismatch counting happens outside the timers.
      std::vector<std::uint32_t> truth(queries * targets.size());
      Timer tg;
      for (int q = 0; q < queries; ++q) {
        const auto& hops = g_engine.all_distances(0, fault_sets[q]);
        for (std::size_t j = 0; j < targets.size(); ++j) {
          truth[q * targets.size() + j] = hops[targets[j]];
        }
      }
      const double g_time = tg.seconds();

      std::vector<std::uint32_t> seq(queries * targets.size());
      Timer th;
      for (int q = 0; q < queries; ++q) {
        const auto& hops = h_engine.all_distances(0, fault_sets[q]);
        for (std::size_t j = 0; j < targets.size(); ++j) {
          seq[q * targets.size() + j] = hops[targets[j]];
        }
      }
      const double h_time = th.seconds();

      // The batched path: one call, early-exit BFS per fault set.
      Timer tb;
      const std::vector<std::uint32_t> batched =
          h_engine.batch(0, fault_sets, targets);
      const double b_time = tb.seconds();

      // The service path: typed requests against an OracleService whose pool
      // holds the same structure; repeated scenarios hit the LRU cache.
      ServiceConfig config;
      config.lazy_build = false;
      config.cache_capacity = static_cast<std::size_t>(unique) + 16;
      OracleService service(g, config);
      service.add_structure("cons2", 0, 2, FaultModel::kEdge,
                            built.structure.edges);
      QueryRequest request;
      request.source = 0;
      request.targets = targets;
      request.kind = QueryKind::kDistance;
      std::vector<std::uint32_t> served(queries * targets.size());
      Timer ts;
      for (int q = 0; q < queries; ++q) {
        request.fault_edges = fault_pool[pick[q]];
        const QueryResponse resp = service.serve(request);
        for (std::size_t j = 0; j < targets.size(); ++j) {
          served[q * targets.size() + j] = resp.distances[j];
        }
      }
      const double s_time = ts.seconds();

      // Correctness cross-check, untimed: the sequential, batched, and
      // service matrices against ground truth.
      std::uint64_t mismatches = 0;
      for (std::size_t i = 0; i < truth.size(); ++i) {
        if (seq[i] != truth[i]) ++mismatches;
        if (batched[i] != truth[i]) ++mismatches;
        if (served[i] != truth[i]) ++mismatches;
      }

      table.add_row(
          {family.name, fmt_u64(n),
           fmt_double(
               static_cast<double>(built.structure.edges.size()) / g.num_edges(),
               3),
           fmt_int(queries),
           fmt_double(100.0 * duplicates / queries, 0), fmt_u64(mismatches),
           fmt_double(1e6 * g_time / queries, 1),
           fmt_double(1e6 * h_time / queries, 1),
           fmt_double(1e6 * b_time / queries, 1),
           fmt_double(1e6 * s_time / queries, 1),
           fmt_double(100.0 * service.stats().cache_hit_rate(), 0),
           fmt_double(g_time / std::max(h_time, 1e-12), 2),
           fmt_double(h_time / std::max(b_time, 1e-12), 2),
           fmt_double(h_time / std::max(s_time, 1e-12), 2)});
    }
  }
  table.print(std::cout);
  std::printf(
      "Reading: zero mismatches — every query path answers exact distances.\n"
      "The sequential column pays one full BFS per fault set; the batched\n"
      "column's early-exit BFS stops once the target sample is settled; the\n"
      "service column pays a BFS only on a scenario-cache miss, so on this\n"
      "~87%%-duplicate sweep its per-query cost approaches a table lookup\n"
      "(svc x is the service speedup over the sequential engine path — the\n"
      "acceptance bar is 2x at >=50%% duplicates).\n");
  return 0;
}
