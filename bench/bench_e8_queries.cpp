// Experiment E8 (usage objective (2), §1): routing/query workload. Distances
// queried on the FT-BFS structure under injected faults must match the full
// graph exactly; the structure is a fraction of G's size and queries on it
// are proportionally cheaper.
#include "bench_util.h"
#include "core/cons2ftbfs.h"
#include "graph/mask.h"
#include "spath/bfs.h"
#include "util/rng.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E8: query workload under fault injection");
  table.set_header({"family", "n", "|H|/m", "queries", "mismatch",
                    "us/query G", "us/query H", "speedup"});

  for (const Family& family : standard_families()) {
    for (const Vertex n : {256u, 512u, 1024u}) {
      const Graph g = family.make(n, 13);
      Cons2Options opt;
      opt.classify_paths = false;
      const FtStructure h = build_cons2ftbfs(g, 0, opt);
      const Graph hg = materialize(g, h);

      Rng rng(99);
      Bfs bg(g), bh(hg);
      GraphMask gm(g), hm(hg);
      const int queries = 500;
      std::uint64_t mismatches = 0;
      double g_time = 0, h_time = 0;
      for (int q = 0; q < queries; ++q) {
        // Inject 0-2 faults.
        gm.clear();
        hm.clear();
        const int k = static_cast<int>(rng.next_below(3));
        for (int i = 0; i < k; ++i) {
          const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
          gm.block_edge(e);
          const EdgeId he = hg.find_edge(g.edge(e).u, g.edge(e).v);
          if (he != kInvalidEdge) hm.block_edge(he);
        }
        Timer tg;
        const BfsResult& rg = bg.run(0, &gm);
        const std::uint32_t* gh = rg.hops.data();
        std::vector<std::uint32_t> g_hops(gh, gh + g.num_vertices());
        g_time += tg.seconds();
        Timer th;
        const BfsResult& rh = bh.run(0, &hm);
        h_time += th.seconds();
        for (Vertex v = 0; v < g.num_vertices(); ++v) {
          if (g_hops[v] != rh.hops[v]) ++mismatches;
        }
      }
      table.add_row(
          {family.name, fmt_u64(n),
           fmt_double(static_cast<double>(h.edges.size()) / g.num_edges(), 3),
           fmt_int(queries), fmt_u64(mismatches),
           fmt_double(1e6 * g_time / queries, 1),
           fmt_double(1e6 * h_time / queries, 1),
           fmt_double(g_time / std::max(h_time, 1e-12), 2)});
    }
  }
  table.print(std::cout);
  std::printf("Reading: zero mismatches across all injected fault sets — the\n"
              "structure answers exact distances; query cost scales with the\n"
              "kept edge fraction.\n");
  return 0;
}
