// Experiment E8 (usage objective (2), §1): routing/query workload. Distances
// queried on the FT-BFS structure under injected faults must match the full
// graph exactly; the structure is a fraction of G's size and queries on it
// are proportionally cheaper. All query paths go through FaultQueryEngine:
// the sequential column runs one full-BFS query per fault set (the seed's
// query path), the batched column runs the same workload through
// FaultQueryEngine::batch — one early-exit BFS per fault set over a fixed
// target list — which is the query service's serving shape.
#include "bench_util.h"
#include "engine/query_engine.h"
#include "engine/registry.h"
#include "util/rng.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E8: query workload under fault injection");
  table.set_header({"family", "n", "|H|/m", "queries", "mm full", "mm sample",
                    "us/query G", "us/query H", "us/query batch", "speedup",
                    "batch x"});

  for (const Family& family : standard_families()) {
    for (const Vertex n : {256u, 512u, 1024u}) {
      const Graph g = family.make(n, 13);
      BuildRequest req;
      req.graph = &g;
      req.sources = {0};
      req.fault_budget = 2;
      const BuildResult built =
          BuilderRegistry::instance().build("cons2ftbfs", req);

      FaultQueryEngine g_engine(g);  // ground truth from the full graph
      FaultQueryEngine h_engine(g, built.structure);

      // Workload: `queries` fault sets of 0-2 edges, each asking distances to
      // a fixed sample of targets.
      Rng rng(99);
      const int queries = 500;
      const std::size_t targets_per_query = 32;
      std::vector<std::vector<EdgeId>> fault_storage(queries);
      std::vector<FaultSpec> fault_sets(queries);
      for (int q = 0; q < queries; ++q) {
        const int k = static_cast<int>(rng.next_below(3));
        for (int i = 0; i < k; ++i) {
          fault_storage[q].push_back(
              static_cast<EdgeId>(rng.next_below(g.num_edges())));
        }
        fault_sets[q] = edge_faults(fault_storage[q]);
      }
      std::vector<Vertex> targets;
      for (std::size_t i = 0; i < targets_per_query; ++i) {
        targets.push_back(static_cast<Vertex>(rng.next_below(n)));
      }

      // All three timed regions do the same work — one query per fault set,
      // matrix of target distances written out — so the ratios compare query
      // paths, not bookkeeping. Mismatch counting happens outside the timers.
      std::vector<std::uint32_t> truth(queries * targets.size());
      Timer tg;
      for (int q = 0; q < queries; ++q) {
        const auto& hops = g_engine.all_distances(0, fault_sets[q]);
        for (std::size_t j = 0; j < targets.size(); ++j) {
          truth[q * targets.size() + j] = hops[targets[j]];
        }
      }
      const double g_time = tg.seconds();

      std::vector<std::uint32_t> seq(queries * targets.size());
      Timer th;
      for (int q = 0; q < queries; ++q) {
        const auto& hops = h_engine.all_distances(0, fault_sets[q]);
        for (std::size_t j = 0; j < targets.size(); ++j) {
          seq[q * targets.size() + j] = hops[targets[j]];
        }
      }
      const double h_time = th.seconds();

      // The batched path: one call, early-exit BFS per fault set.
      Timer tb;
      const std::vector<std::uint32_t> batched =
          h_engine.batch(0, fault_sets, targets);
      const double b_time = tb.seconds();

      // Correctness cross-checks, untimed. "mm full": every vertex under
      // every fault set, engine vs ground-truth engine (the two engines are
      // distinct, so both borrowed results stay valid). "mm sample": the two
      // timed sampled matrices (sequential and batched) against ground truth.
      std::uint64_t full_mismatches = 0, sample_mismatches = 0;
      for (int q = 0; q < queries; ++q) {
        const auto& tg_hops = g_engine.all_distances(0, fault_sets[q]);
        const auto& th_hops = h_engine.all_distances(0, fault_sets[q]);
        for (Vertex v = 0; v < g.num_vertices(); ++v) {
          if (tg_hops[v] != th_hops[v]) ++full_mismatches;
        }
      }
      for (std::size_t i = 0; i < truth.size(); ++i) {
        if (seq[i] != truth[i]) ++sample_mismatches;
        if (batched[i] != truth[i]) ++sample_mismatches;
      }

      table.add_row(
          {family.name, fmt_u64(n),
           fmt_double(
               static_cast<double>(built.structure.edges.size()) / g.num_edges(),
               3),
           fmt_int(queries), fmt_u64(full_mismatches), fmt_u64(sample_mismatches),
           fmt_double(1e6 * g_time / queries, 1),
           fmt_double(1e6 * h_time / queries, 1),
           fmt_double(1e6 * b_time / queries, 1),
           fmt_double(g_time / std::max(h_time, 1e-12), 2),
           fmt_double(h_time / std::max(b_time, 1e-12), 2)});
    }
  }
  table.print(std::cout);
  std::printf(
      "Reading: zero mismatches across all injected fault sets — the\n"
      "structure answers exact distances through every engine path. The\n"
      "sequential column pays one full BFS per fault set; the batched\n"
      "column's early-exit BFS stops once the target sample is settled,\n"
      "a win that grows with how much of the graph the structure prunes\n"
      "(largest on dense-ER). Where |H|/m ~ 1 and targets span the whole\n"
      "depth (path+chords) the two paths converge to parity.\n");
  return 0;
}
