// Experiment E6 (Fig. 7 and §3.3-3.8): the five-way classification of
// new-ending replacement paths. The paper bounds each class per vertex:
//   A (π,π) = O(√n);  B (no-detour) = O(n^{2/3});  C (independent) =
//   O(n^{2/3});  D (π-interfering) = O(n^{2/3});  E (D-interfering) =
//   O(n^{2/3}).
// The table reports total and per-vertex-max counts per class.
#include "bench_util.h"
#include "core/cons2ftbfs.h"
#include "lowerbound/gstar.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  for (const Family& family : standard_families()) {
    Table table("E6: new-ending path classes — " + family.name);
    table.set_header({"n", "new", "single", "A:pipi", "B:nodet", "C:indep",
                      "D:pi-int", "E:D-int", "maxV(B..E)", "n^(2/3)"});
    for (const Vertex n : {64u, 128u, 256u, 512u}) {
      const Graph g = family.make(n, 11);
      const FtStructure h = build_cons2ftbfs(g, 0);
      const PathClassCounts& c = h.stats.classes;
      const PathClassCounts& m = h.stats.max_classes_per_vertex;
      const std::uint64_t max_pid =
          std::max(std::max(m.b_nodet, m.c_indep),
                   std::max(m.d_pi_interf, m.e_d_interf));
      table.add_row({fmt_u64(n), fmt_u64(h.stats.new_edges), fmt_u64(c.single),
                     fmt_u64(c.a_pi_pi), fmt_u64(c.b_nodet),
                     fmt_u64(c.c_indep), fmt_u64(c.d_pi_interf),
                     fmt_u64(c.e_d_interf), fmt_u64(max_pid),
                     fmt_double(std::pow(n, 2.0 / 3.0), 1)});
    }
    table.print(std::cout);
  }
  {
    Table table("E6: new-ending path classes — G*_2 (worst case)");
    table.set_header({"n", "new", "single", "A:pipi", "B:nodet", "C:indep",
                      "D:pi-int", "E:D-int", "maxV(B..E)", "n^(2/3)"});
    for (const Vertex n : {150u, 300u, 600u}) {
      const GStarGraph gs = build_gstar(2, n);
      const FtStructure h = build_cons2ftbfs(gs.graph, gs.sources[0]);
      const PathClassCounts& c = h.stats.classes;
      const PathClassCounts& m = h.stats.max_classes_per_vertex;
      const std::uint64_t max_pid =
          std::max(std::max(m.b_nodet, m.c_indep),
                   std::max(m.d_pi_interf, m.e_d_interf));
      table.add_row({fmt_u64(n), fmt_u64(h.stats.new_edges), fmt_u64(c.single),
                     fmt_u64(c.a_pi_pi), fmt_u64(c.b_nodet),
                     fmt_u64(c.c_indep), fmt_u64(c.d_pi_interf),
                     fmt_u64(c.e_d_interf), fmt_u64(max_pid),
                     fmt_double(std::pow(n, 2.0 / 3.0), 1)});
    }
    table.print(std::cout);
  }
  std::printf(
      "Reading: class totals partition New(v) exactly; per-vertex maxima of\n"
      "the (π,D) classes stay below n^{2/3}, mirroring §3.5-3.8. Independent\n"
      "paths (C) dominate on sparse graphs; interference (D/E) appears once\n"
      "detours overlap (path+chords).\n");
  return 0;
}
