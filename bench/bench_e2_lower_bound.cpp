// Experiment E2 (Theorem 1.2, Figs. 10-12): the lower-bound family G*_{f,σ}.
//
// Table 1: the bipartite core size versus the paper's Ω(σ^{1/(f+1)} ·
//          n^{2-1/(f+1)}) formula, for f ∈ {1,2,3}, with necessity certified
//          by witness fault injection; fitted exponents per f.
// Table 2: σ-sweep at fixed n (multi-source bound).
// Table 3: Cons2FTBFS runs on G*_2 and must retain the full core — measured
//          |E(H)| against the certified minimum.
#include "bench_util.h"
#include "core/cons2ftbfs.h"
#include "lowerbound/necessity.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  {
    Table t1("E2.1: G*_f core size vs Omega(n^{2-1/(f+1)}) (sigma=1)");
    t1.set_header({"f", "n", "d", "|X|", "leaves", "core", "formula",
                   "core/formula", "necessity"});
    std::vector<std::vector<double>> xs(4), ys(4);
    for (unsigned f = 1; f <= 3; ++f) {
      const std::vector<Vertex> sizes =
          f == 3 ? std::vector<Vertex>{800, 1600, 3200}
                 : std::vector<Vertex>{200, 400, 800, 1600, 3200};
      for (const Vertex n : sizes) {
        const GStarGraph gs = build_gstar(f, n);
        std::uint64_t leaves = 0;
        for (const auto& copy : gs.copies) leaves += copy.leaves.size();
        const NecessityReport rep = check_bipartite_necessity(gs, 2);
        const double formula = gstar_bound(f, n, 1);
        t1.add_row({fmt_u64(f), fmt_u64(n), fmt_u64(gs.d),
                    fmt_u64(gs.x_set.size()), fmt_u64(leaves),
                    fmt_u64(gs.bipartite_edges.size()), fmt_double(formula, 0),
                    fmt_double(gs.bipartite_edges.size() / formula, 4),
                    rep.all_essential ? "ALL-ESSENTIAL" : "FAILED"});
        xs[f].push_back(n);
        ys[f].push_back(static_cast<double>(gs.bipartite_edges.size()));
      }
    }
    t1.print(std::cout);
    for (unsigned f = 1; f <= 3; ++f) {
      print_fit("G*_" + std::to_string(f) + " core", xs[f], ys[f],
                2.0 - 1.0 / (f + 1));
    }
    std::printf("\n");
  }

  {
    Table t2("E2.2: multi-source sweep at n=1200, f=1 "
             "(Omega(sigma^{1/2} n^{3/2}))");
    t2.set_header({"sigma", "d", "core", "formula", "core/formula",
                   "necessity"});
    for (const Vertex sigma : {1u, 2u, 4u, 8u}) {
      const GStarGraph gs = build_gstar(1, 1200, sigma);
      const NecessityReport rep = check_bipartite_necessity(gs, 1);
      const double formula = gstar_bound(1, 1200, sigma);
      t2.add_row({fmt_u64(sigma), fmt_u64(gs.d),
                  fmt_u64(gs.bipartite_edges.size()), fmt_double(formula, 0),
                  fmt_double(gs.bipartite_edges.size() / formula, 4),
                  rep.all_essential ? "ALL-ESSENTIAL" : "FAILED"});
    }
    t2.print(std::cout);
  }

  {
    Table t3("E2.3: Cons2FTBFS on G*_2 retains the certified core");
    t3.set_header({"n", "m", "core", "|E(H)|", "core kept", "seconds"});
    for (const Vertex n : {200u, 400u, 800u}) {
      const GStarGraph gs = build_gstar(2, n);
      Timer t;
      Cons2Options opt;
      opt.classify_paths = false;
      const FtStructure h = build_cons2ftbfs(gs.graph, gs.sources[0], opt);
      std::vector<bool> in_h(gs.graph.num_edges(), false);
      for (const EdgeId e : h.edges) in_h[e] = true;
      std::uint64_t kept = 0;
      for (const EdgeId e : gs.bipartite_edges) kept += in_h[e] ? 1 : 0;
      t3.add_row({fmt_u64(n), fmt_u64(gs.graph.num_edges()),
                  fmt_u64(gs.bipartite_edges.size()), fmt_u64(h.edges.size()),
                  kept == gs.bipartite_edges.size() ? "ALL" : "MISSING!",
                  fmt_double(t.seconds(), 2)});
    }
    t3.print(std::cout);
  }

  std::printf("Reading: the core follows the paper's formula shape (fitted\n"
              "exponents near 2-1/(f+1)); every core edge is certified\n"
              "essential, so any dual FT-BFS on G*_2 — including ours — must\n"
              "pay Omega(n^{5/3}).\n");
  return 0;
}
