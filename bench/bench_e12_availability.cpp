// Experiment E12 (systems view of objective (2)): routing availability under
// a continuous failure/repair process. Four overlays route from the source on
// the same fault trace: the plain BFS tree (f=0), the single-failure FT-BFS
// (f=1, [10]), the dual-failure FT-BFS (f=2, this paper), and the full graph.
// The FT guarantee shows up as a hard zero in the "non-exact within budget"
// column; the exactness rate shows what the extra edges buy.
#include "bench_util.h"
#include "core/cons2ftbfs.h"
#include "core/kfail_ftbfs.h"
#include "core/single_ftbfs.h"
#include "sim/failure_sim.h"

#include <numeric>

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E12: routing availability under failure/repair process "
              "(cap 2 concurrent faults, 600 ticks)");
  table.set_header({"family", "overlay", "edges", "exact%", "stretch%",
                    "disc%", "viol.in-budget"});

  for (const Family& family : standard_families()) {
    const Vertex n = 200;
    const Graph g = family.make(n, 47);
    Cons2Options copt;
    copt.classify_paths = false;
    const FtStructure dual = build_cons2ftbfs(g, 0, copt);
    const FtStructure single = build_single_ftbfs(g, 0);
    const KFailResult tree = build_kfail_ftbfs(g, 0, 0);
    std::vector<EdgeId> full(g.num_edges());
    std::iota(full.begin(), full.end(), 0);

    SimConfig cfg;
    cfg.ticks = 600;
    cfg.failure_probability = 0.004;
    cfg.repair_probability = 0.15;
    cfg.max_concurrent_faults = 2;
    cfg.seed = 5;
    FailureSimulator sim(g, 0, cfg);
    sim.add_overlay("BFS tree (f=0)", tree.structure.edges, 0);
    sim.add_overlay("single FT-BFS (f=1)", single.edges, 1);
    sim.add_overlay("dual FT-BFS (f=2)", dual.edges, 2);
    sim.add_overlay("full graph", full, 2);
    const auto metrics = sim.run();

    for (const OverlayMetrics& m : metrics) {
      const double routed = static_cast<double>(m.routed);
      table.add_row({family.name, m.name, fmt_u64(m.edges),
                     fmt_double(100.0 * m.exact / routed, 3),
                     fmt_double(100.0 * m.stretched / routed, 3),
                     fmt_double(100.0 * m.disconnected / routed, 3),
                     fmt_u64(m.non_exact_in_budget)});
    }
  }
  table.print(std::cout);
  std::printf(
      "Reading: within its fault budget every FT overlay is perfect (the\n"
      "violation column is identically 0 — that is the theorem). The dual\n"
      "structure's exactness matches the full graph at a fraction of the\n"
      "edges; the BFS tree visibly degrades the moment anything fails.\n");
  return 0;
}
