// Experiment E9 (§3.2): the structural theory in numbers — frequency of the
// six detour configurations (Def. 3.7 / Fig. 3), traversal directions
// (Fig. 4), kernel compression (§3.2.2), and the region bound (Claim 3.29).
#include <map>

#include "bench_util.h"
#include "structure/configuration.h"
#include "structure/kernel.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  {
    Table table("E9.1: detour pair configurations (Def. 3.7)");
    table.set_header({"family", "n", "pairs", "non-nest", "nested", "interl",
                      "x-int", "y-int", "xy-int", "ident", "dep%", "rev%"});
    for (const Family& family : standard_families()) {
      const Vertex n = 256;
      const Graph g = family.make(n, 17);
      const WeightAssignment w(g, 17);
      PathSelector sel(g, w);
      std::map<DetourConfig, std::uint64_t> counts;
      std::uint64_t pairs = 0, dependent = 0, reversed = 0;
      for (Vertex v = 1; v < g.num_vertices(); v += 5) {
        const DetourSet ds = compute_detours(sel, 0, v);
        for (std::size_t i = 0; i < ds.detours.size(); ++i) {
          for (std::size_t j = i + 1; j < ds.detours.size(); ++j) {
            const auto c = classify_detours(ds.detours[i], ds.detours[j]);
            ++pairs;
            ++counts[c.config];
            if (c.dependent) {
              ++dependent;
              if (!c.same_direction) ++reversed;
            }
          }
        }
      }
      auto pct = [&](std::uint64_t x) {
        return pairs == 0 ? std::string("0")
                          : fmt_double(100.0 * x / pairs, 1);
      };
      table.add_row({family.name, fmt_u64(n), fmt_u64(pairs),
                     pct(counts[DetourConfig::kNonNested]),
                     pct(counts[DetourConfig::kNested]),
                     pct(counts[DetourConfig::kInterleaved]),
                     pct(counts[DetourConfig::kXInterleaved]),
                     pct(counts[DetourConfig::kYInterleaved]),
                     pct(counts[DetourConfig::kXYInterleaved]),
                     pct(counts[DetourConfig::kIdentical]), pct(dependent),
                     pct(reversed)});
    }
    table.print(std::cout);
  }

  {
    Table table("E9.2: kernel compression and regions (Claim 3.29)");
    table.set_header({"family", "n", "targets", "sum|D|", "|K|", "K/sumD",
                      "regions", "2*|D|", "bound ok"});
    for (const Family& family : standard_families()) {
      const Vertex n = 256;
      const Graph g = family.make(n, 23);
      const WeightAssignment w(g, 23);
      PathSelector sel(g, w);
      std::uint64_t targets = 0, sum_d = 0, sum_k = 0, regions_total = 0,
                    detours_total = 0;
      bool bound_ok = true;
      for (Vertex v = 1; v < g.num_vertices(); v += 5) {
        const DetourSet ds = compute_detours(sel, 0, v);
        if (ds.detours.empty()) continue;
        ++targets;
        for (const Detour& d : ds.detours) sum_d += d.verts.size() - 1;
        // Regions are defined per y-group (the setting of Claim 3.29).
        std::map<Vertex, std::vector<Detour>> groups;
        for (const Detour& d : ds.detours) groups[d.y].push_back(d);
        for (const auto& [y, group] : groups) {
          const KernelGraph k = build_kernel(g, group);
          sum_k += k.edges.size();
          const auto regions = kernel_regions(g, group, k);
          regions_total += regions.size();
          detours_total += group.size();
          if (regions.size() > 2 * group.size()) bound_ok = false;
        }
      }
      table.add_row({family.name, fmt_u64(n), fmt_u64(targets),
                     fmt_u64(sum_d), fmt_u64(sum_k),
                     fmt_double(sum_d ? static_cast<double>(sum_k) / sum_d : 0,
                                3),
                     fmt_u64(regions_total), fmt_u64(2 * detours_total),
                     bound_ok ? "YES" : "VIOLATED"});
    }
    table.print(std::cout);
  }
  {
    Table table("E9.3: excluded-segment mass (Claim 3.12)");
    table.set_header({"family", "n", "detours", "sum|D| edges",
                      "excluded edges", "share%"});
    for (const Family& family : standard_families()) {
      const Vertex n = 256;
      const Graph g = family.make(n, 29);
      const WeightAssignment w(g, 29);
      PathSelector sel(g, w);
      std::uint64_t detours = 0, total_edges = 0, excluded_edges = 0;
      for (Vertex v = 1; v < g.num_vertices(); v += 5) {
        const DetourSet ds = compute_detours(sel, 0, v);
        detours += ds.detours.size();
        // Per detour, the union of excluded suffixes over all partners is a
        // suffix (the longest one counts).
        for (std::size_t i = 0; i < ds.detours.size(); ++i) {
          total_edges += ds.detours[i].verts.size() - 1;
          std::size_t longest = 0;
          for (std::size_t j = 0; j < ds.detours.size(); ++j) {
            if (i == j) continue;
            const auto excl = excluded_suffix(ds.detours[i], ds.detours[j]);
            if (excl && excl->excluded_of_first) {  // suffix belongs to i
              longest = std::max(longest, excl->segment.size() - 1);
            }
          }
          excluded_edges += longest;
        }
      }
      table.add_row({family.name, fmt_u64(n), fmt_u64(detours),
                     fmt_u64(total_edges), fmt_u64(excluded_edges),
                     fmt_double(total_edges ? 100.0 * excluded_edges /
                                                  static_cast<double>(
                                                      total_edges)
                                            : 0.0,
                                2)});
    }
    table.print(std::cout);
  }
  std::printf(
      "Reading: dependent pairs concentrate in the interleaved classes (as\n"
      "Claims 3.8/3.9 force), reverse traversal is rare, the kernel keeps\n"
      "a fraction of the detour mass, and the region count respects the\n"
      "2|D| bound of Claim 3.29 everywhere.\n");
  return 0;
}
