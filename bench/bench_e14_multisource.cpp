// Experiment E14 (the σ-source axis, §1/§4): multi-source FT-MBFS by union
// of per-source structures, against the Ω(σ^{1/(f+1)} n^{2-1/(f+1)}) lower
// bound. Shows (a) union sharing on benign graphs (size grows sublinearly in
// σ) and (b) the multi-source worst case certified by G*_{1,σ}.
#include "bench_util.h"
#include "core/ftmbfs.h"
#include "lowerbound/gstar.h"
#include "lowerbound/necessity.h"

#include <numeric>

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  {
    Table table("E14.1: union FT-MBFS size vs sigma (sparse-ER n=256)");
    table.set_header({"f", "sigma", "sum per-source", "union", "sharing",
                      "union/n"});
    const Graph g = make_sparse_er(256, 59);
    for (const unsigned f : {1u, 2u}) {
      for (const Vertex sigma : {1u, 2u, 4u, 8u}) {
        std::vector<Vertex> sources;
        for (Vertex k = 0; k < sigma; ++k) {
          sources.push_back(k * (256 / sigma));
        }
        const FtMbfsResult r = f == 2 ? build_cons2ftmbfs(g, sources)
                                      : build_single_ftmbfs(g, sources);
        const std::uint64_t sum = std::accumulate(
            r.per_source_size.begin(), r.per_source_size.end(), 0ull);
        table.add_row(
            {fmt_u64(f), fmt_u64(sigma), fmt_u64(sum),
             fmt_u64(r.structure.edges.size()),
             fmt_double(static_cast<double>(r.structure.edges.size()) / sum,
                        3),
             fmt_double(r.structure.edges.size() / 256.0, 2)});
      }
    }
    table.print(std::cout);
  }

  {
    Table table("E14.2: multi-source worst case G*_{1,sigma} (n=900, f=1)");
    table.set_header({"sigma", "certified core", "union |H|", "core kept",
                      "formula"});
    for (const Vertex sigma : {1u, 2u, 3u}) {
      const GStarGraph gs = build_gstar(1, 900, sigma);
      const NecessityReport rep = check_bipartite_necessity(gs, 1);
      const FtMbfsResult r = build_single_ftmbfs(gs.graph, gs.sources);
      std::vector<bool> in_h(gs.graph.num_edges(), false);
      for (const EdgeId e : r.structure.edges) in_h[e] = true;
      std::uint64_t kept = 0;
      for (const EdgeId e : gs.bipartite_edges) kept += in_h[e] ? 1 : 0;
      table.add_row({fmt_u64(sigma), fmt_u64(gs.bipartite_edges.size()),
                     fmt_u64(r.structure.edges.size()),
                     kept == gs.bipartite_edges.size()
                         ? std::string("ALL")
                         : fmt_u64(kept) + "!",
                     fmt_double(gstar_bound(1, 900, sigma), 0)});
      (void)rep;
    }
    table.print(std::cout);
  }
  std::printf(
      "Reading: on benign inputs the union shares heavily (sharing well\n"
      "below 1 and shrinking with sigma); on G*_{1,sigma} the union must\n"
      "keep every certified core edge — the sigma-axis of Theorem 1.2.\n");
  return 0;
}
