// Experiment E11 (§"Beyond two faults"): a census of three-fault replacement
// path types. The paper sketches the f=3 landscape: fault chains classify as
//   (π,π,π)    — all three on the original shortest path,
//   (π,π,D1)   — two on π, one on a first-level detour,
//   (π,D1,D1)  — one on π, two on the same first-level detour,
//   (π,D1,D2)  — one on π, one on a D1 detour, one on a second-level detour,
// and conjectures the interactions among D1/D2 detours drive the (open)
// f=3 upper bound. This harness enumerates all 3-chains for sample targets
// and reports the type frequencies and how many *new last edges* each type
// contributes — empirical input to the open problem.
#include <map>

#include "bench_util.h"
#include "spath/replacement.h"

namespace {

using namespace ftbfs;

struct Census {
  std::map<std::string, std::uint64_t> chains;
  std::map<std::string, std::uint64_t> new_edges;
};

// Classifies where edge `e` lies relative to π and the previous paths:
// 'P' = on π(s,v); '1' = on the first replacement path but not π;
// '2' = anywhere else (second-level detour).
char segment_of(const Graph& g, EdgeId e, const Path& pi, const Path& p1) {
  if (contains_edge(g, pi, e)) return 'P';
  if (!p1.empty() && contains_edge(g, p1, e)) return '1';
  return '2';
}

void enumerate_target(const Graph& g, ReplacementOracle& oracle, Vertex s,
                      Vertex v, Census& census,
                      std::vector<bool>& in_h) {
  const auto p0 = oracle.replacement_path(s, v, {});
  if (!p0) return;
  const Path pi = p0->verts;
  const std::vector<EdgeId> pi_edges = edges_of(g, pi);
  for (const EdgeId e1 : pi_edges) {
    std::vector<EdgeId> f1 = {e1};
    const auto p1 = oracle.replacement_path(s, v, f1);
    if (!p1) continue;
    for (const EdgeId e2 : edges_of(g, p1->verts)) {
      const char c2 = segment_of(g, e2, pi, {});
      std::vector<EdgeId> f2 = {e1, e2};
      const auto p2 = oracle.replacement_path(s, v, f2);
      if (!p2) continue;
      for (const EdgeId e3 : edges_of(g, p2->verts)) {
        const char c3 = segment_of(g, e3, pi, p1->verts);
        // Paper taxonomy: after (π,π) the off-π part of P_{e1,e2} is that
        // path's own detour ("D1" in the paper's class (b)); after (π,D1)
        // the third fault distinguishes D1 (same first-level detour) from
        // D2 (the dual path's fresh detour) — classes (c) and (d).
        std::string type = "(P,";
        if (c2 == 'P') {
          type += "P,";
          type += c3 == 'P' ? "P" : "D1";
        } else {
          type += "D1,";
          type += c3 == 'P' ? "P" : (c3 == '1' ? "D1" : "D2");
        }
        type += ")";
        ++census.chains[type];
        std::vector<EdgeId> f3 = {e1, e2, e3};
        const auto p3 = oracle.replacement_path(s, v, f3);
        if (!p3) continue;
        const EdgeId le = last_edge(g, p3->verts);
        if (!in_h[le]) {
          in_h[le] = true;
          ++census.new_edges[type];
        }
      }
    }
  }
}

}  // namespace

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E11: three-fault chain census (the paper's f=3 frontier)");
  table.set_header({"family", "n", "type", "chains", "share%", "new edges"});

  for (const Family& family : standard_families()) {
    const Vertex n = 96;
    const Graph g = family.make(n, 41);
    const WeightAssignment w(g, 41);
    ReplacementOracle oracle(g, w);
    Census census;
    std::vector<bool> in_h(g.num_edges(), false);
    // Seed H with the BFS tree so "new edge" matches the construction view.
    oracle.mask().clear();
    const SpResult tree = oracle.query_sssp(0);
    for (Vertex v = 1; v < n; ++v) {
      if (tree.reached(v)) in_h[tree.parent_edge[v]] = true;
    }
    for (Vertex v = 1; v < n; v += 7) {  // sample of targets
      enumerate_target(g, oracle, 0, v, census, in_h);
    }
    std::uint64_t total = 0;
    for (const auto& [type, count] : census.chains) total += count;
    for (const auto& [type, count] : census.chains) {
      table.add_row({family.name, fmt_u64(n), type, fmt_u64(count),
                     fmt_double(total ? 100.0 * count / total : 0, 1),
                     fmt_u64(census.new_edges[type])});
    }
  }
  table.print(std::cout);
  std::printf(
      "Reading: (P,D1,D2) chains — the configuration the paper identifies\n"
      "as the obstacle to an f=3 upper bound — are a sizeable share of all\n"
      "chains, yet contribute few *new* last edges: most are satisfied by\n"
      "edges earlier chains already paid for. That is exactly the slack a\n"
      "future f=3 analysis would need to formalize.\n");
  return 0;
}
