// Experiment E13 (objective (1), kept polynomial per the paper): construction
// cost scaling of the registered algorithms, with fitted time exponents. The
// paper treats preprocessing as secondary ("our construction time is still
// polynomial in n"); this chart documents the polynomial — and, since the
// constructions went parallel, how far --jobs bends it.
//
// Three sections:
//   * E13a — the size ladder: every registered builder measured at the
//     dual-failure budget when supported, else its own budget (the greedy
//     set cover gets a reduced ladder — it enumerates m^f fault sets by
//     design). Fitted exponents printed under the table.
//   * E13b — full-build jobs sweep: each parallel_build family built to
//     completion at a fixed n across the jobs list, checking the structure
//     and stats against the jobs=1 build (the byte-identity contract of
//     core/build_parallel.h) and reporting wall-clock speedup.
//   * E13c — windowed throughput at n = 10^5: a full single_ftbfs build at
//     that scale runs for upwards of half an hour (bench_persist measures
//     the lower bound), so each (family, jobs) cell forks a child that
//     builds with a progress counter in a MAP_SHARED page; the parent reads
//     the counter when the window closes and SIGKILLs the child. rate =
//     committed targets / elapsed, speedup = rate(jobs) / rate(1). This is
//     the row the CI scaling gate keys on.
//
// Gates (exit status; recorded in bench/BENCH_e13.json by CI):
//   * every E13b jobs row byte-identical to its jobs=1 build;
//   * E13c speedup > 1 at 4 jobs for single_ftbfs and cons2ftbfs — enforced
//     only when the machine has >= 4 hardware threads, honestly reported as
//     skipped otherwise.
//
// Usage: bench_e13_construction_cost [--small] [--json] [--n N] [--window S]
#include <sys/mman.h>
#include <sys/wait.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstring>
#include <new>

#include "bench_util.h"
#include "core/cons2ftbfs.h"
#include "core/single_ftbfs.h"
#include "engine/registry.h"
#include "util/concurrency.h"

namespace {

using namespace ftbfs;
using namespace ftbfs::bench;

struct LadderRow {
  std::string algo;
  unsigned f = 0;
  Vertex n = 0;
  double seconds = 0.0;
};

struct JobsRow {
  std::string algo;
  Vertex n = 0;
  unsigned jobs = 1;
  double seconds = 0.0;
  double speedup = 1.0;
  bool identical = true;
};

struct RateRow {
  std::string algo;
  Vertex n = 0;
  unsigned jobs = 1;
  double window_s = 0.0;
  std::uint64_t targets = 0;
  double rate = 0.0;  // committed targets per second
  double speedup = 1.0;
};

// The stats fields the parallel schedule must reproduce exactly; compared
// here as a smoke check (tests/test_parallel_build.cpp does the full
// field-by-field property test).
bool same_build(const FtStructure& a, const FtStructure& b) {
  return a.edges == b.edges && a.stats.tree_edges == b.stats.tree_edges &&
         a.stats.new_edges == b.stats.new_edges &&
         a.stats.max_new_per_vertex == b.stats.max_new_per_vertex &&
         a.stats.fault_pairs_considered == b.stats.fault_pairs_considered &&
         a.stats.dijkstra_runs == b.stats.dijkstra_runs &&
         a.stats.divergence_fallbacks == b.stats.divergence_fallbacks;
}

// One E13c cell: fork, build with the progress counter in the shared page,
// harvest the counter when the window closes (or the whole build finishes
// early — possible under a --n override), SIGKILL + reap. The child never
// flushes state — everything the parent reads lives in the MAP_SHARED page.
double windowed_cell(const Graph& g, const std::string& algo, unsigned jobs,
                     double window_s, std::atomic<std::uint64_t>* counter,
                     std::uint64_t* targets_out) {
  counter->store(0);
  Timer timer;
  const pid_t child = ::fork();
  if (child == 0) {
    if (algo == "single_ftbfs") {
      SingleFtbfsOptions opt;
      opt.jobs = jobs;
      opt.progress = counter;
      (void)build_single_ftbfs(g, 0, opt);
    } else {
      Cons2Options opt;
      opt.classify_paths = false;
      opt.jobs = jobs;
      opt.progress = counter;
      (void)build_cons2ftbfs(g, 0, opt);
    }
    _exit(0);
  }
  int status = 0;
  double elapsed = 0.0;
  for (;;) {
    ::usleep(50 * 1000);
    elapsed = timer.seconds();
    if (::waitpid(child, &status, WNOHANG) == child) break;
    if (elapsed >= window_s) {
      ::kill(child, SIGKILL);
      ::waitpid(child, &status, 0);
      break;
    }
  }
  *targets_out = counter->load();
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool small = false;
  Vertex big_n = 100000;
  double window_s = 0.0;  // 0 = defaulted from --small below
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      big_n = static_cast<Vertex>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window_s = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--small] [--json] [--n N] [--window S]\n",
                   argv[0]);
      return 2;
    }
  }
  // Parallel commits land a speculation block (~128 targets) at a time, so
  // the window must cover several blocks even at the small setting.
  if (window_s <= 0.0) window_s = small ? 3.0 : 10.0;
  const std::vector<unsigned> jobs_list =
      small ? std::vector<unsigned>{1, 4} : std::vector<unsigned>{1, 2, 4, 8};
  const unsigned hardware = hardware_workers();

  const BuilderRegistry& reg = BuilderRegistry::instance();

  // --- E13a: size ladder ----------------------------------------------------
  std::vector<LadderRow> ladder;
  struct Series {
    std::string name;
    std::vector<double> x, y;
  };
  std::vector<Series> series;
  for (const BuilderTraits& t : reg.traits()) {
    // Prefer the dual-failure budget (the paper's regime) where supported.
    const unsigned f =
        std::max(t.min_fault_budget, std::min(2u, t.max_fault_budget));
    if (f > t.max_fault_budget || f == 0) continue;
    // Builders that declare heavy construction get a reduced size ladder.
    const std::vector<Vertex> sizes =
        t.heavy_construction
            ? (small ? std::vector<Vertex>{32u, 48u}
                     : std::vector<Vertex>{32u, 48u, 64u})
            : (small ? std::vector<Vertex>{128u, 256u}
                     : std::vector<Vertex>{128u, 256u, 512u, 1024u});
    Series s{t.name, {}, {}};
    for (const Vertex n : sizes) {
      const Graph g = make_sparse_er(n, 53);
      BuildRequest req;
      req.graph = &g;
      req.sources = {0};
      req.fault_budget = f;
      const BuildResult r = reg.build(t.name, req);
      ladder.push_back({t.name, f, n, r.build_seconds});
      s.x.push_back(n);
      s.y.push_back(std::max(r.build_seconds, 1e-5));
    }
    series.push_back(std::move(s));
  }

  // --- E13b: full-build jobs sweep (byte-identity + wall speedup) -----------
  std::vector<JobsRow> jobs_rows;
  bool identical_ok = true;
  for (const BuilderTraits& t : reg.traits()) {
    if (!t.parallel_build) continue;
    const unsigned f =
        std::max(t.min_fault_budget, std::min(2u, t.max_fault_budget));
    const Vertex n = small ? 192u : 512u;
    const Graph g = make_sparse_er(n, 53);
    BuildRequest req;
    req.graph = &g;
    req.sources = {0};
    req.fault_budget = f;
    req.options.jobs = 1;
    const BuildResult base = reg.build(t.name, req);
    jobs_rows.push_back({t.name, n, 1, base.build_seconds, 1.0, true});
    for (const unsigned jobs : jobs_list) {
      if (jobs == 1) continue;
      req.options.jobs = jobs;
      const BuildResult r = reg.build(t.name, req);
      JobsRow row;
      row.algo = t.name;
      row.n = n;
      row.jobs = jobs;
      row.seconds = r.build_seconds;
      row.speedup =
          r.build_seconds == 0.0 ? 1.0 : base.build_seconds / r.build_seconds;
      row.identical = same_build(base.structure, r.structure);
      identical_ok = identical_ok && row.identical;
      jobs_rows.push_back(row);
    }
  }

  // --- E13c: windowed throughput at n = 10^5 --------------------------------
  auto* counter = static_cast<std::atomic<std::uint64_t>*>(
      ::mmap(nullptr, sizeof(std::atomic<std::uint64_t>),
             PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0));
  std::vector<RateRow> rate_rows;
  if (counter != MAP_FAILED) {
    new (counter) std::atomic<std::uint64_t>(0);
    const Graph big = make_sparse_er(big_n, 53);
    for (const std::string algo : {"single_ftbfs", "cons2ftbfs"}) {
      double rate1 = 0.0;
      for (const unsigned jobs : jobs_list) {
        RateRow row;
        row.algo = algo;
        row.n = big_n;
        row.jobs = jobs;
        const double elapsed =
            windowed_cell(big, algo, jobs, window_s, counter, &row.targets);
        row.window_s = elapsed;
        row.rate = elapsed == 0.0
                       ? 0.0
                       : static_cast<double>(row.targets) / elapsed;
        if (jobs == 1) rate1 = row.rate;
        row.speedup = (jobs == 1 || rate1 == 0.0) ? 1.0 : row.rate / rate1;
        rate_rows.push_back(row);
      }
    }
    ::munmap(counter, sizeof(std::atomic<std::uint64_t>));
  } else {
    std::fprintf(stderr, "mmap(MAP_SHARED) failed; skipping the E13c sweep\n");
  }

  // --- gate ------------------------------------------------------------------
  // Scaling is only demanded of a machine that can physically provide it.
  const bool gate_applicable = hardware >= 4 && !rate_rows.empty();
  bool scaling_ok = true;
  if (gate_applicable) {
    for (const RateRow& row : rate_rows) {
      if (row.jobs == 4) scaling_ok = scaling_ok && row.speedup > 1.0;
    }
  }
  const bool ok = identical_ok && (!gate_applicable || scaling_ok);

  if (json) {
    std::printf("{\"bench\":\"e13_construction\",\"hardware_threads\":%u,"
                "\"family\":\"sparse-ER(m=3n)\",\"ladder\":[",
                hardware);
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      const LadderRow& r = ladder[i];
      std::printf("%s{\"algo\":\"%s\",\"f\":%u,\"n\":%u,\"seconds\":%.4f}",
                  i == 0 ? "" : ",", r.algo.c_str(), r.f, r.n, r.seconds);
    }
    std::printf("],\"jobs_sweep\":[");
    for (std::size_t i = 0; i < jobs_rows.size(); ++i) {
      const JobsRow& r = jobs_rows[i];
      std::printf("%s{\"algo\":\"%s\",\"n\":%u,\"jobs\":%u,\"seconds\":%.4f,"
                  "\"speedup\":%.2f,\"identical\":%s}",
                  i == 0 ? "" : ",", r.algo.c_str(), r.n, r.jobs, r.seconds,
                  r.speedup, r.identical ? "true" : "false");
    }
    std::printf("],\"throughput\":[");
    for (std::size_t i = 0; i < rate_rows.size(); ++i) {
      const RateRow& r = rate_rows[i];
      std::printf("%s{\"algo\":\"%s\",\"n\":%u,\"jobs\":%u,\"window_s\":%.2f,"
                  "\"targets\":%" PRIu64 ",\"rate_per_s\":%.1f,"
                  "\"speedup\":%.2f}",
                  i == 0 ? "" : ",", r.algo.c_str(), r.n, r.jobs, r.window_s,
                  r.targets, r.rate, r.speedup);
    }
    std::printf("],\"gate\":{\"min_speedup_at_4_jobs\":1.0,\"applicable\":%s,"
                "\"identical\":%s},\"pass\":%s}\n",
                gate_applicable ? "true" : "false",
                identical_ok ? "true" : "false", ok ? "true" : "false");
    return ok ? 0 : 1;
  }

  Table table("E13a: construction time (sparse-ER, m = 3n)");
  table.set_header({"algorithm", "f", "n", "seconds"});
  for (const LadderRow& r : ladder) {
    table.add_row({r.algo, fmt_u64(r.f), fmt_u64(r.n),
                   fmt_double(r.seconds, 3)});
  }
  table.print(std::cout);
  for (const auto& s : series) {
    if (s.x.size() >= 2) print_fit(s.name, s.x, s.y, 0.0);
  }

  Table jt("E13b: full-build jobs sweep (identical = byte-equal to jobs=1)");
  jt.set_header({"algorithm", "n", "jobs", "seconds", "speedup", "identical"});
  for (const JobsRow& r : jobs_rows) {
    jt.add_row({r.algo, fmt_u64(r.n), fmt_u64(r.jobs),
                fmt_double(r.seconds, 3), fmt_double(r.speedup, 2),
                r.identical ? "yes" : "NO"});
  }
  jt.print(std::cout);

  Table rt("E13c: windowed construction throughput, n = " +
           std::to_string(big_n));
  rt.set_header({"algorithm", "jobs", "window s", "targets", "targets/s",
                 "speedup"});
  for (const RateRow& r : rate_rows) {
    rt.add_row({r.algo, fmt_u64(r.jobs), fmt_double(r.window_s, 2),
                fmt_u64(r.targets), fmt_double(r.rate, 1),
                fmt_double(r.speedup, 2)});
  }
  rt.print(std::cout);

  std::printf("\nReading: all constructions are low-degree polynomials (the\n"
              "greedy set cover pays its Θ(m^f) fault-set enumeration, which\n"
              "is why the paper positions it for instances, not for scale);\n"
              "--jobs divides the per-target work across a speculate-and-\n"
              "commit crew without changing a single byte of the output.\n");
  std::printf("gate: identical %s; speedup > 1 at 4 jobs %s\n",
              identical_ok ? "PASS" : "FAIL",
              gate_applicable ? (scaling_ok ? "PASS" : "FAIL")
                              : "SKIPPED (needs >= 4 hardware threads)");
  return ok ? 0 : 1;
}
