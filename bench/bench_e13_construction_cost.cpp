// Experiment E13 (objective (1), kept polynomial per the paper): construction
// cost scaling of the registered algorithms, with fitted time exponents. The
// paper treats preprocessing as secondary ("our construction time is still
// polynomial in n"); this chart documents the polynomial.
//
// The bench is a data-driven loop over the BuilderRegistry: every registered
// builder is measured at the dual-failure budget when supported, else its
// own budget (the greedy set cover gets a reduced size ladder — it
// enumerates m^f fault sets by design).
#include "bench_util.h"
#include "engine/registry.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E13: construction time (sparse-ER, m = 3n)");
  table.set_header({"algorithm", "f", "n", "seconds"});

  struct Series {
    std::string name;
    std::vector<double> x, y;
  };
  std::vector<Series> series;

  const BuilderRegistry& reg = BuilderRegistry::instance();
  for (const BuilderTraits& t : reg.traits()) {
    // Prefer the dual-failure budget (the paper's regime) where supported.
    const unsigned f =
        std::max(t.min_fault_budget, std::min(2u, t.max_fault_budget));
    if (f > t.max_fault_budget || f == 0) continue;
    // Builders that declare heavy construction get a reduced size ladder.
    const std::vector<Vertex> sizes =
        t.heavy_construction ? std::vector<Vertex>{32u, 48u, 64u}
                             : std::vector<Vertex>{128u, 256u, 512u, 1024u};
    Series s{t.name, {}, {}};
    for (const Vertex n : sizes) {
      const Graph g = make_sparse_er(n, 53);
      BuildRequest req;
      req.graph = &g;
      req.sources = {0};
      req.fault_budget = f;
      const BuildResult r = reg.build(t.name, req);
      table.add_row({t.name, fmt_u64(f), fmt_u64(n),
                     fmt_double(r.build_seconds, 3)});
      s.x.push_back(n);
      s.y.push_back(std::max(r.build_seconds, 1e-5));
    }
    series.push_back(std::move(s));
  }
  table.print(std::cout);
  for (const auto& s : series) {
    if (s.x.size() >= 2) print_fit(s.name, s.x, s.y, 0.0);
  }
  std::printf("\nReading: all constructions are low-degree polynomials; the\n"
              "greedy set cover pays its Θ(m^f) fault-set enumeration, which\n"
              "is why the paper positions it for instances, not for scale.\n");
  return 0;
}
