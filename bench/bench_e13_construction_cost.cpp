// Experiment E13 (objective (1), kept polynomial per the paper): construction
// cost scaling of the four algorithms, with fitted time exponents. The paper
// treats preprocessing as secondary ("our construction time is still
// polynomial in n"); this chart documents the polynomial.
#include "bench_util.h"
#include "core/approx_ftmbfs.h"
#include "core/cons2ftbfs.h"
#include "core/kfail_ftbfs.h"
#include "core/single_ftbfs.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E13: construction time (sparse-ER, m = 3n)");
  table.set_header({"algorithm", "n", "seconds", "SSSP runs"});

  struct Series {
    std::string name;
    std::vector<double> x, y;
  };
  std::vector<Series> series;

  auto measure = [&](const std::string& name, Vertex n, auto&& build) {
    const Graph g = make_sparse_er(n, 53);
    Timer t;
    const std::uint64_t sssp = build(g);
    const double secs = t.seconds();
    table.add_row({name, fmt_u64(n), fmt_double(secs, 3), fmt_u64(sssp)});
    for (auto& s : series) {
      if (s.name == name) {
        s.x.push_back(n);
        s.y.push_back(std::max(secs, 1e-5));
        return;
      }
    }
    series.push_back({name, {double(n)}, {std::max(secs, 1e-5)}});
  };

  for (const Vertex n : {128u, 256u, 512u, 1024u}) {
    measure("single FT-BFS", n, [](const Graph& g) {
      return build_single_ftbfs(g, 0).stats.dijkstra_runs;
    });
    measure("dual FT-BFS (Cons2FTBFS)", n, [](const Graph& g) {
      Cons2Options opt;
      opt.classify_paths = false;
      return build_cons2ftbfs(g, 0, opt).stats.dijkstra_runs;
    });
    measure("chains f=2 (Obs 1.6)", n, [](const Graph& g) {
      return build_kfail_ftbfs(g, 0, 2).structure.stats.dijkstra_runs;
    });
  }
  for (const Vertex n : {32u, 48u, 64u}) {  // greedy enumerates m^2 fault sets
    measure("greedy f=2 (Thm 1.3)", n, [](const Graph& g) {
      const std::vector<Vertex> sources = {0};
      return build_approx_ftmbfs(g, sources, 2).astats.bfs_runs;
    });
  }
  table.print(std::cout);
  for (const auto& s : series) {
    if (s.x.size() >= 2) print_fit(s.name, s.x, s.y, 0.0);
  }
  std::printf("\nReading: all constructions are low-degree polynomials; the\n"
              "greedy set cover pays its Θ(m^2) fault-set enumeration, which\n"
              "is why the paper positions it for instances, not for scale.\n");
  return 0;
}
