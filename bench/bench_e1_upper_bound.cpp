// Experiment E1 (Theorem 1.1): size of the Cons2FTBFS dual-failure FT-BFS
// structure versus n across graph families. The paper proves |E(H)| =
// O(n^{5/3}); the table reports measured sizes, the normalized ratio
// |E(H)|/n^{5/3}, and a fitted exponent per family (expected <= 5/3, with the
// worst-case family in bench_e2 approaching it).
#include "bench_util.h"
#include "core/cons2ftbfs.h"

int main() {
  using namespace ftbfs;
  using namespace ftbfs::bench;

  Table table("E1: dual-failure FT-BFS size vs n (Thm 1.1: O(n^{5/3}))");
  table.set_header({"family", "n", "m", "|E(H)|", "H/m", "H/n^(5/3)",
                    "max|New(v)|", "seconds"});

  struct Series {
    std::vector<double> x, y;
  };
  std::vector<Series> series(standard_families().size());

  const std::vector<Vertex> sizes = {64, 128, 256, 512, 1024};
  for (std::size_t fam = 0; fam < standard_families().size(); ++fam) {
    const Family& family = standard_families()[fam];
    for (const Vertex n : sizes) {
      double h_sum = 0, m_sum = 0, max_new = 0, secs = 0;
      const int trials = 2;
      for (int trial = 0; trial < trials; ++trial) {
        const Graph g = family.make(n, 100 + trial);
        Timer t;
        Cons2Options opt;
        opt.classify_paths = false;  // pure size measurement
        const FtStructure h = build_cons2ftbfs(g, 0, opt);
        secs += t.seconds();
        h_sum += static_cast<double>(h.edges.size());
        m_sum += static_cast<double>(g.num_edges());
        max_new = std::max(
            max_new, static_cast<double>(h.stats.max_new_per_vertex));
      }
      const double h_avg = h_sum / trials;
      const double m_avg = m_sum / trials;
      const double norm = h_avg / std::pow(n, 5.0 / 3.0);
      table.add_row({family.name, fmt_u64(n), fmt_double(m_avg, 0),
                     fmt_double(h_avg, 0), fmt_double(h_avg / m_avg, 3),
                     fmt_double(norm, 4), fmt_double(max_new, 0),
                     fmt_double(secs / trials, 2)});
      series[fam].x.push_back(n);
      series[fam].y.push_back(h_avg);
    }
  }
  table.print(std::cout);
  for (std::size_t fam = 0; fam < standard_families().size(); ++fam) {
    print_fit(standard_families()[fam].name, series[fam].x, series[fam].y,
              5.0 / 3.0);
  }
  std::printf("\nReading: on benign families the structure is far below the\n"
              "worst-case O(n^{5/3}) ceiling (near-linear); the ceiling is\n"
              "realized by the adversarial family in E2.\n");
  return 0;
}
