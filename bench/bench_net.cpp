// Loopback throughput sweep for the socket front-end (src/net/): how much
// does the epoll transport cost relative to the in-process serving pipeline,
// and how does it scale from one connection to a thousand? The sweep crosses
// connection counts {1, 64, 1024} ({1, 64, 256} under --small) with the two
// admission modes (ordered: per-connection response order preserved by the
// reorder buffer; relaxed: completion order, correlation by id). Clients are
// windowed pipeliners (window 32) — the same discipline real clients need,
// since a client that floods requests without reading responses deadlocks
// against the server's write backpressure by design.
//
// Every response is validated against the analytic cycle distance, so a row
// with mismatches > 0 means the transport garbled or misordered something —
// the bench doubles as a stress check. --json emits one machine-readable
// summary line (CI uploads it as BENCH_net.json, next to BENCH_e8.json).
#include <sys/resource.h>
#include <sys/socket.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "net/net_server.h"
#include "service/tenant.h"
#include "util/concurrency.h"
#include "util/timer.h"

namespace {

using namespace ftbfs;

constexpr unsigned kCycleN = 512;
constexpr unsigned kWindow = 32;

// 1024 concurrent client + server fds outgrow the common 1024 soft limit.
void raise_nofile_limit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  const rlim_t want = 8192;
  if (lim.rlim_cur >= want) return;
  lim.rlim_cur = lim.rlim_max == RLIM_INFINITY
                     ? want
                     : std::min<rlim_t>(want, lim.rlim_max);
  setrlimit(RLIMIT_NOFILE, &lim);
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  // Without this the client's Nagle algorithm holds each small request back
  // until the previous segment is ACKed, and the sweep measures the TCP
  // delayed-ACK timer instead of the server.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t sent = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (sent <= 0) return false;
    off += static_cast<std::size_t>(sent);
  }
  return true;
}

struct CellResult {
  unsigned conns = 0;
  std::string mode;
  std::uint64_t requests = 0;
  double seconds = 0.0;
  std::uint64_t mismatches = 0;
  std::uint64_t transport_errors = 0;
};

// One client thread drives `conns` connections with windowed pipelining,
// round-robin so all of them stay concurrently in flight. Responses are
// checked against the analytic distance min(t, N-t) on the cycle. In relaxed
// mode responses may arrive out of request order, so the expected target is
// recovered from the echoed id (id = seq * 1000 + target) instead of being
// predicted from the receive position.
void client_main(std::uint16_t port, unsigned conns, unsigned per_conn,
                 bool ordered, std::atomic<std::uint64_t>& mismatches,
                 std::atomic<std::uint64_t>& transport_errors) {
  struct ConnState {
    int fd = -1;
    unsigned sent = 0;
    unsigned received = 0;
    std::string buf;
  };
  std::vector<ConnState> cs(conns);
  for (ConnState& c : cs) {
    c.fd = connect_loopback(port);
    if (c.fd < 0) {
      ++transport_errors;
      c.sent = c.received = per_conn;  // skip this connection
    }
  }
  auto check_line = [&](const std::string& line, unsigned expect_seq) {
    // Cheap field scrape — the bench must not bottleneck on its own parser.
    const std::size_t idp = line.find("\"id\":");
    if (idp == std::string::npos) return false;
    const long id = std::strtol(line.c_str() + idp + 5, nullptr, 10);
    const unsigned target = static_cast<unsigned>(id % 1000);
    const unsigned seq = static_cast<unsigned>(id / 1000);
    if (ordered && seq != expect_seq) return false;
    const unsigned dist = std::min(target, kCycleN - target);
    return line.find("\"distances\":[" + std::to_string(dist) + "]") !=
           std::string::npos;
  };
  bool work_left = true;
  char chunk[8192];
  std::string req;
  while (work_left) {
    work_left = false;
    for (unsigned i = 0; i < conns; ++i) {
      ConnState& c = cs[i];
      req.clear();
      while (c.sent < per_conn && c.sent - c.received < kWindow) {
        const unsigned target = 1 + (i * 37 + c.sent * 11) % (kCycleN - 1);
        req += "{\"id\":" + std::to_string(c.sent * 1000 + target) +
               ",\"source\":0,\"targets\":[" + std::to_string(target) + "]}\n";
        ++c.sent;
      }
      if (!req.empty() && !send_all(c.fd, req.data(), req.size())) {
        ++transport_errors;
        c.sent = c.received = per_conn;
        continue;
      }
      if (c.received < c.sent) {
        const ssize_t n = ::recv(c.fd, chunk, sizeof chunk, 0);
        if (n <= 0) {
          ++transport_errors;
          c.sent = c.received = per_conn;
          continue;
        }
        c.buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = c.buf.find('\n')) != std::string::npos) {
          if (!check_line(c.buf.substr(0, nl), c.received)) ++mismatches;
          c.buf.erase(0, nl + 1);
          ++c.received;
        }
      }
      if (c.received < per_conn) work_left = true;
    }
  }
  for (ConnState& c : cs) {
    if (c.fd >= 0) ::close(c.fd);
  }
}

CellResult run_cell(unsigned conns, bool ordered, unsigned total_requests,
                    unsigned server_threads) {
  TenantRegistry registry;
  Tenant& tenant = registry.add("default", cycle_graph(kCycleN));
  // O(1) per-query fast path: the sweep measures the transport, not a BFS
  // (and not the one-time lazy structure build, which dwarfs everything).
  tenant.service.enable_point_oracle(0);
  NetServerConfig config;
  config.threads = server_threads;
  config.ordered = ordered;
  NetServer server(registry, config);
  std::thread server_thread([&server] { server.run(); });

  const unsigned per_conn = std::max(1u, total_requests / conns);
  const unsigned client_threads = std::min(16u, conns);
  const unsigned conns_per_thread = conns / client_threads;
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> transport_errors{0};

  Timer timer;
  std::vector<std::thread> clients;
  for (unsigned t = 0; t < client_threads; ++t) {
    clients.emplace_back(client_main, server.port(), conns_per_thread,
                         per_conn, ordered, std::ref(mismatches),
                         std::ref(transport_errors));
  }
  for (std::thread& t : clients) t.join();
  const double elapsed = timer.seconds();

  server.request_shutdown();
  server_thread.join();

  CellResult cell;
  cell.conns = conns;
  cell.mode = ordered ? "ordered" : "relaxed";
  cell.requests = std::uint64_t{per_conn} * conns_per_thread * client_threads;
  cell.seconds = elapsed;
  cell.mismatches = mismatches.load();
  cell.transport_errors = transport_errors.load();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--small]\n", argv[0]);
      return 2;
    }
  }
  raise_nofile_limit();

  const std::vector<unsigned> conn_counts =
      small ? std::vector<unsigned>{1, 64, 256}
            : std::vector<unsigned>{1, 64, 1024};
  const unsigned total_requests = small ? 16384 : 65536;
  const unsigned server_threads =
      std::max(2u, std::min(8u, hardware_workers() / 2));

  std::vector<CellResult> cells;
  for (const unsigned conns : conn_counts) {
    for (const bool ordered : {true, false}) {
      cells.push_back(run_cell(conns, ordered, total_requests, server_threads));
    }
  }

  if (!json) {
    std::printf("bench_net: loopback sweep, cycle n=%u, window=%u, "
                "server threads=%u\n",
                kCycleN, kWindow, server_threads);
    std::printf("%8s %8s %10s %10s %12s %8s %8s\n", "conns", "mode",
                "requests", "us/req", "req/s", "bad", "ioerr");
  }
  std::string rows_json;
  for (const CellResult& c : cells) {
    const double us = 1e6 * c.seconds / std::max<std::uint64_t>(1, c.requests);
    const double rps = c.requests / std::max(c.seconds, 1e-12);
    if (json) {
      char row[256];
      std::snprintf(row, sizeof row,
                    "%s{\"conns\":%u,\"mode\":\"%s\",\"requests\":%llu,"
                    "\"us_per_request\":%.2f,\"requests_per_sec\":%.0f,"
                    "\"mismatches\":%llu,\"transport_errors\":%llu}",
                    rows_json.empty() ? "" : ",", c.conns, c.mode.c_str(),
                    static_cast<unsigned long long>(c.requests), us, rps,
                    static_cast<unsigned long long>(c.mismatches),
                    static_cast<unsigned long long>(c.transport_errors));
      rows_json += row;
    } else {
      std::printf("%8u %8s %10llu %10.2f %12.0f %8llu %8llu\n", c.conns,
                  c.mode.c_str(),
                  static_cast<unsigned long long>(c.requests), us, rps,
                  static_cast<unsigned long long>(c.mismatches),
                  static_cast<unsigned long long>(c.transport_errors));
    }
  }
  if (json) {
    std::printf("{\"bench\":\"net\",\"cycle_n\":%u,\"window\":%u,"
                "\"server_threads\":%u,\"rows\":[%s]}\n",
                kCycleN, kWindow, server_threads, rows_json.c_str());
  }

  std::uint64_t bad = 0;
  for (const CellResult& c : cells) bad += c.mismatches + c.transport_errors;
  return bad == 0 ? 0 : 1;
}
