#include "engine/registry.h"

#include <utility>

#include "core/approx_ftmbfs.h"
#include "core/cons2ftbfs.h"
#include "core/ftmbfs.h"
#include "core/kfail_ftbfs.h"
#include "core/single_ftbfs.h"
#include "core/swap_ftbfs.h"
#include "util/concurrency.h"
#include "util/timer.h"

namespace ftbfs {
namespace {

// Registry counters describing the parallel schedule a builder actually ran
// (worker count after clamping, speculation conflicts re-run sequentially).
void add_parallel_counters(BuildResult& out, const ParallelBuildReport& r) {
  out.counters.emplace_back("build_workers", r.workers);
  if (r.workers > 1) {
    out.counters.emplace_back("spec_blocks", r.blocks);
    out.counters.emplace_back("spec_conflicts", r.conflicts);
  }
}

BuildResult build_single(const BuildRequest& req) {
  SingleFtbfsOptions opt;
  opt.weight_seed = req.weight_seed;
  opt.jobs = req.options.jobs;
  ParallelBuildReport report;
  opt.parallel_report = &report;
  BuildResult out;
  out.structure = build_single_ftbfs(*req.graph, req.sources[0], opt);
  add_parallel_counters(out, report);
  return out;
}

BuildResult build_cons2(const BuildRequest& req) {
  Cons2Options opt;
  opt.weight_seed = req.weight_seed;
  opt.classify_paths = req.collect_stats;
  opt.jobs = req.options.jobs;
  ParallelBuildReport report;
  opt.parallel_report = &report;
  BuildResult out;
  out.structure = build_cons2ftbfs(*req.graph, req.sources[0], opt);
  add_parallel_counters(out, report);
  out.counters.emplace_back("fault_pairs_considered",
                            out.structure.stats.fault_pairs_considered);
  if (req.collect_stats) {
    const PathClassCounts& c = out.structure.stats.classes;
    out.counters.emplace_back("class_single", c.single);
    out.counters.emplace_back("class_a_pi_pi", c.a_pi_pi);
    out.counters.emplace_back("class_b_nodet", c.b_nodet);
    out.counters.emplace_back("class_c_indep", c.c_indep);
    out.counters.emplace_back("class_d_pi_interf", c.d_pi_interf);
    out.counters.emplace_back("class_e_d_interf", c.e_d_interf);
  }
  return out;
}

BuildResult build_kfail(const BuildRequest& req) {
  KFailOptions opt;
  opt.weight_seed = req.weight_seed;
  KFailResult r =
      req.fault_model == FaultModel::kVertex
          ? build_kfail_ftbfs_vertex(*req.graph, req.sources[0],
                                     req.fault_budget, opt)
          : build_kfail_ftbfs(*req.graph, req.sources[0], req.fault_budget,
                              opt);
  BuildResult out;
  out.structure = std::move(r.structure);
  out.counters.emplace_back("chains_enumerated", r.kstats.chains_enumerated);
  out.counters.emplace_back("chain_cap_hits", r.kstats.chain_cap_hits);
  return out;
}

BuildResult build_ftmbfs(const BuildRequest& req) {
  FtMbfsOptions opt;
  opt.weight_seed = req.weight_seed;
  opt.jobs = req.options.jobs;
  ParallelBuildReport report;
  opt.parallel_report = &report;
  FtMbfsResult r =
      req.fault_budget == 1
          ? build_single_ftmbfs(*req.graph, req.sources, opt)
          : build_cons2ftmbfs(*req.graph, req.sources, opt);
  BuildResult out;
  out.structure = std::move(r.structure);
  std::uint64_t before_union = 0;
  for (const std::uint64_t s : r.per_source_size) before_union += s;
  out.counters.emplace_back("edges_before_union", before_union);
  add_parallel_counters(out, report);
  return out;
}

BuildResult build_approx(const BuildRequest& req) {
  ApproxOptions opt;
  ApproxResult r =
      build_approx_ftmbfs(*req.graph, req.sources, req.fault_budget, opt);
  BuildResult out;
  out.structure = std::move(r.structure);
  out.counters.emplace_back("universe_size", r.astats.universe_size);
  out.counters.emplace_back("bfs_runs", r.astats.bfs_runs);
  out.counters.emplace_back("greedy_picks", r.astats.greedy_picks);
  return out;
}

BuildResult build_swap(const BuildRequest& req) {
  SwapFtbfsOptions opt;
  opt.weight_seed = req.weight_seed;
  SwapResult r = build_swap_ftbfs(*req.graph, req.sources[0], opt);
  BuildResult out;
  out.structure = std::move(r.structure);
  out.counters.emplace_back("swap_edges", r.swap.swap_edges);
  out.counters.emplace_back("uncovered_cuts", r.swap.uncovered_cuts);
  return out;
}

BuilderRegistry make_default_registry() {
  BuilderRegistry reg;
  {
    BuilderTraits t;
    t.name = "single_ftbfs";
    t.summary = "single-failure FT-BFS of [10], O(n^{3/2}) edges";
    t.aliases = {"single"};
    t.min_fault_budget = t.max_fault_budget = 1;
    t.parallel_build = true;
    reg.add(std::move(t), &build_single);
  }
  {
    BuilderTraits t;
    t.name = "cons2ftbfs";
    t.summary = "dual-failure Cons2FTBFS (Thm 1.1), O(n^{5/3}) edges";
    t.aliases = {"cons2", "dual"};
    t.min_fault_budget = t.max_fault_budget = 2;
    t.parallel_build = true;
    reg.add(std::move(t), &build_cons2);
  }
  {
    BuilderTraits t;
    t.name = "kfail_ftbfs";
    t.summary = "f-failure chain construction (Obs 1.6), edge or vertex faults";
    t.aliases = {"kfail", "chains"};
    t.vertex_faults = true;
    reg.add(std::move(t), &build_kfail);
  }
  {
    BuilderTraits t;
    t.name = "ftmbfs";
    t.summary = "multi-source FT-MBFS union (per-source single/cons2)";
    t.aliases = {"union"};
    t.min_fault_budget = 1;
    t.max_fault_budget = 2;
    t.multi_source = true;
    t.parallel_build = true;
    reg.add(std::move(t), &build_ftmbfs);
  }
  {
    BuilderTraits t;
    t.name = "approx_ftmbfs";
    t.summary = "greedy set-cover FT-MBFS, O(log n)-approx size (Thm 1.3)";
    t.aliases = {"greedy", "approx"};
    t.multi_source = true;
    t.heavy_construction = true;  // enumerates σ·m^f fault sets
    reg.add(std::move(t), &build_approx);
  }
  {
    BuilderTraits t;
    t.name = "swap_ftbfs";
    t.summary = "O(n)-edge swap-edge structure (approximate distances)";
    t.aliases = {"swap"};
    t.min_fault_budget = t.max_fault_budget = 1;
    t.exact = false;
    reg.add(std::move(t), &build_swap);
  }
  return reg;
}

}  // namespace

BuilderRegistry& BuilderRegistry::instance() {
  static BuilderRegistry registry = make_default_registry();
  return registry;
}

void BuilderRegistry::add(BuilderTraits traits, BuildFn fn) {
  FTBFS_EXPECTS(!traits.name.empty());
  FTBFS_EXPECTS(find(traits.name) == nullptr);
  for (const std::string& alias : traits.aliases) {
    FTBFS_EXPECTS(find(alias) == nullptr);  // aliases must not shadow anyone
  }
  traits_.push_back(std::move(traits));
  fns_.push_back(std::move(fn));
}

const BuilderTraits* BuilderRegistry::find(std::string_view name) const {
  for (const BuilderTraits& t : traits_) {
    if (t.name == name) return &t;
    for (const std::string& alias : t.aliases) {
      if (alias == name) return &t;
    }
  }
  return nullptr;
}

std::vector<std::string> BuilderRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(traits_.size());
  for (const BuilderTraits& t : traits_) out.push_back(t.name);
  return out;
}

std::string BuilderRegistry::unsupported_reason(std::string_view name,
                                                const BuildRequest& req) const {
  const BuilderTraits* t = find(name);
  if (t == nullptr) return "unknown builder '" + std::string(name) + "'";
  if (req.graph == nullptr) return "request has no graph";
  if (req.sources.empty()) return "request has no sources";
  for (const Vertex s : req.sources) {
    if (s >= req.graph->num_vertices()) {
      return "source " + std::to_string(s) + " out of range";
    }
  }
  if (req.sources.size() > 1 && !t->multi_source) {
    return t->name + " is single-source (got " +
           std::to_string(req.sources.size()) + " sources)";
  }
  if (req.fault_budget < t->min_fault_budget ||
      req.fault_budget > t->max_fault_budget) {
    std::string range =
        t->max_fault_budget == kUnboundedFaults
            ? ">= " + std::to_string(t->min_fault_budget)
            : std::to_string(t->min_fault_budget) +
                  (t->min_fault_budget == t->max_fault_budget
                       ? ""
                       : ".." + std::to_string(t->max_fault_budget));
    return t->name + " supports fault budget " + range + " (got " +
           std::to_string(req.fault_budget) + ")";
  }
  if (req.fault_model == FaultModel::kVertex && !t->vertex_faults) {
    return t->name + " supports edge faults only";
  }
  return {};
}

BuildResult BuilderRegistry::build(std::string_view name,
                                   const BuildRequest& req) const {
  FTBFS_EXPECTS(unsupported_reason(name, req).empty());
  const BuilderTraits* t = find(name);
  const BuildFn& fn = fns_[static_cast<std::size_t>(t - traits_.data())];
  Timer timer;
  BuildResult out = fn(req);
  out.build_seconds = timer.seconds();
  out.algorithm = t->name;
  if (!t->parallel_build &&
      resolve_jobs(req.options.jobs, req.graph->num_vertices()) > 1) {
    out.counters.emplace_back("parallel_fallback_sequential", 1);
  }
  return out;
}

std::string BuilderRegistry::default_builder(unsigned fault_budget,
                                             FaultModel model,
                                             std::size_t num_sources) {
  if (num_sources > 1) {
    return model == FaultModel::kEdge && fault_budget >= 1 && fault_budget <= 2
               ? "ftmbfs"
               : "approx_ftmbfs";
  }
  if (model == FaultModel::kVertex) return "kfail_ftbfs";
  switch (fault_budget) {
    case 1:
      return "single_ftbfs";
    case 2:
      return "cons2ftbfs";
    default:
      return "kfail_ftbfs";
  }
}

}  // namespace ftbfs
