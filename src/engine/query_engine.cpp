#include "engine/query_engine.h"

#include <algorithm>
#include <limits>
#include <thread>

namespace ftbfs {

CanonicalFaultSet FaultSpec::canonicalize() const {
  CanonicalFaultSet canon;
  canon.assign(*this);
  return canon;
}

void CanonicalFaultSet::assign(const FaultSpec& faults) {
  edges_.assign(faults.edges.begin(), faults.edges.end());
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  vertices_.assign(faults.vertices.begin(), faults.vertices.end());
  std::sort(vertices_.begin(), vertices_.end());
  vertices_.erase(std::unique(vertices_.begin(), vertices_.end()),
                  vertices_.end());
}

FaultQueryEngine::FaultQueryEngine(const Graph& g,
                                   std::span<const EdgeId> h_edges)
    : g_(&g),
      h_owned_(std::make_unique<Graph>(subgraph_from_edges(g, h_edges))),
      h_(h_owned_.get()),
      g_to_h_(g.num_edges(), kInvalidEdge) {
  // subgraph_from_edges assigns H edge ids in the order of h_edges.
  for (EdgeId i = 0; i < h_edges.size(); ++i) {
    g_to_h_[h_edges[i]] = i;
  }
  pool_.push_back(std::make_unique<Scratch>(*h_));
}

FaultQueryEngine::FaultQueryEngine(const Graph& g) : g_(&g), h_(&g) {
  pool_.push_back(std::make_unique<Scratch>(*h_));
}

void FaultQueryEngine::apply_faults(Scratch& s, const FaultSpec& faults) const {
  s.canon.assign(faults);
  s.mask.clear();
  for (const EdgeId e : s.canon.edges()) {
    FTBFS_EXPECTS(e < g_->num_edges());
    const EdgeId he = g_to_h_.empty() ? e : g_to_h_[e];
    if (he != kInvalidEdge) s.mask.block_edge(he);
  }
  for (const Vertex v : s.canon.vertices()) {
    FTBFS_EXPECTS(v < g_->num_vertices());
    s.mask.block_vertex(v);  // vertex ids are shared between g and H
  }
}

FaultQueryEngine::Scratch& FaultQueryEngine::scratch(std::size_t slot) {
  while (pool_.size() <= slot) {
    pool_.push_back(std::make_unique<Scratch>(*h_));
  }
  return *pool_[slot];
}

const BfsResult& FaultQueryEngine::query(Vertex source,
                                         const FaultSpec& faults) {
  Scratch& s = scratch(0);
  apply_faults(s, faults);
  ++queries_;
  return s.bfs.run(source, &s.mask);
}

std::uint32_t FaultQueryEngine::distance(Vertex source, Vertex target,
                                         const FaultSpec& faults) {
  Scratch& s = scratch(0);
  apply_faults(s, faults);
  ++queries_;
  const Vertex targets[1] = {target};
  return s.bfs.run_until(source, targets, &s.mask).hops[target];
}

std::optional<Path> FaultQueryEngine::shortest_path(Vertex source,
                                                    Vertex target,
                                                    const FaultSpec& faults) {
  Scratch& s = scratch(0);
  apply_faults(s, faults);
  ++queries_;
  const Vertex targets[1] = {target};
  const BfsResult& r = s.bfs.run_until(source, targets, &s.mask);
  if (r.hops[target] == kInfHops) return std::nullopt;
  Path p;
  for (Vertex cur = target; cur != kInvalidVertex; cur = r.parent[cur]) {
    p.push_back(cur);
  }
  std::reverse(p.begin(), p.end());
  return p;
}

const std::vector<std::uint32_t>& FaultQueryEngine::all_distances(
    Vertex source, const FaultSpec& faults) {
  return query(source, faults).hops;
}

std::vector<std::uint32_t> FaultQueryEngine::batch(
    Vertex source, std::span<const FaultSpec> fault_sets,
    std::span<const Vertex> targets, unsigned threads) {
  const std::size_t rows = fault_sets.size();
  const std::size_t cols = targets.size();
  std::vector<std::uint32_t> out(rows * cols, kInfHops);
  if (rows == 0 || cols == 0) return out;

  // Clamp to the row count and the machine: extra workers would only allocate
  // idle (mask, BFS) scratch slots they never use.
  unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;  // unknown — be conservative
  const unsigned workers = std::max(
      1u, std::min({threads, static_cast<unsigned>(std::min<std::size_t>(
                                 rows, std::numeric_limits<unsigned>::max())),
                    hardware}));

  auto run_rows = [&](std::size_t slot, std::size_t begin, std::size_t end) {
    Scratch& s = scratch(slot);
    for (std::size_t i = begin; i < end; ++i) {
      apply_faults(s, fault_sets[i]);
      const BfsResult& r = s.bfs.run_until(source, targets, &s.mask);
      for (std::size_t j = 0; j < cols; ++j) {
        out[i * cols + j] = r.hops[targets[j]];
      }
    }
  };

  if (workers == 1) {
    run_rows(0, 0, rows);
  } else {
    // Pre-grow the pool before spawning: scratch() mutates pool_ and must not
    // race.
    (void)scratch(workers - 1);
    std::vector<std::thread> crew;
    crew.reserve(workers);
    const std::size_t chunk = (rows + workers - 1) / workers;
    for (unsigned w = 0; w < workers; ++w) {
      const std::size_t begin = std::min<std::size_t>(w * chunk, rows);
      const std::size_t end = std::min<std::size_t>(begin + chunk, rows);
      crew.emplace_back(run_rows, w, begin, end);
    }
    for (std::thread& t : crew) t.join();
  }
  queries_ += rows;
  return out;
}

}  // namespace ftbfs
