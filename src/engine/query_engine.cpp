#include "engine/query_engine.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <utility>

#include "util/concurrency.h"

namespace ftbfs {

CanonicalFaultSet FaultSpec::canonicalize() const {
  CanonicalFaultSet canon;
  canon.assign(*this);
  return canon;
}

void CanonicalFaultSet::assign(const FaultSpec& faults) {
  edges_.assign(faults.edges.begin(), faults.edges.end());
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  vertices_.assign(faults.vertices.begin(), faults.vertices.end());
  std::sort(vertices_.begin(), vertices_.end());
  vertices_.erase(std::unique(vertices_.begin(), vertices_.end()),
                  vertices_.end());
}

FaultQueryEngine::FaultQueryEngine(const Graph& g,
                                   std::span<const EdgeId> h_edges)
    : g_(&g),
      h_owned_(std::make_unique<Graph>(subgraph_from_edges(g, h_edges))),
      h_(h_owned_.get()),
      g_to_h_(g.num_edges(), kInvalidEdge),
      pool_(std::make_unique<ScratchPool>()),
      baselines_(std::make_unique<BaselineStore>()) {
  // subgraph_from_edges assigns H edge ids in the order of h_edges.
  for (EdgeId i = 0; i < h_edges.size(); ++i) {
    g_to_h_[h_edges[i]] = i;
  }
  pool_->slots.push_back(std::make_unique<Scratch>(*h_));
}

FaultQueryEngine::FaultQueryEngine(const Graph& g)
    : g_(&g),
      h_(&g),
      pool_(std::make_unique<ScratchPool>()),
      baselines_(std::make_unique<BaselineStore>()) {
  pool_->slots.push_back(std::make_unique<Scratch>(*h_));
}

FaultQueryEngine::Baseline::Baseline(const Graph& h, BfsResult t,
                                     std::span<const Vertex> visit_order,
                                     Vertex source)
    : tree(std::move(t)),
      index(h, tree, source),
      tree_child(h.num_edges(), kInvalidVertex),
      rank(h.num_vertices(), static_cast<std::uint32_t>(-1)) {
  for (Vertex v = 0; v < h.num_vertices(); ++v) {
    if (v == source || tree.hops[v] == kInfHops) continue;
    tree_child[tree.parent_edge[v]] = v;
  }
  for (std::uint32_t i = 0; i < visit_order.size(); ++i) {
    rank[visit_order[i]] = i;
  }
}

// h_ points at h_owned_ (address-stable across the unique_ptr move) or at the
// caller-owned g_; either way the raw pointers transfer verbatim. Only the
// atomic counters need hand-holding.
FaultQueryEngine::FaultQueryEngine(FaultQueryEngine&& o) noexcept
    : g_(o.g_),
      h_owned_(std::move(o.h_owned_)),
      h_(o.h_),
      g_to_h_(std::move(o.g_to_h_)),
      pool_(std::move(o.pool_)),
      baselines_(std::move(o.baselines_)),
      delta_(o.delta_),
      queries_(o.queries_.load(std::memory_order_relaxed)),
      fast_path_hits_(o.fast_path_hits_.load(std::memory_order_relaxed)),
      repair_bfs_(o.repair_bfs_.load(std::memory_order_relaxed)),
      full_bfs_(o.full_bfs_.load(std::memory_order_relaxed)) {}

FaultQueryEngine& FaultQueryEngine::operator=(FaultQueryEngine&& o) noexcept {
  g_ = o.g_;
  h_owned_ = std::move(o.h_owned_);
  h_ = o.h_;
  g_to_h_ = std::move(o.g_to_h_);
  pool_ = std::move(o.pool_);
  baselines_ = std::move(o.baselines_);
  delta_ = o.delta_;
  queries_.store(o.queries_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  fast_path_hits_.store(o.fast_path_hits_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  repair_bfs_.store(o.repair_bfs_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  full_bfs_.store(o.full_bfs_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  return *this;
}

void FaultQueryEngine::apply_faults(Scratch& s, const FaultSpec& faults) const {
  s.canon.assign(faults);
  s.mask.clear();
  for (const EdgeId e : s.canon.edges()) {
    FTBFS_EXPECTS(e < g_->num_edges());
    const EdgeId he = g_to_h_.empty() ? e : g_to_h_[e];
    if (he != kInvalidEdge) s.mask.block_edge(he);
  }
  for (const Vertex v : s.canon.vertices()) {
    FTBFS_EXPECTS(v < g_->num_vertices());
    s.mask.block_vertex(v);  // vertex ids are shared between g and H
  }
}

const FaultQueryEngine::Baseline* FaultQueryEngine::baseline_for(
    Vertex source) {
  if (!delta_.enabled) return nullptr;
  BaselineStore& store = *baselines_;
  const auto find = [&](Vertex s) -> const Baseline* {
    const auto it = std::lower_bound(
        store.entries.begin(), store.entries.end(), s,
        [](const auto& entry, Vertex v) { return entry.first < v; });
    if (it != store.entries.end() && it->first == s) return it->second.get();
    return nullptr;
  };
  {
    const std::shared_lock lock(store.mutex);
    if (const Baseline* base = find(source)) return base;
    if (store.entries.size() >= kMaxBaselines) return nullptr;
  }
  // Build outside the lock (one fault-free BFS over H); racing builders for
  // the same source waste one BFS and the first insert wins.
  Bfs bfs(*h_);
  BfsResult tree = bfs.run(source);  // copy; visit_order() reads the queue
  auto built = std::make_unique<Baseline>(*h_, std::move(tree),
                                          bfs.visit_order(), source);
  {
    const std::unique_lock lock(store.mutex);
    if (const Baseline* base = find(source)) return base;
    if (store.entries.size() >= kMaxBaselines) return nullptr;
    const auto it = std::lower_bound(
        store.entries.begin(), store.entries.end(), source,
        [](const auto& entry, Vertex v) { return entry.first < v; });
    return store.entries.emplace(it, source, std::move(built))
        ->second.get();
  }
}

const std::vector<std::uint32_t>* FaultQueryEngine::baseline_hops(
    Vertex source) {
  const Baseline* base = baseline_for(source);
  return base == nullptr ? nullptr : &base->tree.hops;
}

FaultQueryEngine::Damage FaultQueryEngine::classify(Scratch& s,
                                                    const Baseline& base,
                                                    Vertex source) const {
  s.impacts.clear();
  for (const EdgeId e : s.canon.edges()) {
    const EdgeId he = g_to_h_.empty() ? e : g_to_h_[e];
    if (he == kInvalidEdge) continue;  // absent from H: cannot matter
    const Vertex c = base.tree_child[he];
    if (c != kInvalidVertex) s.impacts.push_back(c);
  }
  for (const Vertex v : s.canon.vertices()) {
    if (v == source) return Damage::kSourceBlocked;
    // A faulted vertex the baseline never reached has no reached neighbors
    // either (they would have discovered it), so masking it changes nothing.
    if (base.tree.hops[v] != kInfHops) s.impacts.push_back(v);
  }
  return s.impacts.empty() ? Damage::kNone : Damage::kSubtrees;
}

const BfsResult* FaultQueryEngine::repair(Scratch& s, const Baseline& base,
                                          std::span<const Vertex> targets,
                                          bool* from_baseline) {
  const Graph& h = *h_;
  *from_baseline = false;

  // Mark the affected region: the union of the cut points' subtrees, each a
  // contiguous preorder slice. Nested subtrees dedupe on the epoch stamp (a
  // cut point already marked is interior to an earlier slice — skip it
  // whole). Bail to the full BFS once the region exceeds the threshold: the
  // marking cost spent so far is itself bounded by the threshold.
  const std::uint64_t epoch = ++s.affected_clock;
  const auto marked = [&](Vertex v) { return s.affected_epoch[v] == epoch; };
  // fraction 0 ⇒ limit 0 ⇒ any damage at all falls back to the full BFS.
  const std::size_t limit =
      static_cast<std::size_t>(delta_.max_affected_fraction *
                               static_cast<double>(h.num_vertices()));
  s.affected.clear();
  for (const Vertex c : s.impacts) {
    if (marked(c)) continue;
    for (const Vertex w : base.index.subtree_span(c)) {
      if (marked(w)) continue;
      s.affected_epoch[w] = epoch;
      s.affected.push_back(w);
      if (s.affected.size() > limit) return nullptr;
    }
  }

  // Every requested target outside the affected region keeps its baseline
  // distance — and its baseline root path: the ancestors of an unaffected
  // vertex are all unaffected (affected sets are subtree-closed), so the
  // whole baseline tree answers without running the repair.
  if (!targets.empty()) {
    bool any_affected = false;
    for (const Vertex t : targets) any_affected |= marked(t);
    if (!any_affected) {
      *from_baseline = true;
      return &base.tree;
    }
  }

  // Sync the output tree with the baseline: a full copy the first time (or
  // after a baseline switch), then only the entries the previous repair on
  // this scratch dirtied. Copy-assign reuses capacity, so steady state pays
  // O(prev affected), not O(n), and allocates nothing.
  if (s.repair_synced != &base) {
    s.repair = base.tree;
    s.repair_synced = &base;
  } else {
    for (const Vertex w : s.prev_affected) {
      s.repair.hops[w] = base.tree.hops[w];
      s.repair.parent[w] = base.tree.parent[w];
      s.repair.parent_edge[w] = base.tree.parent_edge[w];
    }
  }

  // Seed the repair: an affected vertex enters any shortest path through an
  // unaffected usable neighbor u, whose masked distance equals its baseline
  // distance. Seeds are upper bounds (the true path may run through other
  // affected vertices first); the Dial pass below relaxes them properly.
  // Parents are carried along: the seeding/relaxing neighbor becomes the
  // parent, ties broken toward the lowest baseline discovery rank — the
  // neighbor the full masked BFS would usually scan first.
  for (const Vertex w : s.affected) {
    s.repair.hops[w] = kInfHops;
    s.repair.parent[w] = kInvalidVertex;
    s.repair.parent_edge[w] = kInvalidEdge;
  }
  std::uint32_t dmin = kInfHops;
  const auto push_bucket = [&](Vertex v, std::uint32_t d) {
    if (s.buckets.size() <= d) s.buckets.resize(d + 1);
    s.buckets[d].push_back(v);
  };
  for (const Vertex w : s.affected) {
    if (s.mask.vertex_blocked(w)) continue;
    std::uint32_t best = kInfHops;
    std::uint32_t best_rank = static_cast<std::uint32_t>(-1);
    Vertex best_parent = kInvalidVertex;
    EdgeId best_edge = kInvalidEdge;
    for (const Arc& arc : h.neighbors(w)) {
      if (marked(arc.to)) continue;
      const std::uint32_t du = base.tree.hops[arc.to];
      if (du == kInfHops || du + 1 > best) continue;
      if (du + 1 == best && base.rank[arc.to] >= best_rank) continue;
      if (s.mask.arc_blocked_unrestricted(arc.id, arc.to)) continue;
      best = du + 1;
      best_rank = base.rank[arc.to];
      best_parent = arc.to;
      best_edge = arc.id;
    }
    if (best != kInfHops) {
      s.repair.hops[w] = best;
      s.repair.parent[w] = best_parent;
      s.repair.parent_edge[w] = best_edge;
      push_bucket(w, best);
      dmin = std::min(dmin, best);
    }
  }

  // Dial's pass over the affected region only: unit edges, buckets keyed by
  // absolute hop count, stale entries skipped. Bounded by the volume of the
  // region (vertices + incident arcs), never by |H|. The first relaxer at
  // d + 1 becomes the parent (seeds — unaffected, hence queue-earlier in the
  // full BFS — are never displaced by an equal-distance relaxation).
  if (dmin != kInfHops) {
    for (std::uint32_t d = dmin;
         d < static_cast<std::uint32_t>(s.buckets.size()); ++d) {
      // Index, don't hold a reference: push_bucket(x, d + 1) may grow the
      // outer bucket vector and would invalidate it.
      for (std::size_t i = 0; i < s.buckets[d].size(); ++i) {
        const Vertex w = s.buckets[d][i];
        if (s.repair.hops[w] != d) continue;  // superseded by a better seed
        for (const Arc& arc : h.neighbors(w)) {
          const Vertex x = arc.to;
          if (!marked(x) || s.repair.hops[x] <= d + 1) continue;
          if (s.mask.arc_blocked_unrestricted(arc.id, x)) continue;
          s.repair.hops[x] = d + 1;
          s.repair.parent[x] = w;
          s.repair.parent_edge[x] = arc.id;
          push_bucket(x, d + 1);
        }
      }
      s.buckets[d].clear();
    }
  }
  std::swap(s.prev_affected, s.affected);
  return &s.repair;
}

const std::vector<std::uint32_t>& FaultQueryEngine::hops_in(
    Scratch& s, Vertex source, const FaultSpec& faults,
    std::span<const Vertex> early_exit_targets) {
  apply_faults(s, faults);
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (const Baseline* base = baseline_for(source)) {
    switch (classify(s, *base, source)) {
      case Damage::kNone:
        fast_path_hits_.fetch_add(1, std::memory_order_relaxed);
        return base->tree.hops;
      case Damage::kSubtrees: {
        bool from_baseline = false;
        if (const BfsResult* r =
                repair(s, *base, early_exit_targets, &from_baseline)) {
          (from_baseline ? fast_path_hits_ : repair_bfs_)
              .fetch_add(1, std::memory_order_relaxed);
          return r->hops;
        }
        break;  // affected region above threshold: full BFS
      }
      case Damage::kSourceBlocked:
        break;  // everything unreachable; let the full BFS report it
    }
  }
  full_bfs_.fetch_add(1, std::memory_order_relaxed);
  return s.bfs.run_until(source, early_exit_targets, &s.mask).hops;
}

FaultQueryEngine::Scratch& FaultQueryEngine::scratch(std::size_t slot) {
  const std::lock_guard lock(pool_->mutex);
  while (pool_->slots.size() <= slot) {
    pool_->slots.push_back(std::make_unique<Scratch>(*h_));
  }
  return *pool_->slots[slot];
}

FaultQueryEngine::ScratchLease FaultQueryEngine::acquire_scratch() {
  const std::lock_guard lock(pool_->mutex);
  if (!pool_->free_list.empty()) {
    const std::size_t slot = pool_->free_list.back();
    pool_->free_list.pop_back();
    return ScratchLease(this, pool_->slots[slot].get(), slot);
  }
  pool_->slots.push_back(std::make_unique<Scratch>(*h_));
  return ScratchLease(this, pool_->slots.back().get(), pool_->slots.size() - 1);
}

void FaultQueryEngine::release_scratch(std::size_t slot) {
  const std::lock_guard lock(pool_->mutex);
  pool_->free_list.push_back(slot);
}

// The parent-exposing primitive. When no fault touches the baseline tree the
// masked BFS would retrace the fault-free BFS move for move (a blocked
// non-tree edge is only ever scanned toward an already-discovered vertex, a
// blocked unreached vertex has no reached neighbors), so the baseline result
// — parents and parent_edges included — IS the full-BFS result, bit for bit.
// Tree damage runs the parent-carrying repair: hops stay bit-identical to
// the full BFS, parents form a valid shortest-path tree of H ∖ F (unaffected
// vertices keep baseline parents, affected ones get their repair parents).
const BfsResult& FaultQueryEngine::query_in(Scratch& s, Vertex source,
                                            const FaultSpec& faults) {
  apply_faults(s, faults);
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (const Baseline* base = baseline_for(source)) {
    switch (classify(s, *base, source)) {
      case Damage::kNone:
        fast_path_hits_.fetch_add(1, std::memory_order_relaxed);
        return base->tree;
      case Damage::kSubtrees: {
        bool from_baseline = false;  // never set: no targets to early-exit on
        if (const BfsResult* r = repair(s, *base, {}, &from_baseline)) {
          repair_bfs_.fetch_add(1, std::memory_order_relaxed);
          return *r;
        }
        break;  // affected region above threshold: full BFS
      }
      case Damage::kSourceBlocked:
        break;  // everything unreachable; let the full BFS report it
    }
  }
  full_bfs_.fetch_add(1, std::memory_order_relaxed);
  return s.bfs.run(source, &s.mask);
}

std::uint32_t FaultQueryEngine::distance_in(Scratch& s, Vertex source,
                                            Vertex target,
                                            const FaultSpec& faults) {
  const Vertex targets[1] = {target};
  return hops_in(s, source, faults, targets)[target];
}

std::optional<Path> FaultQueryEngine::shortest_path_in(Scratch& s,
                                                       Vertex source,
                                                       Vertex target,
                                                       const FaultSpec& faults) {
  apply_faults(s, faults);
  queries_.fetch_add(1, std::memory_order_relaxed);
  const Vertex targets[1] = {target};
  const BfsResult* r = nullptr;
  if (const Baseline* base = baseline_for(source)) {
    switch (classify(s, *base, source)) {
      case Damage::kNone:
        // Identical to the masked BFS tree (see query_in), so the extracted
        // path is the exact path the full run_until would have produced.
        fast_path_hits_.fetch_add(1, std::memory_order_relaxed);
        r = &base->tree;
        break;
      case Damage::kSubtrees: {
        // An unaffected target keeps its whole baseline root path (ancestors
        // of unaffected vertices are unaffected); an affected one walks its
        // repair parents into the unaffected boundary and baseline from
        // there. Either way the walk below never crosses a faulted element.
        bool from_baseline = false;
        r = repair(s, *base, targets, &from_baseline);
        if (r != nullptr) {
          (from_baseline ? fast_path_hits_ : repair_bfs_)
              .fetch_add(1, std::memory_order_relaxed);
        }
        break;  // nullptr: affected region above threshold, full BFS
      }
      case Damage::kSourceBlocked:
        break;  // everything unreachable; let the full BFS report it
    }
  }
  if (r == nullptr) {
    full_bfs_.fetch_add(1, std::memory_order_relaxed);
    r = &s.bfs.run_until(source, targets, &s.mask);
  }
  if (r->hops[target] == kInfHops) return std::nullopt;
  Path p;
  for (Vertex cur = target; cur != kInvalidVertex; cur = r->parent[cur]) {
    p.push_back(cur);
  }
  std::reverse(p.begin(), p.end());
  return p;
}

const BfsResult& FaultQueryEngine::query(Vertex source,
                                         const FaultSpec& faults) {
  return query_in(scratch(0), source, faults);
}

std::uint32_t FaultQueryEngine::distance(Vertex source, Vertex target,
                                         const FaultSpec& faults) {
  return distance_in(scratch(0), source, target, faults);
}

std::optional<Path> FaultQueryEngine::shortest_path(Vertex source,
                                                    Vertex target,
                                                    const FaultSpec& faults) {
  return shortest_path_in(scratch(0), source, target, faults);
}

const std::vector<std::uint32_t>& FaultQueryEngine::all_distances(
    Vertex source, const FaultSpec& faults) {
  return hops_in(scratch(0), source, faults, {});
}

const BfsResult& FaultQueryEngine::query(ScratchLease& lease, Vertex source,
                                         const FaultSpec& faults) {
  return query_in(*lease.scratch_, source, faults);
}

std::uint32_t FaultQueryEngine::distance(ScratchLease& lease, Vertex source,
                                         Vertex target,
                                         const FaultSpec& faults) {
  return distance_in(*lease.scratch_, source, target, faults);
}

std::optional<Path> FaultQueryEngine::shortest_path(ScratchLease& lease,
                                                    Vertex source,
                                                    Vertex target,
                                                    const FaultSpec& faults) {
  return shortest_path_in(*lease.scratch_, source, target, faults);
}

const std::vector<std::uint32_t>& FaultQueryEngine::all_distances(
    ScratchLease& lease, Vertex source, const FaultSpec& faults) {
  return hops_in(*lease.scratch_, source, faults, {});
}

std::vector<std::uint32_t> FaultQueryEngine::batch(
    Vertex source, std::span<const FaultSpec> fault_sets,
    std::span<const Vertex> targets, unsigned threads) {
  const std::size_t rows = fault_sets.size();
  const std::size_t cols = targets.size();
  std::vector<std::uint32_t> out(rows * cols, kInfHops);
  if (rows == 0 || cols == 0) return out;

  // Clamp to the row count and the machine: extra workers would only allocate
  // idle (mask, BFS) scratch slots they never use.
  const unsigned workers = clamp_workers(threads, rows);

  auto run_rows = [&](std::size_t begin, std::size_t end) {
    // Leased scratch, not a fixed slot: batch may run concurrently with
    // leased single queries on the same engine (the service's workers).
    ScratchLease lease = acquire_scratch();
    Scratch& s = *lease.scratch_;
    for (std::size_t i = begin; i < end; ++i) {
      // One delta-classified query per row: fault sets that miss the baseline
      // tree (or whose damage misses every target) read straight from the
      // baseline; damaged rows run the bounded repair; the early-exit full
      // BFS remains the fallback.
      const std::vector<std::uint32_t>& hops =
          hops_in(s, source, fault_sets[i], targets);
      for (std::size_t j = 0; j < cols; ++j) {
        out[i * cols + j] = hops[targets[j]];
      }
    }
  };

  if (workers == 1) {
    run_rows(0, rows);
  } else {
    std::vector<std::thread> crew;
    crew.reserve(workers);
    const std::size_t chunk = (rows + workers - 1) / workers;
    for (unsigned w = 0; w < workers; ++w) {
      const std::size_t begin = std::min<std::size_t>(w * chunk, rows);
      const std::size_t end = std::min<std::size_t>(begin + chunk, rows);
      crew.emplace_back(run_rows, begin, end);
    }
    for (std::thread& t : crew) t.join();
  }
  // hops_in counted each row in queries_ and in the path counters.
  return out;
}

}  // namespace ftbfs
