#include "engine/query_engine.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <utility>

namespace ftbfs {

CanonicalFaultSet FaultSpec::canonicalize() const {
  CanonicalFaultSet canon;
  canon.assign(*this);
  return canon;
}

void CanonicalFaultSet::assign(const FaultSpec& faults) {
  edges_.assign(faults.edges.begin(), faults.edges.end());
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  vertices_.assign(faults.vertices.begin(), faults.vertices.end());
  std::sort(vertices_.begin(), vertices_.end());
  vertices_.erase(std::unique(vertices_.begin(), vertices_.end()),
                  vertices_.end());
}

FaultQueryEngine::FaultQueryEngine(const Graph& g,
                                   std::span<const EdgeId> h_edges)
    : g_(&g),
      h_owned_(std::make_unique<Graph>(subgraph_from_edges(g, h_edges))),
      h_(h_owned_.get()),
      g_to_h_(g.num_edges(), kInvalidEdge),
      pool_(std::make_unique<ScratchPool>()) {
  // subgraph_from_edges assigns H edge ids in the order of h_edges.
  for (EdgeId i = 0; i < h_edges.size(); ++i) {
    g_to_h_[h_edges[i]] = i;
  }
  pool_->slots.push_back(std::make_unique<Scratch>(*h_));
}

FaultQueryEngine::FaultQueryEngine(const Graph& g)
    : g_(&g), h_(&g), pool_(std::make_unique<ScratchPool>()) {
  pool_->slots.push_back(std::make_unique<Scratch>(*h_));
}

// h_ points at h_owned_ (address-stable across the unique_ptr move) or at the
// caller-owned g_; either way the raw pointers transfer verbatim. Only the
// atomic query counter needs hand-holding.
FaultQueryEngine::FaultQueryEngine(FaultQueryEngine&& o) noexcept
    : g_(o.g_),
      h_owned_(std::move(o.h_owned_)),
      h_(o.h_),
      g_to_h_(std::move(o.g_to_h_)),
      pool_(std::move(o.pool_)),
      queries_(o.queries_.load(std::memory_order_relaxed)) {}

FaultQueryEngine& FaultQueryEngine::operator=(FaultQueryEngine&& o) noexcept {
  g_ = o.g_;
  h_owned_ = std::move(o.h_owned_);
  h_ = o.h_;
  g_to_h_ = std::move(o.g_to_h_);
  pool_ = std::move(o.pool_);
  queries_.store(o.queries_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  return *this;
}

void FaultQueryEngine::apply_faults(Scratch& s, const FaultSpec& faults) const {
  s.canon.assign(faults);
  s.mask.clear();
  for (const EdgeId e : s.canon.edges()) {
    FTBFS_EXPECTS(e < g_->num_edges());
    const EdgeId he = g_to_h_.empty() ? e : g_to_h_[e];
    if (he != kInvalidEdge) s.mask.block_edge(he);
  }
  for (const Vertex v : s.canon.vertices()) {
    FTBFS_EXPECTS(v < g_->num_vertices());
    s.mask.block_vertex(v);  // vertex ids are shared between g and H
  }
}

FaultQueryEngine::Scratch& FaultQueryEngine::scratch(std::size_t slot) {
  const std::lock_guard lock(pool_->mutex);
  while (pool_->slots.size() <= slot) {
    pool_->slots.push_back(std::make_unique<Scratch>(*h_));
  }
  return *pool_->slots[slot];
}

FaultQueryEngine::ScratchLease FaultQueryEngine::acquire_scratch() {
  const std::lock_guard lock(pool_->mutex);
  if (!pool_->free_list.empty()) {
    const std::size_t slot = pool_->free_list.back();
    pool_->free_list.pop_back();
    return ScratchLease(this, pool_->slots[slot].get(), slot);
  }
  pool_->slots.push_back(std::make_unique<Scratch>(*h_));
  return ScratchLease(this, pool_->slots.back().get(), pool_->slots.size() - 1);
}

void FaultQueryEngine::release_scratch(std::size_t slot) {
  const std::lock_guard lock(pool_->mutex);
  pool_->free_list.push_back(slot);
}

const BfsResult& FaultQueryEngine::query_in(Scratch& s, Vertex source,
                                            const FaultSpec& faults) {
  apply_faults(s, faults);
  queries_.fetch_add(1, std::memory_order_relaxed);
  return s.bfs.run(source, &s.mask);
}

std::uint32_t FaultQueryEngine::distance_in(Scratch& s, Vertex source,
                                            Vertex target,
                                            const FaultSpec& faults) {
  apply_faults(s, faults);
  queries_.fetch_add(1, std::memory_order_relaxed);
  const Vertex targets[1] = {target};
  return s.bfs.run_until(source, targets, &s.mask).hops[target];
}

std::optional<Path> FaultQueryEngine::shortest_path_in(Scratch& s,
                                                       Vertex source,
                                                       Vertex target,
                                                       const FaultSpec& faults) {
  apply_faults(s, faults);
  queries_.fetch_add(1, std::memory_order_relaxed);
  const Vertex targets[1] = {target};
  const BfsResult& r = s.bfs.run_until(source, targets, &s.mask);
  if (r.hops[target] == kInfHops) return std::nullopt;
  Path p;
  for (Vertex cur = target; cur != kInvalidVertex; cur = r.parent[cur]) {
    p.push_back(cur);
  }
  std::reverse(p.begin(), p.end());
  return p;
}

const BfsResult& FaultQueryEngine::query(Vertex source,
                                         const FaultSpec& faults) {
  return query_in(scratch(0), source, faults);
}

std::uint32_t FaultQueryEngine::distance(Vertex source, Vertex target,
                                         const FaultSpec& faults) {
  return distance_in(scratch(0), source, target, faults);
}

std::optional<Path> FaultQueryEngine::shortest_path(Vertex source,
                                                    Vertex target,
                                                    const FaultSpec& faults) {
  return shortest_path_in(scratch(0), source, target, faults);
}

const std::vector<std::uint32_t>& FaultQueryEngine::all_distances(
    Vertex source, const FaultSpec& faults) {
  return query(source, faults).hops;
}

const BfsResult& FaultQueryEngine::query(ScratchLease& lease, Vertex source,
                                         const FaultSpec& faults) {
  return query_in(*lease.scratch_, source, faults);
}

std::uint32_t FaultQueryEngine::distance(ScratchLease& lease, Vertex source,
                                         Vertex target,
                                         const FaultSpec& faults) {
  return distance_in(*lease.scratch_, source, target, faults);
}

std::optional<Path> FaultQueryEngine::shortest_path(ScratchLease& lease,
                                                    Vertex source,
                                                    Vertex target,
                                                    const FaultSpec& faults) {
  return shortest_path_in(*lease.scratch_, source, target, faults);
}

const std::vector<std::uint32_t>& FaultQueryEngine::all_distances(
    ScratchLease& lease, Vertex source, const FaultSpec& faults) {
  return query(lease, source, faults).hops;
}

std::vector<std::uint32_t> FaultQueryEngine::batch(
    Vertex source, std::span<const FaultSpec> fault_sets,
    std::span<const Vertex> targets, unsigned threads) {
  const std::size_t rows = fault_sets.size();
  const std::size_t cols = targets.size();
  std::vector<std::uint32_t> out(rows * cols, kInfHops);
  if (rows == 0 || cols == 0) return out;

  // Clamp to the row count and the machine: extra workers would only allocate
  // idle (mask, BFS) scratch slots they never use.
  unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;  // unknown — be conservative
  const unsigned workers = std::max(
      1u, std::min({threads, static_cast<unsigned>(std::min<std::size_t>(
                                 rows, std::numeric_limits<unsigned>::max())),
                    hardware}));

  auto run_rows = [&](std::size_t begin, std::size_t end) {
    // Leased scratch, not a fixed slot: batch may run concurrently with
    // leased single queries on the same engine (the service's workers).
    ScratchLease lease = acquire_scratch();
    Scratch& s = *lease.scratch_;
    for (std::size_t i = begin; i < end; ++i) {
      apply_faults(s, fault_sets[i]);
      const BfsResult& r = s.bfs.run_until(source, targets, &s.mask);
      for (std::size_t j = 0; j < cols; ++j) {
        out[i * cols + j] = r.hops[targets[j]];
      }
    }
  };

  if (workers == 1) {
    run_rows(0, rows);
  } else {
    std::vector<std::thread> crew;
    crew.reserve(workers);
    const std::size_t chunk = (rows + workers - 1) / workers;
    for (unsigned w = 0; w < workers; ++w) {
      const std::size_t begin = std::min<std::size_t>(w * chunk, rows);
      const std::size_t end = std::min<std::size_t>(begin + chunk, rows);
      crew.emplace_back(run_rows, begin, end);
    }
    for (std::thread& t : crew) t.join();
  }
  queries_.fetch_add(rows, std::memory_order_relaxed);
  return out;
}

}  // namespace ftbfs
