// FaultQueryEngine — the one batched query core every consumer routes through.
//
// The library's query-side consumers (the FtBfsOracle wrapper, the verifiers,
// the failure simulator, the CLI `query` subcommand, the query benches) all
// used to carry the same three pieces of private plumbing: a g→H edge-id
// translation table, epoch-mask scratch over H, and a masked BFS. This class
// owns all three once. It serves exact distances/paths from a subgraph H ⊆ G
// (an FT-BFS structure, an overlay, or G itself) under a fault set expressed
// in *host-graph* ids — edge faults are translated to H ids (faults absent
// from H cannot affect distances inside H and are dropped), vertex faults
// share ids between G and H.
//
// Batched queries (`batch`) run one early-exit masked BFS per fault set and
// can fan fault sets across threads; each worker draws (mask, BFS) scratch
// from a per-thread pool so no allocation or sharing happens on the hot path.
// This is the serving substrate the ROADMAP's sensitivity-oracle/service line
// builds on: a fault set is a "scenario", a batch is a scenario sweep.
//
// Concurrent callers (OracleService workers, threaded `ftbfs serve`) lease
// scratch explicitly: acquire_scratch() checks a slot out of the pool under a
// mutex, the lease-taking query overloads run on that slot with no shared
// state, and the lease returns the slot on destruction. The lease-free
// single-query API keeps its historical "serial scratch, results borrowed
// until the next query" contract on the reserved slot 0 and must not be
// called from two threads at once.
//
// Fault-delta query path (docs/perf.md): a small fault set perturbs only a
// small region of the BFS tree — that is the paper's whole point — so the
// engine precomputes, once per source, the fault-free *baseline* BFS over H
// (distances, parent tree, Euler-tour subtree intervals). Per query the
// canonical fault set is classified against that tree:
//   * no fault touches a baseline tree edge (or a reached faulted vertex) →
//     the masked BFS would retrace the baseline exactly; answer straight from
//     the baseline arrays, parents included (fast_path_hits);
//   * faults hit tree edges → only the descendants of the cut points can
//     change; mark those subtree intervals in an epoch-stamped affected
//     bitmap and run a *repair BFS* seeded from the unaffected boundary,
//     bounded to the affected region (repair_bfs);
//   * the affected region exceeds delta_options().max_affected_fraction →
//     the bounded repair would approach a full sweep anyway; fall back to the
//     plain masked BFS (full_bfs).
// Hops from every path are bit-identical to the full masked BFS. The repair
// BFS also reconstructs parents and parent edges inside the affected region
// (unaffected vertices keep their baseline parents), so the parent-exposing
// APIs (query, shortest_path) route through fast-path-or-repair-or-full too.
// Repair parents form a valid shortest-path tree of H ∖ F with the same hop
// counts as the full BFS; the specific parent among equal-hop candidates may
// differ from the full run's (BFS parentage depends on queue order, which a
// bounded repair cannot reproduce), with the baseline discovery rank as the
// tie-break so choices track the full BFS in the common case.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/ftbfs_common.h"
#include "graph/graph.h"
#include "graph/mask.h"
#include "spath/bfs.h"
#include "spath/path.h"
#include "spath/tree_index.h"

namespace ftbfs {

class CanonicalFaultSet;

// A fault set for one query: edge ids of the host graph, plus vertex ids.
// Either span may be empty; both kinds may be mixed in one query. This is a
// non-owning view — the referenced id arrays must outlive the query (and, for
// `batch`, the whole batch call).
struct FaultSpec {
  std::span<const EdgeId> edges{};
  std::span<const Vertex> vertices{};

  // Raw id count, duplicates included. Budget checks must not use this —
  // {e, e} is one fault, not two; use canonicalize().size() instead.
  [[nodiscard]] std::size_t size() const {
    return edges.size() + vertices.size();
  }

  // Owning canonical form: ids sorted and deduplicated per kind.
  [[nodiscard]] CanonicalFaultSet canonicalize() const;
};

// The canonical (sorted, deduplicated) owning form of a FaultSpec. Two fault
// sets describe the same scenario iff their canonical forms are equal, which
// makes this the unit of budget accounting and of scenario-cache keying.
class CanonicalFaultSet {
 public:
  CanonicalFaultSet() = default;

  // Refills from `faults`; buffers are reused, so a CanonicalFaultSet held in
  // per-query scratch performs no steady-state allocation.
  void assign(const FaultSpec& faults);

  [[nodiscard]] std::span<const EdgeId> edges() const { return edges_; }
  [[nodiscard]] std::span<const Vertex> vertices() const { return vertices_; }

  // View of the canonical ids (valid until the next assign()).
  [[nodiscard]] FaultSpec spec() const { return FaultSpec{edges_, vertices_}; }

  // Number of *distinct* faulted components — the count budget checks use.
  [[nodiscard]] std::size_t size() const {
    return edges_.size() + vertices_.size();
  }

 private:
  std::vector<EdgeId> edges_;
  std::vector<Vertex> vertices_;
};

// Convenience factories so call sites stay terse.
[[nodiscard]] inline FaultSpec edge_faults(std::span<const EdgeId> edges) {
  return FaultSpec{edges, {}};
}
[[nodiscard]] inline FaultSpec vertex_faults(std::span<const Vertex> vertices) {
  return FaultSpec{{}, vertices};
}

class FaultQueryEngine {
 public:
  // Serves queries from the subgraph H = (V(g), h_edges). Fault/query ids in
  // the public API always refer to g; the engine owns the translation.
  FaultQueryEngine(const Graph& g, std::span<const EdgeId> h_edges);

  // Identity engine: serves queries from g itself (ground truth, baselines).
  // No materialization or translation; masks apply host ids directly.
  explicit FaultQueryEngine(const Graph& g);

  // Convenience: engine over a built FT-BFS structure.
  FaultQueryEngine(const Graph& g, const FtStructure& h)
      : FaultQueryEngine(g, std::span<const EdgeId>(h.edges)) {}

  FaultQueryEngine(FaultQueryEngine&&) noexcept;
  FaultQueryEngine& operator=(FaultQueryEngine&&) noexcept;

  // --- single-query API (serial scratch; results borrowed until next query) -

  // Full BFS result from `source` in H ∖ faults. The primitive every other
  // query is sugar over; exposes parents for path reconstruction.
  const BfsResult& query(Vertex source, const FaultSpec& faults);

  // Exact hop distance source→target in H ∖ faults (kInfHops if
  // disconnected). Runs an early-exit BFS: only the ball around the target
  // is explored.
  [[nodiscard]] std::uint32_t distance(Vertex source, Vertex target,
                                       const FaultSpec& faults);

  // Shortest source→target path in H ∖ faults (vertex ids of g), or nullopt.
  [[nodiscard]] std::optional<Path> shortest_path(Vertex source, Vertex target,
                                                  const FaultSpec& faults);

  // Distances to every vertex under one fault set (one full BFS).
  [[nodiscard]] const std::vector<std::uint32_t>& all_distances(
      Vertex source, const FaultSpec& faults);

  // --- concurrent API (leased scratch; thread-safe) -------------------------

 private:
  struct Scratch;  // declared below; leases carry a stable pointer to one

 public:
  // RAII checkout of one (mask, BFS, canon) scratch slot. Results returned by
  // the lease-taking overloads below are borrowed from the slot and stay
  // valid while the lease lives; concurrent leases never share state. The
  // lease resolves its slot to a stable Scratch* under the pool mutex at
  // acquire time, so later pool growth cannot move it.
  class ScratchLease {
   public:
    ScratchLease(ScratchLease&& o) noexcept
        : owner_(o.owner_), scratch_(o.scratch_), slot_(o.slot_) {
      o.owner_ = nullptr;
    }
    ScratchLease& operator=(ScratchLease&&) = delete;
    ScratchLease(const ScratchLease&) = delete;
    ~ScratchLease() {
      if (owner_ != nullptr) owner_->release_scratch(slot_);
    }

   private:
    friend class FaultQueryEngine;
    ScratchLease(FaultQueryEngine* owner, Scratch* scratch, std::size_t slot)
        : owner_(owner), scratch_(scratch), slot_(slot) {}
    FaultQueryEngine* owner_;
    Scratch* scratch_;
    std::size_t slot_;
  };

  // Checks a slot out of the pool (growing it on first contention beyond its
  // high-water mark); O(1) amortized, one mutex acquisition.
  [[nodiscard]] ScratchLease acquire_scratch();

  // Thread-safe counterparts of the single-query API: identical answers,
  // scratch taken from the lease instead of the shared serial slot.
  const BfsResult& query(ScratchLease& lease, Vertex source,
                         const FaultSpec& faults);
  [[nodiscard]] std::uint32_t distance(ScratchLease& lease, Vertex source,
                                       Vertex target, const FaultSpec& faults);
  [[nodiscard]] std::optional<Path> shortest_path(ScratchLease& lease,
                                                  Vertex source, Vertex target,
                                                  const FaultSpec& faults);
  [[nodiscard]] const std::vector<std::uint32_t>& all_distances(
      ScratchLease& lease, Vertex source, const FaultSpec& faults);

  // --- batched API ----------------------------------------------------------

  // One distance matrix: result[i * targets.size() + j] is the distance
  // source→targets[j] in H ∖ fault_sets[i]. Each fault set costs one
  // early-exit BFS (stops once all targets are settled). With threads > 1
  // fault sets are fanned across that many workers, each with its own scratch
  // from the pool; results are deterministic regardless of thread count.
  [[nodiscard]] std::vector<std::uint32_t> batch(
      Vertex source, std::span<const FaultSpec> fault_sets,
      std::span<const Vertex> targets, unsigned threads = 1);

  // --- delta-path configuration & counters ----------------------------------

  struct DeltaOptions {
    // Master switch; off = every query runs the pre-delta full masked BFS
    // (benchmark baseline, property-test oracle).
    bool enabled = true;
    // Repair-vs-full fallback: once the affected region exceeds this fraction
    // of H's vertices, marking + bounded repair stops paying for itself and
    // the query falls back to the plain masked BFS. bench_micro's
    // BM_RepairVsFullBySubtree sweep documents where the crossover sits.
    double max_affected_fraction = 0.5;
  };

  // How queries were answered (relaxed counters, safe to read under load):
  // fast_path_hits = served from the baseline arrays with no BFS at all,
  // repair_bfs = bounded repair BFS over the affected region, full_bfs =
  // full masked BFS (delta disabled, threshold fallback, faulted source, or
  // a parent-exposing API with tree damage).
  struct PathStats {
    std::uint64_t fast_path_hits = 0;
    std::uint64_t repair_bfs = 0;
    std::uint64_t full_bfs = 0;
  };

  // Not thread-safe: configure before the engine starts serving queries.
  void set_delta_options(DeltaOptions options) { delta_ = options; }
  [[nodiscard]] DeltaOptions delta_options() const { return delta_; }

  // Stable pointer to the fault-free baseline hop vector for `source`,
  // building the baseline on first use; nullptr when the delta path is
  // disabled or the per-engine baseline cap is reached. Baselines are
  // immutable and never evicted, so the pointer stays valid for the engine's
  // lifetime — the service's delta-compressed scenario cache stores lines as
  // diffs against exactly this vector. Thread-safe.
  [[nodiscard]] const std::vector<std::uint32_t>* baseline_hops(Vertex source);
  [[nodiscard]] PathStats path_stats() const {
    return PathStats{fast_path_hits_.load(std::memory_order_relaxed),
                     repair_bfs_.load(std::memory_order_relaxed),
                     full_bfs_.load(std::memory_order_relaxed)};
  }

  // --- introspection --------------------------------------------------------

  [[nodiscard]] const Graph& host() const { return *g_; }
  [[nodiscard]] const Graph& structure_graph() const { return *h_; }
  [[nodiscard]] std::uint64_t structure_edges() const {
    return h_->num_edges();
  }
  [[nodiscard]] bool is_identity() const { return h_ == g_; }
  [[nodiscard]] std::uint64_t queries_answered() const {
    return queries_.load(std::memory_order_relaxed);
  }

 private:
  // Snapshot persistence (src/persist/service_io.cpp) exports built baselines
  // and installs restored ones without re-running their BFS.
  friend struct PersistAccess;

  // Tier-0 precompute for one source: the fault-free BFS over H plus the
  // subtree indexing the per-query classification runs on. Immutable once
  // published; built lazily on the first query from that source.
  struct Baseline {
    BfsResult tree;                  // hops/parent/parent_edge over H
    TreeIndex index;                 // Euler intervals + preorder slices
    std::vector<Vertex> tree_child;  // H edge id → deeper endpoint of the
                                     // tree edge; kInvalidVertex = non-tree
    // Baseline BFS discovery rank (queue position; ~0u = unreached). The
    // repair BFS breaks parent ties toward the lowest rank — the neighbor
    // the full masked BFS would usually scan first.
    std::vector<std::uint32_t> rank;
    Baseline(const Graph& h, BfsResult t, std::span<const Vertex> visit_order,
             Vertex source);
  };

  struct Scratch {
    GraphMask mask;
    Bfs bfs;
    CanonicalFaultSet canon;  // reused per-query canonicalization buffer
    // --- delta-path scratch (all buffers persist across queries) -----------
    std::vector<Vertex> impacts;          // cut points of this fault set
    // 64-bit like Bfs's target stamps: a serving process can plausibly push
    // a 32-bit per-scratch clock to wraparound, and a stale-epoch collision
    // here would silently mis-classify vertices as affected.
    std::vector<std::uint64_t> affected_epoch;  // epoch-stamped membership
    std::uint64_t affected_clock = 0;
    std::vector<Vertex> affected;       // current affected vertex list
    std::vector<Vertex> prev_affected;  // repair entries to restore
    BfsResult repair;  // output of the repair BFS: hops + parents + edges
    const Baseline* repair_synced = nullptr;  // baseline `repair` mirrors
    std::vector<std::vector<Vertex>> buckets;  // Dial queue, keyed by hops
    explicit Scratch(const Graph& h)
        : mask(h), bfs(h), affected_epoch(h.num_vertices(), 0) {
      impacts.reserve(8);
      affected.reserve(h.num_vertices());
      prev_affected.reserve(h.num_vertices());
    }
  };

  // Slot storage plus the free list leases draw from. Heap-allocated as one
  // block so the engine stays movable despite the mutex.
  struct ScratchPool {
    std::mutex mutex;
    std::vector<std::unique_ptr<Scratch>> slots;  // slot 0 = serial scratch
    std::vector<std::size_t> free_list;           // never contains slot 0
  };

  // Baselines keyed by source, append-only, behind a shared mutex so the
  // per-query lookup is one shared lock. Heap-allocated as one block (like
  // the scratch pool) so the engine stays movable despite the mutex. Capped:
  // a caller sweeping hundreds of sources (verifiers over big graphs) should
  // not turn the engine into an all-pairs table, so sources beyond the cap
  // simply take the full-BFS path.
  struct BaselineStore {
    std::shared_mutex mutex;
    // Sorted by source; small (kMaxBaselines), so binary search beats a map.
    std::vector<std::pair<Vertex, std::unique_ptr<Baseline>>> entries;
  };
  static constexpr std::size_t kMaxBaselines = 64;

  // Canonicalizes `faults` into `s.canon`, then resets `s.mask` and applies
  // the distinct ids (host ids) to it.
  void apply_faults(Scratch& s, const FaultSpec& faults) const;

  [[nodiscard]] Scratch& scratch(std::size_t slot);
  void release_scratch(std::size_t slot);

  // Tier 0: the baseline for `source`, built on first use; nullptr when the
  // delta path is disabled or the baseline cap is reached.
  [[nodiscard]] const Baseline* baseline_for(Vertex source);

  // Classification of one canonical fault set against a baseline tree.
  enum class Damage {
    kNone,           // no tree edge cut, no reached vertex faulted
    kSubtrees,       // cut points collected in s.impacts
    kSourceBlocked,  // the source itself is faulted
  };
  [[nodiscard]] Damage classify(Scratch& s, const Baseline& base,
                                Vertex source) const;

  // Tier 1: the repaired BFS tree (hops + parents + parent edges) under the
  // fault set already applied to s.mask, or nullptr when the caller must run
  // the full masked BFS (threshold exceeded). When `targets` is non-empty and
  // none of them lands in the affected region, the repair BFS is skipped —
  // their baseline distances *and root paths* are provably unchanged, so the
  // untouched baseline tree is returned. On return *from_baseline says
  // whether that happened (no repair BFS ran).
  [[nodiscard]] const BfsResult* repair(Scratch& s, const Baseline& base,
                                        std::span<const Vertex> targets,
                                        bool* from_baseline);

  // Hops-only core all distance-reading queries route through: picks the
  // baseline / repair / full path and bumps the matching counter.
  [[nodiscard]] const std::vector<std::uint32_t>& hops_in(
      Scratch& s, Vertex source, const FaultSpec& faults,
      std::span<const Vertex> early_exit_targets);

  const BfsResult& query_in(Scratch& s, Vertex source, const FaultSpec& faults);
  std::uint32_t distance_in(Scratch& s, Vertex source, Vertex target,
                            const FaultSpec& faults);
  std::optional<Path> shortest_path_in(Scratch& s, Vertex source, Vertex target,
                                       const FaultSpec& faults);

  const Graph* g_;
  std::unique_ptr<Graph> h_owned_;  // null for the identity engine
  const Graph* h_;                  // == g_ or h_owned_.get(); address-stable
  std::vector<EdgeId> g_to_h_;      // empty for the identity engine
  std::unique_ptr<ScratchPool> pool_;
  std::unique_ptr<BaselineStore> baselines_;
  DeltaOptions delta_{};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> fast_path_hits_{0};
  std::atomic<std::uint64_t> repair_bfs_{0};
  std::atomic<std::uint64_t> full_bfs_{0};
};

}  // namespace ftbfs
