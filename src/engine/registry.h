// StructureBuilder registry — one uniform construction interface.
//
// Every FT structure construction in the library (the paper's Cons2FTBFS, the
// [10] single-failure baseline, the Observation-1.6 chain construction, the
// multi-source unions, the Theorem-1.3 greedy set cover, the swap-edge
// approximate structure) is registered here under a stable name with declared
// capabilities (fault-budget range, multi-source, vertex faults, exactness).
// Consumers — the CLI, the benches, the property tests — iterate or look up by
// name instead of hard-coding per-algorithm dispatch chains, so a new
// construction lands everywhere by adding one registration.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/ftbfs_common.h"
#include "graph/graph.h"

namespace ftbfs {

inline constexpr unsigned kUnboundedFaults =
    std::numeric_limits<unsigned>::max();

// Execution knobs that never change the built structure.
struct BuildOptions {
  // Worker threads for parallel construction: 0 = auto (clamped hardware
  // concurrency), 1 = sequential. Builders with a parallel path (declared by
  // BuilderTraits::parallel_build) produce byte-identical structures and
  // stats at any value; the rest run sequentially and the registry reports a
  // `parallel_fallback_sequential` counter when jobs would exceed 1.
  unsigned jobs = 1;
};

// One construction request. `graph` must outlive the call.
struct BuildRequest {
  const Graph* graph = nullptr;
  std::vector<Vertex> sources;  // at least one
  unsigned fault_budget = 0;
  FaultModel fault_model = FaultModel::kEdge;
  std::uint64_t weight_seed = 1;  // tie-breaking assignment W
  // Enables optional instrumentation (e.g. Cons2FTBFS path classification);
  // costs time, never changes the structure.
  bool collect_stats = false;
  BuildOptions options;
};

// One construction result: the structure plus uniform bookkeeping.
struct BuildResult {
  FtStructure structure;
  std::string algorithm;       // registry name that produced it
  double build_seconds = 0.0;  // wall clock, filled by the registry
  // Algorithm-specific counters (chains enumerated, BFS runs, ...), uniform
  // enough for the CLI's JSON stats output and the bench tables.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

// Declared capabilities of a registered builder; `build` validates requests
// against these before dispatching.
struct BuilderTraits {
  std::string name;
  std::string summary;                // one line for --help / error listings
  std::vector<std::string> aliases;   // legacy CLI spellings
  unsigned min_fault_budget = 0;
  unsigned max_fault_budget = kUnboundedFaults;
  bool multi_source = false;   // accepts |sources| > 1
  bool vertex_faults = false;  // accepts FaultModel::kVertex
  bool exact = true;  // guarantees dist(s,v,H∖F) = dist(s,v,G∖F) in budget
  // Construction cost is superpolynomial in practice (e.g. Θ(σ·m^f) fault-set
  // enumeration); benches and sweeps should use reduced instance sizes.
  bool heavy_construction = false;
  // Honors BuildOptions::jobs with byte-identical output at any job count
  // (the speculate-and-commit schedule of core/build_parallel.h). Builders
  // without it ignore jobs and build sequentially.
  bool parallel_build = false;
};

class BuilderRegistry {
 public:
  using BuildFn = std::function<BuildResult(const BuildRequest&)>;

  // The process-wide registry, pre-seeded with every library construction.
  [[nodiscard]] static BuilderRegistry& instance();

  void add(BuilderTraits traits, BuildFn fn);

  // Lookup by name or alias; nullptr if unknown.
  [[nodiscard]] const BuilderTraits* find(std::string_view name) const;

  // Registered canonical names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const std::vector<BuilderTraits>& traits() const {
    return traits_;
  }

  // Empty string if `name` exists and can serve `req`; otherwise a
  // human-readable reason.
  [[nodiscard]] std::string unsupported_reason(std::string_view name,
                                               const BuildRequest& req) const;

  // Validates and dispatches. Precondition: unsupported_reason(name, req) is
  // empty (contract violation otherwise).
  [[nodiscard]] BuildResult build(std::string_view name,
                                  const BuildRequest& req) const;

  // Default builder name for a request shape (the construction the paper
  // line recommends there). Single source, edge faults: kfail_ftbfs for 0,
  // single_ftbfs for 1, cons2ftbfs for 2, kfail_ftbfs beyond. Vertex faults:
  // kfail_ftbfs (the only vertex-capable builder). Multiple sources: the
  // ftmbfs union where it applies (f in 1..2, edge faults), else the greedy
  // approx_ftmbfs. No registered builder serves multi-source *vertex* faults;
  // for that shape the returned name's unsupported_reason explains the gap
  // (this function never fails).
  [[nodiscard]] static std::string default_builder(
      unsigned fault_budget, FaultModel model = FaultModel::kEdge,
      std::size_t num_sources = 1);

  BuilderRegistry() = default;

 private:
  std::vector<BuilderTraits> traits_;
  std::vector<BuildFn> fns_;
};

}  // namespace ftbfs
