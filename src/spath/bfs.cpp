#include "spath/bfs.h"

#include <algorithm>

namespace ftbfs {

const BfsResult& Bfs::run(Vertex source, const GraphMask* mask) {
  return run_until(source, {}, mask);
}

const BfsResult& Bfs::run_until(Vertex source, std::span<const Vertex> targets,
                                const GraphMask* mask) {
  const Graph& g = *graph_;
  FTBFS_EXPECTS(source < g.num_vertices());
  std::fill(result_.hops.begin(), result_.hops.end(), kInfHops);
  std::fill(result_.parent.begin(), result_.parent.end(), kInvalidVertex);
  std::fill(result_.parent_edge.begin(), result_.parent_edge.end(),
            kInvalidEdge);
  queue_.clear();

  // Stamp the targets; `remaining` counts distinct unsettled ones. The search
  // stops as soon as it hits zero.
  std::size_t remaining = 0;
  if (!targets.empty()) {
    if (target_epoch_.empty()) target_epoch_.resize(g.num_vertices(), 0);
    ++epoch_;
    for (const Vertex t : targets) {
      FTBFS_EXPECTS(t < g.num_vertices());
      if (target_epoch_[t] != epoch_) {
        target_epoch_[t] = epoch_;
        ++remaining;
      }
    }
  }
  const bool early_exit = !targets.empty();

  if (mask != nullptr && mask->vertex_blocked(source)) return result_;
  result_.hops[source] = 0;
  queue_.push_back(source);
  if (early_exit && target_epoch_[source] == epoch_ && --remaining == 0) {
    return result_;
  }
  // The restriction state is fixed for the whole run: load the predicate once
  // instead of re-deriving it from the mask on every arc. Every vertex popped
  // from the queue is unblocked (its discovery checked it), so the common
  // unrestricted case needs only the edge-block and head-vertex tests.
  const bool restricted = mask != nullptr && mask->has_restriction();
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const Vertex v = queue_[head];
    const std::uint32_t dv = result_.hops[v];
    for (const Arc& arc : g.neighbors(v)) {
      if (result_.hops[arc.to] != kInfHops) continue;
      if (mask != nullptr &&
          (restricted ? !mask->edge_usable(arc.id, v, arc.to)
                      : mask->arc_blocked_unrestricted(arc.id, arc.to))) {
        continue;
      }
      result_.hops[arc.to] = dv + 1;
      result_.parent[arc.to] = v;
      result_.parent_edge[arc.to] = arc.id;
      if (early_exit && target_epoch_[arc.to] == epoch_ && --remaining == 0) {
        return result_;
      }
      queue_.push_back(arc.to);
    }
  }
  return result_;
}

std::uint32_t bfs_distance(const Graph& g, Vertex s, Vertex t,
                           const GraphMask* mask) {
  Bfs bfs(g);
  return bfs.run(s, mask).hops[t];
}

std::uint32_t bfs_eccentricity(const Graph& g, Vertex source) {
  Bfs bfs(g);
  const BfsResult& r = bfs.run(source);
  std::uint32_t ecc = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (r.hops[v] == kInfHops) return kInfHops;
    ecc = std::max(ecc, r.hops[v]);
  }
  return ecc;
}

}  // namespace ftbfs
