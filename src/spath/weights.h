// The weight assignment W of the paper (§2, footnote 3).
//
// The analysis of Cons2FTBFS assumes shortest paths are *unique* and
// tie-broken consistently: W(e) = 1 + ε·r_e with tiny fractional perturbations
// r_e. We realize this exactly (no floating point) as lexicographic keys
// (hops, perturbation-sum): hop counts dominate, and among equal-hop paths the
// one with smaller perturbation sum wins. Perturbations are 40-bit values, so
// sums over paths of < 2^23 edges cannot overflow or cross a hop boundary —
// i.e. W never changes which paths are shortest, only which shortest path is
// chosen, exactly as the paper requires ("the fractional weights of W only
// break the unweighted shortest-path ties in a consistent manner").
//
// Uniqueness holds with high probability by the isolation lemma; the test
// suite asserts it on every instance it touches. Consistency (subpaths of the
// unique minimum are unique minima) holds unconditionally for sums.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

#include "graph/graph.h"
#include "util/rng.h"

namespace ftbfs {

// Lexicographic distance key: hops first, perturbation sum second.
struct DistKey {
  std::uint32_t hops = 0;
  std::uint64_t pert = 0;

  friend auto operator<=>(const DistKey&, const DistKey&) = default;
};

inline constexpr DistKey kUnreachable{
    std::numeric_limits<std::uint32_t>::max(),
    std::numeric_limits<std::uint64_t>::max()};

class WeightAssignment {
 public:
  WeightAssignment(const Graph& g, std::uint64_t seed);

  // Perturbation of edge e, in [1, 2^40].
  [[nodiscard]] std::uint64_t perturbation(EdgeId e) const {
    FTBFS_EXPECTS(e < pert_.size());
    return pert_[e];
  }

  // dist-key obtained by extending `base` along edge e.
  [[nodiscard]] DistKey extend(DistKey base, EdgeId e) const {
    return DistKey{base.hops + 1, base.pert + perturbation(e)};
  }

  // Total W-weight (perturbation part) of a sequence of edges.
  [[nodiscard]] std::uint64_t path_pert(std::span<const EdgeId> edges) const {
    std::uint64_t total = 0;
    for (const EdgeId e : edges) total += perturbation(e);
    return total;
  }

 private:
  std::vector<std::uint64_t> pert_;
};

}  // namespace ftbfs
