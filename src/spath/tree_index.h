// Rooted-tree indexing over a shortest-path tree: depths, parent edges, and
// O(1) ancestor tests via Euler-tour intervals. Substrate for the constant-
// time sensitivity oracle (an edge e = (x, parent-of-x) lies on π(s,v) iff x
// is an ancestor of v) and for the engine's fault-delta query path, which
// needs the subtree below a faulted tree edge as a contiguous preorder slice.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "spath/bfs.h"
#include "spath/dijkstra.h"

namespace ftbfs {

class TreeIndex {
 public:
  // Builds from an SSSP result (parent pointers rooted at `root`).
  // Unreached vertices get depth kUnreachedDepth and are ancestors of nothing.
  TreeIndex(const Graph& g, const SpResult& tree, Vertex root);

  // Same, from a plain BFS tree (the engine's fault-free baseline over H).
  TreeIndex(const Graph& g, const BfsResult& tree, Vertex root);

  static constexpr std::uint32_t kUnreachedDepth =
      static_cast<std::uint32_t>(-1);

  [[nodiscard]] Vertex root() const { return root_; }

  [[nodiscard]] bool reached(Vertex v) const {
    return depth_[v] != kUnreachedDepth;
  }

  // Hop depth below the root.
  [[nodiscard]] std::uint32_t depth(Vertex v) const { return depth_[v]; }

  [[nodiscard]] Vertex parent(Vertex v) const { return parent_[v]; }

  // The tree edge from v to its parent; kInvalidEdge for the root/unreached.
  [[nodiscard]] EdgeId parent_edge(Vertex v) const { return parent_edge_[v]; }

  // True iff a is an ancestor of b (inclusive: ancestor_of(v, v) is true).
  [[nodiscard]] bool ancestor_of(Vertex a, Vertex b) const {
    if (!reached(a) || !reached(b)) return false;
    return tin_[a] <= tin_[b] && tout_[b] <= tout_[a];
  }

  // True iff the tree edge (child c, parent(c)) lies on the root→v tree path.
  [[nodiscard]] bool edge_on_path_to(Vertex child, Vertex v) const {
    return ancestor_of(child, v);
  }

  // Children of v in the tree.
  [[nodiscard]] const std::vector<Vertex>& children(Vertex v) const {
    return children_[v];
  }

  // Vertices in preorder (root first); unreached vertices excluded.
  [[nodiscard]] const std::vector<Vertex>& preorder() const {
    return preorder_;
  }

  // Position of v in preorder(); kInvalidPreorder for unreached vertices.
  static constexpr std::uint32_t kInvalidPreorder =
      static_cast<std::uint32_t>(-1);
  [[nodiscard]] std::uint32_t preorder_index(Vertex v) const {
    return pre_[v];
  }

  // Number of vertices in v's subtree (itself included); 0 if unreached.
  [[nodiscard]] std::uint32_t subtree_size(Vertex v) const {
    return subtree_size_[v];
  }

  // v's subtree as a contiguous slice of preorder() — the vertices whose
  // root-paths use the tree edge (v, parent(v)). Empty span for unreached v.
  // This is what makes "mark every vertex below a faulted tree edge" linear
  // in the marked set instead of in the tree.
  [[nodiscard]] std::span<const Vertex> subtree_span(Vertex v) const {
    if (!reached(v)) return {};
    return {preorder_.data() + pre_[v], subtree_size_[v]};
  }

 private:
  // Delegation target: sizes every array, adopts nothing. Both public
  // constructors fill the tree via adopt() and finish with build_intervals().
  struct PrivateTag {};
  TreeIndex(const Graph& g, Vertex root, PrivateTag);

  // Registers v with its tree parent (parent links + children lists).
  void adopt(Vertex v, Vertex parent, EdgeId parent_edge);

  // Shared tail of both constructors: children_ / parent_ / parent_edge_ are
  // filled; runs the Euler DFS to assign intervals, depths, and preorder.
  void build_intervals(Vertex root);

  Vertex root_;
  std::vector<std::uint32_t> depth_;
  std::vector<Vertex> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::uint32_t> tin_, tout_;
  std::vector<std::uint32_t> pre_;           // position in preorder_
  std::vector<std::uint32_t> subtree_size_;  // 0 for unreached
  std::vector<std::vector<Vertex>> children_;
  std::vector<Vertex> preorder_;
};

}  // namespace ftbfs
