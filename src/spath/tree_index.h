// Rooted-tree indexing over a shortest-path tree: depths, parent edges, and
// O(1) ancestor tests via Euler-tour intervals. Substrate for the constant-
// time sensitivity oracle (an edge e = (x, parent-of-x) lies on π(s,v) iff x
// is an ancestor of v).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "spath/dijkstra.h"

namespace ftbfs {

class TreeIndex {
 public:
  // Builds from an SSSP result (parent pointers rooted at `root`).
  // Unreached vertices get depth kUnreachedDepth and are ancestors of nothing.
  TreeIndex(const Graph& g, const SpResult& tree, Vertex root);

  static constexpr std::uint32_t kUnreachedDepth =
      static_cast<std::uint32_t>(-1);

  [[nodiscard]] Vertex root() const { return root_; }

  [[nodiscard]] bool reached(Vertex v) const {
    return depth_[v] != kUnreachedDepth;
  }

  // Hop depth below the root.
  [[nodiscard]] std::uint32_t depth(Vertex v) const { return depth_[v]; }

  [[nodiscard]] Vertex parent(Vertex v) const { return parent_[v]; }

  // The tree edge from v to its parent; kInvalidEdge for the root/unreached.
  [[nodiscard]] EdgeId parent_edge(Vertex v) const { return parent_edge_[v]; }

  // True iff a is an ancestor of b (inclusive: ancestor_of(v, v) is true).
  [[nodiscard]] bool ancestor_of(Vertex a, Vertex b) const {
    if (!reached(a) || !reached(b)) return false;
    return tin_[a] <= tin_[b] && tout_[b] <= tout_[a];
  }

  // True iff the tree edge (child c, parent(c)) lies on the root→v tree path.
  [[nodiscard]] bool edge_on_path_to(Vertex child, Vertex v) const {
    return ancestor_of(child, v);
  }

  // Children of v in the tree.
  [[nodiscard]] const std::vector<Vertex>& children(Vertex v) const {
    return children_[v];
  }

  // Vertices in preorder (root first); unreached vertices excluded.
  [[nodiscard]] const std::vector<Vertex>& preorder() const {
    return preorder_;
  }

 private:
  Vertex root_;
  std::vector<std::uint32_t> depth_;
  std::vector<Vertex> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::uint32_t> tin_, tout_;
  std::vector<std::vector<Vertex>> children_;
  std::vector<Vertex> preorder_;
};

}  // namespace ftbfs
