// Replacement-path oracle: P_{s,v,F} = SP(s, v, G∖F, W) for small fault sets.
//
// This is the shared building block of every construction in the paper: the
// generic f-failure structure (Obs. 1.6) calls it directly, Cons2FTBFS calls
// the lower-level query() with hand-built masks (Eqs. 3 and 4), and the
// verifiers/tests use it as ground truth.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/mask.h"
#include "spath/dijkstra.h"
#include "spath/path.h"
#include "spath/weights.h"

namespace ftbfs {

struct RPath {
  Path verts;
  DistKey key;  // W-key of the path
};

class ReplacementOracle {
 public:
  ReplacementOracle(const Graph& g, const WeightAssignment& w)
      : dijkstra_(g, w), mask_(g) {}

  // The W-unique shortest s→t path avoiding the fault edges, or nullopt if t
  // is unreachable in G∖F.
  [[nodiscard]] std::optional<RPath> replacement_path(
      Vertex s, Vertex t, std::span<const EdgeId> faults);

  // Distance-only variant (kUnreachable if disconnected).
  [[nodiscard]] DistKey replacement_distance(Vertex s, Vertex t,
                                             std::span<const EdgeId> faults);

  // Scratch mask for callers composing richer restrictions. clear() before
  // use; then call query()/query_distance() which run under this mask.
  [[nodiscard]] GraphMask& mask() { return mask_; }

  // Runs s→t under the current scratch mask.
  [[nodiscard]] std::optional<RPath> query(Vertex s, Vertex t);
  [[nodiscard]] DistKey query_distance(Vertex s, Vertex t);

  // Full SSSP from s under the current scratch mask; result borrowed.
  [[nodiscard]] const SpResult& query_sssp(Vertex s);

  [[nodiscard]] const Graph& graph() const { return dijkstra_.graph(); }
  [[nodiscard]] const WeightAssignment& weights() const {
    return dijkstra_.weights();
  }

  // Number of Dijkstra runs issued so far (construction-cost instrumentation).
  [[nodiscard]] std::uint64_t queries_issued() const { return queries_; }

 private:
  Dijkstra dijkstra_;
  GraphMask mask_;
  std::uint64_t queries_ = 0;
};

}  // namespace ftbfs
