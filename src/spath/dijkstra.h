// Tie-broken single-source shortest paths under the weight assignment W.
//
// This is Dijkstra over lexicographic (hops, perturbation) keys. Because every
// edge has hop-weight exactly 1, the hop component behaves like BFS layers and
// the perturbation component selects the W-unique representative among
// equal-hop paths — exactly SP(s, ·, G', W) of the paper for any masked
// subgraph G'.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/mask.h"
#include "spath/weights.h"

namespace ftbfs {

struct SpResult {
  std::vector<DistKey> dist;        // kUnreachable if not reached
  std::vector<Vertex> parent;       // kInvalidVertex for source/unreached
  std::vector<EdgeId> parent_edge;  // kInvalidEdge likewise

  [[nodiscard]] bool reached(Vertex v) const {
    return dist[v] != kUnreachable;
  }
  [[nodiscard]] std::uint32_t hops(Vertex v) const { return dist[v].hops; }
};

// Reusable engine; all buffers persist between runs.
class Dijkstra {
 public:
  Dijkstra(const Graph& g, const WeightAssignment& w);

  // Full SSSP from `source` under `mask` (may be null). If `target` is a valid
  // vertex, stops early once the target is settled (all other entries are
  // valid lower bounds only — callers wanting full SSSP pass kInvalidVertex).
  const SpResult& run(Vertex source, const GraphMask* mask = nullptr,
                      Vertex target = kInvalidVertex);

  [[nodiscard]] const SpResult& result() const { return result_; }
  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] const WeightAssignment& weights() const { return *weights_; }

 private:
  const Graph* graph_;
  const WeightAssignment* weights_;
  SpResult result_;

  struct HeapEntry {
    DistKey key;
    Vertex v;
    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      return a.key > b.key;
    }
  };
  std::vector<HeapEntry> heap_;  // binary heap storage, reused across runs
};

// Extracts the s→t vertex path from an SSSP result (s implied by the run).
// Returns empty vector if t was not reached.
[[nodiscard]] std::vector<Vertex> extract_path(const SpResult& r, Vertex t);

}  // namespace ftbfs
