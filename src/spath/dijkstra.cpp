#include "spath/dijkstra.h"

#include <algorithm>

namespace ftbfs {

Dijkstra::Dijkstra(const Graph& g, const WeightAssignment& w)
    : graph_(&g), weights_(&w) {
  result_.dist.resize(g.num_vertices());
  result_.parent.resize(g.num_vertices());
  result_.parent_edge.resize(g.num_vertices());
}

const SpResult& Dijkstra::run(Vertex source, const GraphMask* mask,
                              Vertex target) {
  const Graph& g = *graph_;
  FTBFS_EXPECTS(source < g.num_vertices());
  std::fill(result_.dist.begin(), result_.dist.end(), kUnreachable);
  std::fill(result_.parent.begin(), result_.parent.end(), kInvalidVertex);
  std::fill(result_.parent_edge.begin(), result_.parent_edge.end(),
            kInvalidEdge);
  heap_.clear();

  if (mask != nullptr && mask->vertex_blocked(source)) return result_;

  auto push = [this](DistKey key, Vertex v) {
    heap_.push_back(HeapEntry{key, v});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  };
  auto pop = [this]() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    return top;
  };

  result_.dist[source] = DistKey{0, 0};
  push(DistKey{0, 0}, source);
  while (!heap_.empty()) {
    const HeapEntry top = pop();
    if (top.key != result_.dist[top.v]) continue;  // stale entry
    if (top.v == target) break;
    for (const Arc& arc : g.neighbors(top.v)) {
      if (mask != nullptr && !mask->edge_usable(arc.id, top.v, arc.to)) {
        continue;
      }
      const DistKey cand = weights_->extend(top.key, arc.id);
      if (cand < result_.dist[arc.to]) {
        result_.dist[arc.to] = cand;
        result_.parent[arc.to] = top.v;
        result_.parent_edge[arc.to] = arc.id;
        push(cand, arc.to);
      }
    }
  }
  return result_;
}

std::vector<Vertex> extract_path(const SpResult& r, Vertex t) {
  if (!r.reached(t)) return {};
  std::vector<Vertex> path;
  Vertex cur = t;
  path.push_back(cur);
  while (r.parent[cur] != kInvalidVertex) {
    cur = r.parent[cur];
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace ftbfs
