#include "spath/path.h"

#include <algorithm>

namespace ftbfs {

std::size_t path_length(const Path& p) {
  FTBFS_EXPECTS(!p.empty());
  return p.size() - 1;
}

bool is_simple_path_in(const Graph& g, const Path& p) {
  if (p.empty()) return false;
  std::vector<Vertex> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return false;
  }
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    if (g.find_edge(p[i], p[i + 1]) == kInvalidEdge) return false;
  }
  return true;
}

EdgeId last_edge(const Graph& g, const Path& p) {
  FTBFS_EXPECTS(p.size() >= 2);
  const EdgeId e = g.find_edge(p[p.size() - 2], p[p.size() - 1]);
  FTBFS_ENSURES(e != kInvalidEdge);
  return e;
}

std::vector<EdgeId> edges_of(const Graph& g, const Path& p) {
  std::vector<EdgeId> out;
  if (p.size() < 2) return out;
  out.reserve(p.size() - 1);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const EdgeId e = g.find_edge(p[i], p[i + 1]);
    FTBFS_EXPECTS(e != kInvalidEdge);
    out.push_back(e);
  }
  return out;
}

std::size_t index_of(const Path& p, Vertex v) {
  const auto it = std::find(p.begin(), p.end(), v);
  return it == p.end() ? kNpos : static_cast<std::size_t>(it - p.begin());
}

bool contains_vertex(const Path& p, Vertex v) {
  return index_of(p, v) != kNpos;
}

bool contains_edge(const Graph& g, const Path& p, EdgeId e) {
  const Edge& ed = g.edge(e);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const Vertex a = p[i], b = p[i + 1];
    if ((a == ed.u && b == ed.v) || (a == ed.v && b == ed.u)) return true;
  }
  return false;
}

Path subpath(const Path& p, std::size_t i, std::size_t j) {
  FTBFS_EXPECTS(i <= j && j < p.size());
  return Path(p.begin() + static_cast<std::ptrdiff_t>(i),
              p.begin() + static_cast<std::ptrdiff_t>(j) + 1);
}

Path subpath_by_vertex(const Path& p, Vertex a, Vertex b) {
  const std::size_t i = index_of(p, a);
  const std::size_t j = index_of(p, b);
  FTBFS_EXPECTS(i != kNpos && j != kNpos && i <= j);
  return subpath(p, i, j);
}

Path concat(const Path& p1, const Path& p2) {
  FTBFS_EXPECTS(!p1.empty() && !p2.empty());
  FTBFS_EXPECTS(p1.back() == p2.front());
  Path out = p1;
  out.insert(out.end(), p2.begin() + 1, p2.end());
  return out;
}

std::size_t first_divergence(const Path& p, const Path& q) {
  FTBFS_EXPECTS(!p.empty() && !q.empty());
  FTBFS_EXPECTS(p.front() == q.front());
  std::size_t i = 0;
  while (i + 1 < p.size() && i + 1 < q.size() && p[i + 1] == q[i + 1]) ++i;
  return i;
}

DistKey path_key(const Graph& g, const WeightAssignment& w, const Path& p) {
  DistKey key{0, 0};
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const EdgeId e = g.find_edge(p[i], p[i + 1]);
    FTBFS_EXPECTS(e != kInvalidEdge);
    key = w.extend(key, e);
  }
  return key;
}

std::vector<Vertex> divergence_points(const Path& p1, const Path& p2) {
  std::vector<Vertex> out;
  for (std::size_t i = 0; i + 1 < p1.size(); ++i) {
    if (contains_vertex(p2, p1[i]) && !contains_vertex(p2, p1[i + 1])) {
      out.push_back(p1[i]);
    }
  }
  return out;
}

}  // namespace ftbfs
