#include "spath/weights.h"

namespace ftbfs {

WeightAssignment::WeightAssignment(const Graph& g, std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0x3E163875));
  pert_.resize(g.num_edges());
  for (auto& p : pert_) {
    p = 1 + rng.next_below(std::uint64_t{1} << 40);
  }
}

}  // namespace ftbfs
