// Plain breadth-first search (hop distances only), with optional mask.
//
// Used wherever tie-breaking does not matter: the FT-BFS *verifier* only
// compares hop distances (the defining property dist(s,v,H∖F) = dist(s,v,G∖F)
// is about lengths, not about which path realizes them), and BFS is ~3x
// cheaper than the tie-broken Dijkstra.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "graph/mask.h"

namespace ftbfs {

inline constexpr std::uint32_t kInfHops =
    std::numeric_limits<std::uint32_t>::max();

struct BfsResult {
  std::vector<std::uint32_t> hops;   // kInfHops if unreachable
  std::vector<Vertex> parent;        // kInvalidVertex for source/unreachable
  std::vector<EdgeId> parent_edge;   // kInvalidEdge likewise
};

// Reusable BFS engine (buffers persist across runs).
class Bfs {
 public:
  explicit Bfs(const Graph& g) : graph_(&g) {
    result_.hops.resize(g.num_vertices());
    result_.parent.resize(g.num_vertices());
    result_.parent_edge.resize(g.num_vertices());
    queue_.reserve(g.num_vertices());
  }

  // Runs BFS from `source`; if `mask` is non-null, blocked vertices/edges are
  // skipped. Result remains valid until the next run().
  const BfsResult& run(Vertex source, const GraphMask* mask = nullptr);

  [[nodiscard]] const BfsResult& result() const { return result_; }

 private:
  const Graph* graph_;
  BfsResult result_;
  std::vector<Vertex> queue_;
};

// One-shot hop distance; convenience for tests.
[[nodiscard]] std::uint32_t bfs_distance(const Graph& g, Vertex s, Vertex t,
                                         const GraphMask* mask = nullptr);

// Eccentricity of `source` (max finite hop distance); kInfHops if some vertex
// is unreachable.
[[nodiscard]] std::uint32_t bfs_eccentricity(const Graph& g, Vertex source);

}  // namespace ftbfs
