// Plain breadth-first search (hop distances only), with optional mask.
//
// Used wherever tie-breaking does not matter: the FT-BFS *verifier* only
// compares hop distances (the defining property dist(s,v,H∖F) = dist(s,v,G∖F)
// is about lengths, not about which path realizes them), and BFS is ~3x
// cheaper than the tie-broken Dijkstra.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/mask.h"

namespace ftbfs {

inline constexpr std::uint32_t kInfHops =
    std::numeric_limits<std::uint32_t>::max();

struct BfsResult {
  std::vector<std::uint32_t> hops;   // kInfHops if unreachable
  std::vector<Vertex> parent;        // kInvalidVertex for source/unreachable
  std::vector<EdgeId> parent_edge;   // kInvalidEdge likewise
};

// Reusable BFS engine (buffers persist across runs).
class Bfs {
 public:
  explicit Bfs(const Graph& g) : graph_(&g) {
    result_.hops.resize(g.num_vertices());
    result_.parent.resize(g.num_vertices());
    result_.parent_edge.resize(g.num_vertices());
    queue_.reserve(g.num_vertices());
  }

  // Runs BFS from `source`; if `mask` is non-null, blocked vertices/edges are
  // skipped. Result remains valid until the next run().
  const BfsResult& run(Vertex source, const GraphMask* mask = nullptr);

  // Early-exit variant: stops expanding once every vertex of `targets` has
  // been settled (or the frontier is exhausted). Entries of the result are
  // exact for all settled vertices — in particular for every reached target —
  // and kInfHops for targets that are genuinely unreachable; other vertices
  // may be left unexplored. This is the query-path workhorse: fault-set
  // distance queries touch only the BFS ball around the targets.
  const BfsResult& run_until(Vertex source, std::span<const Vertex> targets,
                             const GraphMask* mask = nullptr);

  [[nodiscard]] const BfsResult& result() const { return result_; }

  // Vertices of the last run in discovery (queue) order; valid until the next
  // run. Complete only for full runs — run_until may stop early. The engine's
  // delta path keeps this as the per-source baseline discovery rank, the
  // tie-break that makes repair-path parent choices track the full BFS.
  [[nodiscard]] std::span<const Vertex> visit_order() const { return queue_; }

 private:
  const Graph* graph_;
  BfsResult result_;
  std::vector<Vertex> queue_;
  // Epoch-stamped target markers for run_until (lazily sized).
  std::vector<std::uint64_t> target_epoch_;
  std::uint64_t epoch_ = 0;
};

// One-shot hop distance; convenience for tests.
[[nodiscard]] std::uint32_t bfs_distance(const Graph& g, Vertex s, Vertex t,
                                         const GraphMask* mask = nullptr);

// Eccentricity of `source` (max finite hop distance); kInfHops if some vertex
// is unreachable.
[[nodiscard]] std::uint32_t bfs_eccentricity(const Graph& g, Vertex source);

}  // namespace ftbfs
