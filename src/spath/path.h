// Path algebra: the small vocabulary the paper uses over and over —
// LastE(P), |P|, P[v_i, v_j], P1 ∘ P2, divergence points, detour segments.
//
// A path is a sequence of vertices; edges are implied (and validated against
// the graph where needed). All operations are value-semantic.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "spath/weights.h"

namespace ftbfs {

using Path = std::vector<Vertex>;

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// |P| — length in edges. A single-vertex path has length 0.
[[nodiscard]] std::size_t path_length(const Path& p);

// True if consecutive vertices are adjacent in g and no vertex repeats.
[[nodiscard]] bool is_simple_path_in(const Graph& g, const Path& p);

// LastE(P): the id of the final edge. Requires |P| >= 1.
[[nodiscard]] EdgeId last_edge(const Graph& g, const Path& p);

// Edge ids along the path, in order.
[[nodiscard]] std::vector<EdgeId> edges_of(const Graph& g, const Path& p);

// Index of the first occurrence of v in p, or kNpos.
[[nodiscard]] std::size_t index_of(const Path& p, Vertex v);

[[nodiscard]] bool contains_vertex(const Path& p, Vertex v);

// True if the (undirected) edge e is traversed by p.
[[nodiscard]] bool contains_edge(const Graph& g, const Path& p, EdgeId e);

// P[i..j] by positional indices, inclusive. Requires i <= j < |p|.
[[nodiscard]] Path subpath(const Path& p, std::size_t i, std::size_t j);

// P[a, b] by vertex values (paper notation); both must occur, a before b.
[[nodiscard]] Path subpath_by_vertex(const Path& p, Vertex a, Vertex b);

// P1 ∘ P2. Requires P1.back() == P2.front(); the shared vertex appears once.
[[nodiscard]] Path concat(const Path& p1, const Path& p2);

// Index (into `p`) of the first divergence point of p from q, where both
// start at the same vertex: the last index of the longest common prefix.
// Requires p.front() == q.front(). Returns p.size()-1 if p is a prefix of q.
[[nodiscard]] std::size_t first_divergence(const Path& p, const Path& q);

// The W-key (hops, perturbation sum) of a path.
[[nodiscard]] DistKey path_key(const Graph& g, const WeightAssignment& w,
                               const Path& p);

// All divergence points of p1 from p2 in the paper's sense: vertices w on both
// paths such that the successor of w on p1 is not on p2. Used by tests of the
// uniqueness claims (Cl. 3.5, 3.15).
[[nodiscard]] std::vector<Vertex> divergence_points(const Path& p1,
                                                    const Path& p2);

}  // namespace ftbfs
