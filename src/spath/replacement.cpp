#include "spath/replacement.h"

namespace ftbfs {

std::optional<RPath> ReplacementOracle::replacement_path(
    Vertex s, Vertex t, std::span<const EdgeId> faults) {
  mask_.clear();
  block_edges(mask_, faults);
  return query(s, t);
}

DistKey ReplacementOracle::replacement_distance(
    Vertex s, Vertex t, std::span<const EdgeId> faults) {
  mask_.clear();
  block_edges(mask_, faults);
  return query_distance(s, t);
}

std::optional<RPath> ReplacementOracle::query(Vertex s, Vertex t) {
  ++queries_;
  const SpResult& r = dijkstra_.run(s, &mask_, t);
  if (!r.reached(t)) return std::nullopt;
  return RPath{extract_path(r, t), r.dist[t]};
}

DistKey ReplacementOracle::query_distance(Vertex s, Vertex t) {
  ++queries_;
  const SpResult& r = dijkstra_.run(s, &mask_, t);
  return r.dist[t];
}

const SpResult& ReplacementOracle::query_sssp(Vertex s) {
  ++queries_;
  return dijkstra_.run(s, &mask_, kInvalidVertex);
}

}  // namespace ftbfs
