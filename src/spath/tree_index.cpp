#include "spath/tree_index.h"

namespace ftbfs {

TreeIndex::TreeIndex(const Graph& g, Vertex root, PrivateTag)
    : root_(root),
      depth_(g.num_vertices(), kUnreachedDepth),
      parent_(g.num_vertices(), kInvalidVertex),
      parent_edge_(g.num_vertices(), kInvalidEdge),
      tin_(g.num_vertices(), 0),
      tout_(g.num_vertices(), 0),
      pre_(g.num_vertices(), kInvalidPreorder),
      subtree_size_(g.num_vertices(), 0),
      children_(g.num_vertices()) {
  FTBFS_EXPECTS(root < g.num_vertices());
}

void TreeIndex::adopt(Vertex v, Vertex parent, EdgeId parent_edge) {
  parent_[v] = parent;
  parent_edge_[v] = parent_edge;
  if (v != root_) {
    FTBFS_EXPECTS(parent != kInvalidVertex);
    children_[parent].push_back(v);
  }
}

TreeIndex::TreeIndex(const Graph& g, const SpResult& tree, Vertex root)
    : TreeIndex(g, root, PrivateTag{}) {
  FTBFS_EXPECTS(tree.reached(root));
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (tree.reached(v)) adopt(v, tree.parent[v], tree.parent_edge[v]);
  }
  build_intervals(root);
}

TreeIndex::TreeIndex(const Graph& g, const BfsResult& tree, Vertex root)
    : TreeIndex(g, root, PrivateTag{}) {
  FTBFS_EXPECTS(tree.hops[root] != kInfHops);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (tree.hops[v] != kInfHops) adopt(v, tree.parent[v], tree.parent_edge[v]);
  }
  build_intervals(root);
}

void TreeIndex::build_intervals(Vertex root) {
  // Iterative DFS for Euler intervals, preorder positions, subtree sizes.
  std::uint32_t clock = 0;
  std::vector<std::pair<Vertex, std::size_t>> stack;  // (vertex, child cursor)
  stack.emplace_back(root, 0);
  tin_[root] = clock++;
  depth_[root] = 0;
  pre_[root] = 0;
  preorder_.push_back(root);
  while (!stack.empty()) {
    const Vertex v = stack.back().first;
    if (stack.back().second < children_[v].size()) {
      // Advance the cursor *before* pushing: emplace_back may reallocate and
      // would invalidate any reference held into the stack.
      const Vertex c = children_[v][stack.back().second++];
      tin_[c] = clock++;
      depth_[c] = depth_[v] + 1;
      pre_[c] = static_cast<std::uint32_t>(preorder_.size());
      preorder_.push_back(c);
      stack.emplace_back(c, 0);
    } else {
      tout_[v] = clock++;
      subtree_size_[v] =
          static_cast<std::uint32_t>(preorder_.size()) - pre_[v];
      stack.pop_back();
    }
  }
}

}  // namespace ftbfs
