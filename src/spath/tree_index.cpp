#include "spath/tree_index.h"

namespace ftbfs {

TreeIndex::TreeIndex(const Graph& g, const SpResult& tree, Vertex root)
    : root_(root),
      depth_(g.num_vertices(), kUnreachedDepth),
      parent_(g.num_vertices(), kInvalidVertex),
      parent_edge_(g.num_vertices(), kInvalidEdge),
      tin_(g.num_vertices(), 0),
      tout_(g.num_vertices(), 0),
      children_(g.num_vertices()) {
  FTBFS_EXPECTS(root < g.num_vertices());
  FTBFS_EXPECTS(tree.reached(root));
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (!tree.reached(v)) continue;
    parent_[v] = tree.parent[v];
    parent_edge_[v] = tree.parent_edge[v];
    if (v != root) {
      FTBFS_EXPECTS(parent_[v] != kInvalidVertex);
      children_[parent_[v]].push_back(v);
    }
  }
  // Iterative DFS for Euler intervals and preorder.
  std::uint32_t clock = 0;
  std::vector<std::pair<Vertex, std::size_t>> stack;  // (vertex, child cursor)
  stack.emplace_back(root, 0);
  tin_[root] = clock++;
  depth_[root] = 0;
  preorder_.push_back(root);
  while (!stack.empty()) {
    const Vertex v = stack.back().first;
    if (stack.back().second < children_[v].size()) {
      // Advance the cursor *before* pushing: emplace_back may reallocate and
      // would invalidate any reference held into the stack.
      const Vertex c = children_[v][stack.back().second++];
      tin_[c] = clock++;
      depth_[c] = depth_[v] + 1;
      preorder_.push_back(c);
      stack.emplace_back(c, 0);
    } else {
      tout_[v] = clock++;
      stack.pop_back();
    }
  }
}

}  // namespace ftbfs
