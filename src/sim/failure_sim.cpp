#include "sim/failure_sim.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "util/concurrency.h"
#include "util/rng.h"

namespace ftbfs {

namespace {

ServiceConfig sim_service_config(const SimConfig& config) {
  ServiceConfig out;
  out.lazy_build = false;  // the sim routes only on its registered overlays
  out.cache_capacity = config.cache_capacity;
  out.delta_queries = config.delta_queries;
  out.cache_delta_max_fraction = config.cache_delta_max_fraction;
  return out;
}

}  // namespace

FailureSimulator::FailureSimulator(const Graph& g, Vertex source,
                                   SimConfig config)
    : g_(&g),
      source_(source),
      config_(config),
      service_(g, sim_service_config(config)) {
  FTBFS_EXPECTS(source < g.num_vertices());
}

void FailureSimulator::add_overlay(std::string name,
                                   std::span<const EdgeId> edges,
                                   unsigned fault_budget) {
  const std::size_t entry = service_.add_structure(
      name, source_, fault_budget, FaultModel::kEdge, edges);
  overlays_.push_back(Overlay{std::move(name), entry, fault_budget});
}

std::vector<OverlayMetrics> FailureSimulator::run() {
  const Graph& g = *g_;
  Rng rng(derive_seed(config_.seed, 0x51D));
  std::vector<bool> failed(g.num_edges(), false);
  // Current fault set (host edge ids), kept sorted so the repair draws below
  // consume the RNG in edge-id order — the same stream association as a full
  // edge scan, keeping fault trajectories reproducible for a fixed seed.
  std::vector<EdgeId> failed_list;

  std::vector<OverlayMetrics> metrics(overlays_.size());
  for (std::size_t i = 0; i < overlays_.size(); ++i) {
    metrics[i].name = overlays_[i].name;
    metrics[i].edges = service_.entry_edges(overlays_[i].entry);
  }
  fault_histogram_.assign(g.num_edges() + 1, 0);

  // One request skeleton per tick: best-effort because over-budget ticks must
  // still route (the metrics *measure* what breaks beyond the budget).
  QueryRequest req;
  req.source = source_;
  req.kind = QueryKind::kAllDistances;
  req.consistency = Consistency::kBestEffort;

  // Row 0 = ground truth (identity), rows 1.. = overlays. With route_threads
  // > 1 one tick's rows are served concurrently — they are independent
  // requests against the same tick-state, the shape the concurrent service
  // is built for. Distances and metrics are deterministic either way (each
  // row has its own cache key, so racing rows never contend for one line);
  // only the cache's internal recency/eviction bookkeeping can interleave
  // differently from serial.
  const std::size_t rows = 1 + overlays_.size();
  std::vector<std::vector<std::uint32_t>> routed(rows);
  // No hardware cap: the simulator's row partitioning is deterministic, and
  // oversubscribing is how the concurrency tests exercise interleavings.
  const unsigned workers =
      clamp_workers(config_.route_threads, rows, /*cap_to_hardware=*/false);
  // Ordered routing (SimConfig::ordered_routing): a fresh per-tick ticket
  // lock sequences the rows' admissions in row order; empty = relaxed, the
  // rows race. Row index doubles as the dense ticket.
  std::optional<RequestSequencer> tick_order;
  auto route_rows = [&](const QueryRequest& skeleton, unsigned worker) {
    std::exception_ptr row_error;
    for (std::size_t r = worker; r < rows; r += workers) {
      if (row_error != nullptr) {
        // A failed row must not strand this worker's later tickets — burn
        // them so the other workers' turns still come.
        if (tick_order.has_value()) tick_order->skip(r);
        continue;
      }
      QueryRequest row_req = skeleton;
      row_req.structure = r == 0 ? "identity" : overlays_[r - 1].name;
      try {
        routed[r] = (tick_order.has_value()
                         ? service_.serve(row_req, *tick_order, r)
                         : service_.serve(row_req))
                        .distances;
      } catch (...) {
        row_error = std::current_exception();
      }
    }
    if (row_error != nullptr) std::rethrow_exception(row_error);
  };

  // Persistent routing crew: spawned once for the whole run (per-tick thread
  // churn would rival the per-tick serve work on small graphs). The main
  // thread takes slice 0 each tick and hands the others a generation bump.
  std::mutex crew_mutex;
  std::condition_variable crew_cv;
  std::uint64_t generation = 0;
  unsigned outstanding = 0;
  bool shutdown = false;
  const QueryRequest* tick_req = nullptr;
  std::exception_ptr crew_error;  // first worker exception, rethrown by run()
  std::vector<std::thread> crew;
  for (unsigned w = 1; w < workers; ++w) {
    crew.emplace_back([&, w] {
      std::uint64_t seen = 0;
      while (true) {
        const QueryRequest* skeleton = nullptr;
        {
          std::unique_lock lock(crew_mutex);
          crew_cv.wait(lock, [&] { return shutdown || generation > seen; });
          if (shutdown) return;
          seen = generation;
          skeleton = tick_req;
        }
        // Contain exceptions (an escape would std::terminate the process):
        // park the first one for run() to rethrow on the main thread, and
        // always decrement so route_tick cannot hang on a failed worker.
        try {
          route_rows(*skeleton, w);
        } catch (...) {
          const std::lock_guard lock(crew_mutex);
          if (crew_error == nullptr) crew_error = std::current_exception();
        }
        {
          const std::lock_guard lock(crew_mutex);
          if (--outstanding == 0) crew_cv.notify_all();
        }
      }
    });
  }
  // Joins the crew on every exit from run() — normal return or an exception
  // unwinding the tick loop — so no joinable std::thread ever gets destroyed.
  struct CrewJoiner {
    std::mutex& mutex;
    std::condition_variable& cv;
    bool& shutdown;
    std::vector<std::thread>& crew;
    ~CrewJoiner() {
      {
        const std::lock_guard lock(mutex);
        shutdown = true;
      }
      cv.notify_all();
      for (std::thread& t : crew) t.join();
    }
  } joiner{crew_mutex, crew_cv, shutdown, crew};
  auto route_tick = [&](const QueryRequest& skeleton) {
    if (workers > 1 && config_.ordered_routing) {
      tick_order.emplace();  // fresh dense tickets 0..rows-1 for this tick
    }
    if (workers > 1) {
      {
        const std::lock_guard lock(crew_mutex);
        tick_req = &skeleton;
        outstanding = workers - 1;
        ++generation;
      }
      crew_cv.notify_all();
    }
    route_rows(skeleton, 0);
    if (workers > 1) {
      std::exception_ptr error;
      {
        std::unique_lock lock(crew_mutex);
        crew_cv.wait(lock, [&] { return outstanding == 0; });
        error = crew_error;
      }
      if (error != nullptr) std::rethrow_exception(error);
    }
  };

  for (std::uint32_t tick = 0; tick < config_.ticks; ++tick) {
    // Repairs first, then new failures subject to the cap.
    std::erase_if(failed_list, [&](EdgeId e) {
      if (rng.next_bool(config_.repair_probability)) {
        failed[e] = false;
        return true;
      }
      return false;
    });
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (failed_list.size() >= config_.max_concurrent_faults) break;
      if (!failed[e] && rng.next_bool(config_.failure_probability)) {
        failed[e] = true;
        failed_list.insert(
            std::lower_bound(failed_list.begin(), failed_list.end(), e), e);
      }
    }
    ++fault_histogram_[failed_list.size()];

    req.fault_edges = failed_list;
    route_tick(req);
    const std::vector<std::uint32_t>& truth = routed[0];

    for (std::size_t i = 0; i < overlays_.size(); ++i) {
      const Overlay& overlay = overlays_[i];
      const std::vector<std::uint32_t>& got = routed[i + 1];
      const bool in_budget = failed_list.size() <= overlay.budget;
      OverlayMetrics& m = metrics[i];
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        if (v == source_ || truth[v] == kInfHops) continue;
        ++m.routed;
        if (in_budget) ++m.routed_in_budget;
        if (got[v] == truth[v]) {
          ++m.exact;
        } else if (got[v] == kInfHops) {
          ++m.disconnected;
          if (in_budget) ++m.non_exact_in_budget;
        } else {
          ++m.stretched;
          m.extra_hops += got[v] - truth[v];
          if (in_budget) ++m.non_exact_in_budget;
        }
      }
    }
  }
  return metrics;  // CrewJoiner shuts the crew down
}

}  // namespace ftbfs
