#include "sim/failure_sim.h"

#include "graph/mask.h"
#include "spath/bfs.h"
#include "util/rng.h"

namespace ftbfs {

FailureSimulator::FailureSimulator(const Graph& g, Vertex source,
                                   SimConfig config)
    : g_(&g), source_(source), config_(config) {
  FTBFS_EXPECTS(source < g.num_vertices());
}

void FailureSimulator::add_overlay(std::string name,
                                   std::span<const EdgeId> edges,
                                   unsigned fault_budget) {
  Overlay overlay;
  overlay.name = std::move(name);
  overlay.graph = subgraph_from_edges(*g_, edges);
  overlay.g_to_overlay.assign(g_->num_edges(), kInvalidEdge);
  for (EdgeId i = 0; i < edges.size(); ++i) {
    overlay.g_to_overlay[edges[i]] = i;
  }
  overlay.budget = fault_budget;
  overlays_.push_back(std::move(overlay));
}

std::vector<OverlayMetrics> FailureSimulator::run() {
  const Graph& g = *g_;
  Rng rng(derive_seed(config_.seed, 0x51D));
  std::vector<bool> failed(g.num_edges(), false);
  std::size_t failed_count = 0;

  std::vector<OverlayMetrics> metrics(overlays_.size());
  for (std::size_t i = 0; i < overlays_.size(); ++i) {
    metrics[i].name = overlays_[i].name;
    metrics[i].edges = overlays_[i].graph.num_edges();
  }
  fault_histogram_.assign(g.num_edges() + 1, 0);

  Bfs g_bfs(g);
  GraphMask g_mask(g);
  std::vector<Bfs> o_bfs;
  std::vector<GraphMask> o_masks;
  o_bfs.reserve(overlays_.size());
  o_masks.reserve(overlays_.size());
  for (const Overlay& overlay : overlays_) {
    o_bfs.emplace_back(overlay.graph);
    o_masks.emplace_back(overlay.graph);
  }

  for (std::uint32_t tick = 0; tick < config_.ticks; ++tick) {
    // Repairs first, then new failures subject to the cap.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (failed[e] && rng.next_bool(config_.repair_probability)) {
        failed[e] = false;
        --failed_count;
      }
    }
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (failed_count >= config_.max_concurrent_faults) break;
      if (!failed[e] && rng.next_bool(config_.failure_probability)) {
        failed[e] = true;
        ++failed_count;
      }
    }
    ++fault_histogram_[failed_count];

    // Ground-truth distances under the current fault set.
    g_mask.clear();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (failed[e]) g_mask.block_edge(e);
    }
    const BfsResult& truth = g_bfs.run(source_, &g_mask);

    for (std::size_t i = 0; i < overlays_.size(); ++i) {
      const Overlay& overlay = overlays_[i];
      o_masks[i].clear();
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (failed[e] && overlay.g_to_overlay[e] != kInvalidEdge) {
          o_masks[i].block_edge(overlay.g_to_overlay[e]);
        }
      }
      const BfsResult& got = o_bfs[i].run(source_, &o_masks[i]);
      const bool in_budget = failed_count <= overlay.budget;
      OverlayMetrics& m = metrics[i];
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        if (v == source_ || truth.hops[v] == kInfHops) continue;
        ++m.routed;
        if (in_budget) ++m.routed_in_budget;
        if (got.hops[v] == truth.hops[v]) {
          ++m.exact;
        } else if (got.hops[v] == kInfHops) {
          ++m.disconnected;
          if (in_budget) ++m.non_exact_in_budget;
        } else {
          ++m.stretched;
          m.extra_hops += got.hops[v] - truth.hops[v];
          if (in_budget) ++m.non_exact_in_budget;
        }
      }
    }
  }
  return metrics;
}

}  // namespace ftbfs
