#include "sim/failure_sim.h"

#include <algorithm>

#include "util/rng.h"

namespace ftbfs {

namespace {

ServiceConfig sim_service_config(const SimConfig& config) {
  ServiceConfig out;
  out.lazy_build = false;  // the sim routes only on its registered overlays
  out.cache_capacity = config.cache_capacity;
  return out;
}

}  // namespace

FailureSimulator::FailureSimulator(const Graph& g, Vertex source,
                                   SimConfig config)
    : g_(&g),
      source_(source),
      config_(config),
      service_(g, sim_service_config(config)) {
  FTBFS_EXPECTS(source < g.num_vertices());
}

void FailureSimulator::add_overlay(std::string name,
                                   std::span<const EdgeId> edges,
                                   unsigned fault_budget) {
  const std::size_t entry = service_.add_structure(
      name, source_, fault_budget, FaultModel::kEdge, edges);
  overlays_.push_back(Overlay{std::move(name), entry, fault_budget});
}

std::vector<OverlayMetrics> FailureSimulator::run() {
  const Graph& g = *g_;
  Rng rng(derive_seed(config_.seed, 0x51D));
  std::vector<bool> failed(g.num_edges(), false);
  // Current fault set (host edge ids), kept sorted so the repair draws below
  // consume the RNG in edge-id order — the same stream association as a full
  // edge scan, keeping fault trajectories reproducible for a fixed seed.
  std::vector<EdgeId> failed_list;

  std::vector<OverlayMetrics> metrics(overlays_.size());
  for (std::size_t i = 0; i < overlays_.size(); ++i) {
    metrics[i].name = overlays_[i].name;
    metrics[i].edges = service_.entry_edges(overlays_[i].entry);
  }
  fault_histogram_.assign(g.num_edges() + 1, 0);

  // One request skeleton per tick: best-effort because over-budget ticks must
  // still route (the metrics *measure* what breaks beyond the budget).
  QueryRequest req;
  req.source = source_;
  req.kind = QueryKind::kAllDistances;
  req.consistency = Consistency::kBestEffort;

  for (std::uint32_t tick = 0; tick < config_.ticks; ++tick) {
    // Repairs first, then new failures subject to the cap.
    std::erase_if(failed_list, [&](EdgeId e) {
      if (rng.next_bool(config_.repair_probability)) {
        failed[e] = false;
        return true;
      }
      return false;
    });
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (failed_list.size() >= config_.max_concurrent_faults) break;
      if (!failed[e] && rng.next_bool(config_.failure_probability)) {
        failed[e] = true;
        failed_list.insert(
            std::lower_bound(failed_list.begin(), failed_list.end(), e), e);
      }
    }
    ++fault_histogram_[failed_list.size()];

    req.fault_edges = failed_list;
    req.structure = "identity";
    const std::vector<std::uint32_t> truth =
        service_.serve(req).distances;  // ground truth for this tick-state

    for (std::size_t i = 0; i < overlays_.size(); ++i) {
      const Overlay& overlay = overlays_[i];
      req.structure = overlay.name;
      const std::vector<std::uint32_t> got = service_.serve(req).distances;
      const bool in_budget = failed_list.size() <= overlay.budget;
      OverlayMetrics& m = metrics[i];
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        if (v == source_ || truth[v] == kInfHops) continue;
        ++m.routed;
        if (in_budget) ++m.routed_in_budget;
        if (got[v] == truth[v]) {
          ++m.exact;
        } else if (got[v] == kInfHops) {
          ++m.disconnected;
          if (in_budget) ++m.non_exact_in_budget;
        } else {
          ++m.stretched;
          m.extra_hops += got[v] - truth[v];
          if (in_budget) ++m.non_exact_in_budget;
        }
      }
    }
  }
  return metrics;
}

}  // namespace ftbfs
