#include "sim/failure_sim.h"

#include <algorithm>

#include "util/rng.h"

namespace ftbfs {

FailureSimulator::FailureSimulator(const Graph& g, Vertex source,
                                   SimConfig config)
    : g_(&g), source_(source), config_(config) {
  FTBFS_EXPECTS(source < g.num_vertices());
}

void FailureSimulator::add_overlay(std::string name,
                                   std::span<const EdgeId> edges,
                                   unsigned fault_budget) {
  overlays_.push_back(Overlay{std::move(name), FaultQueryEngine(*g_, edges),
                              fault_budget});
}

std::vector<OverlayMetrics> FailureSimulator::run() {
  const Graph& g = *g_;
  Rng rng(derive_seed(config_.seed, 0x51D));
  std::vector<bool> failed(g.num_edges(), false);
  // Current fault set (host edge ids), kept sorted so the repair draws below
  // consume the RNG in edge-id order — the same stream association as a full
  // edge scan, keeping fault trajectories reproducible for a fixed seed.
  std::vector<EdgeId> failed_list;

  std::vector<OverlayMetrics> metrics(overlays_.size());
  for (std::size_t i = 0; i < overlays_.size(); ++i) {
    metrics[i].name = overlays_[i].name;
    metrics[i].edges = overlays_[i].engine.structure_edges();
  }
  fault_histogram_.assign(g.num_edges() + 1, 0);

  FaultQueryEngine truth_engine(g);  // identity: ground-truth distances

  for (std::uint32_t tick = 0; tick < config_.ticks; ++tick) {
    // Repairs first, then new failures subject to the cap.
    std::erase_if(failed_list, [&](EdgeId e) {
      if (rng.next_bool(config_.repair_probability)) {
        failed[e] = false;
        return true;
      }
      return false;
    });
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (failed_list.size() >= config_.max_concurrent_faults) break;
      if (!failed[e] && rng.next_bool(config_.failure_probability)) {
        failed[e] = true;
        failed_list.insert(
            std::lower_bound(failed_list.begin(), failed_list.end(), e), e);
      }
    }
    ++fault_histogram_[failed_list.size()];

    const FaultSpec faults = edge_faults(failed_list);
    // Borrowed until truth_engine's next query; overlay engines have their
    // own scratch, so this stays valid through the loop below.
    const std::vector<std::uint32_t>& truth =
        truth_engine.all_distances(source_, faults);

    for (std::size_t i = 0; i < overlays_.size(); ++i) {
      Overlay& overlay = overlays_[i];
      const std::vector<std::uint32_t>& got =
          overlay.engine.all_distances(source_, faults);
      const bool in_budget = failed_list.size() <= overlay.budget;
      OverlayMetrics& m = metrics[i];
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        if (v == source_ || truth[v] == kInfHops) continue;
        ++m.routed;
        if (in_budget) ++m.routed_in_budget;
        if (got[v] == truth[v]) {
          ++m.exact;
        } else if (got[v] == kInfHops) {
          ++m.disconnected;
          if (in_budget) ++m.non_exact_in_budget;
        } else {
          ++m.stretched;
          m.extra_hops += got[v] - truth[v];
          if (in_budget) ++m.non_exact_in_budget;
        }
      }
    }
  }
  return metrics;
}

}  // namespace ftbfs
