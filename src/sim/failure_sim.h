// Discrete-time failure/repair simulation.
//
// The systems-side companion to the theory: edges fail and recover over time
// (independent per-tick probabilities, optionally capped at a maximum number
// of concurrent faults), and one or more *overlays* (sub-structures of the
// graph, e.g. a BFS tree, a single-failure FT-BFS, a dual-failure FT-BFS)
// route from the source every tick. Metrics separate ticks inside the
// overlay's fault budget from ticks beyond it, making the FT guarantee
// ("exact whenever |F| <= f") directly observable.
//
// Routing per tick goes through one OracleService: the ground truth is the
// service's identity entry, each overlay is a pool entry pinned by name, and
// every tick issues best-effort all-distances requests (over-budget ticks
// must still be answered — measuring the degradation is the point). Fault
// trajectories revisit states constantly (repairs return to recent sets, calm
// stretches stay fault-free), so the service's scenario cache serves repeated
// tick-states without re-running BFS — service_stats() shows the hit rate.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "service/oracle_service.h"
#include "graph/graph.h"

namespace ftbfs {

struct SimConfig {
  double failure_probability = 0.002;  // per alive edge, per tick
  double repair_probability = 0.2;     // per failed edge, per tick
  std::uint32_t ticks = 500;
  std::uint64_t seed = 1;
  // Hard cap on concurrent faults (simulates a maintenance policy); no new
  // failures start while the cap is reached. 0 = no failures at all.
  std::size_t max_concurrent_faults = 2;
  // Scenario-cache capacity of the routing service (0 disables caching).
  std::size_t cache_capacity = 512;
  // Fault-delta query path of the routing service's engines. The simulator
  // is the delta path's natural customer: a tick's fault set is small and
  // drifts edge by edge, so cache-missing tick-states repair a few subtrees
  // instead of re-running BFS over every overlay. Metrics are identical
  // either way; off reproduces the pre-delta serving cost.
  bool delta_queries = true;
  // Delta-compressed scenario cache of the routing service: tick-states
  // perturb few distances, so cached lines shrink to the affected-region
  // diff (ServiceConfig::cache_delta_max_fraction; <= 0 keeps full vectors).
  // Metrics are identical for every setting — only resident bytes change.
  double cache_delta_max_fraction = 0.25;
  // Workers routing one tick's requests (ground truth + each overlay)
  // through the service concurrently. The fault process itself stays
  // sequential, so metrics are identical for every thread count; >1 simply
  // exercises the service's concurrent path and cuts per-tick latency when
  // several overlays are registered.
  unsigned route_threads = 1;
  // Admission ordering of one tick's concurrent routing requests, mirroring
  // `ftbfs serve --mode`: relaxed (false, the default) admits rows in
  // whatever order the workers reach the service — distances and metrics are
  // deterministic regardless, each row has its own cache key; ordered (true)
  // runs the rows' admissions in row order through a ticket lock, so even
  // the cache's internal hit/miss/eviction bookkeeping replays the serial
  // stream exactly (useful when comparing service_stats() across thread
  // counts). Irrelevant when route_threads == 1.
  bool ordered_routing = false;
};

struct OverlayMetrics {
  std::string name;
  std::uint64_t edges = 0;             // overlay size
  std::uint64_t routed = 0;            // (tick, target) pairs evaluated
  std::uint64_t exact = 0;             // overlay distance == graph distance
  std::uint64_t stretched = 0;         // finite but longer
  std::uint64_t disconnected = 0;      // overlay lost a reachable target
  std::uint64_t extra_hops = 0;        // total stretch in hops
  // Same counters restricted to ticks whose concurrent fault count is within
  // the overlay's declared budget (where the FT guarantee applies).
  std::uint64_t routed_in_budget = 0;
  std::uint64_t non_exact_in_budget = 0;  // MUST be 0 for a valid FT overlay
};

class FailureSimulator {
 public:
  FailureSimulator(const Graph& g, Vertex source, SimConfig config);

  // Registers an overlay (edge ids of g) with a declared fault budget f.
  // Names must be unique and must not shadow the service's "identity" entry.
  void add_overlay(std::string name, std::span<const EdgeId> edges,
                   unsigned fault_budget);

  // Runs the process and returns one metrics row per overlay.
  [[nodiscard]] std::vector<OverlayMetrics> run();

  // Fault-count histogram of the last run (index = #concurrent faults).
  [[nodiscard]] const std::vector<std::uint64_t>& fault_histogram() const {
    return fault_histogram_;
  }

  // Serving counters of the routing service (cache hits across tick-states).
  [[nodiscard]] ServiceStats service_stats() const { return service_.stats(); }

 private:
  struct Overlay {
    std::string name;
    std::size_t entry;  // pool entry handle in service_
    unsigned budget;
  };

  const Graph* g_;
  Vertex source_;
  SimConfig config_;
  OracleService service_;
  std::vector<Overlay> overlays_;
  std::vector<std::uint64_t> fault_histogram_;
};

}  // namespace ftbfs
