// Incremental JSONL framing for the socket front-end.
//
// TCP hands the server arbitrary byte chunks: half a line, three lines and a
// fragment, one byte at a time. LineFramer reassembles newline-terminated
// request lines from that stream with bounded memory — a line longer than
// `max_line_bytes` flips the framer into discard mode (bytes are dropped, not
// buffered) until its newline arrives, then surfaces as one `oversized`
// callback so the connection can answer with a parse error instead of either
// buffering without bound or killing the stream. Pure byte-level state
// machine: no allocation proportional to input beyond the one line buffer,
// no syscalls, trivially unit-testable (tests/test_protocol_fuzz.cpp).
#pragma once

#include <cstddef>
#include <string>

namespace ftbfs {

class LineFramer {
 public:
  explicit LineFramer(std::size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  // Feeds `n` bytes; invokes on_line(const std::string& line, bool oversized)
  // once per completed line, in input order. `line` has the newline (and one
  // trailing '\r', for telnet-style clients) stripped; for oversized lines it
  // is empty — the content was discarded, only the event is delivered.
  // Reentrancy: on_line must not feed this framer.
  template <typename OnLine>
  void feed(const char* data, std::size_t n, OnLine&& on_line) {
    for (std::size_t i = 0; i < n; ++i) {
      const char c = data[i];
      if (c == '\n') {
        if (discarding_) {
          discarding_ = false;
          buf_.clear();
          on_line(buf_, /*oversized=*/true);
        } else {
          if (!buf_.empty() && buf_.back() == '\r') buf_.pop_back();
          on_line(buf_, /*oversized=*/false);
          buf_.clear();
        }
        continue;
      }
      if (discarding_) continue;
      if (buf_.size() >= max_line_bytes_) {
        // Over the cap mid-line: stop buffering, remember only the fact.
        discarding_ = true;
        buf_.clear();
        continue;
      }
      buf_.push_back(c);
    }
  }

  // True when bytes of an unterminated line are pending (or being discarded).
  // A stream that ends mid-line is a truncated request: the caller decides
  // whether that deserves a parse error (it never silently serves).
  [[nodiscard]] bool mid_line() const { return !buf_.empty() || discarding_; }

  [[nodiscard]] std::size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  std::string buf_;
  std::size_t max_line_bytes_;
  bool discarding_ = false;
};

}  // namespace ftbfs
