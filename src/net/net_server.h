// Non-blocking socket front-end for `ftbfs serve --listen`.
//
// One epoll event loop (the thread that calls run()) owns every socket:
// it accepts connections, reassembles JSONL request lines (net/framing.h),
// and writes response bytes. A pool of worker threads owns every answer:
// lines flow loop → BoundedQueue → workers, each worker runs the same
// LineJob parse/admit/finish pipeline the stdin serve loops use
// (service/tenant.h), and finished response lines flow back worker → loop
// through per-connection buffers plus an eventfd wakeup. The loop never
// computes and the workers never touch a socket.
//
// Ordering. Responses on one connection are emitted in that connection's
// request order when `ordered` is set (a per-connection resequencer holds
// out-of-order completions back); relaxed mode emits in completion order and
// stamps `seq` (the connection-local request index) into responses to id-less
// requests so they stay correlatable — exactly the stdin contract, applied
// per connection. Cross-connection order is never defined.
//
// Backpressure, two rings of it, both by *parking the connection* (dropping
// its EPOLLIN interest so the kernel's TCP window does the rest):
//   * admission ring — the BoundedQueue is full: parsed lines wait in the
//     connection's backlog and the loop retries on the next worker wakeup;
//   * write ring — the peer is not reading: once the connection's pending
//     output exceeds `write_park_bytes`, reading stops until it drains.
// A slow or malicious client therefore costs O(its own buffers), never
// unbounded server memory, and never stalls other connections.
//
// Graceful drain: request_shutdown() (async-signal-safe — one write to a
// self-pipe) stops the listener, keeps serving every fully received line,
// flushes every response, then run() returns. Bytes of half-received lines
// are dropped; the client that wants its tail answered half-closes (shutdown
// SHUT_WR) and reads to EOF.
//
// Degradation (docs/robustness.md). Parking is bounded: a connection whose
// backlog has waited on a full admission FIFO past `shed_after_ms` gets its
// backlog answered `overloaded` from the loop thread instead of parking
// forever; a connection whose write buffer has made no progress for
// `write_stall_ms` (the peer stopped reading) is evicted. Both timers run on
// a coarse epoll-timeout sweep that only ticks while some connection is
// parked or stalled — an idle or healthy server still blocks indefinitely.
//
// Reload: request_reload() (async-signal-safe, the SIGHUP path) runs
// `on_reload` on the loop thread — the CLI points it at
// TenantRegistry::reload, so tenants appear/retire/re-quota without a
// restart while workers keep serving; in-flight requests pin their tenant
// until they finish (service/tenant.h).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/framing.h"
#include "service/tenant.h"
#include "service/work_queue.h"

namespace ftbfs {

struct NetServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; NetServer::port() has the result
  unsigned threads = 1;
  bool ordered = true;  // per-connection response order (see file comment)
  std::size_t max_line_bytes = 1u << 20;
  std::size_t write_park_bytes = 1u << 20;
  std::size_t queue_capacity = 0;  // admission queue slots; 0 = 16 * threads
  // Queue-pressure budget: a backlog parked on a full admission FIFO longer
  // than this is answered `overloaded` instead of waiting. 0 = park forever
  // (the pre-PR-9 behavior).
  std::int64_t shed_after_ms = 2000;
  // Slow-client eviction: a connection whose pending output makes no progress
  // for this long is dropped. 0 = never evict.
  std::int64_t write_stall_ms = 30000;
  // Invoked on the loop thread when request_reload() fires (the SIGHUP path).
  // Exceptions are caught and logged; the server keeps serving either way.
  std::function<void()> on_reload;
};

class NetServer {
 public:
  // Binds and listens immediately (so callers can print the port before
  // run()); throws std::runtime_error with errno context on failure.
  NetServer(TenantRegistry& registry, NetServerConfig config);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // The bound port (resolves config.port == 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  // Runs the event loop until request_shutdown() and the drain completes.
  // Call from exactly one thread; worker threads are spawned and joined
  // inside.
  void run();

  // Async-signal-safe shutdown trigger (callable from a signal handler).
  void request_shutdown();

  // Async-signal-safe reload trigger: schedules config_.on_reload on the
  // loop thread (callable from a SIGHUP handler).
  void request_reload();

  // --- stats (valid while running and after run() returns) -----------------
  [[nodiscard]] const WireCounters& wire_counters() const { return counters_; }
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return conns_accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t responses_sent() const {
    return responses_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connections_shed_fd_limit() const {
    return conns_shed_fdlimit_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connections_evicted_stalled() const {
    return conns_evicted_stalled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reloads_completed() const {
    return reloads_completed_.load(std::memory_order_relaxed);
  }

 private:
  // One queued request line. `conn` stays valid until the job's deliver():
  // the connection's inflight count pins it through the zombie list.
  struct Conn;
  struct NetJob {
    Conn* conn = nullptr;
    std::uint64_t seq = 0;  // connection-local request index
    bool oversized = false;
    std::string line;
    // When the bytes arrived — the moment the request's deadline clock
    // started, covering queue wait as well as execution.
    std::chrono::steady_clock::time_point arrival{};
  };

  struct Conn {
    explicit Conn(int fd_, std::size_t max_line)
        : fd(fd_), framer(max_line) {}

    int fd;
    LineFramer framer;

    // --- loop-thread-only state ---------------------------------------------
    std::uint64_t next_seq = 0;        // next request index to assign
    std::deque<NetJob> backlog;        // parsed lines the queue refused
    bool read_closed = false;          // peer sent EOF
    bool reading = true;               // EPOLLIN currently armed
    bool writing = false;              // EPOLLOUT currently armed
    bool parked_for_queue = false;     // in queue_waiters_
    bool stalled = false;              // pending output, no write progress
    std::chrono::steady_clock::time_point park_since{};   // parked_for_queue
    std::chrono::steady_clock::time_point stall_since{};  // stalled

    // --- worker/loop shared state (out_mutex) -------------------------------
    std::mutex out_mutex;
    std::string out;                       // bytes awaiting write()
    std::size_t out_off = 0;               // prefix of `out` already sent
    std::uint64_t next_out = 0;            // ordered mode: next seq to emit
    std::map<std::uint64_t, std::string> reorder;  // ordered mode holdback

    // --- cross-thread flags -------------------------------------------------
    std::atomic<bool> dead{false};           // error/hangup: drop everything
    std::atomic<std::uint64_t> inflight{0};  // jobs queued or being served
    std::atomic<bool> in_ready{false};       // already on the ready list
  };

  void worker_main();
  void deliver(Conn& c, std::uint64_t seq, std::string line);

  void handle_accept();
  void shed_via_spare_fd();     // EMFILE/ENFILE: accept+close one connection
  void handle_readable(Conn& c);
  bool flush_writes(Conn& c);   // false: peer gone, caller must drop
  bool drain_backlog(Conn& c);  // false: queue full, connection parked
  void shed_backlog(Conn& c);   // answer the backlog `overloaded`, unpark
  void update_interest(Conn& c, bool want_read, bool want_write);
  void refresh_after_io(Conn& c);  // flush + recompute interest + finish
  void drop_conn(Conn& c);      // error path: discard state, close socket
  void retire_conn(Conn& c);    // clean path: close once fully flushed
  void maybe_finish_conn(Conn& c);
  void process_wakeups();
  void reap_zombies();
  void begin_drain();
  void do_reload();
  void sweep_timers();          // shed overdue parks, evict stalled writers
  [[nodiscard]] int loop_timeout_ms() const;
  [[nodiscard]] bool drained() const;

  TenantRegistry* registry_;
  NetServerConfig config_;
  WireCounters counters_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;      // eventfd: workers → loop
  int sig_pipe_[2] = {-1, -1};  // self-pipe: shutdown/reload signals → loop
  // Reserved fd: released under EMFILE/ENFILE so the pending connection can
  // be accepted and closed (shed) instead of spinning at the fd limit.
  int spare_fd_ = -1;
  std::uint16_t port_ = 0;

  std::unique_ptr<BoundedQueue<NetJob>> queue_;
  std::map<int, std::unique_ptr<Conn>> conns_;        // fd → live connection
  std::vector<std::unique_ptr<Conn>> zombies_;        // closed, jobs inflight
  std::vector<Conn*> queue_waiters_;                  // parked: queue was full
  std::vector<int> pending_close_;  // close deferred past the event batch:
                                    // the kernel must not reuse an fd while
                                    // stale events for it are still queued

  std::mutex ready_mutex_;
  std::vector<Conn*> ready_;  // conns with fresh output (workers append)

  bool draining_ = false;
  bool reload_happened_ = false;  // enables retired-tenant reaping in sweeps
  std::size_t stalled_conns_ = 0;  // conns with `stalled` set (loop-only)
  std::atomic<std::uint64_t> jobs_outstanding_{0};  // framed but not delivered
  std::atomic<std::uint64_t> conns_accepted_{0};
  std::atomic<std::uint64_t> responses_sent_{0};
  std::atomic<std::uint64_t> conns_shed_fdlimit_{0};
  std::atomic<std::uint64_t> conns_evicted_stalled_{0};
  std::atomic<std::uint64_t> reloads_completed_{0};
};

}  // namespace ftbfs
