#include "net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "service/json.h"
#include "service/protocol.h"
#include "util/failpoint.h"

namespace ftbfs {

namespace {

[[noreturn]] void die(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

void close_quiet(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

std::int64_t ms_since(std::chrono::steady_clock::time_point since,
                      std::chrono::steady_clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(now - since)
      .count();
}

// Best-effort "id" extraction from a raw request line the server is about to
// shed without parsing properly. Shedding is rare and loop-side; one JSON
// parse per shed line is cheap next to the BFS it replaces.
std::int64_t peek_request_id(const std::string& line) {
  JsonValue root;
  std::string err;
  if (!JsonReader(line).parse(root, err) ||
      root.kind != JsonValue::Kind::kObject) {
    return -1;
  }
  const JsonValue* id = root.find("id");
  std::uint64_t u = 0;
  if (id == nullptr || !json_read_uint(*id, u) || u > (1ull << 62)) return -1;
  return static_cast<std::int64_t>(u);
}

}  // namespace

NetServer::NetServer(TenantRegistry& registry, NetServerConfig config)
    : registry_(&registry), config_(std::move(config)) {
  if (config_.threads == 0) config_.threads = 1;
  if (config_.queue_capacity == 0) {
    config_.queue_capacity = 16u * config_.threads;
  }
  queue_ = std::make_unique<BoundedQueue<NetJob>>(config_.queue_capacity);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) die("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("invalid listen address '" + config_.host +
                             "' (IPv4 dotted quad expected)");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    die("bind");
  }
  if (::listen(listen_fd_, 512) != 0) die("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    die("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) die("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) die("eventfd");
  if (::pipe2(sig_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) die("pipe2");

  auto watch = [&](int fd) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) die("epoll_ctl");
  };
  watch(listen_fd_);
  watch(wake_fd_);
  watch(sig_pipe_[0]);

  // The EMFILE escape hatch (see shed_via_spare_fd). Failing to reserve it is
  // survivable — the server just loses the shedding behavior at the limit.
  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
}

NetServer::~NetServer() {
  for (auto& [fd, conn] : conns_) close_quiet(conn->fd);
  close_quiet(listen_fd_);
  close_quiet(wake_fd_);
  close_quiet(sig_pipe_[0]);
  close_quiet(sig_pipe_[1]);
  close_quiet(spare_fd_);
  close_quiet(epoll_fd_);
}

void NetServer::request_shutdown() {
  const char byte = 'q';
  // Async-signal-safe; a full pipe means a shutdown is already pending.
  [[maybe_unused]] const ssize_t n = ::write(sig_pipe_[1], &byte, 1);
}

void NetServer::request_reload() {
  const char byte = 'r';
  [[maybe_unused]] const ssize_t n = ::write(sig_pipe_[1], &byte, 1);
}

// ---------------------------------------------------------------------------
// Worker side: queue → LineJob → per-connection output buffer.

void NetServer::worker_main() {
  while (auto job = queue_->pop()) {
    std::string line;
    const bool stamp_seq = !config_.ordered;
    if (job->oversized) {
      counters_.parse_errors.fetch_add(1, std::memory_order_relaxed);
      ParsedRequest pr;
      pr.status = ParseStatus::kSyntax;
      pr.error = "request line exceeds " +
                 std::to_string(config_.max_line_bytes) + " bytes";
      line = format_parse_error_line(
          pr, stamp_seq ? static_cast<std::int64_t>(job->seq) : -1);
    } else {
      LineJob lj(*registry_, job->line, static_cast<std::int64_t>(job->seq),
                 stamp_seq, counters_, job->arrival);
      lj.admit();
      line = lj.finish();
    }
    Conn* c = job->conn;
    deliver(*c, job->seq, std::move(line));
    // Ready-list insert must happen BEFORE the inflight decrement: the loop
    // only frees a connection it observes with inflight == 0 && !in_ready, so
    // this order guarantees the worker never touches a freed Conn.
    bool expected = false;
    if (c->in_ready.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
      const std::lock_guard lock(ready_mutex_);
      ready_.push_back(c);
    }
    c->inflight.fetch_sub(1, std::memory_order_acq_rel);
    jobs_outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }
}

void NetServer::deliver(Conn& c, std::uint64_t seq, std::string line) {
  if (c.dead.load(std::memory_order_acquire)) return;
  const std::lock_guard lock(c.out_mutex);
  const auto append = [&](std::string& l) {
    c.out += l;
    c.out += '\n';
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
  };
  if (!config_.ordered) {
    append(line);
    return;
  }
  if (seq != c.next_out) {
    // Out-of-order completion: hold it back. Bounded by the jobs in flight
    // (queue capacity + workers), all of which belong to dense seqs.
    c.reorder.emplace(seq, std::move(line));
    return;
  }
  append(line);
  ++c.next_out;
  while (!c.reorder.empty() && c.reorder.begin()->first == c.next_out) {
    append(c.reorder.begin()->second);
    c.reorder.erase(c.reorder.begin());
    ++c.next_out;
  }
}

// ---------------------------------------------------------------------------
// Loop side.

void NetServer::update_interest(Conn& c, bool want_read, bool want_write) {
  if (c.fd < 0 || (want_read == c.reading && want_write == c.writing)) return;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = c.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
    c.reading = want_read;
    c.writing = want_write;
  }
}

void NetServer::shed_via_spare_fd() {
  // At the fd limit, accept() fails without consuming the pending connection,
  // so a level-triggered loop would spin on EPOLLIN forever. Releasing the
  // reserved fd makes room to accept the connection — then we close it
  // immediately (shed: the client sees a clean RST/EOF, not a dead server)
  // and re-reserve.
  if (spare_fd_ < 0) return;  // reserve failed at startup: nothing to shed with
  close_quiet(spare_fd_);
  const int pending =
      ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (pending >= 0) {
    ::close(pending);
    conns_shed_fdlimit_.fetch_add(1, std::memory_order_relaxed);
  }
  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
}

void NetServer::handle_accept() {
  static fp::Failpoint& fp_accept = fp::site("net.accept");
  while (listen_fd_ >= 0) {
    int fd;
    if (const int e = fp::fail_errno(fp_accept); e != 0) {
      fd = -1;
      errno = e;
    } else {
      fd = ::accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        shed_via_spare_fd();
        continue;
      }
      break;  // EAGAIN, or a transient error (ECONNABORTED, ...)
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::make_unique<Conn>(fd, config_.max_line_bytes));
    conns_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool NetServer::drain_backlog(Conn& c) {
  while (!c.backlog.empty()) {
    NetJob& job = c.backlog.front();
    c.inflight.fetch_add(1, std::memory_order_acq_rel);
    if (!queue_->try_push(job)) {
      c.inflight.fetch_sub(1, std::memory_order_acq_rel);
      if (!c.parked_for_queue) {
        c.parked_for_queue = true;
        c.park_since = std::chrono::steady_clock::now();
        queue_waiters_.push_back(&c);
      }
      return false;
    }
    c.backlog.pop_front();
  }
  c.parked_for_queue = false;
  return true;
}

void NetServer::shed_backlog(Conn& c) {
  // The admission FIFO has been full past the shed budget: parking longer
  // only converts load into queueing latency the client never asked for.
  // Answer every parked line `overloaded` from the loop thread — the lines
  // were already framed and seq-stamped, so responses take the normal
  // (ordered) deliver path and interleave correctly with worker output.
  while (!c.backlog.empty()) {
    NetJob job = std::move(c.backlog.front());
    c.backlog.pop_front();
    counters_.overload_sheds.fetch_add(1, std::memory_order_relaxed);
    QueryResponse resp;
    resp.status = StatusCode::kOverloaded;
    resp.error = "server overloaded: admission queue full past shed budget";
    resp.id = job.oversized ? -1 : peek_request_id(job.line);
    if (resp.id < 0 && !config_.ordered) {
      resp.seq = static_cast<std::int64_t>(job.seq);
    }
    deliver(c, job.seq, format_response_line(resp));
    jobs_outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (c.parked_for_queue) {
    c.parked_for_queue = false;
    std::erase(queue_waiters_, &c);
  }
  refresh_after_io(c);
}

void NetServer::handle_readable(Conn& c) {
  // A parked connection can still see level-triggered EPOLLIN events that
  // were queued before its interest was dropped; never read past a backlog.
  if (!c.backlog.empty()) return;
  static fp::Failpoint& fp_read = fp::site("net.read");
  const auto now = std::chrono::steady_clock::now();
  char buf[65536];
  while (true) {
    ssize_t n;
    if (const int e = fp::fail_errno(fp_read); e != 0) {
      n = -1;
      errno = e;
    } else {
      n = ::read(c.fd, buf, sizeof buf);
    }
    if (n > 0) {
      c.framer.feed(buf, static_cast<std::size_t>(n),
                    [&](const std::string& line, bool oversized) {
                      NetJob job;
                      job.conn = &c;
                      job.seq = c.next_seq++;
                      job.oversized = oversized;
                      job.line = line;
                      job.arrival = now;
                      jobs_outstanding_.fetch_add(1, std::memory_order_acq_rel);
                      c.backlog.push_back(std::move(job));
                    });
      if (!drain_backlog(c)) break;  // admission ring full: park
      bool write_parked;
      {
        const std::lock_guard lock(c.out_mutex);
        write_parked = c.out.size() - c.out_off > config_.write_park_bytes;
      }
      if (write_parked) break;  // peer not reading its answers: park
      continue;
    }
    if (n == 0) {
      c.read_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    drop_conn(c);
    return;
  }
  refresh_after_io(c);
}

bool NetServer::flush_writes(Conn& c) {
  if (c.dead.load(std::memory_order_acquire) || c.fd < 0) return true;
  static fp::Failpoint& fp_write = fp::site("net.write");
  bool progressed = false;
  const std::lock_guard lock(c.out_mutex);
  while (c.out_off < c.out.size()) {
    std::size_t want = c.out.size() - c.out_off;
    ssize_t n;
    const fp::Outcome o = fp::eval(fp_write);
    if (o.kind == fp::Outcome::Kind::kErr) {
      n = -1;
      errno = o.err;
    } else {
      if (o.kind == fp::Outcome::Kind::kShortWrite) want = (want + 1) / 2;
      if (o.kind == fp::Outcome::Kind::kSleep) {
        std::this_thread::sleep_for(std::chrono::milliseconds(o.ms));
      }
      n = ::send(c.fd, c.out.data() + c.out_off, want, MSG_NOSIGNAL);
    }
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      progressed = true;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;  // peer gone; caller drops the connection
  }
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
  } else if (c.out_off > (1u << 16)) {
    c.out.erase(0, c.out_off);
    c.out_off = 0;
  }
  // Stall bookkeeping (loop-only state, but cheap to keep under the lock):
  // "stalled" means this flush left bytes pending — the peer's receive
  // window cannot take everything we owe it. The clock resets on any
  // progress, so a merely slow reader never accumulates toward eviction.
  // The conn must stay in the stalled set as long as bytes are pending, even
  // across a flush that progressed: a peer that stops reading entirely
  // generates no further epoll events, so sweep_timers() (driven by the
  // 20ms loop timeout that `stalled_conns_ > 0` keeps alive) is the only
  // thing left that can notice the deadline passing.
  const bool blocked = c.out_off < c.out.size();
  if (!blocked) {
    if (c.stalled) {
      c.stalled = false;
      --stalled_conns_;
    }
  } else if (!c.stalled) {
    c.stalled = true;
    c.stall_since = std::chrono::steady_clock::now();
    ++stalled_conns_;
  } else if (progressed) {
    c.stall_since = std::chrono::steady_clock::now();
  }
  return true;
}

void NetServer::refresh_after_io(Conn& c) {
  if (c.dead.load(std::memory_order_relaxed) || c.fd < 0) return;
  if (!flush_writes(c)) {
    drop_conn(c);
    return;
  }
  std::size_t pending;
  {
    const std::lock_guard lock(c.out_mutex);
    pending = c.out.size() - c.out_off;
  }
  const bool want_read = !draining_ && !c.read_closed && c.backlog.empty() &&
                         !c.parked_for_queue &&
                         pending <= config_.write_park_bytes;
  update_interest(c, want_read, pending > 0);
  maybe_finish_conn(c);
}

void NetServer::maybe_finish_conn(Conn& c) {
  if (c.dead.load(std::memory_order_relaxed) || c.fd < 0) return;
  if (!c.read_closed && !draining_) return;
  if (!c.backlog.empty()) return;
  if (c.inflight.load(std::memory_order_acquire) != 0) return;
  if (c.in_ready.load(std::memory_order_acquire)) return;
  {
    const std::lock_guard lock(c.out_mutex);
    if (c.out_off < c.out.size() || !c.reorder.empty()) return;
  }
  retire_conn(c);
}

void NetServer::retire_conn(Conn& c) {
  if (c.stalled) {
    c.stalled = false;
    --stalled_conns_;
  }
  const int fd = c.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  c.fd = -1;
  pending_close_.push_back(fd);
  conns_.erase(fd);  // frees the Conn: nothing references it anymore
}

void NetServer::drop_conn(Conn& c) {
  if (c.dead.load(std::memory_order_relaxed)) return;
  c.dead.store(true, std::memory_order_release);
  jobs_outstanding_.fetch_sub(c.backlog.size(), std::memory_order_acq_rel);
  c.backlog.clear();
  if (c.stalled) {
    c.stalled = false;
    --stalled_conns_;
  }
  if (c.parked_for_queue) {
    c.parked_for_queue = false;
    std::erase(queue_waiters_, &c);
  }
  const int fd = c.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  c.fd = -1;
  pending_close_.push_back(fd);
  // Workers may still hold jobs for this connection: park it on the zombie
  // list until its inflight count hits zero, then reap.
  auto it = conns_.find(fd);
  zombies_.push_back(std::move(it->second));
  conns_.erase(it);
}

void NetServer::reap_zombies() {
  std::erase_if(zombies_, [](const std::unique_ptr<Conn>& z) {
    return z->inflight.load(std::memory_order_acquire) == 0 &&
           !z->in_ready.load(std::memory_order_acquire);
  });
  // After a reload, tenants the new manifest dropped sit retired until their
  // last pinned request finishes; sweep them out alongside zombie conns.
  if (reload_happened_) registry_->reap_retired();
}

void NetServer::process_wakeups() {
  std::uint64_t count = 0;
  [[maybe_unused]] const ssize_t n = ::read(wake_fd_, &count, sizeof count);
  std::vector<Conn*> batch;
  {
    const std::lock_guard lock(ready_mutex_);
    batch.swap(ready_);
  }
  for (Conn* c : batch) {
    c->in_ready.store(false, std::memory_order_release);
    if (c->dead.load(std::memory_order_relaxed)) continue;
    refresh_after_io(*c);
  }
  // Every worker completion freed a queue slot: give parked connections
  // another shot at admission.
  std::vector<Conn*> waiters;
  waiters.swap(queue_waiters_);
  for (Conn* c : waiters) {
    if (c->dead.load(std::memory_order_relaxed)) continue;
    c->parked_for_queue = false;
    if (drain_backlog(*c)) refresh_after_io(*c);
  }
  reap_zombies();
}

void NetServer::begin_drain() {
  if (draining_) return;
  draining_ = true;
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    close_quiet(listen_fd_);
  }
  // Stop reading everywhere; serve what was already framed, flush, close.
  // Iterate over fds (not iterators): maybe_finish_conn erases from conns_.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) {
    auto it = conns_.find(fd);
    if (it != conns_.end()) refresh_after_io(*it->second);
  }
}

bool NetServer::drained() const {
  return draining_ && conns_.empty() && zombies_.empty() &&
         jobs_outstanding_.load(std::memory_order_acquire) == 0;
}

void NetServer::do_reload() {
  if (!config_.on_reload) return;
  try {
    config_.on_reload();
    reload_happened_ = true;
    reloads_completed_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& ex) {
    // A bad manifest must not take the server down: keep serving under the
    // previous configuration (TenantRegistry::reload is all-or-nothing).
    std::fprintf(stderr, "ftbfs serve: manifest reload failed: %s\n",
                 ex.what());
  }
}

void NetServer::sweep_timers() {
  const bool any_parked = !queue_waiters_.empty() && config_.shed_after_ms > 0;
  const bool any_stalled = stalled_conns_ > 0 && config_.write_stall_ms > 0;
  if (!any_parked && !any_stalled) return;
  const auto now = std::chrono::steady_clock::now();
  if (any_parked) {
    // Copy: shed_backlog unparks (mutates queue_waiters_).
    const std::vector<Conn*> waiters = queue_waiters_;
    for (Conn* c : waiters) {
      if (c->dead.load(std::memory_order_relaxed) || !c->parked_for_queue) {
        continue;
      }
      if (ms_since(c->park_since, now) >= config_.shed_after_ms) {
        shed_backlog(*c);
      }
    }
  }
  if (any_stalled) {
    std::vector<Conn*> victims;
    for (const auto& [fd, conn] : conns_) {
      if (conn->stalled &&
          ms_since(conn->stall_since, now) >= config_.write_stall_ms) {
        victims.push_back(conn.get());
      }
    }
    for (Conn* c : victims) {
      conns_evicted_stalled_.fetch_add(1, std::memory_order_relaxed);
      drop_conn(*c);
    }
  }
}

int NetServer::loop_timeout_ms() const {
  // Block indefinitely unless some connection's degradation timer is running:
  // a healthy or idle server never wakes up just to look at a clock.
  const bool parked = !queue_waiters_.empty() && config_.shed_after_ms > 0;
  const bool stalled = stalled_conns_ > 0 && config_.write_stall_ms > 0;
  return (parked || stalled) ? 20 : -1;
}

void NetServer::run() {
  std::vector<std::thread> workers;
  workers.reserve(config_.threads);
  for (unsigned i = 0; i < config_.threads; ++i) {
    workers.emplace_back([this] { worker_main(); });
  }

  epoll_event events[64];
  while (!drained()) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, loop_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      die("epoll_wait");
    }
    bool wake = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        wake = true;
        continue;
      }
      if (fd == sig_pipe_[0]) {
        char sink[16];
        bool want_drain = false;
        bool want_reload = false;
        ssize_t got;
        while ((got = ::read(sig_pipe_[0], sink, sizeof sink)) > 0) {
          for (ssize_t j = 0; j < got; ++j) {
            if (sink[j] == 'r') {
              want_reload = true;
            } else {
              want_drain = true;
            }
          }
        }
        if (want_reload && !draining_) do_reload();
        if (want_drain) begin_drain();
        continue;
      }
      if (fd == listen_fd_) {
        handle_accept();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // dropped earlier in this batch
      Conn& c = *it->second;
      if ((ev & EPOLLERR) != 0) {
        drop_conn(c);
        continue;
      }
      if ((ev & (EPOLLIN | EPOLLHUP)) != 0) handle_readable(c);
      // handle_readable may have dropped or retired the connection.
      auto again = conns_.find(fd);
      if (again == conns_.end() || again->second->fd < 0) continue;
      if ((ev & EPOLLOUT) != 0) refresh_after_io(*again->second);
    }
    if (wake) process_wakeups();
    sweep_timers();
    reap_zombies();
    for (const int fd : pending_close_) ::close(fd);
    pending_close_.clear();
  }

  queue_->close();
  for (std::thread& w : workers) w.join();
}

}  // namespace ftbfs
