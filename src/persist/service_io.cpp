#include "persist/service_io.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "engine/registry.h"
#include "spath/bfs.h"

namespace ftbfs {

namespace {

[[noreturn]] void reject(const std::string& why) {
  throw SnapshotError(SnapshotStatus::kMalformed, why);
}

// Validates one baseline image as an exact BFS tree of `h` rooted at its
// source. The snapshot loader checked shapes only; this is where the tree
// meets the actual subgraph, so every id is re-checked against h and the
// distances are certified optimal (for every edge of h, levels differ by at
// most one — the standard BFS certificate) before any engine trusts them.
void validate_baseline(const BaselineImage& b, const Graph& h) {
  const Vertex n = h.num_vertices();
  const Vertex s = b.source;
  if (b.hops[s] != 0 || b.parent[s] != kInvalidVertex ||
      b.parent_edge[s] != kInvalidEdge) {
    reject("baseline source row is not a BFS root");
  }
  Vertex reached = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (b.hops[v] == kInfHops) {
      if (b.parent[v] != kInvalidVertex || b.parent_edge[v] != kInvalidEdge) {
        reject("unreached baseline vertex has a parent");
      }
      continue;
    }
    ++reached;
    if (v == s) continue;
    const Vertex p = b.parent[v];
    const EdgeId pe = b.parent_edge[v];
    if (p >= n || b.hops[p] == kInfHops || b.hops[p] + 1 != b.hops[v]) {
      reject("baseline parent levels are inconsistent");
    }
    if (pe >= h.num_edges()) reject("baseline parent edge out of range");
    const Edge& e = h.edge(pe);
    if (!((e.u == v && e.v == p) || (e.v == v && e.u == p))) {
      reject("baseline parent edge does not join child and parent");
    }
  }
  // Distance optimality: a tree-consistent labeling could still overshoot
  // (levels along a detour); hops are true BFS distances iff no h edge spans
  // more than one level and reachability is edge-closed.
  for (const Edge& e : h.edges()) {
    const std::uint32_t du = b.hops[e.u];
    const std::uint32_t dv = b.hops[e.v];
    if ((du == kInfHops) != (dv == kInfHops)) {
      reject("baseline reachability is not closed under h's edges");
    }
    if (du != kInfHops && (du > dv + 1 || dv > du + 1)) {
      reject("baseline hops are not shortest distances in h");
    }
  }
  if (b.visit_order.size() != reached || b.visit_order.front() != s) {
    reject("baseline visit order does not start at the source or miscounts");
  }
  std::vector<bool> seen(n, false);
  std::uint32_t prev_hops = 0;
  for (const Vertex v : b.visit_order) {
    if (v >= n || seen[v] || b.hops[v] == kInfHops) {
      reject("baseline visit order is not a permutation of reached vertices");
    }
    if (b.hops[v] < prev_hops) {
      reject("baseline visit order is not level-monotone");
    }
    prev_hops = b.hops[v];
    seen[v] = true;
  }
}

}  // namespace

SnapshotImage PersistAccess::export_service(const OracleService& service,
                                            bool include_cache) {
  SnapshotImage image;
  image.graph = *service.g_;
  {
    const std::shared_lock pool_lock(service.pool_mutex_);
    for (std::size_t i = 1; i < service.entries_.size(); ++i) {
      const OracleService::Entry& e = service.entries_[i];
      EntryImage out;
      out.name = e.name;
      out.algorithm = e.algorithm;
      out.source = e.source;
      out.budget = e.budget;
      out.model = e.model;
      out.exact = e.exact;
      out.edges.reserve(static_cast<std::size_t>(e.edge_count));
      for (EdgeId id = 0; id < e.in_h.size(); ++id) {
        if (e.in_h[id]) out.edges.push_back(id);
      }
      image.entries.push_back(std::move(out));
    }
    for (std::size_t i = 0; i < service.entries_.size(); ++i) {
      // const_cast confined to reaching the engine's baseline store mutex;
      // the export only reads.
      auto& engine = const_cast<FaultQueryEngine&>(service.entries_[i].engine);
      FaultQueryEngine::BaselineStore& store = *engine.baselines_;
      const std::shared_lock lock(store.mutex);
      for (const auto& [source, base] : store.entries) {
        BaselineImage out;
        out.entry = static_cast<std::uint32_t>(i);
        out.source = source;
        out.hops = base->tree.hops;
        out.parent = base->tree.parent;
        out.parent_edge = base->tree.parent_edge;
        // rank is the inverse of the visit order; invert it back. Reached
        // count == number of finite ranks == number of finite hops.
        std::size_t reached = 0;
        for (const std::uint32_t r : base->rank) {
          if (r != static_cast<std::uint32_t>(-1)) ++reached;
        }
        out.visit_order.resize(reached);
        for (Vertex v = 0; v < base->rank.size(); ++v) {
          const std::uint32_t r = base->rank[v];
          if (r != static_cast<std::uint32_t>(-1)) out.visit_order[r] = v;
        }
        const Vertex n = service.g_->num_vertices();
        out.preorder_pos.resize(n);
        out.subtree_size.resize(n);
        for (Vertex v = 0; v < n; ++v) {
          out.preorder_pos[v] = base->index.preorder_index(v);
          out.subtree_size[v] = base->index.subtree_size(v);
        }
        image.baselines.push_back(std::move(out));
      }
    }
  }
  if (include_cache) {
    service.cache_.for_each_line(
        [&](std::span<const std::uint32_t> words,
            const ShardedScenarioCache::Line& line) {
          CacheLineImage out;
          out.key_words.assign(words.begin(), words.end());
          out.delta = line.base != nullptr;
          if (out.delta) {
            out.diff = line.diff;
          } else {
            out.hops = line.hops;
          }
          image.cache_lines.push_back(std::move(out));
        });
  }
  return image;
}

void PersistAccess::restore_service(OracleService& service,
                                    const SnapshotImage& image,
                                    bool warm_cache) {
  FTBFS_EXPECTS(service.pool_size() == 1);  // freshly constructed: identity only

  // --- entries, in pool order so indices and names replay exactly ----------
  const BuilderRegistry& registry = BuilderRegistry::instance();
  for (const EntryImage& e : image.entries) {
    if (!e.algorithm.empty()) {
      if (const BuilderTraits* traits = registry.find(e.algorithm)) {
        if (traits->exact != e.exact) {
          reject("entry '" + e.name + "' records algorithm '" + e.algorithm +
                 "' as " + (e.exact ? "exact" : "approximate") +
                 ", but this build's registry declares the opposite");
        }
      }
      // An algorithm this build does not register is allowed: the structure's
      // edges stand on their own, the provenance is just unverifiable here.
    }
    const std::size_t idx = service.add_structure(e.name, e.source, e.budget,
                                                  e.model, e.edges, e.exact);
    const std::unique_lock lock(service.pool_mutex_);
    service.entries_[idx].algorithm = e.algorithm;
  }

  // --- baselines: validate against the restored H, then install ------------
  for (const BaselineImage& b : image.baselines) {
    if (b.entry >= service.entries_.size()) {
      reject("baseline names a pool entry the snapshot does not define");
    }
    FaultQueryEngine& engine = service.entries_[b.entry].engine;
    if (!engine.delta_options().enabled) continue;  // nothing would read it
    const Graph& h = engine.structure_graph();
    validate_baseline(b, h);
    BfsResult tree;
    tree.hops = b.hops;
    tree.parent = b.parent;
    tree.parent_edge = b.parent_edge;
    auto built = std::make_unique<FaultQueryEngine::Baseline>(
        h, std::move(tree), b.visit_order, b.source);
    // The stored TreeIndex arrays must agree with the index rebuilt from the
    // tree; a mismatch means the snapshot's sections contradict each other.
    for (Vertex v = 0; v < h.num_vertices(); ++v) {
      if (built->index.preorder_index(v) != b.preorder_pos[v] ||
          built->index.subtree_size(v) != b.subtree_size[v]) {
        reject("baseline tree index disagrees with the stored tree");
      }
    }
    FaultQueryEngine::BaselineStore& store = *engine.baselines_;
    const std::unique_lock lock(store.mutex);
    if (store.entries.size() >= FaultQueryEngine::kMaxBaselines) continue;
    const auto it = std::lower_bound(
        store.entries.begin(), store.entries.end(), b.source,
        [](const auto& entry, Vertex v) { return entry.first < v; });
    if (it != store.entries.end() && it->first == b.source) continue;
    store.entries.emplace(it, b.source, std::move(built));
  }

  // --- optional cache warm --------------------------------------------------
  if (!warm_cache || !service.cache_.enabled()) return;
  for (const CacheLineImage& line : image.cache_lines) {
    const std::size_t entry = line.key_words[0];
    if (entry >= service.entries_.size()) continue;
    const std::vector<std::uint32_t>* base = nullptr;
    if (line.delta) {
      // The diff is relative to the entry engine's per-source baseline
      // vector; resolve it (building the baseline if the snapshot carried
      // none) before reserving the line — a reserved line must be filled.
      base = service.entries_[entry].engine.baseline_hops(line.key_words[1]);
      if (base == nullptr) continue;
    }
    const ScenarioKeyView key{scenario_fingerprint(line.key_words),
                              line.key_words};
    ShardedScenarioCache::LinePtr slot = service.cache_.warm_insert(key);
    if (slot == nullptr) continue;  // present already or slice full
    if (line.delta) {
      ShardedScenarioCache::fill_delta(*slot, base, line.diff);
    } else {
      ShardedScenarioCache::fill(*slot, line.hops);
    }
  }
}

}  // namespace ftbfs
