#include "persist/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <thread>
#include <utility>

#include "util/concurrency.h"
#include "util/failpoint.h"

namespace ftbfs {

namespace {

// 8 bytes: product + container generation. Bumping the trailing digit is a
// full break (readers reject); in-place evolution goes through the version
// field + new section tags instead (docs/persistence.md "Versioning").
constexpr std::array<char, 8> kMagic = {'F', 'T', 'B', 'S', 'N', 'A', 'P', '1'};

constexpr std::uint32_t kSectionGraph = 1;
constexpr std::uint32_t kSectionEntries = 2;
constexpr std::uint32_t kSectionBaselines = 3;
constexpr std::uint32_t kSectionCache = 4;

// Fixed-size header prefix covered by the header CRC. 48 bytes, followed by
// the 4-byte CRC itself.
constexpr std::size_t kHeaderBytes = 48;
constexpr std::size_t kHeaderWithCrc = kHeaderBytes + 4;
// Per-section TOC record: tag, pad, offset, bytes, crc, pad.
constexpr std::size_t kTocRecordBytes = 32;

[[noreturn]] void fail(SnapshotStatus status, const std::string& why) {
  throw SnapshotError(status, why);
}

// --- little-endian scalar codec --------------------------------------------
// The format is defined little-endian; these helpers keep the file portable
// without betting the loader on the host byte order.

void put_u32(std::vector<char>& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::vector<char>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t read_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(read_u32(p)) |
         (static_cast<std::uint64_t>(read_u32(p + 4)) << 32);
}

// --- section payload writer ------------------------------------------------

struct ByteWriter {
  std::vector<char> bytes;

  void u8(std::uint8_t v) { bytes.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { put_u32(bytes, v); }
  void u64(std::uint64_t v) { put_u64(bytes, v); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes.insert(bytes.end(), s.begin(), s.end());
  }

  // Bulk arrays are the hot 90% of a snapshot; memcpy them on little-endian
  // hosts, spell out the conversion elsewhere.
  void u32_array(std::span<const std::uint32_t> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    if constexpr (std::endian::native == std::endian::little) {
      const std::size_t old = bytes.size();
      bytes.resize(old + v.size_bytes());
      std::memcpy(bytes.data() + old, v.data(), v.size_bytes());
    } else {
      for (const std::uint32_t x : v) u32(x);
    }
  }

  void u64_array(std::span<const std::uint64_t> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    if constexpr (std::endian::native == std::endian::little) {
      const std::size_t old = bytes.size();
      bytes.resize(old + v.size_bytes());
      std::memcpy(bytes.data() + old, v.data(), v.size_bytes());
    } else {
      for (const std::uint64_t x : v) u64(x);
    }
  }
};

// --- bounds-checked section reader -----------------------------------------
// Every get throws instead of reading past the section: a crafted length
// field can ask for anything, the cursor refuses anything the section does
// not contain.

struct ByteReader {
  const unsigned char* p;
  const unsigned char* end;
  const char* what;  // section name for error messages

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) {
      fail(SnapshotStatus::kMalformed,
           std::string(what) + " section ends mid-record");
    }
  }

  std::uint8_t u8() {
    need(1);
    return *p++;
  }

  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = read_u32(p);
    p += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    const std::uint64_t v = read_u64(p);
    p += 8;
    return v;
  }

  std::string str(std::size_t max_len) {
    const std::uint32_t len = u32();
    if (len > max_len) {
      fail(SnapshotStatus::kMalformed,
           std::string(what) + " string length " + std::to_string(len) +
               " exceeds the format cap");
    }
    need(len);
    std::string out(reinterpret_cast<const char*>(p), len);
    p += len;
    return out;
  }

  std::vector<std::uint32_t> u32_array(std::size_t max_count) {
    const std::uint32_t count = u32();
    if (count > max_count) {
      fail(SnapshotStatus::kMalformed,
           std::string(what) + " array of " + std::to_string(count) +
               " words exceeds the section's plausible size");
    }
    need(static_cast<std::size_t>(count) * 4);
    std::vector<std::uint32_t> out(count);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out.data(), p, static_cast<std::size_t>(count) * 4);
      p += static_cast<std::size_t>(count) * 4;
    } else {
      for (std::uint32_t& x : out) x = u32();
    }
    return out;
  }

  std::vector<std::uint64_t> u64_array(std::size_t max_count) {
    const std::uint32_t count = u32();
    if (count > max_count) {
      fail(SnapshotStatus::kMalformed,
           std::string(what) + " array of " + std::to_string(count) +
               " words exceeds the section's plausible size");
    }
    need(static_cast<std::size_t>(count) * 8);
    std::vector<std::uint64_t> out(count);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out.data(), p, static_cast<std::size_t>(count) * 8);
      p += static_cast<std::size_t>(count) * 8;
    } else {
      for (std::uint64_t& x : out) x = u64();
    }
    return out;
  }

  void done() const {
    if (p != end) {
      fail(SnapshotStatus::kMalformed,
           std::string(what) + " section has trailing bytes");
    }
  }
};

// --- file access -----------------------------------------------------------

// The whole file as a readable span: an mmap when the platform grants one, a
// buffered read into owned memory otherwise. Either way the loader parses
// one contiguous byte range with the same bounds-checked cursors.
class FileBytes {
 public:
  FileBytes(const std::string& path, bool try_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      fail(SnapshotStatus::kIoError,
           "cannot open '" + path + "': " + std::strerror(errno));
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      const int err = errno;
      ::close(fd);
      fail(SnapshotStatus::kIoError,
           "cannot stat '" + path + "': " + std::strerror(err));
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (try_mmap && size_ > 0) {
      // Failpoint `persist.mmap`: simulate mmap failing (filesystem without
      // mapping support) so the buffered fallback below stays exercised.
      static fp::Failpoint& fp_mmap = fp::site("persist.mmap");
      void* map = fp::fail_errno(fp_mmap) != 0
                      ? MAP_FAILED
                      : ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        map_ = map;
        data_ = static_cast<const unsigned char*>(map);
        ::close(fd);
        return;
      }
      // Graceful fallback: mmap can legitimately fail (filesystem without
      // mapping support, exhausted address space); a buffered read serves
      // the same bytes, just without demand paging.
    }
    owned_.resize(size_);
    std::size_t off = 0;
    while (off < size_) {
      const ssize_t got = ::read(fd, owned_.data() + off, size_ - off);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) {
        const int err = errno;
        ::close(fd);
        fail(SnapshotStatus::kIoError,
             "short read of '" + path + "': " + std::strerror(err));
      }
      off += static_cast<std::size_t>(got);
    }
    ::close(fd);
    data_ = owned_.data();
  }

  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;

  ~FileBytes() {
    if (map_ != nullptr) ::munmap(map_, size_);
  }

  [[nodiscard]] const unsigned char* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  void* map_ = nullptr;
  std::vector<unsigned char> owned_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

struct TocEntry {
  std::uint32_t tag = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
};

struct ParsedHeader {
  std::uint32_t version = 0;
  GraphFingerprint fingerprint;
  std::vector<TocEntry> toc;
};

// Validates magic/version/CRC/bounds and returns the TOC. Shared by the full
// loader and the header-only fingerprint peek.
ParsedHeader parse_header(const unsigned char* data, std::size_t size) {
  if (size < kHeaderWithCrc) {
    fail(SnapshotStatus::kTruncated,
         "file of " + std::to_string(size) + " bytes has no complete header");
  }
  if (std::memcmp(data, kMagic.data(), kMagic.size()) != 0) {
    fail(SnapshotStatus::kBadMagic, "not an ftbfs snapshot (magic mismatch)");
  }
  const std::uint32_t header_crc = read_u32(data + kHeaderBytes);
  if (crc32(data, kHeaderBytes) != header_crc) {
    fail(SnapshotStatus::kChecksum, "header CRC mismatch");
  }
  ParsedHeader h;
  h.version = read_u32(data + 8);
  if (h.version != kSnapshotVersion) {
    fail(SnapshotStatus::kBadVersion,
         "snapshot format v" + std::to_string(h.version) +
             "; this build reads v" + std::to_string(kSnapshotVersion));
  }
  const std::uint32_t section_count = read_u32(data + 12);
  h.fingerprint.vertices = read_u32(data + 16);
  h.fingerprint.edges = read_u32(data + 20);
  h.fingerprint.edge_hash = read_u64(data + 24);
  const std::uint64_t toc_offset = read_u64(data + 32);
  const std::uint64_t file_bytes = read_u64(data + 40);
  if (file_bytes != size) {
    fail(SnapshotStatus::kTruncated,
         "header says " + std::to_string(file_bytes) + " bytes, file has " +
             std::to_string(size));
  }
  // TOC bounds: section_count is attacker-controlled until the multiply is
  // checked, so do the arithmetic in a form that cannot overflow.
  if (section_count > 1024) {
    fail(SnapshotStatus::kMalformed,
         std::to_string(section_count) + " sections exceeds the format cap");
  }
  const std::uint64_t toc_bytes =
      static_cast<std::uint64_t>(section_count) * kTocRecordBytes + 4;
  if (toc_offset > size || toc_bytes > size - toc_offset) {
    fail(SnapshotStatus::kTruncated, "table of contents out of bounds");
  }
  const unsigned char* toc = data + toc_offset;
  const std::uint32_t toc_crc =
      read_u32(toc + static_cast<std::size_t>(section_count) * kTocRecordBytes);
  if (crc32(toc, static_cast<std::size_t>(section_count) * kTocRecordBytes) !=
      toc_crc) {
    fail(SnapshotStatus::kChecksum, "table of contents CRC mismatch");
  }
  h.toc.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const unsigned char* rec = toc + static_cast<std::size_t>(i) * kTocRecordBytes;
    TocEntry e;
    e.tag = read_u32(rec);
    e.offset = read_u64(rec + 8);
    e.bytes = read_u64(rec + 16);
    e.crc = read_u32(rec + 24);
    if (e.offset > size || e.bytes > size - e.offset) {
      fail(SnapshotStatus::kTruncated,
           "section " + std::to_string(e.tag) + " out of bounds");
    }
    h.toc.push_back(e);
  }
  return h;
}

// --- section encoders ------------------------------------------------------

void encode_graph(ByteWriter& w, const Graph& g) {
  w.u32(g.num_vertices());
  w.u32(g.num_edges());
  std::vector<std::uint32_t> flat;
  flat.reserve(static_cast<std::size_t>(g.num_edges()) * 2);
  for (const Edge& e : g.edges()) {
    flat.push_back(e.u);
    flat.push_back(e.v);
  }
  w.u32_array(flat);
  std::vector<std::uint32_t> offsets;
  offsets.reserve(g.num_vertices() + 1);
  std::uint32_t running = 0;
  offsets.push_back(0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    running += g.degree(v);
    offsets.push_back(running);
  }
  w.u32_array(offsets);
  flat.clear();
  flat.reserve(static_cast<std::size_t>(g.num_edges()) * 4);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Arc& a : g.neighbors(v)) {
      flat.push_back(a.to);
      flat.push_back(a.id);
    }
  }
  w.u32_array(flat);
}

Graph decode_graph(ByteReader& r) {
  const std::uint32_t n = r.u32();
  const std::uint32_t m = r.u32();
  const std::vector<std::uint32_t> flat_edges =
      r.u32_array(static_cast<std::size_t>(m) * 2);
  const std::vector<std::uint32_t> offsets =
      r.u32_array(static_cast<std::size_t>(n) + 1);
  const std::vector<std::uint32_t> flat_arcs =
      r.u32_array(static_cast<std::size_t>(m) * 4);
  if (flat_edges.size() != static_cast<std::size_t>(m) * 2 ||
      offsets.size() != static_cast<std::size_t>(n) + 1 ||
      flat_arcs.size() != static_cast<std::size_t>(m) * 4) {
    fail(SnapshotStatus::kMalformed, "graph array sizes disagree with n/m");
  }
  std::vector<Edge> edges(m);
  for (std::uint32_t e = 0; e < m; ++e) {
    edges[e] = Edge{flat_edges[2 * e], flat_edges[2 * e + 1]};
    if (edges[e].u >= edges[e].v || edges[e].v >= n) {
      fail(SnapshotStatus::kMalformed,
           "graph edge " + std::to_string(e) + " is not canonical (u < v < n)");
    }
  }
  if (offsets.front() != 0 ||
      offsets.back() != static_cast<std::uint32_t>(2) * m) {
    fail(SnapshotStatus::kMalformed, "graph adjacency offsets are inconsistent");
  }
  std::vector<Arc> arcs(static_cast<std::size_t>(m) * 2);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      fail(SnapshotStatus::kMalformed, "graph adjacency offsets decrease");
    }
    Vertex prev = kInvalidVertex;
    for (std::uint32_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const Vertex to = flat_arcs[2 * i];
      const EdgeId id = flat_arcs[2 * i + 1];
      if (to >= n || id >= m) {
        fail(SnapshotStatus::kMalformed, "graph arc ids out of range");
      }
      const Edge& e = edges[id];
      if (!((e.u == v && e.v == to) || (e.v == v && e.u == to))) {
        fail(SnapshotStatus::kMalformed,
             "graph arc does not match its edge's endpoints");
      }
      // Sorted, duplicate-free adjacency is a Graph invariant every consumer
      // (find_edge's binary search, deterministic BFS order) relies on.
      if (prev != kInvalidVertex && to <= prev) {
        fail(SnapshotStatus::kMalformed, "graph adjacency is not sorted");
      }
      prev = to;
      arcs[i] = Arc{to, id};
    }
  }
  return Graph::from_csr_unchecked(n, std::move(edges),
                                   std::vector<std::uint32_t>(offsets),
                                   std::move(arcs));
}

void encode_entries(ByteWriter& w, const std::vector<EntryImage>& entries) {
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const EntryImage& e : entries) {
    w.str(e.name);
    w.str(e.algorithm);
    w.u32(e.source);
    w.u32(e.budget);
    w.u8(e.model == FaultModel::kVertex ? 1 : 0);
    w.u8(e.exact ? 1 : 0);
    w.u32_array(e.edges);
  }
}

std::vector<EntryImage> decode_entries(ByteReader& r, const Graph& g) {
  const std::uint32_t count = r.u32();
  if (count > 1u << 20) {
    fail(SnapshotStatus::kMalformed, "implausible entry count");
  }
  std::vector<EntryImage> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    EntryImage e;
    e.name = r.str(4096);
    e.algorithm = r.str(4096);
    if (e.name.empty()) {
      fail(SnapshotStatus::kMalformed, "entry with an empty name");
    }
    e.source = r.u32();
    e.budget = r.u32();
    const std::uint8_t model = r.u8();
    if (model > 1) {
      fail(SnapshotStatus::kMalformed, "entry fault model byte out of range");
    }
    e.model = model == 1 ? FaultModel::kVertex : FaultModel::kEdge;
    const std::uint8_t exact = r.u8();
    if (exact > 1) {
      fail(SnapshotStatus::kMalformed, "entry exact byte out of range");
    }
    e.exact = exact == 1;
    e.edges = r.u32_array(g.num_edges());
    if (e.source >= g.num_vertices()) {
      fail(SnapshotStatus::kMalformed,
           "entry '" + e.name + "' source out of range");
    }
    EdgeId prev = kInvalidEdge;
    for (const EdgeId id : e.edges) {
      if (id >= g.num_edges() || (prev != kInvalidEdge && id <= prev)) {
        fail(SnapshotStatus::kMalformed,
             "entry '" + e.name + "' edge list is not sorted unique in range");
      }
      prev = id;
    }
    out.push_back(std::move(e));
  }
  return out;
}

void encode_baselines(ByteWriter& w,
                      const std::vector<BaselineImage>& baselines) {
  w.u32(static_cast<std::uint32_t>(baselines.size()));
  for (const BaselineImage& b : baselines) {
    w.u32(b.entry);
    w.u32(b.source);
    w.u32_array(b.hops);
    w.u32_array(b.parent);
    w.u32_array(b.parent_edge);
    w.u32_array(b.visit_order);
    w.u32_array(b.preorder_pos);
    w.u32_array(b.subtree_size);
  }
}

std::vector<BaselineImage> decode_baselines(ByteReader& r, const Graph& g,
                                            std::size_t entry_count) {
  const std::uint32_t count = r.u32();
  if (count > 1u << 20) {
    fail(SnapshotStatus::kMalformed, "implausible baseline count");
  }
  const std::size_t n = g.num_vertices();
  std::vector<BaselineImage> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    BaselineImage b;
    b.entry = r.u32();
    b.source = r.u32();
    b.hops = r.u32_array(n);
    b.parent = r.u32_array(n);
    b.parent_edge = r.u32_array(n);
    b.visit_order = r.u32_array(n);
    b.preorder_pos = r.u32_array(n);
    b.subtree_size = r.u32_array(n);
    // Shape checks only; the tree itself is validated against the entry's H
    // at install time (service_io.cpp), where the subgraph exists.
    if (b.entry > entry_count ||  // entry 0 is the identity engine
        b.source >= n || b.hops.size() != n || b.parent.size() != n ||
        b.parent_edge.size() != n || b.preorder_pos.size() != n ||
        b.subtree_size.size() != n || b.visit_order.empty() ||
        b.visit_order.size() > n) {
      fail(SnapshotStatus::kMalformed,
           "baseline " + std::to_string(i) + " has inconsistent shape");
    }
    out.push_back(std::move(b));
  }
  return out;
}

void encode_cache(ByteWriter& w, const std::vector<CacheLineImage>& lines) {
  w.u32(static_cast<std::uint32_t>(lines.size()));
  for (const CacheLineImage& line : lines) {
    w.u32_array(line.key_words);
    w.u8(line.delta ? 1 : 0);
    if (line.delta) {
      w.u64_array(line.diff);
    } else {
      w.u32_array(line.hops);
    }
  }
}

std::vector<CacheLineImage> decode_cache(ByteReader& r, const Graph& g,
                                         std::size_t entry_count) {
  const std::uint32_t count = r.u32();
  if (count > 1u << 22) {
    fail(SnapshotStatus::kMalformed, "implausible cache line count");
  }
  const std::size_t n = g.num_vertices();
  std::vector<CacheLineImage> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CacheLineImage line;
    line.key_words = r.u32_array(static_cast<std::size_t>(n) + 64);
    const std::uint8_t kind = r.u8();
    if (kind > 1) {
      fail(SnapshotStatus::kMalformed, "cache line kind byte out of range");
    }
    line.delta = kind == 1;
    if (line.delta) {
      line.diff = r.u64_array(n);
      std::uint64_t prev_vertex = ~0ull;
      for (const std::uint64_t packed : line.diff) {
        const std::uint64_t v = packed >> 32;
        if (v >= n || (prev_vertex != ~0ull && v <= prev_vertex)) {
          fail(SnapshotStatus::kMalformed,
               "cache line diff is not sorted by in-range vertex");
        }
        prev_vertex = v;
      }
    } else {
      line.hops = r.u32_array(n);
      if (line.hops.size() != n) {
        fail(SnapshotStatus::kMalformed,
             "full cache line does not cover every vertex");
      }
    }
    // Keys are [entry, source, projected-edge-count, ...]; anything shorter
    // could not have been produced by OracleService::cache_key.
    if (line.key_words.size() < 3 || line.key_words[0] > entry_count ||
        line.key_words[1] >= n) {
      fail(SnapshotStatus::kMalformed,
           "cache line key does not name a pool entry and source");
    }
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace

const char* to_string(SnapshotStatus status) {
  switch (status) {
    case SnapshotStatus::kIoError: return "snapshot io error";
    case SnapshotStatus::kBadMagic: return "snapshot bad magic";
    case SnapshotStatus::kBadVersion: return "snapshot version unsupported";
    case SnapshotStatus::kTruncated: return "snapshot truncated";
    case SnapshotStatus::kChecksum: return "snapshot checksum mismatch";
    case SnapshotStatus::kMalformed: return "snapshot malformed";
    case SnapshotStatus::kGraphMismatch: return "snapshot graph mismatch";
  }
  return "snapshot error";
}

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  // Table generated on first use; thread-safe since C++11 static init.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = seed ^ 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

GraphFingerprint fingerprint_of(const Graph& g) {
  GraphFingerprint fp;
  fp.vertices = g.num_vertices();
  fp.edges = g.num_edges();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over (u, v) in id order
  for (const Edge& e : g.edges()) {
    h = (h ^ e.u) * 1099511628211ull;
    h = (h ^ e.v) * 1099511628211ull;
  }
  fp.edge_hash = h;
  return fp;
}

std::string describe(const GraphFingerprint& fp) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "n=%u, m=%u, edge_hash=%016llx", fp.vertices,
                fp.edges, static_cast<unsigned long long>(fp.edge_hash));
  return buf;
}

void save_snapshot(const std::string& path, const SnapshotImage& image,
                   unsigned jobs) {
  // Encode every section first; the header needs the final offsets. The
  // sections are independent until the TOC, so their encoders and CRC-32
  // passes run on a small crew; the layout below stays sequential and the
  // file bytes are identical at any job count.
  struct Section {
    std::uint32_t tag;
    ByteWriter payload;
    std::uint32_t crc = 0;
  };
  std::vector<Section> sections;
  sections.push_back({kSectionGraph, {}, 0});
  sections.push_back({kSectionEntries, {}, 0});
  sections.push_back({kSectionBaselines, {}, 0});
  if (!image.cache_lines.empty()) {
    sections.push_back({kSectionCache, {}, 0});
  }
  auto encode_section = [&](Section& s) {
    switch (s.tag) {
      case kSectionGraph:
        encode_graph(s.payload, image.graph);
        break;
      case kSectionEntries:
        encode_entries(s.payload, image.entries);
        break;
      case kSectionBaselines:
        encode_baselines(s.payload, image.baselines);
        break;
      default:
        encode_cache(s.payload, image.cache_lines);
        break;
    }
    s.crc = crc32(s.payload.bytes.data(), s.payload.bytes.size());
  };
  const unsigned workers =
      clamp_workers(jobs == 0 ? hardware_workers() : jobs, sections.size(),
                    /*cap_to_hardware=*/jobs == 0);
  if (workers <= 1) {
    for (Section& s : sections) encode_section(s);
  } else {
    std::vector<std::thread> crew;
    crew.reserve(workers - 1);
    for (unsigned t = 1; t < workers; ++t) {
      crew.emplace_back([&, t] {
        for (std::size_t i = t; i < sections.size(); i += workers) {
          encode_section(sections[i]);
        }
      });
    }
    for (std::size_t i = 0; i < sections.size(); i += workers) {
      encode_section(sections[i]);
    }
    for (std::thread& th : crew) th.join();
  }

  const GraphFingerprint fp = fingerprint_of(image.graph);
  std::vector<char> file;
  // Header placeholder; patched once the layout is known.
  file.resize(kHeaderWithCrc, 0);
  std::vector<TocEntry> toc;
  toc.reserve(sections.size());
  for (Section& s : sections) {
    while (file.size() % 8 != 0) file.push_back(0);
    TocEntry e;
    e.tag = s.tag;
    e.offset = file.size();
    e.bytes = s.payload.bytes.size();
    e.crc = s.crc;
    toc.push_back(e);
    file.insert(file.end(), s.payload.bytes.begin(), s.payload.bytes.end());
    s.payload.bytes.clear();
    s.payload.bytes.shrink_to_fit();
  }
  while (file.size() % 8 != 0) file.push_back(0);
  const std::uint64_t toc_offset = file.size();
  {
    std::vector<char> toc_bytes;
    for (const TocEntry& e : toc) {
      put_u32(toc_bytes, e.tag);
      put_u32(toc_bytes, 0);
      put_u64(toc_bytes, e.offset);
      put_u64(toc_bytes, e.bytes);
      put_u32(toc_bytes, e.crc);
      put_u32(toc_bytes, 0);
    }
    const std::uint32_t toc_crc = crc32(toc_bytes.data(), toc_bytes.size());
    put_u32(toc_bytes, toc_crc);
    file.insert(file.end(), toc_bytes.begin(), toc_bytes.end());
  }
  {
    std::vector<char> header;
    header.insert(header.end(), kMagic.begin(), kMagic.end());
    put_u32(header, kSnapshotVersion);
    put_u32(header, static_cast<std::uint32_t>(sections.size()));
    put_u32(header, fp.vertices);
    put_u32(header, fp.edges);
    put_u64(header, fp.edge_hash);
    put_u64(header, toc_offset);
    put_u64(header, file.size());
    const std::uint32_t header_crc = crc32(header.data(), kHeaderBytes);
    put_u32(header, header_crc);
    std::memcpy(file.data(), header.data(), kHeaderWithCrc);
  }

  // Durable atomic publish: write a sibling temp file, fsync it, rename into
  // place, then fsync the parent directory so the rename itself survives a
  // crash. Without the two fsyncs a power loss after "success" could publish
  // a torn file or make the new name vanish — docs/persistence.md "Atomicity
  // and durability". Failpoints `persist.write` / `persist.fsync` drive the
  // error branches (and, via sleep, the crash-recovery test's SIGKILL
  // window). On any failure the temp file is unlinked: no `.tmp` debris.
  const std::string tmp = path + ".tmp";
  static fp::Failpoint& fp_write = fp::site("persist.write");
  static fp::Failpoint& fp_fsync = fp::site("persist.fsync");
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    fail(SnapshotStatus::kIoError,
         "cannot open '" + tmp + "' for writing: " + std::strerror(errno));
  }
  const auto fail_unlink = [&](const std::string& why) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(SnapshotStatus::kIoError, why);
  };
  std::size_t off = 0;
  while (off < file.size()) {
    std::size_t want = file.size() - off;
    ssize_t n = -1;
    const fp::Outcome o = fp::eval(fp_write);
    switch (o.kind) {
      case fp::Outcome::Kind::kErr:
        n = -1;
        errno = o.err;
        break;
      case fp::Outcome::Kind::kShortWrite:
        // Truncated but successful write: the loop must absorb it.
        want = std::max<std::size_t>(1, want / 2);
        [[fallthrough]];
      case fp::Outcome::Kind::kSleep:
        if (o.kind == fp::Outcome::Kind::kSleep) {
          std::this_thread::sleep_for(std::chrono::milliseconds(o.ms));
        }
        [[fallthrough]];
      case fp::Outcome::Kind::kNone:
        n = ::write(fd, file.data() + off, want);
        break;
    }
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // retried, never surfaced
    const int err = errno;
    fail_unlink("cannot write '" + tmp + "': " +
                std::strerror(n < 0 ? err : EIO));
  }
  if (fp::fail_errno(fp_fsync) != 0 || ::fsync(fd) != 0) {
    fail_unlink("cannot fsync '" + tmp + "': " + std::strerror(errno));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail(SnapshotStatus::kIoError,
         "cannot close '" + tmp + "': " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail(SnapshotStatus::kIoError,
         "cannot rename '" + tmp + "' into place: " + std::strerror(err));
  }
  // The rename lives in the directory, not the file: sync it too. A directory
  // that cannot be opened or synced (exotic filesystems) downgrades to the
  // pre-PR-9 semantics rather than failing a save that is otherwise complete.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

SnapshotImage load_snapshot(const std::string& path,
                            const SnapshotLoadOptions& options) {
  const FileBytes file(path, options.use_mmap);
  const ParsedHeader header = parse_header(file.data(), file.size());
  if (options.expect != nullptr && !(header.fingerprint == *options.expect)) {
    fail(SnapshotStatus::kGraphMismatch,
         "snapshot was built for a different graph (snapshot " +
             describe(header.fingerprint) + "; serving graph " +
             describe(*options.expect) + ")");
  }

  // Verify every section's CRC before decoding anything: decode order is not
  // TOC order, and a decoder must never touch unverified bytes.
  for (const TocEntry& e : header.toc) {
    if (crc32(file.data() + e.offset, e.bytes) != e.crc) {
      fail(SnapshotStatus::kChecksum,
           "section " + std::to_string(e.tag) + " CRC mismatch");
    }
  }
  const auto find_section = [&](std::uint32_t tag) -> const TocEntry* {
    for (const TocEntry& e : header.toc) {
      if (e.tag == tag) return &e;
    }
    return nullptr;
  };
  const auto reader_for = [&](const TocEntry& e, const char* what) {
    return ByteReader{file.data() + e.offset, file.data() + e.offset + e.bytes,
                      what};
  };

  SnapshotImage image;
  const TocEntry* graph_sec = find_section(kSectionGraph);
  if (graph_sec == nullptr) {
    fail(SnapshotStatus::kMalformed, "snapshot has no graph section");
  }
  {
    ByteReader r = reader_for(*graph_sec, "graph");
    image.graph = decode_graph(r);
    r.done();
  }
  // The header fingerprint must describe the graph the file actually carries;
  // a disagreement means the sections were spliced from different snapshots.
  if (!(fingerprint_of(image.graph) == header.fingerprint)) {
    fail(SnapshotStatus::kMalformed,
         "graph section does not match the header fingerprint");
  }
  if (const TocEntry* sec = find_section(kSectionEntries)) {
    ByteReader r = reader_for(*sec, "entries");
    image.entries = decode_entries(r, image.graph);
    r.done();
  }
  if (const TocEntry* sec = find_section(kSectionBaselines)) {
    ByteReader r = reader_for(*sec, "baselines");
    image.baselines = decode_baselines(r, image.graph, image.entries.size());
    r.done();
  }
  if (const TocEntry* sec = find_section(kSectionCache)) {
    ByteReader r = reader_for(*sec, "cache");
    image.cache_lines = decode_cache(r, image.graph, image.entries.size());
    r.done();
  }
  return image;
}

GraphFingerprint peek_snapshot_fingerprint(const std::string& path) {
  // Header + TOC only; sections are neither checksummed nor decoded. The
  // buffered path reads the whole file, but manifests and CLI pre-flight
  // call this on files they are about to load anyway.
  const FileBytes file(path, /*try_mmap=*/true);
  return parse_header(file.data(), file.size()).fingerprint;
}

std::uint64_t image_resident_bytes(const SnapshotImage& image) {
  const Graph& g = image.graph;
  std::uint64_t total = 0;
  total += static_cast<std::uint64_t>(g.num_edges()) * sizeof(Edge);
  total += static_cast<std::uint64_t>(g.num_vertices() + 1) * 4;
  total += static_cast<std::uint64_t>(g.num_edges()) * 2 * sizeof(Arc);
  for (const EntryImage& e : image.entries) {
    // The live pool holds the H subgraph's CSR (edges + arcs + offsets), the
    // g→H translation table, and the in_h bitmap.
    total += static_cast<std::uint64_t>(e.edges.size()) *
             (sizeof(Edge) + 2 * sizeof(Arc) + sizeof(EdgeId));
    total += static_cast<std::uint64_t>(g.num_vertices() + 1) * 4;
    total += g.num_edges() / 8;  // vector<bool> in_h
  }
  for (const BaselineImage& b : image.baselines) {
    total += static_cast<std::uint64_t>(b.hops.size()) * 4 * 5;  // five arrays
    total += static_cast<std::uint64_t>(b.visit_order.size()) * 4;
  }
  for (const CacheLineImage& line : image.cache_lines) {
    total += static_cast<std::uint64_t>(line.key_words.size()) * 4;
    total += static_cast<std::uint64_t>(line.hops.size()) * 4;
    total += static_cast<std::uint64_t>(line.diff.size()) * 8;
  }
  return total;
}

}  // namespace ftbfs
