// PersistAccess — the bridge between a live OracleService and a SnapshotImage.
//
// Export walks the service's structure pool, every engine's built baseline
// trees, and (optionally) the ready lines of the scenario cache, producing the
// portable image src/persist/snapshot.h serializes. Restore replays an image
// into a freshly constructed service: entries are re-added in pool order (so
// entry indices, names, and routing — everything the wire protocol's
// `served_by` and the cache keys depend on — come back byte-identical),
// baselines are installed without re-running their BFS, and cache lines can
// pre-warm the scenario cache.
//
// This struct is the one friend of FaultQueryEngine and OracleService the
// persistence layer gets; keeping the access surface to a single named type
// means the engines' internals stay private to everything else.
#pragma once

#include "persist/snapshot.h"
#include "service/oracle_service.h"

namespace ftbfs {

struct PersistAccess {
  // Captures the service's current pool (entries 1.. in order; the identity
  // entry 0 contributes only its baselines), every built per-source baseline,
  // and — when `include_cache` — every ready scenario-cache line. The graph
  // is copied into the image. Safe to call on a quiesced service; concurrent
  // traffic is tolerated (shared locks) but the capture is then a consistent
  // point-in-time of each container, not of the service as a whole.
  [[nodiscard]] static SnapshotImage export_service(const OracleService& service,
                                                    bool include_cache);

  // Replays `image` into `service`, which must be freshly constructed over a
  // graph whose fingerprint equals the image's (callers check this — the
  // loader's SnapshotLoadOptions::expect or an explicit peek — before
  // constructing the service; restore itself never reads image.graph, so the
  // caller is free to have moved it out). Entries whose recorded algorithm is
  // known to this build's BuilderRegistry are cross-checked against its
  // declared exactness; a disagreement means the snapshot and the binary
  // disagree about what the structure guarantees, and the restore fails
  // closed (kMalformed) rather than serve with the wrong guarantee. Baseline
  // trees are validated against the restored H (BFS certificate + TreeIndex
  // cross-check) before installation. `warm_cache` pre-fills the scenario
  // cache from the image's lines without touching hit/miss counters; leave it
  // off when byte-identical cold-cache replay matters (cache_hit flags in
  // responses would differ from a from-scratch run).
  static void restore_service(OracleService& service, const SnapshotImage& image,
                              bool warm_cache);
};

}  // namespace ftbfs
