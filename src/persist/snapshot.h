// Snapshot persistence — the versioned on-disk container for built serving
// state (ROADMAP "Persistence: zero-rebuild restarts and shippable
// structures", after ltsmin's GCF archive layer: a checksummed container of
// typed streams a tool can ship between runs).
//
// One .ftb file holds everything a process needs to serve without rebuilding:
//   * the input graph as raw CSR arrays (edge list, adjacency offsets, arcs),
//     loaded by memcpy + O(n+m) structural validation instead of re-parsing
//     and re-sorting an edge list;
//   * the built H structures of an OracleService pool — name, (source,
//     budget, fault model, exactness), provenance algorithm, and the kept
//     edge ids of G — in pool order, so a restored pool reproduces entry
//     indices, names, and routing byte-for-byte;
//   * per-(entry, source) baseline BFS trees (hops/parent/parent_edge), the
//     BFS discovery order, and the TreeIndex preorder positions + subtree
//     sizes the fault-delta query path classifies against;
//   * optionally, a warm image of the scenario cache: packed keys plus their
//     delta-compressed (or full) payloads.
//
// Layout (all integers little-endian):
//
//   [FileHeader]  magic "FTBSNAP1", format version, graph fingerprint
//                 (vertex count, edge count, 64-bit edge hash — the
//                 fail-closed identity check), section count, TOC offset,
//                 total file bytes, header CRC-32.
//   [sections]    each 8-byte aligned, payload encoded by ByteWriter.
//   [TOC]         per section {tag, offset, bytes, CRC-32}, then a CRC-32
//                 over the TOC itself.
//
// Loading mmaps the file read-only (graceful fallback to one buffered read
// when mmap is unavailable) and parses with bounds-checked cursors: a
// corrupted, truncated, or wrong-version file is rejected with a typed
// SnapshotError — never undefined behavior. Checksums are verified per
// section before any payload is trusted; structural validation (offsets
// monotone, ids in range, trees well-formed) runs after, so even a file
// crafted to pass its CRCs cannot drive an out-of-bounds index into the
// engine. Versioning policy and the mmap-vs-buffered trade-off are documented
// in docs/persistence.md.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ftbfs_common.h"
#include "graph/graph.h"

namespace ftbfs {

// Why a snapshot was rejected. kGraphMismatch is the fail-closed bugfix path:
// a snapshot built from a different graph (fingerprint mismatch) must refuse
// to serve, not serve wrong answers.
enum class SnapshotStatus {
  kIoError,        // open/stat/read failed
  kBadMagic,       // not a snapshot file
  kBadVersion,     // a format version this build does not read
  kTruncated,      // file shorter than its header/TOC claims
  kChecksum,       // a section's CRC-32 does not match
  kMalformed,      // structurally invalid payload (ids out of range, ...)
  kGraphMismatch,  // snapshot fingerprint != the graph it is asked to serve
};

[[nodiscard]] const char* to_string(SnapshotStatus status);

class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapshotStatus status, const std::string& message)
      : std::runtime_error(std::string(to_string(status)) + ": " + message),
        status_(status) {}

  [[nodiscard]] SnapshotStatus status() const { return status_; }

 private:
  SnapshotStatus status_;
};

// Identity of a graph for snapshot compatibility: shape plus an order-
// sensitive FNV-1a hash over the edge list. Two graphs serve interchangeably
// iff their fingerprints match (edge ids — the fault vocabulary of the wire
// protocol — are positional, so edge order matters, not just the edge set).
struct GraphFingerprint {
  std::uint32_t vertices = 0;
  std::uint32_t edges = 0;
  std::uint64_t edge_hash = 0;

  friend bool operator==(const GraphFingerprint&,
                         const GraphFingerprint&) = default;
};

[[nodiscard]] GraphFingerprint fingerprint_of(const Graph& g);

// Human-readable "n=..., m=..., hash=..." for mismatch diagnostics.
[[nodiscard]] std::string describe(const GraphFingerprint& fp);

inline constexpr std::uint32_t kSnapshotVersion = 1;

// --- portable image types --------------------------------------------------
// The in-memory mirror of one snapshot file. service_io.h converts between
// this and a live OracleService; the CLI and tests go through the image so
// the byte format has exactly one reader and one writer.

struct EntryImage {
  std::string name;       // pool entry name (served_by attribution)
  std::string algorithm;  // BuilderRegistry provenance; "" when unknown
  Vertex source = 0;
  unsigned budget = 0;
  FaultModel model = FaultModel::kEdge;
  bool exact = true;
  std::vector<EdgeId> edges;  // kept edge ids of G, sorted unique
};

struct BaselineImage {
  std::uint32_t entry = 0;  // pool entry index (0 = identity engine)
  Vertex source = 0;
  // The fault-free BFS over the entry's H, in the engine's own layout.
  std::vector<std::uint32_t> hops;
  std::vector<Vertex> parent;
  std::vector<EdgeId> parent_edge;
  std::vector<Vertex> visit_order;  // BFS discovery order (repair tie-break)
  // TreeIndex preorder positions + subtree sizes; stored so a loaded baseline
  // can be cross-checked against the index rebuilt from the tree — a
  // mismatch means the sections disagree and the file is rejected.
  std::vector<std::uint32_t> preorder_pos;
  std::vector<std::uint32_t> subtree_size;
};

struct CacheLineImage {
  std::vector<std::uint32_t> key_words;  // packed scenario key (entry first)
  bool delta = false;
  std::vector<std::uint32_t> hops;  // full form (delta == false)
  std::vector<std::uint64_t> diff;  // delta form: (vertex << 32 | hop) sorted
};

struct SnapshotImage {
  Graph graph;
  std::vector<EntryImage> entries;
  std::vector<BaselineImage> baselines;
  std::vector<CacheLineImage> cache_lines;
};

// --- save / load -----------------------------------------------------------

// Writes `image` to `path` (atomically: a temp file renamed into place, so a
// crash mid-save never leaves a half-written snapshot under the real name).
// Throws SnapshotError(kIoError) on filesystem failure.
//
// `jobs` parallelizes the section encoders and their CRC-32 passes — the
// sections are independent until the TOC is laid out, which stays sequential,
// so the produced file is byte-identical at any value. 0 = auto (clamped
// hardware concurrency), 1 = sequential.
void save_snapshot(const std::string& path, const SnapshotImage& image,
                   unsigned jobs = 0);

struct SnapshotLoadOptions {
  // mmap the file and parse in place; false forces the buffered-read path
  // (the loader also falls back by itself when mmap fails, e.g. on
  // filesystems without mapping support).
  bool use_mmap = true;
  // Require the snapshot's graph fingerprint to equal *expect (fail closed
  // with kGraphMismatch otherwise). Null skips the check.
  const GraphFingerprint* expect = nullptr;
};

// Parses, checksums, and structurally validates the file; throws
// SnapshotError on any defect. The returned image owns all its memory (the
// mapping is released before returning).
[[nodiscard]] SnapshotImage load_snapshot(const std::string& path,
                                          const SnapshotLoadOptions& options = {});

// Reads and validates only the header; the cheap pre-flight for manifest
// loading and `serve --load` fingerprint checks.
[[nodiscard]] GraphFingerprint peek_snapshot_fingerprint(
    const std::string& path);

// Approximate in-memory bytes of the state the image captures (CSR arrays,
// per-entry structures, baselines, cache payloads). The CI artifact gate
// holds the snapshot file below 2x this figure.
[[nodiscard]] std::uint64_t image_resident_bytes(const SnapshotImage& image);

// CRC-32 (IEEE, reflected 0xEDB88320), the per-section checksum. Exposed for
// tests, which corrupt sections and must know what the loader recomputes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

}  // namespace ftbfs
