// Typed request/response messages for the serving layer.
//
// The query surface below this layer is imperative and contract-guarded:
// over-budget fault sets, unknown ids, and unsupported fault models are
// preconditions, and violating them aborts. A serving system cannot abort on
// traffic, so this protocol turns every capability mismatch into an *answer*:
// a QueryRequest names what the client wants (source, targets, faults, kind,
// consistency) and a QueryResponse carries a status code plus payload and
// serving stats. OracleService (oracle_service.h) is the interpreter;
// `ftbfs serve` speaks the same messages as JSONL over stdin/stdout
// (docs/serving.md documents the wire format).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "spath/path.h"

namespace ftbfs {

// Outcome of one request. Everything except kOk/kDisconnected is a refusal:
// the service answered "I cannot serve this exactly", never a crash.
enum class StatusCode {
  kOk = 0,
  kBudgetExceeded,         // |faults| above every structure's budget
  kUnknownSource,          // unknown source/target/fault/structure id
  kUnsupportedFaultModel,  // no structure guarantees this fault model
  kDisconnected,           // served, but every requested target is unreachable
  kUnknownTenant,          // "tenant" names a graph this process does not host
  kQuotaExceeded,          // the tenant is over its configured request quota
  kDeadlineExceeded,       // the request's deadline passed before execution
  kOverloaded,             // shed under pressure (queue full / build failed)
  kRateLimited,            // the tenant's token bucket is empty right now
};

enum class QueryKind {
  kDistance,      // distance per target
  kPath,          // shortest path per target
  kAllDistances,  // full distance vector from the source
  kReachability,  // boolean per target
};

// What the client prefers when the fault set falls outside every structure's
// guarantee: a refusal with kBudgetExceeded / kUnsupportedFaultModel (serving
// cost stays bounded by the structure size), or a best-effort answer from the
// identity engine over G (always exact, but costs a BFS over the full graph).
enum class Consistency { kExactOrRefuse, kBestEffort };

struct QueryRequest {
  std::int64_t id = -1;  // client correlation id, echoed in the response
  Vertex source = 0;
  std::vector<Vertex> targets;  // ignored for kAllDistances
  std::vector<EdgeId> fault_edges;      // host-graph edge ids
  std::vector<Vertex> fault_vertices;   // host-graph vertex ids
  QueryKind kind = QueryKind::kDistance;
  Consistency consistency = Consistency::kExactOrRefuse;
  // Non-empty: pin the request to the named pool entry ("identity" is always
  // available) instead of letting the service route it.
  std::string structure;
  // Wire field "deadline_ms": answer within this many milliseconds of arrival
  // or refuse with kDeadlineExceeded — checked at admission and again before
  // execution, never mid-BFS. <= 0 means no request deadline (the tenant's
  // default, if any, applies). Refusing is cheaper than answering late: the
  // client has already stopped caring.
  std::int64_t deadline_ms = 0;
};

struct QueryResponse {
  std::int64_t id = -1;  // echoed from the request
  // Input line number (0-based) of the request, stamped by the relaxed serve
  // loop for requests that carry no "id": out-of-order responses stay
  // correlatable. Emitted on the wire only when id < 0 — responses to
  // id-bearing requests are byte-identical across serve modes.
  std::int64_t seq = -1;
  StatusCode status = StatusCode::kOk;
  // True iff the answers carry an exactness guarantee (structure served
  // within its fault budget, identity engine, or point oracle).
  bool exact = false;
  // --- payload (filled for kOk and kDisconnected) --------------------------
  // kDistance/kPath/kReachability: one entry per target; kAllDistances: one
  // per vertex. kInfHops = unreachable.
  std::vector<std::uint32_t> distances;
  std::vector<Path> paths;          // kPath only; empty path = unreachable
  std::vector<bool> reachable;      // kReachability only
  // --- serving stats -------------------------------------------------------
  std::string served_by;  // pool entry name, "identity", or "point_oracle"
  bool cache_hit = false;
  // Non-fatal notes about the *request* — today: unknown request keys, which
  // are echoed back instead of silently ignored (and instead of rejecting the
  // line, so a client one protocol revision ahead still gets its answer).
  std::vector<std::string> warnings;
  std::string error;  // human-readable reason for refusals
};

[[nodiscard]] const char* to_string(StatusCode s);
[[nodiscard]] const char* to_string(QueryKind k);
[[nodiscard]] const char* to_string(Consistency c);

// --- JSONL wire format (see docs/serving.md) -------------------------------

// Outcome of parsing one request line. kSyntax means the line is not a valid
// request object (the caller should emit a parse_error line); kResolve means
// the request parsed but referenced something that does not exist — an edge
// absent from the graph, or a tenant this process does not host. The caller
// should answer with `resolve_status`, echoing `request.id`.
enum class ParseStatus { kOk, kSyntax, kResolve };

struct ParsedRequest {
  ParseStatus status = ParseStatus::kOk;
  QueryRequest request;
  // Tenant name the line routed to ("" = the default tenant). Resolved during
  // parsing — fault-edge endpoints can only be translated to edge ids against
  // the named tenant's graph, so tenancy routes *before* everything else.
  std::string tenant;
  // Unknown request keys, echoed into QueryResponse::warnings by the serve
  // loops (the request is still served).
  std::vector<std::string> warnings;
  // Status a kResolve refusal should carry (kUnknownSource for unresolvable
  // edges, kUnknownTenant for an unknown "tenant").
  StatusCode resolve_status = StatusCode::kUnknownSource;
  std::string error;  // filled unless status == kOk
};

// Maps a tenant name ("" = default) to the graph faults should resolve
// against, or nullptr when no such tenant exists. TenantRegistry::resolver()
// is the multi-graph implementation; single-graph callers use the Graph&
// overload below.
using GraphResolver = std::function<const Graph*(const std::string& tenant)>;

// Parses one JSONL request line. Fault edges arrive as endpoint pairs
// ("fault_edges": [[u,v],...]) and are resolved to edge ids of the graph the
// line's "tenant" field routes to.
[[nodiscard]] ParsedRequest parse_request_line(const std::string& line,
                                               const GraphResolver& resolve);

// Single-graph convenience: every line resolves against `g`; a "tenant" field
// naming anything but the default is an unknown tenant.
[[nodiscard]] ParsedRequest parse_request_line(const std::string& line,
                                               const Graph& g);

// Serializes a response as one JSONL line (no trailing newline). Unreachable
// distances are encoded as -1.
[[nodiscard]] std::string format_response_line(const QueryResponse& resp);

// One JSONL line reporting a request that never reached the service — wire
// status "parse_error" (distinct from the StatusCode refusals, which are
// answers about the graph rather than about the line). `seq` >= 0 adds the
// relaxed-mode correlation field for lines that parsed no "id" (same contract
// as QueryResponse::seq).
[[nodiscard]] std::string format_parse_error_line(const ParsedRequest& parsed,
                                                  std::int64_t seq = -1);

}  // namespace ftbfs
