// Concurrency plumbing for the serving layer: a bounded FIFO work queue, a
// ticket lock that orders the service's admission sections, and a resequencer
// that restores request order on the output side.
//
// Together they form the threaded `ftbfs serve` pipeline:
//
//   reader ──► BoundedQueue ──► workers (serve concurrently) ──► Resequencer
//                (FIFO)           │ admission ordered by            (emits in
//                                 │ RequestSequencer tickets         request
//                                 ▼                                  order)
//                            OracleService
//
// The FIFO pop order is load-bearing, not a convenience: because workers pop
// the oldest queued item first, the smallest in-flight ticket is always held
// by some worker, so the worker whose admission turn it is can always run and
// the ticket lock cannot deadlock against the queue's backpressure. The
// resequencer bounds its reorder buffer explicitly: when one slow
// head-of-line request holds up the flush while cheap successors keep
// completing, emitters of later sequence numbers block at the cap — which
// stops those workers popping, fills the queue, and parks the reader — so
// memory stays bounded end to end instead of buffering the whole backlog.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ftbfs {

// Bounded multi-producer/multi-consumer FIFO. push() blocks while the queue
// is full, pop() blocks while it is empty; close() wakes everyone, after
// which push() is refused and pop() drains the remaining items before
// returning nullopt.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // False iff the queue was closed before the item could be enqueued.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    if (!closed_ && items_.size() >= capacity_) {
      ++not_full_waiters_;
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      --not_full_waiters_;
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    // Targeted wakeup, and only when someone is actually parked: the
    // uncontended steady state pays no notify syscall at all.
    if (not_empty_waiters_ > 0) not_empty_.notify_one();
    return true;
  }

  // Non-blocking push: false when the queue is full or closed, leaving `item`
  // untouched so the caller can retry later. The socket front-end uses this —
  // its event loop must never block on serving backpressure; it parks the
  // connection instead and re-offers the line when a worker frees a slot.
  bool try_push(T& item) {
    {
      const std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (not_empty_waiters_ == 0) return true;
    }
    not_empty_.notify_one();
    return true;
  }

  // Oldest item, or nullopt once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    wait_not_empty(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    if (not_full_waiters_ > 0) not_full_.notify_one();
    return item;
  }

  // Drains up to `max` oldest items under ONE lock acquisition into `out`
  // (cleared first); blocks like pop() while the queue is empty. Returns the
  // number taken — 0 only once the queue is closed and drained. Because the
  // queue is FIFO, a batch is always a dense run of consecutively pushed
  // items; the batched-admission serve path leans on that.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    out.clear();
    std::unique_lock lock(mutex_);
    wait_not_empty(lock);
    const std::size_t take = std::min(max, items_.size());
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (not_full_waiters_ > 0) {
      // A batch frees `take` slots; one producer per slot may proceed.
      if (take > 1) {
        not_full_.notify_all();
      } else if (take == 1) {
        not_full_.notify_one();
      }
    }
    return take;
  }

  void close() {
    {
      const std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  void wait_not_empty(std::unique_lock<std::mutex>& lock) {
    if (!closed_ && items_.empty()) {
      ++not_empty_waiters_;
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      --not_empty_waiters_;
    }
  }

  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  std::size_t not_full_waiters_ = 0;
  std::size_t not_empty_waiters_ = 0;
  bool closed_ = false;
};

// Ticket lock over a dense ticket sequence 0, 1, 2, …: wait_for(t) blocks
// until every ticket below t has advanced. OracleService::serve uses it to
// run its admission section (routing, lazy-build trigger, cache probe) in
// strict request order, which is what makes threaded serving byte-identical
// to sequential serving. Every ticket MUST eventually advance exactly once —
// a skipped ticket (e.g. a request that never reaches the service because it
// failed to parse) still has to call skip().
class RequestSequencer {
 public:
  void wait_for(std::uint64_t ticket) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return turn_ == ticket; });
  }

  void advance() {
    {
      const std::lock_guard lock(mutex_);
      ++turn_;
    }
    cv_.notify_all();
  }

  // Releases `n` consecutive tickets in one step: the batched-admission
  // worker waits for its first ticket, runs all n admission sections
  // back-to-back, then advances past the whole run under one lock handoff.
  void advance_n(std::uint64_t n) {
    if (n == 0) return;
    {
      const std::lock_guard lock(mutex_);
      turn_ += n;
    }
    cv_.notify_all();
  }

  // Burns one ticket without an admission section.
  void skip(std::uint64_t ticket) {
    wait_for(ticket);
    advance();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t turn_ = 0;
};

// Restores sequence order on the output side: workers emit(seq, line) as they
// finish, in any order; lines are handed to the sink in strictly increasing
// seq order with no gaps. Sequence numbers must be dense from 0.
//
// The reorder buffer holds at most `max_pending` lines: an emitter whose turn
// is not next blocks at the cap until the flush catches up. The emitter whose
// seq IS next is never blocked (it unblocks everyone else), so the smallest
// outstanding seq always makes progress and the cap cannot deadlock.
class Resequencer {
 public:
  explicit Resequencer(std::function<void(const std::string&)> sink,
                       std::size_t max_pending = 1024)
      : sink_(std::move(sink)), max_pending_(std::max<std::size_t>(1, max_pending)) {}

  void emit(std::uint64_t seq, std::string line) {
    std::unique_lock lock(mutex_);
    drained_.wait(lock, [&] {
      return seq == next_ || pending_.size() < max_pending_;
    });
    pending_.emplace(seq, std::move(line));
    // Flush the contiguous prefix. Holding the lock across the sink keeps
    // output ordered; the sink is a line write, not a slow consumer.
    bool flushed = false;
    while (!pending_.empty() && pending_.begin()->first == next_) {
      sink_(pending_.begin()->second);
      pending_.erase(pending_.begin());
      ++next_;
      flushed = true;
    }
    if (flushed) {
      lock.unlock();
      drained_.notify_all();
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable drained_;
  std::function<void(const std::string&)> sink_;
  std::map<std::uint64_t, std::string> pending_;
  std::size_t max_pending_;
  std::uint64_t next_ = 0;
};

}  // namespace ftbfs
