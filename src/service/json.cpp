#include "service/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ftbfs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonReader::parse(JsonValue& out, std::string& err) {
  if (!parse_value(out)) {
    err = err_;
    return false;
  }
  skip_ws();
  if (p_ != end_) {
    err = "trailing characters after JSON value";
    return false;
  }
  return true;
}

void JsonReader::skip_ws() {
  while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
}

bool JsonReader::fail(const std::string& why) {
  if (err_.empty()) err_ = why;
  return false;
}

// Containers recurse; a server must not let one hostile line ('[[[[…') blow
// the stack, so nesting is capped well beyond any legitimate request.
template <typename Fn>
bool JsonReader::descend(Fn parse_container) {
  if (depth_ >= 32) return fail("nesting too deep");
  ++depth_;
  const bool ok = parse_container();
  --depth_;
  return ok;
}

bool JsonReader::expect(char c) {
  skip_ws();
  if (p_ == end_ || *p_ != c) {
    return fail(std::string("expected '") + c + "'");
  }
  ++p_;
  return true;
}

bool JsonReader::parse_value(JsonValue& out) {
  skip_ws();
  if (p_ == end_) return fail("unexpected end of input");
  switch (*p_) {
    case '{':
      return descend([&] { return parse_object(out); });
    case '[':
      return descend([&] { return parse_array(out); });
    case '"':
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    case 't':
    case 'f':
      return parse_literal(out);
    case 'n':
      return parse_literal(out);
    default:
      return parse_number(out);
  }
}

bool JsonReader::parse_literal(JsonValue& out) {
  auto take = [&](const char* word) {
    const char* q = p_;
    for (const char* w = word; *w != '\0'; ++w, ++q) {
      if (q == end_ || *q != *w) return false;
    }
    p_ = q;
    return true;
  };
  if (take("true")) {
    out.kind = JsonValue::Kind::kBool;
    out.boolean = true;
    return true;
  }
  if (take("false")) {
    out.kind = JsonValue::Kind::kBool;
    out.boolean = false;
    return true;
  }
  if (take("null")) {
    out.kind = JsonValue::Kind::kNull;
    return true;
  }
  return fail("invalid literal");
}

bool JsonReader::parse_number(JsonValue& out) {
  // The backing string is NUL-terminated, so strtod cannot scan past end_.
  char* after = nullptr;
  out.number = std::strtod(p_, &after);
  if (after == p_ || after > end_) return fail("invalid number");
  out.kind = JsonValue::Kind::kNumber;
  p_ = after;
  return true;
}

bool JsonReader::parse_string(std::string& out) {
  if (!expect('"')) return false;
  out.clear();
  while (p_ != end_ && *p_ != '"') {
    char c = *p_++;
    if (c == '\\') {
      if (p_ == end_) return fail("unterminated escape");
      const char esc = *p_++;
      switch (esc) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case '/': c = '/'; break;
        case 'b': c = '\b'; break;
        case 'f': c = '\f'; break;
        case 'n': c = '\n'; break;
        case 'r': c = '\r'; break;
        case 't': c = '\t'; break;
        case 'u': {
          // \uXXXX, UTF-8-encoded into the output. Our own writer only emits
          // \u00XX (control bytes), but the reader accepts the full BMP so
          // round-tripping any response line through the reader works.
          if (end_ - p_ < 4) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          continue;
        }
        default:
          return fail("unsupported string escape");
      }
    }
    out.push_back(c);
  }
  if (p_ == end_) return fail("unterminated string");
  ++p_;  // closing quote
  return true;
}

bool JsonReader::parse_array(JsonValue& out) {
  if (!expect('[')) return false;
  out.kind = JsonValue::Kind::kArray;
  skip_ws();
  if (p_ != end_ && *p_ == ']') {
    ++p_;
    return true;
  }
  while (true) {
    JsonValue elem;
    if (!parse_value(elem)) return false;
    out.array.push_back(std::move(elem));
    skip_ws();
    if (p_ != end_ && *p_ == ',') {
      ++p_;
      continue;
    }
    return expect(']');
  }
}

bool JsonReader::parse_object(JsonValue& out) {
  if (!expect('{')) return false;
  out.kind = JsonValue::Kind::kObject;
  skip_ws();
  if (p_ != end_ && *p_ == '}') {
    ++p_;
    return true;
  }
  while (true) {
    std::string key;
    if (!parse_string(key)) return false;
    if (!expect(':')) return false;
    JsonValue value;
    if (!parse_value(value)) return false;
    out.object.emplace_back(std::move(key), std::move(value));
    skip_ws();
    if (p_ != end_ && *p_ == ',') {
      ++p_;
      continue;
    }
    return expect('}');
  }
}

bool json_read_uint(const JsonValue& v, std::uint64_t& out) {
  // The range guard must run BEFORE the cast: converting a double at or
  // beyond 2^64 (or NaN/inf — "1e999" parses to inf) to uint64_t is undefined
  // behavior. NaN fails the >= 0 comparison; 18446744073709551616.0 is
  // exactly 2^64 in double.
  if (v.kind != JsonValue::Kind::kNumber ||
      !(v.number >= 0.0 && v.number < 18446744073709551616.0)) {
    return false;
  }
  const std::uint64_t u = static_cast<std::uint64_t>(v.number);
  if (v.number != static_cast<double>(u)) return false;  // fractional
  out = u;
  return true;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Raw control bytes inside a JSON string are invalid JSON; echoing
          // hostile input must not let the response line become unparseable.
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

}  // namespace ftbfs
