#include "service/oracle_service.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "engine/registry.h"
#include "spath/bfs.h"

namespace ftbfs {

namespace {

// True if `model` covers a fault set with the given composition. Mixed sets
// are covered by no single-model structure (only the identity engine).
bool model_covers(FaultModel model, bool has_edge_faults,
                  bool has_vertex_faults) {
  if (has_edge_faults && has_vertex_faults) return false;
  if (has_edge_faults) return model == FaultModel::kEdge;
  if (has_vertex_faults) return model == FaultModel::kVertex;
  return true;  // fault-free queries are within every FT guarantee
}

void append_u32(std::string& key, std::uint32_t x) {
  for (int shift = 0; shift < 32; shift += 8) {
    key.push_back(static_cast<char>((x >> shift) & 0xff));
  }
}

}  // namespace

OracleService::Entry::Entry(const Graph& g, std::span<const EdgeId> edges)
    : edge_count(edges.size()), engine(g, edges), in_h(g.num_edges(), false) {
  for (const EdgeId e : edges) in_h[e] = true;
}

OracleService::Entry::Entry(const Graph& g)
    : name("identity"),
      budget(std::numeric_limits<unsigned>::max()),
      identity(true),
      edge_count(g.num_edges()),
      engine(g) {}

OracleService::OracleService(const Graph& g, ServiceConfig config)
    : g_(&g), config_(config) {
  entries_.push_back(Entry(*g_));  // entry 0: ground truth, always available
}

std::size_t OracleService::add_structure(std::string name, Vertex source,
                                         unsigned fault_budget,
                                         FaultModel model,
                                         std::span<const EdgeId> edges,
                                         bool exact) {
  FTBFS_EXPECTS(!name.empty());
  FTBFS_EXPECTS(find_entry(name) < 0);
  FTBFS_EXPECTS(source < g_->num_vertices());
  Entry entry(*g_, edges);
  entry.name = std::move(name);
  entry.source = source;
  entry.budget = fault_budget;
  entry.model = model;
  entry.exact = exact;
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

std::size_t OracleService::build_structure(std::string name, Vertex source,
                                           unsigned fault_budget,
                                           FaultModel model,
                                           std::string_view algo) {
  const BuilderRegistry& reg = BuilderRegistry::instance();
  const std::string chosen =
      algo.empty() ? BuilderRegistry::default_builder(fault_budget, model, 1)
                   : std::string(algo);
  BuildRequest req;
  req.graph = g_;
  req.sources = {source};
  req.fault_budget = fault_budget;
  req.fault_model = model;
  req.weight_seed = config_.weight_seed;
  FTBFS_EXPECTS(reg.unsupported_reason(chosen, req).empty());
  const BuildResult built = reg.build(chosen, req);
  const BuilderTraits* traits = reg.find(built.algorithm);
  return add_structure(std::move(name), source, fault_budget, model,
                       built.structure.edges,
                       traits == nullptr || traits->exact);
}

void OracleService::enable_point_oracle(Vertex source) {
  FTBFS_EXPECTS(source < g_->num_vertices());
  point_oracles_.try_emplace(source, *g_, source, config_.weight_seed);
}

const std::string& OracleService::entry_name(std::size_t entry) const {
  FTBFS_EXPECTS(entry < entries_.size());
  return entries_[entry].name;
}

std::uint64_t OracleService::entry_edges(std::size_t entry) const {
  FTBFS_EXPECTS(entry < entries_.size());
  return entries_[entry].edge_count;
}

FaultQueryEngine& OracleService::engine(std::size_t entry) {
  FTBFS_EXPECTS(entry < entries_.size());
  return entries_[entry].engine;
}

int OracleService::find_entry(std::string_view name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool OracleService::serves_exactly(const Entry& e, Vertex source,
                                   const CanonicalFaultSet& canon) const {
  if (e.identity) return true;  // ground truth serves anything exactly
  return e.source == source && e.exact &&
         model_covers(e.model, !canon.edges().empty(),
                      !canon.vertices().empty()) &&
         canon.size() <= e.budget;
}

std::string OracleService::cache_key(std::size_t entry, Vertex source) const {
  const Entry& e = entries_[entry];
  std::string key;
  key.reserve(12 + 4 * canon_.size());
  append_u32(key, static_cast<std::uint32_t>(entry));
  append_u32(key, source);
  // Project onto H: faults absent from the structure cannot change answers,
  // so scenarios differing only in absent edges share one cache line. The
  // projected edge count keeps the edge/vertex boundary unambiguous.
  std::uint32_t kept = 0;
  for (const EdgeId f : canon_.edges()) {
    if (e.identity || e.in_h[f]) ++kept;
  }
  append_u32(key, kept);
  for (const EdgeId f : canon_.edges()) {
    if (e.identity || e.in_h[f]) append_u32(key, f);
  }
  for (const Vertex v : canon_.vertices()) append_u32(key, v);
  return key;
}

const std::vector<std::uint32_t>* OracleService::cache_find(
    const std::string& key) {
  const auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return &it->second->hops;
}

const std::vector<std::uint32_t>* OracleService::cache_insert(
    std::string key, const std::vector<std::uint32_t>& hops) {
  lru_.push_front(CacheLine{std::move(key), hops});
  cache_[lru_.front().key] = lru_.begin();
  if (lru_.size() > config_.cache_capacity) {
    cache_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return &lru_.front().hops;
}

QueryResponse OracleService::refuse(QueryResponse resp, StatusCode status,
                                    std::string why) {
  resp.status = status;
  resp.error = std::move(why);
  ++stats_.refused;
  return resp;
}

void OracleService::fill_payload(std::size_t entry, const QueryRequest& req,
                                 QueryResponse& resp) {
  Entry& e = entries_[entry];
  resp.served_by = e.name;
  if (e.identity) ++stats_.identity_served;
  const FaultSpec faults = canon_.spec();

  if (req.kind == QueryKind::kPath) {
    // Paths need BFS parents, which the scenario cache does not retain —
    // path requests always go to the engine.
    std::size_t unreachable = 0;
    for (const Vertex t : req.targets) {
      auto path = e.engine.shortest_path(req.source, t, faults);
      if (path.has_value()) {
        resp.distances.push_back(static_cast<std::uint32_t>(path->size() - 1));
        resp.paths.push_back(std::move(*path));
      } else {
        ++unreachable;
        resp.distances.push_back(kInfHops);
        resp.paths.emplace_back();
      }
    }
    if (!req.targets.empty() && unreachable == req.targets.size()) {
      resp.status = StatusCode::kDisconnected;
    }
    return;
  }

  const bool cache_enabled = config_.cache_capacity > 0;
  const std::vector<std::uint32_t>* hops = nullptr;
  std::string key;
  if (cache_enabled) {
    key = cache_key(entry, req.source);
    hops = cache_find(key);
    if (hops != nullptr) {
      resp.cache_hit = true;
      ++stats_.cache_hits;
    } else {
      ++stats_.cache_misses;
    }
  }
  if (hops == nullptr && req.kind == QueryKind::kDistance &&
      req.targets.size() == 1) {
    // Single-target miss: an early-exit BFS beats the full sweep a cache
    // line would need, so answer directly and leave the cache untouched.
    const std::uint32_t d =
        e.engine.distance(req.source, req.targets[0], faults);
    resp.distances.push_back(d);
    if (d == kInfHops) resp.status = StatusCode::kDisconnected;
    return;
  }
  if (hops == nullptr) {
    const std::vector<std::uint32_t>& full =
        e.engine.all_distances(req.source, faults);
    hops = cache_enabled ? cache_insert(std::move(key), full) : &full;
  }

  switch (req.kind) {
    case QueryKind::kAllDistances:
      resp.distances = *hops;
      break;
    case QueryKind::kDistance: {
      std::size_t unreachable = 0;
      for (const Vertex t : req.targets) {
        resp.distances.push_back((*hops)[t]);
        if ((*hops)[t] == kInfHops) ++unreachable;
      }
      if (!req.targets.empty() && unreachable == req.targets.size()) {
        resp.status = StatusCode::kDisconnected;
      }
      break;
    }
    case QueryKind::kReachability:
      for (const Vertex t : req.targets) {
        resp.distances.push_back((*hops)[t]);
        resp.reachable.push_back((*hops)[t] != kInfHops);
      }
      break;
    case QueryKind::kPath:
      break;  // handled above
  }
}

QueryResponse OracleService::serve(const QueryRequest& req) {
  ++stats_.requests;
  QueryResponse resp;
  resp.id = req.id;

  // --- validation: unknown ids are status codes, never aborts --------------
  const Vertex n = g_->num_vertices();
  if (req.source >= n) {
    return refuse(std::move(resp), StatusCode::kUnknownSource,
                  "source " + std::to_string(req.source) + " out of range");
  }
  for (const Vertex t : req.targets) {
    if (t >= n) {
      return refuse(std::move(resp), StatusCode::kUnknownSource,
                    "target " + std::to_string(t) + " out of range");
    }
  }
  for (const EdgeId f : req.fault_edges) {
    if (f >= g_->num_edges()) {
      return refuse(std::move(resp), StatusCode::kUnknownSource,
                    "fault edge id " + std::to_string(f) + " out of range");
    }
  }
  for (const Vertex v : req.fault_vertices) {
    if (v >= n) {
      return refuse(std::move(resp), StatusCode::kUnknownSource,
                    "fault vertex " + std::to_string(v) + " out of range");
    }
  }

  canon_.assign(FaultSpec{req.fault_edges, req.fault_vertices});
  const bool has_edge_faults = !canon_.edges().empty();
  const bool has_vertex_faults = !canon_.vertices().empty();
  const bool mixed = has_edge_faults && has_vertex_faults;

  // --- pinned requests -----------------------------------------------------
  if (!req.structure.empty()) {
    const int idx = find_entry(req.structure);
    if (idx < 0) {
      return refuse(std::move(resp), StatusCode::kUnknownSource,
                    "unknown structure '" + req.structure + "'");
    }
    const Entry& e = entries_[static_cast<std::size_t>(idx)];
    const bool exact = serves_exactly(e, req.source, canon_);
    if (!exact && req.consistency == Consistency::kExactOrRefuse) {
      if (e.source != req.source) {
        return refuse(std::move(resp), StatusCode::kUnknownSource,
                      "structure '" + e.name + "' is pinned to source " +
                          std::to_string(e.source));
      }
      if (!model_covers(e.model, has_edge_faults, has_vertex_faults)) {
        return refuse(std::move(resp), StatusCode::kUnsupportedFaultModel,
                      "structure '" + e.name + "' guarantees " +
                          std::string(to_string(e.model)) +
                          " faults only");
      }
      if (!e.exact) {
        return refuse(std::move(resp), StatusCode::kUnsupportedFaultModel,
                      "structure '" + e.name + "' is approximate (no "
                      "exactness guarantee); retry with best_effort "
                      "consistency");
      }
      return refuse(std::move(resp), StatusCode::kBudgetExceeded,
                    std::to_string(canon_.size()) +
                        " distinct faults exceed budget " +
                        std::to_string(e.budget) + " of structure '" +
                        e.name + "'");
    }
    resp.exact = exact;
    fill_payload(static_cast<std::size_t>(idx), req, resp);
    ++stats_.served;
    return resp;
  }

  // --- point-oracle fast path: O(1) per target, no BFS at all --------------
  if (!has_vertex_faults && canon_.edges().size() <= 1 &&
      (req.kind == QueryKind::kDistance ||
       req.kind == QueryKind::kReachability)) {
    const auto it = point_oracles_.find(req.source);
    if (it != point_oracles_.end()) {
      const SingleFaultOracle& po = it->second;
      const EdgeId down =
          has_edge_faults ? canon_.edges()[0] : kInvalidEdge;
      std::size_t unreachable = 0;
      for (const Vertex t : req.targets) {
        const std::uint32_t d = down == kInvalidEdge
                                    ? po.distance(t)
                                    : po.distance_avoiding(t, down);
        resp.distances.push_back(d);
        if (req.kind == QueryKind::kReachability) {
          resp.reachable.push_back(d != kInfHops);
        }
        if (d == kInfHops) ++unreachable;
      }
      if (req.kind == QueryKind::kDistance && !req.targets.empty() &&
          unreachable == req.targets.size()) {
        resp.status = StatusCode::kDisconnected;
      }
      resp.exact = true;
      resp.served_by = "point_oracle";
      ++stats_.point_oracle_served;
      ++stats_.served;
      return resp;
    }
  }

  // --- structure routing: cheapest entry that serves exactly ---------------
  int best = -1;
  bool saw_source = false;
  bool saw_model = false;   // some entry's model covers AND is exact
  bool saw_inexact = false; // model covers but the entry is approximate
  for (std::size_t i = 1; i < entries_.size(); ++i) {  // 0 = identity
    const Entry& e = entries_[i];
    if (e.source != req.source) continue;
    saw_source = true;
    if (model_covers(e.model, has_edge_faults, has_vertex_faults)) {
      (e.exact ? saw_model : saw_inexact) = true;
    }
    if (!serves_exactly(e, req.source, canon_)) continue;
    if (best < 0 ||
        e.edge_count < entries_[static_cast<std::size_t>(best)].edge_count) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0 && config_.lazy_build && !mixed &&
      canon_.size() <= config_.max_lazy_budget) {
    const FaultModel model =
        has_vertex_faults ? FaultModel::kVertex : FaultModel::kEdge;
    const unsigned budget = std::max(
        config_.default_budget, static_cast<unsigned>(canon_.size()));
    const std::string algo =
        BuilderRegistry::default_builder(budget, model, 1);
    BuildRequest breq;
    breq.graph = g_;
    breq.sources = {req.source};
    breq.fault_budget = budget;
    breq.fault_model = model;
    breq.weight_seed = config_.weight_seed;
    if (BuilderRegistry::instance().unsupported_reason(algo, breq).empty()) {
      std::string name = algo + "@s" + std::to_string(req.source) + "f" +
                         std::to_string(budget);
      while (find_entry(name) >= 0) name += "+";
      best = static_cast<int>(
          build_structure(std::move(name), req.source, budget, model, algo));
      ++stats_.structures_built;
    }
  }
  if (best >= 0) {
    resp.exact = true;
    fill_payload(static_cast<std::size_t>(best), req, resp);
    ++stats_.served;
    return resp;
  }

  // --- no exact backend ----------------------------------------------------
  if (req.consistency == Consistency::kBestEffort) {
    resp.exact = true;  // the identity engine is ground truth
    fill_payload(0, req, resp);
    ++stats_.served;
    return resp;
  }
  if (mixed) {
    return refuse(std::move(resp), StatusCode::kUnsupportedFaultModel,
                  "no structure guarantees mixed edge+vertex fault sets; "
                  "retry with best_effort consistency");
  }
  if (!saw_source && !config_.lazy_build) {
    return refuse(std::move(resp), StatusCode::kUnknownSource,
                  "no structure for source " + std::to_string(req.source) +
                      " (lazy build disabled)");
  }
  if (saw_source && !saw_model) {
    return refuse(std::move(resp), StatusCode::kUnsupportedFaultModel,
                  saw_inexact
                      ? "only approximate structures cover source " +
                            std::to_string(req.source) +
                            " for this fault model; retry with best_effort "
                            "consistency"
                      : "no structure for source " +
                            std::to_string(req.source) +
                            " guarantees this fault model");
  }
  return refuse(std::move(resp), StatusCode::kBudgetExceeded,
                std::to_string(canon_.size()) +
                    " distinct faults exceed every available structure "
                    "budget; retry with best_effort consistency");
}

}  // namespace ftbfs
