#include "service/oracle_service.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <new>
#include <utility>

#include "engine/registry.h"
#include "spath/bfs.h"
#include "util/failpoint.h"

namespace ftbfs {

namespace {

// True if `model` covers a fault set with the given composition. Mixed sets
// are covered by no single-model structure (only the identity engine).
bool model_covers(FaultModel model, bool has_edge_faults,
                  bool has_vertex_faults) {
  if (has_edge_faults && has_vertex_faults) return false;
  if (has_edge_faults) return model == FaultModel::kEdge;
  if (has_vertex_faults) return model == FaultModel::kVertex;
  return true;  // fault-free queries are within every FT guarantee
}

// Lazy-build key: one structure per (source, budget, model) shape.
std::uint64_t pack_pool_key(Vertex source, unsigned budget, FaultModel model) {
  return (static_cast<std::uint64_t>(source) << 32) |
         (static_cast<std::uint64_t>(budget & 0x7fffffffu) << 1) |
         (model == FaultModel::kVertex ? 1u : 0u);
}

}  // namespace

OracleService::Entry::Entry(const Graph& g, std::span<const EdgeId> edges)
    : edge_count(edges.size()), engine(g, edges), in_h(g.num_edges(), false) {
  for (const EdgeId e : edges) in_h[e] = true;
}

OracleService::Entry::Entry(const Graph& g)
    : name("identity"),
      budget(std::numeric_limits<unsigned>::max()),
      identity(true),
      edge_count(g.num_edges()),
      engine(g) {}

OracleService::OracleService(const Graph& g, ServiceConfig config)
    : g_(&g),
      config_(config),
      cache_(config.cache_capacity, config.cache_shards),
      lazy_builds_(config.cache_shards) {
  Entry identity(*g_);  // entry 0: ground truth, always available
  configure_engine(identity);
  entries_.push_back(std::move(identity));
}

// The one place an entry's engine picks up the service-level query-path
// config; every Entry must pass through here before it is published.
void OracleService::configure_engine(Entry& entry) const {
  entry.engine.set_delta_options(FaultQueryEngine::DeltaOptions{
      config_.delta_queries, config_.delta_max_affected_fraction});
}

std::size_t OracleService::publish_entry(Entry entry) {
  const std::unique_lock lock(pool_mutex_);
  // Racing eager adds can take any name first; a lazy build keeps its
  // deterministic base name unless the name is genuinely occupied.
  while (find_entry_locked(entry.name) >= 0) entry.name += "+";
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

std::size_t OracleService::add_structure(std::string name, Vertex source,
                                         unsigned fault_budget,
                                         FaultModel model,
                                         std::span<const EdgeId> edges,
                                         bool exact) {
  FTBFS_EXPECTS(!name.empty());
  FTBFS_EXPECTS(source < g_->num_vertices());
  Entry entry(*g_, edges);  // subgraph materialization, outside any lock
  entry.name = std::move(name);
  entry.source = source;
  entry.budget = fault_budget;
  entry.model = model;
  entry.exact = exact;
  configure_engine(entry);
  {
    const std::unique_lock lock(pool_mutex_);
    FTBFS_EXPECTS(find_entry_locked(entry.name) < 0);
    entries_.push_back(std::move(entry));
    return entries_.size() - 1;
  }
}

std::size_t OracleService::build_structure(std::string name, Vertex source,
                                           unsigned fault_budget,
                                           FaultModel model,
                                           std::string_view algo) {
  const BuilderRegistry& reg = BuilderRegistry::instance();
  const std::string chosen =
      algo.empty() ? BuilderRegistry::default_builder(fault_budget, model, 1)
                   : std::string(algo);
  BuildRequest req;
  req.graph = g_;
  req.sources = {source};
  req.fault_budget = fault_budget;
  req.fault_model = model;
  req.weight_seed = config_.weight_seed;
  req.options.jobs = config_.build_jobs;
  FTBFS_EXPECTS(reg.unsupported_reason(chosen, req).empty());
  const BuildResult built = reg.build(chosen, req);
  const BuilderTraits* traits = reg.find(built.algorithm);
  const std::size_t idx =
      add_structure(std::move(name), source, fault_budget, model,
                    built.structure.edges, traits == nullptr || traits->exact);
  {
    const std::unique_lock lock(pool_mutex_);
    entries_[idx].algorithm = built.algorithm;
  }
  return idx;
}

void OracleService::enable_point_oracle(Vertex source) {
  FTBFS_EXPECTS(source < g_->num_vertices());
  point_oracles_.try_emplace(source, *g_, source, config_.weight_seed);
}

ServiceStats OracleService::stats() const {
  ServiceStats out;
  out.requests = counters_.requests.load(std::memory_order_relaxed);
  out.served = counters_.served.load(std::memory_order_relaxed);
  out.refused = counters_.refused.load(std::memory_order_relaxed);
  out.cache_hits = cache_.total_hits();
  out.cache_misses = cache_.total_misses();
  out.cache_evictions = cache_.total_evictions();
  out.cache_lines = cache_.size();
  out.cache_resident_bytes = cache_.total_resident_bytes();
  out.structures_built =
      counters_.structures_built.load(std::memory_order_relaxed);
  out.identity_served =
      counters_.identity_served.load(std::memory_order_relaxed);
  out.point_oracle_served =
      counters_.point_oracle_served.load(std::memory_order_relaxed);
  {
    // Aggregate the engines' query-path counters; entries are append-only so
    // the shared lock only fences the deque scan against a racing publish.
    const std::shared_lock lock(pool_mutex_);
    for (const Entry& e : entries_) {
      const FaultQueryEngine::PathStats ps = e.engine.path_stats();
      out.fast_path_hits += ps.fast_path_hits;
      out.repair_bfs += ps.repair_bfs;
      out.full_bfs += ps.full_bfs;
    }
  }
  return out;
}

std::size_t OracleService::pool_size() const {
  const std::shared_lock lock(pool_mutex_);
  return entries_.size();
}

const std::string& OracleService::entry_name(std::size_t entry) const {
  const std::shared_lock lock(pool_mutex_);
  FTBFS_EXPECTS(entry < entries_.size());
  return entries_[entry].name;
}

std::uint64_t OracleService::entry_edges(std::size_t entry) const {
  const std::shared_lock lock(pool_mutex_);
  FTBFS_EXPECTS(entry < entries_.size());
  return entries_[entry].edge_count;
}

FaultQueryEngine& OracleService::engine(std::size_t entry) {
  const std::shared_lock lock(pool_mutex_);
  FTBFS_EXPECTS(entry < entries_.size());
  return entries_[entry].engine;
}

int OracleService::find_entry_locked(std::string_view name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool OracleService::serves_exactly(const Entry& e, Vertex source,
                                   const CanonicalFaultSet& canon) const {
  if (e.identity) return true;  // ground truth serves anything exactly
  return e.source == source && e.exact &&
         model_covers(e.model, !canon.edges().empty(),
                      !canon.vertices().empty()) &&
         canon.size() <= e.budget;
}

OracleService::Entry& OracleService::entry_ref(std::size_t entry) {
  const std::shared_lock lock(pool_mutex_);
  return entries_[entry];
}

ScenarioKeyView OracleService::cache_key(
    const Entry& e, std::size_t entry, Vertex source,
    const CanonicalFaultSet& canon, std::vector<std::uint32_t>& words) const {
  words.clear();
  words.push_back(static_cast<std::uint32_t>(entry));
  words.push_back(source);
  // Project onto H: faults absent from the structure cannot change answers,
  // so scenarios differing only in absent edges share one cache line. The
  // projected edge count keeps the edge/vertex boundary unambiguous.
  words.push_back(0);  // patched to the projected edge count below
  for (const EdgeId f : canon.edges()) {
    if (e.identity || e.in_h[f]) words.push_back(f);
  }
  words[2] = static_cast<std::uint32_t>(words.size() - 3);
  for (const Vertex v : canon.vertices()) words.push_back(v);
  return ScenarioKeyView{scenario_fingerprint(words), words};
}

QueryResponse OracleService::refuse(QueryResponse resp, StatusCode status,
                                    std::string why) {
  resp.status = status;
  resp.error = std::move(why);
  counters_.refused.fetch_add(1, std::memory_order_relaxed);
  return resp;
}

void OracleService::plan_payload(ServePlan& plan, const QueryRequest& req,
                                 const CanonicalFaultSet& canon) {
  // Paths need BFS parents, which the scenario cache does not retain — path
  // requests always go to the engine.
  if (req.kind == QueryKind::kPath || !cache_.enabled()) return;
  // Single-target miss: an early-exit BFS beats the full sweep a cache line
  // would need, so do not reserve a line (a hit is still used).
  const bool reserve =
      !(req.kind == QueryKind::kDistance && req.targets.size() == 1);
  // Per-thread key-word scratch: the packed key lives only for the probe
  // call, so one reused buffer per thread keeps the admission path free of
  // heap allocation and of per-probe re-hashing.
  static thread_local std::vector<std::uint32_t> key_words;
  ShardedScenarioCache::Probe probe = cache_.probe(
      cache_key(*plan.e, plan.entry, req.source, canon, key_words), reserve);
  if (probe.hit) {
    plan.line = std::move(probe.line);
    plan.cache_hit = true;
  } else if (probe.owner) {
    plan.line = probe.line;
    plan.fill_line = true;
    plan.fill_obligation.line = std::move(probe.line);
  }
}

void OracleService::fill_payload(ServePlan& plan, const QueryRequest& req,
                                 const CanonicalFaultSet& canon,
                                 QueryResponse& resp) {
  Entry& e = *plan.e;
  resp.served_by = e.name;
  if (e.identity) {
    counters_.identity_served.fetch_add(1, std::memory_order_relaxed);
  }
  const FaultSpec faults = canon.spec();

  if (req.kind == QueryKind::kPath) {
    FaultQueryEngine::ScratchLease lease = e.engine.acquire_scratch();
    std::size_t unreachable = 0;
    for (const Vertex t : req.targets) {
      auto path = e.engine.shortest_path(lease, req.source, t, faults);
      if (path.has_value()) {
        resp.distances.push_back(static_cast<std::uint32_t>(path->size() - 1));
        resp.paths.push_back(std::move(*path));
      } else {
        ++unreachable;
        resp.distances.push_back(kInfHops);
        resp.paths.emplace_back();
      }
    }
    if (!req.targets.empty() && unreachable == req.targets.size()) {
      resp.status = StatusCode::kDisconnected;
    }
    return;
  }

  resp.cache_hit = plan.cache_hit;
  const ShardedScenarioCache::Line* line = nullptr;
  if (plan.cache_hit) {
    // Computed by whoever reserved the line (possibly still in flight). A
    // poisoned payload is what a failed computer leaves behind — fall
    // through and compute locally rather than serving garbage, and stop
    // claiming the answer came from the cache.
    ShardedScenarioCache::wait(*plan.line);
    if (!ShardedScenarioCache::poisoned(*plan.line)) {
      line = plan.line.get();
    } else {
      resp.cache_hit = false;
    }
  }
  if (line == nullptr && req.kind == QueryKind::kDistance &&
      req.targets.size() == 1) {
    FaultQueryEngine::ScratchLease lease = e.engine.acquire_scratch();
    const std::uint32_t d =
        e.engine.distance(lease, req.source, req.targets[0], faults);
    resp.distances.push_back(d);
    if (d == kInfHops) resp.status = StatusCode::kDisconnected;
    return;
  }
  // Keep the lease (and the full vector it backs) alive until the payload is
  // copied out below.
  std::optional<FaultQueryEngine::ScratchLease> lease;
  const std::vector<std::uint32_t>* hops = nullptr;
  if (line == nullptr) {
    lease.emplace(e.engine.acquire_scratch());
    const std::vector<std::uint32_t>& full =
        e.engine.all_distances(*lease, req.source, faults);
    if (plan.fill_line) {
      // Building the payload can throw (it allocates); the plan's fill
      // obligation stays armed — poisoning the line for the waiters — until
      // the real distances are published.
      fill_scenario_line(e, req.source, full, *plan.line);
      plan.fill_obligation.disarm();
    }
    hops = &full;  // serve straight from the lease either way
  }
  const auto hop_at = [&](Vertex t) {
    return hops != nullptr ? (*hops)[t] : ShardedScenarioCache::at(*line, t);
  };

  switch (req.kind) {
    case QueryKind::kAllDistances:
      if (hops != nullptr) {
        resp.distances = *hops;
      } else {
        ShardedScenarioCache::materialize(*line, resp.distances);
      }
      break;
    case QueryKind::kDistance: {
      std::size_t unreachable = 0;
      for (const Vertex t : req.targets) {
        const std::uint32_t d = hop_at(t);
        resp.distances.push_back(d);
        if (d == kInfHops) ++unreachable;
      }
      if (!req.targets.empty() && unreachable == req.targets.size()) {
        resp.status = StatusCode::kDisconnected;
      }
      break;
    }
    case QueryKind::kReachability:
      for (const Vertex t : req.targets) {
        const std::uint32_t d = hop_at(t);
        resp.distances.push_back(d);
        resp.reachable.push_back(d != kInfHops);
      }
      break;
    case QueryKind::kPath:
      break;  // handled above
  }
}

// Publishes one computed scenario onto its reserved cache line, choosing the
// representation: a sorted (vertex, hop) diff against the entry engine's
// per-source baseline when the diff is small enough (the warm line then
// holds O(affected) bytes instead of O(n)), the full vector otherwise — or
// when the engine has no baseline to diff against. The choice depends only
// on (baseline, distances, threshold), so threaded serving replays it
// deterministically.
void OracleService::fill_scenario_line(Entry& e, Vertex source,
                                       const std::vector<std::uint32_t>& full,
                                       ShardedScenarioCache::Line& line) {
  const std::vector<std::uint32_t>* base =
      config_.cache_delta_max_fraction > 0.0 ? e.engine.baseline_hops(source)
                                             : nullptr;
  if (base != nullptr) {
    if (&full == base) {
      // Fast-path miss: the engine answered straight from the baseline
      // vector itself, so the diff is empty by identity — skip the scan.
      ShardedScenarioCache::fill_delta(line, base, {});
      return;
    }
    const std::size_t limit = static_cast<std::size_t>(
        config_.cache_delta_max_fraction * static_cast<double>(full.size()));
    std::vector<std::uint64_t> diff;
    for (Vertex v = 0; v < full.size() && diff.size() <= limit; ++v) {
      if (full[v] != (*base)[v]) {
        diff.push_back((static_cast<std::uint64_t>(v) << 32) | full[v]);
      }
    }
    if (diff.size() <= limit) {
      ShardedScenarioCache::fill_delta(line, base, std::move(diff));
      return;
    }
  }
  ShardedScenarioCache::fill(line, full);  // escape hatch: full copy
}

QueryResponse OracleService::serve(const QueryRequest& req) {
  return execute(admit(req));
}

QueryResponse OracleService::serve(const QueryRequest& req,
                                   RequestSequencer& sequencer,
                                   std::uint64_t ticket) {
  sequencer.wait_for(ticket);
  Admission admission;
  {
    // Burn exactly one ticket even if admission throws (a stuck ticket would
    // deadlock every later one).
    struct AdvanceGuard {
      RequestSequencer* s;
      ~AdvanceGuard() { s->advance(); }
    } guard{&sequencer};
    admission = admit(req);
  }
  return execute(std::move(admission));
}

OracleService::Admission OracleService::admit(const QueryRequest& req) {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  Admission a;
  a.req = &req;
  a.resp.id = req.id;

  // Refusal exit: the response is final, execute() just hands it back.
  auto refused = [&](StatusCode status, std::string why) {
    a.resp = refuse(std::move(a.resp), status, std::move(why));
    a.done = true;
    return std::move(a);
  };

  // --- validation: unknown ids are status codes, never aborts --------------
  const Vertex n = g_->num_vertices();
  if (req.source >= n) {
    return refused(StatusCode::kUnknownSource,
                   "source " + std::to_string(req.source) + " out of range");
  }
  for (const Vertex t : req.targets) {
    if (t >= n) {
      return refused(StatusCode::kUnknownSource,
                     "target " + std::to_string(t) + " out of range");
    }
  }
  for (const EdgeId f : req.fault_edges) {
    if (f >= g_->num_edges()) {
      return refused(StatusCode::kUnknownSource,
                     "fault edge id " + std::to_string(f) + " out of range");
    }
  }
  for (const Vertex v : req.fault_vertices) {
    if (v >= n) {
      return refused(StatusCode::kUnknownSource,
                     "fault vertex " + std::to_string(v) + " out of range");
    }
  }

  a.canon.assign(FaultSpec{req.fault_edges, req.fault_vertices});
  const CanonicalFaultSet& canon = a.canon;
  const bool has_edge_faults = !canon.edges().empty();
  const bool has_vertex_faults = !canon.vertices().empty();
  const bool mixed = has_edge_faults && has_vertex_faults;

  // The one way out for served (non-refused) requests: finish admission with
  // the cache probe; the execution tail runs from the plan alone.
  auto complete = [&](Entry* e, std::size_t entry, bool exact) {
    a.plan.e = e;
    a.plan.entry = entry;
    a.plan.exact = exact;
    plan_payload(a.plan, req, canon);
    return std::move(a);
  };

  // --- pinned requests -----------------------------------------------------
  if (!req.structure.empty()) {
    int idx = -1;
    Entry* pinned = nullptr;
    {
      const std::shared_lock lock(pool_mutex_);
      idx = find_entry_locked(req.structure);
      if (idx >= 0) pinned = &entries_[static_cast<std::size_t>(idx)];
    }
    if (idx < 0) {
      return refused(StatusCode::kUnknownSource,
                     "unknown structure '" + req.structure + "'");
    }
    const Entry& e = *pinned;
    const bool exact = serves_exactly(e, req.source, canon);
    if (!exact && req.consistency == Consistency::kExactOrRefuse) {
      if (e.source != req.source) {
        return refused(StatusCode::kUnknownSource,
                       "structure '" + e.name + "' is pinned to source " +
                           std::to_string(e.source));
      }
      if (!model_covers(e.model, has_edge_faults, has_vertex_faults)) {
        return refused(StatusCode::kUnsupportedFaultModel,
                       "structure '" + e.name + "' guarantees " +
                           std::string(to_string(e.model)) +
                           " faults only");
      }
      if (!e.exact) {
        return refused(StatusCode::kUnsupportedFaultModel,
                       "structure '" + e.name + "' is approximate (no "
                       "exactness guarantee); retry with best_effort "
                       "consistency");
      }
      return refused(StatusCode::kBudgetExceeded,
                     std::to_string(canon.size()) +
                         " distinct faults exceed budget " +
                         std::to_string(e.budget) + " of structure '" +
                         e.name + "'");
    }
    return complete(pinned, static_cast<std::size_t>(idx), exact);
  }

  // --- point-oracle fast path: O(1) per target, no BFS at all --------------
  if (!has_vertex_faults && canon.edges().size() <= 1 &&
      (req.kind == QueryKind::kDistance ||
       req.kind == QueryKind::kReachability)) {
    const auto it = point_oracles_.find(req.source);
    if (it != point_oracles_.end()) {
      // Const preprocessed tables, no shared serving state: the reads happen
      // in the (unordered) execution tail.
      a.point = &it->second;
      return a;
    }
  }

  // --- structure routing: cheapest entry that serves exactly ---------------
  int best = -1;
  bool saw_source = false;
  bool saw_model = false;   // some entry's model covers AND is exact
  bool saw_inexact = false; // model covers but the entry is approximate
  {
    const std::shared_lock lock(pool_mutex_);
    for (std::size_t i = 1; i < entries_.size(); ++i) {  // 0 = identity
      const Entry& e = entries_[i];
      if (e.source != req.source) continue;
      saw_source = true;
      if (model_covers(e.model, has_edge_faults, has_vertex_faults)) {
        (e.exact ? saw_model : saw_inexact) = true;
      }
      if (!serves_exactly(e, req.source, canon)) continue;
      if (best < 0 ||
          e.edge_count < entries_[static_cast<std::size_t>(best)].edge_count) {
        best = static_cast<int>(i);
      }
    }
  }
  if (best < 0 && config_.lazy_build && !mixed &&
      canon.size() <= config_.max_lazy_budget) {
    const FaultModel model =
        has_vertex_faults ? FaultModel::kVertex : FaultModel::kEdge;
    const unsigned budget = std::max(
        config_.default_budget, static_cast<unsigned>(canon.size()));
    const std::string algo =
        BuilderRegistry::default_builder(budget, model, 1);
    BuildRequest breq;
    breq.graph = g_;
    breq.sources = {req.source};
    breq.fault_budget = budget;
    breq.fault_model = model;
    breq.weight_seed = config_.weight_seed;
    breq.options.jobs = config_.build_jobs;
    if (BuilderRegistry::instance().unsupported_reason(algo, breq).empty()) {
      // Exactly-once under racing requests: the first claimant builds (with
      // no lock held — racing requests for other keys keep flowing), racers
      // block on the cell and reuse the published entry.
      const std::uint64_t pool_key = pack_pool_key(req.source, budget, model);
      const BuildOnceMap::Claim claim = lazy_builds_.claim(pool_key);
      if (claim.owner) {
        int built = -1;
        try {
          {
            // Chaos hook: a lazy build is the largest allocation burst on the
            // serving path; err() here simulates it failing under memory
            // pressure, exercising the kOverloaded refusal below.
            static fp::Failpoint& fp_build = fp::site("service.build_alloc");
            if (fp::eval(fp_build).kind == fp::Outcome::Kind::kErr) {
              throw std::bad_alloc();
            }
          }
          const BuildResult result =
              BuilderRegistry::instance().build(algo, breq);
          const BuilderTraits* traits =
              BuilderRegistry::instance().find(result.algorithm);
          Entry entry(*g_, result.structure.edges);
          entry.name = algo + "@s" + std::to_string(req.source) + "f" +
                       std::to_string(budget);
          entry.algorithm = result.algorithm;
          entry.source = req.source;
          entry.budget = budget;
          entry.model = model;
          entry.exact = traits == nullptr || traits->exact;
          configure_engine(entry);
          built = static_cast<int>(publish_entry(std::move(entry)));
          counters_.structures_built.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception& ex) {
          // Publish the failure so racers wake instead of hanging on the
          // cell, then drop the key so a later request retries the build (a
          // transient failure must not refuse this shape forever). The build
          // failing is a *load* condition — answer kOverloaded, never crash
          // the serving thread.
          BuildOnceMap::publish(*claim.cell, built);
          lazy_builds_.forget(pool_key);
          return refused(StatusCode::kOverloaded,
                         std::string("lazy structure build failed (") +
                             ex.what() + "); retry later");
        }
        BuildOnceMap::publish(*claim.cell, built);
        best = built;
      } else {
        best = BuildOnceMap::wait(*claim.cell);
        if (best < 0) {
          return refused(StatusCode::kOverloaded,
                         "lazy structure build failed in a racing request; "
                         "retry later");
        }
      }
    }
  }
  if (best >= 0) {
    const std::size_t entry = static_cast<std::size_t>(best);
    return complete(&entry_ref(entry), entry, /*exact=*/true);
  }

  // --- no exact backend ----------------------------------------------------
  if (req.consistency == Consistency::kBestEffort) {
    // The identity engine (entry 0) is ground truth.
    return complete(&entry_ref(0), 0, /*exact=*/true);
  }
  if (mixed) {
    return refused(StatusCode::kUnsupportedFaultModel,
                   "no structure guarantees mixed edge+vertex fault sets; "
                   "retry with best_effort consistency");
  }
  if (!saw_source && !config_.lazy_build) {
    return refused(StatusCode::kUnknownSource,
                   "no structure for source " + std::to_string(req.source) +
                       " (lazy build disabled)");
  }
  if (saw_source && !saw_model) {
    return refused(StatusCode::kUnsupportedFaultModel,
                   saw_inexact
                       ? "only approximate structures cover source " +
                             std::to_string(req.source) +
                             " for this fault model; retry with best_effort "
                             "consistency"
                       : "no structure for source " +
                             std::to_string(req.source) +
                             " guarantees this fault model");
  }
  return refused(StatusCode::kBudgetExceeded,
                 std::to_string(canon.size()) +
                     " distinct faults exceed every available structure "
                     "budget; retry with best_effort consistency");
}

QueryResponse OracleService::execute(Admission admission) {
  QueryResponse resp = std::move(admission.resp);
  if (admission.done) return resp;
  const QueryRequest& req = *admission.req;

  if (admission.point != nullptr) {
    const SingleFaultOracle& po = *admission.point;
    const EdgeId down = admission.canon.edges().empty()
                            ? kInvalidEdge
                            : admission.canon.edges()[0];
    std::size_t unreachable = 0;
    for (const Vertex t : req.targets) {
      const std::uint32_t d = down == kInvalidEdge
                                  ? po.distance(t)
                                  : po.distance_avoiding(t, down);
      resp.distances.push_back(d);
      if (req.kind == QueryKind::kReachability) {
        resp.reachable.push_back(d != kInfHops);
      }
      if (d == kInfHops) ++unreachable;
    }
    if (req.kind == QueryKind::kDistance && !req.targets.empty() &&
        unreachable == req.targets.size()) {
      resp.status = StatusCode::kDisconnected;
    }
    resp.exact = true;
    resp.served_by = "point_oracle";
    counters_.point_oracle_served.fetch_add(1, std::memory_order_relaxed);
    counters_.served.fetch_add(1, std::memory_order_relaxed);
    return resp;
  }

  resp.exact = admission.plan.exact;
  fill_payload(admission.plan, req, admission.canon, resp);
  counters_.served.fetch_add(1, std::memory_order_relaxed);
  return resp;
}

}  // namespace ftbfs
