// Multi-graph tenancy for the serving layer.
//
// One process can host many named graphs, each with its own OracleService —
// structure pool, scenario-cache capacity slice, lazy-build settings — plus
// per-tenant quotas and stats. A TenantRegistry owns the tenants; requests
// carry an optional "tenant" field that routes *before* admission (fault
// endpoints can only be resolved against the named tenant's graph), the
// default tenant serving every line that names none. Tenants are registered
// during setup, before any serving thread starts; from then on the registry
// is immutable and every lookup is lock-free.
//
// LineJob is the one request-line serving pipeline shared by every front-end
// (the stdin loops in ftbfs_cli and the socket workers in src/net/): it
// splits a raw JSONL line into the same three phases OracleService exposes —
//   parse   (JSON + tenant route + fault resolution; thread-private)
//   admit   (quota gate + OracleService::admit — everything that reads or
//            advances shared serving state; ordered serve modes run this
//            slice under their sequencer turn)
//   finish  (OracleService::execute + response formatting; thread-private)
// — so ordered, relaxed, batched, stdin, and socket serving cannot drift
// apart in how they answer a line.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "service/oracle_service.h"
#include "service/protocol.h"

namespace ftbfs {

// Per-tenant serving limits. 0 = unlimited. Quota refusals are *answers*
// (StatusCode::kQuotaExceeded), never errors, and never touch the tenant's
// service — an over-quota tenant cannot perturb anyone's cache or pool.
struct TenantQuotas {
  // Ceiling on admitted requests over the tenant's lifetime (parse errors and
  // unknown-tenant lines never reach the gate; refusals the service itself
  // issues do count — they consumed admission work).
  std::uint64_t max_requests = 0;
};

struct Tenant {
  std::string name;  // "" never occurs; the default tenant has a real name
  Graph graph;       // owned — the service borrows it for life
  TenantQuotas quotas;
  OracleService service;

  Tenant(std::string name_, Graph graph_, ServiceConfig config,
         TenantQuotas quotas_)
      : name(std::move(name_)),
        graph(std::move(graph_)),
        quotas(quotas_),
        service(graph, config) {}

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  // Admission gate: false once the request quota is exhausted. Monotone
  // fetch_add keeps it one relaxed RMW; `admit_attempts` therefore counts
  // attempts, not admissions — admitted traffic is `service.stats().requests`.
  bool try_admit() {
    const std::uint64_t prev =
        admit_attempts.fetch_add(1, std::memory_order_relaxed);
    if (quotas.max_requests != 0 && prev >= quotas.max_requests) {
      quota_refused.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  std::atomic<std::uint64_t> admit_attempts{0};
  std::atomic<std::uint64_t> quota_refused{0};
};

// Point-in-time stats for one tenant (see OracleService::stats()).
struct TenantStats {
  std::string name;
  ServiceStats service;
  std::uint64_t quota_refused = 0;
};

class TenantRegistry {
 public:
  TenantRegistry() = default;
  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  // Registers a tenant owning `graph`. The first tenant added is the default
  // (requests naming no tenant route to it). Names must be unique and
  // non-empty. NOT thread-safe — registration happens before serving starts;
  // afterwards the registry is read-only and lookups take no lock.
  Tenant& add(std::string name, Graph graph, ServiceConfig config = {},
              TenantQuotas quotas = {});

  // Registers a tenant whose graph and structure pool come from a .ftb
  // snapshot (src/persist/): the snapshot's graph becomes the tenant's, its
  // entries/baselines are restored into the service, and `warm_cache`
  // pre-fills the scenario cache from the snapshot's cache image. When
  // `graph_path` is non-empty, that file is loaded first and its fingerprint
  // must match the snapshot's — a snapshot built from a different graph is
  // rejected (SnapshotError, kGraphMismatch) before the tenant exists, never
  // served against. Throws SnapshotError on any snapshot rejection.
  Tenant& add_from_snapshot(std::string name, const std::string& snapshot_path,
                            ServiceConfig config = {}, TenantQuotas quotas = {},
                            bool warm_cache = false,
                            const std::string& graph_path = {});

  // Registers every tenant named in a JSON manifest file (see the schema
  // table in docs/serving.md "Network serving & tenants"). Schema 2:
  //   {"schema": 2,
  //    "tenants": [{"name": "alpha", "graph": "a.txt", "cache": 256,
  //                 "budget": 2, "max_lazy": 3, "lazy": true, "seed": 1,
  //                 "max_requests": 0, "snapshot": "a.ftb",
  //                 "cache_warm": false}, ...]}
  // `name` plus one of `graph`/`snapshot` are required (both = fingerprint
  // cross-check); everything else defaults to `base`. Unknown keys warn on
  // stderr under schema 2. Manifests without "schema" (or with "schema": 1)
  // parse with schema-1 semantics — no snapshot keys, unknown keys fatal —
  // plus a deprecation warning. Throws GraphIoError on unreadable/malformed
  // manifests or graphs, SnapshotError on snapshot rejections.
  void load_manifest(const std::string& path, const ServiceConfig& base = {});

  // nullptr when unknown; "" resolves to the default tenant.
  [[nodiscard]] Tenant* find(std::string_view name);
  [[nodiscard]] Tenant* default_tenant() {
    return tenants_.empty() ? nullptr : &tenants_.front();
  }
  [[nodiscard]] std::size_t size() const { return tenants_.size(); }
  [[nodiscard]] std::deque<Tenant>& tenants() { return tenants_; }

  // Adapter for parse_request_line: tenant name → graph to resolve against.
  [[nodiscard]] GraphResolver resolver();

  // Per-tenant snapshots, and their sum — the process-wide serving picture.
  // global_stats() is exactly the field-wise sum of stats(): per-tenant
  // accounting never loses a request.
  [[nodiscard]] std::vector<TenantStats> stats() const;
  [[nodiscard]] TenantStats global_stats() const;

 private:
  // deque: tenants are address-stable (services own mutexes and are pinned).
  std::deque<Tenant> tenants_;
};

// Wire-level counters every serve loop shares (requests that never reach a
// service): parse errors, resolution refusals (bad edges / unknown tenants),
// and quota refusals.
struct WireCounters {
  std::atomic<std::uint64_t> parse_errors{0};
  std::atomic<std::uint64_t> resolve_refusals{0};
  std::atomic<std::uint64_t> quota_refusals{0};
};

// One request line moving through parse → admit → finish. See the file
// comment for the phase contract. `stamp_seq` mirrors the relaxed serve
// modes: the response carries `seq` so id-less lines stay correlatable.
class LineJob {
 public:
  // Parse phase. Runs anywhere; touches no shared serving state beyond the
  // (immutable) registry and the wire counters.
  LineJob(TenantRegistry& registry, const std::string& line, std::int64_t seq,
          bool stamp_seq, WireCounters& counters);

  // Admission phase: quota gate + OracleService::admit. Ordered serve modes
  // call this under their sequencer turn; no-op when the line was already
  // answered at parse time. Must be called exactly once before finish().
  void admit();

  // Execution phase: OracleService::execute + formatting. Returns the
  // response line (no trailing newline).
  [[nodiscard]] std::string finish();

 private:
  TenantRegistry* registry_;
  WireCounters* counters_;
  Tenant* tenant_ = nullptr;
  // Heap-pinned: OracleService::Admission keeps a pointer to the request
  // across admit() → finish(), so the request must not move with the job.
  std::unique_ptr<ParsedRequest> parsed_;
  std::optional<OracleService::Admission> admission_;
  std::optional<std::string> local_;  // final line decided before execution
  std::int64_t seq_;
  bool stamp_seq_;
};

}  // namespace ftbfs
