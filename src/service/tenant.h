// Multi-graph tenancy for the serving layer.
//
// One process can host many named graphs, each with its own OracleService —
// structure pool, scenario-cache capacity slice, lazy-build settings — plus
// per-tenant quotas and stats. A TenantRegistry owns the tenants; requests
// carry an optional "tenant" field that routes *before* admission (fault
// endpoints can only be resolved against the named tenant's graph), the
// default tenant serving every line that names none.
//
// Reload. Since PR 9 the registry is no longer frozen at startup: reload()
// re-reads a tenant manifest against live traffic (the SIGHUP path in
// src/net/net_server.cpp) — new tenants become routable, tenants missing
// from the new manifest are *retired* (unroutable for new requests, alive
// until their in-flight requests drain), and surviving tenants get their
// quotas updated in place. Concurrency contract: lookups take a shared lock
// and *pin* the tenant (LineJob holds the pin across parse → finish), so a
// retired tenant's graph and service outlive every request that routed to it;
// reap_retired() frees retired tenants whose pin count has hit zero.
//
// LineJob is the one request-line serving pipeline shared by every front-end
// (the stdin loops in ftbfs_cli and the socket workers in src/net/): it
// splits a raw JSONL line into the same three phases OracleService exposes —
//   parse   (JSON + tenant route + fault resolution; thread-private)
//   admit   (deadline + rate-limit + quota gates + OracleService::admit —
//            everything that reads or advances shared serving state; ordered
//            serve modes run this slice under their sequencer turn)
//   finish  (deadline recheck + OracleService::execute + formatting;
//            thread-private)
// — so ordered, relaxed, batched, stdin, and socket serving cannot drift
// apart in how they answer a line.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "service/oracle_service.h"
#include "service/protocol.h"

namespace ftbfs {

// Per-tenant serving limits. 0 = unlimited / disabled. Every limit refusal is
// an *answer* (kQuotaExceeded / kRateLimited / kDeadlineExceeded), never an
// error, and never touches the tenant's service — an over-limit tenant cannot
// perturb anyone's cache or pool.
struct TenantQuotas {
  // Ceiling on admitted requests over the tenant's lifetime (parse errors and
  // unknown-tenant lines never reach the gate; refusals the service itself
  // issues do count — they consumed admission work).
  std::uint64_t max_requests = 0;
  // Token-bucket rate limit: sustained requests/second (fractional rates are
  // legal: 0.5 = one request per 2 s) and the bucket capacity. burst == 0
  // defaults to max(1, ceil(rate)). Checked pre-admission so one tenant's
  // flood cannot starve another tenant's queue slots.
  double rate_limit_rps = 0.0;
  std::uint64_t rate_limit_burst = 0;
  // Default deadline applied to requests that carry no "deadline_ms" wire
  // field (a request's own field always wins).
  std::int64_t deadline_ms = 0;
};

struct Tenant {
  std::string name;  // "" never occurs; the default tenant has a real name
  Graph graph;       // owned — the service borrows it for life
  OracleService service;
  // Manifest provenance, recorded so reload() can tell a re-quota (same
  // sources → update in place) from a replacement (retire + re-add). Empty
  // for programmatically added tenants, which reload() always retires when
  // absent from the new manifest.
  std::string graph_path;
  std::string snapshot_path;

  Tenant(std::string name_, Graph graph_, ServiceConfig config,
         TenantQuotas quotas_)
      : name(std::move(name_)),
        graph(std::move(graph_)),
        service(graph, config) {
    set_quotas(quotas_);
  }

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  // Lifetime-quota gate: false once the request quota is exhausted. Monotone
  // fetch_add keeps it one relaxed RMW; `admit_attempts` therefore counts
  // attempts, not admissions — admitted traffic is `service.stats().requests`.
  bool try_admit() {
    const std::uint64_t prev =
        admit_attempts.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t cap = max_requests.load(std::memory_order_relaxed);
    if (cap != 0 && prev >= cap) {
      quota_refused.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  // Token-bucket gate at `now`: true consumes one token. The unlimited fast
  // path is one relaxed load; the bucket itself is mutex-guarded (refill math
  // is not worth a CAS loop — limited tenants are paying for arithmetic, not
  // contention). Taking `now` as a parameter keeps tests deterministic.
  bool try_acquire_token(std::chrono::steady_clock::time_point now) {
    if (!rate_limited_.load(std::memory_order_relaxed)) return true;
    const std::lock_guard lock(rate_mutex_);
    if (rate_rps_ <= 0.0) return true;  // raced a reload that lifted the limit
    const double elapsed =
        std::chrono::duration<double>(now - rate_last_).count();
    if (elapsed > 0.0) {
      rate_tokens_ = std::min(static_cast<double>(rate_burst_),
                              rate_tokens_ + elapsed * rate_rps_);
      rate_last_ = now;
    }
    if (rate_tokens_ < 1.0) {
      rate_refused.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    rate_tokens_ -= 1.0;
    return true;
  }

  // Same gate, reading the clock only when a limit is actually configured —
  // the unlimited hot path stays clock-free.
  bool try_acquire_token_now() {
    if (!rate_limited_.load(std::memory_order_relaxed)) return true;
    return try_acquire_token(std::chrono::steady_clock::now());
  }

  // Applies new quotas (construction and hot reload). A re-quota resets the
  // bucket to a full burst: the operator just declared a new contract; making
  // the old debt carry over would punish the reload.
  void set_quotas(const TenantQuotas& q) {
    max_requests.store(q.max_requests, std::memory_order_relaxed);
    default_deadline_ms.store(q.deadline_ms, std::memory_order_relaxed);
    const std::lock_guard lock(rate_mutex_);
    rate_rps_ = q.rate_limit_rps;
    rate_burst_ = q.rate_limit_burst != 0
                      ? q.rate_limit_burst
                      : static_cast<std::uint64_t>(
                            std::max(1.0, std::ceil(q.rate_limit_rps)));
    rate_tokens_ = static_cast<double>(rate_burst_);
    rate_last_ = std::chrono::steady_clock::now();
    rate_limited_.store(q.rate_limit_rps > 0.0, std::memory_order_relaxed);
  }

  // True when any time-based gate (deadline) applies to this tenant's
  // requests — the serve loops skip the clock read entirely otherwise.
  [[nodiscard]] std::int64_t deadline_default() const {
    return default_deadline_ms.load(std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> max_requests{0};
  std::atomic<std::int64_t> default_deadline_ms{0};
  std::atomic<std::uint64_t> admit_attempts{0};
  std::atomic<std::uint64_t> quota_refused{0};
  std::atomic<std::uint64_t> rate_refused{0};
  std::atomic<std::uint64_t> deadline_refused{0};
  // Requests holding a pointer to this tenant (LineJob pins). A retired
  // tenant is freed only once this reaches zero — see reap_retired().
  std::atomic<std::uint64_t> pins{0};
  std::atomic<bool> retired{false};

 private:
  std::mutex rate_mutex_;
  std::atomic<bool> rate_limited_{false};
  double rate_rps_ = 0.0;
  double rate_tokens_ = 0.0;
  std::uint64_t rate_burst_ = 0;
  std::chrono::steady_clock::time_point rate_last_{};
};

// Point-in-time stats for one tenant (see OracleService::stats()).
struct TenantStats {
  std::string name;
  ServiceStats service;
  std::uint64_t quota_refused = 0;
  std::uint64_t rate_refused = 0;
  std::uint64_t deadline_refused = 0;
  bool retired = false;
};

// What reload() did, for operator logs.
struct ReloadSummary {
  std::size_t added = 0;
  std::size_t updated = 0;
  std::size_t retired = 0;
  std::size_t reaped = 0;
};

class TenantRegistry {
 public:
  TenantRegistry() = default;
  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  // Registers a tenant owning `graph`. The first tenant added is the default
  // (requests naming no tenant route to it; retiring it promotes the next
  // live tenant). Names must be unique among live tenants and non-empty.
  // Thread-safe against concurrent lookups.
  Tenant& add(std::string name, Graph graph, ServiceConfig config = {},
              TenantQuotas quotas = {});

  // Registers a tenant whose graph and structure pool come from a .ftb
  // snapshot (src/persist/): the snapshot's graph becomes the tenant's, its
  // entries/baselines are restored into the service, and `warm_cache`
  // pre-fills the scenario cache from the snapshot's cache image. When
  // `graph_path` is non-empty, that file is loaded first and its fingerprint
  // must match the snapshot's — a snapshot built from a different graph is
  // rejected (SnapshotError, kGraphMismatch) before the tenant exists, never
  // served against. Throws SnapshotError on any snapshot rejection.
  Tenant& add_from_snapshot(std::string name, const std::string& snapshot_path,
                            ServiceConfig config = {}, TenantQuotas quotas = {},
                            bool warm_cache = false,
                            const std::string& graph_path = {});

  // Registers every tenant named in a JSON manifest file (see the schema
  // table in docs/serving.md "Network serving & tenants"). Schema 2:
  //   {"schema": 2,
  //    "tenants": [{"name": "alpha", "graph": "a.txt", "cache": 256,
  //                 "budget": 2, "max_lazy": 3, "lazy": true, "seed": 1,
  //                 "max_requests": 0, "rate_limit_rps": 0, "burst": 0,
  //                 "deadline_ms": 0, "snapshot": "a.ftb",
  //                 "cache_warm": false}, ...]}
  // `name` plus one of `graph`/`snapshot` are required (both = fingerprint
  // cross-check); everything else defaults to `base`. Unknown keys warn on
  // stderr under schema 2. Manifests without "schema" (or with "schema": 1)
  // parse with schema-1 semantics — no snapshot/rate/deadline keys, unknown
  // keys fatal — plus a deprecation warning. Throws GraphIoError on
  // unreadable/malformed manifests or graphs, SnapshotError on snapshot
  // rejections.
  void load_manifest(const std::string& path, const ServiceConfig& base = {});

  // Hot reload (the SIGHUP path): re-reads `path` and diffs it against the
  // live tenants. Same name + same graph/snapshot sources → quotas updated in
  // place (stats, cache, and pool survive); new names → added; live tenants
  // absent from the manifest (or whose sources changed) → retired. The whole
  // new manifest is parsed and every new graph/snapshot loaded *before* any
  // live tenant changes, so a malformed manifest or unreadable graph throws
  // with the old configuration fully intact. Safe against concurrent
  // find/pin traffic. Finishes by reaping drained retired tenants.
  ReloadSummary reload(const std::string& path, const ServiceConfig& base = {});

  // Frees retired tenants whose pin count has drained to zero. Returns how
  // many were freed. Called by reload() and by the net loop's idle sweeps.
  std::size_t reap_retired();

  // nullptr when unknown or retired; "" resolves to the default tenant.
  [[nodiscard]] Tenant* find(std::string_view name);
  // find() + pins the result (caller must unpin via TenantPin / pins--).
  [[nodiscard]] Tenant* find_and_pin(std::string_view name);
  [[nodiscard]] Tenant* default_tenant();
  [[nodiscard]] std::size_t size() const;

  // Runs `fn(Tenant&)` over every live tenant under the registry lock.
  template <typename Fn>
  void for_each(Fn&& fn) {
    const std::shared_lock lock(mutex_);
    for (const auto& t : tenants_) fn(*t);
  }

  // Adapter for parse_request_line: tenant name → graph to resolve against.
  // The returned graph pointer is only stable while the tenant is pinned —
  // LineJob uses the pinning resolver below instead.
  [[nodiscard]] GraphResolver resolver();

  // Per-tenant snapshots (live tenants first, then still-draining retired
  // ones), and their sum — the process-wide serving picture. global_stats()
  // is exactly the field-wise sum of stats(): per-tenant accounting never
  // loses a request. (Requests served by a retired tenant that has since
  // been *reaped* are gone from both — documented in docs/robustness.md.)
  [[nodiscard]] std::vector<TenantStats> stats() const;
  [[nodiscard]] TenantStats global_stats() const;

 private:
  friend class LineJob;

  // Everything one manifest entry resolves to, parsed and loaded before any
  // live mutation (reload's all-or-nothing contract).
  struct PendingTenant;
  static std::vector<PendingTenant> parse_manifest(const std::string& path,
                                                   const ServiceConfig& base);

  Tenant& adopt(std::unique_ptr<Tenant> t);

  // Guards tenants_/retired_ membership. Tenants themselves are heap-pinned;
  // pointers handed out under the shared lock stay valid while pinned.
  mutable std::shared_mutex mutex_;
  std::vector<std::unique_ptr<Tenant>> tenants_;  // live; front = default
  std::vector<std::unique_ptr<Tenant>> retired_;  // unroutable, draining
};

// Wire-level counters every serve loop shares (requests that never reach a
// service): parse errors, resolution refusals (bad edges / unknown tenants),
// quota/rate/deadline refusals, and loads shed under queue pressure.
struct WireCounters {
  std::atomic<std::uint64_t> parse_errors{0};
  std::atomic<std::uint64_t> resolve_refusals{0};
  std::atomic<std::uint64_t> quota_refusals{0};
  std::atomic<std::uint64_t> rate_limit_refusals{0};
  std::atomic<std::uint64_t> deadline_refusals{0};
  std::atomic<std::uint64_t> overload_sheds{0};
};

// RAII pin on a Tenant: while held, the tenant (graph, service, counters)
// cannot be freed even if a reload retires it mid-request.
class TenantPin {
 public:
  TenantPin() = default;
  explicit TenantPin(Tenant* t) : t_(t) {}
  TenantPin(TenantPin&& o) noexcept : t_(o.t_) { o.t_ = nullptr; }
  TenantPin& operator=(TenantPin&& o) noexcept {
    if (this != &o) {
      release();
      t_ = o.t_;
      o.t_ = nullptr;
    }
    return *this;
  }
  TenantPin(const TenantPin&) = delete;
  TenantPin& operator=(const TenantPin&) = delete;
  ~TenantPin() { release(); }

  [[nodiscard]] Tenant* get() const { return t_; }

 private:
  void release() {
    if (t_ != nullptr) t_->pins.fetch_sub(1, std::memory_order_acq_rel);
    t_ = nullptr;
  }
  Tenant* t_ = nullptr;
};

// One request line moving through parse → admit → finish. See the file
// comment for the phase contract. `stamp_seq` mirrors the relaxed serve
// modes: the response carries `seq` so id-less lines stay correlatable.
class LineJob {
 public:
  // Parse phase. Runs anywhere; touches no shared serving state beyond the
  // registry lookup (shared lock + pin) and the wire counters. `arrival` is
  // when the request hit the process (socket framing / stdin read) — the
  // moment its deadline clock started; defaults to construction time.
  LineJob(TenantRegistry& registry, const std::string& line, std::int64_t seq,
          bool stamp_seq, WireCounters& counters,
          std::chrono::steady_clock::time_point arrival =
              std::chrono::steady_clock::now());

  LineJob(LineJob&&) noexcept = default;
  LineJob& operator=(LineJob&&) noexcept = default;

  // Admission phase: deadline gate + rate-limit gate + quota gate +
  // OracleService::admit. Ordered serve modes call this under their sequencer
  // turn; no-op when the line was already answered at parse time. Must be
  // called exactly once before finish().
  void admit();

  // Execution phase: deadline recheck + OracleService::execute + formatting.
  // Returns the response line (no trailing newline).
  [[nodiscard]] std::string finish();

 private:
  // Deadline for this request (request field wins over the tenant default),
  // or nullopt when neither applies. Computed once, in admit().
  void resolve_deadline();
  [[nodiscard]] std::string refuse_line(StatusCode status, std::string why);

  TenantRegistry* registry_;
  WireCounters* counters_;
  Tenant* tenant_ = nullptr;
  TenantPin pin_;
  // Heap-pinned: OracleService::Admission keeps a pointer to the request
  // across admit() → finish(), so the request must not move with the job.
  std::unique_ptr<ParsedRequest> parsed_;
  std::optional<OracleService::Admission> admission_;
  std::optional<std::string> local_;  // final line decided before execution
  std::chrono::steady_clock::time_point arrival_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::int64_t seq_;
  bool stamp_seq_;
};

}  // namespace ftbfs
