// Minimal JSON reader shared by the serving layer's parsers — the JSONL wire
// protocol (protocol.cpp) and the tenant manifest loader (tenant.cpp).
//
// Just enough JSON for flat request/config objects: strings, numbers,
// booleans, null, arrays, nested objects. No external dependency,
// deterministic errors, and hardened against hostile input: nesting is
// depth-capped (a '[[[[…' bomb must not blow the server's stack) and numbers
// are parsed without ever invoking undefined behavior on overflow. This is a
// *reader*, not a validator — it accepts the JSON it needs and rejects the
// rest with a one-line reason.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ftbfs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  // Object member lookup (first match); nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

class JsonReader {
 public:
  // `text` must outlive the reader (the parse borrows its bytes). std::string
  // guarantees NUL termination, which the number parser relies on.
  explicit JsonReader(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  // Parses exactly one JSON value covering the whole input. On failure `err`
  // holds the first error encountered.
  bool parse(JsonValue& out, std::string& err);

 private:
  void skip_ws();
  bool fail(const std::string& why);
  template <typename Fn>
  bool descend(Fn parse_container);
  bool expect(char c);
  bool parse_value(JsonValue& out);
  bool parse_literal(JsonValue& out);
  bool parse_number(JsonValue& out);
  bool parse_string(std::string& out);
  bool parse_array(JsonValue& out);
  bool parse_object(JsonValue& out);

  const char* p_;
  const char* end_;
  int depth_ = 0;
  std::string err_;
};

// Reads a JSON number as a non-negative integer id; false on anything else —
// including values at or beyond 2^64, NaN, and infinities, none of which may
// reach the (otherwise undefined) double→uint64 cast.
[[nodiscard]] bool json_read_uint(const JsonValue& v, std::uint64_t& out);

// Appends `s` JSON-string-escaped into `out`. Control bytes below 0x20 are
// emitted as \u00XX so hostile input echoed back (error messages, warnings)
// can never produce an unparseable response line; bytes >= 0x80 pass through
// untouched (the wire treats strings as bytes).
void json_escape_into(std::string& out, const std::string& s);

}  // namespace ftbfs
