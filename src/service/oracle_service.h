// OracleService — the typed serving front-end over a multi-structure pool.
//
// One service owns, for a single host graph G:
//   * a pool of named structure entries, each (source, fault budget, fault
//     model) → an FT structure fronted by its own FaultQueryEngine. Entries
//     are added eagerly (prebuilt structures, e.g. the simulator's overlays)
//     or built lazily through the BuilderRegistry when an unpinned request
//     arrives for a shape the pool cannot yet serve (`default_builder` picks
//     the construction);
//   * an O(1) point-oracle fast path (SingleFaultOracle) per enabled source,
//     serving single-edge-fault distance/reachability requests without any
//     BFS;
//   * an identity engine over G itself — ground truth, used for best-effort
//     requests that no structure covers and available under the reserved pin
//     name "identity";
//   * a scenario cache: canonicalized fault sets (sorted, deduped, projected
//     onto the entry's structure) interned in an LRU together with their full
//     distance vectors, so scenario sweeps and the failure simulator's
//     repeated tick-states are served by a table lookup instead of a BFS.
//
// Routing: a request is validated (unknown ids become kUnknownSource, never
// an abort), its fault set canonicalized (duplicates count once), and then
// served by the cheapest backend whose traits cover it exactly — point oracle
// before structures, smaller structures before larger ones. Requests the pool
// cannot serve exactly are refused (kExactOrRefuse) or served from the
// identity engine (kBestEffort).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/sensitivity_oracle.h"
#include "engine/query_engine.h"
#include "graph/graph.h"
#include "service/protocol.h"

namespace ftbfs {

struct ServiceConfig {
  // Fault budget targeted by lazily built structures (the paper's regime).
  unsigned default_budget = 2;
  // Largest distinct-fault count a lazy build will target; beyond it the
  // request is over budget for the whole pool (generic constructions grow
  // superpolynomially expensive with the budget).
  unsigned max_lazy_budget = 3;
  // Build pool entries on demand for unpinned requests; with this off, a
  // request for a source the pool does not cover refuses with kUnknownSource.
  bool lazy_build = true;
  // Scenario-cache capacity in (entry, fault set) lines; 0 disables caching.
  std::size_t cache_capacity = 256;
  std::uint64_t weight_seed = 1;  // tie-breaking weights for lazy builds
};

struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t served = 0;   // kOk or kDisconnected
  std::uint64_t refused = 0;  // any other status
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t structures_built = 0;      // lazy builds
  std::uint64_t identity_served = 0;       // answers from the identity engine
  std::uint64_t point_oracle_served = 0;   // O(1) fast-path answers

  [[nodiscard]] double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

class OracleService {
 public:
  explicit OracleService(const Graph& g, ServiceConfig config = {});

  OracleService(OracleService&&) noexcept = default;
  OracleService& operator=(OracleService&&) noexcept = default;

  // Adds a prebuilt structure (edge ids of G) under a unique name. `exact`
  // declares the FT guarantee: dist(s,v,H∖F) = dist(s,v,G∖F) for |F| within
  // the budget under `model` faults. Returns the entry handle.
  std::size_t add_structure(std::string name, Vertex source,
                            unsigned fault_budget, FaultModel model,
                            std::span<const EdgeId> edges, bool exact = true);

  // Builds a structure through the BuilderRegistry and adds it. Empty algo =
  // the registry's default_builder for the shape.
  std::size_t build_structure(std::string name, Vertex source,
                              unsigned fault_budget, FaultModel model,
                              std::string_view algo = {});

  // Eagerly builds the O(n·m)-preprocessing point oracle for `source`;
  // afterwards single-edge-fault distance/reachability requests from that
  // source are answered in O(1) per target.
  void enable_point_oracle(Vertex source);

  // Serves one request. Never aborts on request contents: capability
  // mismatches and unknown ids come back as status codes.
  [[nodiscard]] QueryResponse serve(const QueryRequest& req);

  // --- introspection -------------------------------------------------------

  [[nodiscard]] const Graph& graph() const { return *g_; }
  [[nodiscard]] const ServiceStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pool_size() const { return entries_.size(); }
  [[nodiscard]] const std::string& entry_name(std::size_t entry) const;
  [[nodiscard]] std::uint64_t entry_edges(std::size_t entry) const;

  // Direct engine access for an entry ("identity" included) — the advanced,
  // cache-bypassing path used by FtBfsOracle::batch for threaded sweeps.
  [[nodiscard]] FaultQueryEngine& engine(std::size_t entry);

 private:
  struct Entry {
    std::string name;
    Vertex source = 0;
    unsigned budget = 0;
    FaultModel model = FaultModel::kEdge;
    bool exact = true;
    bool identity = false;
    std::uint64_t edge_count = 0;  // routing cost proxy
    FaultQueryEngine engine;
    // G edge id → edge present in the structure; empty for identity. Used to
    // project cache keys onto H: faults absent from H cannot change answers,
    // so scenarios differing only in absent edges share one cache line.
    std::vector<bool> in_h;

    Entry(const Graph& g, std::span<const EdgeId> edges);
    explicit Entry(const Graph& g);  // identity
  };

  struct CacheLine {
    std::string key;
    std::vector<std::uint32_t> hops;
  };

  [[nodiscard]] int find_entry(std::string_view name) const;

  // True if `e` answers exactly for (source, canonical faults).
  [[nodiscard]] bool serves_exactly(const Entry& e, Vertex source,
                                    const CanonicalFaultSet& canon) const;

  // Cache key for the current canonical fault set (canon_) against `entry`:
  // entry index + source + fault ids projected onto the entry's structure.
  [[nodiscard]] std::string cache_key(std::size_t entry, Vertex source) const;
  // Returns the cached distance vector (refreshing its LRU position), or
  // nullptr on miss. Pointers are stable until eviction.
  [[nodiscard]] const std::vector<std::uint32_t>* cache_find(
      const std::string& key);
  const std::vector<std::uint32_t>* cache_insert(
      std::string key, const std::vector<std::uint32_t>& hops);

  void fill_payload(std::size_t entry, const QueryRequest& req,
                    QueryResponse& resp);

  QueryResponse refuse(QueryResponse resp, StatusCode status,
                       std::string why);

  const Graph* g_;
  ServiceConfig config_;
  std::vector<Entry> entries_;  // entry 0 is the identity engine
  std::map<Vertex, SingleFaultOracle> point_oracles_;
  CanonicalFaultSet canon_;  // per-request scratch
  // LRU scenario cache: key = entry index + H-projected canonical fault ids.
  std::list<CacheLine> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<CacheLine>::iterator> cache_;
  ServiceStats stats_;
};

}  // namespace ftbfs
