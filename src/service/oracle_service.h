// OracleService — the typed serving front-end over a multi-structure pool.
//
// One service owns, for a single host graph G:
//   * a pool of named structure entries, each (source, fault budget, fault
//     model) → an FT structure fronted by its own FaultQueryEngine. Entries
//     are added eagerly (prebuilt structures, e.g. the simulator's overlays)
//     or built lazily through the BuilderRegistry when an unpinned request
//     arrives for a shape the pool cannot yet serve (`default_builder` picks
//     the construction);
//   * an O(1) point-oracle fast path (SingleFaultOracle) per enabled source,
//     serving single-edge-fault distance/reachability requests without any
//     BFS;
//   * an identity engine over G itself — ground truth, used for best-effort
//     requests that no structure covers and available under the reserved pin
//     name "identity";
//   * a scenario cache: canonicalized fault sets (sorted, deduped, projected
//     onto the entry's structure) interned together with their full distance
//     vectors, so scenario sweeps and the failure simulator's repeated
//     tick-states are served by a table lookup instead of a BFS.
//
// Routing: a request is validated (unknown ids become kUnknownSource, never
// an abort), its fault set canonicalized (duplicates count once), and then
// served by the cheapest backend whose traits cover it exactly — point oracle
// before structures, smaller structures before larger ones. Requests the pool
// cannot serve exactly are refused (kExactOrRefuse) or served from the
// identity engine (kBestEffort).
//
// Concurrency: serve() is safe under any number of racing callers. The
// scenario cache and the lazy-build bookkeeping are lock-striped shards
// (service/shard.h) — cache hits take one shared lock, BFS runs on scratch
// leased from the entry's engine, a structure is built exactly once per pool
// key no matter how many requests race for it, and all serving counters are
// relaxed atomics. Each serve() call splits into a short *admission* section
// (validation, routing, lazy-build trigger, cache probe — everything that
// reads or advances shared serving state) and a long *execution* section
// (the BFS / cache wait / payload copy, which runs on private state). The
// sequenced overload runs admissions in strict ticket order, which makes a
// threaded serving loop's responses byte-identical to the sequential ones —
// `ftbfs serve --threads N` builds on it (see docs/serving.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/sensitivity_oracle.h"
#include "engine/query_engine.h"
#include "graph/graph.h"
#include "service/protocol.h"
#include "service/shard.h"
#include "service/work_queue.h"

namespace ftbfs {

struct ServiceConfig {
  // Fault budget targeted by lazily built structures (the paper's regime).
  unsigned default_budget = 2;
  // Largest distinct-fault count a lazy build will target; beyond it the
  // request is over budget for the whole pool (generic constructions grow
  // superpolynomially expensive with the budget).
  unsigned max_lazy_budget = 3;
  // Build pool entries on demand for unpinned requests; with this off, a
  // request for a source the pool does not cover refuses with kUnknownSource.
  bool lazy_build = true;
  // Scenario-cache capacity in (entry, fault set) lines; 0 disables caching.
  std::size_t cache_capacity = 256;
  std::uint64_t weight_seed = 1;  // tie-breaking weights for lazy builds
  // Worker threads for structure builds — eager build_structure() and the
  // lazy builds a cold request triggers — forwarded as BuildOptions::jobs.
  // 0 = auto (clamped hardware concurrency), 1 = sequential. Built structures
  // are byte-identical at any value (BuilderTraits::parallel_build), so
  // responses and goldens never depend on it; only the first-request build
  // stall shrinks.
  unsigned build_jobs = 0;
  // Lock-striping width of the scenario cache and lazy-build map. More shards
  // spread racing requests over more locks; 1 degenerates to a single lock.
  // Eviction is per-shard CLOCK over a ceil(capacity/shards) slice, so which
  // lines stay resident — and therefore hit/miss totals near capacity —
  // depends (approximately) on the shard count; far from capacity the
  // accounting is shard-count-independent.
  unsigned cache_shards = 8;
  // Fault-delta query path of the pool engines (docs/perf.md): answer from
  // the per-source baseline tree when the fault set misses it, repair only
  // the damaged subtrees otherwise. Off = every cache miss pays a full
  // masked BFS (the pre-delta behavior; kept as the property-test oracle).
  bool delta_queries = true;
  // Fallback threshold forwarded to FaultQueryEngine::DeltaOptions.
  double delta_max_affected_fraction = 0.5;
  // Delta-compressed scenario cache (docs/perf.md "Delta cache"): store a
  // cache line as a baseline reference plus a sorted (vertex, hop) diff when
  // the diff covers at most this fraction of the vertices, shrinking a warm
  // line from O(n) to O(affected) resident bytes. Larger diffs — and entries
  // whose engine has no baseline (delta_queries off, baseline cap reached) —
  // keep the full vector: the escape hatch. <= 0 stores every line full;
  // >= 1 compresses every diff. Responses are byte-identical across every
  // setting; only resident bytes change.
  double cache_delta_max_fraction = 0.25;
};

// A point-in-time snapshot of the serving counters (the live counters are
// relaxed atomics; stats() aggregates them without stopping traffic).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t served = 0;   // kOk or kDisconnected
  std::uint64_t refused = 0;  // any other status
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_lines = 0;           // resident lines right now
  std::uint64_t cache_resident_bytes = 0;  // payload bytes across those lines
  std::uint64_t structures_built = 0;      // lazy builds
  std::uint64_t identity_served = 0;       // answers from the identity engine
  std::uint64_t point_oracle_served = 0;   // O(1) fast-path answers
  // Engine query-path counters aggregated over every pool entry (identity
  // included): how the BFS-backed queries were actually answered. Cache hits
  // never reach an engine, so these three sum to the engine-served share.
  std::uint64_t fast_path_hits = 0;  // baseline tree answered, no BFS
  std::uint64_t repair_bfs = 0;      // bounded repair over damaged subtrees
  std::uint64_t full_bfs = 0;        // full masked BFS (fallback/disabled)

  [[nodiscard]] double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  [[nodiscard]] double cache_bytes_per_line() const {
    return cache_lines == 0 ? 0.0
                            : static_cast<double>(cache_resident_bytes) /
                                  static_cast<double>(cache_lines);
  }
};

class OracleService {
 public:
  explicit OracleService(const Graph& g, ServiceConfig config = {});

  // The service owns mutexes and latches other threads may be blocked on;
  // it is pinned to its address for life.
  OracleService(const OracleService&) = delete;
  OracleService& operator=(const OracleService&) = delete;

  // Adds a prebuilt structure (edge ids of G) under a unique name. `exact`
  // declares the FT guarantee: dist(s,v,H∖F) = dist(s,v,G∖F) for |F| within
  // the budget under `model` faults. Returns the entry handle.
  std::size_t add_structure(std::string name, Vertex source,
                            unsigned fault_budget, FaultModel model,
                            std::span<const EdgeId> edges, bool exact = true);

  // Builds a structure through the BuilderRegistry and adds it. Empty algo =
  // the registry's default_builder for the shape.
  std::size_t build_structure(std::string name, Vertex source,
                              unsigned fault_budget, FaultModel model,
                              std::string_view algo = {});

  // Eagerly builds the O(n·m)-preprocessing point oracle for `source`;
  // afterwards single-edge-fault distance/reachability requests from that
  // source are answered in O(1) per target. Not safe concurrently with
  // serve() — enable fast paths before opening the request stream.
  void enable_point_oracle(Vertex source);

  // Serves one request. Never aborts on request contents: capability
  // mismatches and unknown ids come back as status codes. Thread-safe;
  // answers (status, exactness, distances, paths) are deterministic, while
  // attribution can depend on the interleaving of racing calls: which
  // duplicate is labeled the cache miss, and — when requests whose lazy
  // builds target *different* budgets race for one source — which of the
  // resulting entries serves (`served_by`). The sequenced overload below
  // removes even that.
  [[nodiscard]] QueryResponse serve(const QueryRequest& req);

  // Same, with the admission section ordered by `ticket` through `sequencer`
  // (tickets must be dense from 0 across all participants). Concurrent
  // callers that agree on a ticket order get responses byte-identical to
  // serving the requests sequentially in that order — including cache_hit
  // flags and cache evictions.
  [[nodiscard]] QueryResponse serve(const QueryRequest& req,
                                    RequestSequencer& sequencer,
                                    std::uint64_t ticket);

  // --- split serve: admit / execute ----------------------------------------
  // serve() == execute(admit(req)). admit() runs the admission section —
  // validation, routing, lazy-build trigger, cache probe: everything that
  // reads or advances shared serving state — and returns a self-contained
  // Admission; execute() runs the execution tail (BFS / cache wait / payload
  // copy) on private state. Both are thread-safe on their own; ordering the
  // admit() calls (by sequencer ticket) is what makes the response stream
  // deterministic. The batched ordered serve path drains several tickets'
  // admit() calls under ONE sequencer turn:
  //
  //   sequencer.wait_for(first);
  //   for (r : batch) a.push_back(admit(r));   // dense tickets, in order
  //   sequencer.advance_n(batch.size());
  //   for (x : a) respond(execute(std::move(x)));
  //
  // `req` must outlive the matching execute() call (the Admission keeps a
  // pointer, not a copy).
  struct Admission;
  [[nodiscard]] Admission admit(const QueryRequest& req);
  [[nodiscard]] QueryResponse execute(Admission admission);

  // --- introspection -------------------------------------------------------

  [[nodiscard]] const Graph& graph() const { return *g_; }
  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t pool_size() const;
  [[nodiscard]] const std::string& entry_name(std::size_t entry) const;
  [[nodiscard]] std::uint64_t entry_edges(std::size_t entry) const;

  // Direct engine access for an entry ("identity" included) — the advanced,
  // cache-bypassing path used by FtBfsOracle::batch for threaded sweeps.
  [[nodiscard]] FaultQueryEngine& engine(std::size_t entry);

 private:
  // Snapshot persistence (src/persist/service_io.cpp) walks the pool and the
  // scenario cache to export an image, and rebuilds both from one.
  friend struct PersistAccess;

  struct Entry {
    std::string name;
    // BuilderRegistry name that produced the structure; empty for prebuilt
    // edge sets of unknown provenance. Snapshots carry it so a restore can
    // cross-check the entry against the registry this build ships.
    std::string algorithm;
    Vertex source = 0;
    unsigned budget = 0;
    FaultModel model = FaultModel::kEdge;
    bool exact = true;
    bool identity = false;
    std::uint64_t edge_count = 0;  // routing cost proxy
    FaultQueryEngine engine;
    // G edge id → edge present in the structure; empty for identity. Used to
    // project cache keys onto H: faults absent from H cannot change answers,
    // so scenarios differing only in absent edges share one cache line.
    std::vector<bool> in_h;

    Entry(const Graph& g, std::span<const EdgeId> edges);
    explicit Entry(const Graph& g);  // identity
  };

  // Armed the moment a request reserves a pending cache line: if the request
  // unwinds before publishing real distances — anywhere between reservation
  // and the fill, not just inside the compute block — the destructor
  // poison-fills the line (empty vector) so waiters wake and compute for
  // themselves, and a later probe() swaps the poisoned line out. disarm()
  // after the real fill keeps the line's fill-exactly-once contract.
  struct FillObligation {
    ShardedScenarioCache::LinePtr line;
    FillObligation() = default;
    FillObligation(const FillObligation&) = delete;
    FillObligation& operator=(const FillObligation&) = delete;
    // Movable so an Admission can carry the obligation from admit() to
    // execute(): the moved-from line is null, so exactly one destructor can
    // ever poison it.
    FillObligation(FillObligation&& other) noexcept = default;
    FillObligation& operator=(FillObligation&& other) noexcept {
      if (this != &other) {
        if (line != nullptr) ShardedScenarioCache::fill(*line, {});
        line = std::move(other.line);
      }
      return *this;
    }
    ~FillObligation() {
      if (line != nullptr) ShardedScenarioCache::fill(*line, {});
    }
    void disarm() { line.reset(); }
  };

  // Everything serve() decides during admission; execution runs from this
  // plan on private state only. `e` is resolved under the pool lock but
  // stays valid without it: entries are address-stable and never removed.
  struct ServePlan {
    Entry* e = nullptr;
    std::size_t entry = 0;  // index of `e` (part of the cache key)
    bool exact = false;
    // Cache outcome (non-path kinds with caching enabled):
    ShardedScenarioCache::LinePtr line;
    bool cache_hit = false;  // read the line (waiting if still pending)
    bool fill_line = false;  // we reserved the line and must compute+fill it
    FillObligation fill_obligation;  // armed iff fill_line
  };

 public:
  // Everything one request needs between admit() and execute(); defined here
  // so it can carry the (private) plan types by value. Move-only. See the
  // admit/execute contract above for the lifecycle.
  struct Admission {
    QueryResponse resp;  // id prefilled; final already when `done`
    bool done = false;   // refusal — execute() just returns resp
    const QueryRequest* req = nullptr;
    const SingleFaultOracle* point = nullptr;  // O(1) fast path when non-null
    CanonicalFaultSet canon;
    ServePlan plan;
  };

 private:
  [[nodiscard]] int find_entry_locked(std::string_view name) const;
  [[nodiscard]] Entry& entry_ref(std::size_t entry);

  // Applies the service-level query-path config (delta on/off, fallback
  // threshold) to an entry's engine; every entry passes through here before
  // it is published.
  void configure_engine(Entry& entry) const;

  // True if `e` answers exactly for (source, canonical faults).
  [[nodiscard]] bool serves_exactly(const Entry& e, Vertex source,
                                    const CanonicalFaultSet& canon) const;

  // Cache key for the canonical fault set against an entry: entry index +
  // source + fault ids projected onto the entry's structure, packed into
  // `words` (a reused buffer — no heap allocation once warm) and returned as
  // a fingerprinted non-owning view.
  [[nodiscard]] ScenarioKeyView cache_key(
      const Entry& e, std::size_t entry, Vertex source,
      const CanonicalFaultSet& canon,
      std::vector<std::uint32_t>& words) const;

  // Appends a published entry under the pool's exclusive lock, de-duplicating
  // the name against racing eager adds. Returns the entry index.
  std::size_t publish_entry(Entry entry);

  // Admission: probes the scenario cache and decides who computes what.
  void plan_payload(ServePlan& plan, const QueryRequest& req,
                    const CanonicalFaultSet& canon);
  // Execution: runs the plan (BFS on leased scratch / cache wait / copy).
  void fill_payload(ServePlan& plan, const QueryRequest& req,
                    const CanonicalFaultSet& canon, QueryResponse& resp);
  // Publishes a computed scenario onto its reserved line, delta-compressed
  // against the entry's baseline when the diff fits the configured fraction.
  void fill_scenario_line(Entry& e, Vertex source,
                          const std::vector<std::uint32_t>& full,
                          ShardedScenarioCache::Line& line);

  QueryResponse refuse(QueryResponse resp, StatusCode status,
                       std::string why);

  const Graph* g_;
  ServiceConfig config_;
  // Entry 0 is the identity engine. A deque keeps entries address-stable
  // under concurrent appends; the shared mutex guards the append itself and
  // the size/name scans. Published entries are immutable (their engines hand
  // out leased scratch internally).
  std::deque<Entry> entries_;
  mutable std::shared_mutex pool_mutex_;
  std::map<Vertex, SingleFaultOracle> point_oracles_;
  ShardedScenarioCache cache_;
  BuildOnceMap lazy_builds_;

  struct Counters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> refused{0};
    std::atomic<std::uint64_t> structures_built{0};
    std::atomic<std::uint64_t> identity_served{0};
    std::atomic<std::uint64_t> point_oracle_served{0};
  };
  mutable Counters counters_;
};

}  // namespace ftbfs
