#include "service/protocol.h"

#include <cctype>
#include <cstdlib>
#include <limits>

#include "spath/bfs.h"

namespace ftbfs {

const char* to_string(StatusCode s) {
  switch (s) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kBudgetExceeded:
      return "budget_exceeded";
    case StatusCode::kUnknownSource:
      return "unknown_source";
    case StatusCode::kUnsupportedFaultModel:
      return "unsupported_fault_model";
    case StatusCode::kDisconnected:
      return "disconnected";
  }
  return "?";
}

const char* to_string(QueryKind k) {
  switch (k) {
    case QueryKind::kDistance:
      return "distance";
    case QueryKind::kPath:
      return "path";
    case QueryKind::kAllDistances:
      return "all_distances";
    case QueryKind::kReachability:
      return "reachability";
  }
  return "?";
}

const char* to_string(Consistency c) {
  return c == Consistency::kExactOrRefuse ? "exact" : "best_effort";
}

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the flat request objects of the wire
// format (strings, integers, booleans, null, arrays, one object level). No
// external dependency, deterministic errors.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool parse(JsonValue& out, std::string& err) {
    if (!parse_value(out)) {
      err = err_;
      return false;
    }
    skip_ws();
    if (p_ != end_) {
      err = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }

  bool fail(const std::string& why) {
    if (err_.empty()) err_ = why;
    return false;
  }

  // Containers recurse; a server must not let one hostile line ('[[[[…')
  // blow the stack, so nesting is capped well beyond any legitimate request.
  template <typename Fn>
  bool descend(Fn parse_container) {
    if (depth_ >= 32) return fail("nesting too deep");
    ++depth_;
    const bool ok = parse_container();
    --depth_;
    return ok;
  }

  bool expect(char c) {
    skip_ws();
    if (p_ == end_ || *p_ != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++p_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case '{':
        return descend([&] { return parse_object(out); });
      case '[':
        return descend([&] { return parse_array(out); });
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.str);
      case 't':
      case 'f':
        return parse_literal(out);
      case 'n':
        return parse_literal(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(JsonValue& out) {
    auto take = [&](const char* word) {
      const char* q = p_;
      for (const char* w = word; *w != '\0'; ++w, ++q) {
        if (q == end_ || *q != *w) return false;
      }
      p_ = q;
      return true;
    };
    if (take("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (take("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (take("null")) {
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_number(JsonValue& out) {
    char* after = nullptr;
    out.number = std::strtod(p_, &after);
    if (after == p_ || after > end_) return fail("invalid number");
    out.kind = JsonValue::Kind::kNumber;
    p_ = after;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ == end_) return fail("unterminated escape");
        const char esc = *p_++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          default:
            return fail("unsupported string escape");
        }
      }
      out.push_back(c);
    }
    if (p_ == end_) return fail("unterminated string");
    ++p_;  // closing quote
    return true;
  }

  bool parse_array(JsonValue& out) {
    if (!expect('[')) return false;
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      JsonValue elem;
      if (!parse_value(elem)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (p_ != end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      return expect(']');
    }
  }

  bool parse_object(JsonValue& out) {
    if (!expect('{')) return false;
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!expect(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (p_ != end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      return expect('}');
    }
  }

  const char* p_;
  const char* end_;
  int depth_ = 0;
  std::string err_;
};

// Reads a JSON number as a non-negative integer id; false on anything else.
bool read_uint(const JsonValue& v, std::uint64_t& out) {
  if (v.kind != JsonValue::Kind::kNumber || v.number < 0 ||
      v.number != static_cast<double>(static_cast<std::uint64_t>(v.number))) {
    return false;
  }
  out = static_cast<std::uint64_t>(v.number);
  return true;
}

// Narrows a wire id to a graph id. Values beyond 32 bits clamp to the
// all-ones invalid id instead of wrapping — a wrapped id would alias a valid
// vertex/edge and be *answered*, where the clamped one is refused by the
// service's range validation as the unknown id it is.
Vertex narrow_id(std::uint64_t u) {
  return u > 0xffffffffULL ? kInvalidVertex : static_cast<Vertex>(u);
}

ParsedRequest syntax_error(std::string why) {
  ParsedRequest out;
  out.status = ParseStatus::kSyntax;
  out.error = std::move(why);
  return out;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        out.push_back(c);
    }
  }
}

}  // namespace

ParsedRequest parse_request_line(const std::string& line, const Graph& g) {
  JsonValue root;
  std::string err;
  if (!JsonReader(line).parse(root, err)) return syntax_error(err);
  if (root.kind != JsonValue::Kind::kObject) {
    return syntax_error("request line must be a JSON object");
  }

  ParsedRequest out;
  QueryRequest& req = out.request;
  bool have_source = false;
  // Endpoint pairs are collected first and resolved against the graph only
  // after the whole object is parsed — key order is arbitrary, and a
  // resolution failure must still see a later "id" key to echo it.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edge_pairs;
  for (const auto& [key, value] : root.object) {
    std::uint64_t u = 0;
    if (key == "id") {
      if (!read_uint(value, u) ||
          u > static_cast<std::uint64_t>(
                  std::numeric_limits<std::int64_t>::max())) {
        return syntax_error("\"id\" must be a non-negative integer");
      }
      req.id = static_cast<std::int64_t>(u);
    } else if (key == "source") {
      if (!read_uint(value, u)) return syntax_error("\"source\" must be a vertex id");
      req.source = narrow_id(u);
      have_source = true;
    } else if (key == "targets") {
      if (value.kind != JsonValue::Kind::kArray) {
        return syntax_error("\"targets\" must be an array of vertex ids");
      }
      for (const JsonValue& t : value.array) {
        if (!read_uint(t, u)) return syntax_error("\"targets\" must be an array of vertex ids");
        req.targets.push_back(narrow_id(u));
      }
    } else if (key == "fault_vertices") {
      if (value.kind != JsonValue::Kind::kArray) {
        return syntax_error("\"fault_vertices\" must be an array of vertex ids");
      }
      for (const JsonValue& t : value.array) {
        if (!read_uint(t, u)) {
          return syntax_error("\"fault_vertices\" must be an array of vertex ids");
        }
        req.fault_vertices.push_back(narrow_id(u));
      }
    } else if (key == "fault_edges") {
      if (value.kind != JsonValue::Kind::kArray) {
        return syntax_error("\"fault_edges\" must be an array of [u,v] pairs");
      }
      for (const JsonValue& pair : value.array) {
        std::uint64_t eu = 0, ev = 0;
        if (pair.kind != JsonValue::Kind::kArray || pair.array.size() != 2 ||
            !read_uint(pair.array[0], eu) || !read_uint(pair.array[1], ev)) {
          return syntax_error("\"fault_edges\" must be an array of [u,v] pairs");
        }
        edge_pairs.emplace_back(eu, ev);
      }
    } else if (key == "kind") {
      if (value.kind != JsonValue::Kind::kString) return syntax_error("\"kind\" must be a string");
      if (value.str == "distance") {
        req.kind = QueryKind::kDistance;
      } else if (value.str == "path") {
        req.kind = QueryKind::kPath;
      } else if (value.str == "all_distances") {
        req.kind = QueryKind::kAllDistances;
      } else if (value.str == "reachability") {
        req.kind = QueryKind::kReachability;
      } else {
        return syntax_error("unknown kind \"" + value.str + "\"");
      }
    } else if (key == "consistency") {
      if (value.kind != JsonValue::Kind::kString) {
        return syntax_error("\"consistency\" must be a string");
      }
      if (value.str == "exact" || value.str == "exact_or_refuse") {
        req.consistency = Consistency::kExactOrRefuse;
      } else if (value.str == "best_effort") {
        req.consistency = Consistency::kBestEffort;
      } else {
        return syntax_error("unknown consistency \"" + value.str + "\"");
      }
    } else if (key == "structure") {
      if (value.kind != JsonValue::Kind::kString) {
        return syntax_error("\"structure\" must be a string");
      }
      req.structure = value.str;
    } else {
      // A silently ignored key would answer a question the client did not ask.
      return syntax_error("unknown request key \"" + key + "\"");
    }
  }
  if (!have_source) return syntax_error("request is missing \"source\"");
  for (const auto& [eu, ev] : edge_pairs) {
    std::string edge_name = "(";
    edge_name += std::to_string(eu);
    edge_name += ",";
    edge_name += std::to_string(ev);
    edge_name += ")";
    if (eu >= g.num_vertices() || ev >= g.num_vertices()) {
      out.status = ParseStatus::kResolve;
      out.error = "fault edge " + edge_name + " endpoint out of range";
      return out;
    }
    const EdgeId e =
        g.find_edge(static_cast<Vertex>(eu), static_cast<Vertex>(ev));
    if (e == kInvalidEdge) {
      out.status = ParseStatus::kResolve;
      out.error = "fault edge " + edge_name + " not in graph";
      return out;
    }
    req.fault_edges.push_back(e);
  }
  return out;
}

std::string format_response_line(const QueryResponse& resp) {
  std::string out = "{";
  if (resp.id >= 0) {
    out += "\"id\":" + std::to_string(resp.id) + ",";
  } else if (resp.seq >= 0) {
    // Relaxed-mode correlation fallback for id-less requests; never emitted
    // alongside an id, so id-bearing lines match the ordered mode byte for
    // byte (docs/serving.md "Ordered vs relaxed").
    out += "\"seq\":" + std::to_string(resp.seq) + ",";
  }
  out += "\"status\":\"";
  out += to_string(resp.status);
  out += "\",\"exact\":";
  out += resp.exact ? "true" : "false";
  if (!resp.served_by.empty()) {
    out += ",\"served_by\":\"";
    json_escape_into(out, resp.served_by);
    out += "\"";
  }
  out += ",\"cache_hit\":";
  out += resp.cache_hit ? "true" : "false";
  if (!resp.distances.empty()) {
    out += ",\"distances\":[";
    for (std::size_t i = 0; i < resp.distances.size(); ++i) {
      if (i > 0) out += ",";
      out += resp.distances[i] == kInfHops ? "-1"
                                           : std::to_string(resp.distances[i]);
    }
    out += "]";
  }
  if (!resp.paths.empty()) {
    out += ",\"paths\":[";
    for (std::size_t i = 0; i < resp.paths.size(); ++i) {
      if (i > 0) out += ",";
      out += "[";
      for (std::size_t j = 0; j < resp.paths[i].size(); ++j) {
        if (j > 0) out += ",";
        out += std::to_string(resp.paths[i][j]);
      }
      out += "]";
    }
    out += "]";
  }
  if (!resp.reachable.empty()) {
    out += ",\"reachable\":[";
    for (std::size_t i = 0; i < resp.reachable.size(); ++i) {
      if (i > 0) out += ",";
      out += resp.reachable[i] ? "true" : "false";
    }
    out += "]";
  }
  if (!resp.error.empty()) {
    out += ",\"error\":\"";
    json_escape_into(out, resp.error);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string format_parse_error_line(const ParsedRequest& parsed,
                                    std::int64_t seq) {
  std::string out = "{";
  if (parsed.request.id >= 0) {
    out += "\"id\":" + std::to_string(parsed.request.id) + ",";
  } else if (seq >= 0) {
    out += "\"seq\":" + std::to_string(seq) + ",";
  }
  out += "\"status\":\"parse_error\",\"error\":\"";
  json_escape_into(out, parsed.error);
  out += "\"}";
  return out;
}

}  // namespace ftbfs
