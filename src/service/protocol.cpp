#include "service/protocol.h"

#include <limits>

#include "service/json.h"
#include "spath/bfs.h"

namespace ftbfs {

const char* to_string(StatusCode s) {
  switch (s) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kBudgetExceeded:
      return "budget_exceeded";
    case StatusCode::kUnknownSource:
      return "unknown_source";
    case StatusCode::kUnsupportedFaultModel:
      return "unsupported_fault_model";
    case StatusCode::kDisconnected:
      return "disconnected";
    case StatusCode::kUnknownTenant:
      return "unknown_tenant";
    case StatusCode::kQuotaExceeded:
      return "quota_exceeded";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kRateLimited:
      return "rate_limited";
  }
  return "?";
}

const char* to_string(QueryKind k) {
  switch (k) {
    case QueryKind::kDistance:
      return "distance";
    case QueryKind::kPath:
      return "path";
    case QueryKind::kAllDistances:
      return "all_distances";
    case QueryKind::kReachability:
      return "reachability";
  }
  return "?";
}

const char* to_string(Consistency c) {
  return c == Consistency::kExactOrRefuse ? "exact" : "best_effort";
}

namespace {

// Narrows a wire id to a graph id. Values beyond 32 bits clamp to the
// all-ones invalid id instead of wrapping — a wrapped id would alias a valid
// vertex/edge and be *answered*, where the clamped one is refused by the
// service's range validation as the unknown id it is.
Vertex narrow_id(std::uint64_t u) {
  return u > 0xffffffffULL ? kInvalidVertex : static_cast<Vertex>(u);
}

ParsedRequest syntax_error(std::string why) {
  ParsedRequest out;
  out.status = ParseStatus::kSyntax;
  out.error = std::move(why);
  return out;
}

}  // namespace

ParsedRequest parse_request_line(const std::string& line,
                                 const GraphResolver& resolve) {
  JsonValue root;
  std::string err;
  if (!JsonReader(line).parse(root, err)) return syntax_error(err);
  if (root.kind != JsonValue::Kind::kObject) {
    return syntax_error("request line must be a JSON object");
  }

  ParsedRequest out;
  QueryRequest& req = out.request;
  bool have_source = false;
  // Endpoint pairs are collected first and resolved only after the whole
  // object is parsed — key order is arbitrary: a resolution failure must
  // still see a later "id" key to echo it, and the graph to resolve against
  // is only known once a (possibly trailing) "tenant" key has been seen.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edge_pairs;
  for (const auto& [key, value] : root.object) {
    std::uint64_t u = 0;
    if (key == "id") {
      if (!json_read_uint(value, u) ||
          u > static_cast<std::uint64_t>(
                  std::numeric_limits<std::int64_t>::max())) {
        return syntax_error("\"id\" must be a non-negative integer");
      }
      req.id = static_cast<std::int64_t>(u);
    } else if (key == "source") {
      if (!json_read_uint(value, u)) {
        return syntax_error("\"source\" must be a vertex id");
      }
      req.source = narrow_id(u);
      have_source = true;
    } else if (key == "targets") {
      if (value.kind != JsonValue::Kind::kArray) {
        return syntax_error("\"targets\" must be an array of vertex ids");
      }
      for (const JsonValue& t : value.array) {
        if (!json_read_uint(t, u)) {
          return syntax_error("\"targets\" must be an array of vertex ids");
        }
        req.targets.push_back(narrow_id(u));
      }
    } else if (key == "fault_vertices") {
      if (value.kind != JsonValue::Kind::kArray) {
        return syntax_error("\"fault_vertices\" must be an array of vertex ids");
      }
      for (const JsonValue& t : value.array) {
        if (!json_read_uint(t, u)) {
          return syntax_error(
              "\"fault_vertices\" must be an array of vertex ids");
        }
        req.fault_vertices.push_back(narrow_id(u));
      }
    } else if (key == "fault_edges") {
      if (value.kind != JsonValue::Kind::kArray) {
        return syntax_error("\"fault_edges\" must be an array of [u,v] pairs");
      }
      for (const JsonValue& pair : value.array) {
        std::uint64_t eu = 0, ev = 0;
        if (pair.kind != JsonValue::Kind::kArray || pair.array.size() != 2 ||
            !json_read_uint(pair.array[0], eu) ||
            !json_read_uint(pair.array[1], ev)) {
          return syntax_error("\"fault_edges\" must be an array of [u,v] pairs");
        }
        edge_pairs.emplace_back(eu, ev);
      }
    } else if (key == "kind") {
      if (value.kind != JsonValue::Kind::kString) {
        return syntax_error("\"kind\" must be a string");
      }
      if (value.str == "distance") {
        req.kind = QueryKind::kDistance;
      } else if (value.str == "path") {
        req.kind = QueryKind::kPath;
      } else if (value.str == "all_distances") {
        req.kind = QueryKind::kAllDistances;
      } else if (value.str == "reachability") {
        req.kind = QueryKind::kReachability;
      } else {
        return syntax_error("unknown kind \"" + value.str + "\"");
      }
    } else if (key == "consistency") {
      if (value.kind != JsonValue::Kind::kString) {
        return syntax_error("\"consistency\" must be a string");
      }
      if (value.str == "exact" || value.str == "exact_or_refuse") {
        req.consistency = Consistency::kExactOrRefuse;
      } else if (value.str == "best_effort") {
        req.consistency = Consistency::kBestEffort;
      } else {
        return syntax_error("unknown consistency \"" + value.str + "\"");
      }
    } else if (key == "structure") {
      if (value.kind != JsonValue::Kind::kString) {
        return syntax_error("\"structure\" must be a string");
      }
      req.structure = value.str;
    } else if (key == "tenant") {
      if (value.kind != JsonValue::Kind::kString) {
        return syntax_error("\"tenant\" must be a string");
      }
      out.tenant = value.str;
    } else if (key == "deadline_ms") {
      if (!json_read_uint(value, u) ||
          u > static_cast<std::uint64_t>(
                  std::numeric_limits<std::int64_t>::max())) {
        return syntax_error("\"deadline_ms\" must be a non-negative integer");
      }
      req.deadline_ms = static_cast<std::int64_t>(u);
    } else {
      // Unknown keys are echoed as warnings rather than rejected (or worse,
      // silently ignored): the client learns its field did nothing, but a
      // request from one protocol revision ahead still gets an answer.
      out.warnings.push_back("unknown request key \"" + key + "\"");
    }
  }
  if (!have_source) return syntax_error("request is missing \"source\"");

  const Graph* g = resolve(out.tenant);
  if (g == nullptr) {
    out.status = ParseStatus::kResolve;
    out.resolve_status = StatusCode::kUnknownTenant;
    out.error = "unknown tenant '" + out.tenant + "'";
    return out;
  }
  for (const auto& [eu, ev] : edge_pairs) {
    std::string edge_name = "(";
    edge_name += std::to_string(eu);
    edge_name += ",";
    edge_name += std::to_string(ev);
    edge_name += ")";
    if (eu >= g->num_vertices() || ev >= g->num_vertices()) {
      out.status = ParseStatus::kResolve;
      out.error = "fault edge " + edge_name + " endpoint out of range";
      return out;
    }
    const EdgeId e =
        g->find_edge(static_cast<Vertex>(eu), static_cast<Vertex>(ev));
    if (e == kInvalidEdge) {
      out.status = ParseStatus::kResolve;
      out.error = "fault edge " + edge_name + " not in graph";
      return out;
    }
    req.fault_edges.push_back(e);
  }
  return out;
}

ParsedRequest parse_request_line(const std::string& line, const Graph& g) {
  return parse_request_line(
      line, [&g](const std::string& tenant) -> const Graph* {
        return tenant.empty() ? &g : nullptr;
      });
}

std::string format_response_line(const QueryResponse& resp) {
  std::string out = "{";
  if (resp.id >= 0) {
    out += "\"id\":" + std::to_string(resp.id) + ",";
  } else if (resp.seq >= 0) {
    // Relaxed-mode correlation fallback for id-less requests; never emitted
    // alongside an id, so id-bearing lines match the ordered mode byte for
    // byte (docs/serving.md "Ordered vs relaxed").
    out += "\"seq\":" + std::to_string(resp.seq) + ",";
  }
  out += "\"status\":\"";
  out += to_string(resp.status);
  out += "\",\"exact\":";
  out += resp.exact ? "true" : "false";
  if (!resp.served_by.empty()) {
    out += ",\"served_by\":\"";
    json_escape_into(out, resp.served_by);
    out += "\"";
  }
  out += ",\"cache_hit\":";
  out += resp.cache_hit ? "true" : "false";
  if (!resp.distances.empty()) {
    out += ",\"distances\":[";
    for (std::size_t i = 0; i < resp.distances.size(); ++i) {
      if (i > 0) out += ",";
      out += resp.distances[i] == kInfHops ? "-1"
                                           : std::to_string(resp.distances[i]);
    }
    out += "]";
  }
  if (!resp.paths.empty()) {
    out += ",\"paths\":[";
    for (std::size_t i = 0; i < resp.paths.size(); ++i) {
      if (i > 0) out += ",";
      out += "[";
      for (std::size_t j = 0; j < resp.paths[i].size(); ++j) {
        if (j > 0) out += ",";
        out += std::to_string(resp.paths[i][j]);
      }
      out += "]";
    }
    out += "]";
  }
  if (!resp.reachable.empty()) {
    out += ",\"reachable\":[";
    for (std::size_t i = 0; i < resp.reachable.size(); ++i) {
      if (i > 0) out += ",";
      out += resp.reachable[i] ? "true" : "false";
    }
    out += "]";
  }
  if (!resp.warnings.empty()) {
    out += ",\"warnings\":[";
    for (std::size_t i = 0; i < resp.warnings.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      json_escape_into(out, resp.warnings[i]);
      out += "\"";
    }
    out += "]";
  }
  if (!resp.error.empty()) {
    out += ",\"error\":\"";
    json_escape_into(out, resp.error);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string format_parse_error_line(const ParsedRequest& parsed,
                                    std::int64_t seq) {
  std::string out = "{";
  if (parsed.request.id >= 0) {
    out += "\"id\":" + std::to_string(parsed.request.id) + ",";
  } else if (seq >= 0) {
    out += "\"seq\":" + std::to_string(seq) + ",";
  }
  out += "\"status\":\"parse_error\",\"error\":\"";
  json_escape_into(out, parsed.error);
  out += "\"}";
  return out;
}

}  // namespace ftbfs
