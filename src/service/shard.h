// Lock-striped shards for the serving substrate: the scenario cache and the
// lazy-build key map of OracleService, both safe under concurrent callers.
//
// Design (after the multi-core work-sharing playbook — shard state by key,
// keep the read path cheap, pay exclusive locks only to publish):
//
//   * ShardedScenarioCache — scenario keys hash into N shards, each a
//     `std::shared_mutex` over a key→line map. A cache hit takes only the
//     shard's shared lock (find + a relaxed reference-bit store); exclusive
//     locks are paid only to insert. Lines are handed out as shared_ptrs, so
//     a line being evicted under a reader's feet just loses its map slot —
//     the reader's data stays alive. Eviction is decentralized: each shard
//     owns a CLOCK (second-chance) ring over its own capacity slice, so an
//     over-capacity insert sweeps and evicts entirely inside the shard's own
//     exclusive lock — no global recency clock ticking on every hit, no
//     cross-shard victim scan, no global eviction mutex. Victim choice is
//     approximate LRU, but it is a *deterministic* function of the per-shard
//     probe sequence, so a fixed probe order (single-threaded or sequenced
//     serving) replays the same hit/miss/eviction stream every time — the
//     byte-identical ordered serve mode rests on that. What changed vs the
//     retired global-LRU design: residency now depends on the shard count
//     (each shard caps at ceil(capacity / shards) lines), so hit/miss totals
//     across different shard counts agree only approximately.
//
//   * Keys are packed binary (ScenarioKey): the id words plus a precomputed
//     64-bit fingerprint. Probes pass a non-owning ScenarioKeyView over a
//     caller-reused word buffer — no heap allocation and no re-hashing on
//     the hot admission path; the owning form is materialized only when a
//     miss actually inserts.
//
//   * Lines are delta-compressed (docs/perf.md "Delta cache"): a line whose
//     scenario barely perturbs the entry's fault-free baseline stores just a
//     sorted (vertex, hop) diff against that baseline instead of the full
//     n-length hop vector, so a warm line is O(affected) resident bytes and
//     effective capacity multiplies. Lines whose diff exceeds the caller's
//     threshold (or whose entry has no baseline) keep the full vector — the
//     escape hatch. Readers go through at()/materialize(), which overlay the
//     diff transparently; hit/miss/eviction accounting is representation-
//     independent.
//
//   * A line is inserted *pending* by the prober that will compute it
//     (compute-once latch): concurrent requests for the same scenario find
//     the pending line and block in wait() instead of burning a duplicate
//     BFS; fill() publishes the distances and wakes them.
//
//   * BuildOnceMap — the same compute-once idea for lazily built pool
//     entries, keyed by packed (source, budget, fault model). The first
//     requester claims the cell and builds with no lock held; racers wait on
//     the cell and reuse the published entry index, guaranteeing a structure
//     is built exactly once per key under racing requests.
//
// Per-shard hit/miss/eviction counters are relaxed atomics aggregated on
// read, so serving stats never take a global lock. Each counter sits on its
// own cache line (and each shard header is cache-line aligned): two workers
// hitting different shards — or one hitting and one missing the same shard —
// must not bounce a shared line between cores just to bump bookkeeping.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace ftbfs {

// Non-owning probe-side scenario key: a span of id words (entry, source,
// projected fault ids — the caller packs them into a reusable buffer) plus
// the fingerprint precomputed over exactly those words.
struct ScenarioKeyView {
  std::uint64_t fingerprint = 0;
  std::span<const std::uint32_t> words;
};

// FNV-1a over the word stream. Deterministic across runs and platforms (the
// shard a key lands in must not depend on libstdc++'s string hash), and
// computed exactly once per probe.
[[nodiscard]] inline std::uint64_t scenario_fingerprint(
    std::span<const std::uint32_t> words) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint32_t w : words) {
    h = (h ^ w) * 1099511628211ull;
  }
  return h;
}

// Owning form stored in the shard maps; built from a view only when a miss
// inserts (equality compares words, the fingerprint is a cheap pre-filter).
struct ScenarioKey {
  std::uint64_t fingerprint = 0;
  std::vector<std::uint32_t> words;
  explicit ScenarioKey(const ScenarioKeyView& view)
      : fingerprint(view.fingerprint),
        words(view.words.begin(), view.words.end()) {}
};

struct ScenarioKeyHash {
  using is_transparent = void;
  // shard_for() consumes the fingerprint's low bits (mod shard count), so
  // the map hash remixes it — otherwise every key within a shard would share
  // its low bits and power-of-two-bucket unordered_map implementations would
  // populate only 1/shard_count of their buckets.
  static std::size_t mix(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
  std::size_t operator()(const ScenarioKey& k) const noexcept {
    return mix(k.fingerprint);
  }
  std::size_t operator()(const ScenarioKeyView& k) const noexcept {
    return mix(k.fingerprint);
  }
};

struct ScenarioKeyEq {
  using is_transparent = void;
  static bool eq(std::uint64_t fa, std::span<const std::uint32_t> a,
                 std::uint64_t fb, std::span<const std::uint32_t> b) {
    return fa == fb && a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }
  bool operator()(const ScenarioKey& a, const ScenarioKey& b) const {
    return eq(a.fingerprint, a.words, b.fingerprint, b.words);
  }
  bool operator()(const ScenarioKeyView& a, const ScenarioKey& b) const {
    return eq(a.fingerprint, a.words, b.fingerprint, b.words);
  }
  bool operator()(const ScenarioKey& a, const ScenarioKeyView& b) const {
    return eq(a.fingerprint, a.words, b.fingerprint, b.words);
  }
};

class ShardedScenarioCache {
 public:
  // One cached scenario: the distances from the entry's source under one
  // canonical (projected) fault set, in one of two representations. `ready`
  // flips exactly once, after the payload is filled by the computing thread.
  //
  //   * full (base == nullptr): `hops` holds the whole vector;
  //   * delta (base != nullptr): `diff` holds (vertex << 32 | hop) entries,
  //     sorted by vertex, for exactly the vertices whose distance differs
  //     from (*base)[vertex]. `base` points at the owning engine's immutable
  //     per-source baseline, which outlives every line.
  //
  // Read through at()/materialize(); never through `hops` directly.
  struct Line {
    const std::vector<std::uint32_t>* base = nullptr;
    std::vector<std::uint32_t> hops;
    std::vector<std::uint64_t> diff;
    std::atomic<bool> ready{false};
    // CLOCK reference bit: set (relaxed, under the shard's *shared* lock) by
    // every touch, cleared by the sweeping hand during eviction (which holds
    // the shard's exclusive lock, so no touch races the clear). Replaces the
    // retired global recency clock — a hit no longer contends on anything
    // shared beyond its own line.
    std::atomic<bool> referenced{false};
    std::mutex mutex;
    std::condition_variable ready_cv;
  };
  using LinePtr = std::shared_ptr<Line>;

  struct Probe {
    LinePtr line;       // null: miss without reservation (or cache disabled)
    bool hit = false;   // found (possibly still pending — wait() before use)
    bool owner = false; // this caller reserved the line and must fill() it
  };

  // Capacity is sliced across the shards: each shard caps its own line count
  // at ceil(capacity / shards) and evicts within that slice, so the resident
  // total stays within one shard-rounding of `capacity` while eviction never
  // leaves the shard whose insert went over. (256 lines over the default 8
  // shards = exactly 32 per shard.)
  ShardedScenarioCache(std::size_t capacity, unsigned shard_count)
      : capacity_(capacity),
        shards_(capacity == 0 ? 1 : std::max(1u, shard_count)) {
    shard_capacity_ =
        capacity == 0
            ? 0
            : std::max<std::size_t>(1, (capacity + shards_.size() - 1) /
                                           shards_.size());
  }

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }

  // Looks `key` up; a hit sets the line's reference bit under the shard's
  // *shared* lock. On a miss with `reserve`, inserts a pending line
  // (probe.owner == true; the caller must fill() it — waiters are blocked on
  // it), evicting within the shard if its capacity slice is full. A miss
  // without `reserve` leaves the cache untouched (the single-target fast
  // path, where an early-exit BFS beats computing a full line).
  Probe probe(const ScenarioKeyView& key, bool reserve) {
    Probe out;
    if (!enabled()) return out;
    Shard& shard = shard_for(key);
    {
      const std::shared_lock lock(shard.mutex);
      const auto it = shard.lines.find(key);
      // A ready line with an empty payload is the poison a failed computer
      // left behind (real distance vectors are never empty) — treat it as a
      // miss so the reservation path below can swap in a fresh line.
      if (it != shard.lines.end() && !is_poisoned(*it->second)) {
        it->second->referenced.store(true, std::memory_order_relaxed);
        shard.hits.value.fetch_add(1, std::memory_order_relaxed);
        out.line = it->second;
        out.hit = true;
        return out;
      }
    }
    shard.misses.value.fetch_add(1, std::memory_order_relaxed);
    if (!reserve) return out;
    {
      const std::unique_lock lock(shard.mutex);
      const auto it = shard.lines.find(key);
      if (it != shard.lines.end() && is_poisoned(*it->second)) {
        // Repair: replace the poisoned line with a fresh pending one and
        // make this prober its computer. Size is unchanged (a swap, not an
        // insert; the clock ring's slot pointer stays valid because the map
        // node is untouched); old waiters still hold their shared_ptr.
        it->second = std::make_shared<Line>();
        it->second->referenced.store(true, std::memory_order_relaxed);
        out.line = it->second;
        out.owner = true;
        return out;
      }
      if (it != shard.lines.end()) {
        // Another thread reserved this scenario between our two locks; it is
        // their BFS to run and our line to wait on. Reclassify the miss
        // counted above as the hit this probe turned into, so the counters
        // keep agreeing with the per-response cache_hit flags (exactly one
        // miss per computed line).
        shard.misses.value.fetch_sub(1, std::memory_order_relaxed);
        shard.hits.value.fetch_add(1, std::memory_order_relaxed);
        it->second->referenced.store(true, std::memory_order_relaxed);
        out.line = it->second;
        out.hit = true;
        return out;
      }
      if (shard.lines.size() >= shard_capacity_) {
        // The shard's slice is full: sweep its clock hand for a victim (first
        // line whose reference bit is already clear, clearing bits as it
        // passes — each resident line gets one second chance per sweep),
        // evict it, and hand its ring slot to the incoming line. Everything
        // happens under this shard's exclusive lock; other shards keep
        // serving.
        const std::size_t slot = sweep_for_victim(shard);
        shard.lines.erase(shard.ring[slot]->first);
        shard.evictions.value.fetch_add(1, std::memory_order_relaxed);
        const auto [ins, inserted] = shard.lines.try_emplace(
            ScenarioKey(key), std::make_shared<Line>());
        shard.ring[slot] = &*ins;
        shard.hand = (slot + 1) % shard.ring.size();
        out.line = ins->second;
        out.owner = true;
        return out;
      }
      // Genuine insert below capacity: the only point the owning key is
      // materialized (one allocation, on a path that is about to pay a BFS
      // anyway). Ring slots point at map nodes, which never move. New lines
      // start with a clear reference bit — only *subsequent* hits count as
      // recency, so a line probed again after insertion outlives one that
      // never was (the inserting thread reads through its own shared_ptr
      // and needs no residency grace).
      const auto [ins, inserted] =
          shard.lines.try_emplace(ScenarioKey(key), std::make_shared<Line>());
      shard.ring.push_back(&*ins);
      out.line = ins->second;
      out.owner = true;
      size_.fetch_add(1, std::memory_order_relaxed);
    }
    return out;
  }

  // Publishes the full distance vector and wakes every waiter. Called exactly
  // once per line, by the prober that owned the reservation. An empty vector
  // is the poison a failed computer publishes so waiters recompute locally.
  static void fill(Line& line, std::vector<std::uint32_t> hops) {
    {
      const std::lock_guard lock(line.mutex);
      line.hops = std::move(hops);
      line.ready.store(true, std::memory_order_release);
    }
    line.ready_cv.notify_all();
  }

  // Publishes the delta representation: `diff` holds (vertex << 32 | hop)
  // entries sorted by vertex for exactly the vertices whose distance differs
  // from (*base)[vertex]; `base` must outlive the cache. Same fill-exactly-
  // once contract as fill().
  static void fill_delta(Line& line, const std::vector<std::uint32_t>* base,
                         std::vector<std::uint64_t> diff) {
    {
      const std::lock_guard lock(line.mutex);
      line.base = base;
      line.diff = std::move(diff);
      line.ready.store(true, std::memory_order_release);
    }
    line.ready_cv.notify_all();
  }

  // Blocks until the computing thread fills the line; read the payload with
  // poisoned()/at()/materialize() afterwards. The payload is valid while the
  // caller holds a LinePtr to the line.
  static void wait(Line& line) {
    if (!line.ready.load(std::memory_order_acquire)) {
      std::unique_lock lock(line.mutex);
      line.ready_cv.wait(
          lock, [&] { return line.ready.load(std::memory_order_acquire); });
    }
  }

  // True for the empty full-form payload a failed computer left behind.
  // Valid only after wait().
  [[nodiscard]] static bool poisoned(const Line& line) {
    return line.base == nullptr && line.hops.empty();
  }

  // Distance of one vertex from the line's payload (binary search of the
  // diff in the delta form). Valid only after wait(), on a non-poisoned line.
  [[nodiscard]] static std::uint32_t at(const Line& line, Vertex v) {
    if (line.base == nullptr) return line.hops[v];
    const std::uint64_t probe = static_cast<std::uint64_t>(v) << 32;
    const auto it =
        std::lower_bound(line.diff.begin(), line.diff.end(), probe);
    if (it != line.diff.end() && (*it >> 32) == v) {
      return static_cast<std::uint32_t>(*it);
    }
    return (*line.base)[v];
  }

  // The full distance vector of the line: baseline overlaid with the diff
  // (delta form) or a straight copy (full form). Valid only after wait(), on
  // a non-poisoned line.
  static void materialize(const Line& line, std::vector<std::uint32_t>& out) {
    if (line.base == nullptr) {
      out = line.hops;
      return;
    }
    out = *line.base;
    for (const std::uint64_t packed : line.diff) {
      out[packed >> 32] = static_cast<std::uint32_t>(packed);
    }
  }

  // Resident payload bytes of one line (0 while pending).
  [[nodiscard]] static std::size_t payload_bytes(const Line& line) {
    return line.hops.size() * sizeof(std::uint32_t) +
           line.diff.size() * sizeof(std::uint64_t);
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

  // Visits every ready, non-poisoned line (key words + payload) under one
  // shard's shared lock at a time. Snapshot-export path (src/persist/): the
  // traversal order is per-shard insertion order, which is deterministic for
  // a fixed probe history. `fn(words, line)`.
  template <typename Fn>
  void for_each_line(Fn&& fn) const {
    for (const Shard& s : shards_) {
      const std::shared_lock lock(s.mutex);
      for (const auto& [key, line] : s.lines) {
        if (line->ready.load(std::memory_order_acquire) && !poisoned(*line)) {
          fn(std::span<const std::uint32_t>(key.words), *line);
        }
      }
    }
  }

  // Inserts a line for `key` without waking the serving counters: no hit or
  // miss is recorded, nothing is ever evicted to make room, and the caller
  // must fill()/fill_delta() the returned line before traffic starts.
  // Snapshot-restore path (cache warming happens before the first request,
  // so the counter stream the golden replay checks stays untouched). Returns
  // null when the cache is disabled, the key is already present, or the
  // shard's capacity slice is full (warming never displaces anything).
  LinePtr warm_insert(const ScenarioKeyView& key) {
    if (!enabled()) return nullptr;
    Shard& shard = shard_for(key);
    const std::unique_lock lock(shard.mutex);
    if (shard.lines.find(key) != shard.lines.end()) return nullptr;
    if (shard.lines.size() >= shard_capacity_) return nullptr;
    const auto [ins, inserted] =
        shard.lines.try_emplace(ScenarioKey(key), std::make_shared<Line>());
    shard.ring.push_back(&*ins);
    size_.fetch_add(1, std::memory_order_relaxed);
    return ins->second;
  }

  // Payload bytes currently resident across every line, by scan (stats-path
  // only; one shard lock at a time, never two). Pending lines count as 0.
  [[nodiscard]] std::size_t total_resident_bytes() const {
    std::size_t total = 0;
    for (const Shard& s : shards_) {
      const std::shared_lock lock(s.mutex);
      for (const auto& [key, line] : s.lines) {
        if (line->ready.load(std::memory_order_acquire)) {
          total += payload_bytes(*line);
        }
      }
    }
    return total;
  }
  [[nodiscard]] std::uint64_t total_hits() const {
    return sum(&Shard::hits);
  }
  [[nodiscard]] std::uint64_t total_misses() const {
    return sum(&Shard::misses);
  }
  [[nodiscard]] std::uint64_t total_evictions() const {
    return sum(&Shard::evictions);
  }

 private:
  // A relaxed counter alone on its cache line: hits, misses, and evictions
  // are bumped from different code paths by different workers, and packing
  // them adjacently would bounce one line between cores for three logically
  // independent counters.
  struct alignas(64) PaddedCounter {
    std::atomic<std::uint64_t> value{0};
  };

  // The shard header itself is cache-line aligned so two shards never share
  // a line (one worker's exclusive-lock insert must not stall another
  // worker's shared-lock hit on the neighboring shard).
  struct alignas(64) Shard {
    mutable std::shared_mutex mutex;  // stats-path scans lock a const shard
    std::unordered_map<ScenarioKey, LinePtr, ScenarioKeyHash, ScenarioKeyEq>
        lines;
    // CLOCK ring: one slot per resident line, pointing at the map node (the
    // map is node-based, so pointers survive rehashes; only erase moves a
    // line out, and erase always recycles the slot in the same breath).
    std::vector<const std::pair<const ScenarioKey, LinePtr>*> ring;
    std::size_t hand = 0;  // next ring slot the eviction sweep examines
    PaddedCounter hits;
    PaddedCounter misses;
    PaddedCounter evictions;
  };

  Shard& shard_for(const ScenarioKeyView& key) {
    return shards_[key.fingerprint % shards_.size()];
  }

  static bool is_poisoned(const Line& line) {
    return line.ready.load(std::memory_order_acquire) && poisoned(line);
  }

  // Second-chance sweep, called with the shard's exclusive lock held and the
  // ring full: advance the hand, clearing reference bits, until a line whose
  // bit was already clear turns up — that slot is the victim. Terminates in
  // at most two passes (the first pass clears every bit, and no concurrent
  // touch can re-set one while we hold the exclusive lock), and the choice
  // is a pure function of the shard's probe history, so a fixed probe order
  // replays identical evictions.
  static std::size_t sweep_for_victim(Shard& shard) {
    for (;;) {
      const std::size_t slot = shard.hand;
      shard.hand = (shard.hand + 1) % shard.ring.size();
      Line& line = *shard.ring[slot]->second;
      if (!line.referenced.exchange(false, std::memory_order_relaxed)) {
        return slot;
      }
    }
  }

  std::uint64_t sum(PaddedCounter Shard::* counter) const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += (s.*counter).value.load(std::memory_order_relaxed);
    }
    return total;
  }

  std::size_t capacity_;
  std::vector<Shard> shards_;
  std::size_t shard_capacity_;  // per-shard slice: max(1, ceil(cap/shards))
  std::atomic<std::size_t> size_{0};
};

// Exactly-once lazy builds: maps a pool key to the entry index that serves
// it, with a latch for the build in progress. claim() decides who builds;
// publish()/wait() hand the entry index to the racers.
class BuildOnceMap {
 public:
  struct Cell {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    int entry = -1;  // pool entry index; -1 = build never published
  };
  using CellPtr = std::shared_ptr<Cell>;

  struct Claim {
    CellPtr cell;
    bool owner = false;  // this caller must build and publish()
  };

  explicit BuildOnceMap(unsigned shard_count)
      : shards_(std::max(1u, shard_count)) {}

  // First claimant of a key becomes the owner (and must publish, even on
  // failure, or racers hang); everyone else shares the owner's cell.
  Claim claim(std::uint64_t key) {
    Shard& shard = shards_[key % shards_.size()];
    {
      const std::shared_lock lock(shard.mutex);
      const auto it = shard.cells.find(key);
      if (it != shard.cells.end()) return Claim{it->second, false};
    }
    const std::unique_lock lock(shard.mutex);
    const auto [it, inserted] = shard.cells.try_emplace(key);
    if (inserted) it->second = std::make_shared<Cell>();
    return Claim{it->second, inserted};
  }

  static void publish(Cell& cell, int entry) {
    {
      const std::lock_guard lock(cell.mutex);
      cell.entry = entry;
      cell.done = true;
    }
    cell.done_cv.notify_all();
  }

  // Entry index for the key, blocking until the owner publishes. -1 means
  // the owner could not build (the caller falls through to its refusal
  // path, exactly as if the key had never been claimable).
  static int wait(Cell& cell) {
    std::unique_lock lock(cell.mutex);
    cell.done_cv.wait(lock, [&] { return cell.done; });
    return cell.entry;
  }

  // Drops the key so the next claim starts fresh. The failure path: publish
  // -1 first (wakes the current waiters into their refusal paths), then
  // forget, so the next request re-attempts the build instead of being
  // refused forever on a transient failure.
  void forget(std::uint64_t key) {
    Shard& shard = shards_[key % shards_.size()];
    const std::unique_lock lock(shard.mutex);
    shard.cells.erase(key);
  }

 private:
  struct Shard {
    std::shared_mutex mutex;
    std::unordered_map<std::uint64_t, CellPtr> cells;
  };

  std::vector<Shard> shards_;
};

}  // namespace ftbfs
