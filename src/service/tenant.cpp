#include "service/tenant.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "graph/io.h"
#include "persist/service_io.h"
#include "persist/snapshot.h"
#include "service/json.h"
#include "util/failpoint.h"

namespace ftbfs {

// One manifest entry, parsed and validated but not yet loaded or applied.
struct TenantRegistry::PendingTenant {
  std::string name;
  std::string graph_path;
  std::string snapshot_path;
  bool cache_warm = false;
  ServiceConfig config;
  TenantQuotas quotas;
};

namespace {

void accumulate(ServiceStats& into, const ServiceStats& s) {
  into.requests += s.requests;
  into.served += s.served;
  into.refused += s.refused;
  into.cache_hits += s.cache_hits;
  into.cache_misses += s.cache_misses;
  into.cache_evictions += s.cache_evictions;
  into.cache_lines += s.cache_lines;
  into.cache_resident_bytes += s.cache_resident_bytes;
  into.structures_built += s.structures_built;
  into.identity_served += s.identity_served;
  into.point_oracle_served += s.point_oracle_served;
  into.fast_path_hits += s.fast_path_hits;
  into.repair_bfs += s.repair_bfs;
  into.full_bfs += s.full_bfs;
}

// Manifest errors reuse GraphIoError (the CLI already reports it as a load
// failure); there is no meaningful line number for semantic errors, so 0.
[[noreturn]] void manifest_error(const std::string& why) {
  throw GraphIoError(0, "tenant manifest: " + why);
}

std::unique_ptr<Tenant> make_tenant_from_graph(std::string name, Graph graph,
                                               const ServiceConfig& config,
                                               const TenantQuotas& quotas) {
  if (name.empty()) {
    throw GraphIoError(0, "tenant name must be non-empty");
  }
  return std::make_unique<Tenant>(std::move(name), std::move(graph), config,
                                  quotas);
}

std::unique_ptr<Tenant> make_tenant_from_snapshot(
    std::string name, const std::string& snapshot_path,
    const ServiceConfig& config, const TenantQuotas& quotas, bool warm_cache,
    const std::string& graph_path) {
  SnapshotLoadOptions opts;
  GraphFingerprint expect;
  Graph graph_file;
  if (!graph_path.empty()) {
    // Fail-closed cross-check: a snapshot built from a different graph is
    // rejected (kGraphMismatch) before any tenant exists.
    graph_file = load_graph(graph_path);
    expect = fingerprint_of(graph_file);
    opts.expect = &expect;
  }
  SnapshotImage image = load_snapshot(snapshot_path, opts);
  auto t = make_tenant_from_graph(std::move(name), std::move(image.graph),
                                  config, quotas);
  PersistAccess::restore_service(t->service, image, warm_cache);
  return t;
}

}  // namespace

Tenant& TenantRegistry::adopt(std::unique_ptr<Tenant> t) {
  const std::unique_lock lock(mutex_);
  for (const auto& live : tenants_) {
    if (live->name == t->name) {
      throw GraphIoError(0, "duplicate tenant name '" + t->name + "'");
    }
  }
  tenants_.push_back(std::move(t));
  return *tenants_.back();
}

Tenant& TenantRegistry::add(std::string name, Graph graph,
                            ServiceConfig config, TenantQuotas quotas) {
  return adopt(
      make_tenant_from_graph(std::move(name), std::move(graph), config,
                             quotas));
}

Tenant& TenantRegistry::add_from_snapshot(std::string name,
                                          const std::string& snapshot_path,
                                          ServiceConfig config,
                                          TenantQuotas quotas, bool warm_cache,
                                          const std::string& graph_path) {
  auto t = make_tenant_from_snapshot(std::move(name), snapshot_path, config,
                                     quotas, warm_cache, graph_path);
  t->snapshot_path = snapshot_path;
  t->graph_path = graph_path;
  return adopt(std::move(t));
}

Tenant* TenantRegistry::find(std::string_view name) {
  const std::shared_lock lock(mutex_);
  if (name.empty()) {
    return tenants_.empty() ? nullptr : tenants_.front().get();
  }
  for (const auto& t : tenants_) {
    if (t->name == name) return t.get();
  }
  return nullptr;
}

Tenant* TenantRegistry::find_and_pin(std::string_view name) {
  const std::shared_lock lock(mutex_);
  Tenant* found = nullptr;
  if (name.empty()) {
    found = tenants_.empty() ? nullptr : tenants_.front().get();
  } else {
    for (const auto& t : tenants_) {
      if (t->name == name) {
        found = t.get();
        break;
      }
    }
  }
  // Pinned under the shared lock: a racing reload cannot retire-and-reap the
  // tenant between the scan and the increment.
  if (found != nullptr) found->pins.fetch_add(1, std::memory_order_acq_rel);
  return found;
}

Tenant* TenantRegistry::default_tenant() {
  const std::shared_lock lock(mutex_);
  return tenants_.empty() ? nullptr : tenants_.front().get();
}

std::size_t TenantRegistry::size() const {
  const std::shared_lock lock(mutex_);
  return tenants_.size();
}

GraphResolver TenantRegistry::resolver() {
  return [this](const std::string& tenant) -> const Graph* {
    Tenant* t = find(tenant);
    return t == nullptr ? nullptr : &t->graph;
  };
}

std::vector<TenantStats> TenantRegistry::stats() const {
  const std::shared_lock lock(mutex_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size() + retired_.size());
  const auto snap = [&](const Tenant& t, bool retired) {
    TenantStats s;
    s.name = t.name;
    s.service = t.service.stats();
    s.quota_refused = t.quota_refused.load(std::memory_order_relaxed);
    s.rate_refused = t.rate_refused.load(std::memory_order_relaxed);
    s.deadline_refused = t.deadline_refused.load(std::memory_order_relaxed);
    s.retired = retired;
    out.push_back(std::move(s));
  };
  for (const auto& t : tenants_) snap(*t, false);
  for (const auto& t : retired_) snap(*t, true);
  return out;
}

TenantStats TenantRegistry::global_stats() const {
  TenantStats total;
  for (const TenantStats& s : stats()) {
    accumulate(total.service, s.service);
    total.quota_refused += s.quota_refused;
    total.rate_refused += s.rate_refused;
    total.deadline_refused += s.deadline_refused;
  }
  return total;
}

std::vector<TenantRegistry::PendingTenant> TenantRegistry::parse_manifest(
    const std::string& path, const ServiceConfig& base) {
  std::ifstream in(path);
  if (!in) manifest_error("cannot open '" + path + "'");
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string text = slurp.str();

  JsonValue root;
  std::string err;
  if (!JsonReader(text).parse(root, err)) manifest_error(err);
  // Two accepted shapes: a bare array of tenant entries (legacy, schema 1),
  // or an object with a "tenants" key and an optional "schema" version.
  // Schema 1 (the PR 6 surface) has no snapshot keys and treats unknown keys
  // as fatal; schema 2 adds "snapshot"/"cache_warm" plus the rate-limit and
  // deadline quotas, and downgrades unknown keys to stderr warnings (the
  // PR 7 convention: surface, don't refuse).
  std::uint64_t schema = 1;
  const JsonValue* tenants = &root;
  if (root.kind == JsonValue::Kind::kObject) {
    if (const JsonValue* sv = root.find("schema")) {
      if (!json_read_uint(*sv, schema) || schema < 1 || schema > 2) {
        manifest_error(
            "\"schema\" must be 1 or 2 (this build understands up to 2)");
      }
    }
    for (const auto& [key, value] : root.object) {
      if (key == "tenants" || key == "schema") continue;
      if (schema >= 2) {
        std::fprintf(stderr,
                     "ftbfs: warning: tenant manifest: ignoring unknown "
                     "top-level key \"%s\"\n",
                     key.c_str());
      } else {
        manifest_error("unknown top-level key \"" + key + "\"");
      }
    }
    tenants = root.find("tenants");
    if (tenants == nullptr) manifest_error("missing \"tenants\" array");
  }
  if (tenants->kind != JsonValue::Kind::kArray) {
    manifest_error("top level must be a tenant array or {\"tenants\": [...]}");
  }
  if (schema < 2) {
    std::fprintf(stderr,
                 "ftbfs: warning: tenant manifest '%s' parsed as schema 1 "
                 "(deprecated); add \"schema\": 2 — see the schema table in "
                 "docs/serving.md\n",
                 path.c_str());
  }

  std::vector<PendingTenant> out;
  for (const JsonValue& entry : tenants->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      manifest_error("each tenant must be an object");
    }
    PendingTenant p;
    p.config = base;
    const auto needs_schema2 = [&](const std::string& key) {
      if (schema < 2) manifest_error("\"" + key + "\" needs \"schema\": 2");
    };
    for (const auto& [key, value] : entry.object) {
      std::uint64_t u = 0;
      if (key == "name") {
        if (value.kind != JsonValue::Kind::kString || value.str.empty()) {
          manifest_error("\"name\" must be a non-empty string");
        }
        p.name = value.str;
      } else if (key == "graph") {
        if (value.kind != JsonValue::Kind::kString) {
          manifest_error("\"graph\" must be a file path");
        }
        p.graph_path = value.str;
      } else if (key == "budget") {
        if (!json_read_uint(value, u)) manifest_error("\"budget\" must be an integer");
        p.config.default_budget = static_cast<unsigned>(u);
      } else if (key == "max_lazy") {
        if (!json_read_uint(value, u)) manifest_error("\"max_lazy\" must be an integer");
        p.config.max_lazy_budget = static_cast<unsigned>(u);
      } else if (key == "cache") {
        if (!json_read_uint(value, u)) manifest_error("\"cache\" must be an integer");
        p.config.cache_capacity = static_cast<std::size_t>(u);
      } else if (key == "lazy") {
        if (value.kind != JsonValue::Kind::kBool) manifest_error("\"lazy\" must be a boolean");
        p.config.lazy_build = value.boolean;
      } else if (key == "seed") {
        if (!json_read_uint(value, u)) manifest_error("\"seed\" must be an integer");
        p.config.weight_seed = u;
      } else if (key == "max_requests") {
        if (!json_read_uint(value, u)) {
          manifest_error("\"max_requests\" must be an integer");
        }
        p.quotas.max_requests = u;
      } else if (key == "rate_limit_rps") {
        needs_schema2(key);
        if (value.kind != JsonValue::Kind::kNumber || value.number < 0.0) {
          manifest_error("\"rate_limit_rps\" must be a non-negative number");
        }
        p.quotas.rate_limit_rps = value.number;
      } else if (key == "burst") {
        needs_schema2(key);
        if (!json_read_uint(value, u)) {
          manifest_error("\"burst\" must be an integer");
        }
        p.quotas.rate_limit_burst = u;
      } else if (key == "deadline_ms") {
        needs_schema2(key);
        if (!json_read_uint(value, u) || u > (1ull << 40)) {
          manifest_error("\"deadline_ms\" must be a non-negative integer");
        }
        p.quotas.deadline_ms = static_cast<std::int64_t>(u);
      } else if (key == "snapshot") {
        needs_schema2(key);
        if (value.kind != JsonValue::Kind::kString || value.str.empty()) {
          manifest_error("\"snapshot\" must be a file path");
        }
        p.snapshot_path = value.str;
      } else if (key == "cache_warm") {
        needs_schema2(key);
        if (value.kind != JsonValue::Kind::kBool) {
          manifest_error("\"cache_warm\" must be a boolean");
        }
        p.cache_warm = value.boolean;
      } else if (schema >= 2) {
        std::fprintf(stderr,
                     "ftbfs: warning: tenant manifest: ignoring unknown "
                     "tenant key \"%s\"\n",
                     key.c_str());
      } else {
        // Schema 1 is operator config with no warnings channel: a typo here
        // should stop the process, not silently serve with defaults.
        manifest_error("unknown tenant key \"" + key + "\"");
      }
    }
    if (p.name.empty()) manifest_error("tenant entry is missing \"name\"");
    if (p.cache_warm && p.snapshot_path.empty()) {
      manifest_error("tenant \"" + p.name + "\": \"cache_warm\" needs "
                     "\"snapshot\"");
    }
    if (p.snapshot_path.empty() && p.graph_path.empty()) {
      manifest_error("tenant \"" + p.name + "\" is missing \"graph\"" +
                     (schema >= 2 ? std::string(" (or \"snapshot\")")
                                  : std::string()));
    }
    for (const PendingTenant& seen : out) {
      if (seen.name == p.name) {
        manifest_error("duplicate tenant name '" + p.name + "'");
      }
    }
    out.push_back(std::move(p));
  }
  if (out.empty()) manifest_error("\"tenants\" names no tenants");
  return out;
}

void TenantRegistry::load_manifest(const std::string& path,
                                   const ServiceConfig& base) {
  for (PendingTenant& p : parse_manifest(path, base)) {
    if (!p.snapshot_path.empty()) {
      // With both keys, the graph file is the fingerprint cross-check; the
      // tenant's graph is the snapshot's either way.
      add_from_snapshot(std::move(p.name), p.snapshot_path, p.config, p.quotas,
                        p.cache_warm, p.graph_path);
    } else {
      Tenant& t = add(std::move(p.name), load_graph(p.graph_path), p.config,
                      p.quotas);
      t.graph_path = p.graph_path;
    }
  }
}

ReloadSummary TenantRegistry::reload(const std::string& path,
                                     const ServiceConfig& base) {
  // Phase 1 — parse and load with NO live mutation: any throw (malformed
  // manifest, unreadable graph, rejected snapshot) leaves the old
  // configuration serving untouched.
  std::vector<PendingTenant> specs = parse_manifest(path, base);

  // Classify against the live set. name/graph_path/snapshot_path are
  // immutable after construction, so the shared lock only fences membership.
  std::vector<bool> in_place(specs.size(), false);
  {
    const std::shared_lock lock(mutex_);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      for (const auto& t : tenants_) {
        if (t->name == specs[i].name &&
            t->graph_path == specs[i].graph_path &&
            t->snapshot_path == specs[i].snapshot_path &&
            !(t->graph_path.empty() && t->snapshot_path.empty())) {
          // Same sources → hot re-quota. Service config changes (cache size,
          // budgets, ...) do NOT apply in place — docs/robustness.md.
          in_place[i] = true;
          break;
        }
      }
    }
  }
  std::vector<std::unique_ptr<Tenant>> built(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (in_place[i]) continue;
    PendingTenant& p = specs[i];
    if (!p.snapshot_path.empty()) {
      built[i] = make_tenant_from_snapshot(p.name, p.snapshot_path, p.config,
                                           p.quotas, p.cache_warm,
                                           p.graph_path);
    } else {
      built[i] = make_tenant_from_graph(p.name, load_graph(p.graph_path),
                                        p.config, p.quotas);
    }
    built[i]->graph_path = p.graph_path;
    built[i]->snapshot_path = p.snapshot_path;
  }

  // Phase 2 — swap memberships under the exclusive lock. Manifest order
  // becomes the live order, so the first manifest entry is the new default.
  ReloadSummary summary;
  {
    const std::unique_lock lock(mutex_);
    std::vector<std::unique_ptr<Tenant>> next;
    next.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (in_place[i]) {
        for (auto& t : tenants_) {
          if (t != nullptr && t->name == specs[i].name) {
            t->set_quotas(specs[i].quotas);
            next.push_back(std::move(t));
            ++summary.updated;
            break;
          }
        }
      } else {
        next.push_back(std::move(built[i]));
        ++summary.added;
      }
    }
    for (auto& t : tenants_) {
      if (t == nullptr) continue;  // moved into `next`
      t->retired.store(true, std::memory_order_release);
      retired_.push_back(std::move(t));
      ++summary.retired;
    }
    tenants_ = std::move(next);
  }
  summary.reaped = reap_retired();
  return summary;
}

std::size_t TenantRegistry::reap_retired() {
  const std::unique_lock lock(mutex_);
  const std::size_t before = retired_.size();
  // A retired tenant is unroutable, so pins can only drain; once zero under
  // the exclusive lock, no request can ever reference it again.
  std::erase_if(retired_, [](const std::unique_ptr<Tenant>& t) {
    return t->pins.load(std::memory_order_acquire) == 0;
  });
  return before - retired_.size();
}

LineJob::LineJob(TenantRegistry& registry, const std::string& line,
                 std::int64_t seq, bool stamp_seq, WireCounters& counters,
                 std::chrono::steady_clock::time_point arrival)
    : registry_(&registry),
      counters_(&counters),
      arrival_(arrival),
      seq_(seq),
      stamp_seq_(stamp_seq) {
  // The resolver runs at most once per line, after the object scan; pinning
  // inside it makes route-and-pin atomic against a racing reload (the graph
  // pointer the fault resolution uses stays valid for the job's life).
  parsed_ = std::make_unique<ParsedRequest>(parse_request_line(
      line, [this](const std::string& tenant) -> const Graph* {
        Tenant* t = registry_->find_and_pin(tenant);
        pin_ = TenantPin(t);
        tenant_ = t;
        return t == nullptr ? nullptr : &t->graph;
      }));
  switch (parsed_->status) {
    case ParseStatus::kSyntax:
      counters_->parse_errors.fetch_add(1, std::memory_order_relaxed);
      local_ = format_parse_error_line(*parsed_, stamp_seq_ ? seq_ : -1);
      return;
    case ParseStatus::kResolve: {
      counters_->resolve_refusals.fetch_add(1, std::memory_order_relaxed);
      QueryResponse resp;
      resp.id = parsed_->request.id;
      resp.seq = stamp_seq_ ? seq_ : -1;
      resp.status = parsed_->resolve_status;
      resp.warnings = std::move(parsed_->warnings);
      resp.error = parsed_->error;
      local_ = format_response_line(resp);
      return;
    }
    case ParseStatus::kOk:
      return;
  }
}

std::string LineJob::refuse_line(StatusCode status, std::string why) {
  QueryResponse resp;
  resp.id = parsed_->request.id;
  resp.seq = stamp_seq_ ? seq_ : -1;
  resp.status = status;
  resp.warnings = std::move(parsed_->warnings);
  resp.error = std::move(why);
  return format_response_line(resp);
}

void LineJob::resolve_deadline() {
  std::int64_t ms = parsed_->request.deadline_ms;
  if (ms <= 0) ms = tenant_->deadline_default();
  if (ms > 0) deadline_ = arrival_ + std::chrono::milliseconds(ms);
}

void LineJob::admit() {
  if (local_.has_value()) return;  // answered at parse time
  // Gate order: deadline (an expired request must not consume tokens or
  // quota), then rate limit, then the lifetime quota, then the service.
  resolve_deadline();
  if (deadline_.has_value() &&
      std::chrono::steady_clock::now() > *deadline_) {
    counters_->deadline_refusals.fetch_add(1, std::memory_order_relaxed);
    tenant_->deadline_refused.fetch_add(1, std::memory_order_relaxed);
    local_ = refuse_line(StatusCode::kDeadlineExceeded,
                         "deadline of " +
                             std::to_string(parsed_->request.deadline_ms > 0
                                                ? parsed_->request.deadline_ms
                                                : tenant_->deadline_default()) +
                             " ms expired before admission");
    return;
  }
  if (!tenant_->try_acquire_token_now()) {
    counters_->rate_limit_refusals.fetch_add(1, std::memory_order_relaxed);
    local_ = refuse_line(StatusCode::kRateLimited,
                         "tenant '" + tenant_->name +
                             "' is over its request rate; retry later");
    return;
  }
  if (!tenant_->try_admit()) {
    counters_->quota_refusals.fetch_add(1, std::memory_order_relaxed);
    local_ = refuse_line(StatusCode::kQuotaExceeded,
                         "tenant '" + tenant_->name +
                             "' is over its request quota");
    return;
  }
  admission_ = tenant_->service.admit(parsed_->request);
}

std::string LineJob::finish() {
  if (local_.has_value()) return std::move(*local_);
  {
    // Chaos/latency hook: a sleep armed on `service.execute` models a slow
    // backend without touching real serving code paths.
    static fp::Failpoint& fp_exec = fp::site("service.execute");
    (void)fp::fail_errno(fp_exec);
  }
  if (deadline_.has_value() && !admission_->done &&
      std::chrono::steady_clock::now() > *deadline_) {
    // Too late to be worth computing. Dropping the admission is safe: its
    // fill obligation (if any) poisons the reserved cache line so waiters
    // recompute for themselves.
    admission_.reset();
    counters_->deadline_refusals.fetch_add(1, std::memory_order_relaxed);
    tenant_->deadline_refused.fetch_add(1, std::memory_order_relaxed);
    return refuse_line(StatusCode::kDeadlineExceeded,
                       "deadline expired while queued for execution");
  }
  QueryResponse resp = tenant_->service.execute(std::move(*admission_));
  resp.seq = stamp_seq_ ? seq_ : -1;
  resp.warnings = std::move(parsed_->warnings);
  return format_response_line(resp);
}

}  // namespace ftbfs
