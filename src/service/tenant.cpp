#include "service/tenant.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "graph/io.h"
#include "service/json.h"

namespace ftbfs {

Tenant& TenantRegistry::add(std::string name, Graph graph,
                            ServiceConfig config, TenantQuotas quotas) {
  if (name.empty()) {
    throw GraphIoError(0, "tenant name must be non-empty");
  }
  if (find(name) != nullptr) {
    throw GraphIoError(0, "duplicate tenant name '" + name + "'");
  }
  return tenants_.emplace_back(std::move(name), std::move(graph), config,
                               quotas);
}

Tenant* TenantRegistry::find(std::string_view name) {
  if (name.empty()) return default_tenant();
  for (Tenant& t : tenants_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

GraphResolver TenantRegistry::resolver() {
  return [this](const std::string& tenant) -> const Graph* {
    Tenant* t = find(tenant);
    return t == nullptr ? nullptr : &t->graph;
  };
}

namespace {

void accumulate(ServiceStats& into, const ServiceStats& s) {
  into.requests += s.requests;
  into.served += s.served;
  into.refused += s.refused;
  into.cache_hits += s.cache_hits;
  into.cache_misses += s.cache_misses;
  into.cache_evictions += s.cache_evictions;
  into.cache_lines += s.cache_lines;
  into.cache_resident_bytes += s.cache_resident_bytes;
  into.structures_built += s.structures_built;
  into.identity_served += s.identity_served;
  into.point_oracle_served += s.point_oracle_served;
  into.fast_path_hits += s.fast_path_hits;
  into.repair_bfs += s.repair_bfs;
  into.full_bfs += s.full_bfs;
}

// Manifest errors reuse GraphIoError (the CLI already reports it as a load
// failure); there is no meaningful line number for semantic errors, so 0.
[[noreturn]] void manifest_error(const std::string& why) {
  throw GraphIoError(0, "tenant manifest: " + why);
}

}  // namespace

std::vector<TenantStats> TenantRegistry::stats() const {
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const Tenant& t : tenants_) {
    TenantStats s;
    s.name = t.name;
    s.service = t.service.stats();
    s.quota_refused = t.quota_refused.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

TenantStats TenantRegistry::global_stats() const {
  TenantStats total;
  for (const TenantStats& s : stats()) {
    accumulate(total.service, s.service);
    total.quota_refused += s.quota_refused;
  }
  return total;
}

void TenantRegistry::load_manifest(const std::string& path,
                                   const ServiceConfig& base) {
  std::ifstream in(path);
  if (!in) manifest_error("cannot open '" + path + "'");
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string text = slurp.str();

  JsonValue root;
  std::string err;
  if (!JsonReader(text).parse(root, err)) manifest_error(err);
  // Two accepted shapes: a bare array of tenant entries, or an object with a
  // "tenants" key (room for future top-level settings).
  const JsonValue* tenants = &root;
  if (root.kind == JsonValue::Kind::kObject) {
    for (const auto& [key, value] : root.object) {
      if (key != "tenants") {
        manifest_error("unknown top-level key \"" + key + "\"");
      }
    }
    tenants = root.find("tenants");
    if (tenants == nullptr) manifest_error("missing \"tenants\" array");
  }
  if (tenants->kind != JsonValue::Kind::kArray) {
    manifest_error("top level must be a tenant array or {\"tenants\": [...]}");
  }

  for (const JsonValue& entry : tenants->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      manifest_error("each tenant must be an object");
    }
    std::string name;
    std::string graph_path;
    ServiceConfig config = base;
    TenantQuotas quotas;
    for (const auto& [key, value] : entry.object) {
      std::uint64_t u = 0;
      if (key == "name") {
        if (value.kind != JsonValue::Kind::kString || value.str.empty()) {
          manifest_error("\"name\" must be a non-empty string");
        }
        name = value.str;
      } else if (key == "graph") {
        if (value.kind != JsonValue::Kind::kString) {
          manifest_error("\"graph\" must be a file path");
        }
        graph_path = value.str;
      } else if (key == "budget") {
        if (!json_read_uint(value, u)) manifest_error("\"budget\" must be an integer");
        config.default_budget = static_cast<unsigned>(u);
      } else if (key == "max_lazy") {
        if (!json_read_uint(value, u)) manifest_error("\"max_lazy\" must be an integer");
        config.max_lazy_budget = static_cast<unsigned>(u);
      } else if (key == "cache") {
        if (!json_read_uint(value, u)) manifest_error("\"cache\" must be an integer");
        config.cache_capacity = static_cast<std::size_t>(u);
      } else if (key == "lazy") {
        if (value.kind != JsonValue::Kind::kBool) manifest_error("\"lazy\" must be a boolean");
        config.lazy_build = value.boolean;
      } else if (key == "seed") {
        if (!json_read_uint(value, u)) manifest_error("\"seed\" must be an integer");
        config.weight_seed = u;
      } else if (key == "max_requests") {
        if (!json_read_uint(value, u)) {
          manifest_error("\"max_requests\" must be an integer");
        }
        quotas.max_requests = u;
      } else {
        // The manifest is operator config, not client traffic: a typo here
        // should stop the process, not silently serve with defaults.
        manifest_error("unknown tenant key \"" + key + "\"");
      }
    }
    if (name.empty()) manifest_error("tenant entry is missing \"name\"");
    if (graph_path.empty()) {
      manifest_error("tenant \"" + name + "\" is missing \"graph\"");
    }
    add(std::move(name), load_graph(graph_path), config, quotas);
  }
  if (tenants_.empty()) manifest_error("\"tenants\" names no tenants");
}

LineJob::LineJob(TenantRegistry& registry, const std::string& line,
                 std::int64_t seq, bool stamp_seq, WireCounters& counters)
    : registry_(&registry),
      counters_(&counters),
      seq_(seq),
      stamp_seq_(stamp_seq) {
  parsed_ = std::make_unique<ParsedRequest>(
      parse_request_line(line, registry.resolver()));
  switch (parsed_->status) {
    case ParseStatus::kSyntax:
      counters_->parse_errors.fetch_add(1, std::memory_order_relaxed);
      local_ = format_parse_error_line(*parsed_, stamp_seq_ ? seq_ : -1);
      return;
    case ParseStatus::kResolve: {
      counters_->resolve_refusals.fetch_add(1, std::memory_order_relaxed);
      QueryResponse resp;
      resp.id = parsed_->request.id;
      resp.seq = stamp_seq_ ? seq_ : -1;
      resp.status = parsed_->resolve_status;
      resp.warnings = std::move(parsed_->warnings);
      resp.error = parsed_->error;
      local_ = format_response_line(resp);
      return;
    }
    case ParseStatus::kOk:
      // The resolver just found this tenant; the registry is immutable while
      // serving, so the pointer stays valid for the job's life.
      tenant_ = registry_->find(parsed_->tenant);
      return;
  }
}

void LineJob::admit() {
  if (local_.has_value()) return;  // answered at parse time
  if (!tenant_->try_admit()) {
    counters_->quota_refusals.fetch_add(1, std::memory_order_relaxed);
    QueryResponse resp;
    resp.id = parsed_->request.id;
    resp.seq = stamp_seq_ ? seq_ : -1;
    resp.status = StatusCode::kQuotaExceeded;
    resp.warnings = std::move(parsed_->warnings);
    resp.error = "tenant '" + tenant_->name + "' is over its request quota";
    local_ = format_response_line(resp);
    return;
  }
  admission_ = tenant_->service.admit(parsed_->request);
}

std::string LineJob::finish() {
  if (local_.has_value()) return std::move(*local_);
  QueryResponse resp = tenant_->service.execute(std::move(*admission_));
  resp.seq = stamp_seq_ ? seq_ : -1;
  resp.warnings = std::move(parsed_->warnings);
  return format_response_line(resp);
}

}  // namespace ftbfs
