#include "service/tenant.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "graph/io.h"
#include "persist/service_io.h"
#include "persist/snapshot.h"
#include "service/json.h"

namespace ftbfs {

Tenant& TenantRegistry::add(std::string name, Graph graph,
                            ServiceConfig config, TenantQuotas quotas) {
  if (name.empty()) {
    throw GraphIoError(0, "tenant name must be non-empty");
  }
  if (find(name) != nullptr) {
    throw GraphIoError(0, "duplicate tenant name '" + name + "'");
  }
  return tenants_.emplace_back(std::move(name), std::move(graph), config,
                               quotas);
}

Tenant& TenantRegistry::add_from_snapshot(std::string name,
                                          const std::string& snapshot_path,
                                          ServiceConfig config,
                                          TenantQuotas quotas, bool warm_cache,
                                          const std::string& graph_path) {
  SnapshotLoadOptions opts;
  GraphFingerprint expect;
  Graph graph_file;
  if (!graph_path.empty()) {
    // Fail-closed cross-check: a snapshot built from a different graph is
    // rejected (kGraphMismatch) before any tenant exists.
    graph_file = load_graph(graph_path);
    expect = fingerprint_of(graph_file);
    opts.expect = &expect;
  }
  SnapshotImage image = load_snapshot(snapshot_path, opts);
  Graph host = std::move(image.graph);
  Tenant& t = add(std::move(name), std::move(host), config, quotas);
  PersistAccess::restore_service(t.service, image, warm_cache);
  return t;
}

Tenant* TenantRegistry::find(std::string_view name) {
  if (name.empty()) return default_tenant();
  for (Tenant& t : tenants_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

GraphResolver TenantRegistry::resolver() {
  return [this](const std::string& tenant) -> const Graph* {
    Tenant* t = find(tenant);
    return t == nullptr ? nullptr : &t->graph;
  };
}

namespace {

void accumulate(ServiceStats& into, const ServiceStats& s) {
  into.requests += s.requests;
  into.served += s.served;
  into.refused += s.refused;
  into.cache_hits += s.cache_hits;
  into.cache_misses += s.cache_misses;
  into.cache_evictions += s.cache_evictions;
  into.cache_lines += s.cache_lines;
  into.cache_resident_bytes += s.cache_resident_bytes;
  into.structures_built += s.structures_built;
  into.identity_served += s.identity_served;
  into.point_oracle_served += s.point_oracle_served;
  into.fast_path_hits += s.fast_path_hits;
  into.repair_bfs += s.repair_bfs;
  into.full_bfs += s.full_bfs;
}

// Manifest errors reuse GraphIoError (the CLI already reports it as a load
// failure); there is no meaningful line number for semantic errors, so 0.
[[noreturn]] void manifest_error(const std::string& why) {
  throw GraphIoError(0, "tenant manifest: " + why);
}

}  // namespace

std::vector<TenantStats> TenantRegistry::stats() const {
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const Tenant& t : tenants_) {
    TenantStats s;
    s.name = t.name;
    s.service = t.service.stats();
    s.quota_refused = t.quota_refused.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

TenantStats TenantRegistry::global_stats() const {
  TenantStats total;
  for (const TenantStats& s : stats()) {
    accumulate(total.service, s.service);
    total.quota_refused += s.quota_refused;
  }
  return total;
}

void TenantRegistry::load_manifest(const std::string& path,
                                   const ServiceConfig& base) {
  std::ifstream in(path);
  if (!in) manifest_error("cannot open '" + path + "'");
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string text = slurp.str();

  JsonValue root;
  std::string err;
  if (!JsonReader(text).parse(root, err)) manifest_error(err);
  // Two accepted shapes: a bare array of tenant entries (legacy, schema 1),
  // or an object with a "tenants" key and an optional "schema" version.
  // Schema 1 (the PR 6 surface) has no snapshot keys and treats unknown keys
  // as fatal; schema 2 adds "snapshot"/"cache_warm" and downgrades unknown
  // keys to stderr warnings (the PR 7 convention: surface, don't refuse).
  std::uint64_t schema = 1;
  const JsonValue* tenants = &root;
  if (root.kind == JsonValue::Kind::kObject) {
    if (const JsonValue* sv = root.find("schema")) {
      if (!json_read_uint(*sv, schema) || schema < 1 || schema > 2) {
        manifest_error(
            "\"schema\" must be 1 or 2 (this build understands up to 2)");
      }
    }
    for (const auto& [key, value] : root.object) {
      if (key == "tenants" || key == "schema") continue;
      if (schema >= 2) {
        std::fprintf(stderr,
                     "ftbfs: warning: tenant manifest: ignoring unknown "
                     "top-level key \"%s\"\n",
                     key.c_str());
      } else {
        manifest_error("unknown top-level key \"" + key + "\"");
      }
    }
    tenants = root.find("tenants");
    if (tenants == nullptr) manifest_error("missing \"tenants\" array");
  }
  if (tenants->kind != JsonValue::Kind::kArray) {
    manifest_error("top level must be a tenant array or {\"tenants\": [...]}");
  }
  if (schema < 2) {
    std::fprintf(stderr,
                 "ftbfs: warning: tenant manifest '%s' parsed as schema 1 "
                 "(deprecated); add \"schema\": 2 — see the schema table in "
                 "docs/serving.md\n",
                 path.c_str());
  }

  for (const JsonValue& entry : tenants->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      manifest_error("each tenant must be an object");
    }
    std::string name;
    std::string graph_path;
    std::string snapshot_path;
    bool cache_warm = false;
    ServiceConfig config = base;
    TenantQuotas quotas;
    for (const auto& [key, value] : entry.object) {
      std::uint64_t u = 0;
      if (key == "name") {
        if (value.kind != JsonValue::Kind::kString || value.str.empty()) {
          manifest_error("\"name\" must be a non-empty string");
        }
        name = value.str;
      } else if (key == "graph") {
        if (value.kind != JsonValue::Kind::kString) {
          manifest_error("\"graph\" must be a file path");
        }
        graph_path = value.str;
      } else if (key == "budget") {
        if (!json_read_uint(value, u)) manifest_error("\"budget\" must be an integer");
        config.default_budget = static_cast<unsigned>(u);
      } else if (key == "max_lazy") {
        if (!json_read_uint(value, u)) manifest_error("\"max_lazy\" must be an integer");
        config.max_lazy_budget = static_cast<unsigned>(u);
      } else if (key == "cache") {
        if (!json_read_uint(value, u)) manifest_error("\"cache\" must be an integer");
        config.cache_capacity = static_cast<std::size_t>(u);
      } else if (key == "lazy") {
        if (value.kind != JsonValue::Kind::kBool) manifest_error("\"lazy\" must be a boolean");
        config.lazy_build = value.boolean;
      } else if (key == "seed") {
        if (!json_read_uint(value, u)) manifest_error("\"seed\" must be an integer");
        config.weight_seed = u;
      } else if (key == "max_requests") {
        if (!json_read_uint(value, u)) {
          manifest_error("\"max_requests\" must be an integer");
        }
        quotas.max_requests = u;
      } else if (key == "snapshot") {
        if (schema < 2) {
          manifest_error("\"snapshot\" needs \"schema\": 2");
        }
        if (value.kind != JsonValue::Kind::kString || value.str.empty()) {
          manifest_error("\"snapshot\" must be a file path");
        }
        snapshot_path = value.str;
      } else if (key == "cache_warm") {
        if (schema < 2) {
          manifest_error("\"cache_warm\" needs \"schema\": 2");
        }
        if (value.kind != JsonValue::Kind::kBool) {
          manifest_error("\"cache_warm\" must be a boolean");
        }
        cache_warm = value.boolean;
      } else if (schema >= 2) {
        std::fprintf(stderr,
                     "ftbfs: warning: tenant manifest: ignoring unknown "
                     "tenant key \"%s\"\n",
                     key.c_str());
      } else {
        // Schema 1 is operator config with no warnings channel: a typo here
        // should stop the process, not silently serve with defaults.
        manifest_error("unknown tenant key \"" + key + "\"");
      }
    }
    if (name.empty()) manifest_error("tenant entry is missing \"name\"");
    if (cache_warm && snapshot_path.empty()) {
      manifest_error("tenant \"" + name + "\": \"cache_warm\" needs "
                     "\"snapshot\"");
    }
    if (!snapshot_path.empty()) {
      // With both keys, the graph file is the fingerprint cross-check; the
      // tenant's graph is the snapshot's either way.
      add_from_snapshot(std::move(name), snapshot_path, config, quotas,
                        cache_warm, graph_path);
    } else if (graph_path.empty()) {
      manifest_error("tenant \"" + name + "\" is missing \"graph\"" +
                     (schema >= 2 ? std::string(" (or \"snapshot\")")
                                  : std::string()));
    } else {
      add(std::move(name), load_graph(graph_path), config, quotas);
    }
  }
  if (tenants_.empty()) manifest_error("\"tenants\" names no tenants");
}

LineJob::LineJob(TenantRegistry& registry, const std::string& line,
                 std::int64_t seq, bool stamp_seq, WireCounters& counters)
    : registry_(&registry),
      counters_(&counters),
      seq_(seq),
      stamp_seq_(stamp_seq) {
  parsed_ = std::make_unique<ParsedRequest>(
      parse_request_line(line, registry.resolver()));
  switch (parsed_->status) {
    case ParseStatus::kSyntax:
      counters_->parse_errors.fetch_add(1, std::memory_order_relaxed);
      local_ = format_parse_error_line(*parsed_, stamp_seq_ ? seq_ : -1);
      return;
    case ParseStatus::kResolve: {
      counters_->resolve_refusals.fetch_add(1, std::memory_order_relaxed);
      QueryResponse resp;
      resp.id = parsed_->request.id;
      resp.seq = stamp_seq_ ? seq_ : -1;
      resp.status = parsed_->resolve_status;
      resp.warnings = std::move(parsed_->warnings);
      resp.error = parsed_->error;
      local_ = format_response_line(resp);
      return;
    }
    case ParseStatus::kOk:
      // The resolver just found this tenant; the registry is immutable while
      // serving, so the pointer stays valid for the job's life.
      tenant_ = registry_->find(parsed_->tenant);
      return;
  }
}

void LineJob::admit() {
  if (local_.has_value()) return;  // answered at parse time
  if (!tenant_->try_admit()) {
    counters_->quota_refusals.fetch_add(1, std::memory_order_relaxed);
    QueryResponse resp;
    resp.id = parsed_->request.id;
    resp.seq = stamp_seq_ ? seq_ : -1;
    resp.status = StatusCode::kQuotaExceeded;
    resp.warnings = std::move(parsed_->warnings);
    resp.error = "tenant '" + tenant_->name + "' is over its request quota";
    local_ = format_response_line(resp);
    return;
  }
  admission_ = tenant_->service.admit(parsed_->request);
}

std::string LineJob::finish() {
  if (local_.has_value()) return std::move(*local_);
  QueryResponse resp = tenant_->service.execute(std::move(*admission_));
  resp.seq = stamp_seq_ ? seq_ : -1;
  resp.warnings = std::move(parsed_->warnings);
  return format_response_line(resp);
}

}  // namespace ftbfs
