// Epoch-stamped graph masks.
//
// All of the paper's restricted graphs — G∖F, G(u_k,u_l) (Eq. 3), G_D(w_l)
// (Eq. 4), and G_{τ−1}(v) (step 3 of Cons2FTBFS) — are the base graph with
// some vertices removed, some edges removed, and possibly the edges incident
// to one distinguished vertex restricted to a whitelist. A GraphMask expresses
// all three without copying the graph; reset is O(1) via epoch bumping, so the
// inner loops of the construction algorithms perform no per-query allocation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace ftbfs {

class GraphMask {
 public:
  explicit GraphMask(const Graph& g)
      : vertex_epoch_(g.num_vertices(), 0),
        edge_block_epoch_(g.num_edges(), 0),
        edge_allow_epoch_(g.num_edges(), 0) {}

  // Drops all restrictions in O(1).
  void clear() {
    ++epoch_;
    restricted_vertex_ = kInvalidVertex;
  }

  void block_vertex(Vertex v) {
    FTBFS_EXPECTS(v < vertex_epoch_.size());
    vertex_epoch_[v] = epoch_;
  }

  void block_edge(EdgeId e) {
    FTBFS_EXPECTS(e < edge_block_epoch_.size());
    edge_block_epoch_[e] = epoch_;
  }

  // Restricts the edges incident to `v` to exactly those subsequently passed
  // to allow_edge(). Models G_{τ−1}(v) = (G ∖ E(v,G)) ∪ E_{τ−1}(v).
  // At most one vertex may be restricted at a time.
  void restrict_incident_edges(Vertex v) {
    FTBFS_EXPECTS(v < vertex_epoch_.size());
    restricted_vertex_ = v;
  }

  // Whitelists edge e at the restricted vertex. Only meaningful after
  // restrict_incident_edges().
  void allow_edge(EdgeId e) {
    FTBFS_EXPECTS(e < edge_allow_epoch_.size());
    edge_allow_epoch_[e] = epoch_;
  }

  [[nodiscard]] bool vertex_blocked(Vertex v) const {
    return vertex_epoch_[v] == epoch_;
  }

  [[nodiscard]] bool edge_blocked(EdgeId e) const {
    return edge_block_epoch_[e] == epoch_;
  }

  // Full usability test for traversing edge `e` into vertex `to` from vertex
  // `from`: neither endpoint blocked, edge not blocked, and — if either
  // endpoint is the restricted vertex — the edge is whitelisted.
  [[nodiscard]] bool edge_usable(EdgeId e, Vertex from, Vertex to) const {
    if (edge_blocked(e) || vertex_blocked(to) || vertex_blocked(from)) {
      return false;
    }
    if (from == restricted_vertex_ || to == restricted_vertex_) {
      return edge_allow_epoch_[e] == epoch_;
    }
    return true;
  }

  [[nodiscard]] Vertex restricted_vertex() const { return restricted_vertex_; }

  // True iff an incident-edge restriction is active. Traversal loops load
  // this once per run/vertex and use the cheap per-arc test below instead of
  // re-deriving it from restricted_vertex_ on every arc.
  [[nodiscard]] bool has_restriction() const {
    return restricted_vertex_ != kInvalidVertex;
  }

  // Per-arc test for the unrestricted common case: edge not blocked and the
  // head not blocked. Valid only when has_restriction() is false and `from`
  // is known unblocked (true for any vertex already settled by a traversal).
  [[nodiscard]] bool arc_blocked_unrestricted(EdgeId e, Vertex to) const {
    return edge_block_epoch_[e] == epoch_ || vertex_epoch_[to] == epoch_;
  }

 private:
  std::uint32_t epoch_ = 1;
  Vertex restricted_vertex_ = kInvalidVertex;
  std::vector<std::uint32_t> vertex_epoch_;
  std::vector<std::uint32_t> edge_block_epoch_;
  std::vector<std::uint32_t> edge_allow_epoch_;
};

// Convenience: blocks every edge of `faults` on the mask.
void block_edges(GraphMask& mask, std::span<const EdgeId> faults);

}  // namespace ftbfs
