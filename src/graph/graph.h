// Core graph substrate: simple undirected unweighted graphs in CSR form with
// stable edge identifiers.
//
// The paper's algorithms manipulate *edges* as first-class objects (fault sets
// are edge sets, structures are edge sets), so every undirected edge gets one
// EdgeId; the CSR adjacency stores (neighbor, edge id) arcs in both directions.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/assert.h"

namespace ftbfs {

using Vertex = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr Vertex kInvalidVertex = static_cast<Vertex>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

// One undirected edge; canonicalized so u < v.
struct Edge {
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// One directed half-edge in the adjacency of some vertex.
struct Arc {
  Vertex to = kInvalidVertex;
  EdgeId id = kInvalidEdge;
};

class Graph;

// Accumulates edges, validates them (no self-loops, no parallel edges), and
// freezes into an immutable Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(Vertex num_vertices) : num_vertices_(num_vertices) {}

  // Adds the undirected edge {u, v}; returns its id (insertion order).
  // Duplicate edges and self-loops are contract violations.
  EdgeId add_edge(Vertex u, Vertex v);

  // True if {u, v} was already added. O(log deg(u)) — the staged neighbor
  // lists are kept sorted, so the random-graph generators can build large
  // instances through this path without a quadratic duplicate scan.
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  [[nodiscard]] Vertex num_vertices() const { return num_vertices_; }
  [[nodiscard]] EdgeId num_edges() const {
    return static_cast<EdgeId>(edges_.size());
  }

  [[nodiscard]] Graph build() &&;

 private:
  Vertex num_vertices_;
  std::vector<Edge> edges_;
  // Staged adjacency (sorted neighbor lists) used only for duplicate
  // detection.
  std::vector<std::vector<Vertex>> staged_;
};

class Graph {
 public:
  Graph() = default;

  [[nodiscard]] Vertex num_vertices() const { return num_vertices_; }
  [[nodiscard]] EdgeId num_edges() const {
    return static_cast<EdgeId>(edges_.size());
  }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    FTBFS_EXPECTS(e < edges_.size());
    return edges_[e];
  }

  // The endpoint of edge e that is not `from`.
  [[nodiscard]] Vertex other_endpoint(EdgeId e, Vertex from) const {
    const Edge& ed = edge(e);
    FTBFS_EXPECTS(ed.u == from || ed.v == from);
    return ed.u == from ? ed.v : ed.u;
  }

  // Arcs out of v, sorted by neighbor id (deterministic iteration order).
  [[nodiscard]] std::span<const Arc> neighbors(Vertex v) const {
    FTBFS_EXPECTS(v < num_vertices_);
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::uint32_t degree(Vertex v) const {
    FTBFS_EXPECTS(v < num_vertices_);
    return offsets_[v + 1] - offsets_[v];
  }

  // Edge id of {u, v}, or kInvalidEdge if absent. O(log deg(u)).
  [[nodiscard]] EdgeId find_edge(Vertex u, Vertex v) const;

  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const {
    return find_edge(u, v) != kInvalidEdge;
  }

  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  // Adopts already-built CSR arrays without re-validating them. The snapshot
  // loader (src/persist/) is the only intended caller: it has just proven the
  // arrays consistent (canonical edges, monotone offsets, sorted arcs that
  // agree with the edge list), so rebuilding them through GraphBuilder would
  // only repeat O((n + m) log n) work the validation already did.
  [[nodiscard]] static Graph from_csr_unchecked(Vertex num_vertices,
                                                std::vector<Edge> edges,
                                                std::vector<std::uint32_t> offsets,
                                                std::vector<Arc> arcs);

 private:
  friend class GraphBuilder;

  Vertex num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::uint32_t> offsets_;  // size num_vertices_ + 1
  std::vector<Arc> arcs_;               // size 2 * num_edges
};

// Builds the subgraph of `g` induced by keeping exactly the edges in
// `kept_edges` (vertex set unchanged). Edge ids are NOT preserved; the result
// is a fresh graph. Used to materialize computed FT-BFS structures H ⊆ G.
[[nodiscard]] Graph subgraph_from_edges(const Graph& g,
                                        std::span<const EdgeId> kept_edges);

// True if every vertex is reachable from vertex 0 (or the graph is empty).
[[nodiscard]] bool is_connected(const Graph& g);

// Human-readable one-line summary, e.g. "Graph(n=100, m=250)".
[[nodiscard]] std::string describe(const Graph& g);

}  // namespace ftbfs
