// Synthetic graph families used by the tests and the evaluation harness.
//
// The paper reports purely worst-case bounds, so the evaluation workload is
// ours to define (documented in EXPERIMENTS.md): standard random families to
// measure typical structure sizes, plus deterministic topologies exercising
// extreme depth/width, plus the paper's own lower-bound constructions (in
// src/lowerbound). All generators are deterministic in (parameters, seed).
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace ftbfs {

// Erdős–Rényi G(n, p). If connect_spine is true, a random Hamiltonian path is
// added first so the sample is always connected (standard trick for
// experiments that need connectivity at small n·p).
[[nodiscard]] Graph erdos_renyi(Vertex n, double p, std::uint64_t seed,
                                bool connect_spine = true);

// Connected graph with exactly m edges (m >= n-1): a uniform random spanning
// tree (Wilson-ish random walk insertion) plus m-(n-1) distinct random chords.
// Requires m <= n(n-1)/2.
[[nodiscard]] Graph random_connected(Vertex n, EdgeId m, std::uint64_t seed);

// Simple path 0-1-...-n-1. Worst case for BFS-tree depth.
[[nodiscard]] Graph path_graph(Vertex n);

// Cycle 0-1-...-n-1-0. The smallest 2-edge-connected graph.
[[nodiscard]] Graph cycle_graph(Vertex n);

// Complete graph K_n.
[[nodiscard]] Graph complete_graph(Vertex n);

// Complete bipartite graph K_{a,b}; vertices 0..a-1 on the left side.
[[nodiscard]] Graph complete_bipartite(Vertex a, Vertex b);

// rows x cols grid, vertex (r,c) = r*cols + c.
[[nodiscard]] Graph grid_graph(Vertex rows, Vertex cols);

// d-dimensional hypercube, n = 2^dim vertices.
[[nodiscard]] Graph hypercube_graph(unsigned dim);

// Path 0..n-1 plus `chords` random non-adjacent chords: deep BFS trees with
// nontrivial replacement-path structure (many long detours).
[[nodiscard]] Graph path_with_chords(Vertex n, EdgeId chords,
                                     std::uint64_t seed);

// Two cliques of size n/2 joined by `bridges` disjoint edges: stresses fault
// tolerance across a sparse cut.
[[nodiscard]] Graph barbell_graph(Vertex n, Vertex bridges);

}  // namespace ftbfs
