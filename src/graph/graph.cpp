#include "graph/graph.h"

#include <algorithm>

namespace ftbfs {

EdgeId GraphBuilder::add_edge(Vertex u, Vertex v) {
  FTBFS_EXPECTS(u < num_vertices_ && v < num_vertices_);
  FTBFS_EXPECTS(u != v);  // no self-loops
  if (u > v) std::swap(u, v);
  if (staged_.empty()) staged_.resize(num_vertices_);
  auto& list = staged_[u];
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  FTBFS_EXPECTS(it == list.end() || *it != v);  // no parallel edges
  list.insert(it, v);
  edges_.push_back(Edge{u, v});
  return static_cast<EdgeId>(edges_.size() - 1);
}

bool GraphBuilder::has_edge(Vertex u, Vertex v) const {
  if (u > v) std::swap(u, v);
  if (staged_.empty()) return false;
  const auto& list = staged_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

Graph GraphBuilder::build() && {
  Graph g;
  g.num_vertices_ = num_vertices_;
  g.edges_ = std::move(edges_);
  g.offsets_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (Vertex v = 0; v < num_vertices_; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
  }
  g.arcs_.resize(2 * g.edges_.size());
  std::vector<std::uint32_t> cursor(g.offsets_.begin(),
                                    g.offsets_.end() - 1);
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    g.arcs_[cursor[e.u]++] = Arc{e.v, id};
    g.arcs_[cursor[e.v]++] = Arc{e.u, id};
  }
  // Sort each adjacency list by neighbor id so iteration is deterministic and
  // find_edge can binary-search.
  for (Vertex v = 0; v < num_vertices_; ++v) {
    std::sort(g.arcs_.begin() + g.offsets_[v],
              g.arcs_.begin() + g.offsets_[v + 1],
              [](const Arc& a, const Arc& b) { return a.to < b.to; });
  }
  return g;
}

Graph Graph::from_csr_unchecked(Vertex num_vertices, std::vector<Edge> edges,
                                std::vector<std::uint32_t> offsets,
                                std::vector<Arc> arcs) {
  FTBFS_EXPECTS(offsets.size() == static_cast<std::size_t>(num_vertices) + 1);
  FTBFS_EXPECTS(arcs.size() == 2 * edges.size());
  Graph g;
  g.num_vertices_ = num_vertices;
  g.edges_ = std::move(edges);
  g.offsets_ = std::move(offsets);
  g.arcs_ = std::move(arcs);
  return g;
}

EdgeId Graph::find_edge(Vertex u, Vertex v) const {
  FTBFS_EXPECTS(u < num_vertices_ && v < num_vertices_);
  const auto nbrs = neighbors(u);
  const auto it =
      std::lower_bound(nbrs.begin(), nbrs.end(), v,
                       [](const Arc& a, Vertex target) { return a.to < target; });
  if (it != nbrs.end() && it->to == v) return it->id;
  return kInvalidEdge;
}

Graph subgraph_from_edges(const Graph& g, std::span<const EdgeId> kept_edges) {
  GraphBuilder b(g.num_vertices());
  for (const EdgeId e : kept_edges) {
    const Edge& ed = g.edge(e);
    b.add_edge(ed.u, ed.v);
  }
  return std::move(b).build();
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<Vertex> stack = {0};
  seen[0] = true;
  Vertex count = 1;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    for (const Arc& arc : g.neighbors(v)) {
      if (!seen[arc.to]) {
        seen[arc.to] = true;
        ++count;
        stack.push_back(arc.to);
      }
    }
  }
  return count == g.num_vertices();
}

std::string describe(const Graph& g) {
  return "Graph(n=" + std::to_string(g.num_vertices()) +
         ", m=" + std::to_string(g.num_edges()) + ")";
}

}  // namespace ftbfs
