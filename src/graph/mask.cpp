#include "graph/mask.h"

namespace ftbfs {

void block_edges(GraphMask& mask, std::span<const EdgeId> faults) {
  for (const EdgeId e : faults) mask.block_edge(e);
}

}  // namespace ftbfs
