#include "graph/io.h"

#include <fstream>
#include <optional>
#include <sstream>

namespace ftbfs {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "# ftbfs edge list\n";
  os << "n " << g.num_vertices() << "\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    os << "e " << g.edge(e).u << " " << g.edge(e).v << "\n";
  }
}

Graph read_edge_list(std::istream& is) {
  std::optional<GraphBuilder> builder;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string tag;
    if (!(tokens >> tag)) continue;  // blank
    if (tag == "n") {
      if (builder.has_value()) {
        throw GraphIoError(line_no, "duplicate 'n' header");
      }
      long long n = -1;
      if (!(tokens >> n) || n < 0) {
        throw GraphIoError(line_no, "expected 'n <count>'");
      }
      builder.emplace(static_cast<Vertex>(n));
    } else if (tag == "e") {
      if (!builder.has_value()) {
        throw GraphIoError(line_no, "'e' before 'n' header");
      }
      long long u = -1, v = -1;
      if (!(tokens >> u >> v) || u < 0 || v < 0) {
        throw GraphIoError(line_no, "expected 'e <u> <v>'");
      }
      if (u >= builder->num_vertices() || v >= builder->num_vertices()) {
        throw GraphIoError(line_no, "endpoint out of range");
      }
      if (u == v) throw GraphIoError(line_no, "self-loop");
      if (builder->has_edge(static_cast<Vertex>(u), static_cast<Vertex>(v))) {
        throw GraphIoError(line_no, "duplicate edge");
      }
      builder->add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    } else {
      throw GraphIoError(line_no, "unknown record '" + tag + "'");
    }
  }
  if (!builder.has_value()) {
    throw GraphIoError(line_no, "missing 'n' header");
  }
  return std::move(*builder).build();
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw GraphIoError(0, "cannot open for writing: " + path);
  write_edge_list(out, g);
}

Graph load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw GraphIoError(0, "cannot open for reading: " + path);
  return read_edge_list(in);
}

}  // namespace ftbfs
