#include "graph/generators.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace ftbfs {

Graph erdos_renyi(Vertex n, double p, std::uint64_t seed, bool connect_spine) {
  FTBFS_EXPECTS(n >= 1);
  FTBFS_EXPECTS(p >= 0.0 && p <= 1.0);
  Rng rng(derive_seed(seed, 0xE12D05));
  GraphBuilder b(n);

  std::vector<Vertex> order(n);
  for (Vertex v = 0; v < n; ++v) order[v] = v;
  if (connect_spine) {
    rng.shuffle(order);
    for (Vertex i = 0; i + 1 < n; ++i) b.add_edge(order[i], order[i + 1]);
  }
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (rng.next_bool(p) && !b.has_edge(u, v)) b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

Graph random_connected(Vertex n, EdgeId m, std::uint64_t seed) {
  FTBFS_EXPECTS(n >= 1);
  FTBFS_EXPECTS(m + 1 >= n);
  FTBFS_EXPECTS(static_cast<std::uint64_t>(m) * 2 <=
                static_cast<std::uint64_t>(n) * (n - 1));
  Rng rng(derive_seed(seed, 0x5EED5));
  GraphBuilder b(n);

  // Random spanning tree: attach each vertex (in random order) to a uniformly
  // random already-attached vertex. (Random attachment tree; not uniform over
  // all spanning trees, but unbiased enough for workload generation.)
  std::vector<Vertex> order(n);
  for (Vertex v = 0; v < n; ++v) order[v] = v;
  rng.shuffle(order);
  for (Vertex i = 1; i < n; ++i) {
    const Vertex parent = order[rng.next_below(i)];
    b.add_edge(order[i], parent);
  }
  // Random distinct chords until edge budget reached.
  while (b.num_edges() < m) {
    const Vertex u = static_cast<Vertex>(rng.next_below(n));
    const Vertex v = static_cast<Vertex>(rng.next_below(n));
    if (u == v || b.has_edge(u, v)) continue;
    b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph path_graph(Vertex n) {
  FTBFS_EXPECTS(n >= 1);
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

Graph cycle_graph(Vertex n) {
  FTBFS_EXPECTS(n >= 3);
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return std::move(b).build();
}

Graph complete_graph(Vertex n) {
  FTBFS_EXPECTS(n >= 1);
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph complete_bipartite(Vertex a, Vertex b_count) {
  FTBFS_EXPECTS(a >= 1 && b_count >= 1);
  GraphBuilder b(a + b_count);
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex v = 0; v < b_count; ++v) b.add_edge(u, a + v);
  }
  return std::move(b).build();
}

Graph grid_graph(Vertex rows, Vertex cols) {
  FTBFS_EXPECTS(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(b).build();
}

Graph hypercube_graph(unsigned dim) {
  FTBFS_EXPECTS(dim >= 1 && dim < 20);
  const Vertex n = Vertex{1} << dim;
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) {
    for (unsigned bit = 0; bit < dim; ++bit) {
      const Vertex w = v ^ (Vertex{1} << bit);
      if (v < w) b.add_edge(v, w);
    }
  }
  return std::move(b).build();
}

Graph path_with_chords(Vertex n, EdgeId chords, std::uint64_t seed) {
  FTBFS_EXPECTS(n >= 2);
  Rng rng(derive_seed(seed, 0xC0D5));
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  EdgeId added = 0;
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 64ULL * (chords + 1);
  while (added < chords && attempts < max_attempts) {
    ++attempts;
    const Vertex u = static_cast<Vertex>(rng.next_below(n));
    const Vertex v = static_cast<Vertex>(rng.next_below(n));
    const Vertex lo = std::min(u, v), hi = std::max(u, v);
    if (hi - lo < 2) continue;  // path edges / self loops excluded
    if (b.has_edge(lo, hi)) continue;
    b.add_edge(lo, hi);
    ++added;
  }
  return std::move(b).build();
}

Graph barbell_graph(Vertex n, Vertex bridges) {
  FTBFS_EXPECTS(n >= 4);
  const Vertex half = n / 2;
  FTBFS_EXPECTS(bridges >= 1 && bridges <= half);
  GraphBuilder b(n);
  for (Vertex u = 0; u < half; ++u) {
    for (Vertex v = u + 1; v < half; ++v) b.add_edge(u, v);
  }
  for (Vertex u = half; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  for (Vertex i = 0; i < bridges; ++i) b.add_edge(i, half + i);
  return std::move(b).build();
}

}  // namespace ftbfs
