// Plain-text graph serialization: a minimal edge-list format so structures
// can be exchanged with external tools and the CLI.
//
// Format ("ftbfs edge list"):
//   # comment lines and blank lines are ignored
//   n <num_vertices>
//   e <u> <v>          (0-based endpoints, one per line, no duplicates)
//
// Parsing errors throw GraphIoError with a line number — malformed input is
// an expected runtime condition, not a programming error, so exceptions (not
// contract aborts) are the right tool here.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/graph.h"

namespace ftbfs {

class GraphIoError : public std::runtime_error {
 public:
  GraphIoError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

// Writes the edge-list representation.
void write_edge_list(std::ostream& os, const Graph& g);

// Parses an edge list; throws GraphIoError on malformed input.
[[nodiscard]] Graph read_edge_list(std::istream& is);

// File convenience wrappers; throw GraphIoError if the file cannot be opened.
void save_graph(const std::string& path, const Graph& g);
[[nodiscard]] Graph load_graph(const std::string& path);

}  // namespace ftbfs
