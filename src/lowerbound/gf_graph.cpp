#include "lowerbound/gf_graph.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace ftbfs {
namespace {

// Edge accumulator with a vertex allocator; frozen into a Graph at the end.
struct Ctx {
  std::vector<std::pair<Vertex, Vertex>> edges;
  Vertex next = 0;

  Vertex alloc() { return next++; }

  void edge(Vertex a, Vertex b) { edges.emplace_back(a, b); }

  // Fresh path of `len` edges between existing vertices a and b; allocates
  // len-1 interior vertices. Returns the full vertex sequence a..b.
  Path connect(Vertex a, Vertex b, std::uint32_t len) {
    FTBFS_EXPECTS(len >= 1);
    Path p = {a};
    Vertex prev = a;
    for (std::uint32_t i = 0; i + 1 < len; ++i) {
      const Vertex mid = alloc();
      edge(prev, mid);
      p.push_back(mid);
      prev = mid;
    }
    edge(prev, b);
    p.push_back(b);
    return p;
  }
};

using LabelByEndpoints = std::vector<std::pair<Vertex, Vertex>>;

struct Sub {
  Vertex root = kInvalidVertex;
  std::vector<Vertex> leaves;                 // left-to-right
  std::vector<LabelByEndpoints> labels;
  std::vector<Path> leaf_paths;               // root -> leaf
  std::vector<Vertex> spine;
  std::uint32_t depth = 0;                    // max |leaf_path|
};

// Connector length at level f >= 2 for spine position i (1-based):
// (d - i) * depth(f-1, d) + 1. (The paper's (d-i)*depth would make the last
// connector empty; the +1 keeps every connector a real path. See gf_graph.h.)
std::uint32_t connector_len(Vertex d, Vertex i, std::uint32_t sub_depth) {
  return (d - i) * sub_depth + 1;
}

Sub build_rec(unsigned f, Vertex d, Ctx& ctx) {
  Sub out;
  out.spine.resize(d);
  for (Vertex i = 0; i < d; ++i) {
    out.spine[i] = ctx.alloc();
    if (i > 0) ctx.edge(out.spine[i - 1], out.spine[i]);
  }
  out.root = out.spine[0];

  if (f == 1) {
    for (Vertex i = 1; i <= d; ++i) {
      const Vertex z = ctx.alloc();
      const std::uint32_t qlen = 6 + 2 * (d - i);
      const Path q = ctx.connect(out.spine[i - 1], z, qlen);
      Path leaf_path(out.spine.begin(),
                     out.spine.begin() + static_cast<std::ptrdiff_t>(i));
      leaf_path.pop_back();  // spine prefix up to (excluding) u_i ...
      leaf_path.insert(leaf_path.end(), q.begin(), q.end());  // ... then Q_i
      out.leaves.push_back(z);
      out.leaf_paths.push_back(std::move(leaf_path));
      LabelByEndpoints label;
      if (i < d) label.emplace_back(out.spine[i - 1], out.spine[i]);
      out.labels.push_back(std::move(label));
    }
  } else {
    std::uint32_t sub_depth = 0;
    for (Vertex i = 1; i <= d; ++i) {
      Sub copy = build_rec(f - 1, d, ctx);
      sub_depth = copy.depth;  // identical across copies
      const Path q = ctx.connect(out.spine[i - 1], copy.root,
                                 connector_len(d, i, sub_depth));
      Path to_copy(out.spine.begin(),
                   out.spine.begin() + static_cast<std::ptrdiff_t>(i));
      to_copy.pop_back();
      to_copy.insert(to_copy.end(), q.begin(), q.end());
      for (std::size_t leaf = 0; leaf < copy.leaves.size(); ++leaf) {
        Path leaf_path = to_copy;
        leaf_path.insert(leaf_path.end(), copy.leaf_paths[leaf].begin() + 1,
                         copy.leaf_paths[leaf].end());
        LabelByEndpoints label;
        if (i < d) label.emplace_back(out.spine[i - 1], out.spine[i]);
        label.insert(label.end(), copy.labels[leaf].begin(),
                     copy.labels[leaf].end());
        out.leaves.push_back(copy.leaves[leaf]);
        out.leaf_paths.push_back(std::move(leaf_path));
        out.labels.push_back(std::move(label));
      }
    }
  }
  for (const Path& p : out.leaf_paths) {
    out.depth = std::max(out.depth, static_cast<std::uint32_t>(p.size() - 1));
  }
  return out;
}

}  // namespace

GfGraph build_gf(unsigned f, Vertex d) {
  FTBFS_EXPECTS(f >= 1 && d >= 1);
  Ctx ctx;
  Sub sub = build_rec(f, d, ctx);

  GraphBuilder b(ctx.next);
  for (const auto& [u, v] : ctx.edges) b.add_edge(u, v);

  GfGraph out;
  out.graph = std::move(b).build();
  out.f = f;
  out.d = d;
  out.root = sub.root;
  out.leaves = std::move(sub.leaves);
  out.leaf_paths = std::move(sub.leaf_paths);
  out.spine = std::move(sub.spine);
  out.depth = sub.depth;
  out.labels.reserve(sub.labels.size());
  for (const LabelByEndpoints& label : sub.labels) {
    std::vector<EdgeId> ids;
    ids.reserve(label.size());
    for (const auto& [u, v] : label) {
      const EdgeId e = out.graph.find_edge(u, v);
      FTBFS_ENSURES(e != kInvalidEdge);
      ids.push_back(e);
    }
    out.labels.push_back(std::move(ids));
  }
  return out;
}

std::uint64_t gf_num_vertices(unsigned f, Vertex d) {
  FTBFS_EXPECTS(f >= 1 && d >= 1);
  // depth(1,d) = 2d+4; depth(f,d) = d*depth(f-1,d) + 1.
  // N(1,d) = d^2 + 6d;
  // N(f,d) = d + d*N(f-1,d) + sum_i (connector_len(d,i,depth(f-1,d)) - 1).
  std::uint64_t n = static_cast<std::uint64_t>(d) * d + 6ull * d;
  std::uint64_t depth = 2ull * d + 4;
  for (unsigned level = 2; level <= f; ++level) {
    std::uint64_t interior = 0;
    for (Vertex i = 1; i <= d; ++i) {
      interior += static_cast<std::uint64_t>(d - i) * depth;  // len-1
    }
    n = d + d * n + interior;
    depth = d * depth + 1;
  }
  return n;
}

}  // namespace ftbfs
