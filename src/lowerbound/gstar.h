// The lower-bound graphs G*_f (single source, Fig. 11/12) and their
// multi-source generalization G*_{f,σ} (Theorem 4.1).
//
// σ disjoint copies of G_f(d) (sources = copy roots), a hub v* adjacent to
// the bottom spine vertex y_i = u^f_d of every copy and to every vertex of a
// filler set X, and a complete bipartite graph between X and the union of all
// copies' leaf sets. Every bipartite edge (x, z) is *essential*: failing
// Label_f(z) (or the hub edge (y_i, v*) for a copy's rightmost leaf) makes z
// the unique endpoint of the shortest surviving source→x paths.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "lowerbound/gf_graph.h"

namespace ftbfs {

struct GStarCopy {
  Vertex root = kInvalidVertex;  // the source of this copy
  Vertex y = kInvalidVertex;     // u^f_d: the hub attachment
  std::vector<Vertex> leaves;    // left-to-right
  std::vector<std::vector<EdgeId>> labels;     // edge ids in the final graph
  std::vector<std::uint32_t> leaf_path_len;    // |P(z)| per leaf
  EdgeId hub_edge = kInvalidEdge;              // (y, v*)
  // Witness fault set per leaf: the <= f edges whose failure makes (x, z_j)
  // the unique optimal last hop to every x ∈ X. Equals Label_f(z_j) for
  // leaves in top-level blocks 1..d-1 (the label's top spine edge cuts the
  // hub route); for leaves of the *last* top-level block the label has <= f-1
  // edges and the hub edge (y, v*) is added to cut the v* route.
  std::vector<std::vector<EdgeId>> witnesses;
};

struct GStarGraph {
  Graph graph;
  unsigned f = 0;
  Vertex d = 0;
  Vertex vstar = kInvalidVertex;
  std::vector<Vertex> sources;  // copy roots, |sources| = σ
  std::vector<Vertex> x_set;
  std::vector<GStarCopy> copies;
  std::vector<EdgeId> bipartite_edges;  // the Ω(σ^{1/(f+1)} n^{2-1/(f+1)}) core
};

// Builds G*_{f,σ} with exactly `n_target` vertices. Picks the largest d such
// that the σ gadget copies occupy at most 5/8 of the vertices (the paper's
// sizing) and pads with X. Requires n_target large enough for d >= 1 and a
// nonempty X; violations are contract errors.
[[nodiscard]] GStarGraph build_gstar(unsigned f, Vertex n_target,
                                     Vertex sigma = 1);

// The paper's lower-bound formula Ω(σ^{1/(f+1)} · n^{2-1/(f+1)}) evaluated
// without the Ω: σ^{1/(f+1)} · n^{2-1/(f+1)}.
[[nodiscard]] double gstar_bound(unsigned f, double n, double sigma);

}  // namespace ftbfs
