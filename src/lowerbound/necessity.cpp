#include "lowerbound/necessity.h"

#include <algorithm>

#include "graph/mask.h"
#include "spath/bfs.h"

namespace ftbfs {

NecessityReport check_bipartite_necessity(const GStarGraph& gs,
                                          std::uint64_t edge_probes_per_leaf) {
  const Graph& g = gs.graph;
  Bfs bfs(g);
  GraphMask mask(g);
  NecessityReport report;
  report.total_bipartite = gs.bipartite_edges.size();
  bool all_ok = true;

  for (const GStarCopy& copy : gs.copies) {
    for (std::size_t j = 0; j < copy.leaves.size(); ++j) {
      ++report.leaves_checked;
      const std::vector<EdgeId>& faults = copy.witnesses[j];

      mask.clear();
      block_edges(mask, faults);
      const BfsResult& base = bfs.run(copy.root, &mask);
      const std::uint32_t expect = copy.leaf_path_len[j] + 1;
      // Every x is at distance |P(z_j)| + 1 via the bipartite edge.
      for (const Vertex x : gs.x_set) {
        if (base.hops[x] != expect) all_ok = false;
      }
      // Remove individual bipartite edges and confirm the distance rises.
      const std::uint64_t probes =
          std::min<std::uint64_t>(edge_probes_per_leaf, gs.x_set.size());
      for (std::uint64_t p = 0; p < probes; ++p) {
        // Spread representatives across X deterministically.
        const Vertex x =
            gs.x_set[(p * gs.x_set.size()) / std::max<std::uint64_t>(probes, 1)];
        const EdgeId bip = g.find_edge(x, copy.leaves[j]);
        FTBFS_EXPECTS(bip != kInvalidEdge);
        mask.clear();
        block_edges(mask, faults);
        mask.block_edge(bip);
        const BfsResult& cut = bfs.run(copy.root, &mask);
        ++report.edges_checked;
        if (cut.hops[x] > expect) {
          ++report.essential;
        } else {
          all_ok = false;
        }
      }
    }
  }
  report.all_essential = all_ok && report.essential == report.edges_checked;
  return report;
}

}  // namespace ftbfs
