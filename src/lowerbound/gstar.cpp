#include "lowerbound/gstar.h"

#include <cmath>

#include "util/assert.h"

namespace ftbfs {

GStarGraph build_gstar(unsigned f, Vertex n_target, Vertex sigma) {
  FTBFS_EXPECTS(f >= 1 && sigma >= 1);
  // Largest d whose σ copies fit in 5/8 of the budget.
  Vertex d = 1;
  while (sigma * gf_num_vertices(f, d + 1) + 1 <=
         5ull * n_target / 8) {
    ++d;
  }
  const std::uint64_t gadget_n = gf_num_vertices(f, d);
  FTBFS_EXPECTS(sigma * gadget_n + 2 <= n_target);  // at least one X vertex

  // Build σ gadget copies into one vertex space.
  std::vector<GfGraph> gadgets;
  gadgets.reserve(sigma);
  for (Vertex c = 0; c < sigma; ++c) gadgets.push_back(build_gf(f, d));

  const Vertex chi =
      static_cast<Vertex>(n_target - sigma * gadget_n - 1);  // |X|
  GraphBuilder b(n_target);
  std::vector<Vertex> offset(sigma);
  Vertex next = 0;
  for (Vertex c = 0; c < sigma; ++c) {
    offset[c] = next;
    const Graph& gg = gadgets[c].graph;
    for (EdgeId e = 0; e < gg.num_edges(); ++e) {
      b.add_edge(offset[c] + gg.edge(e).u, offset[c] + gg.edge(e).v);
    }
    next += gg.num_vertices();
  }
  const Vertex vstar = next++;
  std::vector<Vertex> x_set(chi);
  for (Vertex i = 0; i < chi; ++i) x_set[i] = next++;
  FTBFS_ENSURES(next == n_target);

  for (Vertex c = 0; c < sigma; ++c) {
    b.add_edge(offset[c] + gadgets[c].spine.back(), vstar);
  }
  for (const Vertex x : x_set) b.add_edge(vstar, x);
  std::vector<std::pair<Vertex, Vertex>> bipartite;
  for (Vertex c = 0; c < sigma; ++c) {
    for (const Vertex z : gadgets[c].leaves) {
      for (const Vertex x : x_set) bipartite.emplace_back(x, offset[c] + z);
    }
  }
  for (const auto& [x, z] : bipartite) b.add_edge(x, z);

  GStarGraph out;
  out.graph = std::move(b).build();
  out.f = f;
  out.d = d;
  out.vstar = vstar;
  out.x_set = std::move(x_set);
  for (Vertex c = 0; c < sigma; ++c) {
    const GfGraph& gg = gadgets[c];
    GStarCopy copy;
    copy.root = offset[c] + gg.root;
    copy.y = offset[c] + gg.spine.back();
    copy.hub_edge = out.graph.find_edge(copy.y, vstar);
    FTBFS_ENSURES(copy.hub_edge != kInvalidEdge);
    for (std::size_t leaf = 0; leaf < gg.leaves.size(); ++leaf) {
      copy.leaves.push_back(offset[c] + gg.leaves[leaf]);
      copy.leaf_path_len.push_back(
          static_cast<std::uint32_t>(gg.leaf_paths[leaf].size() - 1));
      std::vector<EdgeId> label;
      for (const EdgeId e : gg.labels[leaf]) {
        const Edge& ed = gg.graph.edge(e);
        const EdgeId mapped =
            out.graph.find_edge(offset[c] + ed.u, offset[c] + ed.v);
        FTBFS_ENSURES(mapped != kInvalidEdge);
        label.push_back(mapped);
      }
      copy.labels.push_back(std::move(label));
    }
    // Witness fault sets (see GStarCopy): leaves of the last top-level block
    // need the hub edge because their labels never touch the top spine.
    const std::size_t per_block = copy.leaves.size() / d;
    const std::size_t last_block_start = (d - 1) * per_block;
    for (std::size_t leaf = 0; leaf < copy.leaves.size(); ++leaf) {
      std::vector<EdgeId> witness = copy.labels[leaf];
      if (leaf >= last_block_start) witness.push_back(copy.hub_edge);
      FTBFS_ENSURES(witness.size() <= f);
      copy.witnesses.push_back(std::move(witness));
    }
    out.sources.push_back(copy.root);
    out.copies.push_back(std::move(copy));
  }
  for (const auto& [x, z] : bipartite) {
    const EdgeId e = out.graph.find_edge(x, z);
    FTBFS_ENSURES(e != kInvalidEdge);
    out.bipartite_edges.push_back(e);
  }
  return out;
}

double gstar_bound(unsigned f, double n, double sigma) {
  const double inv = 1.0 / (f + 1.0);
  return std::pow(sigma, inv) * std::pow(n, 2.0 - inv);
}

}  // namespace ftbfs
