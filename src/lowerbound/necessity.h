// Necessity checking for the lower-bound graphs: demonstrates, by explicit
// fault injection, that every bipartite edge of G*_{f,σ} must appear in any
// f-failure FT-MBFS structure (the constructive content of Theorem 4.1).
//
// For the bipartite edge (x, z_j) of copy c the witness fault set is the
// per-leaf set recorded in GStarCopy::witnesses (Label_f(z_j), plus the hub
// edge (y_c, v*) for leaves of the last top-level block). Under those faults
// the unique shortest s_c→x paths end with (z_j, x); removing the edge
// strictly increases dist(s_c, x).
#pragma once

#include <cstdint>

#include "lowerbound/gstar.h"

namespace ftbfs {

struct NecessityReport {
  std::uint64_t leaves_checked = 0;    // (copy, leaf) pairs probed by BFS
  std::uint64_t edges_checked = 0;     // individual bipartite edges re-probed
  std::uint64_t essential = 0;         // edges whose removal raised the dist
  bool all_essential = false;
  std::uint64_t total_bipartite = 0;
};

// Verifies necessity by BFS fault injection. For every (copy, leaf) pair it
// checks the witness distance; then for up to `edge_probes_per_leaf`
// representative x-partners per leaf it removes the edge and re-runs BFS
// (pass a huge value to probe every edge — O(|X|) BFS per leaf).
[[nodiscard]] NecessityReport check_bipartite_necessity(
    const GStarGraph& gs, std::uint64_t edge_probes_per_leaf = 4);

}  // namespace ftbfs
