// The recursive lower-bound gadget G_f(d) of §4 (Figs. 10 and 12).
//
// G_1(d): a spine path u_1..u_d, d terminal leaves z_1..z_d, and vertex-
// disjoint connector paths Q_i of length 6 + 2(d-i) from u_i to z_i; the root
// is u_1. G_f(d): a fresh spine u^f_1..u^f_d (root u^f_1), d copies of
// G_{f-1}(d), and connector paths Q^f_i of length (d-i)·depth(f-1,d) + 1 from
// u^f_i to the root of copy i. (The paper's Q^f_d would have length 0; we use
// +1 so every connector is a real path — all of Lemma 4.3's monotonicity
// properties survive, as the tests check.)
//
// Each leaf z carries a label Label_f(z): <= f edges whose joint failure cuts
// off every leaf to the right of z while the canonical root→z path P(z)
// survives (Lemma 4.3). The label of the rightmost leaf is empty.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "spath/path.h"

namespace ftbfs {

struct GfGraph {
  Graph graph;
  unsigned f = 0;
  Vertex d = 0;
  Vertex root = kInvalidVertex;
  std::vector<Vertex> leaves;                  // left-to-right order
  std::vector<std::vector<EdgeId>> labels;     // Label_f per leaf, |.| <= f
  std::vector<Path> leaf_paths;                // P(z): unique root→z path
  std::vector<Vertex> spine;                   // u^f_1..u^f_d (top level)
  std::uint32_t depth = 0;                     // eccentricity of the root
};

// Builds G_f(d). Requires f >= 1, d >= 1.
[[nodiscard]] GfGraph build_gf(unsigned f, Vertex d);

// Number of vertices of G_f(d) without building it (used to size G*_f).
[[nodiscard]] std::uint64_t gf_num_vertices(unsigned f, Vertex d);

}  // namespace ftbfs
