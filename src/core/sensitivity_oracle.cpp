#include "core/sensitivity_oracle.h"

#include "graph/mask.h"
#include "spath/dijkstra.h"

namespace ftbfs {

SingleFaultOracle::SingleFaultOracle(const Graph& g, Vertex s,
                                     std::uint64_t weight_seed)
    : g_(&g),
      source_(s),
      sssp_([&] {
        const WeightAssignment w(g, weight_seed);
        Dijkstra dij(g, w);
        return dij.run(s);
      }()),
      tree_index_(g, sssp_, s) {
  // Row layout: depth(v) entries per reached vertex.
  row_offset_.assign(g.num_vertices() + 1, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t len =
        (v != s && tree_index_.reached(v)) ? tree_index_.depth(v) : 0;
    row_offset_[v + 1] = row_offset_[v] + len;
  }
  table_.assign(row_offset_.back(), kInfHops);

  // One masked BFS per tree edge; scatter distances into the rows of the
  // subtree below the failed edge (only those rows mention this edge).
  Bfs bfs(g);
  GraphMask mask(g);
  for (const Vertex child : tree_index_.preorder()) {
    if (child == s) continue;
    const EdgeId e = tree_index_.parent_edge(child);
    mask.clear();
    mask.block_edge(e);
    const BfsResult& r = bfs.run(s, &mask);
    const std::uint32_t slot = tree_index_.depth(child) - 1;
    for (const Vertex v : tree_index_.preorder()) {
      if (v == s || !tree_index_.ancestor_of(child, v)) continue;
      table_[row_offset_[v] + slot] = r.hops[v];
    }
  }
}

std::uint32_t SingleFaultOracle::distance(Vertex v) const {
  FTBFS_EXPECTS(v < g_->num_vertices());
  return sssp_.reached(v) ? sssp_.hops(v) : kInfHops;
}

std::uint32_t SingleFaultOracle::distance_avoiding(Vertex v, EdgeId e) const {
  FTBFS_EXPECTS(v < g_->num_vertices());
  FTBFS_EXPECTS(e < g_->num_edges());
  if (v == source_) return 0;
  if (!tree_index_.reached(v)) return kInfHops;  // removal cannot help
  // Identify whether e is the parent edge of its deeper endpoint; only then
  // can it lie on any tree path.
  const Edge& ed = g_->edge(e);
  Vertex child = kInvalidVertex;
  if (tree_index_.parent_edge(ed.u) == e) {
    child = ed.u;
  } else if (tree_index_.parent_edge(ed.v) == e) {
    child = ed.v;
  } else {
    return sssp_.hops(v);  // non-tree edge: π(s,v) is untouched
  }
  if (!tree_index_.edge_on_path_to(child, v)) return sssp_.hops(v);
  return table_[row_offset_[v] + tree_index_.depth(child) - 1];
}

}  // namespace ftbfs
