// Generic f-failure FT-BFS structure via last edges of all replacement paths
// (Observation 1.6 of the paper): for graphs of f-FT-diameter D_f the result
// has O(D_f^f · n) edges.
//
// For each target v the relevant fault sets form *chains*: starting from the
// fault-free path, each additional fault is chosen on the replacement path of
// the previous fault set (a fault set that misses the current path does not
// change the replacement path, so only chains matter). The structure keeps the
// last edge of the W-unique replacement path of every chain of length <= f.
//
// For f = 1 this coincides with the last-edge single-failure structure except
// for the divergence-point preference; for f = 2 it is an ablation baseline
// for Cons2FTBFS (same guarantees, no selection rules); for f >= 3 it is the
// only exact construction in this library (the paper leaves tight f >= 3
// bounds open).
#pragma once

#include <cstdint>

#include "core/ftbfs_common.h"
#include "graph/graph.h"

namespace ftbfs {

struct KFailOptions {
  std::uint64_t weight_seed = 1;
  // Safety valve: chains per target vertex grow like depth^f; construction
  // aborts the affected vertex's enumeration (and reports it) past this many
  // chains. Default is high enough for all library workloads.
  std::uint64_t max_chains_per_vertex = 1u << 22;
};

struct KFailStats {
  std::uint64_t chains_enumerated = 0;
  std::uint64_t chain_cap_hits = 0;  // vertices whose enumeration was truncated
};

struct KFailResult {
  FtStructure structure;
  KFailStats kstats;
};

// Builds an f-failure FT-BFS structure rooted at s (f >= 0; f = 0 gives the
// BFS tree itself).
[[nodiscard]] KFailResult build_kfail_ftbfs(const Graph& g, Vertex s,
                                            unsigned f,
                                            const KFailOptions& opt = {});

// Vertex-failure variant (the FT-MBFS definition of [10] also covers vertex
// faults; the dual-failure paper treats edges, so this is the library's
// extension along that axis): H preserves dist(s, v, G∖F) for every vertex
// fault set F ⊆ V∖{s,v}, |F| <= f. Chains pick interior vertices of the
// current replacement path.
[[nodiscard]] KFailResult build_kfail_ftbfs_vertex(const Graph& g, Vertex s,
                                                   unsigned f,
                                                   const KFailOptions& opt = {});

}  // namespace ftbfs
