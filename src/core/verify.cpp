#include "core/verify.h"

#include <algorithm>

#include "engine/query_engine.h"
#include "spath/bfs.h"
#include "util/rng.h"

namespace ftbfs {
namespace {

// Shared machinery: compares dist(s,·) in G∖F vs H∖F for one fault set. Both
// sides are FaultQueryEngines — the identity engine serves ground truth from
// G, the structure engine owns the g→H translation — so the verifier carries
// no masked-BFS or translation scratch of its own.
class Comparator {
 public:
  Comparator(const Graph& g, std::span<const EdgeId> h_edges)
      : g_(g), g_engine_(g), h_engine_(g, h_edges) {}

  // Returns a violation for fault set `faults` (host ids), if any. The
  // violation's `faults` field is filled by the caller (it knows whether ids
  // are edges or vertices).
  std::optional<Violation> check(std::span<const Vertex> sources,
                                 const FaultSpec& faults) {
    for (const Vertex s : sources) {
      const std::vector<std::uint32_t>& dg = g_engine_.all_distances(s, faults);
      const std::vector<std::uint32_t>& dh = h_engine_.all_distances(s, faults);
      for (Vertex v = 0; v < g_.num_vertices(); ++v) {
        if (dg[v] != dh[v]) {
          Violation viol;
          viol.source = s;
          viol.v = v;
          viol.dist_g = dg[v];
          viol.dist_h = dh[v];
          return viol;
        }
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] const Graph& g() const { return g_; }
  [[nodiscard]] FaultQueryEngine& g_engine() { return g_engine_; }

 private:
  const Graph& g_;
  FaultQueryEngine g_engine_;
  FaultQueryEngine h_engine_;
};

std::optional<Violation> enumerate_faults(Comparator& cmp,
                                          std::span<const Vertex> sources,
                                          std::vector<EdgeId>& faults,
                                          EdgeId next, unsigned remaining) {
  if (auto v = cmp.check(sources, edge_faults(faults))) {
    v->faults = faults;
    return v;
  }
  if (remaining == 0) return std::nullopt;
  for (EdgeId e = next; e < cmp.g().num_edges(); ++e) {
    faults.push_back(e);
    if (auto v = enumerate_faults(cmp, sources, faults, e + 1, remaining - 1)) {
      return v;
    }
    faults.pop_back();
  }
  return std::nullopt;
}

std::optional<Violation> enumerate_vertex_faults(
    Comparator& cmp, std::span<const Vertex> sources,
    std::vector<Vertex>& faults, Vertex next, unsigned remaining) {
  if (auto v = cmp.check(sources, vertex_faults(faults))) {
    v->faults = faults;
    v->fault_model = FaultModel::kVertex;
    return v;
  }
  if (remaining == 0) return std::nullopt;
  for (Vertex u = next; u < cmp.g().num_vertices(); ++u) {
    faults.push_back(u);
    if (auto v = enumerate_vertex_faults(cmp, sources, faults, u + 1,
                                         remaining - 1)) {
      return v;
    }
    faults.pop_back();
  }
  return std::nullopt;
}

}  // namespace

std::optional<Violation> verify_exhaustive_vertex(
    const Graph& g, std::span<const EdgeId> h_edges,
    std::span<const Vertex> sources, unsigned f) {
  FTBFS_EXPECTS(f <= 3);
  Comparator cmp(g, h_edges);
  std::vector<Vertex> faults;
  return enumerate_vertex_faults(cmp, sources, faults, 0, f);
}

std::string Violation::describe(const Graph& g) const {
  std::string out = "FT-MBFS violation: source " + std::to_string(source) +
                    " -> " + std::to_string(v) + " " + to_string(fault_model) +
                    " faults {";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (i > 0) out += ", ";
    if (fault_model == FaultModel::kVertex) {
      out += std::to_string(faults[i]);
    } else {
      const Edge& e = g.edge(faults[i]);
      out += "(" + std::to_string(e.u) + "," + std::to_string(e.v) + ")";
    }
  }
  out += "} dist_G=" +
         (dist_g == kInfHops ? std::string("inf") : std::to_string(dist_g)) +
         " dist_H=" +
         (dist_h == kInfHops ? std::string("inf") : std::to_string(dist_h));
  return out;
}

std::optional<Violation> verify_exhaustive(const Graph& g,
                                           std::span<const EdgeId> h_edges,
                                           std::span<const Vertex> sources,
                                           unsigned f) {
  FTBFS_EXPECTS(f <= 3);
  Comparator cmp(g, h_edges);
  std::vector<EdgeId> faults;
  return enumerate_faults(cmp, sources, faults, 0, f);
}

std::optional<Violation> verify_sampled(const Graph& g,
                                        std::span<const EdgeId> h_edges,
                                        std::span<const Vertex> sources,
                                        unsigned f, std::uint64_t samples,
                                        std::uint64_t seed) {
  FTBFS_EXPECTS(f >= 1);
  Comparator cmp(g, h_edges);
  Rng rng(derive_seed(seed, 0x7E51F1));

  // The fault-free case is always checked.
  if (auto v = cmp.check(sources, {})) return v;

  for (std::uint64_t it = 0; it < samples; ++it) {
    std::vector<EdgeId> faults;
    if (it % 2 == 0) {
      // Uniform distinct edges.
      while (faults.size() < f) {
        const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
        if (std::find(faults.begin(), faults.end(), e) == faults.end()) {
          faults.push_back(e);
        }
      }
    } else {
      // Adversarial chain: each successive fault lies on the replacement path
      // of the previous ones (queried through the ground-truth engine).
      const Vertex s =
          sources[static_cast<std::size_t>(rng.next_below(sources.size()))];
      const Vertex v = static_cast<Vertex>(rng.next_below(g.num_vertices()));
      for (unsigned step = 0; step < f; ++step) {
        const BfsResult& r = cmp.g_engine().query(s, edge_faults(faults));
        if (r.hops[v] == kInfHops || r.hops[v] == 0) break;
        // Walk parent pointers; pick a uniformly random edge of the path.
        std::vector<EdgeId> path_edges;
        for (Vertex cur = v; r.parent[cur] != kInvalidVertex;
             cur = r.parent[cur]) {
          path_edges.push_back(r.parent_edge[cur]);
        }
        faults.push_back(path_edges[static_cast<std::size_t>(
            rng.next_below(path_edges.size()))]);
      }
      while (faults.size() < f) {  // pad with uniform edges if chain ended
        const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
        if (std::find(faults.begin(), faults.end(), e) == faults.end()) {
          faults.push_back(e);
        }
      }
    }
    if (auto viol = cmp.check(sources, edge_faults(faults))) {
      viol->faults = faults;
      return viol;
    }
  }
  return std::nullopt;
}

}  // namespace ftbfs
