#include "core/verify.h"

#include <algorithm>

#include "graph/mask.h"
#include "spath/bfs.h"
#include "util/rng.h"

namespace ftbfs {
namespace {

// Shared machinery: compares dist(s,·) in G∖F vs H∖F for one fault set.
class Comparator {
 public:
  Comparator(const Graph& g, std::span<const EdgeId> h_edges)
      : g_(g),
        h_(subgraph_from_edges(g, h_edges)),
        g_mask_(g),
        h_mask_(h_),
        g_bfs_(g),
        h_bfs_(h_) {}

  // Returns a violation for fault set `faults` (edge ids of g), if any.
  std::optional<Violation> check(std::span<const Vertex> sources,
                                 std::span<const EdgeId> faults) {
    g_mask_.clear();
    h_mask_.clear();
    for (const EdgeId e : faults) {
      g_mask_.block_edge(e);
      const Edge& ed = g_.edge(e);
      const EdgeId he = h_.find_edge(ed.u, ed.v);
      if (he != kInvalidEdge) h_mask_.block_edge(he);
    }
    for (const Vertex s : sources) {
      const BfsResult& rg = g_bfs_.run(s, &g_mask_);
      const BfsResult& rh = h_bfs_.run(s, &h_mask_);
      for (Vertex v = 0; v < g_.num_vertices(); ++v) {
        if (rg.hops[v] != rh.hops[v]) {
          Violation viol;
          viol.source = s;
          viol.v = v;
          viol.faults.assign(faults.begin(), faults.end());
          viol.dist_g = rg.hops[v];
          viol.dist_h = rh.hops[v];
          return viol;
        }
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] const Graph& g() const { return g_; }

 private:
  const Graph& g_;
  Graph h_;
  GraphMask g_mask_;
  GraphMask h_mask_;
  Bfs g_bfs_;
  Bfs h_bfs_;
};

std::optional<Violation> enumerate_faults(Comparator& cmp,
                                          std::span<const Vertex> sources,
                                          std::vector<EdgeId>& faults,
                                          EdgeId next, unsigned remaining) {
  if (auto v = cmp.check(sources, faults)) return v;
  if (remaining == 0) return std::nullopt;
  for (EdgeId e = next; e < cmp.g().num_edges(); ++e) {
    faults.push_back(e);
    if (auto v = enumerate_faults(cmp, sources, faults, e + 1, remaining - 1)) {
      return v;
    }
    faults.pop_back();
  }
  return std::nullopt;
}

// Vertex-fault comparator: blocks the same vertex ids on both graphs (vertex
// ids are shared between g and materialized subgraphs).
class VertexComparator {
 public:
  VertexComparator(const Graph& g, std::span<const EdgeId> h_edges)
      : g_(g),
        h_(subgraph_from_edges(g, h_edges)),
        g_mask_(g),
        h_mask_(h_),
        g_bfs_(g),
        h_bfs_(h_) {}

  std::optional<Violation> check(std::span<const Vertex> sources,
                                 std::span<const Vertex> faults) {
    g_mask_.clear();
    h_mask_.clear();
    for (const Vertex u : faults) {
      g_mask_.block_vertex(u);
      h_mask_.block_vertex(u);
    }
    for (const Vertex s : sources) {
      const BfsResult& rg = g_bfs_.run(s, &g_mask_);
      const BfsResult& rh = h_bfs_.run(s, &h_mask_);
      for (Vertex v = 0; v < g_.num_vertices(); ++v) {
        if (rg.hops[v] != rh.hops[v]) {
          Violation viol;
          viol.source = s;
          viol.v = v;
          viol.faults.assign(faults.begin(), faults.end());
          viol.dist_g = rg.hops[v];
          viol.dist_h = rh.hops[v];
          return viol;
        }
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] const Graph& g() const { return g_; }

 private:
  const Graph& g_;
  Graph h_;
  GraphMask g_mask_;
  GraphMask h_mask_;
  Bfs g_bfs_;
  Bfs h_bfs_;
};

std::optional<Violation> enumerate_vertex_faults(
    VertexComparator& cmp, std::span<const Vertex> sources,
    std::vector<Vertex>& faults, Vertex next, unsigned remaining) {
  if (auto v = cmp.check(sources, faults)) return v;
  if (remaining == 0) return std::nullopt;
  for (Vertex u = next; u < cmp.g().num_vertices(); ++u) {
    faults.push_back(u);
    if (auto v = enumerate_vertex_faults(cmp, sources, faults, u + 1,
                                         remaining - 1)) {
      return v;
    }
    faults.pop_back();
  }
  return std::nullopt;
}

}  // namespace

std::optional<Violation> verify_exhaustive_vertex(
    const Graph& g, std::span<const EdgeId> h_edges,
    std::span<const Vertex> sources, unsigned f) {
  FTBFS_EXPECTS(f <= 3);
  VertexComparator cmp(g, h_edges);
  std::vector<Vertex> faults;
  return enumerate_vertex_faults(cmp, sources, faults, 0, f);
}

std::string Violation::describe(const Graph& g) const {
  std::string out = "FT-MBFS violation: source " + std::to_string(source) +
                    " -> " + std::to_string(v) + " faults {";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Edge& e = g.edge(faults[i]);
    if (i > 0) out += ", ";
    out += "(" + std::to_string(e.u) + "," + std::to_string(e.v) + ")";
  }
  out += "} dist_G=" +
         (dist_g == kInfHops ? std::string("inf") : std::to_string(dist_g)) +
         " dist_H=" +
         (dist_h == kInfHops ? std::string("inf") : std::to_string(dist_h));
  return out;
}

std::optional<Violation> verify_exhaustive(const Graph& g,
                                           std::span<const EdgeId> h_edges,
                                           std::span<const Vertex> sources,
                                           unsigned f) {
  FTBFS_EXPECTS(f <= 3);
  Comparator cmp(g, h_edges);
  std::vector<EdgeId> faults;
  return enumerate_faults(cmp, sources, faults, 0, f);
}

std::optional<Violation> verify_sampled(const Graph& g,
                                        std::span<const EdgeId> h_edges,
                                        std::span<const Vertex> sources,
                                        unsigned f, std::uint64_t samples,
                                        std::uint64_t seed) {
  FTBFS_EXPECTS(f >= 1);
  Comparator cmp(g, h_edges);
  Rng rng(derive_seed(seed, 0x7E51F1));
  Bfs bfs(g);
  GraphMask mask(g);

  // The fault-free case is always checked.
  if (auto v = cmp.check(sources, {})) return v;

  for (std::uint64_t it = 0; it < samples; ++it) {
    std::vector<EdgeId> faults;
    if (it % 2 == 0) {
      // Uniform distinct edges.
      while (faults.size() < f) {
        const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
        if (std::find(faults.begin(), faults.end(), e) == faults.end()) {
          faults.push_back(e);
        }
      }
    } else {
      // Adversarial chain: each successive fault lies on the replacement path
      // of the previous ones.
      const Vertex s =
          sources[static_cast<std::size_t>(rng.next_below(sources.size()))];
      const Vertex v = static_cast<Vertex>(rng.next_below(g.num_vertices()));
      for (unsigned step = 0; step < f; ++step) {
        mask.clear();
        block_edges(mask, faults);
        const BfsResult& r = bfs.run(s, &mask);
        if (r.hops[v] == kInfHops || r.hops[v] == 0) break;
        // Walk parent pointers; pick a uniformly random edge of the path.
        std::vector<EdgeId> path_edges;
        for (Vertex cur = v; r.parent[cur] != kInvalidVertex;
             cur = r.parent[cur]) {
          path_edges.push_back(r.parent_edge[cur]);
        }
        faults.push_back(path_edges[static_cast<std::size_t>(
            rng.next_below(path_edges.size()))]);
      }
      while (faults.size() < f) {  // pad with uniform edges if chain ended
        const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
        if (std::find(faults.begin(), faults.end(), e) == faults.end()) {
          faults.push_back(e);
        }
      }
    }
    if (auto viol = cmp.check(sources, faults)) return viol;
  }
  return std::nullopt;
}

}  // namespace ftbfs
