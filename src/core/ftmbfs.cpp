#include "core/ftmbfs.h"

#include "core/cons2ftbfs.h"
#include "core/single_ftbfs.h"

namespace ftbfs {
namespace {

template <typename BuildOne>
FtMbfsResult build_union(const Graph& g, std::span<const Vertex> sources,
                         BuildOne&& build_one) {
  FTBFS_EXPECTS(!sources.empty());
  FtMbfsResult out;
  std::vector<bool> in_h(g.num_edges(), false);
  for (const Vertex s : sources) {
    const FtStructure h = build_one(s);
    out.per_source_size.push_back(h.edges.size());
    for (const EdgeId e : h.edges) {
      if (!in_h[e]) {
        in_h[e] = true;
      }
    }
    // Aggregate stats: sums are meaningful across sources; maxima are maxed.
    out.structure.stats.new_edges += h.stats.new_edges;
    out.structure.stats.tree_edges += h.stats.tree_edges;
    out.structure.stats.fault_pairs_considered +=
        h.stats.fault_pairs_considered;
    out.structure.stats.dijkstra_runs += h.stats.dijkstra_runs;
    out.structure.stats.divergence_fallbacks += h.stats.divergence_fallbacks;
    out.structure.stats.max_new_per_vertex =
        std::max(out.structure.stats.max_new_per_vertex,
                 h.stats.max_new_per_vertex);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_h[e]) out.structure.edges.push_back(e);
  }
  return out;
}

// Folds one per-source schedule into the union's aggregate: workers is the
// largest crew any source used, the work counters sum.
void merge_report(ParallelBuildReport& agg, const ParallelBuildReport& one) {
  agg.workers = std::max(agg.workers, one.workers);
  agg.blocks += one.blocks;
  agg.speculated += one.speculated;
  agg.conflicts += one.conflicts;
}

}  // namespace

FtMbfsResult build_cons2ftmbfs(const Graph& g,
                               std::span<const Vertex> sources,
                               const FtMbfsOptions& opt) {
  Cons2Options one;
  one.weight_seed = opt.weight_seed;
  one.classify_paths = false;
  one.jobs = opt.jobs;
  one.progress = opt.progress;
  ParallelBuildReport agg;
  ParallelBuildReport inner;
  one.parallel_report = &inner;
  FtMbfsResult out = build_union(g, sources, [&](Vertex s) {
    FtStructure h = build_cons2ftbfs(g, s, one);
    merge_report(agg, inner);
    return h;
  });
  if (opt.parallel_report != nullptr) *opt.parallel_report = agg;
  return out;
}

FtMbfsResult build_single_ftmbfs(const Graph& g,
                                 std::span<const Vertex> sources,
                                 const FtMbfsOptions& opt) {
  SingleFtbfsOptions one;
  one.weight_seed = opt.weight_seed;
  one.jobs = opt.jobs;
  one.progress = opt.progress;
  ParallelBuildReport agg;
  ParallelBuildReport inner;
  one.parallel_report = &inner;
  FtMbfsResult out = build_union(g, sources, [&](Vertex s) {
    FtStructure h = build_single_ftbfs(g, s, one);
    merge_report(agg, inner);
    return h;
  });
  if (opt.parallel_report != nullptr) *opt.parallel_report = agg;
  return out;
}

}  // namespace ftbfs
