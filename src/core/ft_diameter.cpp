#include "core/ft_diameter.h"

#include <algorithm>

#include "graph/mask.h"
#include "spath/bfs.h"

namespace ftbfs {
namespace {

std::uint32_t max_dist_under(const Graph& g, Bfs& bfs, GraphMask& mask,
                             Vertex s, std::vector<EdgeId>& faults,
                             EdgeId next, unsigned remaining) {
  mask.clear();
  block_edges(mask, faults);
  const BfsResult& r = bfs.run(s, &mask);
  std::uint32_t worst = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (r.hops[v] == kInfHops) return kInfHops;
    worst = std::max(worst, r.hops[v]);
  }
  if (remaining == 0) return worst;
  for (EdgeId e = next; e < g.num_edges(); ++e) {
    faults.push_back(e);
    const std::uint32_t sub =
        max_dist_under(g, bfs, mask, s, faults, e + 1, remaining - 1);
    faults.pop_back();
    if (sub == kInfHops) return kInfHops;
    worst = std::max(worst, sub);
  }
  return worst;
}

}  // namespace

std::uint32_t ft_eccentricity(const Graph& g, Vertex s, unsigned k) {
  FTBFS_EXPECTS(s < g.num_vertices());
  Bfs bfs(g);
  GraphMask mask(g);
  std::vector<EdgeId> faults;
  return max_dist_under(g, bfs, mask, s, faults, 0, k);
}

std::uint32_t ft_diameter(const Graph& g, unsigned k) {
  std::uint32_t worst = 0;
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    const std::uint32_t ecc = ft_eccentricity(g, s, k);
    if (ecc == kInfHops) return kInfHops;
    worst = std::max(worst, ecc);
  }
  return worst;
}

}  // namespace ftbfs
