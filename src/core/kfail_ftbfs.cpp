#include "core/kfail_ftbfs.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "spath/path.h"
#include "spath/replacement.h"
#include "spath/weights.h"

namespace ftbfs {
namespace {

// Order-insensitive hash of a small sorted fault set.
struct FaultSetHash {
  std::size_t operator()(const std::vector<EdgeId>& f) const {
    std::size_t h = 0x9e3779b97f4a7c15ULL;
    for (const EdgeId e : f) {
      h ^= (h << 13);
      h += 0x100000001b3ULL * (e + 1);
    }
    return h;
  }
};

class ChainEnumerator {
 public:
  ChainEnumerator(const Graph& g, ReplacementOracle& oracle, Vertex s,
                  Vertex v, unsigned f, std::uint64_t cap,
                  std::vector<bool>& in_h, FtBfsStats& stats,
                  KFailStats& kstats)
      : g_(g),
        oracle_(oracle),
        s_(s),
        v_(v),
        f_(f),
        cap_(cap),
        in_h_(in_h),
        stats_(stats),
        kstats_(kstats) {}

  std::uint64_t run() {
    std::vector<EdgeId> empty;
    recurse(empty, 0);
    if (truncated_) ++kstats_.chain_cap_hits;
    return new_edges_;
  }

 private:
  void recurse(std::vector<EdgeId>& faults, unsigned depth) {
    if (truncated_) return;
    if (budget_used_ >= cap_) {
      truncated_ = true;
      return;
    }
    ++budget_used_;
    ++kstats_.chains_enumerated;
    ++stats_.fault_pairs_considered;

    // Deduplicate fault sets reachable through different chain orders.
    std::vector<EdgeId> key = faults;
    std::sort(key.begin(), key.end());
    if (!seen_.insert(std::move(key)).second) return;

    const auto rp = oracle_.replacement_path(s_, v_, faults);
    if (!rp) return;  // v disconnected under these faults: nothing to keep
    const EdgeId le = last_edge(g_, rp->verts);
    if (!in_h_[le]) {
      in_h_[le] = true;
      ++stats_.new_edges;
      ++new_edges_;
    }
    if (depth == f_) return;

    const std::vector<EdgeId> path_edges = edges_of(g_, rp->verts);
    for (const EdgeId e : path_edges) {
      faults.push_back(e);
      recurse(faults, depth + 1);
      faults.pop_back();
    }
  }

  const Graph& g_;
  ReplacementOracle& oracle_;
  Vertex s_;
  Vertex v_;
  unsigned f_;
  std::uint64_t cap_;
  std::vector<bool>& in_h_;
  FtBfsStats& stats_;
  KFailStats& kstats_;

  std::unordered_set<std::vector<EdgeId>, FaultSetHash> seen_;
  std::uint64_t budget_used_ = 0;
  std::uint64_t new_edges_ = 0;
  bool truncated_ = false;
};

// Vertex-fault chain enumeration: each successive fault is an *interior*
// vertex of the current replacement path (s and the target are never faulted
// — the FT property is vacuous when the target itself fails).
class VertexChainEnumerator {
 public:
  VertexChainEnumerator(const Graph& g, ReplacementOracle& oracle, Vertex s,
                        Vertex v, unsigned f, std::uint64_t cap,
                        std::vector<bool>& in_h, FtBfsStats& stats,
                        KFailStats& kstats)
      : g_(g),
        oracle_(oracle),
        s_(s),
        v_(v),
        f_(f),
        cap_(cap),
        in_h_(in_h),
        stats_(stats),
        kstats_(kstats) {}

  std::uint64_t run() {
    std::vector<Vertex> empty;
    recurse(empty, 0);
    if (truncated_) ++kstats_.chain_cap_hits;
    return new_edges_;
  }

 private:
  void recurse(std::vector<Vertex>& faults, unsigned depth) {
    if (truncated_) return;
    if (budget_used_ >= cap_) {
      truncated_ = true;
      return;
    }
    ++budget_used_;
    ++kstats_.chains_enumerated;
    ++stats_.fault_pairs_considered;

    std::vector<Vertex> key = faults;
    std::sort(key.begin(), key.end());
    if (!seen_.insert(std::move(key)).second) return;

    GraphMask& mask = oracle_.mask();
    mask.clear();
    for (const Vertex u : faults) mask.block_vertex(u);
    const auto rp = oracle_.query(s_, v_);
    if (!rp) return;
    const EdgeId le = last_edge(g_, rp->verts);
    if (!in_h_[le]) {
      in_h_[le] = true;
      ++stats_.new_edges;
      ++new_edges_;
    }
    if (depth == f_) return;

    const Path path = rp->verts;
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      faults.push_back(path[i]);
      recurse(faults, depth + 1);
      faults.pop_back();
    }
  }

  const Graph& g_;
  ReplacementOracle& oracle_;
  Vertex s_;
  Vertex v_;
  unsigned f_;
  std::uint64_t cap_;
  std::vector<bool>& in_h_;
  FtBfsStats& stats_;
  KFailStats& kstats_;

  std::unordered_set<std::vector<Vertex>, FaultSetHash> seen_;
  std::uint64_t budget_used_ = 0;
  std::uint64_t new_edges_ = 0;
  bool truncated_ = false;
};

template <typename Enumerator>
KFailResult build_kfail_generic(const Graph& g, Vertex s, unsigned f,
                                const KFailOptions& opt) {
  FTBFS_EXPECTS(s < g.num_vertices());
  const WeightAssignment w(g, opt.weight_seed);
  ReplacementOracle oracle(g, w);

  KFailResult out;
  std::vector<bool> in_h(g.num_edges(), false);

  oracle.mask().clear();
  const SpResult tree = oracle.query_sssp(s);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v != s && tree.reached(v) && !in_h[tree.parent_edge[v]]) {
      in_h[tree.parent_edge[v]] = true;
      ++out.structure.stats.tree_edges;
    }
  }

  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v == s || !tree.reached(v)) continue;
    Enumerator chain(g, oracle, s, v, f, opt.max_chains_per_vertex, in_h,
                     out.structure.stats, out.kstats);
    const std::uint64_t new_here = chain.run();
    out.structure.stats.max_new_per_vertex =
        std::max(out.structure.stats.max_new_per_vertex, new_here);
  }

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_h[e]) out.structure.edges.push_back(e);
  }
  out.structure.stats.dijkstra_runs = oracle.queries_issued();
  return out;
}

}  // namespace

KFailResult build_kfail_ftbfs_vertex(const Graph& g, Vertex s, unsigned f,
                                     const KFailOptions& opt) {
  return build_kfail_generic<VertexChainEnumerator>(g, s, f, opt);
}

KFailResult build_kfail_ftbfs(const Graph& g, Vertex s, unsigned f,
                              const KFailOptions& opt) {
  return build_kfail_generic<ChainEnumerator>(g, s, f, opt);
}

}  // namespace ftbfs
