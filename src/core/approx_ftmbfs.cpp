#include "core/approx_ftmbfs.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "graph/mask.h"
#include "spath/bfs.h"

namespace ftbfs {
namespace {

// Minimal dynamic bitset used for the per-neighbor cover sets.
class BitVec {
 public:
  explicit BitVec(std::size_t bits) : words_((bits + 63) / 64, 0) {}

  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }

  void or_with(const BitVec& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }

  void and_not(const BitVec& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
    }
  }

  [[nodiscard]] std::uint64_t count_and(const BitVec& other) const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      total += static_cast<std::uint64_t>(
          __builtin_popcountll(words_[i] & other.words_[i]));
    }
    return total;
  }

  [[nodiscard]] bool any() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

 private:
  std::vector<std::uint64_t> words_;
};

using Dist16 = std::uint16_t;
inline constexpr Dist16 kInf16 = 0xFFFF;

}  // namespace

ApproxResult build_approx_ftmbfs(const Graph& g,
                                 std::span<const Vertex> sources, unsigned f,
                                 const ApproxOptions& opt) {
  FTBFS_EXPECTS(!sources.empty());
  for (const Vertex s : sources) FTBFS_EXPECTS(s < g.num_vertices());
  const Vertex n = g.num_vertices();
  const EdgeId m = g.num_edges();

  // Enumerate the fault sets UF = { F ⊆ E : |F| <= f } (∅ included).
  std::vector<std::vector<EdgeId>> fault_sets;
  fault_sets.push_back({});
  if (f >= 1) {
    for (EdgeId e = 0; e < m; ++e) fault_sets.push_back({e});
  }
  if (f >= 2) {
    for (EdgeId e1 = 0; e1 < m; ++e1) {
      for (EdgeId e2 = e1 + 1; e2 < m; ++e2) fault_sets.push_back({e1, e2});
    }
  }
  FTBFS_EXPECTS(f <= 2);  // higher f: fault-set enumeration would explode

  const std::uint64_t universe =
      static_cast<std::uint64_t>(sources.size()) * fault_sets.size();
  FTBFS_EXPECTS(universe <= opt.max_universe);

  ApproxResult out;
  out.astats.universe_size = universe;

  // Distance tables: dist[k * |UF| + fi][v] = dist(s_k, v, G∖F). 16-bit with
  // saturation (paths in simple graphs are < 2^16 long for our sizes).
  std::vector<Dist16> dist(universe * n, kInf16);
  {
    Bfs bfs(g);
    GraphMask mask(g);
    std::size_t row = 0;
    for (const Vertex s : sources) {
      for (const auto& faults : fault_sets) {
        mask.clear();
        block_edges(mask, faults);
        const BfsResult& r = bfs.run(s, &mask);
        ++out.astats.bfs_runs;
        Dist16* out_row = &dist[row * n];
        for (Vertex v = 0; v < n; ++v) {
          out_row[v] = r.hops[v] == kInfHops
                           ? kInf16
                           : static_cast<Dist16>(std::min<std::uint32_t>(
                                 r.hops[v], kInf16 - 1));
        }
        ++row;
      }
    }
  }

  // Per-vertex greedy set cover over the incident edges.
  std::vector<bool> in_h(m, false);
  for (Vertex vi = 0; vi < n; ++vi) {
    const auto nbrs = g.neighbors(vi);
    if (nbrs.empty()) continue;
    std::vector<BitVec> cover_sets(nbrs.size(), BitVec(universe));
    BitVec remaining(universe);
    for (std::size_t row = 0; row < universe; ++row) {
      const Dist16* d = &dist[row * n];
      if (d[vi] == kInf16 || d[vi] == 0) continue;  // unreachable or source
      const auto& faults = fault_sets[row % fault_sets.size()];
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        // u_j covers ⟨s_k, F⟩ iff a shortest path may enter v_i through the
        // *edge* (u_j, v_i): the edge must survive F and u_j must sit one hop
        // above v_i in G∖F (Eq. 16).
        if (std::find(faults.begin(), faults.end(), nbrs[j].id) !=
            faults.end()) {
          continue;
        }
        if (d[nbrs[j].to] != kInf16 && d[nbrs[j].to] + 1 == d[vi]) {
          cover_sets[j].set(row);
          remaining.set(row);
        }
      }
    }
    while (remaining.any()) {
      std::size_t best = 0;
      std::uint64_t best_gain = 0;
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        const std::uint64_t gain = cover_sets[j].count_and(remaining);
        if (gain > best_gain) {
          best_gain = gain;
          best = j;
        }
      }
      // Every remaining element has a BFS parent among the neighbors, so the
      // greedy step always makes progress.
      FTBFS_ENSURES(best_gain > 0);
      remaining.and_not(cover_sets[best]);
      ++out.astats.greedy_picks;
      if (!in_h[nbrs[best].id]) {
        in_h[nbrs[best].id] = true;
        ++out.structure.stats.new_edges;
      }
    }
  }

  for (EdgeId e = 0; e < m; ++e) {
    if (in_h[e]) out.structure.edges.push_back(e);
  }
  return out;
}

}  // namespace ftbfs
