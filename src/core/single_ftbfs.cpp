#include "core/single_ftbfs.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/selector.h"
#include "spath/dijkstra.h"
#include "spath/path.h"
#include "spath/weights.h"
#include "util/concurrency.h"

namespace ftbfs {
namespace {

// Everything one target contributes, recorded against a frozen H. The
// candidate last edges of single-fault replacement paths are independent of
// H (select_single_fault never reads it), so the membership decisions — which
// candidates are *new* — can be replayed at commit time in target order with
// no conflicts ever: parallel output is the sequential output by replay.
struct SingleOutcome {
  std::vector<EdgeId> candidates;  // selected last edges, in π-position order
  std::uint64_t fault_pairs = 0;
  std::uint64_t dijkstra = 0;
};

struct SingleWorkspace {
  PathSelector sel;
  VertexIndexMap pi_pos;
  SingleWorkspace(const Graph& g, const WeightAssignment& w)
      : sel(g, w), pi_pos(g.num_vertices()) {}
};

SingleOutcome run_target(const Graph& g, const SpResult& tree,
                         PathSelector& sel, VertexIndexMap& pi_pos, Vertex v) {
  SingleOutcome out;
  const std::uint64_t d0 = sel.dijkstra_runs();
  const Path pi = extract_path(tree, v);
  pi_pos.bind(pi);
  for (std::size_t i = 0; i + 1 < pi.size(); ++i) {
    ++out.fault_pairs;
    const auto selection = select_single_fault(sel, pi, pi_pos, i);
    if (!selection) continue;  // e_i disconnects v: nothing to preserve
    out.candidates.push_back(last_edge(g, selection->path));
  }
  out.dijkstra = sel.dijkstra_runs() - d0;
  return out;
}

}  // namespace

FtStructure build_single_ftbfs(const Graph& g, Vertex s,
                               const SingleFtbfsOptions& opt) {
  FTBFS_EXPECTS(s < g.num_vertices());
  const WeightAssignment w(g, opt.weight_seed);
  PathSelector sel(g, w);

  // T0(s): the W-unique shortest-path tree.
  sel.mask().clear();
  const SpResult tree = sel.w_sssp(s);  // copy: later runs reuse the buffers

  FtStructure h;
  std::vector<bool> in_h(g.num_edges(), false);
  std::vector<Vertex> targets;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v != s && tree.reached(v)) {
      targets.push_back(v);
      if (!in_h[tree.parent_edge[v]]) {
        in_h[tree.parent_edge[v]] = true;
        ++h.stats.tree_edges;
      }
    }
  }
  h.stats.dijkstra_runs = sel.dijkstra_runs();  // the tree W-SSSP

  auto commit_outcome = [&](SingleOutcome&& out) {
    std::uint64_t new_here = 0;
    for (const EdgeId le : out.candidates) {
      if (!in_h[le]) {
        in_h[le] = true;
        ++h.stats.new_edges;
        ++h.stats.classes.single;
        ++new_here;
      }
    }
    h.stats.max_new_per_vertex = std::max(h.stats.max_new_per_vertex, new_here);
    h.stats.fault_pairs_considered += out.fault_pairs;
    h.stats.dijkstra_runs += out.dijkstra;
  };
  auto bump_progress = [&] {
    if (opt.progress != nullptr) {
      opt.progress->fetch_add(1, std::memory_order_relaxed);
    }
  };

  const unsigned workers = resolve_jobs(opt.jobs, targets.size());
  ParallelBuildReport report;
  if (workers <= 1) {
    VertexIndexMap pi_pos(g.num_vertices());
    for (const Vertex v : targets) {
      commit_outcome(run_target(g, tree, sel, pi_pos, v));
      bump_progress();
    }
  } else {
    std::vector<std::unique_ptr<SingleWorkspace>> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
      pool.push_back(std::make_unique<SingleWorkspace>(g, w));
    }
    std::vector<SingleOutcome> slots(speculative_block_size(workers));
    run_speculate_commit(
        targets.size(), workers, /*on_block_start=*/[] {},
        [&](unsigned worker, std::size_t idx, std::size_t slot) {
          SingleWorkspace& ws = *pool[worker];
          slots[slot] = run_target(g, tree, ws.sel, ws.pi_pos, targets[idx]);
          // Progress counts finished per-target work, not commits: a block's
          // commits land together, which would quantize a sampled rate into
          // block-sized steps (the bench_e13 windowed sweep reads this
          // counter from outside the process).
          bump_progress();
        },
        [&](std::size_t, std::size_t slot) {
          commit_outcome(std::move(slots[slot]));
        },
        &report);
  }
  report.workers = workers;
  if (opt.parallel_report != nullptr) *opt.parallel_report = report;

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_h[e]) h.edges.push_back(e);
  }
  return h;
}

}  // namespace ftbfs
