#include "core/single_ftbfs.h"

#include <algorithm>

#include "core/selector.h"
#include "spath/dijkstra.h"
#include "spath/path.h"
#include "spath/weights.h"

namespace ftbfs {

FtStructure build_single_ftbfs(const Graph& g, Vertex s,
                               const SingleFtbfsOptions& opt) {
  FTBFS_EXPECTS(s < g.num_vertices());
  const WeightAssignment w(g, opt.weight_seed);
  PathSelector sel(g, w);

  // T0(s): the W-unique shortest-path tree.
  sel.mask().clear();
  const SpResult tree = sel.w_sssp(s);  // copy: later runs reuse the buffers

  FtStructure h;
  std::vector<bool> in_h(g.num_edges(), false);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v != s && tree.reached(v)) {
      if (!in_h[tree.parent_edge[v]]) {
        in_h[tree.parent_edge[v]] = true;
        ++h.stats.tree_edges;
      }
    }
  }

  VertexIndexMap pi_pos(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v == s || !tree.reached(v)) continue;
    const Path pi = extract_path(tree, v);
    pi_pos.bind(pi);
    std::uint64_t new_here = 0;
    for (std::size_t i = 0; i + 1 < pi.size(); ++i) {
      ++h.stats.fault_pairs_considered;
      const auto selection = select_single_fault(sel, pi, pi_pos, i);
      if (!selection) continue;  // e_i disconnects v: nothing to preserve
      const EdgeId le = last_edge(g, selection->path);
      if (!in_h[le]) {
        in_h[le] = true;
        ++h.stats.new_edges;
        ++h.stats.classes.single;
        ++new_here;
      }
    }
    h.stats.max_new_per_vertex = std::max(h.stats.max_new_per_vertex, new_here);
  }

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_h[e]) h.edges.push_back(e);
  }
  h.stats.dijkstra_runs = sel.dijkstra_runs();
  return h;
}

}  // namespace ftbfs
