// O(log n)-approximation for the Minimum f-failure FT-MBFS problem (§5,
// Theorem 1.3).
//
// For every vertex v_i the incident edges to keep are chosen by greedy set
// cover: the universe U is the set of pairs ⟨s_k, F⟩ (source, fault set with
// |F| <= f, including F = ∅), and the set S_{i,j} of neighbor u_j covers
// ⟨s_k, F⟩ iff dist(s_k, u_j, G∖F) = dist(s_k, v_i, G∖F) − 1 (Eq. 16) — i.e.
// some shortest s_k→v_i path in G∖F enters v_i through u_j. Greedy cover is
// the classical (1 + ln N)-approximation, and per Lemma 5.3 the union of the
// covers is an O(log n) approximation of the optimal structure.
//
// Complexity is dominated by one BFS per (source, fault set): O(σ·m^f) BFS
// runs. Practical for f ∈ {1, 2} on graphs of a few hundred edges — the regime
// where the approximation question is interesting (the paper motivates it for
// instances whose optimum is far below the worst-case Θ(n^{2-1/(f+1)})).
#pragma once

#include <cstdint>
#include <span>

#include "core/ftbfs_common.h"
#include "graph/graph.h"

namespace ftbfs {

struct ApproxOptions {
  // Safety valve on universe size (σ · #fault-sets); construction is a
  // precondition violation beyond it.
  std::uint64_t max_universe = 1u << 24;
};

struct ApproxStats {
  std::uint64_t universe_size = 0;  // σ · |UF|
  std::uint64_t bfs_runs = 0;
  std::uint64_t greedy_picks = 0;  // total sets picked over all vertices
};

struct ApproxResult {
  FtStructure structure;
  ApproxStats astats;
};

// Builds an f-failure FT-MBFS structure for the given sources whose size is
// within O(log n) of optimal. f >= 0.
[[nodiscard]] ApproxResult build_approx_ftmbfs(const Graph& g,
                                               std::span<const Vertex> sources,
                                               unsigned f,
                                               const ApproxOptions& opt = {});

}  // namespace ftbfs
