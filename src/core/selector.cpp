#include "core/selector.h"

namespace ftbfs {

void block_pi_segment(GraphMask& mask, const Path& pi, std::size_t k,
                      std::size_t l) {
  FTBFS_EXPECTS(k <= l && l < pi.size());
  for (std::size_t idx = k + 1; idx <= l; ++idx) {
    mask.block_vertex(pi[idx]);
  }
}

std::optional<SingleFaultSelection> select_single_fault(
    PathSelector& sel, const Path& pi, const VertexIndexMap& pi_pos,
    std::size_t i) {
  FTBFS_EXPECTS(pi.size() >= 2);
  FTBFS_EXPECTS(i + 1 < pi.size());
  const Vertex s = pi.front();
  const Vertex v = pi.back();
  const Graph& g = sel.graph();
  const EdgeId e_i = g.find_edge(pi[i], pi[i + 1]);
  FTBFS_EXPECTS(e_i != kInvalidEdge);

  // Target distance: dist(s, v, G ∖ {e_i}) — memoized per edge, since every
  // target below e_i in the BFS tree asks for the same table.
  const std::uint32_t target = sel.single_fault_distance(s, v, e_i);
  if (target == kInfHops) return std::nullopt;
  GraphMask& mask = sel.mask();

  // Binary search for the minimal k with
  //   dist(s, v, G(u_k, u_i) ∖ {e_i}) == dist(s, v, G ∖ {e_i});
  // feasible at k == i because G(u_i, u_i) = G, and hop-distance is monotone
  // non-increasing in k because G(u_k,·) ⊆ G(u_{k+1},·).
  auto feasible = [&](std::size_t k) {
    mask.clear();
    mask.block_edge(e_i);
    block_pi_segment(mask, pi, k, i);
    return sel.hop_distance(s, v) == target;
  };
  std::size_t lo = 0, hi = i;  // invariant: feasible(hi)
  if (!feasible(0)) {
    while (lo + 1 < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      (feasible(mid) ? hi : lo) = mid;
    }
  } else {
    hi = 0;
  }
  const std::size_t k0 = hi;

  // The selected path: the W-unique shortest path in G(u_k0, u_i) ∖ {e_i}.
  mask.clear();
  mask.block_edge(e_i);
  block_pi_segment(mask, pi, k0, i);
  const std::optional<RPath> rp = sel.w_path(s, v);
  FTBFS_ENSURES(rp.has_value() && rp->key.hops == target);

  SingleFaultSelection out;
  out.path = rp->verts;

  // Decompose per Claim 3.4: prefix on π up to x, detour, suffix on π from y.
  const std::size_t x_path_idx = first_divergence(out.path, pi);
  std::size_t y_path_idx = x_path_idx + 1;
  while (y_path_idx < out.path.size() && !pi_pos.on_path(out.path[y_path_idx])) {
    ++y_path_idx;
  }
  FTBFS_ENSURES(y_path_idx < out.path.size());  // path ends at v ∈ π
  out.x = out.path[x_path_idx];
  out.y = out.path[y_path_idx];
  out.x_pi_index = pi_pos.pos(out.x);
  out.y_pi_index = pi_pos.pos(out.y);
  out.detour = subpath(out.path, x_path_idx, y_path_idx);

  // Claim 3.4(1): after y the path follows π(y, v); under W-uniqueness this
  // is an invariant of the construction.
  FTBFS_ENSURES(out.y_pi_index >= out.x_pi_index);
  for (std::size_t j = y_path_idx; j < out.path.size(); ++j) {
    FTBFS_ENSURES(out.y_pi_index + (j - y_path_idx) < pi.size());
    FTBFS_ENSURES(out.path[j] == pi[out.y_pi_index + (j - y_path_idx)]);
  }
  FTBFS_ENSURES(out.path.back() == v);
  return out;
}

}  // namespace ftbfs
