#include "core/build_parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "util/assert.h"

namespace ftbfs {

std::size_t speculative_block_size(unsigned workers) {
  // Large enough to amortize the per-block crew spawn and keep every worker
  // fed, small enough to keep the conflict tax (~ additions * block / m) and
  // the in-flight outcome memory bounded.
  return std::min<std::size_t>(
      1024, std::max<std::size_t>(64, std::size_t{workers} * 32));
}

void run_speculate_commit(
    std::size_t count, unsigned workers,
    const std::function<void()>& on_block_start,
    const std::function<void(unsigned worker, std::size_t idx,
                             std::size_t slot)>& speculate,
    const std::function<void(std::size_t idx, std::size_t slot)>& commit,
    ParallelBuildReport* report) {
  FTBFS_EXPECTS(workers >= 2);
  const std::size_t block = speculative_block_size(workers);
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> crew;
  crew.reserve(workers - 1);
  for (std::size_t b0 = 0; b0 < count; b0 += block) {
    const std::size_t b1 = std::min(count, b0 + block);
    on_block_start();
    cursor.store(b0, std::memory_order_relaxed);
    auto work = [&, b0, b1](unsigned worker) {
      for (;;) {
        const std::size_t idx = cursor.fetch_add(1, std::memory_order_relaxed);
        if (idx >= b1) break;
        speculate(worker, idx, idx - b0);
      }
    };
    crew.clear();
    for (unsigned t = 1; t < workers; ++t) crew.emplace_back(work, t);
    work(0);
    for (std::thread& th : crew) th.join();
    for (std::size_t idx = b0; idx < b1; ++idx) commit(idx, idx - b0);
    if (report != nullptr) {
      ++report->blocks;
      report->speculated += b1 - b0;
    }
  }
  if (report != nullptr) report->workers = workers;
}

}  // namespace ftbfs
