// Deterministic speculate-and-commit executor for parallel construction.
//
// The per-target work of the FT-BFS constructions is almost independent: the
// only cross-target coupling is through the shared kept-edge set H, and every
// read or write a target v performs on H touches only edges *incident to v*
// (the candidate last edges of replacement paths ending at v, and v's
// incident-edge whitelist E_τ(v)). That locality makes the following schedule
// produce output bit-identical to the sequential target loop at any worker
// count (the determinism invariant the property tests enforce):
//
//   for each block of targets, in order:
//     1. speculate — workers run the per-target body in parallel against the
//        committed state frozen at block start (thread-local scratch, no
//        writes to shared state; work is claimed from an atomic cursor since
//        per-target cost varies by orders of magnitude);
//     2. commit — the main thread replays the recorded outcomes strictly in
//        target order. A target is *conflicted* iff an earlier commit in the
//        same block added an edge incident to it; conflicted targets discard
//        the speculative outcome and re-run against the true state, which is
//        exactly the sequential semantics. Non-conflicted speculative runs
//        saw a state identical (on every edge they can observe) to the
//        sequential state, so their outcomes are already exact.
//
// Conflicts are rare — additions per block are few and each hits a later
// in-block target with probability ~ block/m — so the re-run tax is a few
// percent while the expensive speculation scales with cores. Blocks are a
// barrier: speculation never overlaps a commit, so the committed state needs
// no synchronization at all. docs/perf.md § "Parallel construction" has the
// full argument and measured speedups.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace ftbfs {

// Filled by the parallel constructions; surfaced as registry counters so the
// CLI and benches can report the schedule (workers, conflict tax).
struct ParallelBuildReport {
  unsigned workers = 1;          // effective worker count after clamping
  std::uint64_t blocks = 0;      // speculation blocks executed
  std::uint64_t speculated = 0;  // targets run in a speculation phase
  std::uint64_t conflicts = 0;   // speculative outcomes discarded and re-run
};

// Targets speculated per block before the ordered commit barrier. Callers
// size their outcome slot arrays with this; `slot` arguments below are always
// < speculative_block_size(workers).
[[nodiscard]] std::size_t speculative_block_size(unsigned workers);

// Runs the schedule above over `count` targets with `workers` >= 2 threads
// (callers keep the plain sequential loop for workers <= 1).
//   on_block_start()            — before each block's speculation phase (the
//                                 constructions bump their conflict epoch);
//   speculate(worker, idx, slot) — thread `worker` runs target `idx` against
//                                 the frozen state, recording into `slot`;
//   commit(idx, slot)           — main thread, ascending idx; detects
//                                 conflicts, re-runs if needed, applies.
// Fills report->{workers, blocks, speculated}; the caller owns `conflicts`.
void run_speculate_commit(
    std::size_t count, unsigned workers,
    const std::function<void()>& on_block_start,
    const std::function<void(unsigned worker, std::size_t idx,
                             std::size_t slot)>& speculate,
    const std::function<void(std::size_t idx, std::size_t slot)>& commit,
    ParallelBuildReport* report);

}  // namespace ftbfs
