// Single-failure FT-BFS structure of Parter & Peleg (ESA'13) — reference [10]
// of the paper and the baseline the dual-failure result is measured against.
//
// Construction: the BFS tree T0(s) plus, for every vertex v and every edge e_i
// on π(s,v), the last edge of the replacement path P_{s,v,{e_i}} chosen with
// the earliest possible divergence point from π(s,v) (the same preference rule
// step (1) of Cons2FTBFS uses). Size: O(n^{3/2}), tight in the worst case.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/build_parallel.h"
#include "core/ftbfs_common.h"
#include "graph/graph.h"

namespace ftbfs {

struct SingleFtbfsOptions {
  std::uint64_t weight_seed = 1;  // seed for the tie-breaking assignment W
  // Worker threads for the per-target loop; 0 = auto (hardware), 1 =
  // sequential. The built structure and all stats are byte-identical at any
  // value: candidate last edges never depend on H, so the ordered commit
  // replays the sequential membership decisions exactly (build_parallel.h).
  unsigned jobs = 1;
  // Optional: incremented once per target vertex as its construction work
  // finishes (speculation in the parallel schedule, commit sequentially).
  // Lets long builds report throughput without block-commit quantization
  // (the bench_e13 n=10^5 jobs sweep samples it from a forked child).
  std::atomic<std::uint64_t>* progress = nullptr;
  // Optional: filled with the parallel schedule actually used.
  ParallelBuildReport* parallel_report = nullptr;
};

// Builds a single-edge-failure FT-BFS structure rooted at s.
// Requires s < g.num_vertices(). Unreachable vertices are simply not covered
// (they have no BFS path to preserve).
[[nodiscard]] FtStructure build_single_ftbfs(const Graph& g, Vertex s,
                                             const SingleFtbfsOptions& opt = {});

}  // namespace ftbfs
