// A fault-sensitivity distance oracle backed by an FT-BFS structure.
//
// The paper's object is the sparse structure H; this wrapper provides the
// query interface applications actually want (cf. the f-sensitivity oracles
// of [5,2,7] discussed in §1): given up to f failed edges, report exact
// distances and shortest paths from the source. Queries run a BFS *inside H*,
// so the cost is O(|E(H)|) per fault set — on sparse structures a large
// constant-factor win over querying G, with answers guaranteed identical by
// the FT-BFS property. (The O(log n)-query oracles of Duan–Pettie use heavier
// machinery; the structure here is the size-optimal substrate they would be
// built over.)
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/ftbfs_common.h"
#include "graph/graph.h"
#include "graph/mask.h"
#include "spath/bfs.h"
#include "spath/path.h"

namespace ftbfs {

class FtBfsOracle {
 public:
  // Wraps a prebuilt structure. `h` must be a valid f-failure FT-BFS for
  // (g, source) — build it with build_cons2ftbfs / build_single_ftbfs, or use
  // the factory below.
  FtBfsOracle(const Graph& g, Vertex source, unsigned f, FtStructure h);

  // Builds the appropriate structure for f ∈ {0, 1, 2} and wraps it.
  [[nodiscard]] static FtBfsOracle build(const Graph& g, Vertex source,
                                         unsigned f,
                                         std::uint64_t weight_seed = 1);

  // Exact distance source→v in G ∖ faults (kInfHops if disconnected).
  // Precondition: |faults| <= f. Fault ids refer to edges of g; edges absent
  // from H are ignored (they cannot affect distances inside H).
  [[nodiscard]] std::uint32_t distance(Vertex v,
                                       std::span<const EdgeId> faults);

  // A shortest source→v path avoiding the faults, with vertices of g, or
  // nullopt if disconnected.
  [[nodiscard]] std::optional<Path> shortest_path(
      Vertex v, std::span<const EdgeId> faults);

  // Distances to every vertex under one fault set (one BFS; borrowed until
  // the next query).
  [[nodiscard]] const std::vector<std::uint32_t>& all_distances(
      std::span<const EdgeId> faults);

  [[nodiscard]] Vertex source() const { return source_; }
  [[nodiscard]] unsigned max_faults() const { return f_; }
  [[nodiscard]] std::uint64_t structure_size() const {
    return structure_.size();
  }
  [[nodiscard]] const FtStructure& structure() const { return structure_; }
  [[nodiscard]] std::uint64_t queries_answered() const { return queries_; }

 private:
  void apply_faults(std::span<const EdgeId> faults);

  const Graph* g_;
  Vertex source_;
  unsigned f_;
  FtStructure structure_;
  Graph h_;                         // materialized structure
  std::vector<EdgeId> g_to_h_;      // edge id translation (kInvalidEdge = absent)
  GraphMask mask_;                  // over h_
  Bfs bfs_;                         // over h_
  std::uint64_t queries_ = 0;
};

}  // namespace ftbfs
