// A fault-sensitivity distance oracle backed by an FT-BFS structure.
//
// The paper's object is the sparse structure H; this wrapper provides the
// query interface applications actually want (cf. the f-sensitivity oracles
// of [5,2,7] discussed in §1): given up to f failed edges, report exact
// distances and shortest paths from the source. Queries run a BFS *inside H*,
// so the cost is O(|E(H)|) per fault set — on sparse structures a large
// constant-factor win over querying G, with answers guaranteed identical by
// the FT-BFS property.
//
// Since the service layer landed this class is a thin *pinned-source view
// over an OracleService*: it owns a single-entry service (no lazy builds),
// pins every request to its structure, and keeps the classic numeric API.
// Its scenario cache means repeated fault sets served via all_distances()
// cost a table lookup, not a BFS. Callers who want refusals-as-answers
// instead of budget preconditions should use OracleService directly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/ftbfs_common.h"
#include "service/oracle_service.h"
#include "graph/graph.h"
#include "spath/path.h"

namespace ftbfs {

class FtBfsOracle {
 public:
  // Wraps a prebuilt structure. `h` must be a valid f-failure FT-BFS for
  // (g, source) — build it via the BuilderRegistry, or use the factory below.
  FtBfsOracle(const Graph& g, Vertex source, unsigned f, FtStructure h);

  // Builds the registry's default structure for the budget f and wraps it
  // (f <= 2: BFS tree / single_ftbfs / cons2ftbfs).
  [[nodiscard]] static FtBfsOracle build(const Graph& g, Vertex source,
                                         unsigned f,
                                         std::uint64_t weight_seed = 1);

  // Exact distance source→v in G ∖ faults (kInfHops if disconnected).
  // Precondition: at most f *distinct* fault ids (duplicates count once).
  // Fault ids refer to edges of g; edges absent from H are ignored (they
  // cannot affect distances inside H).
  [[nodiscard]] std::uint32_t distance(Vertex v,
                                       std::span<const EdgeId> faults);

  // A shortest source→v path avoiding the faults, with vertices of g, or
  // nullopt if disconnected.
  [[nodiscard]] std::optional<Path> shortest_path(
      Vertex v, std::span<const EdgeId> faults);

  // Distances to every vertex under one fault set (borrowed until the next
  // all_distances call). Served through the scenario cache: repeating a
  // fault set costs a lookup, not a BFS.
  [[nodiscard]] const std::vector<std::uint32_t>& all_distances(
      std::span<const EdgeId> faults);

  [[nodiscard]] Vertex source() const { return source_; }
  [[nodiscard]] unsigned max_faults() const { return f_; }
  [[nodiscard]] std::uint64_t structure_size() const {
    return structure_.size();
  }
  [[nodiscard]] const FtStructure& structure() const { return structure_; }
  [[nodiscard]] std::uint64_t queries_answered() const { return queries_; }

  // Batched access (FaultQueryEngine::batch on the pinned entry's engine,
  // bypassing the scenario cache) with the oracle's fault-budget contract
  // enforced on every fault set: result[i * targets.size() + j] is the
  // distance source→targets[j] under fault_sets[i]. Fault sets must be edge
  // faults (the structure's guarantee does not cover vertex failures).
  [[nodiscard]] std::vector<std::uint32_t> batch(
      std::span<const FaultSpec> fault_sets, std::span<const Vertex> targets,
      unsigned threads = 1);

  // The underlying service, for callers migrating to the typed API. The
  // pinned entry is named "ftbfs_oracle".
  [[nodiscard]] OracleService& service() { return service_; }

 private:
  // Pinned request skeleton with the oracle's fault set filled in.
  [[nodiscard]] QueryRequest make_request(QueryKind kind,
                                          std::span<const EdgeId> faults) const;

  Vertex source_;
  unsigned f_;
  FtStructure structure_;
  OracleService service_;
  std::size_t entry_;
  CanonicalFaultSet canon_;  // budget-check scratch (distinct-id counting)
  std::vector<std::uint32_t> all_dist_buf_;
  std::uint64_t queries_ = 0;
};

}  // namespace ftbfs
