// Shared result types for the fault-tolerant structure constructions.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ftbfs {

// Which kind of component a fault set removes. The paper's constructions are
// stated for edge faults; the kfail chain construction also supports the
// vertex-fault FT-MBFS definition of [10].
enum class FaultModel { kEdge, kVertex };

[[nodiscard]] constexpr const char* to_string(FaultModel m) {
  return m == FaultModel::kEdge ? "edge" : "vertex";
}

// Per-class counts of the new-ending replacement paths, following the paper's
// classification (Fig. 7):
//   A  — (π,π) paths (two faults on π(s,v)),
//   B  — (π,D) paths that do not intersect their detour (P_nodet),
//   C  — independent (π,D) paths (P_indep),
//   D  — π-interfering paths (I_π),
//   E  — D-interfering paths (I_D).
// `single` counts new last edges from single-fault replacement paths (E1(π)).
struct PathClassCounts {
  std::uint64_t single = 0;
  std::uint64_t a_pi_pi = 0;
  std::uint64_t b_nodet = 0;
  std::uint64_t c_indep = 0;
  std::uint64_t d_pi_interf = 0;
  std::uint64_t e_d_interf = 0;

  [[nodiscard]] std::uint64_t total() const {
    return single + a_pi_pi + b_nodet + c_indep + d_pi_interf + e_d_interf;
  }
};

struct FtBfsStats {
  std::uint64_t tree_edges = 0;        // |E(T0)|
  std::uint64_t new_edges = 0;         // |E(H)| - |E(T0)|
  std::uint64_t max_new_per_vertex = 0;  // max_v |New(v)|
  std::uint64_t fault_pairs_considered = 0;
  std::uint64_t dijkstra_runs = 0;
  std::uint64_t divergence_fallbacks = 0;  // defensive-path fallbacks (expect 0)
  PathClassCounts classes;             // filled when instrumentation is on
  // Per-vertex maxima of each class (the quantities the per-class O(√n) and
  // O(n^{2/3}) lemmas bound); filled when instrumentation is on.
  PathClassCounts max_classes_per_vertex;
};

// A fault-tolerant BFS structure: a set of edge ids of the host graph.
struct FtStructure {
  std::vector<EdgeId> edges;  // sorted, unique
  FtBfsStats stats;

  [[nodiscard]] std::uint64_t size() const { return edges.size(); }
};

// Materializes the structure as a standalone Graph (same vertex set).
[[nodiscard]] inline Graph materialize(const Graph& g, const FtStructure& h) {
  return subgraph_from_edges(g, h.edges);
}

}  // namespace ftbfs
