// Replacement-path *selection* building blocks shared by the construction
// algorithms (single-failure FT-BFS and Cons2FTBFS).
//
// The paper's algorithms do not take an arbitrary shortest path in G∖F: they
// take the W-unique shortest path in a carefully restricted graph that forces
// the divergence point from π(s,v) (and, in step 3, from the detour) to be as
// close to s as possible. The restricted graphs are G(u_k, u_l) of Eq. (3) and
// G_D(w_l) of Eq. (4); the minimal feasible divergence index is found by
// binary search, which is sound because the restricted graphs are nested
// (G(u_k,·) ⊆ G(u_{k+1},·)), making hop-distance monotone in the index.
//
// Distance *tests* use plain BFS (hop counts are what the FT-BFS property is
// about); only the finally selected path is computed with the tie-broken
// Dijkstra so that it is the W-unique representative the analysis reasons
// about.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.h"
#include "graph/mask.h"
#include "spath/bfs.h"
#include "spath/dijkstra.h"
#include "spath/path.h"
#include "spath/replacement.h"
#include "spath/weights.h"

namespace ftbfs {

// Epoch-stamped vertex → position-on-current-path index. Rebinding is O(|p|),
// lookup O(1); used to answer "is w on π(s,v), and where?" in inner loops.
class VertexIndexMap {
 public:
  explicit VertexIndexMap(Vertex n) : epoch_(n, 0), pos_(n, 0) {}

  void bind(const Path& p) {
    ++cur_;
    for (std::size_t i = 0; i < p.size(); ++i) {
      epoch_[p[i]] = cur_;
      pos_[p[i]] = i;
    }
  }

  [[nodiscard]] bool on_path(Vertex v) const { return epoch_[v] == cur_; }

  [[nodiscard]] std::size_t pos(Vertex v) const {
    return on_path(v) ? pos_[v] : kNpos;
  }

 private:
  std::uint32_t cur_ = 0;
  std::vector<std::uint32_t> epoch_;
  std::vector<std::size_t> pos_;
};

// Owns the scratch state (mask + BFS + Dijkstra) for path selection.
class PathSelector {
 public:
  PathSelector(const Graph& g, const WeightAssignment& w)
      : graph_(&g), weights_(&w), mask_(g), bfs_(g), dijkstra_(g, w) {}

  [[nodiscard]] GraphMask& mask() { return mask_; }
  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] const WeightAssignment& weights() const { return *weights_; }

  // Hop distance s→t under the current mask (full BFS; kInfHops if cut off).
  [[nodiscard]] std::uint32_t hop_distance(Vertex s, Vertex t) {
    ++bfs_runs_;
    return bfs_.run(s, &mask_).hops[t];
  }

  // W-unique shortest path s→t under the current mask.
  [[nodiscard]] std::optional<RPath> w_path(Vertex s, Vertex t) {
    ++dijkstra_runs_;
    const SpResult& r = dijkstra_.run(s, &mask_, t);
    if (!r.reached(t)) return std::nullopt;
    return RPath{extract_path(r, t), r.dist[t]};
  }

  // Full W-SSSP under the current mask; result borrowed until next call.
  [[nodiscard]] const SpResult& w_sssp(Vertex s) {
    ++dijkstra_runs_;
    return dijkstra_.run(s, &mask_, kInvalidVertex);
  }

  // dist(s, t, G ∖ {e}), memoized per edge for a fixed source: the same
  // single-fault distance table is consulted for every target v on whose
  // π(s,v) the edge e lies, so one BFS per tree edge serves all targets.
  // The memo is a flat array indexed by EdgeId (edge ids are dense) with an
  // epoch stamp per slot — no hashing on the lookup path, and changing the
  // source flushes in O(1) by bumping the epoch while the hop vectors keep
  // their capacity for reuse. Overwrites the scratch mask.
  [[nodiscard]] std::uint32_t single_fault_distance(Vertex s, Vertex t,
                                                    EdgeId e) {
    if (memo_source_ != s) {
      ++memo_epoch_cur_;
      memo_source_ = s;
    }
    if (memo_hops_.empty()) {
      memo_hops_.resize(graph_->num_edges());
      memo_epoch_.resize(graph_->num_edges(), 0);
    }
    if (memo_epoch_[e] != memo_epoch_cur_) {
      mask_.clear();
      mask_.block_edge(e);
      ++bfs_runs_;
      memo_hops_[e] = bfs_.run(s, &mask_).hops;  // copy-assign reuses capacity
      memo_epoch_[e] = memo_epoch_cur_;
    }
    return memo_hops_[e][t];
  }

  [[nodiscard]] std::uint64_t bfs_runs() const { return bfs_runs_; }
  [[nodiscard]] std::uint64_t dijkstra_runs() const { return dijkstra_runs_; }

 private:
  const Graph* graph_;
  const WeightAssignment* weights_;
  GraphMask mask_;
  Bfs bfs_;
  Dijkstra dijkstra_;
  std::uint64_t bfs_runs_ = 0;
  std::uint64_t dijkstra_runs_ = 0;
  Vertex memo_source_ = kInvalidVertex;
  std::uint32_t memo_epoch_cur_ = 1;
  std::vector<std::uint32_t> memo_epoch_;             // per edge; lazily sized
  std::vector<std::vector<std::uint32_t>> memo_hops_; // per edge; lazily sized
};

// Blocks π positions [k+1 .. l] on the mask (the vertex-removal part of
// Eq. (3)'s G(u_k, u_l); u_k itself stays, as does anything outside the
// segment). The caller must never include the target v in the blocked range.
void block_pi_segment(GraphMask& mask, const Path& pi, std::size_t k,
                      std::size_t l);

// The decomposition π(s,x_i) ∘ D_i ∘ π(y_i,v) of a selected single-fault
// replacement path (Claim 3.4).
struct SingleFaultSelection {
  Path path;            // the full replacement path P_{s,v,{e_i}}
  Path detour;          // D_i, including both endpoints x and y
  Vertex x = kInvalidVertex;  // first divergence point from π (== first detour vertex)
  Vertex y = kInvalidVertex;  // first return to π (== last detour vertex)
  std::size_t x_pi_index = 0;  // position of x on π
  std::size_t y_pi_index = 0;  // position of y on π
};

// Step (1) of Cons2FTBFS: the replacement path for the failure of the π edge
// at position i (edge (π[i], π[i+1])), selected so that its divergence point
// from π is as close to s as possible. Returns nullopt when v is disconnected
// from s in G ∖ {e_i}.
//
// `pi_pos` must be bound to `pi`. Postcondition (Claim 3.4): the returned path
// equals π(s,x) ∘ detour ∘ π(y,v), enforced with a hard invariant — under the
// uniqueness of W this cannot fail.
[[nodiscard]] std::optional<SingleFaultSelection> select_single_fault(
    PathSelector& sel, const Path& pi, const VertexIndexMap& pi_pos,
    std::size_t i);

}  // namespace ftbfs
