// Algorithm Cons2FTBFS (§3 of the paper): constructs a dual-failure FT-BFS
// structure H ⊆ G rooted at s with O(n^{5/3}) edges (Theorem 1.1).
//
// For every target v the algorithm selects one replacement path P_{s,v,F} per
// relevant fault set F and keeps only its last edge:
//   step (1): F = {e_i}, e_i ∈ π(s,v)          — earliest π-divergence;
//   step (2): F = {e_i, e_j} ⊆ π(s,v)          — prefer composing the two
//             detours D_i, D_j when they intersect;
//   step (3): F = {e_i, t_j}, t_j ∈ D_i        — processed in decreasing
//             (e, t) order; a pair is *satisfied* if G_{τ−1}(v) (v's incident
//             edges restricted to those already kept) still contains an
//             optimal path, otherwise the new-ending path with the earliest
//             π-divergence (and, when it diverges at x_τ, the earliest
//             D-divergence) contributes one new edge at v.
// H is the union of the BFS tree T0(s) and all kept last edges.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/build_parallel.h"
#include "core/ftbfs_common.h"
#include "graph/graph.h"
#include "spath/path.h"

namespace ftbfs {

struct NewEndingRecord;

struct Cons2Options {
  std::uint64_t weight_seed = 1;  // seed of the tie-breaking assignment W
  // When true, new-ending paths are recorded per target vertex and classified
  // into the paper's five classes (Fig. 7); counts land in stats.classes.
  bool classify_paths = true;
  // Optional instrumentation sink: called once per covered target vertex with
  // π(s,v) and the new-ending records of that vertex (valid only during the
  // call). Requires classify_paths. Used by the property tests and the
  // structural experiments; has no effect on the constructed structure.
  // Always invoked in ascending target order, at any job count.
  std::function<void(Vertex v, const Path& pi,
                     const std::vector<NewEndingRecord>& records)>
      record_sink;
  // Worker threads for the per-target loop; 0 = auto (hardware), 1 =
  // sequential. Targets are speculated in parallel against a frozen H and
  // committed in target order, with conflicted targets (an earlier commit
  // added an edge incident to them — the only state a target can observe)
  // re-run sequentially, so the structure and every stats field are
  // byte-identical at any value (build_parallel.h).
  unsigned jobs = 1;
  // Optional: incremented once per target vertex as its construction work
  // finishes (speculation in the parallel schedule, commit sequentially).
  // Lets long builds report throughput without block-commit quantization
  // (the bench_e13 n=10^5 jobs sweep samples it from a forked child).
  std::atomic<std::uint64_t>* progress = nullptr;
  // Optional: filled with the parallel schedule actually used.
  ParallelBuildReport* parallel_report = nullptr;
};

// Builds a dual-failure FT-BFS structure rooted at s. Vertices unreachable
// from s are not covered (they have no distance to preserve).
// Postcondition (Lemma 3.2, checked by the test suite's verifier):
//   dist(s, v, H∖F) = dist(s, v, G∖F) for all v and all |F| <= 2.
[[nodiscard]] FtStructure build_cons2ftbfs(const Graph& g, Vertex s,
                                           const Cons2Options& opt = {});

}  // namespace ftbfs
