#include "core/oracle.h"

#include "engine/registry.h"

namespace ftbfs {

FtBfsOracle::FtBfsOracle(const Graph& g, Vertex source, unsigned f,
                         FtStructure h)
    : source_(source),
      f_(f),
      structure_(std::move(h)),
      engine_(g, structure_) {
  FTBFS_EXPECTS(source < g.num_vertices());
}

FtBfsOracle FtBfsOracle::build(const Graph& g, Vertex source, unsigned f,
                               std::uint64_t weight_seed) {
  FTBFS_EXPECTS(f <= 2);
  BuildRequest req;
  req.graph = &g;
  req.sources = {source};
  req.fault_budget = f;
  req.weight_seed = weight_seed;
  BuildResult built =
      BuilderRegistry::instance().build(BuilderRegistry::default_builder(f), req);
  return FtBfsOracle(g, source, f, std::move(built.structure));
}

std::uint32_t FtBfsOracle::distance(Vertex v, std::span<const EdgeId> faults) {
  FTBFS_EXPECTS(faults.size() <= f_);
  return engine_.distance(source_, v, edge_faults(faults));
}

std::optional<Path> FtBfsOracle::shortest_path(
    Vertex v, std::span<const EdgeId> faults) {
  FTBFS_EXPECTS(faults.size() <= f_);
  return engine_.shortest_path(source_, v, edge_faults(faults));
}

const std::vector<std::uint32_t>& FtBfsOracle::all_distances(
    std::span<const EdgeId> faults) {
  FTBFS_EXPECTS(faults.size() <= f_);
  return engine_.all_distances(source_, edge_faults(faults));
}

std::vector<std::uint32_t> FtBfsOracle::batch(
    std::span<const FaultSpec> fault_sets, std::span<const Vertex> targets,
    unsigned threads) {
  for (const FaultSpec& fs : fault_sets) {
    FTBFS_EXPECTS(fs.size() <= f_);
    // The wrapped structure guarantees edge failures only; vertex faults
    // would silently fall outside its FT property.
    FTBFS_EXPECTS(fs.vertices.empty());
  }
  return engine_.batch(source_, fault_sets, targets, threads);
}

}  // namespace ftbfs
