#include "core/oracle.h"

#include <utility>

#include "engine/registry.h"

namespace ftbfs {

namespace {

ServiceConfig oracle_service_config() {
  ServiceConfig config;
  config.lazy_build = false;  // the oracle is a pinned single-structure view
  config.cache_capacity = 128;
  return config;
}

}  // namespace

FtBfsOracle::FtBfsOracle(const Graph& g, Vertex source, unsigned f,
                         FtStructure h)
    : source_(source),
      f_(f),
      structure_(std::move(h)),
      service_(g, oracle_service_config()),
      entry_(service_.add_structure("ftbfs_oracle", source, f,
                                    FaultModel::kEdge, structure_.edges)) {
  FTBFS_EXPECTS(source < g.num_vertices());
}

FtBfsOracle FtBfsOracle::build(const Graph& g, Vertex source, unsigned f,
                               std::uint64_t weight_seed) {
  FTBFS_EXPECTS(f <= 2);
  BuildRequest req;
  req.graph = &g;
  req.sources = {source};
  req.fault_budget = f;
  req.weight_seed = weight_seed;
  BuildResult built =
      BuilderRegistry::instance().build(BuilderRegistry::default_builder(f), req);
  return FtBfsOracle(g, source, f, std::move(built.structure));
}

QueryRequest FtBfsOracle::make_request(QueryKind kind,
                                       std::span<const EdgeId> faults) const {
  QueryRequest req;
  req.source = source_;
  req.fault_edges.assign(faults.begin(), faults.end());
  req.kind = kind;
  // The budget precondition below already guarantees an exact answer; best
  // effort keeps the pinned entry serving even at the budget boundary.
  req.consistency = Consistency::kBestEffort;
  req.structure = "ftbfs_oracle";
  return req;
}

std::uint32_t FtBfsOracle::distance(Vertex v, std::span<const EdgeId> faults) {
  canon_.assign(edge_faults(faults));
  FTBFS_EXPECTS(canon_.size() <= f_);
  FTBFS_EXPECTS(v < service_.graph().num_vertices());
  QueryRequest req = make_request(QueryKind::kDistance, faults);
  req.targets = {v};
  ++queries_;
  return service_.serve(req).distances.at(0);
}

std::optional<Path> FtBfsOracle::shortest_path(
    Vertex v, std::span<const EdgeId> faults) {
  canon_.assign(edge_faults(faults));
  FTBFS_EXPECTS(canon_.size() <= f_);
  FTBFS_EXPECTS(v < service_.graph().num_vertices());
  QueryRequest req = make_request(QueryKind::kPath, faults);
  req.targets = {v};
  ++queries_;
  QueryResponse resp = service_.serve(req);
  if (resp.status == StatusCode::kDisconnected) return std::nullopt;
  return std::move(resp.paths.at(0));
}

const std::vector<std::uint32_t>& FtBfsOracle::all_distances(
    std::span<const EdgeId> faults) {
  canon_.assign(edge_faults(faults));
  FTBFS_EXPECTS(canon_.size() <= f_);
  ++queries_;
  all_dist_buf_ =
      service_.serve(make_request(QueryKind::kAllDistances, faults)).distances;
  return all_dist_buf_;
}

std::vector<std::uint32_t> FtBfsOracle::batch(
    std::span<const FaultSpec> fault_sets, std::span<const Vertex> targets,
    unsigned threads) {
  for (const FaultSpec& fs : fault_sets) {
    canon_.assign(fs);
    FTBFS_EXPECTS(canon_.size() <= f_);
    // The wrapped structure guarantees edge failures only; vertex faults
    // would silently fall outside its FT property.
    FTBFS_EXPECTS(fs.vertices.empty());
  }
  queries_ += fault_sets.size();
  return service_.engine(entry_).batch(source_, fault_sets, targets, threads);
}

}  // namespace ftbfs
