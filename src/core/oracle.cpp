#include "core/oracle.h"

#include <algorithm>

#include "core/cons2ftbfs.h"
#include "core/kfail_ftbfs.h"
#include "core/single_ftbfs.h"

namespace ftbfs {

FtBfsOracle::FtBfsOracle(const Graph& g, Vertex source, unsigned f,
                         FtStructure h)
    : g_(&g),
      source_(source),
      f_(f),
      structure_(std::move(h)),
      h_(materialize(g, structure_)),
      g_to_h_(g.num_edges(), kInvalidEdge),
      mask_(h_),
      bfs_(h_) {
  FTBFS_EXPECTS(source < g.num_vertices());
  // subgraph_from_edges assigns H edge ids in the order of structure_.edges.
  for (EdgeId i = 0; i < structure_.edges.size(); ++i) {
    g_to_h_[structure_.edges[i]] = i;
  }
}

FtBfsOracle FtBfsOracle::build(const Graph& g, Vertex source, unsigned f,
                               std::uint64_t weight_seed) {
  FTBFS_EXPECTS(f <= 2);
  switch (f) {
    case 0: {
      KFailOptions opt;
      return FtBfsOracle(g, source, 0,
                         build_kfail_ftbfs(g, source, 0, opt).structure);
    }
    case 1: {
      SingleFtbfsOptions opt;
      opt.weight_seed = weight_seed;
      return FtBfsOracle(g, source, 1, build_single_ftbfs(g, source, opt));
    }
    default: {
      Cons2Options opt;
      opt.weight_seed = weight_seed;
      opt.classify_paths = false;
      return FtBfsOracle(g, source, 2, build_cons2ftbfs(g, source, opt));
    }
  }
}

void FtBfsOracle::apply_faults(std::span<const EdgeId> faults) {
  FTBFS_EXPECTS(faults.size() <= f_);
  mask_.clear();
  for (const EdgeId e : faults) {
    FTBFS_EXPECTS(e < g_->num_edges());
    const EdgeId he = g_to_h_[e];
    if (he != kInvalidEdge) mask_.block_edge(he);
  }
}

std::uint32_t FtBfsOracle::distance(Vertex v,
                                    std::span<const EdgeId> faults) {
  return all_distances(faults)[v];
}

std::optional<Path> FtBfsOracle::shortest_path(
    Vertex v, std::span<const EdgeId> faults) {
  apply_faults(faults);
  ++queries_;
  const BfsResult& r = bfs_.run(source_, &mask_);
  if (r.hops[v] == kInfHops) return std::nullopt;
  Path p;
  for (Vertex cur = v; cur != kInvalidVertex; cur = r.parent[cur]) {
    p.push_back(cur);
  }
  std::reverse(p.begin(), p.end());
  return p;
}

const std::vector<std::uint32_t>& FtBfsOracle::all_distances(
    std::span<const EdgeId> faults) {
  apply_faults(faults);
  ++queries_;
  return bfs_.run(source_, &mask_).hops;
}

}  // namespace ftbfs
