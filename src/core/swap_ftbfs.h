// Swap-edge structure: the O(n)-edge approximate counterpart the paper
// contrasts exact FT-BFS structures with (§1, discussing [12, 3]: "exact
// FT-BFS structures may be rather expensive — approximate structures with
// O(n) edges exist").
//
// Construction: the BFS tree T0(s) plus, for every tree edge e = (p, c), one
// *swap edge* — a non-tree edge (a, b) crossing the cut between subtree(c)
// and the rest, chosen to minimize dist(s,b) + 1 + dist_T(a,c) (the resulting
// route length to the subtree root c). Size <= 2(n-1) edges.
//
// Guarantees (tested):
//   * connectivity: if G ∖ {e} is connected for a tree edge e, so is H ∖ {e};
//   * exactness is NOT guaranteed — the stretch is measured empirically
//     (bench E15), which is exactly how this library positions approximate
//     structures against the paper's exact ones: a size/stretch trade-off.
#pragma once

#include <cstdint>

#include "core/ftbfs_common.h"
#include "graph/graph.h"

namespace ftbfs {

struct SwapFtbfsOptions {
  std::uint64_t weight_seed = 1;
};

struct SwapStats {
  std::uint64_t tree_edges = 0;
  std::uint64_t swap_edges = 0;      // distinct swap edges added
  std::uint64_t uncovered_cuts = 0;  // tree edges with no crossing edge
};

struct SwapResult {
  FtStructure structure;
  SwapStats swap;
};

// Builds the swap-edge structure rooted at s.
[[nodiscard]] SwapResult build_swap_ftbfs(const Graph& g, Vertex s,
                                          const SwapFtbfsOptions& opt = {});

// Measures the worst and average multiplicative stretch of `h` over all
// single-edge faults e and all targets v reachable in G∖{e}:
//   stretch(v, e) = dist(s,v,H∖e) / dist(s,v,G∖e)   (infinity if H loses v).
struct StretchReport {
  double max_stretch = 1.0;
  double avg_stretch = 1.0;
  std::uint64_t comparisons = 0;
  std::uint64_t disconnections = 0;  // H∖e loses a vertex G∖e keeps
};

[[nodiscard]] StretchReport measure_single_fault_stretch(
    const Graph& g, Vertex s, const FtStructure& h);

}  // namespace ftbfs
