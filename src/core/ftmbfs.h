// Multi-source FT-MBFS structures (the σ-source axis of generalization the
// paper develops lower bounds for, §1 and §4): the union of per-source
// structures is an FT-MBFS for the source set, with size at most σ times the
// single-source bound — and Ω(σ^{1/(f+1)} n^{2-1/(f+1)}) in the worst case by
// Theorem 1.2, so the union is within O(σ^{f/(f+1)}) of optimal and much
// closer on benign inputs (shared edges collapse in the union).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "core/build_parallel.h"
#include "core/ftbfs_common.h"
#include "graph/graph.h"

namespace ftbfs {

struct FtMbfsOptions {
  std::uint64_t weight_seed = 1;
  // Worker threads forwarded into each per-source build; the outer union loop
  // stays sequential in source order, so the union is byte-identical at any
  // job count (each inner build already is — single_ftbfs.h / cons2ftbfs.h).
  unsigned jobs = 1;
  // Optional: incremented once per finished target vertex across all
  // per-source builds (single_ftbfs.h semantics).
  std::atomic<std::uint64_t>* progress = nullptr;
  // Optional: the schedules of the per-source builds, aggregated — workers is
  // the maximum crew used, blocks/speculated/conflicts are summed.
  ParallelBuildReport* parallel_report = nullptr;
};

struct FtMbfsResult {
  FtStructure structure;       // the union
  std::vector<std::uint64_t> per_source_size;  // |H(s_k)| before the union
};

// Dual-failure FT-MBFS: union of Cons2FTBFS structures, one per source.
[[nodiscard]] FtMbfsResult build_cons2ftmbfs(const Graph& g,
                                             std::span<const Vertex> sources,
                                             const FtMbfsOptions& opt = {});

// Single-failure FT-MBFS (the [10] baseline, multi-source form).
[[nodiscard]] FtMbfsResult build_single_ftmbfs(const Graph& g,
                                               std::span<const Vertex> sources,
                                               const FtMbfsOptions& opt = {});

}  // namespace ftbfs
