// Verification oracles for the FT-MBFS property:
//   dist(s, v, H∖F) = dist(s, v, G∖F)  for all (s, v) ∈ S×V, |F| <= f.
//
// The exhaustive verifier enumerates every fault set (O(m^f) BFS pairs) and is
// the test suite's ground truth on small graphs. The sampled verifier handles
// larger instances by mixing uniform fault sets with *adversarial* ones placed
// on shortest paths and on replacement paths — the only places a fault can
// matter — which empirically finds planted bugs orders of magnitude faster
// than uniform sampling.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/ftbfs_common.h"
#include "graph/graph.h"

namespace ftbfs {

struct Violation {
  Vertex source = kInvalidVertex;
  Vertex v = kInvalidVertex;
  // Edge ids or vertex ids, per fault_model.
  std::vector<EdgeId> faults;
  FaultModel fault_model = FaultModel::kEdge;
  std::uint32_t dist_g = 0;  // kInfHops means unreachable
  std::uint32_t dist_h = 0;

  [[nodiscard]] std::string describe(const Graph& g) const;
};

// Exhaustively checks every fault set of size <= f (f <= 3 supported).
// Returns the first violation found, or nullopt if H is a valid structure.
[[nodiscard]] std::optional<Violation> verify_exhaustive(
    const Graph& g, std::span<const EdgeId> h_edges,
    std::span<const Vertex> sources, unsigned f);

// Randomized check: `samples` fault sets of size exactly f (half uniform,
// half adversarially placed along shortest/replacement paths).
[[nodiscard]] std::optional<Violation> verify_sampled(
    const Graph& g, std::span<const EdgeId> h_edges,
    std::span<const Vertex> sources, unsigned f, std::uint64_t samples,
    std::uint64_t seed);

// Vertex-fault variant of the exhaustive verifier:
//   dist(s, v, H∖F) = dist(s, v, G∖F) for all vertex sets F, |F| <= f.
// (Fault sets containing s or v make both sides infinite/undefined and are
// vacuously satisfied; they are still enumerated and compared.) The
// `faults` field of a returned violation holds *vertex* ids.
[[nodiscard]] std::optional<Violation> verify_exhaustive_vertex(
    const Graph& g, std::span<const EdgeId> h_edges,
    std::span<const Vertex> sources, unsigned f);

}  // namespace ftbfs
