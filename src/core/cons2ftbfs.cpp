#include "core/cons2ftbfs.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "core/selector.h"
#include "structure/newending.h"

namespace ftbfs {
namespace {

// All state for constructing H(v) for one target vertex v.
class PerVertexRun {
 public:
  PerVertexRun(const Graph& g, PathSelector& sel, VertexIndexMap& pi_pos,
               VertexIndexMap& aux_pos, Vertex s, Vertex v, Path pi,
               std::vector<bool>& in_h, FtBfsStats& stats,
               const Cons2Options& opt)
      : g_(g),
        sel_(sel),
        pi_pos_(pi_pos),
        aux_pos_(aux_pos),
        s_(s),
        v_(v),
        pi_(std::move(pi)),
        in_h_(in_h),
        stats_(stats),
        classify_(opt.classify_paths),
        record_sink_(opt.record_sink ? &opt.record_sink : nullptr) {
    pi_pos_.bind(pi_);
    // E_0(v) starts as every v-incident edge already in H (= E(v,T0) here,
    // since steps run before any other edge of v can exist).
    for (const Arc& arc : g_.neighbors(v_)) {
      if (in_h_[arc.id]) allowed_v_edges_.push_back(arc.id);
    }
  }

  std::uint64_t run() {
    step1();
    step2();
    step3();
    if (classify_) {
      const PathClassCounts c = classify_new_ending(g_, pi_, records_);
      stats_.classes.single += c.single;
      stats_.classes.a_pi_pi += c.a_pi_pi;
      stats_.classes.b_nodet += c.b_nodet;
      stats_.classes.c_indep += c.c_indep;
      stats_.classes.d_pi_interf += c.d_pi_interf;
      stats_.classes.e_d_interf += c.e_d_interf;
      PathClassCounts& m = stats_.max_classes_per_vertex;
      m.single = std::max(m.single, c.single);
      m.a_pi_pi = std::max(m.a_pi_pi, c.a_pi_pi);
      m.b_nodet = std::max(m.b_nodet, c.b_nodet);
      m.c_indep = std::max(m.c_indep, c.c_indep);
      m.d_pi_interf = std::max(m.d_pi_interf, c.d_pi_interf);
      m.e_d_interf = std::max(m.e_d_interf, c.e_d_interf);
      if (record_sink_ != nullptr) (*record_sink_)(v_, pi_, records_);
    }
    return new_edges_here_;
  }

 private:
  // ---- helpers ------------------------------------------------------------

  [[nodiscard]] EdgeId pi_edge(std::size_t i) const {
    const EdgeId e = g_.find_edge(pi_[i], pi_[i + 1]);
    FTBFS_ENSURES(e != kInvalidEdge);
    return e;
  }

  // Adds the last edge of a selected replacement path to H(v); returns true
  // if the edge was new. Bookkeeps E_τ(v) (v-incident whitelist).
  bool keep_last_edge(const Path& p, NewEndingRecord::Kind kind, EdgeId f1,
                      EdgeId f2, const SingleFaultSelection* det) {
    const EdgeId le = last_edge(g_, p);
    if (in_h_[le]) return false;
    in_h_[le] = true;
    allowed_v_edges_.push_back(le);
    ++stats_.new_edges;
    ++new_edges_here_;
    if (classify_) {
      NewEndingRecord rec;
      rec.kind = kind;
      rec.path = p;
      rec.f1 = f1;
      rec.f2 = f2;
      if (det != nullptr) {
        rec.detour = det->detour;
        rec.detour_y_pi_index = det->y_pi_index;
      }
      records_.push_back(std::move(rec));
    }
    return true;
  }

  // Hop distance s→v in G ∖ faults.
  std::uint32_t target_distance(std::initializer_list<EdgeId> faults) {
    GraphMask& m = sel_.mask();
    m.clear();
    for (const EdgeId e : faults) m.block_edge(e);
    return sel_.hop_distance(s_, v_);
  }

  // ---- step (1): single faults on π ---------------------------------------

  void step1() {
    const std::size_t len = pi_.size() - 1;
    selections_.assign(len, std::nullopt);
    for (std::size_t i = 0; i < len; ++i) {
      ++stats_.fault_pairs_considered;
      selections_[i] = select_single_fault(sel_, pi_, pi_pos_, i);
      if (selections_[i]) {
        keep_last_edge(selections_[i]->path, NewEndingRecord::Kind::kSingle,
                       pi_edge(i), kInvalidEdge, nullptr);
      }
    }
  }

  // ---- step (2): two faults on π ------------------------------------------

  // True if e_j (π edge at position j > i) lies on the selected path P_i:
  // P_i = π(s,x_i) ∘ D_i ∘ π(y_i,v) contains π edges at positions
  // [0, x_idx) and [y_idx, len). For j > i >= x_idx this reduces to
  // j >= y_idx.
  [[nodiscard]] bool pi_edge_on_selection(const SingleFaultSelection& si,
                                          std::size_t j) const {
    return j + 1 <= si.x_pi_index || j >= si.y_pi_index;
  }

  void step2() {
    const std::size_t len = pi_.size() - 1;
    for (std::size_t i = 0; i < len; ++i) {
      for (std::size_t j = i + 1; j < len; ++j) {
        ++stats_.fault_pairs_considered;
        // Cheap satisfiability: if one single-fault path avoids the other
        // fault, it is itself an optimal replacement path for the pair and
        // its last edge is already in H(v).
        if (selections_[i] && !pi_edge_on_selection(*selections_[i], j)) {
          continue;
        }
        if (selections_[j] && !pi_edge_on_selection(*selections_[j], i)) {
          continue;
        }
        handle_pi_pi_pair(i, j);
      }
    }
  }

  void handle_pi_pi_pair(std::size_t i, std::size_t j) {
    const EdgeId ei = pi_edge(i), ej = pi_edge(j);
    const std::uint32_t target = target_distance({ei, ej});
    if (target == kInfHops) return;  // pair disconnects v: nothing to keep

    // Preferred candidate: compose the two detours through their last shared
    // vertex (the paper tries this path first).
    if (selections_[i] && selections_[j]) {
      if (const std::optional<Path> composed = compose_detours(i, j);
          composed && composed->size() - 1 == target) {
        keep_last_edge(*composed, NewEndingRecord::Kind::kPiPi, ei, ej,
                       nullptr);
        return;
      }
    }
    GraphMask& m = sel_.mask();
    m.clear();
    m.block_edge(ei);
    m.block_edge(ej);
    const std::optional<RPath> rp = sel_.w_path(s_, v_);
    FTBFS_ENSURES(rp.has_value() && rp->key.hops == target);
    keep_last_edge(rp->verts, NewEndingRecord::Kind::kPiPi, ei, ej, nullptr);
  }

  // π(s,x_i) ∘ D_i[x_i,w] ∘ D_j[w,y_j] ∘ π(y_j,v) where w is the last vertex
  // on D_j common to D_i; nullopt if the detours are disjoint or the
  // composition is not a simple path.
  [[nodiscard]] std::optional<Path> compose_detours(std::size_t i,
                                                    std::size_t j) {
    const SingleFaultSelection& si = *selections_[i];
    const SingleFaultSelection& sj = *selections_[j];
    aux_pos_.bind(si.detour);
    std::size_t w_on_j = kNpos;
    for (std::size_t t = sj.detour.size(); t-- > 0;) {
      if (aux_pos_.on_path(sj.detour[t])) {
        w_on_j = t;
        break;
      }
    }
    if (w_on_j == kNpos) return std::nullopt;
    const Vertex w = sj.detour[w_on_j];
    const std::size_t w_on_i = aux_pos_.pos(w);

    Path p = subpath(pi_, 0, si.x_pi_index);
    p = concat(p, subpath(si.detour, 0, w_on_i));
    p = concat(p, subpath(sj.detour, w_on_j, sj.detour.size() - 1));
    p = concat(p, subpath(pi_, sj.y_pi_index, pi_.size() - 1));
    if (!is_simple_path_in(g_, p)) return std::nullopt;
    return p;
  }

  // ---- step (3): one fault on π, one on the detour ------------------------

  void step3() {
    const std::size_t len = pi_.size() - 1;
    // Decreasing (e, t) order: deeper π edge first; within one detour, deeper
    // detour edge first.
    for (std::size_t i = len; i-- > 0;) {
      if (!selections_[i]) continue;
      const Path& detour = selections_[i]->detour;
      for (std::size_t r = detour.size() - 1; r-- > 0;) {
        ++stats_.fault_pairs_considered;
        handle_pi_d_pair(i, r);
      }
    }
  }

  void handle_pi_d_pair(std::size_t i, std::size_t r) {
    const SingleFaultSelection& si = *selections_[i];
    const EdgeId e = pi_edge(i);
    const EdgeId t = g_.find_edge(si.detour[r], si.detour[r + 1]);
    FTBFS_ENSURES(t != kInvalidEdge);

    const std::uint32_t target = target_distance({e, t});
    if (target == kInfHops) return;

    // Satisfiability in G_{τ−1}(v): v's incident edges restricted to E_{τ−1}(v).
    GraphMask& m = sel_.mask();
    m.clear();
    m.block_edge(e);
    m.block_edge(t);
    m.restrict_incident_edges(v_);
    for (const EdgeId allowed : allowed_v_edges_) m.allow_edge(allowed);
    if (sel_.hop_distance(s_, v_) == target) return;  // not new-ending

    const Path p = select_new_ending(i, r, e, t, target);
    const bool added =
        keep_last_edge(p, NewEndingRecord::Kind::kPiD, e, t, &si);
    // A new-ending path must end with an edge not yet in E_{τ−1}(v); anything
    // else would contradict the satisfiability test above.
    FTBFS_ENSURES(added);
  }

  // Selects the new-ending replacement path for F = {e, t}: earliest
  // π-divergence; if that divergence equals x_τ, also earliest D-divergence.
  [[nodiscard]] Path select_new_ending(std::size_t i, std::size_t r, EdgeId e,
                                       EdgeId t, std::uint32_t target) {
    const SingleFaultSelection& si = *selections_[i];
    GraphMask& m = sel_.mask();

    // Masks G(u_k, v) ∖ F: π positions [k+1 .. |π|-2] removed.
    auto apply_gk = [&](std::size_t k) {
      m.clear();
      m.block_edge(e);
      m.block_edge(t);
      if (pi_.size() >= 2) block_pi_segment(m, pi_, k, pi_.size() - 2);
    };
    auto feasible_k = [&](std::size_t k) {
      apply_gk(k);
      return sel_.hop_distance(s_, v_) == target;
    };

    // Minimal divergence index k ∈ [0..i]; feasible at k == i by Cl. 3.5
    // (the optimal path diverges above e and rejoins π only at v). Keep a
    // defensive fallback for the (theoretically impossible) infeasible case.
    if (!feasible_k(i)) {
      ++stats_.divergence_fallbacks;
      m.clear();
      m.block_edge(e);
      m.block_edge(t);
      const std::optional<RPath> rp = sel_.w_path(s_, v_);
      FTBFS_ENSURES(rp.has_value() && rp->key.hops == target);
      return rp->verts;
    }
    std::size_t lo = 0, hi = i;
    if (!feasible_k(0)) {
      while (lo + 1 < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        (feasible_k(mid) ? hi : lo) = mid;
      }
    } else {
      hi = 0;
    }
    const std::size_t k0 = hi;

    apply_gk(k0);
    std::optional<RPath> rp = sel_.w_path(s_, v_);
    FTBFS_ENSURES(rp.has_value() && rp->key.hops == target);
    const std::size_t b_idx = first_divergence(rp->verts, pi_);
    const Vertex b = rp->verts[b_idx];
    if (b != si.x) return rp->verts;

    // b == x_τ: refine the divergence from the detour D_τ. G_D(w_l) removes
    // the detour tail V(D[l+1 .. end]) (v itself is never blocked).
    const Path& d = si.detour;
    auto apply_gd = [&](std::size_t l) {
      apply_gk(si.x_pi_index);
      for (std::size_t pos = l + 1; pos < d.size(); ++pos) {
        if (d[pos] != v_) m.block_vertex(d[pos]);
      }
    };
    auto feasible_l = [&](std::size_t l) {
      apply_gd(l);
      return sel_.hop_distance(s_, v_) == target;
    };
    if (!feasible_l(r)) {
      // Theoretically impossible (Lemma 3.1); fall back to the G(u_k0,v) path.
      ++stats_.divergence_fallbacks;
      return rp->verts;
    }
    std::size_t dlo = 0, dhi = r;
    if (!feasible_l(0)) {
      while (dlo + 1 < dhi) {
        const std::size_t mid = dlo + (dhi - dlo) / 2;
        (feasible_l(mid) ? dhi : dlo) = mid;
      }
    } else {
      dhi = 0;
    }
    apply_gd(dhi);
    rp = sel_.w_path(s_, v_);
    FTBFS_ENSURES(rp.has_value() && rp->key.hops == target);
    return rp->verts;
  }

  // ---- data ---------------------------------------------------------------

  const Graph& g_;
  PathSelector& sel_;
  VertexIndexMap& pi_pos_;
  VertexIndexMap& aux_pos_;
  Vertex s_;
  Vertex v_;
  Path pi_;
  std::vector<bool>& in_h_;
  FtBfsStats& stats_;
  bool classify_;
  const std::function<void(Vertex, const Path&,
                           const std::vector<NewEndingRecord>&)>* record_sink_ =
      nullptr;

  std::vector<std::optional<SingleFaultSelection>> selections_;
  std::vector<EdgeId> allowed_v_edges_;  // E_τ(v)
  std::vector<NewEndingRecord> records_;
  std::uint64_t new_edges_here_ = 0;
};

}  // namespace

FtStructure build_cons2ftbfs(const Graph& g, Vertex s,
                             const Cons2Options& opt) {
  FTBFS_EXPECTS(s < g.num_vertices());
  const WeightAssignment w(g, opt.weight_seed);
  PathSelector sel(g, w);

  sel.mask().clear();
  const SpResult tree = sel.w_sssp(s);  // copy: buffers are reused later

  FtStructure h;
  std::vector<bool> in_h(g.num_edges(), false);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v != s && tree.reached(v) && !in_h[tree.parent_edge[v]]) {
      in_h[tree.parent_edge[v]] = true;
      ++h.stats.tree_edges;
    }
  }

  VertexIndexMap pi_pos(g.num_vertices());
  VertexIndexMap aux_pos(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v == s || !tree.reached(v)) continue;
    PerVertexRun run(g, sel, pi_pos, aux_pos, s, v, extract_path(tree, v),
                     in_h, h.stats, opt);
    const std::uint64_t new_here = run.run();
    h.stats.max_new_per_vertex =
        std::max(h.stats.max_new_per_vertex, new_here);
  }

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_h[e]) h.edges.push_back(e);
  }
  h.stats.dijkstra_runs = sel.dijkstra_runs();
  return h;
}

}  // namespace ftbfs
