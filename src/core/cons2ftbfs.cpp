#include "core/cons2ftbfs.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/selector.h"
#include "structure/newending.h"
#include "util/concurrency.h"

namespace ftbfs {
namespace {

// Everything one target contributes, recorded against a frozen H and applied
// to the shared state by the ordered commit (build_parallel.h). Every edge in
// `added` is incident to the target — the locality the conflict check relies
// on.
struct VertexOutcome {
  std::vector<EdgeId> added;  // kept last edges, in keep order
  std::vector<NewEndingRecord> records;
  PathClassCounts classes;  // classification of `records` (when enabled)
  Path pi;                  // π(s,v), kept for the record_sink call
  std::uint64_t fault_pairs = 0;
  std::uint64_t dijkstra = 0;
  std::uint64_t fallbacks = 0;
};

// All state for constructing H(v) for one target vertex v. Reads the shared
// kept-edge set through a const snapshot plus its own additions; never writes
// shared state — the commit step replays the outcome in target order.
class PerVertexRun {
 public:
  PerVertexRun(const Graph& g, PathSelector& sel, VertexIndexMap& pi_pos,
               VertexIndexMap& aux_pos, Vertex s, Vertex v, Path pi,
               const std::vector<bool>& in_h, bool classify)
      : g_(g),
        sel_(sel),
        pi_pos_(pi_pos),
        aux_pos_(aux_pos),
        s_(s),
        v_(v),
        pi_(std::move(pi)),
        in_h_(in_h),
        classify_(classify) {
    pi_pos_.bind(pi_);
    // E_0(v) starts as every v-incident edge already in H (= E(v,T0) here,
    // since steps run before any other edge of v can exist).
    for (const Arc& arc : g_.neighbors(v_)) {
      if (in_h_[arc.id]) allowed_v_edges_.push_back(arc.id);
    }
  }

  VertexOutcome run() {
    const std::uint64_t d0 = sel_.dijkstra_runs();
    step1();
    step2();
    step3();
    if (classify_) {
      out_.classes = classify_new_ending(g_, pi_, out_.records);
    }
    out_.dijkstra = sel_.dijkstra_runs() - d0;
    out_.pi = std::move(pi_);
    return std::move(out_);
  }

 private:
  // ---- helpers ------------------------------------------------------------

  [[nodiscard]] EdgeId pi_edge(std::size_t i) const {
    const EdgeId e = g_.find_edge(pi_[i], pi_[i + 1]);
    FTBFS_ENSURES(e != kInvalidEdge);
    return e;
  }

  // Whether `le` is already kept, in the snapshot or by this run. Every
  // queried edge is v-incident, and this run's additions are few, so the
  // linear scan of `added` stays cheap.
  [[nodiscard]] bool kept(EdgeId le) const {
    return in_h_[le] || std::find(out_.added.begin(), out_.added.end(), le) !=
                            out_.added.end();
  }

  // Adds the last edge of a selected replacement path to H(v); returns true
  // if the edge was new. Bookkeeps E_τ(v) (v-incident whitelist).
  bool keep_last_edge(const Path& p, NewEndingRecord::Kind kind, EdgeId f1,
                      EdgeId f2, const SingleFaultSelection* det) {
    const EdgeId le = last_edge(g_, p);
    if (kept(le)) return false;
    out_.added.push_back(le);
    allowed_v_edges_.push_back(le);
    if (classify_) {
      NewEndingRecord rec;
      rec.kind = kind;
      rec.path = p;
      rec.f1 = f1;
      rec.f2 = f2;
      if (det != nullptr) {
        rec.detour = det->detour;
        rec.detour_y_pi_index = det->y_pi_index;
      }
      out_.records.push_back(std::move(rec));
    }
    return true;
  }

  // Hop distance s→v in G ∖ faults.
  std::uint32_t target_distance(std::initializer_list<EdgeId> faults) {
    GraphMask& m = sel_.mask();
    m.clear();
    for (const EdgeId e : faults) m.block_edge(e);
    return sel_.hop_distance(s_, v_);
  }

  // ---- step (1): single faults on π ---------------------------------------

  void step1() {
    const std::size_t len = pi_.size() - 1;
    selections_.assign(len, std::nullopt);
    for (std::size_t i = 0; i < len; ++i) {
      ++out_.fault_pairs;
      selections_[i] = select_single_fault(sel_, pi_, pi_pos_, i);
      if (selections_[i]) {
        keep_last_edge(selections_[i]->path, NewEndingRecord::Kind::kSingle,
                       pi_edge(i), kInvalidEdge, nullptr);
      }
    }
  }

  // ---- step (2): two faults on π ------------------------------------------

  // True if e_j (π edge at position j > i) lies on the selected path P_i:
  // P_i = π(s,x_i) ∘ D_i ∘ π(y_i,v) contains π edges at positions
  // [0, x_idx) and [y_idx, len). For j > i >= x_idx this reduces to
  // j >= y_idx.
  [[nodiscard]] bool pi_edge_on_selection(const SingleFaultSelection& si,
                                          std::size_t j) const {
    return j + 1 <= si.x_pi_index || j >= si.y_pi_index;
  }

  void step2() {
    const std::size_t len = pi_.size() - 1;
    for (std::size_t i = 0; i < len; ++i) {
      for (std::size_t j = i + 1; j < len; ++j) {
        ++out_.fault_pairs;
        // Cheap satisfiability: if one single-fault path avoids the other
        // fault, it is itself an optimal replacement path for the pair and
        // its last edge is already in H(v).
        if (selections_[i] && !pi_edge_on_selection(*selections_[i], j)) {
          continue;
        }
        if (selections_[j] && !pi_edge_on_selection(*selections_[j], i)) {
          continue;
        }
        handle_pi_pi_pair(i, j);
      }
    }
  }

  void handle_pi_pi_pair(std::size_t i, std::size_t j) {
    const EdgeId ei = pi_edge(i), ej = pi_edge(j);
    const std::uint32_t target = target_distance({ei, ej});
    if (target == kInfHops) return;  // pair disconnects v: nothing to keep

    // Preferred candidate: compose the two detours through their last shared
    // vertex (the paper tries this path first).
    if (selections_[i] && selections_[j]) {
      if (const std::optional<Path> composed = compose_detours(i, j);
          composed && composed->size() - 1 == target) {
        keep_last_edge(*composed, NewEndingRecord::Kind::kPiPi, ei, ej,
                       nullptr);
        return;
      }
    }
    GraphMask& m = sel_.mask();
    m.clear();
    m.block_edge(ei);
    m.block_edge(ej);
    const std::optional<RPath> rp = sel_.w_path(s_, v_);
    FTBFS_ENSURES(rp.has_value() && rp->key.hops == target);
    keep_last_edge(rp->verts, NewEndingRecord::Kind::kPiPi, ei, ej, nullptr);
  }

  // π(s,x_i) ∘ D_i[x_i,w] ∘ D_j[w,y_j] ∘ π(y_j,v) where w is the last vertex
  // on D_j common to D_i; nullopt if the detours are disjoint or the
  // composition is not a simple path.
  [[nodiscard]] std::optional<Path> compose_detours(std::size_t i,
                                                    std::size_t j) {
    const SingleFaultSelection& si = *selections_[i];
    const SingleFaultSelection& sj = *selections_[j];
    aux_pos_.bind(si.detour);
    std::size_t w_on_j = kNpos;
    for (std::size_t t = sj.detour.size(); t-- > 0;) {
      if (aux_pos_.on_path(sj.detour[t])) {
        w_on_j = t;
        break;
      }
    }
    if (w_on_j == kNpos) return std::nullopt;
    const Vertex w = sj.detour[w_on_j];
    const std::size_t w_on_i = aux_pos_.pos(w);

    Path p = subpath(pi_, 0, si.x_pi_index);
    p = concat(p, subpath(si.detour, 0, w_on_i));
    p = concat(p, subpath(sj.detour, w_on_j, sj.detour.size() - 1));
    p = concat(p, subpath(pi_, sj.y_pi_index, pi_.size() - 1));
    if (!is_simple_path_in(g_, p)) return std::nullopt;
    return p;
  }

  // ---- step (3): one fault on π, one on the detour ------------------------

  void step3() {
    const std::size_t len = pi_.size() - 1;
    // Decreasing (e, t) order: deeper π edge first; within one detour, deeper
    // detour edge first.
    for (std::size_t i = len; i-- > 0;) {
      if (!selections_[i]) continue;
      const Path& detour = selections_[i]->detour;
      for (std::size_t r = detour.size() - 1; r-- > 0;) {
        ++out_.fault_pairs;
        handle_pi_d_pair(i, r);
      }
    }
  }

  void handle_pi_d_pair(std::size_t i, std::size_t r) {
    const SingleFaultSelection& si = *selections_[i];
    const EdgeId e = pi_edge(i);
    const EdgeId t = g_.find_edge(si.detour[r], si.detour[r + 1]);
    FTBFS_ENSURES(t != kInvalidEdge);

    const std::uint32_t target = target_distance({e, t});
    if (target == kInfHops) return;

    // Satisfiability in G_{τ−1}(v): v's incident edges restricted to E_{τ−1}(v).
    GraphMask& m = sel_.mask();
    m.clear();
    m.block_edge(e);
    m.block_edge(t);
    m.restrict_incident_edges(v_);
    for (const EdgeId allowed : allowed_v_edges_) m.allow_edge(allowed);
    if (sel_.hop_distance(s_, v_) == target) return;  // not new-ending

    const Path p = select_new_ending(i, r, e, t, target);
    const bool added =
        keep_last_edge(p, NewEndingRecord::Kind::kPiD, e, t, &si);
    // A new-ending path must end with an edge not yet in E_{τ−1}(v); anything
    // else would contradict the satisfiability test above.
    FTBFS_ENSURES(added);
  }

  // Selects the new-ending replacement path for F = {e, t}: earliest
  // π-divergence; if that divergence equals x_τ, also earliest D-divergence.
  [[nodiscard]] Path select_new_ending(std::size_t i, std::size_t r, EdgeId e,
                                       EdgeId t, std::uint32_t target) {
    const SingleFaultSelection& si = *selections_[i];
    GraphMask& m = sel_.mask();

    // Masks G(u_k, v) ∖ F: π positions [k+1 .. |π|-2] removed.
    auto apply_gk = [&](std::size_t k) {
      m.clear();
      m.block_edge(e);
      m.block_edge(t);
      if (pi_.size() >= 2) block_pi_segment(m, pi_, k, pi_.size() - 2);
    };
    auto feasible_k = [&](std::size_t k) {
      apply_gk(k);
      return sel_.hop_distance(s_, v_) == target;
    };

    // Minimal divergence index k ∈ [0..i]; feasible at k == i by Cl. 3.5
    // (the optimal path diverges above e and rejoins π only at v). Keep a
    // defensive fallback for the (theoretically impossible) infeasible case.
    if (!feasible_k(i)) {
      ++out_.fallbacks;
      m.clear();
      m.block_edge(e);
      m.block_edge(t);
      const std::optional<RPath> rp = sel_.w_path(s_, v_);
      FTBFS_ENSURES(rp.has_value() && rp->key.hops == target);
      return rp->verts;
    }
    std::size_t lo = 0, hi = i;
    if (!feasible_k(0)) {
      while (lo + 1 < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        (feasible_k(mid) ? hi : lo) = mid;
      }
    } else {
      hi = 0;
    }
    const std::size_t k0 = hi;

    apply_gk(k0);
    std::optional<RPath> rp = sel_.w_path(s_, v_);
    FTBFS_ENSURES(rp.has_value() && rp->key.hops == target);
    const std::size_t b_idx = first_divergence(rp->verts, pi_);
    const Vertex b = rp->verts[b_idx];
    if (b != si.x) return rp->verts;

    // b == x_τ: refine the divergence from the detour D_τ. G_D(w_l) removes
    // the detour tail V(D[l+1 .. end]) (v itself is never blocked).
    const Path& d = si.detour;
    auto apply_gd = [&](std::size_t l) {
      apply_gk(si.x_pi_index);
      for (std::size_t pos = l + 1; pos < d.size(); ++pos) {
        if (d[pos] != v_) m.block_vertex(d[pos]);
      }
    };
    auto feasible_l = [&](std::size_t l) {
      apply_gd(l);
      return sel_.hop_distance(s_, v_) == target;
    };
    if (!feasible_l(r)) {
      // Theoretically impossible (Lemma 3.1); fall back to the G(u_k0,v) path.
      ++out_.fallbacks;
      return rp->verts;
    }
    std::size_t dlo = 0, dhi = r;
    if (!feasible_l(0)) {
      while (dlo + 1 < dhi) {
        const std::size_t mid = dlo + (dhi - dlo) / 2;
        (feasible_l(mid) ? dhi : dlo) = mid;
      }
    } else {
      dhi = 0;
    }
    apply_gd(dhi);
    rp = sel_.w_path(s_, v_);
    FTBFS_ENSURES(rp.has_value() && rp->key.hops == target);
    return rp->verts;
  }

  // ---- data ---------------------------------------------------------------

  const Graph& g_;
  PathSelector& sel_;
  VertexIndexMap& pi_pos_;
  VertexIndexMap& aux_pos_;
  Vertex s_;
  Vertex v_;
  Path pi_;
  const std::vector<bool>& in_h_;
  bool classify_;

  std::vector<std::optional<SingleFaultSelection>> selections_;
  std::vector<EdgeId> allowed_v_edges_;  // E_τ(v)
  VertexOutcome out_;
};

struct Cons2Workspace {
  PathSelector sel;
  VertexIndexMap pi_pos;
  VertexIndexMap aux_pos;
  Cons2Workspace(const Graph& g, const WeightAssignment& w)
      : sel(g, w), pi_pos(g.num_vertices()), aux_pos(g.num_vertices()) {}
};

void max_classes(PathClassCounts& m, const PathClassCounts& c) {
  m.single = std::max(m.single, c.single);
  m.a_pi_pi = std::max(m.a_pi_pi, c.a_pi_pi);
  m.b_nodet = std::max(m.b_nodet, c.b_nodet);
  m.c_indep = std::max(m.c_indep, c.c_indep);
  m.d_pi_interf = std::max(m.d_pi_interf, c.d_pi_interf);
  m.e_d_interf = std::max(m.e_d_interf, c.e_d_interf);
}

}  // namespace

FtStructure build_cons2ftbfs(const Graph& g, Vertex s,
                             const Cons2Options& opt) {
  FTBFS_EXPECTS(s < g.num_vertices());
  const WeightAssignment w(g, opt.weight_seed);
  PathSelector sel(g, w);

  sel.mask().clear();
  const SpResult tree = sel.w_sssp(s);  // copy: buffers are reused later

  FtStructure h;
  std::vector<bool> in_h(g.num_edges(), false);
  std::vector<Vertex> targets;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v != s && tree.reached(v)) {
      targets.push_back(v);
      if (!in_h[tree.parent_edge[v]]) {
        in_h[tree.parent_edge[v]] = true;
        ++h.stats.tree_edges;
      }
    }
  }
  h.stats.dijkstra_runs = sel.dijkstra_runs();  // the tree W-SSSP

  // Conflict tracking for the speculative schedule: a target is dirty iff a
  // commit since the current block's snapshot added an edge incident to it.
  std::vector<std::uint32_t> dirty(g.num_vertices(), 0);
  std::uint32_t dirty_epoch = 0;

  auto run_target = [&](Cons2Workspace& ws, Vertex v) {
    PerVertexRun run(g, ws.sel, ws.pi_pos, ws.aux_pos, s, v,
                     extract_path(tree, v), in_h, opt.classify_paths);
    return run.run();
  };

  auto commit_outcome = [&](Vertex v, VertexOutcome&& out) {
    for (const EdgeId e : out.added) {
      FTBFS_ENSURES(!in_h[e]);
      in_h[e] = true;
      const Edge& ed = g.edge(e);
      dirty[ed.u] = dirty_epoch;
      dirty[ed.v] = dirty_epoch;
    }
    h.stats.new_edges += out.added.size();
    h.stats.max_new_per_vertex =
        std::max(h.stats.max_new_per_vertex,
                 static_cast<std::uint64_t>(out.added.size()));
    h.stats.fault_pairs_considered += out.fault_pairs;
    h.stats.dijkstra_runs += out.dijkstra;
    h.stats.divergence_fallbacks += out.fallbacks;
    if (opt.classify_paths) {
      h.stats.classes.single += out.classes.single;
      h.stats.classes.a_pi_pi += out.classes.a_pi_pi;
      h.stats.classes.b_nodet += out.classes.b_nodet;
      h.stats.classes.c_indep += out.classes.c_indep;
      h.stats.classes.d_pi_interf += out.classes.d_pi_interf;
      h.stats.classes.e_d_interf += out.classes.e_d_interf;
      max_classes(h.stats.max_classes_per_vertex, out.classes);
      if (opt.record_sink) opt.record_sink(v, out.pi, out.records);
    }
  };
  auto bump_progress = [&] {
    if (opt.progress != nullptr) {
      opt.progress->fetch_add(1, std::memory_order_relaxed);
    }
  };

  const unsigned workers = resolve_jobs(opt.jobs, targets.size());
  ParallelBuildReport report;
  Cons2Workspace main_ws{g, w};
  if (workers <= 1) {
    for (const Vertex v : targets) {
      commit_outcome(v, run_target(main_ws, v));
      bump_progress();
    }
  } else {
    std::vector<std::unique_ptr<Cons2Workspace>> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
      pool.push_back(std::make_unique<Cons2Workspace>(g, w));
    }
    std::vector<VertexOutcome> slots(speculative_block_size(workers));
    run_speculate_commit(
        targets.size(), workers, /*on_block_start=*/[&] { ++dirty_epoch; },
        [&](unsigned worker, std::size_t idx, std::size_t slot) {
          slots[slot] = run_target(*pool[worker], targets[idx]);
          // Progress counts finished per-target work, not commits — block
          // commits land together, which would quantize the sampled rate the
          // bench_e13 windowed sweep reads from outside the process.
          bump_progress();
        },
        [&](std::size_t idx, std::size_t slot) {
          const Vertex v = targets[idx];
          VertexOutcome out = std::move(slots[slot]);
          if (dirty[v] == dirty_epoch) {
            // An earlier commit in this block touched a v-incident edge: the
            // speculative run may have seen a stale E(v,H). Re-run against
            // the true state — the sequential semantics, exactly.
            ++report.conflicts;
            out = run_target(main_ws, v);
          }
          commit_outcome(v, std::move(out));
        },
        &report);
  }
  report.workers = workers;
  if (opt.parallel_report != nullptr) *opt.parallel_report = report;

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_h[e]) h.edges.push_back(e);
  }
  return h;
}

}  // namespace ftbfs
