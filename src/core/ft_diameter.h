// f-FT-diameter (§1, "Easy case (2)"): D_f(G) is the maximum shortest-path
// distance under any fault set of size <= f-1. Observation 1.6 bounds the
// generic last-edge structure by O(D_f(G)^f · n) edges; the E4 experiment
// measures exactly that.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace ftbfs {

// max_v dist(s, v, G∖F) over all |F| <= k. Returns kInfHops (from spath/bfs.h)
// if some fault set disconnects a vertex from s.
[[nodiscard]] std::uint32_t ft_eccentricity(const Graph& g, Vertex s,
                                            unsigned k);

// max over all sources (the paper's D_{k+1}(G)). O(n · m^k) BFS runs — meant
// for small graphs and benchmarks.
[[nodiscard]] std::uint32_t ft_diameter(const Graph& g, unsigned k);

}  // namespace ftbfs
