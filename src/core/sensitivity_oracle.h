// Constant-time single-failure distance sensitivity oracle.
//
// The style of oracle the paper's related work builds over FT structures
// ([5,2]: "oracles for distances avoiding a failed vertex or link"): after
// O(n·m) preprocessing — one masked BFS per BFS-tree edge — answer
//
//     dist(s, v, G ∖ {e})   for any vertex v and any edge e, in O(1),
//
// using the observation that only tree edges on π(s,v) can change the
// distance, plus an Euler-tour ancestor test to detect that case. Space is
// O(Σ_v depth(v)) = O(n·D) words.
//
// This complements FtBfsOracle (which serves batched queries from the sparse
// structure): here preprocessing is heavier but per-(v,e) point queries are
// O(1), the classic time/space trade-off of the sensitivity-oracle line.
// OracleService (service/oracle_service.h) mounts this oracle as its fast
// path — `enable_point_oracle(s)` routes single-edge-fault distance and
// reachability requests from s here, ahead of every structure in the pool.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "spath/bfs.h"
#include "spath/tree_index.h"
#include "spath/weights.h"

namespace ftbfs {

class SingleFaultOracle {
 public:
  // Preprocesses g for source s: builds the W-unique BFS tree and the
  // replacement-distance table.
  SingleFaultOracle(const Graph& g, Vertex s, std::uint64_t weight_seed = 1);

  // dist(s, v, G) (kInfHops if unreachable). O(1).
  [[nodiscard]] std::uint32_t distance(Vertex v) const;

  // dist(s, v, G ∖ {e}) for any edge e of g. O(1).
  [[nodiscard]] std::uint32_t distance_avoiding(Vertex v, EdgeId e) const;

  [[nodiscard]] Vertex source() const { return source_; }
  [[nodiscard]] const TreeIndex& tree() const { return tree_index_; }

  // Total table entries (space diagnostics).
  [[nodiscard]] std::uint64_t table_entries() const { return table_.size(); }

 private:
  const Graph* g_;
  Vertex source_;
  SpResult sssp_;
  TreeIndex tree_index_;
  // For each vertex v (reached, != s): row of depth(v) entries,
  // row[i] = dist(s, v, G ∖ {i-th edge of π(s,v)}). Flattened.
  std::vector<std::uint32_t> table_;
  std::vector<std::uint64_t> row_offset_;  // size n+1
};

}  // namespace ftbfs
