#include "core/swap_ftbfs.h"

#include <algorithm>

#include "graph/mask.h"
#include "spath/bfs.h"
#include "spath/dijkstra.h"
#include "spath/tree_index.h"
#include "spath/weights.h"

namespace ftbfs {

SwapResult build_swap_ftbfs(const Graph& g, Vertex s,
                            const SwapFtbfsOptions& opt) {
  FTBFS_EXPECTS(s < g.num_vertices());
  const WeightAssignment w(g, opt.weight_seed);
  Dijkstra dij(g, w);
  const SpResult tree = dij.run(s);
  const TreeIndex index(g, tree, s);

  SwapResult out;
  std::vector<bool> in_h(g.num_edges(), false);
  std::vector<bool> is_tree(g.num_edges(), false);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v != s && tree.reached(v)) {
      is_tree[tree.parent_edge[v]] = true;
      if (!in_h[tree.parent_edge[v]]) {
        in_h[tree.parent_edge[v]] = true;
        ++out.swap.tree_edges;
      }
    }
  }

  // Best swap per tree edge, keyed by the child endpoint c of (parent(c), c):
  // candidate cost = dist(s, outside-endpoint) + 1 + dist_T(inside-endpoint, c)
  // where dist_T within the subtree is depth(a) - depth(c).
  std::vector<std::uint64_t> best_cost(g.num_vertices(),
                                       std::numeric_limits<std::uint64_t>::max());
  std::vector<EdgeId> best_edge(g.num_vertices(), kInvalidEdge);

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (is_tree[e]) continue;
    const Edge& ed = g.edge(e);
    if (!index.reached(ed.u) || !index.reached(ed.v)) continue;
    // The non-tree edge (u,v) crosses the cut of every tree edge on the
    // u→LCA and v→LCA chains. Walk both chains to the LCA.
    Vertex a = ed.u, b = ed.v;
    auto offer = [&](Vertex inside, Vertex outside_endpoint, Vertex cut_child) {
      const std::uint64_t cost =
          static_cast<std::uint64_t>(index.depth(outside_endpoint)) + 1 +
          (index.depth(inside) - index.depth(cut_child));
      if (cost < best_cost[cut_child]) {
        best_cost[cut_child] = cost;
        best_edge[cut_child] = e;
      }
    };
    // Climb the deeper side until both meet (LCA), offering the edge as a
    // swap for every tree edge passed.
    Vertex ca = a, cb = b;
    while (ca != cb) {
      if (index.depth(ca) >= index.depth(cb)) {
        offer(a, b, ca);
        ca = index.parent(ca);
      } else {
        offer(b, a, cb);
        cb = index.parent(cb);
      }
    }
  }

  for (Vertex c = 0; c < g.num_vertices(); ++c) {
    if (c == s || !index.reached(c)) continue;
    if (best_edge[c] == kInvalidEdge) {
      ++out.swap.uncovered_cuts;  // bridge edge: no swap exists
      continue;
    }
    if (!in_h[best_edge[c]]) {
      in_h[best_edge[c]] = true;
      ++out.swap.swap_edges;
    }
  }

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_h[e]) out.structure.edges.push_back(e);
  }
  out.structure.stats.tree_edges = out.swap.tree_edges;
  out.structure.stats.new_edges = out.swap.swap_edges;
  return out;
}

StretchReport measure_single_fault_stretch(const Graph& g, Vertex s,
                                           const FtStructure& h) {
  const Graph hg = materialize(g, h);
  Bfs g_bfs(g), h_bfs(hg);
  GraphMask g_mask(g), h_mask(hg);
  StretchReport report;
  double stretch_sum = 0.0;

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    g_mask.clear();
    g_mask.block_edge(e);
    const BfsResult& truth = g_bfs.run(s, &g_mask);
    h_mask.clear();
    const EdgeId he = hg.find_edge(g.edge(e).u, g.edge(e).v);
    if (he != kInvalidEdge) h_mask.block_edge(he);
    const BfsResult& got = h_bfs.run(s, &h_mask);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (v == s || truth.hops[v] == kInfHops) continue;
      ++report.comparisons;
      if (got.hops[v] == kInfHops) {
        ++report.disconnections;
        continue;
      }
      const double stretch = truth.hops[v] == 0
                                 ? 1.0
                                 : static_cast<double>(got.hops[v]) /
                                       static_cast<double>(truth.hops[v]);
      stretch_sum += stretch;
      report.max_stretch = std::max(report.max_stretch, stretch);
    }
  }
  const std::uint64_t finite = report.comparisons - report.disconnections;
  report.avg_stretch = finite > 0 ? stretch_sum / static_cast<double>(finite)
                                  : 1.0;
  return report;
}

}  // namespace ftbfs
