// Deterministic pseudo-random number generation.
//
// Every randomized component in the library (graph generators, weight
// perturbations, sampled verifiers) is seeded explicitly so that tests and
// benchmarks reproduce bit-identically across runs and machines. We avoid
// <random> distributions because their outputs are not portable across
// standard-library implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace ftbfs {

// SplitMix64: used to expand a single 64-bit seed into stream state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) without modulo bias (bitmask rejection).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    FTBFS_EXPECTS(bound > 0);
    std::uint64_t mask = bound - 1;
    mask |= mask >> 1;
    mask |= mask >> 2;
    mask |= mask >> 4;
    mask |= mask >> 8;
    mask |= mask >> 16;
    mask |= mask >> 32;
    while (true) {
      const std::uint64_t x = next_u64() & mask;
      if (x < bound) return x;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    FTBFS_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  [[nodiscard]] double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  [[nodiscard]] bool next_bool(double p_true) {
    return next_double() < p_true;
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

// Derives a sub-seed for a named component from a master seed; used so one
// instance seed yields independent streams for e.g. topology vs. weights.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master, std::uint64_t salt);

}  // namespace ftbfs
