#include "util/rng.h"

namespace ftbfs {

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t salt) {
  std::uint64_t s = master ^ (0x9e3779b97f4a7c15ULL * (salt + 1));
  // Two rounds of splitmix for avalanche.
  (void)splitmix64(s);
  return splitmix64(s);
}

}  // namespace ftbfs
