// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (GSL). Violations abort with a source location; they are
// programming errors, not recoverable conditions, so no exceptions are used.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ftbfs {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "ftbfs: %s violation: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace ftbfs

// Precondition on function arguments / object state.
#define FTBFS_EXPECTS(cond)                                              \
  ((cond) ? static_cast<void>(0)                                         \
          : ::ftbfs::contract_violation("precondition", #cond, __FILE__, \
                                        __LINE__))

// Postcondition / internal invariant.
#define FTBFS_ENSURES(cond)                                             \
  ((cond) ? static_cast<void>(0)                                        \
          : ::ftbfs::contract_violation("invariant", #cond, __FILE__,   \
                                        __LINE__))
