#include "util/concurrency.h"

#include <algorithm>
#include <thread>

namespace ftbfs {

unsigned hardware_workers() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1u : hardware;
}

unsigned clamp_workers(unsigned requested, std::size_t work,
                       bool cap_to_hardware) {
  unsigned workers = std::max(1u, requested);
  if (work < workers) workers = static_cast<unsigned>(std::max<std::size_t>(1, work));
  if (cap_to_hardware) workers = std::min(workers, hardware_workers());
  return workers;
}

unsigned resolve_jobs(unsigned jobs, std::size_t work) {
  if (jobs == 0) return clamp_workers(hardware_workers(), work);
  return clamp_workers(std::min(jobs, kMaxJobs), work, /*cap_to_hardware=*/false);
}

}  // namespace ftbfs
