// Aligned-console / CSV table printer used by the benchmark harnesses to emit
// paper-style result tables. Cells are strings; numeric helpers format with
// fixed precision so tables diff cleanly between runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ftbfs {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  // Sets the header row; must be called before add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Renders with column alignment and a title banner.
  void print(std::ostream& os) const;

  // Renders as CSV (header + rows), no banner.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers.
[[nodiscard]] std::string fmt_int(std::int64_t v);
[[nodiscard]] std::string fmt_u64(std::uint64_t v);
[[nodiscard]] std::string fmt_double(double v, int precision = 3);
// Scientific-ish compact format for large counts, e.g. "1.23e6".
[[nodiscard]] std::string fmt_compact(double v);

}  // namespace ftbfs
