// Least-squares power-law fitting on log-log data. The scaling experiments
// report the fitted exponent of |E(H)| ~ c * n^alpha, which is the quantity a
// reader compares against the paper's 5/3, 3/2, 2/3 and 1/2 bounds.
#pragma once

#include <cstddef>
#include <vector>

namespace ftbfs {

struct PowerFit {
  double exponent = 0.0;   // alpha in y = c * x^alpha
  double coefficient = 0.0;  // c
  double r_squared = 0.0;  // goodness of fit in log-log space
};

// Fits y = c * x^alpha through (x_i, y_i) pairs with x_i, y_i > 0.
// Requires at least two points with distinct x.
[[nodiscard]] PowerFit fit_power_law(const std::vector<double>& x,
                                     const std::vector<double>& y);

}  // namespace ftbfs
