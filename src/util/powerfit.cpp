#include "util/powerfit.h"

#include <cmath>

#include "util/assert.h"

namespace ftbfs {

PowerFit fit_power_law(const std::vector<double>& x,
                       const std::vector<double>& y) {
  FTBFS_EXPECTS(x.size() == y.size());
  FTBFS_EXPECTS(x.size() >= 2);

  const std::size_t n = x.size();
  double sum_lx = 0, sum_ly = 0, sum_lxlx = 0, sum_lxly = 0;
  for (std::size_t i = 0; i < n; ++i) {
    FTBFS_EXPECTS(x[i] > 0 && y[i] > 0);
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sum_lx += lx;
    sum_ly += ly;
    sum_lxlx += lx * lx;
    sum_lxly += lx * ly;
  }
  const double denom = static_cast<double>(n) * sum_lxlx - sum_lx * sum_lx;
  FTBFS_EXPECTS(denom > 0);  // needs at least two distinct x values

  PowerFit fit;
  fit.exponent = (static_cast<double>(n) * sum_lxly - sum_lx * sum_ly) / denom;
  const double intercept =
      (sum_ly - fit.exponent * sum_lx) / static_cast<double>(n);
  fit.coefficient = std::exp(intercept);

  // R^2 in log space.
  const double mean_ly = sum_ly / static_cast<double>(n);
  double ss_tot = 0, ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ly = std::log(y[i]);
    const double pred = intercept + fit.exponent * std::log(x[i]);
    ss_tot += (ly - mean_ly) * (ly - mean_ly);
    ss_res += (ly - pred) * (ly - pred);
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace ftbfs
