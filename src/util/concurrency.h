// Shared worker-count policy. Every layer that spawns a crew — batched
// queries, the serve front-ends, the parallel constructions, the benches —
// used to hand-roll the same min(requested, work, hardware_concurrency())
// clamp with the same ==0 fallback; this header is the one copy.
#pragma once

#include <cstddef>

namespace ftbfs {

// std::thread::hardware_concurrency() with its 0-means-unknown fallback to 1.
[[nodiscard]] unsigned hardware_workers();

// The shared worker-count clamp: max(1, min(requested, work, hardware)).
// `cap_to_hardware = false` drops the hardware term for callers that
// intentionally oversubscribe — deterministic row partitioning in the
// simulator, and determinism tests that must exercise real interleavings
// even on small machines.
[[nodiscard]] unsigned clamp_workers(unsigned requested, std::size_t work,
                                     bool cap_to_hardware = true);

// Sanity ceiling for an explicit --jobs request.
inline constexpr unsigned kMaxJobs = 256;

// Resolves a --jobs style knob: 0 means auto (hardware_workers(), hardware-
// clamped); explicit values are honored without the hardware clamp — the
// parallel builds are byte-identical at any job count, so oversubscribing is
// safe and the determinism tests rely on it — bounded by the number of
// independent work items and kMaxJobs.
[[nodiscard]] unsigned resolve_jobs(unsigned jobs, std::size_t work);

}  // namespace ftbfs
