// Deterministic fault injection (failpoints) for the serving stack.
//
// Every syscall wrapper and fallible hot-path branch in src/net/,
// src/persist/, and src/service/ consults a *named* failpoint before doing
// the real work. Disarmed — the only state production traffic ever sees —
// a failpoint costs one relaxed atomic load of a pointer that is null, and
// the injected-failure branch is never taken; there is no lock, no RNG, no
// clock read on that path. Armed, the failpoint evaluates a small action
// program against a seeded deterministic RNG, so a chaos run is exactly
// reproducible from its schedule string.
//
// Schedule grammar (the FTBFS_FAILPOINTS environment variable and the
// `ftbfs serve --failpoints` flag both speak it):
//
//   schedule  := entry (';' entry)*
//   entry     := name '=' action
//   action    := 'err(' ERRNO [',' param]* ')'     inject errno, syscall fails
//              | 'shortwrite(' [param]* ')'        truncate a write to half
//              | 'sleep(' 'ms=' N [',' param]* ')' delay, then proceed
//   param     := 'p=' FLOAT                        firing probability (def. 1)
//              | 'seed=' N                         RNG seed (default 1)
//              | 'count=' N                        fire at most N times (0 = no
//                                                  limit)
//   ERRNO     := EAGAIN | EINTR | ENOSPC | EMFILE | ENFILE | ECONNRESET |
//                EPIPE | EIO | ENOMEM | a plain integer
//
// Example: FTBFS_FAILPOINTS="net.write=err(EAGAIN,p=0.01,seed=42);
//          persist.write=shortwrite(p=0.5,seed=7)"
//
// Registered point names (grep for fp::site to enumerate):
//   net.accept    accept4() in the epoll loop
//   net.read      read() from a connection
//   net.write     send() to a connection
//   persist.write write() of the snapshot temp file
//   persist.fsync fsync() of the snapshot temp file / parent directory
//   persist.mmap  mmap() of a snapshot being loaded (falls back to read())
//   service.build_alloc   allocation inside a lazy structure build
//   service.execute       request execution (sleep = a slow backend)
//
// Thread-safety: site() interns under a mutex (call-sites cache the
// reference in a function-local static); eval() on an armed point locks that
// point's mutex — armed points are a test-only regime where determinism
// beats scalability. arm()/disarm_all() may race with eval() safely, but the
// action a concurrent eval sees is unspecified mid-arm; tests arm before
// opening traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace ftbfs::fp {

// What one evaluation of an armed failpoint decided. kNone = proceed.
struct Outcome {
  enum class Kind { kNone, kErr, kShortWrite, kSleep };
  Kind kind = Kind::kNone;
  int err = 0;           // kErr: errno the wrapped syscall should fail with
  std::uint32_t ms = 0;  // kSleep: delay before proceeding
};

class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}
  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  // The disarmed fast path: one relaxed load, branch predicted not-taken.
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  // Parsed form of one schedule entry. Public only so the parser helpers in
  // failpoint.cpp can build one; callers never touch it.
  struct Action {
    Outcome::Kind kind = Outcome::Kind::kNone;
    int err = 0;
    std::uint32_t sleep_ms = 0;
    double p = 1.0;              // firing probability per evaluation
    std::uint64_t seed = 1;      // RNG seed (state below starts from it)
    std::uint64_t count = 0;     // max firings; 0 = unlimited
    // Mutable evaluation state (under mutex_).
    std::uint64_t rng = 1;
    std::uint64_t fired = 0;
    std::string spec;            // entry as parsed, for active_schedule()
  };

 private:
  friend Failpoint& site(const std::string& name);
  friend Outcome eval_armed(Failpoint& f);
  friend bool arm(const std::string& schedule, std::string* error);
  friend void disarm_all();
  friend std::string active_schedule();

  std::string name_;
  std::atomic<bool> armed_{false};
  std::mutex mutex_;  // guards action_ contents while armed
  Action action_;
};

// Interns `name` (stable address for the process's life). Call-sites cache:
//   static Failpoint& s = fp::site("net.read");
[[nodiscard]] Failpoint& site(const std::string& name);

// Slow path of eval(); call only when f.armed().
[[nodiscard]] Outcome eval_armed(Failpoint& f);

// Evaluates a failpoint. Disarmed: one relaxed load, returns kNone.
[[nodiscard]] inline Outcome eval(Failpoint& f) {
  if (__builtin_expect(f.armed(), 0)) return eval_armed(f);
  return Outcome{};
}

// Convenience for syscall wrappers that only inject errnos: 0 = proceed,
// otherwise the errno to fail with. kSleep outcomes sleep here; kShortWrite
// outcomes are meaningless for non-write syscalls and proceed.
[[nodiscard]] int fail_errno(Failpoint& f);

// Parses and arms a schedule. Returns false (and sets *error) on a malformed
// schedule, leaving previously armed points untouched. Arming a point twice
// replaces its action. An empty schedule is valid and arms nothing.
bool arm(const std::string& schedule, std::string* error = nullptr);

// Arms from the FTBFS_FAILPOINTS environment variable if set; a malformed
// value is a startup error worth dying for in a chaos harness, so this
// throws std::runtime_error instead of half-arming. Returns the schedule
// armed ("" when the variable is unset).
std::string arm_from_env();

// Disarms every point (the registry itself persists; sites stay interned).
void disarm_all();

// The currently armed schedule, normalized to grammar form — what a chaos CI
// job uploads as its reproduction artifact. "" when nothing is armed.
[[nodiscard]] std::string active_schedule();

}  // namespace ftbfs::fp
