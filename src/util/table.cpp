#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/assert.h"

namespace ftbfs {

void Table::set_header(std::vector<std::string> header) {
  FTBFS_EXPECTS(rows_.empty());
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  FTBFS_EXPECTS(header_.empty() || row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        for (std::size_t pad = row[i].size(); pad < width[i] + 2; ++pad) {
          os << ' ';
        }
      }
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < width.size(); ++i) total += width[i] + 2;
    for (std::size_t i = 0; i + 2 < total; ++i) os << '-';
    os << '\n';
  }
  for (const auto& row : rows_) emit(row);
  os << '\n';
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_int(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_compact(double v) {
  char buf[64];
  if (v != 0.0 && (v >= 1e6 || v <= -1e6)) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace ftbfs
