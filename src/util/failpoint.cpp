#include "util/failpoint.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ftbfs::fp {

namespace {

struct Registry {
  std::mutex mutex;
  // Stable addresses: sites are interned once and never removed.
  std::map<std::string, std::unique_ptr<Failpoint>> sites;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives every static caller
  return *r;
}

// splitmix64: full-period, seedable from any value including 0.
std::uint64_t next_rng(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int errno_by_name(const std::string& s) {
  if (s == "EAGAIN") return EAGAIN;
  if (s == "EINTR") return EINTR;
  if (s == "ENOSPC") return ENOSPC;
  if (s == "EMFILE") return EMFILE;
  if (s == "ENFILE") return ENFILE;
  if (s == "ECONNRESET") return ECONNRESET;
  if (s == "EPIPE") return EPIPE;
  if (s == "EIO") return EIO;
  if (s == "ENOMEM") return ENOMEM;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v <= 0 || v > 4096) return -1;
  return static_cast<int>(v);
}

// Parses one `key=value` action parameter into `a`; false on a bad one.
bool apply_param(Failpoint::Action& a, const std::string& key,
                 const std::string& value) {
  char* end = nullptr;
  if (key == "p") {
    const double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      return false;
    }
    a.p = p;
    return true;
  }
  const unsigned long long u = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  if (key == "seed") {
    a.seed = u;
    return true;
  }
  if (key == "count") {
    a.count = u;
    return true;
  }
  if (key == "ms") {
    if (u > 600000) return false;  // cap: a typo must not hang a harness
    a.sleep_ms = static_cast<std::uint32_t>(u);
    return true;
  }
  return false;
}

// Parses `action(args)` into `a`; false with *why on malformed input.
bool parse_action(const std::string& text, Failpoint::Action& a,
                  std::string* why) {
  const std::size_t open = text.find('(');
  if (open == std::string::npos || text.back() != ')') {
    *why = "action '" + text + "' must look like name(args)";
    return false;
  }
  const std::string verb = text.substr(0, open);
  const std::string args = text.substr(open + 1, text.size() - open - 2);
  if (verb == "err") {
    a.kind = Outcome::Kind::kErr;
  } else if (verb == "shortwrite") {
    a.kind = Outcome::Kind::kShortWrite;
  } else if (verb == "sleep") {
    a.kind = Outcome::Kind::kSleep;
  } else {
    *why = "unknown action '" + verb + "' (err | shortwrite | sleep)";
    return false;
  }
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= args.size() && !args.empty()) {
    const std::size_t comma = args.find(',', start);
    parts.push_back(args.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  bool have_errno = false;
  for (const std::string& part : parts) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      if (a.kind != Outcome::Kind::kErr || have_errno) {
        *why = "unexpected bare argument '" + part + "'";
        return false;
      }
      a.err = errno_by_name(part);
      if (a.err < 0) {
        *why = "unknown errno '" + part + "'";
        return false;
      }
      have_errno = true;
      continue;
    }
    if (!apply_param(a, part.substr(0, eq), part.substr(eq + 1))) {
      *why = "bad parameter '" + part + "'";
      return false;
    }
  }
  if (a.kind == Outcome::Kind::kErr && !have_errno) {
    *why = "err() needs an errno, e.g. err(EAGAIN)";
    return false;
  }
  if (a.kind == Outcome::Kind::kSleep && a.sleep_ms == 0) {
    *why = "sleep() needs ms=N";
    return false;
  }
  a.rng = a.seed;
  a.spec = text;
  return true;
}

}  // namespace

Failpoint& site(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard lock(r.mutex);
  auto it = r.sites.find(name);
  if (it == r.sites.end()) {
    it = r.sites.emplace(name, std::make_unique<Failpoint>(name)).first;
  }
  return *it->second;
}

Outcome eval_armed(Failpoint& f) {
  const std::lock_guard lock(f.mutex_);
  Failpoint::Action& a = f.action_;
  if (!f.armed_.load(std::memory_order_relaxed)) return {};  // raced disarm
  if (a.count != 0 && a.fired >= a.count) return {};
  if (a.p < 1.0) {
    // Top 53 bits → uniform double in [0,1): deterministic per (seed, call#).
    const double roll =
        static_cast<double>(next_rng(a.rng) >> 11) * 0x1.0p-53;
    if (roll >= a.p) return {};
  }
  ++a.fired;
  Outcome out;
  out.kind = a.kind;
  out.err = a.err;
  out.ms = a.sleep_ms;
  return out;
}

int fail_errno(Failpoint& f) {
  const Outcome o = eval(f);
  switch (o.kind) {
    case Outcome::Kind::kErr:
      return o.err;
    case Outcome::Kind::kSleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(o.ms));
      return 0;
    case Outcome::Kind::kShortWrite:
    case Outcome::Kind::kNone:
      return 0;
  }
  return 0;
}

bool arm(const std::string& schedule, std::string* error) {
  // Parse the whole schedule before arming anything: a malformed tail must
  // not leave a half-armed chaos run behind.
  std::vector<std::pair<std::string, Failpoint::Action>> parsed;
  std::size_t start = 0;
  while (start < schedule.size()) {
    std::size_t semi = schedule.find(';', start);
    if (semi == std::string::npos) semi = schedule.size();
    const std::string entry = schedule.substr(start, semi - start);
    start = semi + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) {
        *error = "failpoint entry '" + entry + "' must look like name=action";
      }
      return false;
    }
    Failpoint::Action a;
    std::string why;
    if (!parse_action(entry.substr(eq + 1), a, &why)) {
      if (error != nullptr) *error = entry.substr(0, eq) + ": " + why;
      return false;
    }
    parsed.emplace_back(entry.substr(0, eq), std::move(a));
  }
  for (auto& [name, action] : parsed) {
    Failpoint& f = site(name);
    const std::lock_guard lock(f.mutex_);
    f.action_ = std::move(action);
    f.armed_.store(true, std::memory_order_release);
  }
  return true;
}

std::string arm_from_env() {
  const char* env = std::getenv("FTBFS_FAILPOINTS");
  if (env == nullptr || *env == '\0') return {};
  std::string error;
  if (!arm(env, &error)) {
    throw std::runtime_error("FTBFS_FAILPOINTS: " + error);
  }
  return env;
}

void disarm_all() {
  Registry& r = registry();
  const std::lock_guard lock(r.mutex);
  for (auto& [name, f] : r.sites) {
    const std::lock_guard point_lock(f->mutex_);
    f->armed_.store(false, std::memory_order_release);
    f->action_ = Failpoint::Action{};
  }
}

std::string active_schedule() {
  Registry& r = registry();
  const std::lock_guard lock(r.mutex);
  std::string out;
  for (auto& [name, f] : r.sites) {
    const std::lock_guard point_lock(f->mutex_);
    if (!f->armed_.load(std::memory_order_relaxed)) continue;
    if (!out.empty()) out += ';';
    out += name;
    out += '=';
    out += f->action_.spec;
  }
  return out;
}

}  // namespace ftbfs::fp
