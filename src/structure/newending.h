// Records of new-ending replacement paths and their classification into the
// paper's five classes (Fig. 7). Cons2FTBFS emits one record per new edge of
// each vertex v; classify_new_ending() reproduces the partition
//   A = (π,π),  B = P_nodet,  C = P_indep,  D = I_π,  E = I_D,
// whose per-class O(√n)/O(n^{2/3}) bounds are the heart of the size analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "core/ftbfs_common.h"
#include "graph/graph.h"
#include "spath/path.h"

namespace ftbfs {

struct NewEndingRecord {
  enum class Kind { kSingle, kPiPi, kPiD };

  Kind kind = Kind::kSingle;
  Path path;            // the replacement path P
  EdgeId f1 = kInvalidEdge;  // F1(P): first failing edge, on π(s,v)
  EdgeId f2 = kInvalidEdge;  // F2(P): second failing edge (invalid for kSingle)
  // For kPiD only: the detour D(P) of P_{s,v,{f1}} (including endpoints) and
  // the position of its last vertex y(D(P)) on π(s,v).
  Path detour;
  std::size_t detour_y_pi_index = 0;
};

// Interference (§3.3.2): P interferes with P' iff F2(P') ∈ E(P) ∖ E(D(P)).
// Defined between (π,D) records.
[[nodiscard]] bool interferes(const Graph& g, const NewEndingRecord& p,
                              const NewEndingRecord& p_prime);

// π-interference: P interferes with P' and F1(P) lies on π(y(D(P')), v),
// i.e. at π-position >= detour_y_pi_index of P'. `pi` is π(s,v).
[[nodiscard]] bool pi_interferes(const Graph& g, const Path& pi,
                                 const NewEndingRecord& p,
                                 const NewEndingRecord& p_prime);

// Partitions the records of one target vertex v into the five classes.
[[nodiscard]] PathClassCounts classify_new_ending(
    const Graph& g, const Path& pi, const std::vector<NewEndingRecord>& recs);

}  // namespace ftbfs
