#include "structure/kernel.h"

#include <algorithm>

namespace ftbfs {

bool KernelGraph::contains_vertex(Vertex v) const {
  return std::binary_search(vertices.begin(), vertices.end(), v);
}

bool KernelGraph::contains_edge(EdgeId e) const {
  return std::binary_search(edges.begin(), edges.end(), e);
}

KernelGraph build_kernel(const Graph& g, const std::vector<Detour>& detours) {
  KernelGraph k;
  k.order.resize(detours.size());
  for (std::size_t i = 0; i < detours.size(); ++i) k.order[i] = i;
  // (x,y)-order: decreasing x position; decreasing y position on ties
  // (§3.2.1). Stable to keep determinism for fully tied detours.
  std::stable_sort(k.order.begin(), k.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (detours[a].x_pi_index != detours[b].x_pi_index) {
                       return detours[a].x_pi_index > detours[b].x_pi_index;
                     }
                     return detours[a].y_pi_index > detours[b].y_pi_index;
                   });

  k.prefix.resize(detours.size());
  k.w.assign(detours.size(), kInvalidVertex);
  k.truncated.assign(detours.size(), false);
  k.breaker.assign(detours.size(), kNpos);

  // Dense scratch indexed by vertex id (vertex ids are dense): membership and
  // first-adding-detour owner, replacing the hash set/map pair — the inner
  // loop is a pair of array reads instead of two hash probes.
  std::vector<char> present(g.num_vertices(), 0);
  std::vector<std::size_t> owner(g.num_vertices(), kNpos);

  for (const std::size_t idx : k.order) {
    const Path& d = detours[idx].verts;
    std::size_t stop = d.size() - 1;  // default: whole detour, w = y
    for (std::size_t p = 0; p < d.size(); ++p) {
      if (present[d[p]] != 0) {
        stop = p;
        break;
      }
    }
    k.w[idx] = d[stop];
    k.truncated[idx] = d[stop] != detours[idx].y;
    k.prefix[idx] = subpath(d, 0, stop);
    if (k.truncated[idx]) {
      FTBFS_ENSURES(owner[d[stop]] != kNpos);
      k.breaker[idx] = owner[d[stop]];
    }
    for (std::size_t p = 0; p <= stop; ++p) {
      if (present[d[p]] == 0) {
        present[d[p]] = 1;
        owner[d[p]] = idx;
        k.vertices.push_back(d[p]);
      }
    }
  }

  std::sort(k.vertices.begin(), k.vertices.end());
  for (std::size_t i = 0; i < detours.size(); ++i) {
    const Path& pre = k.prefix[i];
    for (std::size_t p = 0; p + 1 < pre.size(); ++p) {
      const EdgeId e = g.find_edge(pre[p], pre[p + 1]);
      FTBFS_ENSURES(e != kInvalidEdge);
      k.edges.push_back(e);
    }
  }
  std::sort(k.edges.begin(), k.edges.end());
  k.edges.erase(std::unique(k.edges.begin(), k.edges.end()), k.edges.end());
  return k;
}

std::vector<Path> kernel_regions(const Graph& g,
                                 const std::vector<Detour>& detours,
                                 const KernelGraph& kernel) {
  // Kernel adjacency as dense per-vertex lists (vertex ids are dense; the
  // hash-map version paid a probe per walk step). Only kernel vertices get
  // non-empty lists, so the O(n) spine is pointers-only.
  struct HalfEdge {
    Vertex to;
    EdgeId id;
  };
  std::vector<std::vector<HalfEdge>> adj(g.num_vertices());
  for (const EdgeId e : kernel.edges) {
    const Edge& ed = g.edge(e);
    adj[ed.u].push_back({ed.v, e});
    adj[ed.v].push_back({ed.u, e});
  }

  // Region delimiters: X1 ∪ W1 plus any vertex of kernel-degree != 2
  // (branch points always lie in W1 for y-interleaved families; including
  // them keeps the decomposition well-defined for arbitrary inputs).
  // Dense membership flag plus an ordered list for the deterministic sweep.
  std::vector<char> special(g.num_vertices(), 0);
  std::vector<Vertex> special_list;
  const auto mark_special = [&](Vertex v) {
    if (special[v] == 0) {
      special[v] = 1;
      special_list.push_back(v);
    }
  };
  for (std::size_t i = 0; i < detours.size(); ++i) {
    if (!kernel.prefix[i].empty()) {
      mark_special(detours[i].x);
      mark_special(kernel.w[i]);
    }
  }
  for (const Vertex v : kernel.vertices) {
    if (adj[v].size() != 2 && !adj[v].empty()) mark_special(v);
  }

  std::vector<char> visited(g.num_edges(), 0);
  std::vector<Path> regions;
  auto walk = [&](Vertex start, const HalfEdge& first) {
    Path region = {start};
    Vertex prev = start;
    HalfEdge step = first;
    // The step bound guards against a (theoretically impossible) pure cycle
    // with no delimiter vertex.
    for (std::size_t steps = 0; steps <= kernel.edges.size(); ++steps) {
      visited[step.id] = 1;
      region.push_back(step.to);
      if (special[step.to] != 0) break;
      const auto& nexts = adj[step.to];
      FTBFS_ENSURES(nexts.size() == 2);
      const HalfEdge& cont = nexts[0].to == prev ? nexts[1] : nexts[0];
      prev = step.to;
      step = cont;
    }
    regions.push_back(std::move(region));
  };

  for (const Vertex sp : special_list) {
    for (const HalfEdge& he : adj[sp]) {
      if (visited[he.id] == 0) walk(sp, he);
    }
  }
  // Defensive: pure cycles without special vertices cannot arise from detour
  // prefixes (each prefix starts at an X1 vertex), but sweep leftovers anyway.
  for (const EdgeId e : kernel.edges) {
    if (visited[e] == 0) {
      const Edge& ed = g.edge(e);
      walk(ed.u, HalfEdge{ed.v, e});
    }
  }
  return regions;
}

}  // namespace ftbfs
