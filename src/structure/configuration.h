// Pairwise detour configurations (Definition 3.7 and Fig. 3), plus the
// fw/rev direction refinement of §3.2.1 (Fig. 4).
//
// For two detours with x(D1) <= x(D2) (roles swapped if needed):
//   Non-nested:        y1 <  x2
//   Nested:            x1 <  x2 <  y2 <  y1
//   Interleaved:       x1 <  x2 <  y1 <  y2   (fw or rev by shared-segment direction)
//   x-Interleaved:     x1 == x2 <  y1 <  y2
//   y-Interleaved:     x1 <  x2 <  y1 == y2
//   (x,y)-Interleaved: x1 <  y1 == x2 <  y2
// plus Identical (same endpoints; by Claim 3.6 then the whole detours agree).
#pragma once

#include <optional>

#include "structure/detour.h"

namespace ftbfs {

enum class DetourConfig {
  kNonNested,
  kNested,
  kInterleaved,
  kXInterleaved,
  kYInterleaved,
  kXYInterleaved,
  kIdentical,
};

[[nodiscard]] const char* to_string(DetourConfig c);

struct PairClassification {
  DetourConfig config = DetourConfig::kNonNested;
  // True if the inputs were swapped to establish x(D1) <= x(D2) (with y as
  // tie-break for equal x).
  bool swapped = false;
  // Share at least one vertex.
  bool dependent = false;
  // For dependent pairs: whether the common segment is traversed in the same
  // direction by both detours (fw-interleaved) or opposite (rev-interleaved,
  // always the case for (x,y)-interleaved). Meaningless when independent.
  bool same_direction = false;
};

// Classifies the pair; both detours must come from the same DetourSet (same
// π). Positions on π are taken from the Detour records.
[[nodiscard]] PairClassification classify_detours(const Detour& d1,
                                                  const Detour& d2);

// The excluded suffix of Claim 3.12: for a dependent pair with
// x(D1) <= x(D2) <= y(D1) < y(D2) (interleaved, x-interleaved or
// (x,y)-interleaved after normalization), the segment L1 = D1[w, y(D1)] with
// w = Last(D2, D1) is D1-excluded — no new-ending path with detour D1 places
// its second fault there. Returns nullopt when the preconditions do not hold
// or the segment is a single vertex. The inputs may be passed in either
// order; the suffix always belongs to the detour playing the D1 role, which
// is reported via `excluded_of_first`.
struct ExcludedSegment {
  Path segment;            // L1, at least one edge
  bool excluded_of_first;  // true: L1 ⊆ d1 (as passed); false: L1 ⊆ d2
};
[[nodiscard]] std::optional<ExcludedSegment> excluded_suffix(const Detour& d1,
                                                             const Detour& d2);

}  // namespace ftbfs
