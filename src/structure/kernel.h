// The kernel subgraph K(D) of a detour collection (§3.2.2).
//
// Detours are inserted in (x,y)-order (deepest x first; deeper y breaks ties);
// each contributes only its prefix D_i[x_i, w_i] up to the first vertex w_i
// already present. Truncated detours remember a *breaker* — an earlier detour
// whose kept prefix contains w_i. Lemma 3.14 (tested, not assumed): the kernel
// contains D[x, q2] for the second fault (q1,q2) of every new-ending (π,D)
// path whose detour is in D, so analyses may work inside K(D) instead of the
// full union.
//
// Regions: the kernel decomposes into maximal detour fragments delimited by
// the endpoint set X1 ∪ W1; Claim 3.29 bounds their number by 2·|D|.
#pragma once

#include <cstddef>
#include <vector>

#include "structure/detour.h"

namespace ftbfs {

struct KernelGraph {
  // Indices into the input detour vector, in insertion ((x,y)) order.
  std::vector<std::size_t> order;
  // Per input detour (parallel to the input vector):
  std::vector<Path> prefix;          // D_i[x_i, w_i] kept in the kernel
  std::vector<Vertex> w;             // w_i (== y_i for non-truncated detours)
  std::vector<bool> truncated;       // w_i != y_i
  std::vector<std::size_t> breaker;  // input index of Ψ(D_i); kNpos if none

  // Flattened vertex/edge sets of the kernel (edges as vertex pairs of g).
  std::vector<Vertex> vertices;        // sorted unique
  std::vector<EdgeId> edges;           // sorted unique

  [[nodiscard]] bool contains_vertex(Vertex v) const;
  [[nodiscard]] bool contains_edge(EdgeId e) const;
};

// Builds K(D) over the given detours (all from the same DetourSet).
[[nodiscard]] KernelGraph build_kernel(const Graph& g,
                                       const std::vector<Detour>& detours);

// Decomposes the kernel into regions: maximal kernel subpaths whose endpoints
// lie in X1 ∪ W1 and whose interior avoids X1 ∪ W1 (and has kernel-degree 2).
// Returns the number of regions (the E9/Claim 3.29 statistic) and optionally
// the regions themselves.
[[nodiscard]] std::vector<Path> kernel_regions(const Graph& g,
                                               const std::vector<Detour>& detours,
                                               const KernelGraph& kernel);

}  // namespace ftbfs
