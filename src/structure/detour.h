// Detour extraction (§3.2): the detour segment D_i = P_{s,v,{e_i}} ∖ π(s,v)
// of each single-fault replacement path, with its endpoints x(D_i), y(D_i) on
// π(s,v). These objects drive the entire structural theory of the paper —
// configurations (Def. 3.7), the kernel subgraph (§3.2.2), and the exclusion
// lemmas (Cl. 3.12) are all statements about them.
#pragma once

#include <vector>

#include "core/selector.h"
#include "graph/graph.h"
#include "spath/path.h"
#include "spath/weights.h"

namespace ftbfs {

struct Detour {
  Path verts;  // x = verts.front() ... y = verts.back(); interior off π
  Vertex x = kInvalidVertex;
  Vertex y = kInvalidVertex;
  std::size_t x_pi_index = 0;  // position of x on π(s,v)
  std::size_t y_pi_index = 0;  // position of y on π(s,v)
  std::size_t protected_edge_index = 0;  // i: the π edge e_i the detour covers
};

struct DetourSet {
  Path pi;                     // π(s,v)
  std::vector<Detour> detours;  // one per π edge whose failure keeps v reachable
};

// Computes π(s,v) and all single-fault detours for target v, using exactly the
// selection rule of Cons2FTBFS step (1) (earliest π-divergence). The caller
// provides the selector so the scratch state is shared across targets.
[[nodiscard]] DetourSet compute_detours(PathSelector& sel, Vertex s, Vertex v);

// First(A, B): the first vertex appearing on A that is also on B, or
// kInvalidVertex if the paths are vertex-disjoint. Last(A, B) symmetric.
[[nodiscard]] Vertex first_common(const Path& a, const Path& b);
[[nodiscard]] Vertex last_common(const Path& a, const Path& b);

// True if the detours share at least one vertex (the paper's "dependent").
[[nodiscard]] bool detours_dependent(const Detour& d1, const Detour& d2);

}  // namespace ftbfs
