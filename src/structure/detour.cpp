#include "structure/detour.h"

#include <algorithm>

#include "spath/dijkstra.h"

namespace ftbfs {

DetourSet compute_detours(PathSelector& sel, Vertex s, Vertex v) {
  FTBFS_EXPECTS(s != v);
  DetourSet out;
  sel.mask().clear();
  const SpResult tree = sel.w_sssp(s);
  FTBFS_EXPECTS(tree.reached(v));
  out.pi = extract_path(tree, v);

  VertexIndexMap pi_pos(sel.graph().num_vertices());
  pi_pos.bind(out.pi);
  for (std::size_t i = 0; i + 1 < out.pi.size(); ++i) {
    const auto selection = select_single_fault(sel, out.pi, pi_pos, i);
    if (!selection) continue;
    Detour d;
    d.verts = selection->detour;
    d.x = selection->x;
    d.y = selection->y;
    d.x_pi_index = selection->x_pi_index;
    d.y_pi_index = selection->y_pi_index;
    d.protected_edge_index = i;
    out.detours.push_back(std::move(d));
  }
  return out;
}

Vertex first_common(const Path& a, const Path& b) {
  for (const Vertex w : a) {
    if (std::find(b.begin(), b.end(), w) != b.end()) return w;
  }
  return kInvalidVertex;
}

Vertex last_common(const Path& a, const Path& b) {
  for (std::size_t i = a.size(); i-- > 0;) {
    if (std::find(b.begin(), b.end(), a[i]) != b.end()) return a[i];
  }
  return kInvalidVertex;
}

bool detours_dependent(const Detour& d1, const Detour& d2) {
  return first_common(d1.verts, d2.verts) != kInvalidVertex;
}

}  // namespace ftbfs
