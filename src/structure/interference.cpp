#include "structure/newending.h"

#include "util/assert.h"

namespace ftbfs {

bool interferes(const Graph& g, const NewEndingRecord& p,
                const NewEndingRecord& p_prime) {
  if (p.kind != NewEndingRecord::Kind::kPiD ||
      p_prime.kind != NewEndingRecord::Kind::kPiD) {
    return false;
  }
  if (&p == &p_prime) return false;
  const EdgeId f2 = p_prime.f2;
  FTBFS_EXPECTS(f2 != kInvalidEdge);
  return contains_edge(g, p.path, f2) && !contains_edge(g, p.detour, f2);
}

bool pi_interferes(const Graph& g, const Path& pi, const NewEndingRecord& p,
                   const NewEndingRecord& p_prime) {
  if (!interferes(g, p, p_prime)) return false;
  // F1(P) = (pi[a], pi[a+1]); it lies on π(y', v) iff a >= index of y'.
  const Edge& e = g.edge(p.f1);
  const std::size_t a_pos = index_of(pi, e.u);
  const std::size_t b_pos = index_of(pi, e.v);
  FTBFS_EXPECTS(a_pos != kNpos && b_pos != kNpos);
  const std::size_t edge_pos = std::min(a_pos, b_pos);
  return edge_pos >= p_prime.detour_y_pi_index;
}

PathClassCounts classify_new_ending(const Graph& g, const Path& pi,
                                    const std::vector<NewEndingRecord>& recs) {
  PathClassCounts counts;
  // Gather the (π,D) records; A and `single` are immediate.
  std::vector<const NewEndingRecord*> pid;
  for (const NewEndingRecord& r : recs) {
    switch (r.kind) {
      case NewEndingRecord::Kind::kSingle:
        ++counts.single;
        break;
      case NewEndingRecord::Kind::kPiPi:
        ++counts.a_pi_pi;
        break;
      case NewEndingRecord::Kind::kPiD:
        pid.push_back(&r);
        break;
    }
  }

  for (const NewEndingRecord* p : pid) {
    // Class B: P does not intersect the edges of its own detour.
    bool intersects_detour = false;
    for (std::size_t i = 0; i + 1 < p->detour.size() && !intersects_detour;
         ++i) {
      const EdgeId de = g.find_edge(p->detour[i], p->detour[i + 1]);
      FTBFS_EXPECTS(de != kInvalidEdge);
      if (contains_edge(g, p->path, de)) intersects_detour = true;
    }
    if (!intersects_detour) {
      ++counts.b_nodet;
      continue;
    }
    // Class C: independent of every other path (mutually non-interfering).
    bool independent = true;
    for (const NewEndingRecord* q : pid) {
      if (q == p) continue;
      if (interferes(g, *p, *q) || interferes(g, *q, *p)) {
        independent = false;
        break;
      }
    }
    if (independent) {
      ++counts.c_indep;
      continue;
    }
    // Class D: P π-interferes with every path it interferes with (vacuously
    // true when I(P) is empty but some other path interferes with P).
    bool all_pi = true;
    for (const NewEndingRecord* q : pid) {
      if (q == p) continue;
      if (interferes(g, *p, *q) && !pi_interferes(g, pi, *p, *q)) {
        all_pi = false;
        break;
      }
    }
    if (all_pi) {
      ++counts.d_pi_interf;
    } else {
      ++counts.e_d_interf;  // Class E: D-interfering
    }
  }
  return counts;
}

}  // namespace ftbfs
