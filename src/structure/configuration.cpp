#include "structure/configuration.h"

namespace ftbfs {

const char* to_string(DetourConfig c) {
  switch (c) {
    case DetourConfig::kNonNested:
      return "non-nested";
    case DetourConfig::kNested:
      return "nested";
    case DetourConfig::kInterleaved:
      return "interleaved";
    case DetourConfig::kXInterleaved:
      return "x-interleaved";
    case DetourConfig::kYInterleaved:
      return "y-interleaved";
    case DetourConfig::kXYInterleaved:
      return "(x,y)-interleaved";
    case DetourConfig::kIdentical:
      return "identical";
  }
  return "?";
}

PairClassification classify_detours(const Detour& a, const Detour& b) {
  PairClassification out;
  // Normalize roles: D1 has the smaller x (smaller y breaks ties so that
  // x1 = x2 implies y1 < y2, matching the x-interleaved definition).
  const Detour* d1 = &a;
  const Detour* d2 = &b;
  if (a.x_pi_index > b.x_pi_index ||
      (a.x_pi_index == b.x_pi_index && a.y_pi_index > b.y_pi_index)) {
    std::swap(d1, d2);
    out.swapped = true;
  }
  const std::size_t x1 = d1->x_pi_index, y1 = d1->y_pi_index;
  const std::size_t x2 = d2->x_pi_index, y2 = d2->y_pi_index;

  if (x1 == x2 && y1 == y2) {
    out.config = DetourConfig::kIdentical;
  } else if (y1 < x2) {
    out.config = DetourConfig::kNonNested;
  } else if (y1 == x2) {
    out.config = DetourConfig::kXYInterleaved;
  } else if (x1 == x2) {
    out.config = DetourConfig::kXInterleaved;  // then y1 < y2 by normalization
  } else if (y2 < y1) {
    out.config = DetourConfig::kNested;
  } else if (y1 == y2) {
    out.config = DetourConfig::kYInterleaved;
  } else {
    out.config = DetourConfig::kInterleaved;
  }

  out.dependent = detours_dependent(*d1, *d2);
  if (out.dependent) {
    // Same direction iff First(D1,D2) == First(D2,D1) (Claim 3.11(b)).
    out.same_direction =
        first_common(d1->verts, d2->verts) == first_common(d2->verts, d1->verts);
  }
  return out;
}

std::optional<ExcludedSegment> excluded_suffix(const Detour& d1,
                                               const Detour& d2) {
  const PairClassification c = classify_detours(d1, d2);
  if (c.config != DetourConfig::kInterleaved &&
      c.config != DetourConfig::kXInterleaved &&
      c.config != DetourConfig::kXYInterleaved) {
    return std::nullopt;
  }
  const Detour& lower = c.swapped ? d2 : d1;   // plays the D1 role
  const Detour& upper = c.swapped ? d1 : d2;   // plays the D2 role
  const Vertex w = last_common(upper.verts, lower.verts);
  if (w == kInvalidVertex) return std::nullopt;  // independent pair
  const std::size_t w_pos = index_of(lower.verts, w);
  FTBFS_ENSURES(w_pos != kNpos);
  if (w_pos + 1 >= lower.verts.size()) return std::nullopt;  // no edges
  ExcludedSegment out;
  out.segment = subpath(lower.verts, w_pos, lower.verts.size() - 1);
  out.excluded_of_first = !c.swapped;
  return out;
}

}  // namespace ftbfs
