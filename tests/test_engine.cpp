// Tests for the engine layer: the BuilderRegistry contract (every registered
// builder × every generator family yields a structure that verifies at its
// declared fault budget) and the FaultQueryEngine (batched == sequential,
// translation, identity mode, vertex faults, threading).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/oracle.h"
#include "core/verify.h"
#include "engine/query_engine.h"
#include "engine/registry.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftbfs {
namespace {

// Small generator families for the registry-wide property sweep. Sizes are
// tiny because exact builders are verified exhaustively (O(m^f) BFS pairs).
struct TestFamily {
  const char* name;
  Graph (*make)();
};

const TestFamily kFamilies[] = {
    {"er", [] { return erdos_renyi(18, 0.25, 5); }},
    {"cycle", [] { return cycle_graph(12); }},
    {"grid", [] { return grid_graph(4, 4); }},
    {"chorded-path", [] { return path_with_chords(16, 8, 7); }},
    {"barbell", [] { return barbell_graph(12, 2); }},
};

// Picks a budget the builder supports, preferring 2 (the paper's regime).
unsigned budget_for(const BuilderTraits& t) {
  return std::clamp(2u, t.min_fault_budget, t.max_fault_budget);
}

TEST(Registry, ListsAllLibraryBuilders) {
  const std::vector<std::string> names = BuilderRegistry::instance().names();
  for (const char* expected :
       {"single_ftbfs", "cons2ftbfs", "kfail_ftbfs", "ftmbfs", "approx_ftmbfs",
        "swap_ftbfs"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(Registry, FindResolvesAliases) {
  const BuilderRegistry& reg = BuilderRegistry::instance();
  EXPECT_EQ(reg.find("cons2"), reg.find("cons2ftbfs"));
  EXPECT_EQ(reg.find("greedy"), reg.find("approx_ftmbfs"));
  EXPECT_EQ(reg.find("no-such-builder"), nullptr);
}

TEST(Registry, UnsupportedRequestsAreExplained) {
  const Graph g = cycle_graph(8);
  const BuilderRegistry& reg = BuilderRegistry::instance();
  BuildRequest req;
  req.graph = &g;
  req.sources = {0};
  req.fault_budget = 1;
  EXPECT_EQ(reg.unsupported_reason("single_ftbfs", req), "");
  req.fault_budget = 2;
  EXPECT_NE(reg.unsupported_reason("single_ftbfs", req), "");
  req.fault_budget = 2;
  req.sources = {0, 3};
  EXPECT_NE(reg.unsupported_reason("cons2ftbfs", req), "");  // single-source
  EXPECT_EQ(reg.unsupported_reason("ftmbfs", req), "");
  req.sources = {0};
  req.fault_model = FaultModel::kVertex;
  EXPECT_NE(reg.unsupported_reason("cons2ftbfs", req), "");  // edge-only
  EXPECT_EQ(reg.unsupported_reason("kfail_ftbfs", req), "");
  req.fault_model = FaultModel::kEdge;
  req.sources = {99};
  EXPECT_NE(reg.unsupported_reason("cons2ftbfs", req), "");  // out of range
}

// The registry-wide property: every exact builder × every family verifies at
// its declared budget (edge model; vertex model covered separately below).
TEST(Registry, EveryExactBuilderVerifiesOnEveryFamily) {
  const BuilderRegistry& reg = BuilderRegistry::instance();
  for (const TestFamily& family : kFamilies) {
    const Graph g = family.make();
    for (const BuilderTraits& t : reg.traits()) {
      if (!t.exact) continue;
      BuildRequest req;
      req.graph = &g;
      req.sources = t.multi_source ? std::vector<Vertex>{0, 1}
                                   : std::vector<Vertex>{0};
      req.fault_budget = budget_for(t);
      ASSERT_EQ(reg.unsupported_reason(t.name, req), "") << t.name;
      const BuildResult r = reg.build(t.name, req);
      EXPECT_EQ(r.algorithm, t.name);
      const auto violation = verify_exhaustive(g, r.structure.edges,
                                               req.sources, req.fault_budget);
      EXPECT_FALSE(violation.has_value())
          << t.name << " on " << family.name << ": "
          << violation->describe(g);
    }
  }
}

TEST(Registry, VertexFaultBuildersVerifyUnderVertexFaults) {
  const BuilderRegistry& reg = BuilderRegistry::instance();
  const Graph g = erdos_renyi(16, 0.3, 9);
  for (const BuilderTraits& t : reg.traits()) {
    if (!t.exact || !t.vertex_faults) continue;
    BuildRequest req;
    req.graph = &g;
    req.sources = {0};
    req.fault_budget = std::clamp(2u, t.min_fault_budget, t.max_fault_budget);
    req.fault_model = FaultModel::kVertex;
    const BuildResult r = reg.build(t.name, req);
    const auto violation = verify_exhaustive_vertex(
        g, r.structure.edges, req.sources, req.fault_budget);
    EXPECT_FALSE(violation.has_value())
        << t.name << ": " << violation->describe(g);
  }
}

TEST(Registry, DefaultBuilderCoversEveryBudget) {
  const BuilderRegistry& reg = BuilderRegistry::instance();
  const Graph g = erdos_renyi(14, 0.3, 3);
  for (const unsigned f : {0u, 1u, 2u, 3u}) {
    BuildRequest req;
    req.graph = &g;
    req.sources = {0};
    req.fault_budget = f;
    const std::string name = BuilderRegistry::default_builder(f);
    ASSERT_EQ(reg.unsupported_reason(name, req), "") << "f=" << f;
    const BuildResult r = reg.build(name, req);
    EXPECT_FALSE(
        verify_exhaustive(g, r.structure.edges, req.sources, std::min(f, 3u))
            .has_value())
        << "f=" << f;
  }
}

// --- FaultQueryEngine ------------------------------------------------------

TEST(QueryEngine, IdentityEngineMatchesBfs) {
  const Graph g = erdos_renyi(40, 0.15, 11);
  FaultQueryEngine engine(g);
  EXPECT_TRUE(engine.is_identity());
  Bfs bfs(g);
  const BfsResult& r = bfs.run(0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(engine.distance(0, v, {}), r.hops[v]);
  }
}

TEST(QueryEngine, TranslatesHostEdgeIdsOntoStructure) {
  const Graph g = erdos_renyi(30, 0.2, 17);
  BuildRequest req;
  req.graph = &g;
  req.sources = {0};
  req.fault_budget = 2;
  const BuildResult r = BuilderRegistry::instance().build("cons2ftbfs", req);
  FaultQueryEngine engine(g, r.structure);
  FaultQueryEngine truth(g);
  Rng rng(23);
  for (int probe = 0; probe < 200; ++probe) {
    const EdgeId e1 = static_cast<EdgeId>(rng.next_below(g.num_edges()));
    const EdgeId e2 = static_cast<EdgeId>(rng.next_below(g.num_edges()));
    if (e1 == e2) continue;
    const std::vector<EdgeId> faults = {e1, e2};
    const Vertex v = static_cast<Vertex>(rng.next_below(g.num_vertices()));
    EXPECT_EQ(engine.distance(0, v, edge_faults(faults)),
              truth.distance(0, v, edge_faults(faults)));
  }
}

TEST(QueryEngine, VertexFaultsMatchGroundTruth) {
  const Graph g = erdos_renyi(24, 0.25, 29);
  BuildRequest req;
  req.graph = &g;
  req.sources = {0};
  req.fault_budget = 1;
  req.fault_model = FaultModel::kVertex;
  const BuildResult r = BuilderRegistry::instance().build("kfail_ftbfs", req);
  FaultQueryEngine engine(g, r.structure);
  FaultQueryEngine truth(g);
  for (Vertex u = 1; u < g.num_vertices(); ++u) {
    const std::vector<Vertex> faults = {u};
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (v == u) continue;
      EXPECT_EQ(engine.distance(0, v, vertex_faults(faults)),
                truth.distance(0, v, vertex_faults(faults)))
          << "fault " << u << " target " << v;
    }
  }
}

TEST(QueryEngine, ShortestPathAvoidsFaultsAndIsOptimal) {
  const Graph g = erdos_renyi(40, 0.15, 13);
  BuildRequest req;
  req.graph = &g;
  req.sources = {0};
  req.fault_budget = 2;
  const BuildResult r = BuilderRegistry::instance().build("cons2ftbfs", req);
  FaultQueryEngine engine(g, r.structure);
  const std::vector<EdgeId> faults = {2, 9};
  for (Vertex v = 1; v < g.num_vertices(); v += 4) {
    const auto p = engine.shortest_path(0, v, edge_faults(faults));
    const std::uint32_t d = engine.distance(0, v, edge_faults(faults));
    if (d == kInfHops) {
      EXPECT_FALSE(p.has_value());
      continue;
    }
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->size() - 1, d);
    EXPECT_EQ(p->front(), 0u);
    EXPECT_EQ(p->back(), v);
    EXPECT_TRUE(is_simple_path_in(g, *p));
    for (const EdgeId e : faults) {
      EXPECT_FALSE(contains_edge(g, *p, e));
    }
  }
}

// The batched-vs-sequential equivalence property: batch() must agree with
// one-at-a-time distance() for every (fault set, target) cell, at any thread
// count.
TEST(QueryEngine, BatchMatchesSequential) {
  const Graph g = erdos_renyi(50, 0.12, 31);
  BuildRequest req;
  req.graph = &g;
  req.sources = {0};
  req.fault_budget = 2;
  const BuildResult r = BuilderRegistry::instance().build("cons2ftbfs", req);
  FaultQueryEngine engine(g, r.structure);

  Rng rng(41);
  std::vector<std::vector<EdgeId>> storage(64);
  std::vector<FaultSpec> fault_sets;
  for (auto& fs : storage) {
    const std::size_t k = rng.next_below(3);
    for (std::size_t i = 0; i < k; ++i) {
      fs.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    fault_sets.push_back(edge_faults(fs));
  }
  std::vector<Vertex> targets;
  for (int i = 0; i < 9; ++i) {
    targets.push_back(static_cast<Vertex>(rng.next_below(g.num_vertices())));
  }

  std::vector<std::uint32_t> expected;
  for (const FaultSpec& fs : fault_sets) {
    for (const Vertex t : targets) {
      expected.push_back(engine.distance(0, t, fs));
    }
  }
  for (const unsigned threads : {1u, 2u, 4u}) {
    EXPECT_EQ(engine.batch(0, fault_sets, targets, threads), expected)
        << threads << " threads";
  }
}

TEST(QueryEngine, OracleBatchMatchesOracleDistances) {
  const Graph g = erdos_renyi(30, 0.2, 37);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 2);
  std::vector<std::vector<EdgeId>> storage = {{}, {1}, {2, 5}};
  std::vector<FaultSpec> fault_sets;
  for (const auto& fs : storage) fault_sets.push_back(edge_faults(fs));
  const std::vector<Vertex> targets = {3, 11, 27};
  const std::vector<std::uint32_t> matrix = oracle.batch(fault_sets, targets);
  for (std::size_t i = 0; i < fault_sets.size(); ++i) {
    for (std::size_t j = 0; j < targets.size(); ++j) {
      EXPECT_EQ(matrix[i * targets.size() + j],
                oracle.distance(targets[j], storage[i]));
    }
  }
}

TEST(QueryEngine, BatchHandlesDegenerateShapes) {
  const Graph g = cycle_graph(8);
  FaultQueryEngine engine(g);
  EXPECT_TRUE(engine.batch(0, {}, {}).empty());
  const std::vector<FaultSpec> one_empty(1);
  EXPECT_TRUE(engine.batch(0, one_empty, {}, 8).empty());
  const std::vector<Vertex> targets = {3};
  EXPECT_EQ(engine.batch(0, one_empty, targets, 16),
            (std::vector<std::uint32_t>{3}));
}

TEST(QueryEngine, CountsQueries) {
  const Graph g = cycle_graph(8);
  FaultQueryEngine engine(g);
  EXPECT_EQ(engine.queries_answered(), 0u);
  (void)engine.distance(0, 3, {});
  (void)engine.shortest_path(0, 4, {});
  const std::vector<FaultSpec> sets(5);
  const std::vector<Vertex> targets = {1, 2};
  (void)engine.batch(0, sets, targets);
  EXPECT_EQ(engine.queries_answered(), 7u);
}

}  // namespace
}  // namespace ftbfs
