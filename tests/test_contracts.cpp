// Contract-violation behavior: FTBFS_EXPECTS/ENSURES abort on programming
// errors. Death tests pin the behavior so refactors cannot silently turn
// contract violations into undefined behavior.
#include <gtest/gtest.h>

#include "core/approx_ftmbfs.h"
#include "core/cons2ftbfs.h"
#include "graph/generators.h"
#include "spath/path.h"
#include "util/assert.h"

namespace ftbfs {
namespace {

TEST(Contracts, GraphBuilderRejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_DEATH(b.add_edge(1, 1), "precondition");
}

TEST(Contracts, GraphBuilderRejectsParallelEdge) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_DEATH(b.add_edge(1, 0), "precondition");
}

TEST(Contracts, GraphBuilderRejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_DEATH(b.add_edge(0, 3), "precondition");
}

TEST(Contracts, Cons2RejectsBadSource) {
  const Graph g = path_graph(4);
  EXPECT_DEATH((void)build_cons2ftbfs(g, 9), "precondition");
}

TEST(Contracts, PathOpsRejectMalformedInput) {
  const Graph g = path_graph(4);
  EXPECT_DEATH((void)last_edge(g, Path{2}), "precondition");
  EXPECT_DEATH((void)concat(Path{0, 1}, Path{2, 3}), "precondition");
  EXPECT_DEATH((void)subpath(Path{0, 1, 2}, 2, 1), "precondition");
}

TEST(Contracts, ApproxRejectsUnsupportedFaultCount) {
  const Graph g = path_graph(4);
  const std::vector<Vertex> sources = {0};
  EXPECT_DEATH((void)build_approx_ftmbfs(g, sources, 3), "precondition");
}

TEST(Contracts, ApproxRejectsEmptySources) {
  const Graph g = path_graph(4);
  const std::vector<Vertex> none;
  EXPECT_DEATH((void)build_approx_ftmbfs(g, none, 1), "precondition");
}

}  // namespace
}  // namespace ftbfs
