// Tests for the parallel construction schedule (core/build_parallel.h and
// BuildOptions::jobs): the hard invariant is that a build at ANY job count is
// byte-identical to the sequential build — same kept edges, same stats, down
// to every counter the sequential path would have produced — so --jobs can
// never be observed in a structure, a snapshot, or a served response. Also
// the TSan surface: many pool entries building concurrently, each with its
// own jobs>1 crew.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/build_parallel.h"
#include "core/cons2ftbfs.h"
#include "engine/registry.h"
#include "graph/generators.h"
#include "service/oracle_service.h"
#include "service/protocol.h"
#include "util/concurrency.h"

namespace ftbfs {
namespace {

void expect_same_stats(const FtBfsStats& a, const FtBfsStats& b,
                       const std::string& label) {
  EXPECT_EQ(a.tree_edges, b.tree_edges) << label;
  EXPECT_EQ(a.new_edges, b.new_edges) << label;
  EXPECT_EQ(a.max_new_per_vertex, b.max_new_per_vertex) << label;
  EXPECT_EQ(a.fault_pairs_considered, b.fault_pairs_considered) << label;
  EXPECT_EQ(a.dijkstra_runs, b.dijkstra_runs) << label;
  EXPECT_EQ(a.divergence_fallbacks, b.divergence_fallbacks) << label;
  EXPECT_EQ(a.classes.single, b.classes.single) << label;
  EXPECT_EQ(a.classes.a_pi_pi, b.classes.a_pi_pi) << label;
  EXPECT_EQ(a.classes.b_nodet, b.classes.b_nodet) << label;
  EXPECT_EQ(a.classes.c_indep, b.classes.c_indep) << label;
  EXPECT_EQ(a.classes.d_pi_interf, b.classes.d_pi_interf) << label;
  EXPECT_EQ(a.classes.e_d_interf, b.classes.e_d_interf) << label;
  EXPECT_EQ(a.max_classes_per_vertex.single, b.max_classes_per_vertex.single)
      << label;
  EXPECT_EQ(a.max_classes_per_vertex.total(), b.max_classes_per_vertex.total())
      << label;
}

std::uint64_t counter_value(const BuildResult& r, const std::string& key) {
  for (const auto& [name, value] : r.counters) {
    if (name == key) return value;
  }
  return 0;
}

bool has_counter(const BuildResult& r, const std::string& key) {
  for (const auto& [name, value] : r.counters) {
    if (name == key) return true;
  }
  return false;
}

// --- the byte-identity property across every registered family -------------

TEST(ParallelBuild, ByteIdenticalAcrossJobCounts) {
  const BuilderRegistry& reg = BuilderRegistry::instance();
  for (const BuilderTraits& t : reg.traits()) {
    const unsigned f =
        std::max(t.min_fault_budget, std::min(2u, t.max_fault_budget));
    if (f > t.max_fault_budget || f == 0) continue;
    // Heavy constructions (m^f fault-set enumeration) get a smaller graph;
    // everything else a size where the parallel schedule spans many blocks.
    const Vertex n = t.heavy_construction ? 40u : 120u;
    for (const std::uint64_t seed : {7ull, 23ull}) {
      const Graph g = random_connected(n, 3 * n, seed);
      BuildRequest req;
      req.graph = &g;
      req.sources = {0};
      req.fault_budget = f;
      req.collect_stats = true;  // classification must replay identically too
      req.options.jobs = 1;
      const BuildResult base = reg.build(t.name, req);
      for (const unsigned jobs : {2u, 4u, 8u}) {
        req.options.jobs = jobs;
        const BuildResult r = reg.build(t.name, req);
        const std::string label =
            t.name + " seed=" + std::to_string(seed) +
            " jobs=" + std::to_string(jobs);
        EXPECT_EQ(base.structure.edges, r.structure.edges) << label;
        expect_same_stats(base.structure.stats, r.structure.stats, label);
        if (t.parallel_build) {
          // The schedule must report itself and never fall back.
          EXPECT_GT(counter_value(r, "build_workers"), 1u) << label;
          EXPECT_FALSE(has_counter(r, "parallel_fallback_sequential"))
              << label;
        } else {
          // Honesty counter: the family ignored jobs and said so.
          EXPECT_EQ(counter_value(r, "parallel_fallback_sequential"), 1u)
              << label;
        }
      }
    }
  }
}

// jobs=0 (auto) resolves to the hardware-clamped crew and must be just as
// invisible in the output as an explicit count.
TEST(ParallelBuild, AutoJobsMatchesSequential) {
  const Graph g = random_connected(90, 270, 11);
  const BuilderRegistry& reg = BuilderRegistry::instance();
  BuildRequest req;
  req.graph = &g;
  req.sources = {0};
  req.fault_budget = 2;
  req.options.jobs = 1;
  const BuildResult base = reg.build("cons2ftbfs", req);
  req.options.jobs = 0;
  const BuildResult auto_built = reg.build("cons2ftbfs", req);
  EXPECT_EQ(base.structure.edges, auto_built.structure.edges);
  expect_same_stats(base.structure.stats, auto_built.structure.stats, "auto");
}

// The progress counter counts every target exactly once at any job count.
TEST(ParallelBuild, ProgressCountsEveryTargetOnce) {
  const Graph g = random_connected(100, 300, 5);
  for (const unsigned jobs : {1u, 4u}) {
    std::atomic<std::uint64_t> progress{0};
    Cons2Options opt;
    opt.jobs = jobs;
    opt.progress = &progress;
    const FtStructure h = build_cons2ftbfs(g, 0, opt);
    EXPECT_GT(h.stats.tree_edges, 0u);
    // Every vertex reachable from 0 except the source itself is a target.
    EXPECT_EQ(progress.load(), g.num_vertices() - 1) << "jobs=" << jobs;
  }
}

// --- serve golden identity: build_jobs must be invisible on the wire --------

TEST(ParallelBuild, ServeGoldenIdenticalAcrossBuildJobs) {
  const Graph g = random_connected(80, 240, 31);
  // A fixed request list exercising lazy builds (distance + path + faults).
  std::vector<QueryRequest> requests;
  for (std::uint64_t i = 0; i < 12; ++i) {
    QueryRequest req;
    req.id = static_cast<std::int64_t>(i + 1);
    req.source = static_cast<Vertex>(i % 3);
    req.targets = {static_cast<Vertex>(10 + i), static_cast<Vertex>(79 - i)};
    req.fault_edges = {static_cast<EdgeId>(i), static_cast<EdgeId>(i + 40)};
    if (i % 3 == 0) req.kind = QueryKind::kPath;
    requests.push_back(std::move(req));
  }

  std::vector<std::string> golden;
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    ServiceConfig config;
    config.lazy_build = true;
    config.default_budget = 2;
    config.cache_capacity = 16;
    config.build_jobs = jobs;
    OracleService service(g, config);
    std::vector<std::string> lines;
    for (const QueryRequest& req : requests) {
      lines.push_back(format_response_line(service.serve(req)));
    }
    if (jobs == 1) {
      golden = std::move(lines);
      ASSERT_FALSE(golden.empty());
    } else {
      EXPECT_EQ(golden, lines) << "build_jobs=" << jobs;
    }
  }
}

// --- TSan hammer: concurrent pool builds, each with its own jobs>1 crew -----

TEST(ParallelBuild, ConcurrentPoolBuildsWithParallelJobs) {
  const Graph g = random_connected(64, 192, 13);
  ServiceConfig config;
  config.lazy_build = false;
  config.build_jobs = 4;  // every build_structure below spawns its own crew
  OracleService service(g, config);

  constexpr unsigned kThreads = 6;
  std::vector<std::thread> crew;
  crew.reserve(kThreads);
  for (unsigned w = 0; w < kThreads; ++w) {
    crew.emplace_back([&service, w] {
      for (unsigned i = 0; i < 2; ++i) {
        const Vertex source = static_cast<Vertex>((w * 2 + i) % 8);
        service.build_structure("h" + std::to_string(w) + "_" +
                                    std::to_string(i),
                                source, i == 0 ? 1u : 2u, FaultModel::kEdge);
      }
    });
  }
  for (std::thread& t : crew) t.join();
  // Identity engine + every build.
  EXPECT_EQ(service.pool_size(), std::size_t{1} + kThreads * 2);

  // Spot-check determinism against a sequentially-built twin.
  ServiceConfig seq_config = config;
  seq_config.build_jobs = 1;
  OracleService twin(g, seq_config);
  twin.build_structure("h0_0", 0, 1, FaultModel::kEdge);
  QueryRequest req;
  req.source = 0;
  req.targets = {17, 42, 63};
  req.fault_edges = {3};
  req.structure = "h0_0";
  EXPECT_EQ(format_response_line(twin.serve(req)),
            format_response_line(service.serve(req)));
}

// --- the schedule helper itself --------------------------------------------

TEST(ParallelBuild, RunSpeculateCommitCoversEveryIndexInOrder) {
  constexpr std::size_t kCount = 1000;
  const unsigned workers = 3;
  const std::size_t block = speculative_block_size(workers);
  std::vector<int> speculated(kCount, 0);
  std::vector<std::size_t> committed;
  ParallelBuildReport report;
  run_speculate_commit(
      kCount, workers, /*on_block_start=*/[] {},
      [&](unsigned, std::size_t idx, std::size_t slot) {
        ASSERT_LT(slot, block);
        speculated[idx]++;
      },
      [&](std::size_t idx, std::size_t) { committed.push_back(idx); },
      &report);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(speculated[i], 1) << i;           // exactly once
    EXPECT_EQ(committed[i], i);                 // in order
  }
  EXPECT_EQ(report.speculated, kCount);
  EXPECT_GE(report.blocks, kCount / block);
}

TEST(ParallelBuild, ResolveJobsPolicy) {
  // 0 = auto: hardware-clamped, never 0.
  EXPECT_GE(resolve_jobs(0, 1000), 1u);
  EXPECT_LE(resolve_jobs(0, 1000), hardware_workers());
  // Explicit counts are honored beyond the hardware (oversubscription is how
  // this suite exercises real interleavings on small machines)...
  EXPECT_EQ(resolve_jobs(8, 1000), 8u);
  // ...but never beyond the work or the sanity ceiling.
  EXPECT_EQ(resolve_jobs(8, 3), 3u);
  EXPECT_EQ(resolve_jobs(100000, 1u << 20), kMaxJobs);
  EXPECT_EQ(resolve_jobs(1, 1000), 1u);
}

}  // namespace
}  // namespace ftbfs
