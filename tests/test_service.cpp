// Tests for the serving layer: every QueryResponse status code is reachable
// and maps to the right situation (never an abort), cached answers are
// byte-identical to uncached ones, canonicalization fixes duplicate-id budget
// accounting, routing picks the cheapest capable backend, and the legacy
// FtBfsOracle facade over the service answers exactly what the engine does.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/oracle.h"
#include "engine/registry.h"
#include "graph/generators.h"
#include "graph/mask.h"
#include "service/oracle_service.h"
#include "service/protocol.h"
#include "sim/failure_sim.h"
#include "spath/bfs.h"
#include "util/rng.h"

namespace ftbfs {
namespace {

QueryRequest distance_request(Vertex source, std::vector<Vertex> targets,
                              std::vector<EdgeId> fault_edges = {}) {
  QueryRequest req;
  req.source = source;
  req.targets = std::move(targets);
  req.fault_edges = std::move(fault_edges);
  return req;
}

// --- FaultSpec canonicalization (satellite) --------------------------------

TEST(CanonicalFaults, SortsAndDedupes) {
  const std::vector<EdgeId> edges = {7, 2, 7, 2, 5};
  const std::vector<Vertex> vertices = {3, 3, 1};
  const CanonicalFaultSet canon =
      FaultSpec{edges, vertices}.canonicalize();
  EXPECT_EQ(std::vector<EdgeId>(canon.edges().begin(), canon.edges().end()),
            (std::vector<EdgeId>{2, 5, 7}));
  EXPECT_EQ(std::vector<Vertex>(canon.vertices().begin(),
                                canon.vertices().end()),
            (std::vector<Vertex>{1, 3}));
  EXPECT_EQ(canon.size(), 5u);  // distinct ids, not 8 raw ids
  EXPECT_EQ((FaultSpec{edges, vertices}.size()), 8u);
}

TEST(CanonicalFaults, DuplicateIdsCountOnceInOracleBudget) {
  const Graph g = erdos_renyi(30, 0.2, 23);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 1);
  // {e, e} is one distinct fault — inside the f=1 budget (the seed double-
  // counted it and aborted).
  const std::vector<EdgeId> twice = {4, 4};
  const std::vector<EdgeId> once = {4};
  EXPECT_EQ(oracle.distance(9, twice), oracle.distance(9, once));
}

// --- status codes ----------------------------------------------------------

TEST(Service, OkCarriesExactDistances) {
  const Graph g = erdos_renyi(40, 0.15, 11);
  OracleService service(g);
  const std::vector<EdgeId> faults = {1, 6};
  QueryResponse resp = service.serve(distance_request(0, {5, 9, 17}, faults));
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_TRUE(resp.exact);
  GraphMask mask(g);
  for (const EdgeId e : faults) mask.block_edge(e);
  Bfs bfs(g);
  const BfsResult& truth = bfs.run(0, &mask);
  ASSERT_EQ(resp.distances.size(), 3u);
  EXPECT_EQ(resp.distances[0], truth.hops[5]);
  EXPECT_EQ(resp.distances[1], truth.hops[9]);
  EXPECT_EQ(resp.distances[2], truth.hops[17]);
}

TEST(Service, UnknownSourceForOutOfRangeIds) {
  const Graph g = cycle_graph(10);
  OracleService service(g);
  EXPECT_EQ(service.serve(distance_request(99, {1})).status,
            StatusCode::kUnknownSource);
  EXPECT_EQ(service.serve(distance_request(0, {99})).status,
            StatusCode::kUnknownSource);
  EXPECT_EQ(service.serve(distance_request(0, {1}, {999})).status,
            StatusCode::kUnknownSource);
  QueryRequest vertex_fault = distance_request(0, {1});
  vertex_fault.fault_vertices = {99};
  EXPECT_EQ(service.serve(vertex_fault).status, StatusCode::kUnknownSource);
  QueryRequest pinned = distance_request(0, {1});
  pinned.structure = "no-such-structure";
  EXPECT_EQ(service.serve(pinned).status, StatusCode::kUnknownSource);
}

TEST(Service, UnknownSourceWhenLazyBuildDisabled) {
  const Graph g = cycle_graph(10);
  ServiceConfig config;
  config.lazy_build = false;
  OracleService service(g, config);
  const QueryResponse resp = service.serve(distance_request(3, {1}));
  EXPECT_EQ(resp.status, StatusCode::kUnknownSource);
  EXPECT_FALSE(resp.error.empty());
}

TEST(Service, BudgetExceededBeyondLazyLimitAndOnPinnedEntry) {
  const Graph g = erdos_renyi(30, 0.25, 7);
  ServiceConfig config;
  config.max_lazy_budget = 2;
  OracleService service(g, config);
  // Four distinct faults exceed what the service will lazily build.
  const QueryResponse resp =
      service.serve(distance_request(0, {5}, {0, 1, 2, 3}));
  EXPECT_EQ(resp.status, StatusCode::kBudgetExceeded);

  // Pinned: a budget-1 entry refuses a 2-fault exact request.
  const BuildResult single = BuilderRegistry::instance().build(
      "single_ftbfs", BuildRequest{.graph = &g, .sources = {0},
                                   .fault_budget = 1});
  service.add_structure("single", 0, 1, FaultModel::kEdge,
                        single.structure.edges);
  QueryRequest pinned = distance_request(0, {5}, {0, 1});
  pinned.structure = "single";
  EXPECT_EQ(service.serve(pinned).status, StatusCode::kBudgetExceeded);
}

TEST(Service, UnsupportedFaultModelForMixedAndMismatchedFaults) {
  const Graph g = erdos_renyi(30, 0.25, 9);
  OracleService service(g);
  // Mixed edge+vertex fault sets are covered by no single structure.
  QueryRequest mixed = distance_request(0, {5}, {1});
  mixed.fault_vertices = {7};
  EXPECT_EQ(service.serve(mixed).status, StatusCode::kUnsupportedFaultModel);

  // Pinned: an edge-model structure refuses vertex faults.
  const BuildResult dual = BuilderRegistry::instance().build(
      "cons2ftbfs", BuildRequest{.graph = &g, .sources = {0},
                                 .fault_budget = 2});
  service.add_structure("dual", 0, 2, FaultModel::kEdge,
                        dual.structure.edges);
  QueryRequest pinned = distance_request(0, {5});
  pinned.fault_vertices = {7};
  pinned.structure = "dual";
  EXPECT_EQ(service.serve(pinned).status, StatusCode::kUnsupportedFaultModel);
}

TEST(Service, ApproximateStructuresRefuseExactRequests) {
  const Graph g = erdos_renyi(30, 0.25, 33);
  ServiceConfig config;
  config.lazy_build = false;
  OracleService service(g, config);
  const BuildResult swap = BuilderRegistry::instance().build(
      "swap_ftbfs", BuildRequest{.graph = &g, .sources = {0},
                                 .fault_budget = 1});
  service.add_structure("swap", 0, 1, FaultModel::kEdge,
                        swap.structure.edges, /*exact=*/false);
  // Pinned exact request: within budget and model, but no exactness
  // guarantee — the refusal must say so, not claim the budget was exceeded.
  QueryRequest pinned = distance_request(0, {5}, {1});
  pinned.structure = "swap";
  QueryResponse resp = service.serve(pinned);
  EXPECT_EQ(resp.status, StatusCode::kUnsupportedFaultModel);
  EXPECT_NE(resp.error.find("approximate"), std::string::npos) << resp.error;
  // Unpinned routing never picks an approximate entry for exact requests.
  resp = service.serve(distance_request(0, {5}, {1}));
  EXPECT_EQ(resp.status, StatusCode::kUnsupportedFaultModel);
  EXPECT_NE(resp.error.find("approximate"), std::string::npos) << resp.error;
  // Best effort serves from the pinned approximate entry, flagged inexact.
  pinned.consistency = Consistency::kBestEffort;
  resp = service.serve(pinned);
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_FALSE(resp.exact);
  EXPECT_EQ(resp.served_by, "swap");
}

TEST(Service, DisconnectedWhenEveryTargetUnreachable) {
  const Graph g = path_graph(6);
  OracleService service(g);
  const EdgeId cut = g.find_edge(2, 3);
  QueryResponse resp = service.serve(distance_request(0, {4, 5}, {cut}));
  EXPECT_EQ(resp.status, StatusCode::kDisconnected);
  ASSERT_EQ(resp.distances.size(), 2u);
  EXPECT_EQ(resp.distances[0], kInfHops);
  EXPECT_EQ(resp.distances[1], kInfHops);

  QueryRequest path_req = distance_request(0, {5}, {cut});
  path_req.kind = QueryKind::kPath;
  resp = service.serve(path_req);
  EXPECT_EQ(resp.status, StatusCode::kDisconnected);
  ASSERT_EQ(resp.paths.size(), 1u);
  EXPECT_TRUE(resp.paths[0].empty());

  // A partially reachable target list is kOk with kInfHops entries.
  resp = service.serve(distance_request(0, {1, 5}, {cut}));
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_EQ(resp.distances[0], 1u);
  EXPECT_EQ(resp.distances[1], kInfHops);
}

TEST(Service, BestEffortFallsBackToIdentity) {
  const Graph g = erdos_renyi(40, 0.2, 13);
  ServiceConfig config;
  config.max_lazy_budget = 2;
  OracleService service(g, config);
  QueryRequest req = distance_request(0, {7, 21}, {0, 1, 2, 3, 4});
  req.consistency = Consistency::kBestEffort;
  const QueryResponse resp = service.serve(req);
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_EQ(resp.served_by, "identity");
  EXPECT_TRUE(resp.exact);  // identity is ground truth
  GraphMask mask(g);
  for (const EdgeId e : req.fault_edges) mask.block_edge(e);
  Bfs bfs(g);
  const BfsResult& truth = bfs.run(0, &mask);
  EXPECT_EQ(resp.distances[0], truth.hops[7]);
  EXPECT_EQ(resp.distances[1], truth.hops[21]);
  EXPECT_EQ(service.stats().identity_served, 1u);
}

// --- scenario cache --------------------------------------------------------

TEST(Service, CachedAnswersAreByteIdenticalToUncached) {
  const Graph g = erdos_renyi(50, 0.12, 31);
  OracleService cached(g);
  ServiceConfig no_cache_config;
  no_cache_config.cache_capacity = 0;
  OracleService uncached(g, no_cache_config);

  QueryRequest req;
  req.source = 0;
  req.kind = QueryKind::kAllDistances;
  req.fault_edges = {9, 4};

  const QueryResponse cold = cached.serve(req);
  const QueryResponse hot = cached.serve(req);
  const QueryResponse raw = uncached.serve(req);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_EQ(cold.distances, hot.distances);
  EXPECT_EQ(cold.distances, raw.distances);
  EXPECT_EQ(cached.stats().cache_hits, 1u);

  // Canonicalization: permuted, duplicated ids are the same scenario.
  req.fault_edges = {4, 9, 4};
  const QueryResponse permuted = cached.serve(req);
  EXPECT_TRUE(permuted.cache_hit);
  EXPECT_EQ(permuted.distances, cold.distances);
}

TEST(Service, CacheProjectsFaultsOntoStructure) {
  const Graph g = erdos_renyi(40, 0.2, 17);
  OracleService service(g);
  const BuildResult tree = BuilderRegistry::instance().build(
      "kfail_ftbfs", BuildRequest{.graph = &g, .sources = {0},
                                  .fault_budget = 0});
  // Find an edge outside the tree structure: faulting it cannot change
  // answers served from the tree, so both scenarios share one cache line.
  std::vector<bool> in_h(g.num_edges(), false);
  for (const EdgeId e : tree.structure.edges) in_h[e] = true;
  EdgeId outside = kInvalidEdge;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_h[e]) {
      outside = e;
      break;
    }
  }
  ASSERT_NE(outside, kInvalidEdge);
  service.add_structure("tree", 0, 0, FaultModel::kEdge,
                        tree.structure.edges);
  QueryRequest req;
  req.source = 0;
  req.kind = QueryKind::kAllDistances;
  req.structure = "tree";
  req.consistency = Consistency::kBestEffort;
  const QueryResponse cold = service.serve(req);
  req.fault_edges = {outside};
  const QueryResponse projected = service.serve(req);
  EXPECT_TRUE(projected.cache_hit);
  EXPECT_EQ(projected.distances, cold.distances);
}

TEST(Service, LruEvictsOldScenarios) {
  const Graph g = cycle_graph(12);
  ServiceConfig config;
  config.cache_capacity = 2;
  // Eviction is per-shard CLOCK; one shard makes the victim sequence exact
  // (capacity 2 in one shard, third scenario evicts the oldest untouched).
  config.cache_shards = 1;
  OracleService service(g, config);
  QueryRequest req;
  req.source = 0;
  req.kind = QueryKind::kAllDistances;
  req.fault_edges = {0};
  (void)service.serve(req);  // miss, cached
  req.fault_edges = {1};
  (void)service.serve(req);  // miss, cached
  req.fault_edges = {2};
  (void)service.serve(req);  // miss, evicts {0}
  req.fault_edges = {0};
  EXPECT_FALSE(service.serve(req).cache_hit);
  req.fault_edges = {2};
  EXPECT_TRUE(service.serve(req).cache_hit);
}

// --- routing ---------------------------------------------------------------

TEST(Service, RoutesToCheapestCapableStructure) {
  const Graph g = erdos_renyi(40, 0.25, 19);
  ServiceConfig config;
  config.lazy_build = false;
  OracleService service(g, config);
  const BuildResult dual = BuilderRegistry::instance().build(
      "cons2ftbfs", BuildRequest{.graph = &g, .sources = {0},
                                 .fault_budget = 2});
  const BuildResult tree = BuilderRegistry::instance().build(
      "kfail_ftbfs", BuildRequest{.graph = &g, .sources = {0},
                                  .fault_budget = 0});
  service.add_structure("dual", 0, 2, FaultModel::kEdge,
                        dual.structure.edges);
  service.add_structure("tree", 0, 0, FaultModel::kEdge,
                        tree.structure.edges);
  // Fault-free: both entries serve exactly; the (smaller) tree wins.
  EXPECT_EQ(service.serve(distance_request(0, {5})).served_by, "tree");
  // Two faults: only the dual structure's budget covers the scenario.
  EXPECT_EQ(service.serve(distance_request(0, {5}, {1, 2})).served_by,
            "dual");
}

TEST(Service, LazyBuildPopulatesPoolOnce) {
  const Graph g = erdos_renyi(30, 0.2, 21);
  OracleService service(g);
  EXPECT_EQ(service.pool_size(), 1u);  // identity only
  (void)service.serve(distance_request(0, {5}, {1, 2}));
  EXPECT_EQ(service.pool_size(), 2u);
  EXPECT_EQ(service.stats().structures_built, 1u);
  (void)service.serve(distance_request(0, {9}, {3}));
  EXPECT_EQ(service.pool_size(), 2u);  // same shape reuses the entry
  EXPECT_EQ(service.stats().structures_built, 1u);
}

TEST(Service, PointOracleServesSingleFaultRequests) {
  const Graph g = erdos_renyi(40, 0.2, 25);
  OracleService service(g);
  service.enable_point_oracle(0);
  FaultQueryEngine truth(g);
  for (EdgeId e = 0; e < g.num_edges(); e += 5) {
    const std::vector<EdgeId> faults = {e};
    const QueryResponse resp = service.serve(distance_request(0, {11}, {e}));
    EXPECT_EQ(resp.served_by, "point_oracle");
    EXPECT_TRUE(resp.exact);
    EXPECT_EQ(resp.distances[0], truth.distance(0, 11, edge_faults(faults)));
  }
  // Two faults leave the point oracle's range.
  EXPECT_NE(service.serve(distance_request(0, {11}, {0, 1})).served_by,
            "point_oracle");
}

TEST(Service, ReachabilityKind) {
  const Graph g = path_graph(5);
  OracleService service(g);
  QueryRequest req = distance_request(0, {1, 4});
  req.kind = QueryKind::kReachability;
  req.fault_edges = {g.find_edge(3, 4)};
  const QueryResponse resp = service.serve(req);
  EXPECT_EQ(resp.status, StatusCode::kOk);
  ASSERT_EQ(resp.reachable.size(), 2u);
  EXPECT_TRUE(resp.reachable[0]);
  EXPECT_FALSE(resp.reachable[1]);
}

// --- FtBfsOracle over the service (compat path) ----------------------------

TEST(OracleCompat, MatchesDirectEngineAnswers) {
  const Graph g = erdos_renyi(40, 0.15, 27);
  BuildRequest req;
  req.graph = &g;
  req.sources = {0};
  req.fault_budget = 2;
  const BuildResult built = BuilderRegistry::instance().build("cons2ftbfs", req);
  FtBfsOracle oracle(g, 0, 2, FtStructure{built.structure});
  FaultQueryEngine direct(g, built.structure);
  Rng rng(3);
  for (int probe = 0; probe < 100; ++probe) {
    std::vector<EdgeId> faults;
    for (std::size_t i = rng.next_below(3); i > 0; --i) {
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
    const Vertex v = static_cast<Vertex>(rng.next_below(g.num_vertices()));
    EXPECT_EQ(oracle.distance(v, faults),
              direct.distance(0, v, edge_faults(faults)));
    const auto via_oracle = oracle.shortest_path(v, faults);
    const auto via_engine = direct.shortest_path(0, v, edge_faults(faults));
    EXPECT_EQ(via_oracle.has_value(), via_engine.has_value());
    if (via_oracle.has_value()) {
      EXPECT_EQ(via_oracle->size(), via_engine->size());
    }
    EXPECT_EQ(oracle.all_distances(faults),
              direct.all_distances(0, edge_faults(faults)));
  }
}

TEST(OracleCompat, ExposesPinnedServiceEntry) {
  const Graph g = cycle_graph(8);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 1);
  QueryRequest req = distance_request(0, {3}, {0});
  req.structure = "ftbfs_oracle";
  const QueryResponse resp = oracle.service().serve(req);
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_TRUE(resp.exact);
  EXPECT_EQ(resp.distances[0], oracle.distance(3, std::vector<EdgeId>{0}));
}

// --- failure simulator over the service ------------------------------------

TEST(SimOverService, RepeatedTickStatesHitCache) {
  const Graph g = erdos_renyi(30, 0.2, 29);
  SimConfig config;
  config.ticks = 120;
  config.failure_probability = 0.01;
  FailureSimulator sim(g, 0, config);
  std::vector<EdgeId> all(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  sim.add_overlay("full", all, 2);
  const auto metrics = sim.run();
  EXPECT_EQ(metrics[0].exact, metrics[0].routed);  // full overlay is exact
  // Calm stretches and recurring fault sets must be served from cache.
  EXPECT_GT(sim.service_stats().cache_hits, 0u);
}

// --- JSONL wire format -----------------------------------------------------

TEST(Protocol, ParsesRequestLine) {
  const Graph g = cycle_graph(6);
  const ParsedRequest parsed = parse_request_line(
      R"({"id":7,"source":0,"targets":[2,3],"kind":"path",)"
      R"("consistency":"best_effort","fault_edges":[[1,2]],)"
      R"("fault_vertices":[4],"structure":"identity"})",
      g);
  ASSERT_EQ(parsed.status, ParseStatus::kOk) << parsed.error;
  const QueryRequest& req = parsed.request;
  EXPECT_EQ(req.id, 7);
  EXPECT_EQ(req.source, 0u);
  EXPECT_EQ(req.targets, (std::vector<Vertex>{2, 3}));
  EXPECT_EQ(req.kind, QueryKind::kPath);
  EXPECT_EQ(req.consistency, Consistency::kBestEffort);
  ASSERT_EQ(req.fault_edges.size(), 1u);
  EXPECT_EQ(req.fault_edges[0], g.find_edge(1, 2));
  EXPECT_EQ(req.fault_vertices, (std::vector<Vertex>{4}));
  EXPECT_EQ(req.structure, "identity");
}

TEST(Protocol, RejectsMalformedLines) {
  const Graph g = cycle_graph(6);
  EXPECT_EQ(parse_request_line("not json", g).status, ParseStatus::kSyntax);
  EXPECT_EQ(parse_request_line(R"({"targets":[1]})", g).status,
            ParseStatus::kSyntax);  // missing source
  EXPECT_EQ(parse_request_line(R"({"source":0,"kind":"warp"})", g).status,
            ParseStatus::kSyntax);
  // An edge the graph does not have parses but fails resolution.
  const ParsedRequest missing =
      parse_request_line(R"({"id":3,"source":0,"fault_edges":[[0,3]]})", g);
  EXPECT_EQ(missing.status, ParseStatus::kResolve);
  EXPECT_EQ(missing.request.id, 3);
  // Key order must not matter: an "id" after the unresolvable edge is still
  // echoed so the client can correlate the refusal.
  const ParsedRequest late_id =
      parse_request_line(R"({"source":0,"fault_edges":[[0,3]],"id":42})", g);
  EXPECT_EQ(late_id.status, ParseStatus::kResolve);
  EXPECT_EQ(late_id.request.id, 42);
  // One hostile line must not take the serving loop down with it.
  const std::string bomb(100000, '[');
  EXPECT_EQ(parse_request_line(bomb, g).status, ParseStatus::kSyntax);
  // Ids beyond 32 bits must not wrap onto valid vertices: 2^32 aliasing
  // vertex 0 would be silently *answered*; it has to be refused instead.
  const ParsedRequest huge =
      parse_request_line(R"({"source":4294967296,"targets":[1]})", g);
  ASSERT_EQ(huge.status, ParseStatus::kOk);
  OracleService service(g);
  EXPECT_EQ(service.serve(huge.request).status, StatusCode::kUnknownSource);
}

TEST(Protocol, UnknownKeysBecomeWarningsNotErrors) {
  const Graph g = cycle_graph(6);
  // A typo'd (or future-revision) key must neither reject the line nor be
  // silently ignored: the request is served and the key is echoed back.
  const ParsedRequest parsed =
      parse_request_line(R"({"source":0,"tragets":[1],"teleport":true})", g);
  ASSERT_EQ(parsed.status, ParseStatus::kOk) << parsed.error;
  ASSERT_EQ(parsed.warnings.size(), 2u);
  EXPECT_EQ(parsed.warnings[0], "unknown request key \"tragets\"");
  EXPECT_EQ(parsed.warnings[1], "unknown request key \"teleport\"");

  QueryResponse resp;
  resp.id = 5;
  resp.status = StatusCode::kOk;
  resp.exact = true;
  resp.warnings = parsed.warnings;
  EXPECT_EQ(format_response_line(resp),
            R"({"id":5,"status":"ok","exact":true,"cache_hit":false,)"
            R"("warnings":["unknown request key \"tragets\"",)"
            R"("unknown request key \"teleport\""]})");
}

TEST(Protocol, TenantFieldRoutesThroughResolver) {
  const Graph cyc = cycle_graph(6);
  const Graph path = path_graph(4);
  const auto resolve = [&](const std::string& tenant) -> const Graph* {
    if (tenant.empty() || tenant == "rings") return &cyc;
    if (tenant == "lines") return &path;
    return nullptr;
  };
  // Fault-edge endpoints resolve against the graph the tenant names: (0,5)
  // is an edge of the 6-cycle but not of the 4-path.
  const ParsedRequest on_cycle = parse_request_line(
      R"({"source":0,"targets":[3],"tenant":"rings","fault_edges":[[0,5]]})",
      resolve);
  ASSERT_EQ(on_cycle.status, ParseStatus::kOk) << on_cycle.error;
  EXPECT_EQ(on_cycle.tenant, "rings");
  EXPECT_EQ(on_cycle.request.fault_edges[0], cyc.find_edge(0, 5));
  const ParsedRequest on_path = parse_request_line(
      R"({"source":0,"targets":[3],"tenant":"lines","fault_edges":[[0,5]]})",
      resolve);
  EXPECT_EQ(on_path.status, ParseStatus::kResolve);
  EXPECT_EQ(on_path.resolve_status, StatusCode::kUnknownSource);
  // An unknown tenant is its own refusal — kUnknownTenant, id still echoed.
  const ParsedRequest nowhere = parse_request_line(
      R"({"id":9,"source":0,"tenant":"ghost"})", resolve);
  EXPECT_EQ(nowhere.status, ParseStatus::kResolve);
  EXPECT_EQ(nowhere.resolve_status, StatusCode::kUnknownTenant);
  EXPECT_EQ(nowhere.request.id, 9);
  // The single-graph overload treats any named tenant as unknown.
  EXPECT_EQ(parse_request_line(R"({"source":0,"tenant":"x"})", cyc).status,
            ParseStatus::kResolve);
  EXPECT_EQ(parse_request_line(R"({"source":0,"tenant":""})", cyc).status,
            ParseStatus::kOk);
}

TEST(Protocol, FormatsResponseLine) {
  QueryResponse resp;
  resp.id = 7;
  resp.status = StatusCode::kOk;
  resp.exact = true;
  resp.served_by = "tree";
  resp.cache_hit = true;
  resp.distances = {2, kInfHops};
  EXPECT_EQ(format_response_line(resp),
            R"({"id":7,"status":"ok","exact":true,"served_by":"tree",)"
            R"("cache_hit":true,"distances":[2,-1]})");
}

TEST(Protocol, ServiceRoundTrip) {
  const Graph g = cycle_graph(8);
  OracleService service(g);
  const ParsedRequest parsed = parse_request_line(
      R"({"id":1,"source":0,"targets":[4],"fault_edges":[[0,1]]})", g);
  ASSERT_EQ(parsed.status, ParseStatus::kOk) << parsed.error;
  const std::string line = format_response_line(service.serve(parsed.request));
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"distances\":[4]"), std::string::npos) << line;
}

}  // namespace
}  // namespace ftbfs
