#include "sim/failure_sim.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/cons2ftbfs.h"
#include "core/kfail_ftbfs.h"
#include "core/single_ftbfs.h"
#include "graph/generators.h"

namespace ftbfs {
namespace {

std::vector<EdgeId> all_edges(const Graph& g) {
  std::vector<EdgeId> ids(g.num_edges());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(FailureSim, FullGraphOverlayAlwaysExact) {
  const Graph g = erdos_renyi(40, 0.15, 3);
  SimConfig cfg;
  cfg.ticks = 200;
  cfg.max_concurrent_faults = 3;
  FailureSimulator sim(g, 0, cfg);
  sim.add_overlay("full", all_edges(g), 3);
  const auto metrics = sim.run();
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].exact, metrics[0].routed);
  EXPECT_EQ(metrics[0].stretched, 0u);
  EXPECT_EQ(metrics[0].disconnected, 0u);
}

TEST(FailureSim, DualStructureExactWithinBudget) {
  const Graph g = erdos_renyi(60, 0.1, 7);
  Cons2Options opt;
  opt.classify_paths = false;
  const FtStructure h = build_cons2ftbfs(g, 0, opt);
  SimConfig cfg;
  cfg.ticks = 300;
  cfg.max_concurrent_faults = 2;  // never beyond the dual budget
  FailureSimulator sim(g, 0, cfg);
  sim.add_overlay("dual", h.edges, 2);
  const auto metrics = sim.run();
  // Inside the budget the FT guarantee is exactness — always.
  EXPECT_EQ(metrics[0].non_exact_in_budget, 0u);
  EXPECT_EQ(metrics[0].routed_in_budget, metrics[0].routed);
  EXPECT_EQ(metrics[0].exact, metrics[0].routed);
}

TEST(FailureSim, SingleStructureExactOnlyWithinItsBudget) {
  const Graph g = erdos_renyi(60, 0.1, 9);
  const FtStructure h1 = build_single_ftbfs(g, 0);
  SimConfig cfg;
  cfg.ticks = 400;
  cfg.failure_probability = 0.01;
  cfg.max_concurrent_faults = 2;  // can exceed the single-failure budget
  FailureSimulator sim(g, 0, cfg);
  sim.add_overlay("single", h1.edges, 1);
  const auto metrics = sim.run();
  EXPECT_EQ(metrics[0].non_exact_in_budget, 0u);  // guarantee holds for |F|<=1
  // Some two-fault ticks occurred (histogram sanity).
  EXPECT_GT(sim.fault_histogram()[2], 0u);
}

TEST(FailureSim, TreeOverlayDegradesBeyondZeroFaults) {
  const Graph g = erdos_renyi(50, 0.15, 11);
  const KFailResult tree = build_kfail_ftbfs(g, 0, 0);
  SimConfig cfg;
  cfg.ticks = 300;
  cfg.failure_probability = 0.02;
  FailureSimulator sim(g, 0, cfg);
  sim.add_overlay("tree", tree.structure.edges, 0);
  const auto metrics = sim.run();
  EXPECT_EQ(metrics[0].non_exact_in_budget, 0u);  // fault-free ticks fine
  EXPECT_GT(metrics[0].disconnected + metrics[0].stretched, 0u);
}

TEST(FailureSim, DeterministicPerSeed) {
  const Graph g = erdos_renyi(30, 0.2, 13);
  auto run_once = [&] {
    SimConfig cfg;
    cfg.ticks = 100;
    cfg.seed = 77;
    FailureSimulator sim(g, 0, cfg);
    sim.add_overlay("full", all_edges(g), 2);
    return sim.run()[0].exact;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FailureSim, DeltaPathDoesNotChangeMetricsAndServesTicks) {
  // The simulator's drifting tick-states are the repair path's home turf:
  // metrics must be identical with the delta tiers on and off, and with
  // caching disabled the on-run must answer cache-missing ticks from the
  // baseline/repair tiers instead of full BFS.
  const Graph g = erdos_renyi(40, 0.15, 23);
  const FtStructure h = build_cons2ftbfs(g, 0);
  auto run_once = [&](bool delta) {
    SimConfig cfg;
    cfg.ticks = 120;
    cfg.seed = 9;
    cfg.cache_capacity = 0;  // every tick row reaches an engine
    cfg.delta_queries = delta;
    FailureSimulator sim(g, 0, cfg);
    sim.add_overlay("cons2", h.edges, 2);
    const auto metrics = sim.run();
    return std::pair(metrics, sim.service_stats());
  };
  const auto [with_delta, on_stats] = run_once(true);
  const auto [without_delta, off_stats] = run_once(false);
  ASSERT_EQ(with_delta.size(), without_delta.size());
  for (std::size_t i = 0; i < with_delta.size(); ++i) {
    EXPECT_EQ(with_delta[i].exact, without_delta[i].exact);
    EXPECT_EQ(with_delta[i].stretched, without_delta[i].stretched);
    EXPECT_EQ(with_delta[i].disconnected, without_delta[i].disconnected);
    EXPECT_EQ(with_delta[i].extra_hops, without_delta[i].extra_hops);
    EXPECT_EQ(with_delta[i].non_exact_in_budget,
              without_delta[i].non_exact_in_budget);
  }
  EXPECT_GT(on_stats.fast_path_hits + on_stats.repair_bfs, 0u);
  EXPECT_EQ(off_stats.fast_path_hits + off_stats.repair_bfs, 0u);
  EXPECT_GT(off_stats.full_bfs, 0u);
}

TEST(FailureSim, DeltaCacheDoesNotChangeMetricsAndShrinksLines) {
  // The delta-compressed scenario cache is a representation change: tick
  // metrics must be identical with compression on and off, while the cached
  // tick-states resident bytes collapse to the affected-region diffs.
  const Graph g = erdos_renyi(40, 0.15, 23);
  const FtStructure h = build_cons2ftbfs(g, 0);
  auto run_once = [&](double fraction) {
    SimConfig cfg;
    cfg.ticks = 120;
    cfg.seed = 9;
    cfg.cache_delta_max_fraction = fraction;
    FailureSimulator sim(g, 0, cfg);
    sim.add_overlay("cons2", h.edges, 2);
    const auto metrics = sim.run();
    return std::pair(metrics, sim.service_stats());
  };
  const auto [compressed, delta_stats] = run_once(0.25);
  const auto [full_lines, full_stats] = run_once(0.0);
  ASSERT_EQ(compressed.size(), full_lines.size());
  for (std::size_t i = 0; i < compressed.size(); ++i) {
    EXPECT_EQ(compressed[i].exact, full_lines[i].exact);
    EXPECT_EQ(compressed[i].stretched, full_lines[i].stretched);
    EXPECT_EQ(compressed[i].disconnected, full_lines[i].disconnected);
    EXPECT_EQ(compressed[i].extra_hops, full_lines[i].extra_hops);
  }
  EXPECT_EQ(delta_stats.cache_hits, full_stats.cache_hits);
  EXPECT_EQ(delta_stats.cache_misses, full_stats.cache_misses);
  EXPECT_EQ(delta_stats.cache_lines, full_stats.cache_lines);
  ASSERT_GT(full_stats.cache_lines, 0u);
  EXPECT_LT(delta_stats.cache_resident_bytes, full_stats.cache_resident_bytes);
}

TEST(FailureSim, CapRespected) {
  const Graph g = erdos_renyi(40, 0.2, 17);
  SimConfig cfg;
  cfg.ticks = 300;
  cfg.failure_probability = 0.5;  // aggressive
  cfg.repair_probability = 0.05;
  cfg.max_concurrent_faults = 2;
  FailureSimulator sim(g, 0, cfg);
  sim.add_overlay("full", all_edges(g), 2);
  (void)sim.run();
  const auto& hist = sim.fault_histogram();
  for (std::size_t k = 3; k < hist.size(); ++k) {
    EXPECT_EQ(hist[k], 0u);
  }
}

TEST(FailureSim, ZeroFailureProbabilityNeverFails) {
  const Graph g = cycle_graph(12);
  SimConfig cfg;
  cfg.ticks = 50;
  cfg.failure_probability = 0.0;
  FailureSimulator sim(g, 0, cfg);
  sim.add_overlay("full", all_edges(g), 2);
  const auto metrics = sim.run();
  EXPECT_EQ(metrics[0].exact, metrics[0].routed);
  EXPECT_EQ(sim.fault_histogram()[0], 50u);
}

TEST(FailureSim, MultipleOverlaysComparedOnSameTrace) {
  const Graph g = erdos_renyi(50, 0.12, 19);
  Cons2Options opt;
  opt.classify_paths = false;
  const FtStructure dual = build_cons2ftbfs(g, 0, opt);
  const KFailResult tree = build_kfail_ftbfs(g, 0, 0);
  SimConfig cfg;
  cfg.ticks = 200;
  FailureSimulator sim(g, 0, cfg);
  sim.add_overlay("dual", dual.edges, 2);
  sim.add_overlay("tree", tree.structure.edges, 0);
  const auto metrics = sim.run();
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].routed, metrics[1].routed);  // same trace
  EXPECT_GE(metrics[0].exact, metrics[1].exact);    // dual dominates tree
}

}  // namespace
}  // namespace ftbfs
