#include "lowerbound/necessity.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/verify.h"

namespace ftbfs {
namespace {

TEST(Necessity, SingleFailureAllEssential) {
  const GStarGraph gs = build_gstar(1, 80);
  const NecessityReport r = check_bipartite_necessity(gs, 1u << 30);
  EXPECT_TRUE(r.all_essential);
  EXPECT_EQ(r.edges_checked, r.total_bipartite);
  EXPECT_EQ(r.essential, r.total_bipartite);
}

TEST(Necessity, DualFailureAllEssential) {
  const GStarGraph gs = build_gstar(2, 160);
  const NecessityReport r = check_bipartite_necessity(gs, 1u << 30);
  EXPECT_TRUE(r.all_essential);
  EXPECT_EQ(r.essential, r.total_bipartite);
}

TEST(Necessity, TripleFailureSampled) {
  const GStarGraph gs = build_gstar(3, 700);
  const NecessityReport r = check_bipartite_necessity(gs, 2);
  EXPECT_TRUE(r.all_essential);
  EXPECT_GT(r.edges_checked, 0u);
}

TEST(Necessity, MultiSourceAllEssential) {
  const GStarGraph gs = build_gstar(1, 150, 2);
  const NecessityReport r = check_bipartite_necessity(gs, 1u << 30);
  EXPECT_TRUE(r.all_essential);
}

// The strongest form: removing any single bipartite edge from the FULL graph
// makes it fail exhaustive verification as its own f-failure structure.
TEST(Necessity, RemovalBreaksExhaustiveVerification) {
  const GStarGraph gs = build_gstar(1, 60);
  const Graph& g = gs.graph;
  std::vector<EdgeId> all(g.num_edges());
  std::iota(all.begin(), all.end(), 0);
  // Sanity: the full graph verifies.
  ASSERT_FALSE(verify_exhaustive(g, all, gs.sources, 1).has_value());
  // Drop each of the first few bipartite edges in turn.
  for (std::size_t k = 0; k < std::min<std::size_t>(gs.bipartite_edges.size(),
                                                    6); ++k) {
    std::vector<EdgeId> h;
    for (const EdgeId e : all) {
      if (e != gs.bipartite_edges[k]) h.push_back(e);
    }
    EXPECT_TRUE(verify_exhaustive(g, h, gs.sources, 1).has_value())
        << "bipartite edge " << k << " was not essential";
  }
}

TEST(Necessity, ReportCountsConsistent) {
  const GStarGraph gs = build_gstar(1, 80);
  const NecessityReport r = check_bipartite_necessity(gs, 3);
  std::uint64_t leaves = 0;
  for (const auto& copy : gs.copies) leaves += copy.leaves.size();
  EXPECT_EQ(r.leaves_checked, leaves);
  EXPECT_LE(r.edges_checked, leaves * 3);
  EXPECT_LE(r.essential, r.edges_checked);
}

}  // namespace
}  // namespace ftbfs
