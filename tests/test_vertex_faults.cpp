#include <gtest/gtest.h>

#include "core/kfail_ftbfs.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "spath/bfs.h"

namespace ftbfs {
namespace {

void expect_valid_vertex(const Graph& g, Vertex s, const FtStructure& h,
                         unsigned f) {
  const std::vector<Vertex> sources = {s};
  const auto violation = verify_exhaustive_vertex(g, h.edges, sources, f);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->describe(g) : "");
}

TEST(VertexFaults, FZeroIsBfsTree) {
  const Graph g = erdos_renyi(20, 0.2, 1);
  const KFailResult r = build_kfail_ftbfs_vertex(g, 0, 0);
  EXPECT_EQ(r.structure.edges.size(), g.num_vertices() - 1);
  expect_valid_vertex(g, 0, r.structure, 0);
}

TEST(VertexFaults, SingleVertexFailure) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const Graph g = erdos_renyi(20, 0.25, seed);
    const KFailResult r = build_kfail_ftbfs_vertex(g, 0, 1);
    expect_valid_vertex(g, 0, r.structure, 1);
  }
}

TEST(VertexFaults, DualVertexFailure) {
  for (const std::uint64_t seed : {5ull, 6ull}) {
    const Graph g = erdos_renyi(13, 0.35, seed);
    const KFailResult r = build_kfail_ftbfs_vertex(g, 0, 2);
    expect_valid_vertex(g, 0, r.structure, 2);
  }
}

TEST(VertexFaults, CycleNeedsEverything) {
  const Graph g = cycle_graph(8);
  const KFailResult r = build_kfail_ftbfs_vertex(g, 0, 1);
  EXPECT_EQ(r.structure.edges.size(), g.num_edges());
  expect_valid_vertex(g, 0, r.structure, 1);
}

TEST(VertexFaults, CompleteGraphSparse) {
  const Graph g = complete_graph(10);
  const KFailResult r = build_kfail_ftbfs_vertex(g, 0, 1);
  expect_valid_vertex(g, 0, r.structure, 1);
  EXPECT_LT(r.structure.edges.size(), g.num_edges());
}

TEST(VertexFaults, VertexStructureAlsoSurvivesEdgeFaults) {
  // A vertex fault kills all incident edges, but single-edge tolerance is
  // NOT implied in general; this documents the relationship on a graph where
  // it happens to hold and cross-checks both verifiers run.
  const Graph g = erdos_renyi(14, 0.4, 9);
  const KFailResult rv = build_kfail_ftbfs_vertex(g, 0, 1);
  const KFailResult re = build_kfail_ftbfs(g, 0, 1);
  expect_valid_vertex(g, 0, rv.structure, 1);
  const std::vector<Vertex> sources = {0};
  EXPECT_FALSE(
      verify_exhaustive(g, re.structure.edges, sources, 1).has_value());
}

TEST(VertexFaults, ExhaustiveVertexVerifierDetectsGap) {
  // Theta graph: keep two of three routes; the middle vertex of one kept
  // route failing leaves only the other; failing THAT vertex (f=2... f=1
  // suffices): failing middle vertex 1 forces route via 2; dropping route 3
  // entirely is fine for f=1 — so instead drop route 2 and fail vertex 1.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 4);
  b.add_edge(0, 2);
  b.add_edge(2, 4);
  b.add_edge(0, 3);
  b.add_edge(3, 4);
  const Graph g = std::move(b).build();
  // H keeps routes via 1 and 3 plus the lone edge (0,2) for vertex 2's own
  // distance... but then fault {1} still routes via 3. Fault {2}: fine.
  // To create a violation keep only route via 1 (and stubs for 2, 3):
  const std::vector<EdgeId> h = {g.find_edge(0, 1), g.find_edge(1, 4),
                                 g.find_edge(0, 2), g.find_edge(0, 3)};
  const std::vector<Vertex> sources = {0};
  EXPECT_FALSE(verify_exhaustive_vertex(g, h, sources, 0).has_value());
  const auto violation = verify_exhaustive_vertex(g, h, sources, 1);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->v, 4u);
  EXPECT_EQ(violation->faults, (std::vector<Vertex>{1}));
}

TEST(VertexFaults, Statspopulated) {
  const Graph g = erdos_renyi(16, 0.3, 21);
  const KFailResult r = build_kfail_ftbfs_vertex(g, 0, 2);
  EXPECT_GT(r.kstats.chains_enumerated, 0u);
  EXPECT_EQ(r.structure.edges.size(),
            r.structure.stats.tree_edges + r.structure.stats.new_edges);
}

TEST(VertexFaults, SourceNeighborhoodRobust) {
  // Wheel-ish graph: hub 0 with a cycle around it; failing any rim vertex.
  GraphBuilder b(7);
  for (Vertex v = 1; v < 7; ++v) b.add_edge(0, v);
  for (Vertex v = 1; v < 6; ++v) b.add_edge(v, v + 1);
  b.add_edge(6, 1);
  const Graph g = std::move(b).build();
  const KFailResult r = build_kfail_ftbfs_vertex(g, 0, 2);
  expect_valid_vertex(g, 0, r.structure, 2);
}

}  // namespace
}  // namespace ftbfs
