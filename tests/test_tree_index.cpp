#include "spath/tree_index.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "spath/weights.h"

namespace ftbfs {
namespace {

TreeIndex make_index(const Graph& g, Vertex root, SpResult& out,
                     std::uint64_t seed = 1) {
  const WeightAssignment w(g, seed);
  Dijkstra dij(g, w);
  out = dij.run(root);
  return TreeIndex(g, out, root);
}

TEST(TreeIndex, PathGraphChain) {
  const Graph g = path_graph(6);
  SpResult sp;
  const TreeIndex t = make_index(g, 0, sp);
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_EQ(t.depth(v), v);
    EXPECT_TRUE(t.ancestor_of(0, v));
    if (v > 0) EXPECT_EQ(t.parent(v), v - 1);
  }
  EXPECT_TRUE(t.ancestor_of(2, 5));
  EXPECT_FALSE(t.ancestor_of(5, 2));
}

TEST(TreeIndex, AncestorIsReflexive) {
  const Graph g = erdos_renyi(30, 0.15, 3);
  SpResult sp;
  const TreeIndex t = make_index(g, 0, sp);
  for (Vertex v = 0; v < 30; ++v) {
    if (t.reached(v)) EXPECT_TRUE(t.ancestor_of(v, v));
  }
}

TEST(TreeIndex, AncestorMatchesParentChains) {
  const Graph g = erdos_renyi(40, 0.12, 7);
  SpResult sp;
  const TreeIndex t = make_index(g, 0, sp);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (!t.reached(v)) continue;
    // Walk the parent chain; every vertex on it (and only those among the
    // sampled candidates) is an ancestor.
    std::vector<bool> on_chain(g.num_vertices(), false);
    for (Vertex cur = v; cur != kInvalidVertex; cur = t.parent(cur)) {
      on_chain[cur] = true;
    }
    for (Vertex a = 0; a < g.num_vertices(); ++a) {
      if (!t.reached(a)) continue;
      EXPECT_EQ(t.ancestor_of(a, v), on_chain[a])
          << "a=" << a << " v=" << v;
    }
  }
}

TEST(TreeIndex, DepthsMatchSsspHops) {
  const Graph g = erdos_renyi(50, 0.1, 9);
  SpResult sp;
  const TreeIndex t = make_index(g, 0, sp);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (sp.reached(v)) {
      EXPECT_EQ(t.depth(v), sp.hops(v));
    } else {
      EXPECT_FALSE(t.reached(v));
    }
  }
}

TEST(TreeIndex, ChildrenInverseOfParent) {
  const Graph g = erdos_renyi(30, 0.2, 11);
  SpResult sp;
  const TreeIndex t = make_index(g, 0, sp);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Vertex c : t.children(v)) {
      EXPECT_EQ(t.parent(c), v);
    }
  }
}

TEST(TreeIndex, PreorderVisitsEveryReachedVertexOnce) {
  const Graph g = erdos_renyi(30, 0.15, 13);
  SpResult sp;
  const TreeIndex t = make_index(g, 0, sp);
  std::vector<int> seen(g.num_vertices(), 0);
  for (const Vertex v : t.preorder()) ++seen[v];
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(seen[v], t.reached(v) ? 1 : 0);
  }
  // Parents precede children.
  std::vector<std::size_t> pos(g.num_vertices(), 0);
  for (std::size_t i = 0; i < t.preorder().size(); ++i) {
    pos[t.preorder()[i]] = i;
  }
  for (const Vertex v : t.preorder()) {
    if (v != 0) EXPECT_LT(pos[t.parent(v)], pos[v]);
  }
}

TEST(TreeIndex, UnreachedIsolated) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = std::move(b).build();
  SpResult sp;
  const TreeIndex t = make_index(g, 0, sp);
  EXPECT_FALSE(t.reached(3));
  EXPECT_FALSE(t.ancestor_of(0, 3));
  EXPECT_FALSE(t.ancestor_of(3, 3));
  EXPECT_EQ(t.preorder().size(), 3u);
}

TEST(TreeIndex, BuildsFromBfsTree) {
  const Graph g = erdos_renyi(40, 0.12, 3);
  Bfs bfs(g);
  const BfsResult tree = bfs.run(0);
  const TreeIndex t(g, tree, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(t.reached(v), tree.hops[v] != kInfHops);
    if (!t.reached(v)) continue;
    EXPECT_EQ(t.depth(v), tree.hops[v]);  // BFS depth == hop distance
    EXPECT_EQ(t.parent(v), tree.parent[v]);
    EXPECT_EQ(t.parent_edge(v), tree.parent_edge[v]);
  }
}

TEST(TreeIndex, SubtreeSpansArePreorderSlices) {
  const Graph g = erdos_renyi(48, 0.1, 9);
  Bfs bfs(g);
  const TreeIndex t(g, bfs.run(0), 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::span<const Vertex> span = t.subtree_span(v);
    if (!t.reached(v)) {
      EXPECT_TRUE(span.empty());
      EXPECT_EQ(t.subtree_size(v), 0u);
      continue;
    }
    EXPECT_EQ(span.size(), t.subtree_size(v));
    ASSERT_FALSE(span.empty());
    EXPECT_EQ(span.front(), v);  // slice starts at the subtree root
    // The slice is exactly the descendant set (ancestor test agrees), and
    // subtree sizes are consistent with it.
    std::size_t descendants = 0;
    for (Vertex w = 0; w < g.num_vertices(); ++w) {
      if (t.ancestor_of(v, w)) ++descendants;
    }
    EXPECT_EQ(descendants, span.size());
    for (const Vertex w : span) EXPECT_TRUE(t.ancestor_of(v, w));
    EXPECT_EQ(t.preorder()[t.preorder_index(v)], v);
  }
  // Root slice covers every reached vertex.
  EXPECT_EQ(t.subtree_span(0).size(), t.preorder().size());
}

}  // namespace
}  // namespace ftbfs
