#include "core/single_ftbfs.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/verify.h"
#include "graph/generators.h"

namespace ftbfs {
namespace {

void expect_valid_single(const Graph& g, Vertex s, const FtStructure& h) {
  const std::vector<Vertex> sources = {s};
  const auto violation = verify_exhaustive(g, h.edges, sources, 1);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->describe(g) : "");
}

TEST(SingleFtbfs, Cycle) {
  const Graph g = cycle_graph(7);
  const FtStructure h = build_single_ftbfs(g, 0);
  expect_valid_single(g, 0, h);
  EXPECT_EQ(h.edges.size(), g.num_edges());  // cycle: everything needed
}

TEST(SingleFtbfs, CompleteGraphNearLinear) {
  const Graph g = complete_graph(12);
  const FtStructure h = build_single_ftbfs(g, 0);
  expect_valid_single(g, 0, h);
  // Depth-1 BFS tree: per vertex at most 1 new edge -> <= 2(n-1) edges.
  EXPECT_LE(h.edges.size(), 2u * (g.num_vertices() - 1));
}

TEST(SingleFtbfs, StatsConsistent) {
  const Graph g = erdos_renyi(40, 0.1, 3);
  const FtStructure h = build_single_ftbfs(g, 0);
  EXPECT_EQ(h.edges.size(), h.stats.tree_edges + h.stats.new_edges);
  EXPECT_EQ(h.stats.classes.single, h.stats.new_edges);
}

TEST(SingleFtbfs, SubsetOfDualStructureSizes) {
  // Not literally a subset edge-wise, but never larger: the dual structure
  // contains the single-failure last edges plus more.
  const Graph g = erdos_renyi(30, 0.15, 11);
  const FtStructure h1 = build_single_ftbfs(g, 0);
  EXPECT_LE(h1.edges.size(), g.num_edges());
}

class SingleSweep
    : public ::testing::TestWithParam<std::tuple<Vertex, double, std::uint64_t>> {
};

TEST_P(SingleSweep, ExhaustiveSingleFailure) {
  const auto [n, p, seed] = GetParam();
  const Graph g = erdos_renyi(n, p, seed);
  const FtStructure h = build_single_ftbfs(g, 0);
  expect_valid_single(g, 0, h);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, SingleSweep,
    ::testing::Combine(::testing::Values<Vertex>(10, 25, 45, 70),
                       ::testing::Values(0.08, 0.2, 0.4),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(SingleFtbfs, SizeWithinTheoremBound) {
  // [10]: O(n^{3/2}); assert with a generous constant.
  for (const Vertex n : {30u, 60u, 90u}) {
    const Graph g = erdos_renyi(n, 0.15, 7);
    const FtStructure h = build_single_ftbfs(g, 0);
    EXPECT_LT(static_cast<double>(h.edges.size()),
              4.0 * std::pow(n, 1.5));
  }
}

TEST(SingleFtbfs, GridAndHypercube) {
  {
    const Graph g = grid_graph(5, 5);
    expect_valid_single(g, 0, build_single_ftbfs(g, 0));
  }
  {
    const Graph g = hypercube_graph(4);
    expect_valid_single(g, 0, build_single_ftbfs(g, 0));
  }
}

TEST(SingleFtbfs, NonzeroSource) {
  const Graph g = erdos_renyi(25, 0.2, 17);
  for (const Vertex s : {1u, 7u, 24u}) {
    const FtStructure h = build_single_ftbfs(g, s);
    expect_valid_single(g, s, h);
  }
}

}  // namespace
}  // namespace ftbfs
