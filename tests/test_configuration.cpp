#include "structure/configuration.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ftbfs {
namespace {

Detour make_detour(std::size_t x_idx, std::size_t y_idx, Path verts = {}) {
  Detour d;
  d.x_pi_index = x_idx;
  d.y_pi_index = y_idx;
  d.verts = std::move(verts);
  if (!d.verts.empty()) {
    d.x = d.verts.front();
    d.y = d.verts.back();
  }
  return d;
}

TEST(ClassifyDetours, NonNested) {
  const auto c = classify_detours(make_detour(0, 2, {0, 100, 2}),
                                  make_detour(3, 5, {3, 101, 5}));
  EXPECT_EQ(c.config, DetourConfig::kNonNested);
  EXPECT_FALSE(c.swapped);
  EXPECT_FALSE(c.dependent);
}

TEST(ClassifyDetours, Nested) {
  const auto c = classify_detours(make_detour(0, 6, {0, 100, 6}),
                                  make_detour(2, 4, {2, 101, 4}));
  EXPECT_EQ(c.config, DetourConfig::kNested);
}

TEST(ClassifyDetours, Interleaved) {
  const auto c = classify_detours(make_detour(0, 4, {0, 100, 4}),
                                  make_detour(2, 6, {2, 101, 6}));
  EXPECT_EQ(c.config, DetourConfig::kInterleaved);
}

TEST(ClassifyDetours, XInterleaved) {
  const auto c = classify_detours(make_detour(1, 4, {1, 100, 4}),
                                  make_detour(1, 6, {1, 101, 6}));
  EXPECT_EQ(c.config, DetourConfig::kXInterleaved);
  EXPECT_TRUE(c.dependent);  // share x
}

TEST(ClassifyDetours, YInterleaved) {
  const auto c = classify_detours(make_detour(0, 5, {0, 100, 5}),
                                  make_detour(2, 5, {2, 101, 5}));
  EXPECT_EQ(c.config, DetourConfig::kYInterleaved);
  EXPECT_TRUE(c.dependent);  // share y
}

TEST(ClassifyDetours, XYInterleaved) {
  const auto c = classify_detours(make_detour(0, 3, {0, 100, 3}),
                                  make_detour(3, 6, {3, 101, 6}));
  EXPECT_EQ(c.config, DetourConfig::kXYInterleaved);
}

TEST(ClassifyDetours, Identical) {
  const auto c = classify_detours(make_detour(0, 3, {0, 100, 3}),
                                  make_detour(0, 3, {0, 100, 3}));
  EXPECT_EQ(c.config, DetourConfig::kIdentical);
}

TEST(ClassifyDetours, SwapNormalization) {
  const auto c = classify_detours(make_detour(3, 5, {3, 101, 5}),
                                  make_detour(0, 2, {0, 100, 2}));
  EXPECT_EQ(c.config, DetourConfig::kNonNested);
  EXPECT_TRUE(c.swapped);
}

TEST(ClassifyDetours, DirectionDetection) {
  // Shared middle segment 10-11 traversed in the same direction.
  const auto fw = classify_detours(make_detour(0, 4, {0, 10, 11, 4}),
                                   make_detour(2, 6, {2, 10, 11, 6}));
  EXPECT_TRUE(fw.dependent);
  EXPECT_TRUE(fw.same_direction);
  // Opposite direction.
  const auto rev = classify_detours(make_detour(0, 4, {0, 10, 11, 4}),
                                    make_detour(2, 6, {2, 11, 10, 6}));
  EXPECT_TRUE(rev.dependent);
  EXPECT_FALSE(rev.same_direction);
}

TEST(ToString, AllNamesDistinct) {
  EXPECT_STREQ(to_string(DetourConfig::kNonNested), "non-nested");
  EXPECT_STREQ(to_string(DetourConfig::kXYInterleaved), "(x,y)-interleaved");
  EXPECT_STREQ(to_string(DetourConfig::kIdentical), "identical");
}

TEST(ExcludedSuffix, InterleavedPairYieldsSuffix) {
  // D1 = 0..4 via {10, 11}, D2 = 2..6 via the same shared middle: the last
  // vertex of D2 common to D1 is 11, so L1 = D1[11, 4].
  const auto excl =
      excluded_suffix(make_detour(0, 4, {0, 10, 11, 4}),
                      make_detour(2, 6, {2, 10, 11, 6}));
  ASSERT_TRUE(excl.has_value());
  EXPECT_TRUE(excl->excluded_of_first);
  EXPECT_EQ(excl->segment, (Path{11, 4}));
}

TEST(ExcludedSuffix, SwappedArgumentsReportOwner) {
  const auto excl =
      excluded_suffix(make_detour(2, 6, {2, 10, 11, 6}),
                      make_detour(0, 4, {0, 10, 11, 4}));
  ASSERT_TRUE(excl.has_value());
  EXPECT_FALSE(excl->excluded_of_first);  // the suffix belongs to the second
  EXPECT_EQ(excl->segment, (Path{11, 4}));
}

TEST(ExcludedSuffix, NoneForNestedOrDisjointConfigs) {
  EXPECT_FALSE(excluded_suffix(make_detour(0, 6, {0, 100, 6}),
                               make_detour(2, 4, {2, 101, 4}))
                   .has_value());  // nested
  EXPECT_FALSE(excluded_suffix(make_detour(0, 2, {0, 100, 2}),
                               make_detour(3, 5, {3, 101, 5}))
                   .has_value());  // non-nested
}

TEST(ExcludedSuffix, IndependentInterleavedHasNone) {
  // Interleaved by π positions but vertex-disjoint.
  EXPECT_FALSE(excluded_suffix(make_detour(0, 4, {0, 100, 4}),
                               make_detour(2, 6, {2, 101, 6}))
                   .has_value());
}

TEST(ExcludedSuffix, XYInterleavedSharedEndpoint) {
  // D1 ends where D2 starts: w = 3 (the shared π vertex), L1 = D1[3,3] has
  // no edge -> nullopt; with an interior shared vertex the suffix is real.
  EXPECT_FALSE(excluded_suffix(make_detour(0, 3, {0, 100, 3}),
                               make_detour(3, 6, {3, 101, 6}))
                   .has_value());
  const auto excl =
      excluded_suffix(make_detour(0, 3, {0, 100, 102, 3}),
                      make_detour(3, 6, {3, 102, 101, 6}));
  ASSERT_TRUE(excl.has_value());
  EXPECT_EQ(excl->segment, (Path{102, 3}));
}

// Claims 3.8 and 3.9 as executable properties over random instances:
// non-nested and nested detour pairs are always vertex-disjoint.
TEST(DetourStructureProperties, NonNestedAndNestedAreIndependent) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull}) {
    const Graph g = erdos_renyi(40, 0.11, seed);
    const WeightAssignment w(g, seed);
    PathSelector sel(g, w);
    for (const Vertex v : {13u, 27u, 39u}) {
      const DetourSet ds = compute_detours(sel, 0, v);
      for (std::size_t i = 0; i < ds.detours.size(); ++i) {
        for (std::size_t j = i + 1; j < ds.detours.size(); ++j) {
          const auto c = classify_detours(ds.detours[i], ds.detours[j]);
          if (c.config == DetourConfig::kNonNested) {
            EXPECT_FALSE(c.dependent)
                << "Claim 3.8 violated at seed " << seed << " v " << v;
          }
          if (c.config == DetourConfig::kNested) {
            EXPECT_FALSE(c.dependent)
                << "Claim 3.9 violated at seed " << seed << " v " << v;
          }
        }
      }
    }
  }
}

// Claim 3.11(b): when the two detours traverse their shared segment in
// opposite directions they must be rev- or (x,y)-interleaved — i.e. for
// dependent x-interleaved and y-interleaved pairs the direction agrees.
TEST(DetourStructureProperties, SharedDirectionForAlignedConfigs) {
  for (const std::uint64_t seed : {7ull, 8ull, 9ull}) {
    const Graph g = erdos_renyi(40, 0.12, seed);
    const WeightAssignment w(g, seed);
    PathSelector sel(g, w);
    for (const Vertex v : {10u, 20u, 30u}) {
      const DetourSet ds = compute_detours(sel, 0, v);
      for (std::size_t i = 0; i < ds.detours.size(); ++i) {
        for (std::size_t j = i + 1; j < ds.detours.size(); ++j) {
          const auto c = classify_detours(ds.detours[i], ds.detours[j]);
          if (!c.dependent) continue;
          if (c.config == DetourConfig::kXInterleaved ||
              c.config == DetourConfig::kYInterleaved ||
              c.config == DetourConfig::kIdentical) {
            EXPECT_TRUE(c.same_direction)
                << to_string(c.config) << " at seed " << seed << " v " << v;
          }
          if (c.config == DetourConfig::kXYInterleaved) {
            // Single shared vertex (y1 == x2) or reverse traversal.
            EXPECT_TRUE(c.same_direction ||
                        first_common(ds.detours[i].verts,
                                     ds.detours[j].verts) != kInvalidVertex);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace ftbfs
