// Steady-state serving must not allocate on the query hot path: after one
// warm-up pass (which sizes the canon buffers, the repair scratch — parents
// included — the Dial buckets, and the BFS target stamps), every further
// engine query — fast path, repair path, and full-BFS fallback alike — runs
// on reused buffers; the scenario cache's probe/read path is equally clean
// (packed keys into a reused word buffer, hits read through at()). This
// binary overrides the global allocator with a counting shim and asserts
// the per-query count is exactly zero across a mixed workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "engine/query_engine.h"
#include "graph/generators.h"
#include "service/shard.h"
#include "spath/bfs.h"
#include "util/rng.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// Over-aligned forms too, so an aligned container sneaking onto the query
// path cannot allocate past the counter unnoticed.
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (std::max<std::size_t>(size, 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ftbfs {
namespace {

// Allocation count across a callable, kept EXPECT-free inside the window so
// gtest's own bookkeeping never pollutes the measurement.
template <typename Fn>
std::size_t allocations_during(Fn&& fn) {
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(ZeroAlloc, CanonicalFaultSetAssignReusesBuffers) {
  std::vector<EdgeId> edges = {9, 3, 3, 7, 1};
  std::vector<Vertex> vertices = {4, 4, 2};
  CanonicalFaultSet canon;
  canon.assign(FaultSpec{edges, vertices});  // warm-up sizes the buffers
  const std::size_t count = allocations_during([&] {
    for (int i = 0; i < 100; ++i) {
      edges[0] = static_cast<EdgeId>(i % 11);
      canon.assign(FaultSpec{edges, vertices});
    }
  });
  EXPECT_EQ(count, 0u);
}

TEST(ZeroAlloc, EngineQueriesAreAllocationFreeWhenWarm) {
  const Graph g = erdos_renyi(96, 0.08, 11);
  FaultQueryEngine engine(g);
  Bfs bfs(g);
  const BfsResult tree = bfs.run(0);

  // A workload that exercises all three tiers: non-tree faults (fast path),
  // tree faults (repair), and a damaged parent-exposing query (full BFS).
  Rng rng(5);
  std::vector<std::vector<EdgeId>> fault_pool(16);
  for (auto& faults : fault_pool) {
    for (std::uint64_t k = rng.next_below(3); k > 0; --k) {
      if (rng.next_below(2) == 0) {
        const Vertex v = static_cast<Vertex>(rng.next_below(g.num_vertices()));
        if (tree.parent_edge[v] != kInvalidEdge) {
          faults.push_back(tree.parent_edge[v]);
          continue;
        }
      }
      faults.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
    }
  }
  // A faulted source is the one guaranteed full-BFS customer left now that
  // damaged parent-exposing queries repair instead of falling back.
  const Vertex source_fault[1] = {0};
  const auto run_workload = [&] {
    for (std::size_t i = 0; i < fault_pool.size(); ++i) {
      const FaultSpec spec = edge_faults(fault_pool[i]);
      (void)engine.all_distances(0, spec);
      (void)engine.distance(0, static_cast<Vertex>(1 + i % 90), spec);
      (void)engine.query(0, spec);
    }
    (void)engine.all_distances(0, vertex_faults(source_fault));
  };
  run_workload();  // warm-up: baselines, repair scratch, Dial buckets
  const std::size_t count = allocations_during(run_workload);
  EXPECT_EQ(count, 0u);
  // The workload genuinely crossed all three tiers.
  const FaultQueryEngine::PathStats stats = engine.path_stats();
  EXPECT_GT(stats.fast_path_hits, 0u);
  EXPECT_GT(stats.repair_bfs, 0u);
  EXPECT_GT(stats.full_bfs, 0u);
}

TEST(ZeroAlloc, CacheProbeAndReadPathAreAllocationFree) {
  ShardedScenarioCache cache(64, 4);
  // One full line and one delta line, both warm.
  std::vector<std::uint32_t> words = {1, 0, 2, 7, 9};
  const auto key_of = [&](std::uint32_t entry) {
    words[0] = entry;
    return ScenarioKeyView{scenario_fingerprint(words), words};
  };
  const std::vector<std::uint32_t> baseline(128, 3);
  {
    auto full = cache.probe(key_of(1), true);
    ASSERT_TRUE(full.owner);
    ShardedScenarioCache::fill(*full.line, baseline);
    auto delta = cache.probe(key_of(2), true);
    ASSERT_TRUE(delta.owner);
    ShardedScenarioCache::fill_delta(*delta.line, &baseline,
                                     {(std::uint64_t{5} << 32) | 8u});
  }
  std::vector<std::uint32_t> out(128, 0);  // pre-sized materialize target
  const std::size_t count = allocations_during([&] {
    for (int i = 0; i < 100; ++i) {
      // Hit path: fingerprint + probe + per-target reads, no owner work.
      auto full = cache.probe(key_of(1), false);
      auto delta = cache.probe(key_of(2), false);
      if (!full.hit || !delta.hit) return;  // EXPECT after the window
      ShardedScenarioCache::wait(*full.line);
      ShardedScenarioCache::wait(*delta.line);
      if (ShardedScenarioCache::at(*full.line, 5) +
              ShardedScenarioCache::at(*delta.line, 5) !=
          3u + 8u) {
        return;
      }
      ShardedScenarioCache::materialize(*delta.line, out);
    }
  });
  EXPECT_EQ(count, 0u);
  EXPECT_EQ(out[5], 8u);
  EXPECT_EQ(out[0], 3u);
}

TEST(ZeroAlloc, LeasedQueriesAreAllocationFreeWhenWarm) {
  const Graph g = grid_graph(10, 10);
  FaultQueryEngine engine(g);
  Bfs bfs(g);
  const BfsResult tree = bfs.run(0);
  const std::vector<EdgeId> tree_fault = {tree.parent_edge[55]};
  // Grid edge {10,11}: both endpoints are discovered through other edges
  // (11 via row 0), so this is a non-tree cross edge — the fast path.
  const std::vector<EdgeId> cross_fault = {g.find_edge(10, 11)};
  FaultQueryEngine::ScratchLease lease = engine.acquire_scratch();
  (void)engine.all_distances(lease, 0, edge_faults(tree_fault));
  (void)engine.all_distances(lease, 0, edge_faults(cross_fault));
  const std::size_t count = allocations_during([&] {
    for (int i = 0; i < 50; ++i) {
      (void)engine.all_distances(lease, 0, edge_faults(tree_fault));
      (void)engine.distance(lease, 0, 99, edge_faults(cross_fault));
    }
  });
  EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace ftbfs
