// Executable versions of the paper's path-level lemmas, checked against the
// new-ending paths Cons2FTBFS actually constructs (via the record sink).
//
//   Claim 3.5 / 3.15(1): every new-ending (π,D) path has a *unique*
//                        π-divergence point, above its first failing edge.
//   Claim 3.15(3.1):     paths intersecting their detour decompose as
//                        π(s,x) ∘ D[x,c] ∘ tail, with the tail edge-disjoint
//                        from D and π.
//   Lemma 3.16:          D-divergence points of distinct new-ending paths are
//                        distinct.
//   Obs. 3.42:           suffixes P[c,v]∖{v} of *independent* paths are
//                        vertex-disjoint.
//   Obs. 3.19:           paths in P_nodet protect distinct first edges.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/cons2ftbfs.h"
#include "graph/generators.h"
#include "structure/configuration.h"
#include "structure/kernel.h"
#include "structure/newending.h"

namespace ftbfs {
namespace {

struct RecordedVertex {
  Vertex v;
  Path pi;
  std::vector<NewEndingRecord> records;
};

std::vector<RecordedVertex> run_with_records(const Graph& g, Vertex s,
                                             std::uint64_t seed = 1) {
  std::vector<RecordedVertex> out;
  Cons2Options opt;
  opt.weight_seed = seed;
  opt.record_sink = [&out](Vertex v, const Path& pi,
                           const std::vector<NewEndingRecord>& recs) {
    out.push_back(RecordedVertex{v, pi, recs});
  };
  (void)build_cons2ftbfs(g, s, opt);
  return out;
}

// The (π,D) records of one vertex.
std::vector<const NewEndingRecord*> pid_records(const RecordedVertex& rv) {
  std::vector<const NewEndingRecord*> out;
  for (const NewEndingRecord& r : rv.records) {
    if (r.kind == NewEndingRecord::Kind::kPiD) out.push_back(&r);
  }
  return out;
}

// First divergence index of path from pi; asserts the prefix matches.
std::size_t pi_divergence(const Path& p, const Path& pi) {
  return first_divergence(p, pi);
}

class PaperLemmas : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaperLemmas, UniquePiDivergencePoint) {
  const Graph g = erdos_renyi(40, 0.12, GetParam());
  for (const RecordedVertex& rv : run_with_records(g, 0, GetParam())) {
    for (const NewEndingRecord* r : pid_records(rv)) {
      // Claim 3.5(1): exactly one divergence point from π.
      const auto divs = divergence_points(r->path, rv.pi);
      EXPECT_EQ(divs.size(), 1u)
          << "non-unique π-divergence at v=" << rv.v;
      // Claim 3.5(2): after the divergence the path shares no π edge.
      const std::size_t b = pi_divergence(r->path, rv.pi);
      for (std::size_t i = b; i + 1 < r->path.size(); ++i) {
        const EdgeId e = g.find_edge(r->path[i], r->path[i + 1]);
        EXPECT_FALSE(contains_edge(g, rv.pi, e));
      }
      // The divergence lies above F1(P) on π.
      const Edge& f1 = g.edge(r->f1);
      const std::size_t f1_pos =
          std::min(index_of(rv.pi, f1.u), index_of(rv.pi, f1.v));
      EXPECT_LE(b, f1_pos);
    }
  }
}

TEST_P(PaperLemmas, DecompositionOfDetourIntersectingPaths) {
  const Graph g = erdos_renyi(36, 0.13, GetParam() + 100);
  for (const RecordedVertex& rv : run_with_records(g, 0, GetParam() + 100)) {
    for (const NewEndingRecord* r : pid_records(rv)) {
      // Does the path share an edge with its detour?
      bool intersects = false;
      for (std::size_t i = 0; i + 1 < r->detour.size() && !intersects; ++i) {
        intersects = contains_edge(
            g, r->path, g.find_edge(r->detour[i], r->detour[i + 1]));
      }
      if (!intersects) continue;
      // Claim 3.15(3.1): P = π(s,x) ∘ D[x,c] ∘ tail. The paths that
      // intersect their detour diverge from π exactly at x(D).
      const std::size_t b = pi_divergence(r->path, rv.pi);
      EXPECT_EQ(r->path[b], r->detour.front());
      // Find c: the last path position still on the detour prefix.
      std::size_t c_path = b;
      while (c_path + 1 < r->path.size() &&
             c_path + 1 - b < r->detour.size() &&
             r->path[c_path + 1] == r->detour[c_path + 1 - b]) {
        ++c_path;
      }
      // Tail after c is edge-disjoint from the detour and from π.
      for (std::size_t i = c_path; i + 1 < r->path.size(); ++i) {
        const EdgeId e = g.find_edge(r->path[i], r->path[i + 1]);
        EXPECT_FALSE(contains_edge(g, r->detour, e));
        EXPECT_FALSE(contains_edge(g, rv.pi, e));
      }
    }
  }
}

TEST_P(PaperLemmas, DistinctDDivergencePoints) {
  const Graph g = erdos_renyi(40, 0.12, GetParam() + 200);
  for (const RecordedVertex& rv : run_with_records(g, 0, GetParam() + 200)) {
    // Lemma 3.16: among (π,D) paths that intersect their detours, the
    // D-divergence points are pairwise distinct.
    std::set<Vertex> seen;
    for (const NewEndingRecord* r : pid_records(rv)) {
      const std::size_t b = pi_divergence(r->path, rv.pi);
      if (r->path[b] != r->detour.front()) continue;  // no D-divergence
      std::size_t c = b;
      while (c + 1 < r->path.size() && c + 1 - b < r->detour.size() &&
             r->path[c + 1] == r->detour[c + 1 - b]) {
        ++c;
      }
      if (c == b && r->detour.size() >= 2 &&
          (r->path.size() <= b + 1 || r->path[b + 1] != r->detour[1])) {
        // Path leaves the detour immediately: c = x itself.
      }
      const Vertex c_vertex = r->path[c];
      if (c + 1 == r->path.size()) continue;  // path ends on the detour
      EXPECT_TRUE(seen.insert(c_vertex).second)
          << "duplicate D-divergence " << c_vertex << " at v=" << rv.v
          << " (Lemma 3.16)";
    }
  }
}

TEST_P(PaperLemmas, IndependentSuffixesDisjoint) {
  const Graph g = erdos_renyi(40, 0.12, GetParam() + 300);
  for (const RecordedVertex& rv : run_with_records(g, 0, GetParam() + 300)) {
    const auto pids = pid_records(rv);
    for (std::size_t i = 0; i < pids.size(); ++i) {
      for (std::size_t j = i + 1; j < pids.size(); ++j) {
        // Only the independent pairs (Obs. 3.42).
        if (interferes(g, *pids[i], *pids[j]) ||
            interferes(g, *pids[j], *pids[i])) {
          continue;
        }
        // Suffix after the last detour-prefix vertex; conservative version:
        // suffix after the π-divergence, minus detour vertices, must be
        // disjoint between the two paths (except v).
        auto suffix_set = [&](const NewEndingRecord& r) {
          std::set<Vertex> s;
          const std::size_t b = pi_divergence(r.path, rv.pi);
          for (std::size_t p = b; p + 1 < r.path.size(); ++p) {
            if (!contains_vertex(r.detour, r.path[p])) s.insert(r.path[p]);
          }
          return s;
        };
        const std::set<Vertex> si = suffix_set(*pids[i]);
        for (const Vertex w : suffix_set(*pids[j])) {
          EXPECT_FALSE(si.contains(w))
              << "independent suffixes intersect at " << w << " (Obs. 3.42)";
        }
      }
    }
  }
}

TEST_P(PaperLemmas, NodetPathsProtectDistinctFirstEdges) {
  const Graph g = erdos_renyi(36, 0.14, GetParam() + 400);
  for (const RecordedVertex& rv : run_with_records(g, 0, GetParam() + 400)) {
    // Obs. 3.19 restricted to the class the observation is about.
    std::set<EdgeId> first_edges;
    for (const NewEndingRecord* r : pid_records(rv)) {
      bool intersects = false;
      for (std::size_t i = 0; i + 1 < r->detour.size() && !intersects; ++i) {
        intersects = contains_edge(
            g, r->path, g.find_edge(r->detour[i], r->detour[i + 1]));
      }
      if (intersects) continue;  // only P_nodet
      EXPECT_TRUE(first_edges.insert(r->f1).second)
          << "two P_nodet paths protect the same first edge (Obs. 3.19)";
    }
  }
}

TEST_P(PaperLemmas, RecordsMatchNewEdgeCount) {
  const Graph g = erdos_renyi(30, 0.15, GetParam() + 500);
  std::uint64_t record_count = 0;
  Cons2Options opt;
  opt.weight_seed = GetParam() + 500;
  opt.record_sink = [&record_count](Vertex, const Path&,
                                    const std::vector<NewEndingRecord>& recs) {
    record_count += recs.size();
  };
  const FtStructure h = build_cons2ftbfs(g, 0, opt);
  EXPECT_EQ(record_count, h.stats.new_edges);
}

// Claim 3.12 (the excluded-segment lemma): for detours D1, D2 with
// x1 <= x2 <= y1 < y2 (interleaved / x-interleaved / (x,y)-interleaved), the
// suffix D1[w, y1] with w = Last(D2, D1) is D1-*excluded*: no new-ending path
// with detour D1 has its second fault there.
TEST_P(PaperLemmas, ExcludedSegments) {
  const std::uint64_t seed = GetParam() + 600;
  const Graph g = erdos_renyi(44, 0.12, seed);
  // Recompute the detours with the same machinery/seed Cons2FTBFS uses, so
  // they are bit-identical to the D(P) of the records.
  const WeightAssignment w(g, seed);
  PathSelector sel(g, w);
  for (const RecordedVertex& rv : run_with_records(g, 0, seed)) {
    const DetourSet ds = compute_detours(sel, 0, rv.v);
    for (std::size_t i = 0; i < ds.detours.size(); ++i) {
      for (std::size_t j = i + 1; j < ds.detours.size(); ++j) {
        const auto excl = excluded_suffix(ds.detours[i], ds.detours[j]);
        if (!excl) continue;
        const Detour& d1 =
            excl->excluded_of_first ? ds.detours[i] : ds.detours[j];
        // No new-ending record with detour D1 may place F2 in the excluded
        // suffix.
        for (const NewEndingRecord& r : rv.records) {
          if (r.kind != NewEndingRecord::Kind::kPiD) continue;
          if (r.detour != d1.verts) continue;
          EXPECT_FALSE(contains_edge(g, excl->segment, r.f2))
              << "Claim 3.12 violated at v=" << rv.v << " seed=" << seed;
        }
      }
    }
  }
}

// Corollary 3.13: for dependent rev- or (x,y)-interleaved pairs, the shared
// segment D1 ∩ D2 itself is excluded for D1.
TEST_P(PaperLemmas, SharedSegmentExcludedForReversedPairs) {
  const std::uint64_t seed = GetParam() + 700;
  const Graph g = path_with_chords(40, 30, seed);
  const WeightAssignment w(g, seed);
  PathSelector sel(g, w);
  for (const RecordedVertex& rv : run_with_records(g, 0, seed)) {
    const DetourSet ds = compute_detours(sel, 0, rv.v);
    for (std::size_t i = 0; i < ds.detours.size(); ++i) {
      for (std::size_t j = i + 1; j < ds.detours.size(); ++j) {
        const PairClassification c =
            classify_detours(ds.detours[i], ds.detours[j]);
        if (!c.dependent || c.same_direction) continue;
        if (c.config != DetourConfig::kInterleaved &&
            c.config != DetourConfig::kXYInterleaved) {
          continue;
        }
        const Detour& d1 = c.swapped ? ds.detours[j] : ds.detours[i];
        const Detour& d2 = c.swapped ? ds.detours[i] : ds.detours[j];
        for (const NewEndingRecord& r : rv.records) {
          if (r.kind != NewEndingRecord::Kind::kPiD) continue;
          if (r.detour != d1.verts) continue;
          // F2 must not be an edge of both detours.
          const bool on_both = contains_edge(g, d1.verts, r.f2) &&
                               contains_edge(g, d2.verts, r.f2);
          EXPECT_FALSE(on_both)
              << "Corollary 3.13 violated at v=" << rv.v;
        }
      }
    }
  }
}

// Lemma 3.14: the kernel K(D) of the detour collection contains the detour
// prefix D[x, q2] for the second fault (q1, q2) of every new-ending (π,D)
// path — so all relevant second faults live inside the kernel.
TEST_P(PaperLemmas, KernelContainsSecondFaults) {
  const std::uint64_t seed = GetParam() + 800;
  const Graph g = erdos_renyi(40, 0.13, seed);
  const WeightAssignment w(g, seed);
  PathSelector sel(g, w);
  for (const RecordedVertex& rv : run_with_records(g, 0, seed)) {
    const DetourSet ds = compute_detours(sel, 0, rv.v);
    if (ds.detours.empty()) continue;
    const KernelGraph kernel = build_kernel(g, ds.detours);
    for (const NewEndingRecord* r : pid_records(rv)) {
      // Locate the record's detour and its second fault's far endpoint q2.
      const Detour* own = nullptr;
      for (const Detour& d : ds.detours) {
        if (d.verts == r->detour) {
          own = &d;
          break;
        }
      }
      ASSERT_NE(own, nullptr) << "record detour not among computed detours";
      const Edge& f2 = g.edge(r->f2);
      const std::size_t pu = index_of(own->verts, f2.u);
      const std::size_t pv = index_of(own->verts, f2.v);
      ASSERT_TRUE(pu != kNpos && pv != kNpos);  // F2 lies on the detour
      const std::size_t q2_pos = std::max(pu, pv);
      // The whole prefix D[x .. q2] must be inside the kernel (vertices and
      // edges).
      for (std::size_t p = 0; p <= q2_pos; ++p) {
        EXPECT_TRUE(kernel.contains_vertex(own->verts[p]))
            << "Lemma 3.14 violated (vertex) at v=" << rv.v;
        if (p > 0) {
          const EdgeId e = g.find_edge(own->verts[p - 1], own->verts[p]);
          EXPECT_TRUE(kernel.contains_edge(e))
              << "Lemma 3.14 violated (edge) at v=" << rv.v;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaperLemmas,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ftbfs
