#include "core/kfail_ftbfs.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ft_diameter.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "spath/bfs.h"

namespace ftbfs {
namespace {

void expect_valid(const Graph& g, Vertex s, const FtStructure& h, unsigned f) {
  const std::vector<Vertex> sources = {s};
  const auto violation = verify_exhaustive(g, h.edges, sources, f);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->describe(g) : "");
}

TEST(KFail, FZeroIsBfsTree) {
  const Graph g = erdos_renyi(20, 0.2, 3);
  const KFailResult r = build_kfail_ftbfs(g, 0, 0);
  EXPECT_EQ(r.structure.edges.size(), g.num_vertices() - 1);
  expect_valid(g, 0, r.structure, 0);
}

TEST(KFail, FOneMatchesSingleFailureGuarantee) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const Graph g = erdos_renyi(22, 0.2, seed);
    const KFailResult r = build_kfail_ftbfs(g, 0, 1);
    expect_valid(g, 0, r.structure, 1);
  }
}

TEST(KFail, FTwoIsDualFailureStructure) {
  for (const std::uint64_t seed : {5ull, 6ull, 7ull}) {
    const Graph g = erdos_renyi(14, 0.3, seed);
    const KFailResult r = build_kfail_ftbfs(g, 0, 2);
    expect_valid(g, 0, r.structure, 2);
  }
}

TEST(KFail, FThreeOnTinyGraphs) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    const Graph g = erdos_renyi(10, 0.4, seed);
    const KFailResult r = build_kfail_ftbfs(g, 0, 3);
    expect_valid(g, 0, r.structure, 3);
  }
}

TEST(KFail, FThreeOnHypercube) {
  const Graph g = hypercube_graph(3);
  const KFailResult r = build_kfail_ftbfs(g, 0, 3);
  expect_valid(g, 0, r.structure, 3);
}

TEST(KFail, SizeRespectsFtDiameterBound) {
  // Obs. 1.6: |E(H)| = O(D_f^f * n) — check with constant 2 (structure also
  // holds the tree, and every vertex contributes at most D^f last edges).
  const Graph g = erdos_renyi(24, 0.35, 11);
  const unsigned f = 2;
  const std::uint32_t d = ft_eccentricity(g, 0, f - 1);
  ASSERT_NE(d, kInfHops);
  const KFailResult r = build_kfail_ftbfs(g, 0, f);
  const double bound =
      2.0 * std::pow(static_cast<double>(d), f) * g.num_vertices() +
      g.num_vertices();
  EXPECT_LT(static_cast<double>(r.structure.edges.size()), bound);
}

TEST(KFail, ChainCapTruncates) {
  const Graph g = erdos_renyi(20, 0.3, 13);
  KFailOptions opt;
  opt.max_chains_per_vertex = 3;
  const KFailResult r = build_kfail_ftbfs(g, 0, 2, opt);
  EXPECT_GT(r.kstats.chain_cap_hits, 0u);
}

TEST(KFail, StatsPopulated) {
  const Graph g = erdos_renyi(16, 0.25, 17);
  const KFailResult r = build_kfail_ftbfs(g, 0, 2);
  EXPECT_GT(r.kstats.chains_enumerated, g.num_vertices());
  EXPECT_EQ(r.kstats.chain_cap_hits, 0u);
  EXPECT_EQ(r.structure.edges.size(),
            r.structure.stats.tree_edges + r.structure.stats.new_edges);
}

TEST(KFail, DisconnectedIslandIgnored) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(4, 5);
  const Graph g = std::move(b).build();
  const KFailResult r = build_kfail_ftbfs(g, 0, 2);
  expect_valid(g, 0, r.structure, 2);
}

// Ablation cross-check: for f=2 both the generic chain structure and
// Cons2FTBFS are valid; the chain structure is never more than modestly
// larger on dense graphs (no selection rules), and both contain the tree.
TEST(KFail, AgreesWithTheoremOnCycle) {
  const Graph g = cycle_graph(9);
  const KFailResult r = build_kfail_ftbfs(g, 0, 2);
  EXPECT_EQ(r.structure.edges.size(), g.num_edges());
  expect_valid(g, 0, r.structure, 2);
}

}  // namespace
}  // namespace ftbfs
