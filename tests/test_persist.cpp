// Persistence round-trip property + corruption robustness (PR 8).
//
// Round trip: a service built from scratch and a service restored from its
// snapshot must answer an identical request stream with byte-identical
// response lines (format_response_line output compared string-for-string),
// via both the mmap and buffered load paths. Corruption: deterministic fuzz
// in the style of tests/test_protocol_fuzz.cpp — truncation at every length,
// a flip of every bit, version skew with a repaired header CRC — must always
// end in a typed SnapshotError or a provably harmless load (alignment gaps
// between sections are zero fill covered by no checksum, so a flip there may
// legitimately load; it must then decode to exactly the original image).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "graph/io.h"
#include "persist/service_io.h"
#include "persist/snapshot.h"
#include "service/oracle_service.h"
#include "service/protocol.h"
#include "service/tenant.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace ftbfs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/ftbfs_persist_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void put_u32(std::string& bytes, std::size_t offset, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

// Header layout facts the skew tests rely on (see snapshot.cpp): the u32
// format version sits at byte 8, and the CRC-32 over bytes [0, 48) is stored
// at byte 48. Rewriting the version without repairing that CRC would be
// caught as kChecksum; these tests repair it so the *version* check is what
// fires.
constexpr std::size_t kVersionOffset = 8;
constexpr std::size_t kHeaderCrcOffset = 48;

void repair_header_crc(std::string& bytes) {
  ASSERT_GE(bytes.size(), kHeaderCrcOffset + 4);
  put_u32(bytes, kHeaderCrcOffset, crc32(bytes.data(), kHeaderCrcOffset));
}

// A deterministic request mix: every query kind, fault sets over real edge
// ids, repeats (to exercise cache hit/miss sequencing), and a couple of
// sources (to exercise lazy pool growth on the built side and restored
// coverage on the loaded side).
std::vector<QueryRequest> make_requests(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  const Vertex n = g.num_vertices();
  const EdgeId m = g.num_edges();
  constexpr QueryKind kKinds[] = {QueryKind::kDistance, QueryKind::kPath,
                                  QueryKind::kReachability,
                                  QueryKind::kAllDistances};
  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 28; ++i) {
    QueryRequest req;
    req.id = i + 1;
    req.source = (i % 2 == 0) ? 0 : static_cast<Vertex>(n / 2);
    req.kind = kKinds[i % 4];
    if (req.kind != QueryKind::kAllDistances) {
      for (int t = 0; t < 3; ++t) {
        req.targets.push_back(static_cast<Vertex>(rng.next_below(n)));
      }
    }
    const std::size_t faults = i % 3;  // 0, 1, or 2 distinct fault edges
    while (req.fault_edges.size() < faults) {
      const EdgeId e = static_cast<EdgeId>(rng.next_below(m));
      bool dup = false;
      for (EdgeId have : req.fault_edges) dup = dup || have == e;
      if (!dup) req.fault_edges.push_back(e);
    }
    reqs.push_back(std::move(req));
  }
  // Exact repeats of earlier scenarios: on both the built and the restored
  // service these must replay the same miss-then-hit cache sequence.
  reqs.push_back(reqs[2]);
  reqs.back().id = 100;
  reqs.push_back(reqs[5]);
  reqs.back().id = 101;
  return reqs;
}

std::vector<std::string> serve_all(OracleService& service,
                                   const std::vector<QueryRequest>& reqs) {
  std::vector<std::string> out;
  out.reserve(reqs.size());
  for (const QueryRequest& req : reqs) {
    out.push_back(format_response_line(service.serve(req)));
  }
  return out;
}

ServiceConfig test_config() {
  ServiceConfig config;
  config.default_budget = 2;
  config.cache_capacity = 64;
  return config;
}

// The round-trip property: responses from a restored service are
// byte-identical to the responses the originally built service gave.
void expect_roundtrip(const Graph& g, const std::string& tag) {
  const ServiceConfig config = test_config();
  OracleService built(g, config);
  const std::vector<QueryRequest> reqs = make_requests(g, 7);
  const std::vector<std::string> expected = serve_all(built, reqs);
  ASSERT_GT(built.stats().structures_built, 0u) << tag;

  const SnapshotImage image = PersistAccess::export_service(built, true);
  const std::string path = temp_path(tag + ".ftb");
  save_snapshot(path, image);

  for (const bool use_mmap : {true, false}) {
    SnapshotLoadOptions options;
    options.use_mmap = use_mmap;
    SnapshotImage loaded = load_snapshot(path, options);
    EXPECT_EQ(fingerprint_of(loaded.graph), fingerprint_of(g));

    Graph host = std::move(loaded.graph);
    OracleService restored(host, config);
    PersistAccess::restore_service(restored, loaded, /*warm_cache=*/false);
    EXPECT_EQ(restored.pool_size(), built.pool_size());

    const std::vector<std::string> got = serve_all(restored, reqs);
    EXPECT_EQ(expected, got) << tag << " use_mmap=" << use_mmap;
    // Every structure the stream needs was in the snapshot: the restored
    // service lazily built nothing.
    EXPECT_EQ(restored.stats().structures_built, 0u)
        << tag << " use_mmap=" << use_mmap;
  }
}

TEST(PersistRoundTrip, CycleGraph) { expect_roundtrip(cycle_graph(40), "cycle"); }

TEST(PersistRoundTrip, GridGraph) { expect_roundtrip(grid_graph(6, 7), "grid"); }

TEST(PersistRoundTrip, ErdosRenyi) {
  expect_roundtrip(erdos_renyi(48, 0.12, 11, /*connect_spine=*/true), "er");
}

TEST(PersistRoundTrip, BarbellGraph) {
  expect_roundtrip(barbell_graph(12, 2), "barbell");
}

// Warm-cache restore answers identically modulo the cache_hit flag (warmed
// lines hit where the cold replay missed), and actually pre-fills lines.
TEST(PersistRoundTrip, WarmCacheRestoreMatchesModuloCacheHit) {
  const Graph g = grid_graph(5, 8);
  const ServiceConfig config = test_config();
  OracleService built(g, config);
  const std::vector<QueryRequest> reqs = make_requests(g, 13);
  const std::vector<std::string> expected = serve_all(built, reqs);

  const SnapshotImage image = PersistAccess::export_service(built, true);
  const std::string path = temp_path("warm.ftb");
  save_snapshot(path, image);
  ASSERT_GT(image.cache_lines.size(), 0u);

  SnapshotImage loaded = load_snapshot(path);
  Graph host = std::move(loaded.graph);
  OracleService restored(host, test_config());
  PersistAccess::restore_service(restored, loaded, /*warm_cache=*/true);
  EXPECT_GT(restored.stats().cache_lines, 0u);

  const std::vector<std::string> got = serve_all(restored, reqs);
  ASSERT_EQ(expected.size(), got.size());
  auto strip_cache_hit = [](std::string line) {
    const auto at = line.find(",\"cache_hit\":");
    if (at == std::string::npos) return line;
    const std::size_t end = line.find_first_of(",}", at + 14);
    line.erase(at, end - at);
    return line;
  };
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(strip_cache_hit(expected[i]), strip_cache_hit(got[i])) << i;
  }
}

// Restored baselines feed the fault-delta fast path directly: a no-fault
// distance query after restore is answered from the loaded tree, not a BFS.
TEST(PersistRoundTrip, RestoredBaselinesServeTheFastPath) {
  const Graph g = cycle_graph(32);
  OracleService built(g, test_config());
  QueryRequest req;
  req.id = 1;
  req.source = 0;
  req.targets = {5, 16};
  (void)built.serve(req);

  const SnapshotImage image = PersistAccess::export_service(built, false);
  ASSERT_GT(image.baselines.size(), 0u);
  const std::string path = temp_path("fastpath.ftb");
  save_snapshot(path, image);

  SnapshotImage loaded = load_snapshot(path);
  Graph host = std::move(loaded.graph);
  OracleService restored(host, test_config());
  PersistAccess::restore_service(restored, loaded, false);

  QueryRequest faulty = req;
  faulty.fault_edges = {1};  // a fault that misses half the tree
  (void)restored.serve(faulty);
  const ServiceStats stats = restored.stats();
  EXPECT_EQ(stats.structures_built, 0u);
  EXPECT_GT(stats.fast_path_hits + stats.repair_bfs, 0u)
      << "restored baseline should carry the delta query path";
}

// The CI artifact gate, asserted at unit level too: a snapshot is compact —
// under 2x the in-memory bytes of the state it captures.
TEST(PersistRoundTrip, FileStaysUnderTwiceResidentBytes) {
  const Graph g = erdos_renyi(64, 0.1, 3, /*connect_spine=*/true);
  OracleService built(g, test_config());
  const std::vector<QueryRequest> reqs = make_requests(g, 23);
  (void)serve_all(built, reqs);

  const SnapshotImage image = PersistAccess::export_service(built, true);
  const std::string path = temp_path("size.ftb");
  save_snapshot(path, image);
  const std::string bytes = slurp(path);
  EXPECT_LT(bytes.size(), 2 * image_resident_bytes(image))
      << "snapshot " << bytes.size() << " bytes vs resident "
      << image_resident_bytes(image);
}

// --- corruption fuzz ---------------------------------------------------------

// One small snapshot every corruption test mutates: a couple of structures,
// baselines, and cache lines keep every section type present while the file
// stays small enough to fuzz exhaustively.
class PersistCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = cycle_graph(12);
    OracleService service(graph_, test_config());
    for (const QueryRequest& req : make_requests(graph_, 5)) {
      (void)service.serve(req);
    }
    image_ = PersistAccess::export_service(service, true);
    path_ = temp_path("fuzz.ftb");
    save_snapshot(path_, image_);
    bytes_ = slurp(path_);
    ASSERT_GT(bytes_.size(), kHeaderCrcOffset + 4);
  }

  // Writes `mutant` and loads it through the buffered path (the bounds checks
  // under test are shared with mmap; buffered keeps the exhaustive loops
  // cheap). Returns the image when the loader accepted the file.
  std::optional<SnapshotImage> try_load(const std::string& mutant) {
    spew(scratch_path(), mutant);
    SnapshotLoadOptions options;
    options.use_mmap = false;
    try {
      return load_snapshot(scratch_path(), options);
    } catch (const SnapshotError&) {
      return std::nullopt;
    }
  }

  std::string scratch_path() { return temp_path("fuzz_mutant.ftb"); }

  // Loose-but-sufficient image equality: same graph identity and the same
  // section contents field-for-field where it matters for serving.
  void expect_same_image(const SnapshotImage& got) {
    EXPECT_EQ(fingerprint_of(got.graph), fingerprint_of(image_.graph));
    ASSERT_EQ(got.entries.size(), image_.entries.size());
    for (std::size_t i = 0; i < got.entries.size(); ++i) {
      EXPECT_EQ(got.entries[i].name, image_.entries[i].name);
      EXPECT_EQ(got.entries[i].edges, image_.entries[i].edges);
      EXPECT_EQ(got.entries[i].exact, image_.entries[i].exact);
    }
    ASSERT_EQ(got.baselines.size(), image_.baselines.size());
    for (std::size_t i = 0; i < got.baselines.size(); ++i) {
      EXPECT_EQ(got.baselines[i].hops, image_.baselines[i].hops);
      EXPECT_EQ(got.baselines[i].parent, image_.baselines[i].parent);
    }
    ASSERT_EQ(got.cache_lines.size(), image_.cache_lines.size());
    for (std::size_t i = 0; i < got.cache_lines.size(); ++i) {
      EXPECT_EQ(got.cache_lines[i].key_words, image_.cache_lines[i].key_words);
    }
  }

  Graph graph_;
  SnapshotImage image_;
  std::string path_;
  std::string bytes_;
};

TEST_F(PersistCorruption, TruncationAtEveryLengthIsRejected) {
  // Every proper prefix — including cutting inside the header, at each
  // section boundary, and mid-TOC — must throw, never load or crash.
  for (std::size_t len = 0; len < bytes_.size(); ++len) {
    ASSERT_FALSE(try_load(bytes_.substr(0, len)).has_value())
        << "prefix of " << len << " bytes loaded";
  }
}

TEST_F(PersistCorruption, EveryBitFlipIsRejectedOrHarmless) {
  std::size_t accepted = 0;
  for (std::size_t byte = 0; byte < bytes_.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutant = bytes_;
      mutant[byte] = static_cast<char>(mutant[byte] ^ (1 << bit));
      std::optional<SnapshotImage> got = try_load(mutant);
      if (got.has_value()) {
        // Only a flip in inter-section alignment fill can be accepted (that
        // padding is covered by no CRC); the decoded image must then be
        // exactly the original.
        ++accepted;
        expect_same_image(*got);
        if (HasFatalFailure() || HasNonfatalFailure()) {
          FAIL() << "byte " << byte << " bit " << bit
                 << " flipped and loaded a different image";
        }
      }
    }
  }
  // CRC-covered bytes dominate the file: acceptance is the rare exception.
  EXPECT_LT(accepted, bytes_.size() / 4) << "too many flips went undetected";
}

TEST_F(PersistCorruption, FutureVersionIsRejectedAsBadVersion) {
  std::string mutant = bytes_;
  put_u32(mutant, kVersionOffset, kSnapshotVersion + 1);
  repair_header_crc(mutant);
  spew(scratch_path(), mutant);
  try {
    (void)load_snapshot(scratch_path());
    FAIL() << "future version loaded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.status(), SnapshotStatus::kBadVersion) << e.what();
  }
}

TEST_F(PersistCorruption, VersionZeroIsRejectedAsBadVersion) {
  std::string mutant = bytes_;
  put_u32(mutant, kVersionOffset, 0);
  repair_header_crc(mutant);
  spew(scratch_path(), mutant);
  try {
    (void)load_snapshot(scratch_path());
    FAIL() << "version 0 loaded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.status(), SnapshotStatus::kBadVersion) << e.what();
  }
}

TEST_F(PersistCorruption, WrongMagicIsRejectedAsBadMagic) {
  std::string mutant = bytes_;
  mutant[0] = 'X';
  repair_header_crc(mutant);  // magic must fire even with a consistent CRC
  spew(scratch_path(), mutant);
  try {
    (void)load_snapshot(scratch_path());
    FAIL() << "wrong magic loaded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.status(), SnapshotStatus::kBadMagic) << e.what();
  }
}

TEST_F(PersistCorruption, HeaderEditWithoutCrcRepairIsRejected) {
  std::string mutant = bytes_;
  put_u32(mutant, kVersionOffset, kSnapshotVersion + 1);  // no CRC repair
  ASSERT_FALSE(try_load(mutant).has_value());
}

TEST_F(PersistCorruption, MismatchedExpectedFingerprintFailsClosed) {
  const Graph other = cycle_graph(13);
  const GraphFingerprint expect = fingerprint_of(other);
  SnapshotLoadOptions options;
  options.expect = &expect;
  try {
    (void)load_snapshot(path_, options);
    FAIL() << "mismatched graph served";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.status(), SnapshotStatus::kGraphMismatch);
    EXPECT_NE(std::string(e.what()).find("n=13"), std::string::npos)
        << "mismatch message should describe both fingerprints: " << e.what();
  }
}

TEST_F(PersistCorruption, PeekMatchesFullLoad) {
  EXPECT_EQ(peek_snapshot_fingerprint(path_), fingerprint_of(graph_));
}

TEST(PersistErrors, MissingFileIsIoError) {
  try {
    (void)load_snapshot(::testing::TempDir() + "/ftbfs_persist_nonexistent.ftb");
    FAIL() << "missing file loaded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.status(), SnapshotStatus::kIoError);
  }
}

TEST(PersistErrors, SaveIntoMissingDirectoryIsIoError) {
  const Graph g = cycle_graph(6);
  SnapshotImage image;
  image.graph = g;
  try {
    save_snapshot(::testing::TempDir() + "/ftbfs_persist_no_such_dir/x.ftb",
                  image);
    FAIL() << "save into missing directory succeeded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.status(), SnapshotStatus::kIoError);
  }
}

// --- manifest schema v2 ------------------------------------------------------

class PersistManifest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = grid_graph(4, 6);
    graph_path_ = temp_path("manifest_graph.txt");
    save_graph(graph_path_, graph_);

    OracleService service(graph_, test_config());
    for (const QueryRequest& req : make_requests(graph_, 31)) {
      (void)service.serve(req);
    }
    snapshot_path_ = temp_path("manifest.ftb");
    save_snapshot(snapshot_path_, PersistAccess::export_service(service, true));
  }

  std::string write_manifest(const std::string& name, const std::string& body) {
    const std::string path = temp_path(name + ".json");
    spew(path, body);
    return path;
  }

  Graph graph_;
  std::string graph_path_;
  std::string snapshot_path_;
};

TEST_F(PersistManifest, SchemaTwoSnapshotTenantServes) {
  TenantRegistry registry;
  registry.load_manifest(write_manifest(
      "v2_ok", "{\"schema\": 2, \"tenants\": [{\"name\": \"alpha\", "
               "\"snapshot\": \"" + snapshot_path_ + "\", "
               "\"cache_warm\": true}]}"));
  Tenant* t = registry.find("alpha");
  ASSERT_NE(t, nullptr);
  EXPECT_GT(t->service.pool_size(), 1u);
  EXPECT_GT(t->service.stats().cache_lines, 0u);  // cache_warm took effect
  EXPECT_EQ(fingerprint_of(t->graph), fingerprint_of(graph_));

  QueryRequest req;
  req.id = 1;
  req.source = 0;
  req.targets = {7};
  const QueryResponse resp = t->service.serve(req);
  EXPECT_EQ(resp.id, 1);
}

TEST_F(PersistManifest, SchemaTwoGraphPlusSnapshotCrossChecks) {
  TenantRegistry registry;
  registry.load_manifest(write_manifest(
      "v2_cross", "{\"schema\": 2, \"tenants\": [{\"name\": \"alpha\", "
                  "\"graph\": \"" + graph_path_ + "\", "
                  "\"snapshot\": \"" + snapshot_path_ + "\"}]}"));
  EXPECT_NE(registry.find("alpha"), nullptr);
}

TEST_F(PersistManifest, SchemaTwoMismatchedGraphFailsClosed) {
  const std::string other_path = temp_path("manifest_other.txt");
  save_graph(other_path, cycle_graph(9));
  TenantRegistry registry;
  try {
    registry.load_manifest(write_manifest(
        "v2_bad", "{\"schema\": 2, \"tenants\": [{\"name\": \"alpha\", "
                  "\"graph\": \"" + other_path + "\", "
                  "\"snapshot\": \"" + snapshot_path_ + "\"}]}"));
    FAIL() << "mismatched graph/snapshot pair loaded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.status(), SnapshotStatus::kGraphMismatch);
  }
  EXPECT_EQ(registry.size(), 0u) << "no tenant may exist after a rejection";
}

TEST_F(PersistManifest, SnapshotKeyNeedsSchemaTwo) {
  TenantRegistry registry;
  try {
    registry.load_manifest(write_manifest(
        "v1_snap", "{\"tenants\": [{\"name\": \"alpha\", "
                   "\"snapshot\": \"" + snapshot_path_ + "\"}]}"));
    FAIL() << "schema-1 manifest with \"snapshot\" loaded";
  } catch (const GraphIoError& e) {
    EXPECT_NE(std::string(e.what()).find("schema"), std::string::npos);
  }
}

TEST_F(PersistManifest, CacheWarmNeedsSnapshot) {
  TenantRegistry registry;
  EXPECT_THROW(registry.load_manifest(write_manifest(
                   "v2_warm_only",
                   "{\"schema\": 2, \"tenants\": [{\"name\": \"alpha\", "
                   "\"graph\": \"" + graph_path_ + "\", "
                   "\"cache_warm\": true}]}")),
               GraphIoError);
}

TEST_F(PersistManifest, UnknownSchemaIsFatal) {
  TenantRegistry registry;
  EXPECT_THROW(registry.load_manifest(write_manifest(
                   "v3", "{\"schema\": 3, \"tenants\": [{\"name\": \"alpha\", "
                         "\"graph\": \"" + graph_path_ + "\"}]}")),
               GraphIoError);
}

TEST_F(PersistManifest, SchemaTwoUnknownKeysAreNotFatal) {
  TenantRegistry registry;
  registry.load_manifest(write_manifest(
      "v2_unknown", "{\"schema\": 2, \"comment\": \"ignored\", "
                    "\"tenants\": [{\"name\": \"alpha\", "
                    "\"graph\": \"" + graph_path_ + "\", "
                    "\"color\": \"blue\"}]}"));
  EXPECT_NE(registry.find("alpha"), nullptr);
}

TEST_F(PersistManifest, SchemaOneUnknownKeysStayFatal) {
  TenantRegistry registry;
  EXPECT_THROW(registry.load_manifest(write_manifest(
                   "v1_unknown", "{\"tenants\": [{\"name\": \"alpha\", "
                                 "\"graph\": \"" + graph_path_ + "\", "
                                 "\"color\": \"blue\"}]}")),
               GraphIoError);
}

// --- injected I/O faults on the save/load path (docs/robustness.md) ---------

// Failpoint state is process-global; every armed test must disarm on exit.
struct DisarmOnExit {
  ~DisarmOnExit() { fp::disarm_all(); }
};

// A small snapshot image + the bytes of a clean save of it.
class PersistFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = cycle_graph(24);
    OracleService service(graph_, test_config());
    for (const QueryRequest& req : make_requests(graph_, 13)) {
      (void)service.serve(req);
    }
    image_ = PersistAccess::export_service(service, true);
    path_ = temp_path("faults.ftb");
    save_snapshot(path_, image_);
    clean_bytes_ = slurp(path_);
    ASSERT_FALSE(clean_bytes_.empty());
  }

  [[nodiscard]] bool tmp_exists() const {
    return ::access((path_ + ".tmp").c_str(), F_OK) == 0;
  }

  Graph graph_;
  SnapshotImage image_;
  std::string path_;
  std::string clean_bytes_;
};

TEST_F(PersistFaults, EintrOnWriteIsRetriedTransparently) {
  DisarmOnExit guard;
  ASSERT_TRUE(fp::arm("persist.write=err(EINTR,p=0.5,seed=11)"));
  save_snapshot(path_, image_);  // must neither throw nor corrupt
  EXPECT_EQ(slurp(path_), clean_bytes_);
  EXPECT_FALSE(tmp_exists());
}

TEST_F(PersistFaults, ShortWritesAreAbsorbedByTheWriteLoop) {
  DisarmOnExit guard;
  // 70% of writes truncated to half: the loop must converge (each truncated
  // write still makes progress) and the published file must be byte-identical
  // to a clean save.
  ASSERT_TRUE(fp::arm("persist.write=shortwrite(p=0.7,seed=3)"));
  save_snapshot(path_, image_);
  EXPECT_EQ(slurp(path_), clean_bytes_);
  EXPECT_FALSE(tmp_exists());
}

TEST_F(PersistFaults, EnospcFailsTypedKeepsPriorSnapshotAndUnlinksTmp) {
  DisarmOnExit guard;
  // The disk is full: the save must fail with a typed IO error, the
  // previously published snapshot must be untouched (the rename never ran),
  // and the half-written temp file must be unlinked — no debris.
  ASSERT_TRUE(fp::arm("persist.write=err(ENOSPC)"));
  try {
    save_snapshot(path_, image_);
    FAIL() << "save with injected ENOSPC succeeded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.status(), SnapshotStatus::kIoError);
    EXPECT_NE(std::string(e.what()).find("cannot write"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(slurp(path_), clean_bytes_);
  EXPECT_FALSE(tmp_exists());
}

TEST_F(PersistFaults, FsyncFailureFailsTypedAndUnlinksTmp) {
  DisarmOnExit guard;
  // count=1: the temp-file fsync fails (a real durability failure → typed
  // error); the later parent-directory fsync is best-effort by design and is
  // not reached here.
  ASSERT_TRUE(fp::arm("persist.fsync=err(EIO,count=1)"));
  try {
    save_snapshot(path_, image_);
    FAIL() << "save with injected fsync failure succeeded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.status(), SnapshotStatus::kIoError);
  }
  EXPECT_EQ(slurp(path_), clean_bytes_);
  EXPECT_FALSE(tmp_exists());
}

TEST_F(PersistFaults, MmapFailureFallsBackToBufferedRead) {
  DisarmOnExit guard;
  // A filesystem without mmap support: load must silently take the read()
  // path and produce the same image.
  ASSERT_TRUE(fp::arm("persist.mmap=err(ENOMEM)"));
  SnapshotLoadOptions options;
  options.use_mmap = true;
  SnapshotImage loaded = load_snapshot(path_, options);
  EXPECT_EQ(fingerprint_of(loaded.graph), fingerprint_of(graph_));
  EXPECT_EQ(loaded.entries.size(), image_.entries.size());
}

TEST_F(PersistFaults, SigkillMidSaveLeavesPriorSnapshotIntact) {
  DisarmOnExit guard;
  // The crash-recovery contract: a process killed between open(tmp) and
  // rename() must leave the previously published snapshot byte-identical.
  // The sleep failpoint holds the child inside the write loop so the kill
  // window is deterministic; fork() inherits the armed schedule.
  ASSERT_TRUE(fp::arm("persist.write=sleep(ms=20000,count=1)"));
  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << std::strerror(errno);
  if (child == 0) {
    save_snapshot(path_, image_);  // parked in the first write's sleep
    ::_exit(0);                    // not reached: the parent kills us
  }
  // Give the child time to open the temp file and enter the stalled write.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFSIGNALED(status));
  fp::disarm_all();

  // The publish rename never ran: the prior snapshot is untouched and loads.
  EXPECT_EQ(slurp(path_), clean_bytes_);
  SnapshotImage loaded = load_snapshot(path_);
  EXPECT_EQ(fingerprint_of(loaded.graph), fingerprint_of(graph_));
  // The kill left temp-file debris (nothing could unlink it); the next clean
  // save must clobber it, publish, and leave no .tmp behind.
  save_snapshot(path_, image_);
  EXPECT_EQ(slurp(path_), clean_bytes_);
  EXPECT_FALSE(tmp_exists());
}

}  // namespace
}  // namespace ftbfs
