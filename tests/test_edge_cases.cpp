// Boundary and robustness cases across the construction APIs: degenerate
// graphs, extreme topologies, option interplay — the inputs a downstream
// user will eventually feed the library.
#include <gtest/gtest.h>

#include "core/approx_ftmbfs.h"
#include "core/cons2ftbfs.h"
#include "core/kfail_ftbfs.h"
#include "core/oracle.h"
#include "core/single_ftbfs.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "spath/bfs.h"

namespace ftbfs {
namespace {

TEST(EdgeCases, SingleVertexGraph) {
  GraphBuilder b(1);
  const Graph g = std::move(b).build();
  const FtStructure h = build_cons2ftbfs(g, 0);
  EXPECT_TRUE(h.edges.empty());
  EXPECT_EQ(h.stats.new_edges, 0u);
}

TEST(EdgeCases, TwoVertexEdge) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  const FtStructure h = build_cons2ftbfs(g, 0);
  EXPECT_EQ(h.edges.size(), 1u);
  const std::vector<Vertex> sources = {0};
  EXPECT_FALSE(verify_exhaustive(g, h.edges, sources, 2).has_value());
}

TEST(EdgeCases, TriangleFullyKept) {
  const Graph g = complete_graph(3);
  const FtStructure h = build_cons2ftbfs(g, 0);
  // Losing any edge of K3 changes some distance under the other's failure.
  EXPECT_EQ(h.edges.size(), 3u);
}

TEST(EdgeCases, StarGraphFromCenterAndLeaf) {
  GraphBuilder b(8);
  for (Vertex v = 1; v < 8; ++v) b.add_edge(0, v);
  const Graph g = std::move(b).build();
  for (const Vertex s : {0u, 3u}) {
    const FtStructure h = build_cons2ftbfs(g, s);
    const std::vector<Vertex> sources = {s};
    EXPECT_FALSE(verify_exhaustive(g, h.edges, sources, 2).has_value());
    EXPECT_EQ(h.edges.size(), g.num_edges());  // a tree: everything kept
  }
}

TEST(EdgeCases, CompleteBipartiteBothSides) {
  const Graph g = complete_bipartite(3, 5);
  for (const Vertex s : {0u, 4u}) {
    const FtStructure h = build_cons2ftbfs(g, s);
    const std::vector<Vertex> sources = {s};
    EXPECT_FALSE(verify_exhaustive(g, h.edges, sources, 2).has_value());
  }
}

TEST(EdgeCases, IsolatedSourceCoversNothing) {
  GraphBuilder b(5);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  const FtStructure h = build_cons2ftbfs(g, 0);  // source has degree 0
  EXPECT_TRUE(h.edges.empty());
}

TEST(EdgeCases, RecordSinkWithoutClassifyIsInert) {
  const Graph g = erdos_renyi(15, 0.3, 3);
  bool called = false;
  Cons2Options opt;
  opt.classify_paths = false;
  opt.record_sink = [&called](Vertex, const Path&,
                              const std::vector<NewEndingRecord>&) {
    called = true;
  };
  (void)build_cons2ftbfs(g, 0, opt);
  EXPECT_FALSE(called);  // sink requires classification
}

TEST(EdgeCases, OracleAcceptsDuplicateFaultIds) {
  const Graph g = cycle_graph(8);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 2);
  const std::vector<EdgeId> dup = {3, 3};
  Bfs bfs(g);
  GraphMask mask(g);
  mask.block_edge(3);
  EXPECT_EQ(oracle.distance(5, dup), bfs.run(0, &mask).hops[5]);
}

TEST(EdgeCases, KfailZeroCapStillReturnsTree) {
  const Graph g = erdos_renyi(20, 0.25, 5);
  KFailOptions opt;
  opt.max_chains_per_vertex = 1;  // only the fault-free chain per vertex
  const KFailResult r = build_kfail_ftbfs(g, 0, 2, opt);
  EXPECT_GE(r.structure.edges.size(), g.num_vertices() - 1);
  EXPECT_GT(r.kstats.chain_cap_hits, 0u);
}

TEST(EdgeCases, ApproxSingleVertexSource) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const Graph g = std::move(b).build();
  const std::vector<Vertex> sources = {0};
  const ApproxResult r = build_approx_ftmbfs(g, sources, 1);
  EXPECT_FALSE(
      verify_exhaustive(g, r.structure.edges, sources, 1).has_value());
  EXPECT_EQ(r.structure.edges.size(), 3u);  // cycle is its own optimum
}

TEST(EdgeCases, SingleFtbfsOnTreeKeepsExactlyTree) {
  const Graph g = path_graph(10);
  const FtStructure h = build_single_ftbfs(g, 0);
  EXPECT_EQ(h.edges.size(), 9u);
  EXPECT_EQ(h.stats.new_edges, 0u);
}

TEST(EdgeCases, DenseGraphAllSourcesSpot) {
  const Graph g = erdos_renyi(10, 0.6, 7);
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    const FtStructure h = build_cons2ftbfs(g, s);
    const std::vector<Vertex> sources = {s};
    EXPECT_FALSE(verify_exhaustive(g, h.edges, sources, 2).has_value());
  }
}

TEST(EdgeCases, WeightSeedZeroWorks) {
  const Graph g = erdos_renyi(14, 0.3, 9);
  Cons2Options opt;
  opt.weight_seed = 0;
  const FtStructure h = build_cons2ftbfs(g, 0, opt);
  const std::vector<Vertex> sources = {0};
  EXPECT_FALSE(verify_exhaustive(g, h.edges, sources, 2).has_value());
}

TEST(EdgeCases, VerifierOnEmptyStructureReportsTreeGap) {
  const Graph g = path_graph(4);
  const std::vector<EdgeId> empty;
  const std::vector<Vertex> sources = {0};
  const auto violation = verify_exhaustive(g, empty, sources, 0);
  ASSERT_TRUE(violation.has_value());
  EXPECT_TRUE(violation->faults.empty());
}

}  // namespace
}  // namespace ftbfs
