// Deep properties of the Cons2FTBFS output, tying the implementation back to
// the paper's analysis: per-vertex new-edge bounds (Thm 1.1's engine),
// per-class √n / n^{2/3} bounds, behaviour on the lower-bound graphs, and the
// relationship to the single-failure baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/cons2ftbfs.h"
#include "core/kfail_ftbfs.h"
#include "core/single_ftbfs.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "lowerbound/gstar.h"
#include "spath/bfs.h"

namespace ftbfs {
namespace {

TEST(Cons2Properties, MaxNewPerVertexWithinTwoThirdsBound) {
  // |New(v)| = O(n^{2/3}) — the paper's per-vertex bound; constant 6 is
  // generous on random instances.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const Vertex n : {30u, 60u, 90u}) {
      const Graph g = erdos_renyi(n, 3.0 / n, seed);
      const FtStructure h = build_cons2ftbfs(g, 0);
      EXPECT_LE(static_cast<double>(h.stats.max_new_per_vertex),
                6.0 * std::pow(static_cast<double>(n), 2.0 / 3.0))
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Cons2Properties, PerVertexSqrtClassesWithinBound) {
  // Obs. 3.17 / Lemma 3.18: per-vertex 'single' and (π,π) new edges are
  // O(√n).
  for (const std::uint64_t seed : {4ull, 5ull}) {
    const Vertex n = 80;
    const Graph g = erdos_renyi(n, 0.08, seed);
    const FtStructure h = build_cons2ftbfs(g, 0);
    const double bound = 6.0 * std::sqrt(static_cast<double>(n));
    EXPECT_LE(static_cast<double>(h.stats.max_classes_per_vertex.single),
              bound);
    EXPECT_LE(static_cast<double>(h.stats.max_classes_per_vertex.a_pi_pi),
              bound);
  }
}

TEST(Cons2Properties, ContainsSingleFailureGuarantee) {
  // A dual structure is in particular a single-failure structure.
  const Graph g = erdos_renyi(25, 0.2, 7);
  const FtStructure h = build_cons2ftbfs(g, 0);
  const std::vector<Vertex> sources = {0};
  EXPECT_FALSE(verify_exhaustive(g, h.edges, sources, 1).has_value());
}

TEST(Cons2Properties, LowerBoundGraphRetainsBipartiteCore) {
  // Theorem 4.1: on G*_2 every bipartite edge is essential, so Cons2FTBFS
  // must keep all of them.
  const GStarGraph gs = build_gstar(2, 120);
  const FtStructure h = build_cons2ftbfs(gs.graph, gs.sources[0]);
  std::vector<bool> in_h(gs.graph.num_edges(), false);
  for (const EdgeId e : h.edges) in_h[e] = true;
  for (const EdgeId e : gs.bipartite_edges) {
    EXPECT_TRUE(in_h[e]) << "bipartite edge " << e << " missing from H";
  }
}

TEST(Cons2Properties, LowerBoundGraphStructureIsValid) {
  const GStarGraph gs = build_gstar(2, 90);
  const FtStructure h = build_cons2ftbfs(gs.graph, gs.sources[0]);
  const auto violation = verify_exhaustive(gs.graph, h.edges, gs.sources, 2);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->describe(gs.graph) : "");
}

TEST(Cons2Properties, SingleFailureLowerBoundGraph) {
  const GStarGraph gs = build_gstar(1, 90);
  const FtStructure h1 = build_single_ftbfs(gs.graph, gs.sources[0]);
  std::vector<bool> in_h(gs.graph.num_edges(), false);
  for (const EdgeId e : h1.edges) in_h[e] = true;
  for (const EdgeId e : gs.bipartite_edges) {
    EXPECT_TRUE(in_h[e]);
  }
}

TEST(Cons2Properties, DualAtLeastAsLargeAsSingleOnWorstCase) {
  const GStarGraph gs2 = build_gstar(2, 150);
  const FtStructure h2 = build_cons2ftbfs(gs2.graph, gs2.sources[0]);
  const FtStructure h1 = build_single_ftbfs(gs2.graph, gs2.sources[0]);
  EXPECT_GE(h2.edges.size(), h1.edges.size());
}

TEST(Cons2Properties, AgreesWithKfailGuaranteeButSmallerOrEqualCost) {
  // Both are valid dual structures; Cons2FTBFS applies selection rules, the
  // chain structure does not. Both must verify; sizes are reported by E-bench.
  const Graph g = erdos_renyi(16, 0.3, 21);
  const FtStructure h = build_cons2ftbfs(g, 0);
  const KFailResult k = build_kfail_ftbfs(g, 0, 2);
  const std::vector<Vertex> sources = {0};
  EXPECT_FALSE(verify_exhaustive(g, h.edges, sources, 2).has_value());
  EXPECT_FALSE(
      verify_exhaustive(g, k.structure.edges, sources, 2).has_value());
}

TEST(Cons2Properties, DenseGraphsNearLinear) {
  // FT-diameter 2 graphs (dense G(n,p)) have O(n) dual structures
  // (Obs. 1.6 with D ~ 2-3); check the structure stays near-linear.
  const Vertex n = 60;
  const Graph g = erdos_renyi(n, 0.5, 3);
  const FtStructure h = build_cons2ftbfs(g, 0);
  EXPECT_LE(h.edges.size(), 12ull * n);
}

TEST(Cons2Properties, PathPlusChordsStress) {
  // Deep BFS trees with long detours — the regime where step (3) works hard.
  for (const std::uint64_t seed : {1ull, 2ull}) {
    const Graph g = path_with_chords(28, 9, seed);
    const FtStructure h = build_cons2ftbfs(g, 0);
    const std::vector<Vertex> sources = {0};
    const auto violation = verify_exhaustive(g, h.edges, sources, 2);
    EXPECT_FALSE(violation.has_value())
        << (violation ? violation->describe(g) : "");
    EXPECT_EQ(h.stats.divergence_fallbacks, 0u);
  }
}

TEST(Cons2Properties, FaultFreeDistancesExactInSubgraph) {
  const Graph g = erdos_renyi(40, 0.12, 9);
  const FtStructure h = build_cons2ftbfs(g, 0);
  const Graph hg = materialize(g, h);
  EXPECT_LE(hg.num_edges(), g.num_edges());
  Bfs bg(g), bh(hg);
  const auto& rg = bg.run(0);
  const auto& rh = bh.run(0);
  EXPECT_EQ(rg.hops, rh.hops);
}

TEST(Cons2Properties, NewEdgesAllIncidentToSomeTarget) {
  // Every non-tree edge of H is the last edge of a replacement path, hence
  // incident to the path's target; sanity-check H contains no stray edges:
  // removing any single H edge must break verification (minimality is NOT
  // guaranteed by the paper, so only check that H passes and is within the
  // counted size).
  const Graph g = erdos_renyi(20, 0.25, 13);
  const FtStructure h = build_cons2ftbfs(g, 0);
  EXPECT_EQ(h.edges.size(), h.stats.tree_edges + h.stats.new_edges);
}

}  // namespace
}  // namespace ftbfs
