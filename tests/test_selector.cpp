#include "core/selector.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "spath/dijkstra.h"

namespace ftbfs {
namespace {

TEST(VertexIndexMap, BindAndLookup) {
  VertexIndexMap map(10);
  map.bind({3, 5, 7});
  EXPECT_TRUE(map.on_path(5));
  EXPECT_EQ(map.pos(5), 1u);
  EXPECT_EQ(map.pos(7), 2u);
  EXPECT_FALSE(map.on_path(4));
  EXPECT_EQ(map.pos(4), kNpos);
  map.bind({4});
  EXPECT_FALSE(map.on_path(5));  // rebinding invalidates old entries
  EXPECT_TRUE(map.on_path(4));
}

TEST(BlockPiSegment, BlocksInteriorOnly) {
  const Graph g = path_graph(6);
  GraphMask m(g);
  const Path pi = {0, 1, 2, 3, 4, 5};
  block_pi_segment(m, pi, 1, 3);
  EXPECT_FALSE(m.vertex_blocked(1));  // u_k itself stays
  EXPECT_TRUE(m.vertex_blocked(2));
  EXPECT_TRUE(m.vertex_blocked(3));
  EXPECT_FALSE(m.vertex_blocked(4));
}

// Fixture graph engineered so that two equal-length replacement routes exist,
// one diverging at s and one diverging later; the selection must prefer the
// earlier divergence point (Fig. 2(a) of the paper).
class EarliestDivergence : public ::testing::Test {
 protected:
  EarliestDivergence() {
    GraphBuilder b(9);
    // π(s,v): 0-1-2-3 — the unique length-3 route; both alternatives below
    // have length 4, so π is unambiguous regardless of perturbations.
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    // Detour A (diverges at 0): 0-4-5-6-3, length 4.
    b.add_edge(0, 4);
    b.add_edge(4, 5);
    b.add_edge(5, 6);
    b.add_edge(6, 3);
    // Detour B (diverges at 1): 1-7-8-3, total 0-1-7-8-3 length 4.
    b.add_edge(1, 7);
    b.add_edge(7, 8);
    b.add_edge(8, 3);
    g_ = std::move(b).build();
  }

  Graph g_;
};

TEST_F(EarliestDivergence, PrefersDivergenceClosestToSource) {
  const WeightAssignment w(g_, 123);
  PathSelector sel(g_, w);
  sel.mask().clear();
  const SpResult tree = sel.w_sssp(0);
  const Path pi = extract_path(tree, 3);
  ASSERT_EQ(pi, (Path{0, 1, 2, 3}));

  VertexIndexMap pos(g_.num_vertices());
  pos.bind(pi);
  // Fail e_2 = (2,3): both 0-4-5-6-3 and 0-1-7-8-3 have length 4; the
  // algorithm must take the one diverging at 0.
  const auto s1 = select_single_fault(sel, pi, pos, 2);
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s1->x, 0u);
  EXPECT_EQ(s1->y, 3u);
  EXPECT_EQ(s1->path, (Path{0, 4, 5, 6, 3}));
  EXPECT_EQ(s1->detour, (Path{0, 4, 5, 6, 3}));
  EXPECT_EQ(s1->x_pi_index, 0u);
  EXPECT_EQ(s1->y_pi_index, 3u);
}

TEST_F(EarliestDivergence, MidPathFaultStillPrefersEarliest) {
  const WeightAssignment w(g_, 123);
  PathSelector sel(g_, w);
  sel.mask().clear();
  const SpResult tree = sel.w_sssp(0);
  const Path pi = extract_path(tree, 3);
  VertexIndexMap pos(g_.num_vertices());
  pos.bind(pi);
  // Fail e_1 = (1,2): candidates 0-4-5-6-3 (div at 0) and 0-1-7-8-3 (div at
  // 1), both length 4 — earliest divergence wins again.
  const auto s1 = select_single_fault(sel, pi, pos, 1);
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s1->x, 0u);
  EXPECT_EQ(s1->path, (Path{0, 4, 5, 6, 3}));
}

TEST_F(EarliestDivergence, TopEdgeFaultForcesEarlyDetour) {
  const WeightAssignment w(g_, 123);
  PathSelector sel(g_, w);
  sel.mask().clear();
  const SpResult tree = sel.w_sssp(0);
  const Path pi = extract_path(tree, 3);
  VertexIndexMap pos(g_.num_vertices());
  pos.bind(pi);
  // Fail e_0 = (0,1): detour B needs (0,1), so A is the only optimal route.
  const auto s1 = select_single_fault(sel, pi, pos, 0);
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s1->path, (Path{0, 4, 5, 6, 3}));
}

TEST(SelectSingleFault, DisconnectingFaultReturnsNullopt) {
  const Graph g = path_graph(5);
  const WeightAssignment w(g, 7);
  PathSelector sel(g, w);
  sel.mask().clear();
  const SpResult tree = sel.w_sssp(0);
  const Path pi = extract_path(tree, 4);
  VertexIndexMap pos(g.num_vertices());
  pos.bind(pi);
  EXPECT_FALSE(select_single_fault(sel, pi, pos, 2).has_value());
}

TEST(SelectSingleFault, DecompositionHoldsOnRandomGraphs) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    const Graph g = erdos_renyi(36, 0.12, seed);
    const WeightAssignment w(g, seed);
    PathSelector sel(g, w);
    sel.mask().clear();
    const SpResult tree = sel.w_sssp(0);
    VertexIndexMap pos(g.num_vertices());
    for (Vertex v = 1; v < g.num_vertices(); ++v) {
      if (!tree.reached(v)) continue;
      const Path pi = extract_path(tree, v);
      pos.bind(pi);
      for (std::size_t i = 0; i + 1 < pi.size(); ++i) {
        const auto s1 = select_single_fault(sel, pi, pos, i);
        if (!s1) continue;
        // Claim 3.4: P = π(s,x) ∘ D ∘ π(y,v), detour interior off π, the
        // failed edge spanned by the detour.
        EXPECT_TRUE(is_simple_path_in(g, s1->path));
        EXPECT_LE(s1->x_pi_index, i);
        EXPECT_GT(s1->y_pi_index, i);
        for (std::size_t p = 1; p + 1 < s1->detour.size(); ++p) {
          EXPECT_FALSE(contains_vertex(pi, s1->detour[p]));
        }
        // Prefix of the path follows π up to x.
        for (std::size_t p = 0; p <= s1->x_pi_index; ++p) {
          EXPECT_EQ(s1->path[p], pi[p]);
        }
      }
    }
  }
}

TEST(PathSelector, CountersAdvance) {
  const Graph g = cycle_graph(6);
  const WeightAssignment w(g, 2);
  PathSelector sel(g, w);
  sel.mask().clear();
  (void)sel.hop_distance(0, 3);
  (void)sel.w_path(0, 3);
  EXPECT_EQ(sel.bfs_runs(), 1u);
  EXPECT_EQ(sel.dijkstra_runs(), 1u);
}

}  // namespace
}  // namespace ftbfs
