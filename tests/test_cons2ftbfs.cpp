#include "core/cons2ftbfs.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/verify.h"
#include "graph/generators.h"
#include "spath/bfs.h"

namespace ftbfs {
namespace {

// Exhaustive dual-failure verification on one graph.
void expect_valid_dual(const Graph& g, Vertex s, const FtStructure& h) {
  const std::vector<Vertex> sources = {s};
  const auto violation = verify_exhaustive(g, h.edges, sources, 2);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->describe(g) : "");
}

TEST(Cons2Ftbfs, TinyCycle) {
  const Graph g = cycle_graph(5);
  const FtStructure h = build_cons2ftbfs(g, 0);
  expect_valid_dual(g, 0, h);
  // A cycle is only 2-edge-connected; the whole cycle is needed.
  EXPECT_EQ(h.edges.size(), g.num_edges());
}

TEST(Cons2Ftbfs, CompleteGraphStaysSparse) {
  const Graph g = complete_graph(10);
  const FtStructure h = build_cons2ftbfs(g, 0);
  expect_valid_dual(g, 0, h);
  EXPECT_LT(h.edges.size(), g.num_edges());
}

TEST(Cons2Ftbfs, PathGraphIsItself) {
  const Graph g = path_graph(8);
  const FtStructure h = build_cons2ftbfs(g, 0);
  expect_valid_dual(g, 0, h);
  EXPECT_EQ(h.edges.size(), g.num_edges());
}

TEST(Cons2Ftbfs, GridGraph) {
  const Graph g = grid_graph(4, 4);
  const FtStructure h = build_cons2ftbfs(g, 0);
  expect_valid_dual(g, 0, h);
}

TEST(Cons2Ftbfs, Hypercube) {
  const Graph g = hypercube_graph(4);
  const FtStructure h = build_cons2ftbfs(g, 0);
  expect_valid_dual(g, 0, h);
}

TEST(Cons2Ftbfs, BarbellAcrossSparseCut) {
  const Graph g = barbell_graph(14, 3);
  const FtStructure h = build_cons2ftbfs(g, 0);
  expect_valid_dual(g, 0, h);
}

TEST(Cons2Ftbfs, DisconnectedGraphCoversReachablePart) {
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(4, 5);  // island
  const Graph g = std::move(b).build();
  const FtStructure h = build_cons2ftbfs(g, 0);
  expect_valid_dual(g, 0, h);
}

TEST(Cons2Ftbfs, SourceDegreeOne) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 1);
  b.add_edge(2, 5);
  b.add_edge(5, 3);
  const Graph g = std::move(b).build();
  const FtStructure h = build_cons2ftbfs(g, 0);
  expect_valid_dual(g, 0, h);
}

TEST(Cons2Ftbfs, StatsAreConsistent) {
  const Graph g = erdos_renyi(24, 0.2, 5);
  const FtStructure h = build_cons2ftbfs(g, 0);
  EXPECT_EQ(h.edges.size(), h.stats.tree_edges + h.stats.new_edges);
  EXPECT_GT(h.stats.fault_pairs_considered, 0u);
  EXPECT_EQ(h.stats.divergence_fallbacks, 0u);
  // Classification partitions all recorded new edges.
  EXPECT_EQ(h.stats.classes.total(), h.stats.new_edges);
}

TEST(Cons2Ftbfs, DeterministicForSeed) {
  const Graph g = erdos_renyi(20, 0.25, 9);
  const FtStructure h1 = build_cons2ftbfs(g, 0);
  const FtStructure h2 = build_cons2ftbfs(g, 0);
  EXPECT_EQ(h1.edges, h2.edges);
}

TEST(Cons2Ftbfs, ClassifyOffMatchesEdgeSet) {
  const Graph g = erdos_renyi(20, 0.25, 9);
  Cons2Options opt;
  opt.classify_paths = false;
  const FtStructure h1 = build_cons2ftbfs(g, 0, opt);
  const FtStructure h2 = build_cons2ftbfs(g, 0);
  EXPECT_EQ(h1.edges, h2.edges);
  EXPECT_EQ(h1.stats.classes.total(), 0u);
}

TEST(Cons2Ftbfs, ContainsBfsTreeDistances) {
  const Graph g = erdos_renyi(30, 0.15, 2);
  const FtStructure h = build_cons2ftbfs(g, 0);
  const Graph hg = materialize(g, h);
  Bfs bg(g), bh(hg);
  const auto& rg = bg.run(0);
  const auto& rh = bh.run(0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(rg.hops[v], rh.hops[v]);
  }
}

// The central sweep: exhaustive dual-failure verification over many random
// instances, spanning densities and seeds.
struct SweepParam {
  Vertex n;
  double p;
  std::uint64_t seed;
};

class Cons2Sweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Cons2Sweep, ExhaustiveDualFailure) {
  const SweepParam param = GetParam();
  const Graph g = erdos_renyi(param.n, param.p, param.seed);
  const FtStructure h = build_cons2ftbfs(g, 0);
  expect_valid_dual(g, 0, h);
  EXPECT_EQ(h.stats.divergence_fallbacks, 0u);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (const Vertex n : {8u, 12u, 16u, 20u, 24u}) {
    for (const double p : {0.10, 0.25, 0.45}) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        params.push_back({n, p, seed});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, Cons2Sweep,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_p" +
                                  std::to_string(int(info.param.p * 100)) +
                                  "_s" + std::to_string(info.param.seed);
                         });

// Different weight seeds give different (but all valid) structures.
class Cons2SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Cons2SeedSweep, AnyWeightSeedIsValid) {
  const Graph g = erdos_renyi(14, 0.3, 77);
  Cons2Options opt;
  opt.weight_seed = GetParam();
  const FtStructure h = build_cons2ftbfs(g, 0, opt);
  expect_valid_dual(g, 0, h);
}

INSTANTIATE_TEST_SUITE_P(WeightSeeds, Cons2SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Every source of a fixed graph must work.
class Cons2SourceSweep : public ::testing::TestWithParam<Vertex> {};

TEST_P(Cons2SourceSweep, AnySourceIsValid) {
  const Graph g = erdos_renyi(13, 0.3, 31);
  const Vertex s = GetParam();
  const FtStructure h = build_cons2ftbfs(g, s);
  const std::vector<Vertex> sources = {s};
  const auto violation = verify_exhaustive(g, h.edges, sources, 2);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->describe(g) : "");
}

INSTANTIATE_TEST_SUITE_P(Sources, Cons2SourceSweep,
                         ::testing::Range<Vertex>(0, 13));

// Exhaustive verification on structured (non-ER) families.
struct FamilyCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph fam_grid(std::uint64_t) { return grid_graph(4, 5); }
Graph fam_hypercube(std::uint64_t) { return hypercube_graph(4); }
Graph fam_barbell(std::uint64_t) { return barbell_graph(14, 2); }
Graph fam_chords(std::uint64_t seed) { return path_with_chords(18, 10, seed); }
Graph fam_connected(std::uint64_t seed) {
  return random_connected(18, 34, seed);
}
Graph fam_bipartite(std::uint64_t) { return complete_bipartite(4, 6); }
Graph fam_cycle(std::uint64_t) { return cycle_graph(14); }

class Cons2FamilySweep
    : public ::testing::TestWithParam<std::tuple<FamilyCase, std::uint64_t>> {
};

TEST_P(Cons2FamilySweep, ExhaustiveDualFailure) {
  const auto& [fam, seed] = GetParam();
  const Graph g = fam.make(seed);
  Cons2Options opt;
  opt.weight_seed = seed;
  const FtStructure h = build_cons2ftbfs(g, 0, opt);
  expect_valid_dual(g, 0, h);
  EXPECT_EQ(h.stats.divergence_fallbacks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    StructuredFamilies, Cons2FamilySweep,
    ::testing::Combine(
        ::testing::Values(FamilyCase{"grid", &fam_grid},
                          FamilyCase{"hypercube", &fam_hypercube},
                          FamilyCase{"barbell", &fam_barbell},
                          FamilyCase{"chords", &fam_chords},
                          FamilyCase{"connected", &fam_connected},
                          FamilyCase{"bipartite", &fam_bipartite},
                          FamilyCase{"cycle", &fam_cycle}),
        ::testing::Values<std::uint64_t>(1, 2, 3)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// Size bound sanity: |E(H)| <= c * n^{5/3} with a generous constant (Thm 1.1
// proves c exists; the benches chart the actual constants).
TEST(Cons2Ftbfs, SizeWithinTheoremBound) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const Vertex n : {20u, 40u, 60u}) {
      const Graph g = erdos_renyi(n, 0.2, seed);
      const FtStructure h = build_cons2ftbfs(g, 0);
      const double bound = 4.0 * std::pow(n, 5.0 / 3.0);
      EXPECT_LT(static_cast<double>(h.edges.size()), bound)
          << "n=" << n << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace ftbfs
