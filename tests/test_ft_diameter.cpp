#include "core/ft_diameter.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "spath/bfs.h"

namespace ftbfs {
namespace {

TEST(FtEccentricity, ZeroFaultsIsEccentricity) {
  const Graph g = path_graph(7);
  EXPECT_EQ(ft_eccentricity(g, 0, 0), 6u);
  EXPECT_EQ(ft_eccentricity(g, 3, 0), 3u);
}

TEST(FtEccentricity, PathDisconnectsUnderOneFault) {
  const Graph g = path_graph(5);
  EXPECT_EQ(ft_eccentricity(g, 0, 1), kInfHops);
}

TEST(FtEccentricity, CycleUnderOneFault) {
  // C_n minus one edge is a path; worst case from any vertex is n-1.
  const Graph g = cycle_graph(8);
  EXPECT_EQ(ft_eccentricity(g, 0, 0), 4u);
  EXPECT_EQ(ft_eccentricity(g, 0, 1), 7u);
  EXPECT_EQ(ft_eccentricity(g, 0, 2), kInfHops);
}

TEST(FtEccentricity, CompleteGraphRobust) {
  const Graph g = complete_graph(6);
  EXPECT_EQ(ft_eccentricity(g, 0, 0), 1u);
  EXPECT_EQ(ft_eccentricity(g, 0, 1), 2u);
  EXPECT_EQ(ft_eccentricity(g, 0, 2), 2u);
}

TEST(FtDiameter, MatchesMaxEccentricity) {
  const Graph g = erdos_renyi(18, 0.3, 5);
  std::uint32_t expected = 0;
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    expected = std::max(expected, ft_eccentricity(g, s, 1));
  }
  EXPECT_EQ(ft_diameter(g, 1), expected);
}

TEST(FtDiameter, MonotoneInFaults) {
  const Graph g = erdos_renyi(16, 0.4, 9);
  const std::uint32_t d0 = ft_diameter(g, 0);
  const std::uint32_t d1 = ft_diameter(g, 1);
  ASSERT_NE(d1, kInfHops);
  EXPECT_LE(d0, d1);
}

TEST(FtDiameter, HypercubeStaysSmall) {
  const Graph g = hypercube_graph(3);
  const std::uint32_t d1 = ft_diameter(g, 1);
  ASSERT_NE(d1, kInfHops);
  EXPECT_LE(d1, 5u);
}

}  // namespace
}  // namespace ftbfs
