#include "core/ftmbfs.h"

#include <gtest/gtest.h>

#include "core/cons2ftbfs.h"
#include "core/verify.h"
#include "graph/generators.h"

namespace ftbfs {
namespace {

TEST(FtMbfs, DualMultiSourceVerifies) {
  const Graph g = erdos_renyi(16, 0.3, 3);
  const std::vector<Vertex> sources = {0, 5, 11};
  const FtMbfsResult r = build_cons2ftmbfs(g, sources);
  const auto violation =
      verify_exhaustive(g, r.structure.edges, sources, 2);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->describe(g) : "");
}

TEST(FtMbfs, SingleMultiSourceVerifies) {
  const Graph g = erdos_renyi(24, 0.2, 5);
  const std::vector<Vertex> sources = {0, 12, 23};
  const FtMbfsResult r = build_single_ftmbfs(g, sources);
  const auto violation =
      verify_exhaustive(g, r.structure.edges, sources, 1);
  EXPECT_FALSE(violation.has_value())
      << (violation ? violation->describe(g) : "");
}

TEST(FtMbfs, UnionNoLargerThanSum) {
  const Graph g = erdos_renyi(30, 0.15, 7);
  const std::vector<Vertex> sources = {0, 10, 20};
  const FtMbfsResult r = build_cons2ftmbfs(g, sources);
  std::uint64_t sum = 0;
  for (const std::uint64_t size : r.per_source_size) sum += size;
  EXPECT_LE(r.structure.edges.size(), sum);
  EXPECT_EQ(r.per_source_size.size(), sources.size());
}

TEST(FtMbfs, SingleSourceDegeneratesToCons2) {
  const Graph g = erdos_renyi(20, 0.25, 9);
  const std::vector<Vertex> sources = {4};
  const FtMbfsResult r = build_cons2ftmbfs(g, sources);
  Cons2Options opt;
  opt.classify_paths = false;
  const FtStructure direct = build_cons2ftbfs(g, 4, opt);
  EXPECT_EQ(r.structure.edges, direct.edges);
}

TEST(FtMbfs, SharedEdgesCollapse) {
  // Sources adjacent to each other on a dense graph share most structure.
  const Graph g = erdos_renyi(30, 0.4, 11);
  const std::vector<Vertex> two = {0, 1};
  const FtMbfsResult r = build_cons2ftmbfs(g, two);
  const double sum = static_cast<double>(r.per_source_size[0]) +
                     static_cast<double>(r.per_source_size[1]);
  EXPECT_LT(static_cast<double>(r.structure.edges.size()), 0.95 * sum);
}

TEST(FtMbfs, PerSourceSubsetsVerifyIndividually) {
  const Graph g = erdos_renyi(14, 0.3, 13);
  const std::vector<Vertex> sources = {0, 7};
  const FtMbfsResult r = build_cons2ftmbfs(g, sources);
  for (const Vertex s : sources) {
    const std::vector<Vertex> one = {s};
    EXPECT_FALSE(
        verify_exhaustive(g, r.structure.edges, one, 2).has_value());
  }
}

}  // namespace
}  // namespace ftbfs
