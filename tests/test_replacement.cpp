#include "spath/replacement.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "spath/bfs.h"

namespace ftbfs {
namespace {

class ReplacementTest : public ::testing::Test {
 protected:
  Graph g_ = erdos_renyi(40, 0.12, 77);
  WeightAssignment w_{g_, 77};
  ReplacementOracle oracle_{g_, w_};
};

TEST_F(ReplacementTest, NoFaultsIsShortestPath) {
  const auto rp = oracle_.replacement_path(0, 20, {});
  ASSERT_TRUE(rp.has_value());
  EXPECT_EQ(rp->key.hops, bfs_distance(g_, 0, 20));
  EXPECT_TRUE(is_simple_path_in(g_, rp->verts));
}

TEST_F(ReplacementTest, AvoidsFaultEdges) {
  // Fail the first edge of the shortest path, repeatedly, and check avoidance.
  Vertex s = 0, t = 25;
  auto rp = oracle_.replacement_path(s, t, {});
  ASSERT_TRUE(rp.has_value());
  const EdgeId first = g_.find_edge(rp->verts[0], rp->verts[1]);
  const std::vector<EdgeId> faults = {first};
  const auto rp2 = oracle_.replacement_path(s, t, faults);
  ASSERT_TRUE(rp2.has_value());
  EXPECT_FALSE(contains_edge(g_, rp2->verts, first));
  EXPECT_GE(rp2->key.hops, rp->key.hops);
}

TEST_F(ReplacementTest, DistanceMatchesPath) {
  const std::vector<EdgeId> faults = {0, 5};
  const auto rp = oracle_.replacement_path(3, 30, faults);
  const DistKey d = oracle_.replacement_distance(3, 30, faults);
  ASSERT_TRUE(rp.has_value());
  EXPECT_EQ(rp->key, d);
}

TEST_F(ReplacementTest, DisconnectionReturnsNullopt) {
  const Graph g = path_graph(4);
  const WeightAssignment w(g, 1);
  ReplacementOracle oracle(g, w);
  const std::vector<EdgeId> faults = {g.find_edge(1, 2)};
  EXPECT_FALSE(oracle.replacement_path(0, 3, faults).has_value());
  EXPECT_EQ(oracle.replacement_distance(0, 3, faults), kUnreachable);
}

TEST_F(ReplacementTest, ScratchMaskQueries) {
  oracle_.mask().clear();
  oracle_.mask().block_vertex(1);
  const auto rp = oracle_.query(0, 20);
  ASSERT_TRUE(rp.has_value());
  EXPECT_FALSE(contains_vertex(rp->verts, 1));
}

TEST_F(ReplacementTest, QueryCounterAdvances) {
  const std::uint64_t before = oracle_.queries_issued();
  (void)oracle_.replacement_distance(0, 1, {});
  EXPECT_EQ(oracle_.queries_issued(), before + 1);
}

TEST_F(ReplacementTest, WUniquePathStableAcrossCalls) {
  const auto a = oracle_.replacement_path(2, 33, {});
  const auto b = oracle_.replacement_path(2, 33, {});
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->verts, b->verts);
}

// Replacement path on a cycle: failing one direction forces the other.
TEST(ReplacementCycle, ForcedDetour) {
  const Graph g = cycle_graph(5);
  const WeightAssignment w(g, 9);
  ReplacementOracle oracle(g, w);
  const std::vector<EdgeId> faults = {g.find_edge(0, 1)};
  const auto rp = oracle.replacement_path(0, 1, faults);
  ASSERT_TRUE(rp.has_value());
  EXPECT_EQ(rp->key.hops, 4u);
  EXPECT_EQ(rp->verts, (Path{0, 4, 3, 2, 1}));
}

}  // namespace
}  // namespace ftbfs
