#include "core/oracle.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/mask.h"
#include "util/rng.h"

namespace ftbfs {
namespace {

TEST(Oracle, FaultFreeMatchesBfs) {
  const Graph g = erdos_renyi(60, 0.1, 3);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 2);
  Bfs bfs(g);
  const BfsResult& r = bfs.run(0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(oracle.distance(v, {}), r.hops[v]);
  }
}

TEST(Oracle, SingleFaultMatchesGroundTruth) {
  const Graph g = erdos_renyi(50, 0.12, 7);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 1);
  Bfs bfs(g);
  GraphMask mask(g);
  for (EdgeId e = 0; e < g.num_edges(); e += 3) {
    mask.clear();
    mask.block_edge(e);
    const BfsResult& truth = bfs.run(0, &mask);
    const std::vector<EdgeId> faults = {e};
    const auto& answer = oracle.all_distances(faults);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(answer[v], truth.hops[v])
          << "edge " << e << " target " << v;
    }
  }
}

TEST(Oracle, DualFaultRandomProbes) {
  const Graph g = erdos_renyi(40, 0.15, 11);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 2);
  Bfs bfs(g);
  GraphMask mask(g);
  Rng rng(5);
  for (int probe = 0; probe < 200; ++probe) {
    const EdgeId e1 = static_cast<EdgeId>(rng.next_below(g.num_edges()));
    const EdgeId e2 = static_cast<EdgeId>(rng.next_below(g.num_edges()));
    if (e1 == e2) continue;
    mask.clear();
    mask.block_edge(e1);
    mask.block_edge(e2);
    const BfsResult& truth = bfs.run(0, &mask);
    const std::vector<EdgeId> faults = {e1, e2};
    const Vertex v = static_cast<Vertex>(rng.next_below(g.num_vertices()));
    EXPECT_EQ(oracle.distance(v, faults), truth.hops[v]);
  }
}

TEST(Oracle, ShortestPathValidAndOptimal) {
  const Graph g = erdos_renyi(40, 0.15, 13);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 2);
  const std::vector<EdgeId> faults = {2, 9};
  for (Vertex v = 1; v < g.num_vertices(); v += 4) {
    const auto p = oracle.shortest_path(v, faults);
    const std::uint32_t d = oracle.distance(v, faults);
    if (d == kInfHops) {
      EXPECT_FALSE(p.has_value());
      continue;
    }
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->size() - 1, d);
    EXPECT_EQ(p->front(), 0u);
    EXPECT_EQ(p->back(), v);
    EXPECT_TRUE(is_simple_path_in(g, *p));
    for (const EdgeId f : faults) {
      EXPECT_FALSE(contains_edge(g, *p, f));
    }
  }
}

TEST(Oracle, DisconnectionReported) {
  const Graph g = path_graph(6);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 1);
  const std::vector<EdgeId> faults = {g.find_edge(2, 3)};
  EXPECT_EQ(oracle.distance(5, faults), kInfHops);
  EXPECT_FALSE(oracle.shortest_path(5, faults).has_value());
}

TEST(Oracle, FZeroIsPlainTree) {
  const Graph g = erdos_renyi(30, 0.2, 17);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 0);
  EXPECT_EQ(oracle.structure_size(), g.num_vertices() - 1);
  EXPECT_EQ(oracle.max_faults(), 0u);
  EXPECT_EQ(oracle.distance(7, {}), bfs_distance(g, 0, 7));
}

TEST(Oracle, StructureSmallerThanGraph) {
  const Graph g = erdos_renyi(60, 0.3, 19);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 2);
  EXPECT_LT(oracle.structure_size(), g.num_edges());
  EXPECT_EQ(oracle.source(), 0u);
}

TEST(Oracle, QueryCounter) {
  const Graph g = cycle_graph(8);
  FtBfsOracle oracle = FtBfsOracle::build(g, 0, 1);
  EXPECT_EQ(oracle.queries_answered(), 0u);
  (void)oracle.distance(3, {});
  (void)oracle.shortest_path(4, {});
  EXPECT_EQ(oracle.queries_answered(), 2u);
}

TEST(Oracle, WrapsExternallyBuiltStructure) {
  const Graph g = cycle_graph(10);
  // The whole graph is trivially a valid structure.
  FtStructure h;
  for (EdgeId e = 0; e < g.num_edges(); ++e) h.edges.push_back(e);
  FtBfsOracle oracle(g, 0, 2, std::move(h));
  const std::vector<EdgeId> faults = {0};
  Bfs bfs(g);
  GraphMask mask(g);
  mask.block_edge(0);
  EXPECT_EQ(oracle.distance(5, faults), bfs.run(0, &mask).hops[5]);
}

}  // namespace
}  // namespace ftbfs
