// The fault-delta query path (docs/perf.md) must be *observationally
// equivalent* to the pre-delta full-masked-BFS path: bit-identical distances
// from every hops-reading API, and — for the parent-exposing APIs, which now
// route through the parent-carrying repair BFS — a valid shortest-path tree
// with the same hop counts (the specific parent among equal-hop candidates
// is tie-break-dependent: BFS parentage depends on queue order, which a
// bounded repair cannot reproduce; docs/perf.md "Parent repair"). These
// tests pit a delta-enabled engine/service against a delta-disabled twin
// over randomized graphs × fault sets × budgets — including the threshold-
// fallback boundary at fractions 0 (always fall back) and 1 (never) — check
// every repair-path parent tree and path for validity, compare serve
// responses across delta on/off and across the delta-compressed scenario
// cache's representation thresholds, and pin down the fast/repair/full
// counter accounting the serving stats surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "engine/registry.h"
#include "graph/generators.h"
#include "service/oracle_service.h"
#include "service/protocol.h"
#include "util/rng.h"

namespace ftbfs {
namespace {

FaultQueryEngine::DeltaOptions delta_off() {
  return {.enabled = false, .max_affected_fraction = 0.5};
}

// A fault set biased toward tree damage: half the edges are drawn from the
// baseline tree of `h_edges`' structure (parent edges of random vertices in
// g — most survive into H), half uniformly; optional vertex faults.
struct FaultDraw {
  std::vector<EdgeId> edges;
  std::vector<Vertex> vertices;
  [[nodiscard]] FaultSpec spec() const { return FaultSpec{edges, vertices}; }
};

FaultDraw draw_faults(Rng& rng, const Graph& g, const BfsResult& tree,
                      std::size_t max_edges, std::size_t max_vertices) {
  FaultDraw out;
  const std::size_t ne = rng.next_below(max_edges + 1);
  for (std::size_t i = 0; i < ne; ++i) {
    if (rng.next_below(2) == 0) {
      const Vertex v = static_cast<Vertex>(rng.next_below(g.num_vertices()));
      if (tree.parent_edge[v] != kInvalidEdge) {
        out.edges.push_back(tree.parent_edge[v]);
        continue;
      }
    }
    out.edges.push_back(static_cast<EdgeId>(rng.next_below(g.num_edges())));
  }
  for (std::size_t i = 0; i < rng.next_below(max_vertices + 1); ++i) {
    out.vertices.push_back(
        static_cast<Vertex>(rng.next_below(g.num_vertices())));
  }
  return out;
}

// True iff the canonical fault set hits g-edge `ge` / vertex `v`.
bool edge_faulted(const CanonicalFaultSet& canon, EdgeId ge) {
  return std::binary_search(canon.edges().begin(), canon.edges().end(), ge);
}
bool vertex_faulted(const CanonicalFaultSet& canon, Vertex v) {
  return std::binary_search(canon.vertices().begin(), canon.vertices().end(),
                            v);
}

// `r` must be a valid shortest-path tree of H ∖ F with hops bit-identical to
// the full masked BFS (`truth`): every reached non-source vertex hangs off a
// usable H edge to a parent exactly one hop closer; the source and the
// unreachable carry sentinel parents. `h` is the engine's structure graph
// (H edge ids), faults are host-graph ids.
void expect_valid_tree(const Graph& g, const Graph& h, Vertex source,
                       const FaultSpec& faults, const BfsResult& r,
                       const BfsResult& truth) {
  const CanonicalFaultSet canon = faults.canonicalize();
  ASSERT_EQ(r.hops, truth.hops);
  for (Vertex v = 0; v < h.num_vertices(); ++v) {
    SCOPED_TRACE("vertex " + std::to_string(v));
    if (v == source && r.hops[v] == 0) {
      EXPECT_EQ(r.parent[v], kInvalidVertex);
      EXPECT_EQ(r.parent_edge[v], kInvalidEdge);
      continue;
    }
    if (r.hops[v] == kInfHops) {
      EXPECT_EQ(r.parent[v], kInvalidVertex);
      EXPECT_EQ(r.parent_edge[v], kInvalidEdge);
      continue;
    }
    const Vertex p = r.parent[v];
    const EdgeId he = r.parent_edge[v];
    ASSERT_NE(p, kInvalidVertex);
    ASSERT_NE(he, kInvalidEdge);
    ASSERT_LT(he, h.num_edges());
    const Edge& edge = h.edge(he);
    EXPECT_TRUE((edge.u == p && edge.v == v) || (edge.u == v && edge.v == p));
    EXPECT_EQ(r.hops[p] + 1, r.hops[v]);
    // The parent edge must be usable under the fault set (host ids).
    const EdgeId ge = g.find_edge(edge.u, edge.v);
    ASSERT_NE(ge, kInvalidEdge);
    EXPECT_FALSE(edge_faulted(canon, ge));
    EXPECT_FALSE(vertex_faulted(canon, p));
    EXPECT_FALSE(vertex_faulted(canon, v));
  }
}

// `path`, if present, must be a real shortest path: right endpoints, length
// matching the full-BFS distance, consecutive hops along usable H edges.
void expect_valid_path(const Graph& g, const Graph& h, Vertex source,
                       Vertex target, const FaultSpec& faults,
                       std::uint32_t true_hops,
                       const std::optional<Path>& path) {
  const CanonicalFaultSet canon = faults.canonicalize();
  ASSERT_EQ(path.has_value(), true_hops != kInfHops);
  if (!path.has_value()) return;
  ASSERT_FALSE(path->empty());
  EXPECT_EQ(path->front(), source);
  EXPECT_EQ(path->back(), target);
  ASSERT_EQ(path->size(), static_cast<std::size_t>(true_hops) + 1);
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    const EdgeId he = h.find_edge((*path)[i], (*path)[i + 1]);
    ASSERT_NE(he, kInvalidEdge)
        << "step " << (*path)[i] << "->" << (*path)[i + 1] << " not in H";
    const EdgeId ge = g.find_edge((*path)[i], (*path)[i + 1]);
    EXPECT_FALSE(edge_faulted(canon, ge));
  }
  for (const Vertex v : *path) EXPECT_FALSE(vertex_faulted(canon, v));
}

// One engine pair (delta on / off) over the same structure; every
// hops-reading API must agree exactly, and the parent-exposing APIs must
// produce valid shortest-path trees/paths with the full-BFS hop counts.
void expect_engines_agree(const Graph& g, std::span<const EdgeId> h_edges,
                          Vertex source, std::uint64_t seed, int rounds,
                          double fraction) {
  FaultQueryEngine delta(g, h_edges);
  delta.set_delta_options({.enabled = true, .max_affected_fraction = fraction});
  FaultQueryEngine full(g, h_edges);
  full.set_delta_options(delta_off());

  // The baseline tree of G guides the tree-damage bias (H's own tree differs,
  // but parent edges of G frequently land on H tree edges too).
  Bfs bfs(g);
  const BfsResult g_tree = bfs.run(source);

  Rng rng(seed);
  std::vector<FaultDraw> draws;
  std::vector<FaultSpec> specs;
  for (int r = 0; r < rounds; ++r) {
    draws.push_back(draw_faults(rng, g, g_tree, 4, 1));
  }
  for (const FaultDraw& d : draws) specs.push_back(d.spec());

  const Vertex n = g.num_vertices();
  std::vector<Vertex> targets = {0, static_cast<Vertex>(n / 3),
                                 static_cast<Vertex>(n / 2),
                                 static_cast<Vertex>(n - 1)};
  for (std::size_t r = 0; r < draws.size(); ++r) {
    const FaultSpec spec = specs[r];
    SCOPED_TRACE("round " + std::to_string(r));

    // all_distances: the full vector, every vertex.
    EXPECT_EQ(delta.all_distances(source, spec), full.all_distances(source, spec));

    // distance: single-target early-exit path.
    const Vertex t = targets[r % targets.size()];
    EXPECT_EQ(delta.distance(source, t, spec), full.distance(source, t, spec));

    // query: the parent-exposing primitive. Hops bit-identical; parents a
    // valid shortest-path tree (repair parents may pick a different
    // equal-hop candidate than the full BFS's queue order did).
    const BfsResult& fr = full.query(source, spec);
    const BfsResult& dr = delta.query(source, spec);
    expect_valid_tree(g, delta.structure_graph(), source, spec, dr, fr);

    // shortest_path: a real shortest path of the exact full-BFS length.
    const std::optional<Path> dp = delta.shortest_path(source, t, spec);
    expect_valid_path(g, delta.structure_graph(), source, t, spec,
                      fr.hops[t], dp);
  }

  // batch: whole matrix in one call, sequential and threaded.
  EXPECT_EQ(delta.batch(source, specs, targets),
            full.batch(source, specs, targets));
  EXPECT_EQ(delta.batch(source, specs, targets, 4),
            full.batch(source, specs, targets, 4));
}

TEST(DeltaPath, MatchesFullBfsOnRandomGraphs) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const Graph g = erdos_renyi(64, 0.1, seed);
    BuildRequest req;
    req.graph = &g;
    req.sources = {0};
    req.fault_budget = 2;
    const BuildResult built =
        BuilderRegistry::instance().build("cons2ftbfs", req);
    expect_engines_agree(g, built.structure.edges, 0, seed * 101, 40, 0.5);
  }
}

TEST(DeltaPath, MatchesFullBfsOnIdentityEngine) {
  const Graph g = erdos_renyi(80, 0.08, 3);
  std::vector<EdgeId> all(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  expect_engines_agree(g, all, 5, 99, 40, 0.5);
}

TEST(DeltaPath, MatchesFullBfsOnSparseTreelikeGraph) {
  // Tree-heavy host: almost every fault is a tree fault, subtrees are large,
  // so the threshold fallback triggers regularly at fraction 0.25.
  const Graph g = path_with_chords(96, 10, 5);
  std::vector<EdgeId> all(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  expect_engines_agree(g, all, 0, 55, 40, 0.25);
}

TEST(DeltaPath, ThresholdBoundaryFractions) {
  const Graph g = erdos_renyi(48, 0.12, 13);
  std::vector<EdgeId> all(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  // fraction 0: every damaged query must fall back to the full BFS (answers
  // still exact); fraction 1: the repair never falls back.
  expect_engines_agree(g, all, 0, 77, 30, 0.0);
  expect_engines_agree(g, all, 0, 78, 30, 1.0);

  FaultQueryEngine never_repair(g);
  never_repair.set_delta_options(
      {.enabled = true, .max_affected_fraction = 0.0});
  Bfs bfs(g);
  const BfsResult tree = bfs.run(0);
  EdgeId tree_edge = kInvalidEdge;  // any tree edge (the graph may leave
                                    // high-numbered vertices unreached)
  for (Vertex v = g.num_vertices(); v-- > 0 && tree_edge == kInvalidEdge;) {
    tree_edge = tree.parent_edge[v];
  }
  ASSERT_NE(tree_edge, kInvalidEdge);
  const EdgeId faults[1] = {tree_edge};
  (void)never_repair.all_distances(0, edge_faults(faults));
  const FaultQueryEngine::PathStats stats = never_repair.path_stats();
  EXPECT_EQ(stats.repair_bfs, 0u);
  EXPECT_EQ(stats.full_bfs, 1u);
}

TEST(DeltaPath, CountersClassifyQueries) {
  const Graph g = cycle_graph(32);  // every edge is either tree or the one
                                    // cross edge closing the cycle
  FaultQueryEngine engine(g);
  Bfs bfs(g);
  const BfsResult tree = bfs.run(0);

  // Fault a non-tree edge: fast path, answers straight from the baseline.
  EdgeId non_tree = kInvalidEdge;
  std::vector<bool> is_tree(g.num_edges(), false);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (tree.parent_edge[v] != kInvalidEdge) is_tree[tree.parent_edge[v]] = true;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!is_tree[e]) non_tree = e;
  }
  ASSERT_NE(non_tree, kInvalidEdge);
  const EdgeId nt_faults[1] = {non_tree};
  (void)engine.all_distances(0, edge_faults(nt_faults));
  FaultQueryEngine::PathStats stats = engine.path_stats();
  EXPECT_EQ(stats.fast_path_hits, 1u);
  EXPECT_EQ(stats.repair_bfs, 0u);
  EXPECT_EQ(stats.full_bfs, 0u);

  // Fault the tree edge above the BFS tree's deepest leaf: a one-vertex
  // subtree, repaired via the other side of the cycle.
  const EdgeId leaf_edge = tree.parent_edge[16];
  ASSERT_NE(leaf_edge, kInvalidEdge);
  const EdgeId tr_faults[1] = {leaf_edge};
  (void)engine.all_distances(0, edge_faults(tr_faults));
  stats = engine.path_stats();
  EXPECT_EQ(stats.fast_path_hits, 1u);
  EXPECT_EQ(stats.repair_bfs, 1u);
  EXPECT_EQ(stats.full_bfs, 0u);

  // Single-target distance whose target sits outside the damage: answered
  // from the baseline without running the repair.
  const std::uint32_t d = engine.distance(0, 8, edge_faults(tr_faults));
  EXPECT_EQ(d, 8u);
  stats = engine.path_stats();
  EXPECT_EQ(stats.fast_path_hits, 2u);
  EXPECT_EQ(stats.repair_bfs, 1u);

  // Faulted source: full BFS reports the all-unreachable result.
  const Vertex src_fault[1] = {0};
  const auto& hops = engine.all_distances(0, vertex_faults(src_fault));
  for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(hops[v], kInfHops);
  stats = engine.path_stats();
  EXPECT_EQ(stats.full_bfs, 1u);

  // Every query is accounted to exactly one path.
  EXPECT_EQ(stats.fast_path_hits + stats.repair_bfs + stats.full_bfs,
            engine.queries_answered());
}

TEST(DeltaPath, RepairHandlesDisconnection) {
  // Cutting the path graph's edge (k-1, k) disconnects the whole tail; the
  // repair must report every tail vertex unreachable.
  const Graph g = path_graph(20);
  FaultQueryEngine engine(g);
  engine.set_delta_options({.enabled = true, .max_affected_fraction = 1.0});
  const EdgeId cut[1] = {g.find_edge(9, 10)};
  const auto& hops = engine.all_distances(0, edge_faults(cut));
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(hops[v], v);
  for (Vertex v = 10; v < 20; ++v) EXPECT_EQ(hops[v], kInfHops);
  EXPECT_EQ(engine.path_stats().repair_bfs, 1u);
}

TEST(DeltaPath, RepairReroutesAroundDamage) {
  // Grid: cutting one tree edge leaves plenty of detours; repaired distances
  // must match a fresh ground-truth engine with the delta disabled.
  const Graph g = grid_graph(8, 8);
  FaultQueryEngine delta(g);
  delta.set_delta_options({.enabled = true, .max_affected_fraction = 1.0});
  FaultQueryEngine full(g);
  full.set_delta_options(delta_off());
  Bfs bfs(g);
  const BfsResult tree = bfs.run(0);
  for (Vertex v : {static_cast<Vertex>(9), static_cast<Vertex>(27),
                   static_cast<Vertex>(63)}) {
    const EdgeId faults[1] = {tree.parent_edge[v]};
    EXPECT_EQ(delta.all_distances(0, edge_faults(faults)),
              full.all_distances(0, edge_faults(faults)));
  }
  EXPECT_GT(delta.path_stats().repair_bfs, 0u);
}

// Small-damage parent-exposing queries must take the repair path — the full
// BFS counter stays put. This is the PR's headline behavior change: before
// the parent-carrying repair, any damaged query()/shortest_path() fell back
// to the full masked BFS.
TEST(DeltaPath, ParentQueriesTakeRepairPath) {
  const Graph g = grid_graph(8, 8);
  FaultQueryEngine engine(g);
  FaultQueryEngine full(g);
  full.set_delta_options(delta_off());
  Bfs bfs(g);
  const BfsResult tree = bfs.run(0);
  const EdgeId faults[1] = {tree.parent_edge[27]};  // interior tree edge
  const FaultSpec spec = edge_faults(faults);

  // query: repaired tree, not a full BFS.
  const BfsResult& fr = full.query(0, spec);
  const BfsResult& dr = engine.query(0, spec);
  expect_valid_tree(g, engine.structure_graph(), 0, spec, dr, fr);
  FaultQueryEngine::PathStats stats = engine.path_stats();
  EXPECT_EQ(stats.repair_bfs, 1u);
  EXPECT_EQ(stats.full_bfs, 0u);

  // shortest_path to a vertex inside the damaged subtree: repair again.
  const std::optional<Path> into = engine.shortest_path(0, 27, spec);
  expect_valid_path(g, engine.structure_graph(), 0, 27, spec, fr.hops[27],
                    into);
  stats = engine.path_stats();
  EXPECT_EQ(stats.repair_bfs, 2u);
  EXPECT_EQ(stats.full_bfs, 0u);

  // shortest_path to an unaffected vertex: the baseline tree answers without
  // even running the repair.
  const std::optional<Path> outside = engine.shortest_path(0, 8, spec);
  expect_valid_path(g, engine.structure_graph(), 0, 8, spec, fr.hops[8],
                    outside);
  stats = engine.path_stats();
  EXPECT_EQ(stats.fast_path_hits, 1u);
  EXPECT_EQ(stats.repair_bfs, 2u);
  EXPECT_EQ(stats.full_bfs, 0u);
}

// --- through the service ----------------------------------------------------

std::vector<QueryRequest> service_workload(const Graph& g, int count,
                                           std::uint64_t seed) {
  Rng rng(seed);
  Bfs bfs(g);
  const BfsResult tree = bfs.run(0);
  std::vector<QueryRequest> out;
  for (int i = 0; i < count; ++i) {
    QueryRequest req;
    req.id = i;
    req.source = 0;
    const FaultDraw d = draw_faults(rng, g, tree, 3, 1);
    req.fault_edges = d.edges;
    req.fault_vertices = d.vertices;
    switch (rng.next_below(4)) {
      case 0:
        req.kind = QueryKind::kAllDistances;
        break;
      case 1:
        req.kind = QueryKind::kPath;
        req.targets = {static_cast<Vertex>(rng.next_below(g.num_vertices()))};
        break;
      case 2:
        req.kind = QueryKind::kReachability;
        req.targets = {static_cast<Vertex>(rng.next_below(g.num_vertices())),
                       static_cast<Vertex>(rng.next_below(g.num_vertices()))};
        break;
      default:
        req.kind = QueryKind::kDistance;
        req.targets = {static_cast<Vertex>(rng.next_below(g.num_vertices()))};
        break;
    }
    req.consistency =
        rng.next_below(4) == 0 ? Consistency::kBestEffort
                               : Consistency::kExactOrRefuse;
    out.push_back(std::move(req));
  }
  return out;
}

TEST(DeltaPath, ServeMatchesFullBfsServiceWithDeltaOnAndOff) {
  const Graph g = erdos_renyi(60, 0.1, 21);
  ServiceConfig on;
  ServiceConfig off;
  off.delta_queries = false;
  off.cache_delta_max_fraction = 0.0;
  OracleService delta_service(g, on);
  OracleService full_service(g, off);
  const std::vector<QueryRequest> requests = service_workload(g, 250, 31);
  for (const QueryRequest& req : requests) {
    const QueryResponse dr = delta_service.serve(req);
    const QueryResponse fr = full_service.serve(req);
    if (req.kind != QueryKind::kPath) {
      // Non-path payloads are bit-identical — the wire bytes cannot drift.
      EXPECT_EQ(format_response_line(dr), format_response_line(fr))
          << "request " << req.id;
      continue;
    }
    // Path responses: everything but the vertex lists must match (lengths
    // included — resp.distances carries them); the delta paths themselves
    // must be valid shortest paths, but may realize a different tie-break
    // than the full BFS (see the file comment).
    EXPECT_EQ(dr.status, fr.status) << "request " << req.id;
    EXPECT_EQ(dr.exact, fr.exact);
    EXPECT_EQ(dr.served_by, fr.served_by);
    EXPECT_EQ(dr.cache_hit, fr.cache_hit);
    EXPECT_EQ(dr.distances, fr.distances);
    ASSERT_EQ(dr.paths.size(), fr.paths.size());
    const CanonicalFaultSet canon =
        FaultSpec{req.fault_edges, req.fault_vertices}.canonicalize();
    for (std::size_t i = 0; i < dr.paths.size(); ++i) {
      ASSERT_EQ(dr.paths[i].empty(), fr.paths[i].empty());
      if (dr.paths[i].empty()) continue;
      EXPECT_EQ(dr.paths[i].size(), fr.paths[i].size());
      EXPECT_EQ(dr.paths[i].front(), req.source);
      EXPECT_EQ(dr.paths[i].back(), req.targets[i]);
      for (std::size_t j = 0; j + 1 < dr.paths[i].size(); ++j) {
        const EdgeId ge = g.find_edge(dr.paths[i][j], dr.paths[i][j + 1]);
        ASSERT_NE(ge, kInvalidEdge);
        EXPECT_FALSE(edge_faulted(canon, ge));
      }
      for (const Vertex v : dr.paths[i]) {
        EXPECT_FALSE(vertex_faulted(canon, v));
      }
    }
  }
  // The delta service actually used its fast/repair tiers (not everything
  // fell back), and the disabled twin never did.
  const ServiceStats ds = delta_service.stats();
  EXPECT_GT(ds.fast_path_hits + ds.repair_bfs, 0u);
  const ServiceStats fs = full_service.stats();
  EXPECT_EQ(fs.fast_path_hits, 0u);
  EXPECT_EQ(fs.repair_bfs, 0u);
  EXPECT_GT(fs.full_bfs, 0u);
}

// The delta-compressed scenario cache is a representation change only: the
// response stream must be byte-identical with compression off (threshold 0,
// every line a full vector), at the default, and with every diff compressed
// (threshold ∞) — and the hit/miss/eviction counters must not move either.
TEST(DeltaPath, ServeBytesIdenticalAcrossCacheDeltaThresholds) {
  const Graph g = erdos_renyi(60, 0.1, 77);
  ServiceConfig full_lines;
  full_lines.cache_delta_max_fraction = 0.0;  // escape hatch always
  ServiceConfig defaults;
  ServiceConfig always_delta;
  always_delta.cache_delta_max_fraction = 1e9;  // compress every diff
  ServiceConfig uncached;
  uncached.cache_capacity = 0;
  OracleService s_full(g, full_lines);
  OracleService s_default(g, defaults);
  OracleService s_delta(g, always_delta);
  OracleService s_uncached(g, uncached);
  const std::vector<QueryRequest> requests = service_workload(g, 300, 93);
  for (const QueryRequest& req : requests) {
    const QueryResponse full_resp = s_full.serve(req);
    const std::string line = format_response_line(full_resp);
    EXPECT_EQ(line, format_response_line(s_default.serve(req)))
        << "request " << req.id;
    EXPECT_EQ(line, format_response_line(s_delta.serve(req)))
        << "request " << req.id;
    // The uncached twin must agree on everything but the cache_hit
    // attribution flag.
    QueryResponse raw = s_uncached.serve(req);
    raw.cache_hit = false;
    QueryResponse norm = full_resp;
    norm.cache_hit = false;
    EXPECT_EQ(format_response_line(norm), format_response_line(raw))
        << "request " << req.id;
  }
  // Identical admission decisions (hit/miss/eviction accounting does not
  // depend on the line representation)…
  const ServiceStats full_stats = s_full.stats();
  const ServiceStats default_stats = s_default.stats();
  const ServiceStats delta_stats = s_delta.stats();
  for (const ServiceStats* s : {&default_stats, &delta_stats}) {
    EXPECT_EQ(s->cache_hits, full_stats.cache_hits);
    EXPECT_EQ(s->cache_misses, full_stats.cache_misses);
    EXPECT_EQ(s->cache_evictions, full_stats.cache_evictions);
    EXPECT_EQ(s->cache_lines, full_stats.cache_lines);
  }
  // …while compressed lines hold a fraction of the resident bytes.
  ASSERT_GT(full_stats.cache_lines, 0u);
  EXPECT_GT(full_stats.cache_resident_bytes, 0u);
  EXPECT_LT(delta_stats.cache_resident_bytes,
            full_stats.cache_resident_bytes);
}

TEST(DeltaPath, ServiceStatsExposeQueryPathCounters) {
  const Graph g = erdos_renyi(40, 0.15, 5);
  ServiceConfig config;
  config.cache_capacity = 0;  // every request reaches an engine
  OracleService service(g, config);
  const std::vector<QueryRequest> requests = service_workload(g, 100, 77);
  std::uint64_t engine_served = 0;
  for (const QueryRequest& req : requests) {
    const QueryResponse resp = service.serve(req);
    if (resp.status == StatusCode::kOk ||
        resp.status == StatusCode::kDisconnected) {
      ++engine_served;
    }
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.fast_path_hits + stats.repair_bfs + stats.full_bfs,
            engine_served);
  EXPECT_GT(stats.fast_path_hits, 0u);
}

}  // namespace
}  // namespace ftbfs
