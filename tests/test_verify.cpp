#include "core/verify.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.h"
#include "spath/bfs.h"

namespace ftbfs {
namespace {

std::vector<EdgeId> all_edges(const Graph& g) {
  std::vector<EdgeId> ids(g.num_edges());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(VerifyExhaustive, FullGraphAlwaysValid) {
  const Graph g = erdos_renyi(15, 0.3, 1);
  const std::vector<Vertex> sources = {0};
  EXPECT_FALSE(verify_exhaustive(g, all_edges(g), sources, 2).has_value());
}

TEST(VerifyExhaustive, DetectsMissingTreeEdge) {
  // H = path graph minus its last edge: even the fault-free distances break.
  const Graph g = path_graph(5);
  const std::vector<EdgeId> h = {0, 1, 2};  // drop edge (3,4)
  const std::vector<Vertex> sources = {0};
  const auto violation = verify_exhaustive(g, h, sources, 0);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->v, 4u);
  EXPECT_TRUE(violation->faults.empty());
  EXPECT_EQ(violation->dist_g, 4u);
  EXPECT_EQ(violation->dist_h, kInfHops);
}

TEST(VerifyExhaustive, DetectsSingleFaultGap) {
  // C6 minus the "far side" edge (2,3): all fault-free distances from 0 are
  // preserved (vertex 3 is equidistant both ways), but the single fault (4,5)
  // leaves vertex 4 unreachable in H while G still reaches it.
  const Graph g = cycle_graph(6);
  std::vector<EdgeId> h;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (!(ed.u == 2 && ed.v == 3)) h.push_back(e);
  }
  const std::vector<Vertex> sources = {0};
  EXPECT_FALSE(verify_exhaustive(g, h, sources, 0).has_value());
  const auto violation = verify_exhaustive(g, h, sources, 1);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->faults.size(), 1u);
}

TEST(VerifyExhaustive, DualFaultNeedsMoreThanSingleStructure) {
  // Hub gadget: 0 — {1,2,3} (a triangle) — 4. Dropping spoke (3,4) survives
  // every single fault (the triangle reroutes the middles) but the pair
  // {(1,4),(2,4)} disconnects 4 in H while G routes via 3.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  b.add_edge(1, 4);
  b.add_edge(2, 4);
  b.add_edge(3, 4);
  const Graph g = std::move(b).build();
  std::vector<EdgeId> h;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!(g.edge(e).u == 3 && g.edge(e).v == 4)) h.push_back(e);
  }
  const std::vector<Vertex> sources = {0};
  EXPECT_FALSE(verify_exhaustive(g, h, sources, 1).has_value());
  const auto violation = verify_exhaustive(g, h, sources, 2);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->v, 4u);
  EXPECT_EQ(violation->faults.size(), 2u);
  EXPECT_EQ(violation->dist_g, 2u);
  EXPECT_GT(violation->dist_h, violation->dist_g);
}

TEST(VerifyExhaustive, MultiSource) {
  const Graph g = cycle_graph(5);
  const std::vector<Vertex> sources = {0, 2};
  EXPECT_FALSE(verify_exhaustive(g, all_edges(g), sources, 2).has_value());
  // Dropping any edge breaks some single-fault distance for some source.
  std::vector<EdgeId> h = {0, 1, 2, 3};
  EXPECT_TRUE(verify_exhaustive(g, h, sources, 1).has_value());
}

TEST(VerifySampled, FindsPlantedGap) {
  const Graph g = cycle_graph(8);
  std::vector<EdgeId> h;
  for (EdgeId e = 0; e + 1 < g.num_edges(); ++e) h.push_back(e);
  const std::vector<Vertex> sources = {0};
  // Fault-free check alone already catches this (dist(0,7) changes).
  EXPECT_TRUE(verify_sampled(g, h, sources, 1, 50, 1).has_value());
}

TEST(VerifySampled, FullGraphPasses) {
  const Graph g = erdos_renyi(30, 0.2, 5);
  const std::vector<Vertex> sources = {0};
  EXPECT_FALSE(
      verify_sampled(g, all_edges(g), sources, 2, 200, 42).has_value());
}

TEST(VerifySampled, AdversarialChainCatchesSubtleGap) {
  // Theta graph again: sampled verification with chains finds the 2-fault
  // violation quickly.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 4);
  b.add_edge(0, 2);
  b.add_edge(2, 4);
  b.add_edge(0, 3);
  b.add_edge(3, 4);
  const Graph g = std::move(b).build();
  std::vector<EdgeId> h = {0, 1, 2, 3};
  const std::vector<Vertex> sources = {0};
  EXPECT_TRUE(verify_sampled(g, h, sources, 2, 100, 7).has_value());
}

TEST(Violation, DescribeMentionsEverything) {
  const Graph g = path_graph(3);
  Violation v;
  v.source = 0;
  v.v = 2;
  v.faults = {0};
  v.dist_g = 2;
  v.dist_h = kInfHops;
  const std::string s = v.describe(g);
  EXPECT_NE(s.find("source 0"), std::string::npos);
  EXPECT_NE(s.find("(0,1)"), std::string::npos);
  EXPECT_NE(s.find("dist_H=inf"), std::string::npos);
}

}  // namespace
}  // namespace ftbfs
