#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ftbfs {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbabilityRoughlyRespected) {
  Rng rng(19);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(DeriveSeed, SaltChangesStream) {
  EXPECT_NE(derive_seed(42, 1), derive_seed(42, 2));
  EXPECT_EQ(derive_seed(42, 1), derive_seed(42, 1));
}

}  // namespace
}  // namespace ftbfs
